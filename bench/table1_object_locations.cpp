// Table 1: read reliability for tags on objects, by tag location.
//
// Paper setup (§3): 12 identical boxes each holding a network router
// (metal casing, large relative to the packaging), three rows of 2x2 on a
// cart, passed at 1 m/s at 1 m; tag location in {front, side closer, side
// farther, top}; 12 repetitions. Paper: front 87%, side (closer) 83%,
// side (farther) 63%, top 29%, average 63%.
#include "bench_util.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Table 1 - read reliability for tags on objects",
                "Paper: front 87%, side (closer) 83%, side (farther) 63%, top 29%;\n"
                "average over all locations 63%.");
  const CalibrationProfile cal = bench::profile();

  const struct {
    scene::BoxFace face;
    const char* paper;
  } rows[] = {
      {scene::BoxFace::Front, "87%"},
      {scene::BoxFace::SideNear, "83%"},
      {scene::BoxFace::SideFar, "63%"},
      {scene::BoxFace::Top, "29%"},
  };

  TextTable t({"tag location", "reliability (sim)", "95% CI", "paper"});
  double sum = 0.0;
  for (const auto& r : rows) {
    ObjectScenarioOptions opt;
    opt.tag_faces = {r.face};
    const Scenario sc = make_object_tracking_scenario(opt, cal);
    const std::size_t reps = 24;
    const RepeatedRuns runs = run_repeated_parallel(sc, reps, bench::kSeed);
    const double rel = mean_tag_reliability(sc, runs);
    sum += rel;
    const auto successes = static_cast<std::size_t>(rel * 12.0 * reps + 0.5);
    const ProportionInterval ci = wilson_interval(successes, 12 * reps);
    t.add_row({std::string(scene::box_face_name(r.face)), percent(rel),
               "[" + percent(ci.lower) + ", " + percent(ci.upper) + "]", r.paper});
  }
  t.add_row({"average", percent(sum / 4.0), "", "63%"});
  bench::print_table(t);
  return 0;
}
