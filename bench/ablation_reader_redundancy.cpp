// Ablation (paper §4, text): reader-level redundancy.
//
// "While one might expect to see similar improvements for multiple
// readers per portal, our measurement clearly showed the opposite: read
// reliability was severely reduced ... The reason is reader-to-reader RF
// interference. While Gen 2 has standard measures to combat this problem,
// called dense-reader mode, it is optional ... our readers did not support
// it." This bench sweeps 1 reader / 2 readers without DRM / 2 readers with
// DRM on the object-tracking rig.
#include "bench_util.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - reader-level redundancy and dense-reader mode",
                "Paper: two co-channel readers severely reduce reliability;\n"
                "dense-reader mode (channelization) removes the interference.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"configuration", "tracking reliability", "vs. 1 reader"});
  double baseline = 0.0;
  const struct {
    const char* label;
    std::size_t readers;
    bool drm;
  } rows[] = {
      {"1 reader, 2 antennas", 1, false},
      {"2 readers, 2 antennas, no DRM", 2, false},
      {"2 readers, 2 antennas, DRM", 2, true},
  };
  for (const auto& r : rows) {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front};
    opt.portal.antenna_count = 2;
    opt.portal.reader_count = r.readers;
    opt.portal.dense_reader_mode = r.drm;
    const double rel = measure_tracking_reliability(
        make_object_tracking_scenario(opt, cal), 24, bench::kSeed);
    if (baseline == 0.0) baseline = rel;
    const double delta = rel - baseline;
    t.add_row({r.label, percent(rel),
               (delta >= 0 ? "+" : "") + percent(delta)});
  }
  bench::print_table(t);
  return 0;
}
