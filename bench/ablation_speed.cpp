// Ablation (paper §2.1): object speed vs. tracking reliability.
//
// "Higher object speeds limit the time when tags are visible to an
// antenna." This bench sweeps the cart speed on the Table-1 rig for one
// and two tags per box: redundancy buys back headroom that speed eats.
#include "bench_util.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - conveyor/cart speed",
                "Higher speed = shorter read window = fewer opportunities;\n"
                "tag redundancy restores the margin.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"speed (m/s)", "1 tag (front)", "2 tags (front+side)"});
  for (const double speed : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0}) {
    ObjectScenarioOptions one;
    one.tag_faces = {scene::BoxFace::Front};
    one.speed_mps = speed;
    ObjectScenarioOptions two;
    two.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    two.speed_mps = speed;
    const double r1 = measure_tracking_reliability(
        make_object_tracking_scenario(one, cal), 24, bench::kSeed);
    const double r2 = measure_tracking_reliability(
        make_object_tracking_scenario(two, cal), 24, bench::kSeed);
    t.add_row({fixed_str(speed, 2), percent(r1), percent(r2)});
  }
  bench::print_table(t);
  return 0;
}
