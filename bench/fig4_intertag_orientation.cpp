// Figure 4: tags read vs. inter-tag distance, per tag orientation.
//
// Paper setup (§3, Fig. 3-4): 10 parallel tags on a cardboard box, carted
// past the antenna at ~1 m/s at 1 m; five inter-tag distances {0.3, 4, 10,
// 20, 40} mm x six orientations, >= 10 repetitions each. Paper result:
// tags need 20-40 mm spacing depending on orientation; the two
// perpendicular orientations (cases 1 and 5) are least reliable.
#include "bench_util.hpp"
#include "reliability/orientation.hpp"
#include "reliability/scenarios.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Figure 4 - inter-tag distance x orientation",
                "Paper: reliable from 20-40 mm spacing depending on orientation;\n"
                "perpendicular cases 1 and 5 are the worst.");
  const CalibrationProfile cal = bench::profile();

  std::printf("Orientation legend:\n");
  for (const auto& o : kFigure3Orientations) {
    std::printf("  case %d: %s\n", o.case_number, std::string(o.description).c_str());
  }
  std::printf("\nMean tags read (of 10), with [lower quartile, upper quartile]:\n\n");

  TextTable t({"spacing", "case 1", "case 2", "case 3", "case 4", "case 5", "case 6"});
  for (const double mm : {0.3, 4.0, 10.0, 20.0, 40.0}) {
    std::vector<std::string> row{fixed_str(mm, 1) + " mm"};
    for (const auto& orientation : kFigure3Orientations) {
      const Scenario sc = make_intertag_scenario(mm * 1e-3, orientation, cal);
      const RepeatedRuns runs =
          run_repeated_parallel(sc, 12, bench::kSeed + orientation.case_number);
      const SampleSummary s = summarize(distinct_tags_per_run(runs));
      row.push_back(fixed_str(s.mean, 1) + " [" + fixed_str(s.lower_quartile, 0) + "," +
                    fixed_str(s.upper_quartile, 0) + "]");
    }
    t.add_row(row);
  }
  bench::print_table(t);
  return 0;
}
