// Ablation (DESIGN.md §4): which physics terms carry which experiment.
//
// Each row disables one model term from the calibrated profile and re-runs
// a probe experiment that DESIGN.md claims that term explains:
//   * shadow fading        -> Fig. 2's gradual (not cliff-like) range decay,
//   * scatter path         -> Table 1's far-side reads,
//   * mutual coupling      -> Fig. 4's minimum safe spacing,
//   * image factor         -> Table 1's dead top tags (indirectly: backing
//                             set to foam removes the grounding).
#include "bench_util.hpp"
#include "reliability/orientation.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

double fig2_cliffness(const CalibrationProfile& cal) {
  // Max drop in tags-read between adjacent distances, normalized to 20:
  // a step function scores ~1, a gradual decay scores low.
  double prev = -1.0;
  double worst_drop = 0.0;
  for (int d = 1; d <= 9; ++d) {
    const Scenario sc = make_read_range_scenario(static_cast<double>(d), cal);
    const double mean =
        summarize(distinct_tags_per_run(run_repeated_parallel(sc, 24, bench::kSeed + d))).mean;
    if (prev >= 0.0) worst_drop = std::max(worst_drop, (prev - mean) / 20.0);
    prev = mean;
  }
  return worst_drop;
}

double table1_side_far(const CalibrationProfile& cal) {
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::SideFar};
  return measure_tracking_reliability(make_object_tracking_scenario(opt, cal), 16,
                                      bench::kSeed);
}

double fig4_at_10mm(const CalibrationProfile& cal) {
  // 10 mm spacing: inside the unsafe zone, where coupling dominates.
  const Scenario sc = make_intertag_scenario(0.010, kFigure3Orientations[1], cal);
  return summarize(distinct_tags_per_run(run_repeated_parallel(sc, 10, bench::kSeed))).mean / 10.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - physics model terms",
                "Disable one term at a time; the probe that term explains collapses.");
  const CalibrationProfile base = bench::profile();

  TextTable t({"model variant", "Fig2 worst step (0=smooth)", "Table1 side-far",
               "Fig4 tags@10mm"});

  t.add_row({"full model (calibrated)", fixed_str(fig2_cliffness(base), 2),
             percent(table1_side_far(base)), percent(fig4_at_10mm(base))});

  {
    CalibrationProfile cal = base;
    cal.shadow_sigma_db = 0.0;
    cal.fast_sigma_db = 0.0;
    cal.pass_sigma_db = 0.0;
    t.add_row({"no fading (deterministic)", fixed_str(fig2_cliffness(cal), 2),
               percent(table1_side_far(cal)), percent(fig4_at_10mm(cal))});
  }
  {
    CalibrationProfile cal = base;
    cal.evaluator.scatter_excess_db = 200.0;  // Effectively no diffuse path.
    t.add_row({"no scatter path", fixed_str(fig2_cliffness(cal), 2),
               percent(table1_side_far(cal)), percent(fig4_at_10mm(cal))});
  }
  {
    CalibrationProfile cal = base;
    cal.evaluator.coupling.contact_loss_db = 0.0;
    t.add_row({"no mutual coupling", fixed_str(fig2_cliffness(cal), 2),
               percent(table1_side_far(cal)), percent(fig4_at_10mm(cal))});
  }
  {
    CalibrationProfile cal = base;
    cal.evaluator.two_ray = rf::TwoRayGround({0.0, -15.0});
    t.add_row({"no two-ray multipath", fixed_str(fig2_cliffness(cal), 2),
               percent(table1_side_far(cal)), percent(fig4_at_10mm(cal))});
  }
  bench::print_table(t);
  std::printf(
      "\nReading: without fading the range curve develops a hard step; without the\n"
      "scatter path far-side tags go silent; without coupling 10 mm spacing is\n"
      "(wrongly) safe for every orientation.\n");
  return 0;
}
