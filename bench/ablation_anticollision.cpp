// Ablation (DESIGN.md §4.3): MAC parameters under time pressure.
//
// A 1-2 m/s pass gives the MAC a fixed time budget; how the reader spends
// it is governed by the Q algorithm. This bench sweeps the initial Q and
// the mid-round adjustment policy and reports (a) the time to inventory a
// static 40-tag population and (b) tracking reliability for the object rig
// at 2 m/s, where wasted slots directly cost reads.
#include <memory>
#include <unordered_set>

#include "bench_util.hpp"
#include "system/portal.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

scene::Scene static_field(std::size_t n) {
  scene::Scene s;
  Pose pose;
  pose.position = {0.0, 0.0, 1.0};
  pose.frame.forward = {1.0, 0.0, 0.0};
  pose.frame.up = {0.0, 0.0, 1.0};
  scene::Entity holder("tags", std::monostate{}, rf::Material::Air,
                       std::make_unique<scene::StaticTrajectory>(pose));
  for (std::size_t i = 0; i < n; ++i) {
    scene::TagMount m;
    m.local_position = {0.05 * static_cast<double>(i % 8), 0.0,
                        0.07 * static_cast<double>(i / 8)};
    m.local_patch_normal = {0.0, 1.0, 0.0};
    m.local_dipole_axis = {1.0, 0.0, 0.0};
    m.backing_material = rf::Material::Foam;
    holder.add_tag(scene::Tag{scene::TagId{i + 1}, m});
  }
  s.entities.push_back(std::move(holder));
  s.antennas.push_back(scene::Scene::make_antenna({0.2, 1.0, 1.0}, {0.0, -1.0, 0.0}));
  return s;
}

double inventory_time(const CalibrationProfile& cal, double initial_q,
                      bool adjust_mid_round) {
  const scene::Scene s = static_field(40);
  sys::PortalConfig portal = make_portal_config(cal, {}, 1, 10.0);
  portal.pass_sigma_db = 0.0;
  portal.shadow_sigma_db = 0.0;
  portal.fast_sigma_db = 0.0;
  portal.readers[0].inventory.q.initial_q = initial_q;
  portal.readers[0].inventory.adjust_mid_round = adjust_mid_round;
  sys::PortalSimulator sim(s, portal);
  Rng rng(bench::kSeed);
  const sys::EventLog log = sim.run(rng);
  std::unordered_set<scene::TagId> seen;
  double t_done = 10.0;
  for (const auto& ev : log) {
    if (seen.insert(ev.tag).second && seen.size() == 40) t_done = ev.time_s;
  }
  return seen.size() == 40 ? t_done : -1.0;
}

double fast_pass_reliability(const CalibrationProfile& base, double initial_q,
                             bool adjust_mid_round) {
  CalibrationProfile cal = base;
  cal.inventory.q.initial_q = initial_q;
  cal.inventory.adjust_mid_round = adjust_mid_round;
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front};
  opt.speed_mps = 2.0;
  return measure_tracking_reliability(make_object_tracking_scenario(opt, cal), 20,
                                      bench::kSeed);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - Q-algorithm parameters",
                "Frame too small = collisions; too large = empty slots. Both waste\n"
                "the pass's time budget; mid-round adjustment recovers either way.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"initial Q", "mid-round adjust", "40-tag inventory (s)",
               "2 m/s pass reliability"});
  for (const double q : {0.0, 2.0, 4.0, 6.0, 8.0}) {
    for (const bool adjust : {true, false}) {
      const double inv = inventory_time(cal, q, adjust);
      const double rel = fast_pass_reliability(cal, q, adjust);
      t.add_row({fixed_str(q, 0), adjust ? "yes" : "no",
                 inv < 0 ? "incomplete" : fixed_str(inv, 2), percent(rel)});
    }
  }
  bench::print_table(t);
  return 0;
}
