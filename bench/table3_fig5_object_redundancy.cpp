// Table 3 + Figure 5: redundancy for object tracking.
//
// Paper setup (§4.1): the Table-1 rig re-run with redundancy — two
// antennas per portal (facing pair, 2 m apart), two tags per box (front +
// side), and both. R_M is measured; R_C is computed from the §3
// single-opportunity reliabilities with R_C = 1 - prod(1 - P_i).
// Paper: 1a/1t 80% -> 2a/1t 86% (R_C 96%) -> 1a/2t 97% (R_C 97%)
//        -> 2a/2t 100% (R_C 99.9%).
#include "bench_util.hpp"
#include "reliability/analytical.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

double measure(const ObjectScenarioOptions& opt, const CalibrationProfile& cal,
               std::size_t reps = 24) {
  return measure_tracking_reliability(make_object_tracking_scenario(opt, cal), reps,
                                      bench::kSeed);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Table 3 / Figure 5 - redundancy for object tracking",
                "Paper: 1 ant+1 tag 80%; 2 ant+1 tag R_M 86%/R_C 96%;\n"
                "1 ant+2 tags R_M 97%/R_C 97%; 2 ant+2 tags R_M 100%/R_C 99.9%.");
  const CalibrationProfile cal = bench::profile();

  // Step 1 - the paper's §3 measurement: single-opportunity reliabilities
  // per tag location (1 antenna, 1 tag).
  ObjectScenarioOptions front_only;
  front_only.tag_faces = {scene::BoxFace::Front};
  ObjectScenarioOptions side_only;
  side_only.tag_faces = {scene::BoxFace::SideNear};
  ObjectScenarioOptions side_far_only;
  side_far_only.tag_faces = {scene::BoxFace::SideFar};
  const double p_front = measure(front_only, cal);
  const double p_side = measure(side_only, cal);
  const double p_side_far = measure(side_far_only, cal);
  std::printf("Measured single-opportunity reliabilities (sim):\n"
              "  front %s, side (closer) %s, side (farther) %s\n\n",
              percent(p_front).c_str(), percent(p_side).c_str(),
              percent(p_side_far).c_str());

  // Step 2 - redundant configurations: R_M measured, R_C composed.
  // Opportunity composition mirrors the paper: with the facing antenna
  // pair, a front tag offers `front` reliability to each antenna, while a
  // side tag is `side (closer)` to one antenna and `side (farther)` to the
  // other.
  TextTable t({"antennas", "tags/object", "tag location", "R_M (sim)", "R_C (sim)",
               "paper R_M", "paper R_C"});

  {
    ObjectScenarioOptions opt = front_only;
    opt.portal.antenna_count = 2;
    const double rm = measure(opt, cal);
    const double rc = expected_reliability({p_front, p_front});
    t.add_row({"2", "1", "front", percent(rm), percent(rc), "92%", "98%"});
  }
  {
    ObjectScenarioOptions opt = side_only;
    opt.portal.antenna_count = 2;
    const double rm = measure(opt, cal);
    const double rc = expected_reliability({p_side, p_side_far});
    t.add_row({"2", "1", "side", percent(rm), percent(rc), "79%", "94%"});
  }
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    const double rm = measure(opt, cal);
    const double rc = expected_reliability({p_front, p_side});
    t.add_row({"1", "2", "front + side (good)", percent(rm), percent(rc), "97%", "98%"});
  }
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideFar};
    const double rm = measure(opt, cal);
    const double rc = expected_reliability({p_front, p_side_far});
    t.add_row({"1", "2", "front + side (bad)", percent(rm), percent(rc), "96%", "95%"});
  }
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    opt.portal.antenna_count = 2;
    const double rm = measure(opt, cal);
    const double rc =
        expected_reliability({p_front, p_front, p_side, p_side_far});
    t.add_row({"2", "2", "front + side", percent(rm), percent(rc, 1), "100%", "99.9%"});
  }
  bench::print_table(t);

  // Figure 5 series: the four bar pairs.
  std::printf("\nFigure 5 series (measured vs calculated):\n");
  TextTable f({"configuration", "measured", "calculated"});
  {
    const double rm = measure(front_only, cal);
    f.add_row({"1 antenna, 1 tag", percent(rm), percent(p_front)});
  }
  {
    ObjectScenarioOptions opt = front_only;
    opt.portal.antenna_count = 2;
    f.add_row({"2 antennas, 1 tag", percent(measure(opt, cal)),
               percent(expected_reliability({p_front, p_front}))});
  }
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    f.add_row({"1 antenna, 2 tags", percent(measure(opt, cal)),
               percent(expected_reliability({p_front, p_side}))});
  }
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    opt.portal.antenna_count = 2;
    f.add_row({"2 antennas, 2 tags", percent(measure(opt, cal)),
               percent(expected_reliability({p_front, p_front, p_side, p_side_far}))});
  }
  bench::print_table(f);
  return 0;
}
