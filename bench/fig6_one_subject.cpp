// Figure 6: tracking reliability of one subject across all redundancy
// combinations, measured vs calculated.
//
// The x-axis walks {1, 2} antennas x {1, 2, 4} tags; each bar pair shows
// R_M and the §4 analytical R_C. Paper: reliability climbs from ~63%
// (1 antenna, 1 tag, averaged over locations) to ~100% with four tags or
// two tags + two antennas.
#include "bench_util.hpp"
#include "human_redundancy.hpp"

using namespace rfidsim;
using namespace rfidsim::bench;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  banner("Figure 6 - tracking one subject, redundancy sweep",
         "Paper: ~63% at 1 antenna/1 tag rising to ~100% at 4 tags or 2x2.");
  const CalibrationProfile cal = profile();
  const HumanSingles singles = measure_singles(1, false, cal);

  TextTable t({"configuration", "measured R_M", "calculated R_C"});
  for (const std::size_t antennas : {std::size_t{1}, std::size_t{2}}) {
    // 1 tag: average of the F/B and side placements, as the paper does.
    {
      HumanScenarioOptions fb;
      fb.tag_spots = {scene::BodySpot::Front};
      fb.portal.antenna_count = antennas;
      HumanScenarioOptions side;
      side.tag_spots = {scene::BodySpot::SideNear};
      side.portal.antenna_count = antennas;
      const double rm =
          0.5 * (measure_human(fb, cal).closer + measure_human(side, cal).closer);
      const double rc = 0.5 * (rc_one_fb(singles, antennas) + rc_one_side(singles, antennas));
      t.add_row({std::to_string(antennas) + " antenna(s), 1 tag", percent(rm),
                 percent(rc)});
    }
    // 2 tags: average of F/B pair and side pair.
    {
      HumanScenarioOptions fb;
      fb.tag_spots = spots_fb();
      fb.portal.antenna_count = antennas;
      HumanScenarioOptions sides;
      sides.tag_spots = spots_sides();
      sides.portal.antenna_count = antennas;
      const double rm =
          0.5 * (measure_human(fb, cal).closer + measure_human(sides, cal).closer);
      const double rc =
          0.5 * (rc_two_fb(singles, antennas) + rc_two_sides(singles, antennas));
      t.add_row({std::to_string(antennas) + " antenna(s), 2 tags", percent(rm),
                 percent(rc)});
    }
    // 4 tags.
    {
      HumanScenarioOptions all;
      all.tag_spots = spots_all();
      all.portal.antenna_count = antennas;
      const double rm = measure_human(all, cal).closer;
      const double rc = rc_four(singles, antennas);
      t.add_row({std::to_string(antennas) + " antenna(s), 4 tags", percent(rm),
                 percent(rc)});
    }
  }
  bench::print_table(t);
  return 0;
}
