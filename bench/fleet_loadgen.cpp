// fleet_loadgen — five-million-event load generator for the fleet store
// (BENCH_FLEET.json).
//
// Drives >= 5M synthetic read events from four facilities through
// fleet::TrackingStore under increasing thread counts, with obs on and
// off, and with the batch arrival order reversed — and requires every
// configuration to produce the bit-identical store digest and query
// answers before any timing is trusted (the store's determinism contract,
// enforced the same way perf_baseline enforces sweep_matches_serial).
// The record lands in the same rfidsim-bench-v1 trajectory: bench_regress
// gates BENCH_FLEET.json -> current run in CI.
//
// On top of raw ingest, this binary times and *verifies* the PR-6
// durability path end to end:
//
//   - wire codec throughput: encode/decode every batch of one facility
//     as checksummed binary frames, reporting bytes per event;
//   - checkpoint/restore: full snapshot, incremental snapshot (unchanged
//     shards elided), and a restore whose digest must match;
//   - kill-and-recover matrix: ingest half, checkpoint, "crash", restore
//     under {1,2,4} threads x obs {on,off}, finish ingesting — every
//     cell must land on the uninterrupted run's digest bit for bit;
//   - BER-sweep ablation (the paper's R_C-ablation style, applied to the
//     uplink): wire bit-error rates {0, 1e-6, 1e-5, 1e-4}, batch size 32
//     — zero corrupt frames may reach the store undetected, and NAK
//     retransmission must recover >= 99% of affected batches.
//
// For the CI crash-recovery smoke the binary also runs as its own fault
// injector: `--crash-after-half <path>` ingests the first half of the
// stream, writes a full checkpoint, and dies via _Exit (no destructors —
// a real crash, except the checkpoint already hit the disk);
// `--restore-from <path>` rebuilds from those bytes, ingests the second
// half, and exits nonzero unless the digest matches an uninterrupted run.
//
// The event stream is generated directly (a pure function of --seed)
// rather than through the portal simulator: the store is the unit under
// test here, and this machine should spend its wall clock on ingest, not
// on RF physics. Batches carry realistic transport damage — ~2% are
// re-delivered whole (duplicates) and ~10% arrive after their pass window
// (late timeline repairs) — so the timed path is the defended path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fault/wire_corruptor.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/query.hpp"
#include "fleet/store.hpp"
#include "system/uploader.hpp"
#include "track/manifest.hpp"
#include "track/registry.hpp"
#include "wire/batch_codec.hpp"
#include "wire/wire.hpp"

using namespace rfidsim;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// High-water resident set of this process, in bytes (0 if unknown).
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // Already bytes.
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ULL;  // KiB.
#endif
#else
  return 0;
#endif
}

struct Entry {
  std::string name;
  double wall_s = 0.0;
  std::size_t cells = 0;
  std::string baseline;
  double speedup = 0.0;
  std::string note;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const char* path, const std::vector<Entry>& entries,
                bool fleet_digest_matches, bool crash_recovery_matches,
                bool flight_recorder_ok, std::uint64_t wire_undetected,
                double wire_min_recovered) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fleet_loadgen: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"rfidsim-bench-v1\",\n");
  std::fprintf(f, "  \"pr\": 9,\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fprintf(f, "  \"fleet_digest_matches\": %s,\n",
               fleet_digest_matches ? "true" : "false");
  std::fprintf(f, "  \"crash_recovery_matches\": %s,\n",
               crash_recovery_matches ? "true" : "false");
  std::fprintf(f, "  \"flight_recorder_ok\": %s,\n",
               flight_recorder_ok ? "true" : "false");
  std::fprintf(f, "  \"wire_undetected_corruptions\": %llu,\n",
               static_cast<unsigned long long>(wire_undetected));
  std::fprintf(f, "  \"wire_min_recovered_fraction\": %.6f,\n",
               wire_min_recovered);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"wall_s\": %.6f, \"cells\": %zu",
                 json_escape(e.name).c_str(), e.wall_s, e.cells);
    if (!e.baseline.empty()) {
      std::fprintf(f, ", \"baseline\": \"%s\", \"speedup\": %.3f",
                   json_escape(e.baseline).c_str(), e.speedup);
    }
    if (!e.note.empty()) std::fprintf(f, ", \"note\": \"%s\"", json_escape(e.note).c_str());
    std::fprintf(f, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Workload shape: 4 facilities x 25 passes x 50 batches x 1000 events
// = 5,000,000 events over 40,000 tags (~125 sightings per timeline),
// plus ~2% whole-batch re-deliveries.
constexpr std::uint32_t kFacilities = 4;
constexpr std::size_t kPasses = 25;
constexpr std::size_t kBatchesPerPass = 50;
constexpr std::size_t kEventsPerBatch = 1000;
constexpr std::uint64_t kTagCount = 40000;
constexpr double kPassWindowS = 10.0;

/// Generates the full batch sequence — a pure function of `seed`. Each
/// (facility, pass) gets a forked stream, so the content is independent
/// of generation order.
std::vector<fleet::FacilityBatch> generate_batches(std::uint64_t seed) {
  std::vector<fleet::FacilityBatch> batches;
  batches.reserve(kFacilities * kPasses * kBatchesPerPass + 256);
  const Rng root(seed);
  for (std::uint32_t facility = 0; facility < kFacilities; ++facility) {
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      Rng rng = root.fork(facility * 1000 + pass);
      const double begin_s = static_cast<double>(pass) * kPassWindowS;
      for (std::size_t b = 0; b < kBatchesPerPass; ++b) {
        fleet::FacilityBatch batch;
        batch.facility = facility;
        // Deterministic provenance id, as an uploader would mint it. The
        // whole-batch re-deliveries below copy it — a re-delivery is the
        // *same* batch, so its provenance trail stays one chain.
        batch.batch_id = obs::provenance_batch_id(
            facility, pass * kBatchesPerPass + b);
        batch.events.reserve(kEventsPerBatch);
        for (std::size_t e = 0; e < kEventsPerBatch; ++e) {
          sys::ReadEvent ev;
          ev.tag = scene::TagId{
              static_cast<std::uint64_t>(rng.uniform_int(1, kTagCount))};
          ev.time_s = begin_s + rng.uniform(0.0, kPassWindowS);
          ev.reader_index = static_cast<std::size_t>(rng.uniform_int(0, 2));
          ev.antenna_index = static_cast<std::size_t>(rng.uniform_int(0, 3));
          batch.events.push_back(ev);
        }
        batch.sent_time_s = begin_s + kPassWindowS;
        // ~10% of batches arrive after the window (retry backoff): their
        // sightings repair timelines that later passes already extended.
        batch.arrival_time_s = rng.bernoulli(0.1)
                                   ? batch.sent_time_s + 2.0 * kPassWindowS
                                   : batch.sent_time_s;
        batches.push_back(std::move(batch));
      }
    }
  }
  // ~2% of batches are re-delivered whole at the end of the stream; the
  // store must absorb them as pure duplicates.
  const std::size_t original = batches.size();
  for (std::size_t b = 0; b < original; b += 50) batches.push_back(batches[b]);
  return batches;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

/// Digest over a deterministic sample of query answers: locate over every
/// 37th tag at three probe times, plus one manifest reconciliation. Must
/// be bit-identical across every store configuration.
std::uint64_t query_digest(const fleet::TrackingStore& store,
                           const track::ObjectRegistry& registry) {
  fleet::QueryService query(store, registry);
  fleet::FacilityModel model;
  model.reader_read_rates = {0.8, 0.7, 0.6};
  model.reader_live = {true, true, true};
  for (std::uint32_t f = 0; f < kFacilities; ++f) query.set_facility_model(f, model);

  std::uint64_t hash = kFnvOffset;
  const double horizon = static_cast<double>(kPasses) * kPassWindowS;
  for (std::uint64_t tag = 1; tag <= kTagCount; tag += 37) {
    for (const double t : {horizon * 0.25, horizon * 0.5, horizon}) {
      const fleet::LocateResult r = query.locate(scene::TagId{tag}, t);
      hash = fnv1a(hash, r.found ? 1 : 0);
      hash = fnv1a(hash, r.facility);
      hash = fnv1a(hash, bits_of(r.time_s));
      hash = fnv1a(hash, bits_of(r.confidence));
    }
  }
  track::Manifest manifest;
  for (std::uint64_t i = 0; i < 500; ++i) {
    manifest.expected.insert(registry.objects()[i]);
  }
  const fleet::MissingReport report =
      query.missing(manifest, 0, horizon - kPassWindowS, horizon);
  hash = fnv1a(hash, report.present.size());
  hash = fnv1a(hash, report.missed_reads.size());
  hash = fnv1a(hash, report.absent.size());
  hash = fnv1a(hash, report.unexpected.size());
  for (const fleet::Reconciliation& item : report.items) {
    hash = fnv1a(hash, item.object.value);
    hash = fnv1a(hash, static_cast<std::uint64_t>(item.verdict));
    hash = fnv1a(hash, bits_of(item.posterior_present));
  }
  return hash;
}

std::string human_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", static_cast<double>(bytes) / (1u << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(bytes) / (1u << 10));
  }
  return buf;
}

bool write_file(const char* path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  out.resize(static_cast<std::size_t>(size));
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

/// Uninterrupted-reference digest: serial ingest of the whole stream.
std::uint64_t reference_digest(const std::vector<fleet::FacilityBatch>& batches) {
  fleet::TrackingStore store;
  store.ingest(batches);
  return store.digest();
}

/// CI crash smoke, part 1: ingest the first half, checkpoint it durably,
/// then die like a process that never got to shut down.
[[noreturn]] void crash_after_half(const std::vector<fleet::FacilityBatch>& batches,
                                   const char* path) {
  const std::size_t split = batches.size() / 2;
  fleet::TrackingStore store;
  for (std::size_t b = 0; b < split; ++b) store.ingest(batches[b]);
  fleet::Checkpointer checkpointer;
  const std::vector<std::uint8_t> snapshot = checkpointer.full(store);
  if (!write_file(path, snapshot)) {
    std::fprintf(stderr, "fleet_loadgen: cannot write checkpoint to %s\n", path);
    std::_Exit(3);
  }
  // The flight recorder is the crash's black box: dump the rings (the tail
  // is the checkpoint's own provenance record) before dying. _Exit runs no
  // handlers, so this explicit dump is the only one the "crash" leaves.
  const std::string flight_path = std::string(path) + ".flight.jsonl";
  if (obs::dump_flight_recorder(flight_path)) {
    std::printf("crash-after-half: flight-recorder dump -> %s (%llu records)\n",
                flight_path.c_str(),
                static_cast<unsigned long long>(obs::flight_recorded()));
  } else {
    std::fprintf(stderr, "fleet_loadgen: cannot write flight dump to %s\n",
                 flight_path.c_str());
    std::_Exit(3);
  }
  std::printf("crash-after-half: ingested %zu/%zu batches, checkpoint %s (%zu bytes, "
              "digest %016llx) -> simulated crash (_Exit)\n",
              split, batches.size(), path, snapshot.size(),
              static_cast<unsigned long long>(store.digest()));
  std::fflush(stdout);
  std::_Exit(0);  // No destructors, no flushes beyond the checkpoint: a crash.
}

/// CI crash smoke, part 2: restore from the checkpoint a "crashed" run
/// left behind, ingest the second half, and demand the uninterrupted
/// run's digest bit for bit.
int restore_from(const std::vector<fleet::FacilityBatch>& batches, const char* path) {
  std::vector<std::uint8_t> snapshot;
  if (!read_file(path, snapshot)) {
    std::fprintf(stderr, "fleet_loadgen: cannot read checkpoint from %s\n", path);
    return 3;
  }
  const std::size_t split = batches.size() / 2;
  fleet::TrackingStore store = [&] {
    try {
      return fleet::restore_checkpoint(snapshot);
    } catch (const fleet::CheckpointError& e) {
      std::fprintf(stderr, "fleet_loadgen: restore failed (%s): %s\n",
                   fleet::checkpoint_error_name(e.kind()), e.what());
      std::_Exit(4);
    }
  }();
  for (std::size_t b = split; b < batches.size(); ++b) store.ingest(batches[b]);
  const std::uint64_t got = store.digest();
  const std::uint64_t want = reference_digest(batches);
  std::printf("restore-from: %s (%zu bytes) + second half -> digest %016llx, "
              "uninterrupted %016llx: %s\n",
              path, snapshot.size(), static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(want),
              got == want ? "MATCH" : "MISMATCH");
  return got == want ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  // A real crash (SIGSEGV/SIGABRT/...) dumps the flight rings here before
  // the default handler takes over — the bench run's black box.
  obs::install_crash_handler("fleet_loadgen.crash.flight.jsonl");
  const char* out_path = "BENCH_FLEET.json";
  const char* crash_path = nullptr;
  const char* restore_path = nullptr;
  const auto& positional = session.positional();
  for (std::size_t i = 0; i < positional.size(); ++i) {
    if (positional[i] == "--crash-after-half" && i + 1 < positional.size()) {
      crash_path = positional[++i].c_str();
    } else if (positional[i] == "--restore-from" && i + 1 < positional.size()) {
      restore_path = positional[++i].c_str();
    } else {
      out_path = positional[i].c_str();
    }
  }

  bench::banner("fleet_loadgen - sharded store ingest + wire/checkpoint durability",
                "Drives 5.1M events from 4 facilities through the fleet store\n"
                "at several thread counts, times the wire codec and the\n"
                "checkpoint/restore path, and kill-tests recovery; every\n"
                "configuration must land on bit-identical digests.");

  const std::vector<fleet::FacilityBatch> batches = generate_batches(session.seed());
  std::size_t total_events = 0;
  for (const auto& b : batches) total_events += b.events.size();
  std::printf("generated %zu batches, %zu events (seed %llu)\n\n", batches.size(),
              total_events, static_cast<unsigned long long>(session.seed()));

  // CI fault-injection modes: do only the crash half or the recovery half.
  if (crash_path != nullptr) crash_after_half(batches, crash_path);
  if (restore_path != nullptr) return restore_from(batches, restore_path);

  track::ObjectRegistry registry;
  for (std::uint64_t i = 1; i <= kTagCount; ++i) {
    const track::ObjectId object = registry.add_object("obj-" + std::to_string(i));
    registry.bind_tag(scene::TagId{i}, object);
  }

  std::vector<Entry> entries;
  bool have_serial = false;
  std::uint64_t serial_digest = 0;
  std::uint64_t serial_query = 0;
  bool fleet_digest_matches = true;
  double serial_s = 0.0;

  auto run_ingest = [&](const std::string& name, std::size_t threads,
                        const std::string& note,
                        const std::vector<fleet::FacilityBatch>& input) {
    fleet::StoreConfig config;
    config.threads = threads;
    fleet::TrackingStore store(config);
    const double wall = wall_seconds([&] { store.ingest(input); });
    const std::uint64_t digest = store.digest();
    const std::uint64_t qdigest = query_digest(store, registry);
    if (!have_serial) {
      have_serial = true;
      serial_digest = digest;
      serial_query = qdigest;
      serial_s = wall;
      entries.push_back({name, wall, total_events, "", 0.0, note});
    } else {
      fleet_digest_matches =
          fleet_digest_matches && digest == serial_digest && qdigest == serial_query;
      entries.push_back({name, wall, total_events, "fleet_ingest_serial",
                         serial_s / wall, note});
    }
    std::printf("%-24s %.3fs  digest %016llx  queries %016llx\n", name.c_str(), wall,
                static_cast<unsigned long long>(digest),
                static_cast<unsigned long long>(qdigest));
    return store.stats();
  };

  const fleet::StoreStats stats =
      run_ingest("fleet_ingest_serial", 1,
                 "5.1M events, 1 thread, arena timelines + counting-sort routing "
                 "(PR 7; 1.69s -> 0.94s vs PR-6 per-EPC node maps on the 1-core "
                 "reference box)",
                 batches);
  run_ingest("fleet_ingest_2t", 2, "same batches, 2 threads", batches);
  run_ingest("fleet_ingest_4t", 4, "same batches, 4 threads", batches);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw > 4) {
    run_ingest("fleet_ingest_" + std::to_string(hw) + "t", hw,
               "same batches, hardware concurrency", batches);
  }
  if (session.threads() > 0 && session.threads() != 1 && session.threads() != 2 &&
      session.threads() != 4 && session.threads() != hw) {
    run_ingest("fleet_ingest_" + std::to_string(session.threads()) + "t",
               session.threads(), "same batches, --threads override", batches);
  }

  // Arrival-order invariance: the identical multiset of batches, reversed.
  {
    std::vector<fleet::FacilityBatch> reversed(batches.rbegin(), batches.rend());
    run_ingest("fleet_ingest_reversed", 1, "same batches, arrival order reversed",
               reversed);
  }

  // Obs differential: hooks off must change nothing but the wall clock.
  {
    const bool saved = obs::enabled();
    obs::set_enabled(false);
    run_ingest("fleet_ingest_obs_off", 1, "1 thread, observability disabled",
               batches);
    obs::set_enabled(saved);
  }

  // --- Wire codec throughput: facility 0's whole stream, framed. ---
  {
    std::vector<wire::EventBatch> wire_batches;
    std::size_t wire_events = 0;
    for (const fleet::FacilityBatch& b : batches) {
      if (b.facility != 0) continue;
      wire::EventBatch wb;
      wb.facility = b.facility;
      wb.sent_time_s = b.sent_time_s;
      wb.arrival_time_s = b.arrival_time_s;
      wb.events = b.events;
      wire_events += b.events.size();
      wire_batches.push_back(std::move(wb));
    }
    std::vector<std::vector<std::uint8_t>> frames(wire_batches.size());
    const double encode_s = wall_seconds([&] {
      for (std::size_t i = 0; i < wire_batches.size(); ++i) {
        frames[i] = wire::encode_event_batch_frame(wire_batches[i]);
      }
    });
    std::size_t framed_bytes = 0;
    for (const auto& f : frames) framed_bytes += f.size();
    std::size_t decoded_events = 0;
    bool decode_clean = true;
    const double decode_s = wall_seconds([&] {
      for (const auto& f : frames) {
        const wire::DecodeResult res = wire::next_frame(f, 0);
        if (!res.ok) {
          decode_clean = false;
          continue;
        }
        const auto decoded = wire::decode_event_batch(res.frame);
        if (!decoded.has_value()) {
          decode_clean = false;
          continue;
        }
        decoded_events += decoded->events.size();
      }
    });
    fleet_digest_matches = fleet_digest_matches && decode_clean &&
                           decoded_events == wire_events;
    const double bytes_per_event =
        static_cast<double>(framed_bytes) / static_cast<double>(wire_events);
    char note[96];
    std::snprintf(note, sizeof note, "%.1f bytes/event framed (%zu frames)",
                  bytes_per_event, frames.size());
    entries.push_back({"fleet_wire_encode", encode_s, wire_events, "", 0.0, note});
    entries.push_back({"fleet_wire_decode", decode_s, wire_events, "", 0.0,
                       "strict decode + CRC of the same frames"});
    std::printf("%-24s %.3fs  %s\n", "fleet_wire_encode", encode_s, note);
    std::printf("%-24s %.3fs  %zu events recovered %s\n", "fleet_wire_decode",
                decode_s, decoded_events, decode_clean ? "cleanly" : "WITH ERRORS");
  }

  // --- Checkpoint / restore timing on the fully-loaded store. ---
  {
    fleet::TrackingStore store;
    const std::size_t split = batches.size() / 2;
    for (std::size_t b = 0; b < split; ++b) store.ingest(batches[b]);
    fleet::Checkpointer checkpointer;
    (void)checkpointer.full(store);  // Baseline for the incremental below.
    for (std::size_t b = split; b < batches.size(); ++b) store.ingest(batches[b]);

    std::vector<std::uint8_t> incremental_snap;
    const double inc_s = wall_seconds(
        [&] { incremental_snap = checkpointer.incremental(store); });
    const fleet::CheckpointStats inc_stats = checkpointer.last_stats();

    std::vector<std::uint8_t> full_snap;
    const double full_s = wall_seconds([&] { full_snap = checkpointer.full(store); });
    const fleet::CheckpointStats full_stats = checkpointer.last_stats();

    fleet::TrackingStore restored({64, 1});
    double restore_s = 0.0;
    bool restore_ok = true;
    try {
      restore_s = wall_seconds(
          [&] { restored = fleet::restore_checkpoint(full_snap); });
    } catch (const fleet::CheckpointError& e) {
      restore_ok = false;
      std::fprintf(stderr, "restore_checkpoint failed (%s): %s\n",
                   fleet::checkpoint_error_name(e.kind()), e.what());
    }
    restore_ok = restore_ok && restored.digest() == store.digest() &&
                 store.digest() == serial_digest;
    fleet_digest_matches = fleet_digest_matches && restore_ok;

    char full_note[96], inc_note[96];
    std::snprintf(full_note, sizeof full_note, "%s, %zu shards",
                  human_bytes(full_stats.bytes).c_str(), full_stats.shards_written);
    std::snprintf(inc_note, sizeof inc_note, "%s, %zu shards written, %zu skipped",
                  human_bytes(inc_stats.bytes).c_str(), inc_stats.shards_written,
                  inc_stats.shards_skipped);
    entries.push_back({"fleet_checkpoint_full", full_s,
                       static_cast<std::size_t>(stats.accepted), "", 0.0, full_note});
    entries.push_back({"fleet_checkpoint_incremental", inc_s,
                       static_cast<std::size_t>(stats.accepted), "", 0.0, inc_note});
    entries.push_back({"fleet_restore", restore_s,
                       static_cast<std::size_t>(stats.accepted), "", 0.0,
                       restore_ok ? "digest bit-identical" : "DIGEST MISMATCH"});
    std::printf("%-24s %.3fs  %s\n", "fleet_checkpoint_full", full_s, full_note);
    std::printf("%-24s %.3fs  %s\n", "fleet_checkpoint_incremental", inc_s, inc_note);
    std::printf("%-24s %.3fs  %s\n", "fleet_restore", restore_s,
                restore_ok ? "digest bit-identical" : "DIGEST MISMATCH (BUG)");
  }

  // --- Kill-and-recover matrix: crash mid-ingest under every thread and
  // obs configuration; recovery must land on the uninterrupted digest. ---
  bool crash_recovery_matches = true;
  std::uint64_t matrix_checkpoint_sequence = 0;
  {
    const std::size_t split = batches.size() / 2;
    fleet::TrackingStore first_half;
    for (std::size_t b = 0; b < split; ++b) first_half.ingest(batches[b]);
    fleet::Checkpointer checkpointer;
    const std::vector<std::uint8_t> snapshot = checkpointer.full(first_half);
    matrix_checkpoint_sequence = checkpointer.last_stats().sequence;

    TextTable recovery({"threads", "obs", "restore + finish (s)", "digest"});
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const bool obs_on : {true, false}) {
        const bool saved = obs::enabled();
        obs::set_enabled(obs_on);
        double wall = 0.0;
        bool ok = true;
        try {
          fleet::TrackingStore store({64, 1});
          wall = wall_seconds([&] {
            store = fleet::restore_checkpoint(snapshot, threads);
            std::vector<fleet::FacilityBatch> tail(batches.begin() + split,
                                                   batches.end());
            store.ingest(tail);
          });
          ok = store.digest() == serial_digest;
        } catch (const fleet::CheckpointError& e) {
          ok = false;
          std::fprintf(stderr, "kill-and-recover (%zu threads): %s\n", threads,
                       e.what());
        }
        obs::set_enabled(saved);
        crash_recovery_matches = crash_recovery_matches && ok;
        recovery.add_row({std::to_string(threads), obs_on ? "on" : "off",
                          std::to_string(wall), ok ? "match" : "MISMATCH"});
      }
    }
    std::printf("\nkill-and-recover: checkpoint at %zu/%zu batches (%zu bytes), "
                "then restore + finish under each configuration:\n",
                split, batches.size(), snapshot.size());
    bench::print_table(recovery);
    std::printf("crash recovery digests %s\n\n",
                crash_recovery_matches ? "IDENTICAL to the uninterrupted run"
                                       : "MISMATCH (durability contract broken, BUG)");
  }

  // --- Flight recorder: dump the black box after the kill-and-recover
  // matrix and check its provenance tail names the matrix's checkpoint —
  // i.e. a post-mortem reader could tell which snapshot the crash left. ---
  bool flight_recorder_ok = true;
  if (obs::hooks_enabled()) {
    const char* flight_path = "fleet_loadgen.flight.jsonl";
    flight_recorder_ok = obs::dump_flight_recorder(flight_path);
    const obs::ProvenanceRecord* last_checkpoint = nullptr;
    const std::vector<obs::ProvenanceRecord> trail =
        obs::provenance_log().snapshot();
    for (const obs::ProvenanceRecord& rec : trail) {
      if (rec.hop == obs::BatchHop::kCheckpointed) last_checkpoint = &rec;
    }
    flight_recorder_ok = flight_recorder_ok && last_checkpoint != nullptr &&
                         last_checkpoint->value == matrix_checkpoint_sequence;
    std::printf("flight recorder: dump %s (%llu records, %llu dropped); last "
                "checkpoint hop seq %lld vs matrix seq %llu: %s\n\n",
                flight_path,
                static_cast<unsigned long long>(obs::flight_recorded()),
                static_cast<unsigned long long>(obs::flight_dropped()),
                last_checkpoint == nullptr
                    ? -1LL
                    : static_cast<long long>(last_checkpoint->value),
                static_cast<unsigned long long>(matrix_checkpoint_sequence),
                flight_recorder_ok ? "MATCH" : "MISMATCH (BUG)");
  } else {
    std::printf("flight recorder: obs hooks disabled, dump check skipped\n\n");
  }

  // --- BER-sweep ablation: corruption detection and NAK recovery vs wire
  // bit-error rate, in the paper's R_C-ablation style. ---
  std::uint64_t wire_undetected = 0;
  double wire_min_recovered = 1.0;
  {
    sys::EventLog wire_log;
    for (std::size_t b = 0; b < 200 && b < batches.size(); ++b) {
      wire_log.insert(wire_log.end(), batches[b].events.begin(),
                      batches[b].events.end());
    }
    TextTable ablation({"bit error rate", "frames", "corrupt", "recovered",
                        "quarantined", "recovered frac", "undetected"});
    const double rates[] = {0.0, 1e-6, 1e-5, 1e-4};
    for (const double ber : rates) {
      sys::UploaderConfig config;
      config.batch_size = 32;
      fault::WireCorruptorConfig corruption;
      corruption.bit_error_rate = ber;
      fault::WireCorruptor corruptor(corruption);
      sys::EventUploader uploader(config);
      Rng rng(session.seed() ^ 0xBE5EED);
      double wall = 0.0;
      wall = wall_seconds([&] {
        (void)uploader.upload_wire(wire_log, 0, rng, ber > 0.0 ? &corruptor : nullptr);
      });
      const sys::WireUploadStats& ws = uploader.wire_stats();
      const std::uint64_t affected = ws.batches_recovered + ws.batches_quarantined;
      const double recovered_frac =
          affected == 0 ? 1.0
                        : static_cast<double>(ws.batches_recovered) /
                              static_cast<double>(affected);
      wire_undetected += ws.undetected_corruptions;
      wire_min_recovered = std::min(wire_min_recovered, recovered_frac);
      char rate_label[32], frac_label[32];
      std::snprintf(rate_label, sizeof rate_label, "%.0e", ber);
      std::snprintf(frac_label, sizeof frac_label, "%.4f", recovered_frac);
      ablation.add_row({rate_label, std::to_string(ws.frames_sent),
                        std::to_string(ws.corrupt_frames),
                        std::to_string(ws.batches_recovered),
                        std::to_string(ws.batches_quarantined), frac_label,
                        std::to_string(ws.undetected_corruptions)});
      if (ber == 1e-4) {
        char note[96];
        std::snprintf(note, sizeof note,
                      "BER 1e-4: %llu NAKs, %.4f of affected batches recovered",
                      static_cast<unsigned long long>(ws.nak_retransmits),
                      recovered_frac);
        entries.push_back({"fleet_wire_ber_1e4", wall, wire_log.size(), "", 0.0,
                           note});
      }
    }
    std::printf("wire BER ablation (%zu events, batch size 32, NAK budget %zu):\n",
                wire_log.size(), sys::UploaderConfig{}.max_nak_retransmits);
    bench::print_table(ablation);
    std::printf("undetected corruptions: %llu (must be 0); worst recovered "
                "fraction: %.4f (must be >= 0.99)\n\n",
                static_cast<unsigned long long>(wire_undetected),
                wire_min_recovered);
  }
  const bool wire_gates_pass = wire_undetected == 0 && wire_min_recovered >= 0.99;

  // Query throughput on the serially-built store.
  {
    fleet::TrackingStore store;
    store.ingest(batches);
    fleet::QueryService query(store, registry);
    fleet::FacilityModel model;
    model.reader_read_rates = {0.8, 0.7, 0.6};
    model.reader_live = {true, true, true};
    for (std::uint32_t f = 0; f < kFacilities; ++f) query.set_facility_model(f, model);

    constexpr std::size_t kLocates = 200000;
    double sink = 0.0;
    const double horizon = static_cast<double>(kPasses) * kPassWindowS;
    const double locate_s = wall_seconds([&] {
      for (std::size_t i = 0; i < kLocates; ++i) {
        const std::uint64_t tag = 1 + (i * 7919) % kTagCount;
        sink += query.locate(scene::TagId{tag}, horizon).time_s;
      }
    });
    entries.push_back({"fleet_query_locate", locate_s, kLocates, "", 0.0,
                       "point locate over 40k timelines"});

    track::Manifest manifest;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      manifest.expected.insert(registry.objects()[i]);
    }
    constexpr std::size_t kRecons = 20;
    std::size_t verdicts = 0;
    const double missing_s = wall_seconds([&] {
      for (std::size_t i = 0; i < kRecons; ++i) {
        const fleet::MissingReport report = query.missing(
            manifest, static_cast<fleet::FacilityId>(i % kFacilities),
            horizon - kPassWindowS, horizon);
        verdicts += report.items.size();
      }
    });
    entries.push_back({"fleet_query_missing", missing_s, verdicts, "", 0.0,
                       "2000-object manifest reconciliation x20"});
    if (sink == 42.0) std::puts("");
  }

  // --- End-to-end visibility latency: the earliest-event -> watermark-
  // visible interval per batch, replayed from the generated stream (a pure
  // function of the seed, so the quantiles are deterministic and gate-able
  // by bench_regress). A batch becomes queryable at the later of its
  // backend arrival and its pass-window close; latency is measured from
  // the batch's earliest event time rather than its send time — an on-time
  // batch sends exactly at window close, which would collapse sent ->
  // visible to zero and fall outside the trajectory's wall_s > 0 contract.
  {
    obs::Histogram latency(obs::HistogramSpec{1e-3, 4.0, 16});
    std::size_t late = 0;
    for (const fleet::FacilityBatch& b : batches) {
      const double window_end_s = b.sent_time_s;  // Sent at window close.
      const double visible_s = std::max(window_end_s, b.arrival_time_s);
      double earliest_s = visible_s;
      for (const sys::ReadEvent& ev : b.events) {
        earliest_s = std::min(earliest_s, ev.time_s);
      }
      latency.observe(visible_s - earliest_s);
      if (b.arrival_time_s > b.sent_time_s) ++late;
      if (obs::hooks_enabled() && b.batch_id != 0) {
        obs::provenance_log().record({b.batch_id, obs::BatchHop::kVisible,
                                      b.facility, b.events.size(), visible_s});
      }
    }
    const double p50 = latency.quantile(0.50);
    const double p95 = latency.quantile(0.95);
    const double p99 = latency.quantile(0.99);
    char note[96];
    std::snprintf(note, sizeof note,
                  "event -> watermark-visible, %zu batches (%zu late)",
                  batches.size(), late);
    entries.push_back({"fleet_latency_p50", p50, batches.size(), "", 0.0, note});
    entries.push_back({"fleet_latency_p95", p95, batches.size(), "", 0.0,
                       "95th percentile of the same distribution"});
    entries.push_back({"fleet_latency_p99", p99, batches.size(), "", 0.0,
                       "99th percentile of the same distribution"});
    std::printf("visibility latency (%zu batches, %zu late): p50 %.3fs  "
                "p95 %.3fs  p99 %.3fs\n\n",
                batches.size(), late, p50, p95, p99);
  }

  std::printf("store: %llu accepted, %llu duplicates, %llu repairs, "
              "%llu late batches; digests %s\n\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.duplicates),
              static_cast<unsigned long long>(stats.repairs),
              static_cast<unsigned long long>(stats.late_batches),
              fleet_digest_matches ? "IDENTICAL across all configurations"
                                   : "MISMATCH (determinism contract broken, BUG)");

  TextTable t({"benchmark", "wall (s)", "cells", "vs baseline"});
  for (const Entry& e : entries) {
    t.add_row({e.name, std::to_string(e.wall_s), std::to_string(e.cells),
               e.baseline.empty() ? "-" : (std::to_string(e.speedup) + "x " + e.baseline)});
  }
  bench::print_table(t);
  std::printf("peak RSS: %s\n", human_bytes(peak_rss_bytes()).c_str());

  write_json(out_path, entries, fleet_digest_matches, crash_recovery_matches,
             flight_recorder_ok, wire_undetected, wire_min_recovered);
  std::printf("\nwrote %s\n", out_path);
  return fleet_digest_matches && crash_recovery_matches && flight_recorder_ok &&
                 wire_gates_pass
             ? 0
             : 1;
}
