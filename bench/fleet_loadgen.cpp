// fleet_loadgen — million-event load generator for the fleet store
// (BENCH_FLEET.json).
//
// Drives >= 1M synthetic read events from four facilities through
// fleet::TrackingStore under increasing thread counts, with obs on and
// off, and with the batch arrival order reversed — and requires every
// configuration to produce the bit-identical store digest and query
// answers before any timing is trusted (the store's determinism contract,
// enforced the same way perf_baseline enforces sweep_matches_serial).
// The record lands in the same rfidsim-bench-v1 trajectory: bench_regress
// gates BENCH_FLEET.json -> current run in CI.
//
// The event stream is generated directly (a pure function of --seed)
// rather than through the portal simulator: the store is the unit under
// test here, and this machine should spend its wall clock on ingest, not
// on RF physics. Batches carry realistic transport damage — ~2% are
// re-delivered whole (duplicates) and ~10% arrive after their pass window
// (late timeline repairs) — so the timed path is the defended path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fleet/query.hpp"
#include "fleet/store.hpp"
#include "track/manifest.hpp"
#include "track/registry.hpp"

using namespace rfidsim;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Entry {
  std::string name;
  double wall_s = 0.0;
  std::size_t cells = 0;
  std::string baseline;
  double speedup = 0.0;
  std::string note;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const char* path, const std::vector<Entry>& entries,
                bool fleet_digest_matches) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fleet_loadgen: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"rfidsim-bench-v1\",\n");
  std::fprintf(f, "  \"pr\": 5,\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"fleet_digest_matches\": %s,\n",
               fleet_digest_matches ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"wall_s\": %.6f, \"cells\": %zu",
                 json_escape(e.name).c_str(), e.wall_s, e.cells);
    if (!e.baseline.empty()) {
      std::fprintf(f, ", \"baseline\": \"%s\", \"speedup\": %.3f",
                   json_escape(e.baseline).c_str(), e.speedup);
    }
    if (!e.note.empty()) std::fprintf(f, ", \"note\": \"%s\"", json_escape(e.note).c_str());
    std::fprintf(f, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Workload shape: 4 facilities x 25 passes x 25 batches x 500 events
// = 1,250,000 events over 20,000 tags (~62 sightings per timeline).
constexpr std::uint32_t kFacilities = 4;
constexpr std::size_t kPasses = 25;
constexpr std::size_t kBatchesPerPass = 25;
constexpr std::size_t kEventsPerBatch = 500;
constexpr std::uint64_t kTagCount = 20000;
constexpr double kPassWindowS = 10.0;

/// Generates the full batch sequence — a pure function of `seed`. Each
/// (facility, pass) gets a forked stream, so the content is independent
/// of generation order.
std::vector<fleet::FacilityBatch> generate_batches(std::uint64_t seed) {
  std::vector<fleet::FacilityBatch> batches;
  batches.reserve(kFacilities * kPasses * kBatchesPerPass + 64);
  const Rng root(seed);
  for (std::uint32_t facility = 0; facility < kFacilities; ++facility) {
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      Rng rng = root.fork(facility * 1000 + pass);
      const double begin_s = static_cast<double>(pass) * kPassWindowS;
      for (std::size_t b = 0; b < kBatchesPerPass; ++b) {
        fleet::FacilityBatch batch;
        batch.facility = facility;
        batch.events.reserve(kEventsPerBatch);
        for (std::size_t e = 0; e < kEventsPerBatch; ++e) {
          sys::ReadEvent ev;
          ev.tag = scene::TagId{
              static_cast<std::uint64_t>(rng.uniform_int(1, kTagCount))};
          ev.time_s = begin_s + rng.uniform(0.0, kPassWindowS);
          ev.reader_index = static_cast<std::size_t>(rng.uniform_int(0, 2));
          ev.antenna_index = static_cast<std::size_t>(rng.uniform_int(0, 3));
          batch.events.push_back(ev);
        }
        batch.sent_time_s = begin_s + kPassWindowS;
        // ~10% of batches arrive after the window (retry backoff): their
        // sightings repair timelines that later passes already extended.
        batch.arrival_time_s = rng.bernoulli(0.1)
                                   ? batch.sent_time_s + 2.0 * kPassWindowS
                                   : batch.sent_time_s;
        batches.push_back(std::move(batch));
      }
    }
  }
  // ~2% of batches are re-delivered whole at the end of the stream; the
  // store must absorb them as pure duplicates.
  const std::size_t original = batches.size();
  for (std::size_t b = 0; b < original; b += 50) batches.push_back(batches[b]);
  return batches;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

/// Digest over a deterministic sample of query answers: locate over every
/// 37th tag at three probe times, plus one manifest reconciliation. Must
/// be bit-identical across every store configuration.
std::uint64_t query_digest(const fleet::TrackingStore& store,
                           const track::ObjectRegistry& registry) {
  fleet::QueryService query(store, registry);
  fleet::FacilityModel model;
  model.reader_read_rates = {0.8, 0.7, 0.6};
  model.reader_live = {true, true, true};
  for (std::uint32_t f = 0; f < kFacilities; ++f) query.set_facility_model(f, model);

  std::uint64_t hash = kFnvOffset;
  const double horizon = static_cast<double>(kPasses) * kPassWindowS;
  for (std::uint64_t tag = 1; tag <= kTagCount; tag += 37) {
    for (const double t : {horizon * 0.25, horizon * 0.5, horizon}) {
      const fleet::LocateResult r = query.locate(scene::TagId{tag}, t);
      hash = fnv1a(hash, r.found ? 1 : 0);
      hash = fnv1a(hash, r.facility);
      hash = fnv1a(hash, bits_of(r.time_s));
      hash = fnv1a(hash, bits_of(r.confidence));
    }
  }
  track::Manifest manifest;
  for (std::uint64_t i = 0; i < 500; ++i) {
    manifest.expected.insert(registry.objects()[i]);
  }
  const fleet::MissingReport report =
      query.missing(manifest, 0, horizon - kPassWindowS, horizon);
  hash = fnv1a(hash, report.present.size());
  hash = fnv1a(hash, report.missed_reads.size());
  hash = fnv1a(hash, report.absent.size());
  hash = fnv1a(hash, report.unexpected.size());
  for (const fleet::Reconciliation& item : report.items) {
    hash = fnv1a(hash, item.object.value);
    hash = fnv1a(hash, static_cast<std::uint64_t>(item.verdict));
    hash = fnv1a(hash, bits_of(item.posterior_present));
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  const char* out_path = session.positional().empty()
                             ? "BENCH_FLEET.json"
                             : session.positional()[0].c_str();
  bench::banner("fleet_loadgen - sharded store ingest + query determinism",
                "Drives 1.25M events from 4 facilities through the fleet store\n"
                "at several thread counts; digests must match bit for bit.");

  const std::vector<fleet::FacilityBatch> batches = generate_batches(session.seed());
  std::size_t total_events = 0;
  for (const auto& b : batches) total_events += b.events.size();
  std::printf("generated %zu batches, %zu events (seed %llu)\n\n", batches.size(),
              total_events, static_cast<unsigned long long>(session.seed()));

  track::ObjectRegistry registry;
  for (std::uint64_t i = 1; i <= kTagCount; ++i) {
    const track::ObjectId object = registry.add_object("obj-" + std::to_string(i));
    registry.bind_tag(scene::TagId{i}, object);
  }

  std::vector<Entry> entries;
  bool have_serial = false;
  std::uint64_t serial_digest = 0;
  std::uint64_t serial_query = 0;
  bool fleet_digest_matches = true;
  double serial_s = 0.0;

  auto run_ingest = [&](const std::string& name, std::size_t threads,
                        const std::string& note,
                        const std::vector<fleet::FacilityBatch>& input) {
    fleet::StoreConfig config;
    config.threads = threads;
    fleet::TrackingStore store(config);
    const double wall = wall_seconds([&] { store.ingest(input); });
    const std::uint64_t digest = store.digest();
    const std::uint64_t qdigest = query_digest(store, registry);
    if (!have_serial) {
      have_serial = true;
      serial_digest = digest;
      serial_query = qdigest;
      serial_s = wall;
      entries.push_back({name, wall, total_events, "", 0.0, note});
    } else {
      fleet_digest_matches =
          fleet_digest_matches && digest == serial_digest && qdigest == serial_query;
      entries.push_back({name, wall, total_events, "fleet_ingest_serial",
                         serial_s / wall, note});
    }
    std::printf("%-24s %.3fs  digest %016llx  queries %016llx\n", name.c_str(), wall,
                static_cast<unsigned long long>(digest),
                static_cast<unsigned long long>(qdigest));
    return store.stats();
  };

  const fleet::StoreStats stats =
      run_ingest("fleet_ingest_serial", 1, "1.25M events, 1 thread", batches);
  run_ingest("fleet_ingest_2t", 2, "same batches, 2 threads", batches);
  run_ingest("fleet_ingest_4t", 4, "same batches, 4 threads", batches);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw > 4) {
    run_ingest("fleet_ingest_" + std::to_string(hw) + "t", hw,
               "same batches, hardware concurrency", batches);
  }
  if (session.threads() > 0 && session.threads() != 1 && session.threads() != 2 &&
      session.threads() != 4 && session.threads() != hw) {
    run_ingest("fleet_ingest_" + std::to_string(session.threads()) + "t",
               session.threads(), "same batches, --threads override", batches);
  }

  // Arrival-order invariance: the identical multiset of batches, reversed.
  {
    std::vector<fleet::FacilityBatch> reversed(batches.rbegin(), batches.rend());
    run_ingest("fleet_ingest_reversed", 1, "same batches, arrival order reversed",
               reversed);
  }

  // Obs differential: hooks off must change nothing but the wall clock.
  {
    const bool saved = obs::enabled();
    obs::set_enabled(false);
    run_ingest("fleet_ingest_obs_off", 1, "1 thread, observability disabled",
               batches);
    obs::set_enabled(saved);
  }

  // Query throughput on the serially-built store.
  {
    fleet::TrackingStore store;
    store.ingest(batches);
    fleet::QueryService query(store, registry);
    fleet::FacilityModel model;
    model.reader_read_rates = {0.8, 0.7, 0.6};
    model.reader_live = {true, true, true};
    for (std::uint32_t f = 0; f < kFacilities; ++f) query.set_facility_model(f, model);

    constexpr std::size_t kLocates = 200000;
    double sink = 0.0;
    const double horizon = static_cast<double>(kPasses) * kPassWindowS;
    const double locate_s = wall_seconds([&] {
      for (std::size_t i = 0; i < kLocates; ++i) {
        const std::uint64_t tag = 1 + (i * 7919) % kTagCount;
        sink += query.locate(scene::TagId{tag}, horizon).time_s;
      }
    });
    entries.push_back({"fleet_query_locate", locate_s, kLocates, "", 0.0,
                       "point locate over 20k timelines"});

    track::Manifest manifest;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      manifest.expected.insert(registry.objects()[i]);
    }
    constexpr std::size_t kRecons = 20;
    std::size_t verdicts = 0;
    const double missing_s = wall_seconds([&] {
      for (std::size_t i = 0; i < kRecons; ++i) {
        const fleet::MissingReport report = query.missing(
            manifest, static_cast<fleet::FacilityId>(i % kFacilities),
            horizon - kPassWindowS, horizon);
        verdicts += report.items.size();
      }
    });
    entries.push_back({"fleet_query_missing", missing_s, verdicts, "", 0.0,
                       "2000-object manifest reconciliation x20"});
    if (sink == 42.0) std::puts("");
  }

  std::printf("\nstore: %llu accepted, %llu duplicates, %llu repairs, "
              "%llu late batches; digests %s\n\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.duplicates),
              static_cast<unsigned long long>(stats.repairs),
              static_cast<unsigned long long>(stats.late_batches),
              fleet_digest_matches ? "IDENTICAL across all configurations"
                                   : "MISMATCH (determinism contract broken, BUG)");

  TextTable t({"benchmark", "wall (s)", "cells", "vs baseline"});
  for (const Entry& e : entries) {
    t.add_row({e.name, std::to_string(e.wall_s), std::to_string(e.cells),
               e.baseline.empty() ? "-" : (std::to_string(e.speedup) + "x " + e.baseline)});
  }
  bench::print_table(t);

  write_json(out_path, entries, fleet_digest_matches);
  std::printf("\nwrote %s\n", out_path);
  return fleet_digest_matches ? 0 : 1;
}
