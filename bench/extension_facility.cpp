// Extension: end-to-end shipment visibility through a multi-portal route.
//
// The paper's pharma-pilot citation [1] reports per-stage read rates from
// under 10% to 100% across a shipping process; what the operator cares
// about is the compounded, end-to-end number. This bench pushes shipments
// through a four-checkpoint route and shows how per-case full-trace
// visibility collapses multiplicatively with weak tagging, and what each
// remedy recovers: better tag placement, a second tag, portal redundancy
// at the weakest checkpoint, and back-end route cleaning.
#include "bench_util.hpp"
#include "reliability/facility.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

std::vector<FacilityCheckpoint> standard_route(std::size_t weak_checkpoint_antennas) {
  FacilityCheckpoint inbound{"inbound dock", {}, 1.0};
  inbound.portal.antenna_count = 2;
  FacilityCheckpoint aisle{"aisle reader", {}, 2.0};  // Forklift speed, one antenna.
  aisle.portal.antenna_count = weak_checkpoint_antennas;
  FacilityCheckpoint staging{"staging", {}, 1.0};
  FacilityCheckpoint outbound{"outbound dock", {}, 1.0};
  outbound.portal.antenna_count = 2;
  return {inbound, aisle, staging, outbound};
}

struct Numbers {
  double full_trace = 0.0;
  double cleaned_full_trace = 0.0;
  double delivered = 0.0;
};

Numbers evaluate(const ShipmentSpec& shipment, std::size_t weak_antennas,
                 const CalibrationProfile& cal, std::size_t shipments = 10) {
  const FacilitySimulator facility(standard_route(weak_antennas), shipment, cal);
  Numbers sum;
  for (std::uint64_t seed = 0; seed < shipments; ++seed) {
    const FacilityRun raw = facility.run_shipment(bench::kSeed + seed);
    const FacilityRun cleaned = FacilitySimulator::clean_with_route_constraint(raw);
    sum.full_trace += raw.full_trace_fraction;
    sum.cleaned_full_trace += cleaned.full_trace_fraction;
    sum.delivered += raw.delivered_fraction;
  }
  const double n = static_cast<double>(shipments);
  return {sum.full_trace / n, sum.cleaned_full_trace / n, sum.delivered / n};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Extension - end-to-end facility visibility",
                "Four checkpoints (2-antenna docks, a fast 1-antenna aisle, staging);\n"
                "full trace = case seen at EVERY checkpoint. Reliability compounds.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"shipment tagging", "aisle antennas", "full trace (raw)",
               "full trace (+route cleaning)", "delivered"});
  {
    ShipmentSpec s;
    s.tag_faces = {scene::BoxFace::Top};  // The placement nobody should use.
    const Numbers n = evaluate(s, 1, cal);
    t.add_row({"1 tag, top", "1", percent(n.full_trace), percent(n.cleaned_full_trace),
               percent(n.delivered)});
  }
  {
    ShipmentSpec s;
    s.tag_faces = {scene::BoxFace::Front};
    const Numbers n = evaluate(s, 1, cal);
    t.add_row({"1 tag, front", "1", percent(n.full_trace),
               percent(n.cleaned_full_trace), percent(n.delivered)});
  }
  {
    ShipmentSpec s;
    s.tag_faces = {scene::BoxFace::Front};
    const Numbers n = evaluate(s, 2, cal);
    t.add_row({"1 tag, front", "2", percent(n.full_trace),
               percent(n.cleaned_full_trace), percent(n.delivered)});
  }
  {
    ShipmentSpec s;
    s.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    const Numbers n = evaluate(s, 1, cal);
    t.add_row({"2 tags, front+side", "1", percent(n.full_trace),
               percent(n.cleaned_full_trace), percent(n.delivered)});
  }
  {
    ShipmentSpec s;
    s.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    const Numbers n = evaluate(s, 2, cal);
    t.add_row({"2 tags, front+side", "2", percent(n.full_trace),
               percent(n.cleaned_full_trace), percent(n.delivered)});
  }
  bench::print_table(t);
  std::printf(
      "\nReading: per-checkpoint reliabilities compound — ~90%% stages end at ~70%%\n"
      "full traces, and a single bad placement (top) collapses to single digits,\n"
      "the pharma pilot's experience. Tag redundancy fixes it at\n"
      "the source; route cleaning recovers traces but only up to the final\n"
      "checkpoint's own reliability (delivery cannot be inferred).\n");
  return 0;
}
