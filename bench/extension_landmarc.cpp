// Extension (paper reference [11]): LANDMARC indoor localization.
//
// The paper cites LANDMARC as the active-RFID approach to human location
// sensing. This bench builds a 6 m x 6 m room with four corner antennas
// (one reader, TDMA), a grid of active reference tags at known positions,
// and active target tags at random spots, then localizes the targets from
// RSSI signatures and reports the error distribution — sweeping the two
// LANDMARC design knobs, k (neighbours) and reference-grid pitch.
#include <memory>

#include "bench_util.hpp"
#include "locate/landmarc.hpp"
#include "system/portal.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

constexpr double kRoom = 6.0;
constexpr std::uint64_t kTargetBase = 5000;

struct Room {
  scene::Scene scene;
  std::vector<locate::ReferenceTag> references;
  std::vector<Vec3> target_truth;  // Indexed by target ordinal.
};

/// Places one static active tag.
void place_tag(scene::Scene& s, scene::TagId id, const Vec3& position) {
  Pose pose;
  pose.position = position;
  pose.frame.forward = {1.0, 0.0, 0.0};
  pose.frame.up = {0.0, 0.0, 1.0};
  scene::Entity holder("tag " + std::to_string(id.value), std::monostate{},
                       rf::Material::Air,
                       std::make_unique<scene::StaticTrajectory>(pose));
  scene::TagMount m;
  m.local_dipole_axis = {0.0, 0.0, 1.0};  // Vertical whips, like LANDMARC's.
  m.local_patch_normal = {1.0, 0.0, 0.0};
  m.backing_material = rf::Material::Air;
  m.design = rf::TagDesign::active_beacon();
  holder.add_tag(scene::Tag{id, m});
  s.entities.push_back(std::move(holder));
}

Room build_room(double grid_pitch_m, std::size_t targets, Rng& rng) {
  Room room;
  // Four corner antennas looking inward.
  const double h = 1.5;
  room.scene.antennas.push_back(
      scene::Scene::make_antenna({0.0, 0.0, h}, {1.0, 1.0, 0.0}));
  room.scene.antennas.push_back(
      scene::Scene::make_antenna({kRoom, 0.0, h}, {-1.0, 1.0, 0.0}));
  room.scene.antennas.push_back(
      scene::Scene::make_antenna({kRoom, kRoom, h}, {-1.0, -1.0, 0.0}));
  room.scene.antennas.push_back(
      scene::Scene::make_antenna({0.0, kRoom, h}, {1.0, -1.0, 0.0}));

  std::uint64_t id = 1;
  for (double x = grid_pitch_m / 2.0; x < kRoom; x += grid_pitch_m) {
    for (double y = grid_pitch_m / 2.0; y < kRoom; y += grid_pitch_m) {
      const scene::TagId tag{id++};
      place_tag(room.scene, tag, {x, y, 1.0});
      room.references.push_back({tag, {x, y, 1.0}});
    }
  }
  for (std::size_t t = 0; t < targets; ++t) {
    const Vec3 p{rng.uniform(0.5, kRoom - 0.5), rng.uniform(0.5, kRoom - 0.5), 1.0};
    place_tag(room.scene, scene::TagId{kTargetBase + t}, p);
    room.target_truth.push_back(p);
  }
  return room;
}

SampleSummary localization_errors(double grid_pitch_m, std::size_t k,
                                  const CalibrationProfile& base) {
  CalibrationProfile cal = base;
  cal.inventory.dual_target = true;  // Keep RSSI flowing from every tag.

  Rng rng(bench::kSeed);
  const std::size_t targets = 12;
  Room room = build_room(grid_pitch_m, targets, rng);

  PortalOptions options;  // One reader drives all four antennas.
  sys::PortalConfig portal =
      make_portal_config(cal, options, room.scene.antennas.size(), 4.0);
  portal.readers[0].antenna_indices = {0, 1, 2, 3};
  portal.readers[0].antenna_dwell_s = 0.08;
  // Installed, surveyed tags: minimal per-deployment variation (the badge-
  // swing pass_sigma of the portal scenarios does not apply here).
  portal.pass_sigma_db = 1.0;
  // An open lab room, not a cluttered dock door: milder shadowing. (Our
  // shadowing is i.i.d. per path, so unlike real LANDMARC the references
  // cannot calibrate it out - it sets the error floor here.)
  portal.shadow_sigma_db = 2.5;

  sys::PortalSimulator sim(room.scene, portal);
  Rng run_rng(bench::kSeed + k);
  const sys::EventLog log = sim.run(run_rng);
  const auto signatures = locate::build_signatures(log, room.scene.antennas.size());

  const locate::LandmarcLocator locator(room.references, k);
  std::vector<double> errors;
  for (std::size_t t = 0; t < targets; ++t) {
    const auto it = signatures.find(scene::TagId{kTargetBase + t});
    if (it == signatures.end()) continue;  // Target never heard (rare).
    const auto estimate = locator.locate(it->second, signatures);
    errors.push_back(estimate.position.distance_to(room.target_truth[t]));
  }
  return summarize(errors);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Extension - LANDMARC localization (active reference tags)",
                "6 m x 6 m room, 4 corner antennas, active tags; localization\n"
                "error vs. neighbour count k and reference-grid pitch.\n"
                "LANDMARC's paper reports ~1 m median error with k=4 on a 1 m grid.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"reference pitch", "k", "median error (m)", "mean", "p75"});
  for (const double pitch : {2.0, 1.0}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                std::size_t{5}}) {
      const SampleSummary s = localization_errors(pitch, k, cal);
      t.add_row({fixed_str(pitch, 1) + " m", std::to_string(k),
                 fixed_str(s.median, 2), fixed_str(s.mean, 2),
                 fixed_str(s.upper_quartile, 2)});
    }
  }
  bench::print_table(t);
  return 0;
}
