// Ablation — competing redundancy axes: tags vs sessions vs MPR.
//
// The paper's reliability recipe is physical redundancy: more tags per
// object, more antennas per portal (R_C = 1 - prod(1 - P_i), §4). The
// gen2::reliable subsystem adds two PROTOCOL redundancy axes that need no
// extra hardware on the object: K independent inventory passes on distinct
// Gen 2 sessions (Jacobsen et al.), and multi-packet-reception readers
// that decode up to M simultaneous replies per slot (Pudasaini et al.).
// This ablation puts the three axes side by side on the object-tracking
// rig, checks the session-fusion measurement against the independence
// model 1 - prod(1 - p_k), and validates the closed-form MPR optimal Q
// against simulated round durations.
//
// Deterministic: fixed seed, byte-identical across repeats and across obs
// on/off/compiled-out. Exits non-zero when the measured fused rate drifts
// from the analytical model beyond tolerance or the simulated optimal Q
// disagrees with the closed form — correctness gates, not perf gates.
//
// Usage: ablation_redundancy_axes [BENCH_REDUNDANCY_current.json]
// The optional positional path receives rfidsim-bench-v1 records whose
// wall_s fields are SIMULATED seconds (pure functions of the seed), so CI
// can ratio-gate them tightly (see bench/regress.thresholds).
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen2/reliable/fusion.hpp"
#include "gen2/reliable/mpr.hpp"
#include "gen2/reliable/multi_session.hpp"
#include "reliability/analytical.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;
using gen2::reliable::FusionConfig;
using gen2::reliable::FusionResult;
using gen2::reliable::FusionRule;
using gen2::reliable::MultiSessionConfig;
using gen2::reliable::MultiSessionInventory;
using gen2::reliable::MultiSessionResult;
using gen2::reliable::SessionFusion;
using gen2::reliable::SessionModel;
using gen2::reliable::SessionSchedule;

namespace {

/// Fresh lossy population for the engine-level sections: n tags, all
/// powered, uniform decode probability, equal powers (no capture escapes).
struct Population {
  std::vector<gen2::TagState> states;
  std::vector<gen2::TagLink> links;

  Population(std::size_t n, double decode_probability) {
    states.resize(n);
    links.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      states[i].set_powered(true, 0.0);
      links[i].powered = true;
      links[i].reply_decode_probability = decode_probability;
      links[i].rx_power = DbmPower(-55.0);
    }
  }
};

struct SimRecord {
  std::string name;
  double sim_s = 0.0;
  std::size_t cells = 0;
  std::string note;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner(
      "Ablation - redundancy axes: tags/object vs sessions (K) vs MPR (M)",
      "Physical redundancy (paper section 4) vs the gen2::reliable protocol\n"
      "axes: K-session inventory fusion and multi-packet reception, against\n"
      "the analytical independence model R_C = 1 - prod(1 - P_i).");
  const CalibrationProfile cal = bench::profile();
  bool gates_ok = true;
  std::vector<SimRecord> records;

  // ------------------------------------------------------------------ [1]
  // The three axes head to head on the object-tracking portal: same rig,
  // one knob at a time, any-of fusion throughout (tracking reliability
  // counts an object when ANY of its reads landed, whichever session).
  std::printf("[1] competing axes on the object-tracking portal (24 passes)\n");
  {
    TextTable t({"configuration", "axis", "tracking reliability", "vs. baseline"});
    sys::InventoryStrategy multi;
    multi.mode = sys::InventoryMode::kMultiSession;
    multi.sessions = {gen2::Session::S1, gen2::Session::S2, gen2::Session::S3};
    const sys::InventoryStrategy single{};
    const struct {
      const char* label;
      const char* axis;
      std::size_t tag_faces;
      sys::InventoryStrategy strategy;
      bool interleaved;
      int mpr;
    } rows[] = {
        {"1 tag/object, K=1, M=1", "baseline", 1, single, true, 1},
        {"2 tags/object", "tags", 2, single, true, 1},
        {"K=3 sessions, interleaved", "sessions", 1, multi, true, 1},
        {"K=3 sessions, sequential", "sessions", 1, multi, false, 1},
        {"M=2 MPR reader", "mpr", 1, single, true, 2},
        {"2 tags + K=3 + M=2", "all", 2, multi, true, 2},
    };
    double baseline = 0.0;
    for (const auto& r : rows) {
      ObjectScenarioOptions opt;
      opt.tag_faces = {scene::BoxFace::Front};
      if (r.tag_faces == 2) opt.tag_faces.push_back(scene::BoxFace::Back);
      opt.portal.antenna_count = 2;
      opt.portal.strategy = r.strategy;
      opt.portal.strategy.interleaved = r.interleaved;
      opt.portal.mpr_capacity = r.mpr;
      const double rel = measure_tracking_reliability(
          make_object_tracking_scenario(opt, cal), 24, session.seed());
      if (baseline == 0.0) baseline = rel;
      const double delta = rel - baseline;
      t.add_row({r.label, r.axis, percent(rel),
                 (delta >= 0 ? "+" : "") + percent(delta)});
    }
    bench::print_table(t);
    std::printf(
        "note: tracking reliability counts ANY read per pass, so on this rig\n"
        "the physical axis (tags/object) dominates; session redundancy pays\n"
        "in identification confidence (sections [2]-[3]) and trades slot\n"
        "contention here, since tags answer every session's rounds.\n\n");
  }

  // ------------------------------------------------------------------ [2]
  // Session fusion vs the independence model, at the engine level where
  // the passes share nothing but the physical channel: per-session rates
  // p_k measured from the sweep, fused any-of rate compared against
  // R_C = 1 - prod(1 - p_k). This is the subsystem's correctness gate.
  std::printf("[2] measured fused detection vs R_C = 1 - prod(1 - p_k)\n");
  constexpr double kTolerance = 0.02;
  {
    TextTable t({"sessions K", "per-session p_k", "measured fused", "analytical R_C",
                 "|delta|", "verdict"});
    constexpr std::size_t kTags = 40;
    constexpr int kPasses = 300;
    const std::vector<gen2::Session> all_sessions = {
        gen2::Session::S1, gen2::Session::S2, gen2::Session::S3};
    for (std::size_t k = 1; k <= 3; ++k) {
      MultiSessionConfig cfg;
      cfg.base.q.initial_q = 4.0;
      cfg.sessions.assign(all_sessions.begin(), all_sessions.begin() + k);
      cfg.rounds_per_session = 1;
      cfg.schedule = SessionSchedule::kInterleaved;

      std::vector<std::size_t> session_reads(k, 0);
      std::size_t fused_reads = 0;
      double sim_seconds = 0.0;
      Rng rng(session.seed());
      for (int pass = 0; pass < kPasses; ++pass) {
        MultiSessionInventory inv(cfg);
        Population pop(kTags, 0.55);
        const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
        sim_seconds += r.total_duration_s;
        for (std::size_t s = 0; s < k; ++s) {
          session_reads[s] += r.per_session[s].read_tags.size();
        }
        for (std::size_t c : r.sessions_seen) {
          if (c > 0) ++fused_reads;
        }
      }

      const double denom = static_cast<double>(kTags) * kPasses;
      std::vector<double> rates(k);
      std::string rates_str;
      for (std::size_t s = 0; s < k; ++s) {
        rates[s] = static_cast<double>(session_reads[s]) / denom;
        if (s) rates_str += " ";
        rates_str += percent(rates[s]);
      }
      const double analytical = expected_reliability(rates);
      const double measured = static_cast<double>(fused_reads) / denom;
      const double delta = std::abs(measured - analytical);
      const bool pass_ok = delta <= kTolerance;
      gates_ok = gates_ok && pass_ok;
      t.add_row({"K=" + std::to_string(k), rates_str, percent(measured),
                 percent(analytical), percent(delta), pass_ok ? "ok" : "DRIFT"});
      records.push_back({"redundancy_sessions_k" + std::to_string(k),
                         sim_seconds / kPasses, kTags * kPasses,
                         "mean simulated sweep seconds/pass, " +
                             std::to_string(k) + " session(s), 40 lossy tags"});
    }
    bench::print_table(t);
    std::printf("gate: |measured - analytical| <= %.0f%% per K\n\n",
                kTolerance * 100.0);
  }

  // Fusion rules on one shared sweep: how the decision rule trades
  // detection against ghost suppression at K=3.
  std::printf("[3] fusion rules at K=3 (Bayes posterior per agreement count)\n");
  {
    FusionConfig fc;
    fc.sessions = {SessionModel{gen2::Session::S1, 0.65, 0.01},
                   SessionModel{gen2::Session::S2, 0.65, 0.01},
                   SessionModel{gen2::Session::S3, 0.65, 0.01}};
    TextTable conf({"sessions agreeing", "posterior confidence"});
    const SessionFusion any_of(fc);
    for (std::size_t seen = 0; seen <= 3; ++seen) {
      conf.add_row({std::to_string(seen), percent(any_of.posterior(seen))});
    }
    bench::print_table(conf);

    // A synthetic 1000-tag census where 3% of per-session reads are
    // ghosts: counts per rule. Deterministic closed-form expectation
    // table (no RNG): tags seen by c of 3 sessions follow the binomial.
    TextTable rules({"rule", "detected of 1000 present", "ghosts of 100 absent"});
    const double p = 0.65;
    const double f = 0.01;
    auto binom3 = [](double q, int c) {
      const double miss = 1.0 - q;
      switch (c) {
        case 0: return miss * miss * miss;
        case 1: return 3.0 * q * miss * miss;
        case 2: return 3.0 * q * q * miss;
        default: return q * q * q;
      }
    };
    for (const auto rule : {FusionRule::kAnyOf, FusionRule::kMajority,
                            FusionRule::kWeighted}) {
      FusionConfig rc = fc;
      rc.rule = rule;
      rc.confidence_threshold = 0.9;
      const SessionFusion fusion(rc);
      double detected = 0.0;
      double ghosts = 0.0;
      for (int c = 0; c <= 3; ++c) {
        // Decide via the same code path fuse() uses, at each count.
        FusionResult verdict =
            fusion.fuse(std::vector<std::size_t>(1, static_cast<std::size_t>(c)));
        if (verdict.verdicts[0].present) {
          detected += 1000.0 * binom3(p, c);
          ghosts += 100.0 * binom3(f, c);
        }
      }
      const char* label = rule == FusionRule::kAnyOf ? "any-of"
                          : rule == FusionRule::kMajority ? "majority"
                                                          : "weighted(0.9)";
      char det[32];
      char gho[32];
      std::snprintf(det, sizeof det, "%.1f", detected);
      std::snprintf(gho, sizeof gho, "%.2f", ghosts);
      rules.add_row({label, det, gho});
    }
    bench::print_table(rules);
  }

  // ------------------------------------------------------------------ [4]
  // MPR optimal Q: the closed form lambda*(M) (Q offset -log2 lambda*)
  // against the simulated argmax of decodes-per-slot over a frozen-Q
  // round. Per-slot throughput is the quantity the closed form optimizes
  // (time-to-drain would reward higher Q, since empty slots are cheaper
  // than collisions and the Q algorithm adapts between rounds).
  std::printf("[4] MPR optimal Q: closed form (Pudasaini) vs simulation\n");
  {
    TextTable t({"M", "lambda*", "Q offset", "closed-form Q* (N=64)",
                 "simulated best Q", "decodes/slot @ Q*", "verdict"});
    constexpr std::size_t kPopulation = 64;
    constexpr int kRepeats = 200;
    for (const int m : {1, 2, 4}) {
      const int q_closed = gen2::reliable::optimal_q(kPopulation, m);
      int best_q = -1;
      double best_tp = 0.0;
      double tp_at_closed = 0.0;
      double round_s_at_closed = 0.0;
      for (int q = 3; q <= 9; ++q) {
        gen2::InventoryConfig cfg;
        cfg.q.initial_q = static_cast<double>(q);
        cfg.q.min_q = q;  // Freeze Q: one frame at exactly this load, so
        cfg.q.max_q = q;  // the sweep isolates the quantity under test.
        cfg.q.step_collision = 0.0;
        cfg.q.step_empty = 0.0;
        cfg.mpr_capacity = m;
        double decodes = 0.0;
        double slots = 0.0;
        double seconds = 0.0;
        Rng rng(session.seed() + static_cast<std::uint64_t>(m * 100 + q));
        for (int rep = 0; rep < kRepeats; ++rep) {
          gen2::InventoryEngine engine(cfg);
          Population pop(kPopulation, 1.0);
          const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
          decodes += static_cast<double>(r.singulated.size());
          slots += static_cast<double>(r.total_slots);
          seconds += r.duration_s;
        }
        const double tp = decodes / slots;
        if (best_q < 0 || tp > best_tp) {
          best_q = q;
          best_tp = tp;
        }
        if (q == q_closed) {
          tp_at_closed = tp;
          round_s_at_closed = seconds / kRepeats;
        }
      }
      // The throughput curve is flat near the optimum; the closed form
      // must land within one Q step of the simulated argmax.
      const bool q_ok = std::abs(best_q - q_closed) <= 1;
      gates_ok = gates_ok && q_ok;
      char lambda_buf[32];
      char offset_buf[32];
      char tp_buf[32];
      std::snprintf(lambda_buf, sizeof lambda_buf, "%.4f",
                    gen2::reliable::optimal_slot_load(m));
      std::snprintf(offset_buf, sizeof offset_buf, "%+.3f",
                    gen2::reliable::optimal_q_offset(m));
      std::snprintf(tp_buf, sizeof tp_buf, "%.4f", tp_at_closed);
      t.add_row({std::to_string(m), lambda_buf, offset_buf,
                 std::to_string(q_closed), std::to_string(best_q), tp_buf,
                 q_ok ? "ok" : "OFF-BY->1"});
      records.push_back({"redundancy_mpr_m" + std::to_string(m),
                         round_s_at_closed, kPopulation * kRepeats,
                         "mean simulated seconds for one frozen-Q round over "
                         "64 tags at the closed-form Q*, M=" +
                             std::to_string(m)});
    }
    bench::print_table(t);
    std::printf("gate: |simulated argmax Q - closed-form Q*| <= 1 per M\n\n");
  }

  // Optional rfidsim-bench-v1 record (simulated-time walls; deterministic).
  if (!session.positional().empty()) {
    const std::string& path = session.positional().front();
    std::ofstream out(path);
    out << "{\n  \"schema\": \"rfidsim-bench-v1\",\n  \"pr\": 10,\n"
        << "  \"redundancy_gates_ok\": " << (gates_ok ? "true" : "false")
        << ",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
      char line[384];
      std::snprintf(line, sizeof line,
                    "    {\"name\": \"%s\", \"wall_s\": %.6f, \"cells\": %zu, "
                    "\"note\": \"%s\"}%s\n",
                    records[i].name.c_str(), records[i].sim_s, records[i].cells,
                    records[i].note.c_str(), i + 1 < records.size() ? "," : "");
      out << line;
    }
    out << "  ]\n}\n";
    std::printf("wrote redundancy record to %s\n", path.c_str());
  }

  std::printf("verdict: %s\n",
              gates_ok ? "all redundancy gates passed"
                       : "REDUNDANCY GATE FAILED (see tables above)");
  return gates_ok ? 0 : 1;
}
