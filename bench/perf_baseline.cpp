// Machine-readable performance baseline (BENCH_3.json).
//
// Times the three layers the sweep work optimises — raw path evaluation,
// inventory rounds, and full Monte Carlo table sweeps — on this machine,
// and emits a JSON record so the perf trajectory can be compared across
// commits (schema in EXPERIMENTS.md). Every timed workload is the real
// paper workload: the full-table sweep is Table 1's four tag locations,
// run once over the serial seed path and once through rfidsim::sweep, and
// the two event streams are cross-checked for equality before any timing
// is reported — a speedup that changed the physics would be a bug, not a
// result. Since PR 3 the same standard applies to observability: the
// final section replays a full pass with metrics + tracing enabled and
// again with both disabled, and the event streams must be byte-identical
// (obs is feedback-free by contract, and this is where the contract is
// enforced).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scene/batch_evaluator.hpp"
#include "sweep/sweep.hpp"
#include "system/portal.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Entry {
  std::string name;
  double wall_s = 0.0;
  std::size_t cells = 0;       ///< Unit count (evaluations, rounds, passes).
  std::string baseline;        ///< Entry this one's speedup is relative to.
  double speedup = 0.0;        ///< 0 when the entry IS a baseline.
  std::string note;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const char* path, const std::vector<Entry>& entries,
                bool sweep_matches_serial, bool obs_matches_disabled,
                bool batch_matches_scalar) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_baseline: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"rfidsim-bench-v1\",\n");
  std::fprintf(f, "  \"pr\": 7,\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"sweep_matches_serial\": %s,\n",
               sweep_matches_serial ? "true" : "false");
  std::fprintf(f, "  \"obs_matches_disabled\": %s,\n",
               obs_matches_disabled ? "true" : "false");
  std::fprintf(f, "  \"batch_matches_scalar\": %s,\n",
               batch_matches_scalar ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"wall_s\": %.6f, \"cells\": %zu",
                 json_escape(e.name).c_str(), e.wall_s, e.cells);
    if (!e.baseline.empty()) {
      std::fprintf(f, ", \"baseline\": \"%s\", \"speedup\": %.3f",
                   json_escape(e.baseline).c_str(), e.speedup);
    }
    if (!e.note.empty()) std::fprintf(f, ", \"note\": \"%s\"", json_escape(e.note).c_str());
    std::fprintf(f, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

std::size_t total_events(const RepeatedRuns& runs) {
  std::size_t n = 0;
  for (const auto& log : runs.logs) n += log.size();
  return n;
}

/// Exact (bitwise-through-operator==) equality of every PathTerms field.
bool terms_equal(const rf::PathTerms& a, const rf::PathTerms& b) {
  return a.distance_m == b.distance_m && a.reader_gain == b.reader_gain &&
         a.tag_gain == b.tag_gain && a.polarization_loss == b.polarization_loss &&
         a.material_loss == b.material_loss && a.coupling_loss == b.coupling_loss &&
         a.blockage_loss == b.blockage_loss && a.reflection_gain == b.reflection_gain &&
         a.multipath_gain == b.multipath_gain;
}

bool logs_equal(const RepeatedRuns& a, const RepeatedRuns& b) {
  if (a.logs.size() != b.logs.size()) return false;
  for (std::size_t r = 0; r < a.logs.size(); ++r) {
    if (a.logs[r].size() != b.logs[r].size()) return false;
    for (std::size_t i = 0; i < a.logs[r].size(); ++i) {
      const sys::ReadEvent& x = a.logs[r][i];
      const sys::ReadEvent& y = b.logs[r][i];
      if (x.tag != y.tag || x.time_s != y.time_s || x.reader_index != y.reader_index ||
          x.antenna_index != y.antenna_index || x.rssi.value() != y.rssi.value()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  const char* out_path =
      session.positional().empty() ? "BENCH_3.json" : session.positional()[0].c_str();
  bench::banner("perf_baseline - sweep engine, geometry cache, obs differential",
                "Times path evaluation, inventory rounds and full-table sweeps;\n"
                "writes the machine-readable record to BENCH_3.json.");
  const CalibrationProfile cal = bench::profile();
  std::vector<Entry> entries;

  // --- 1. Raw path evaluation, static scene (Fig. 2 rig at 4 m). -----------
  // The static-geometry cache memoizes the full rf::PathTerms per
  // (antenna, tag) here, so the cached pass prices a lookup, the uncached
  // pass prices the whole occlusion/coupling/reflector walk.
  {
    const Scenario sc = make_read_range_scenario(4.0, cal);
    const auto tags = sc.scene.all_tags();
    constexpr std::size_t kSweeps = 2000;
    double sink = 0.0;

    auto time_eval = [&](bool cached) {
      scene::EvaluatorParams params = sc.portal.evaluator;
      params.static_geometry_cache = cached;
      const scene::PathEvaluator eval(sc.scene, params);
      return wall_seconds([&] {
        for (std::size_t pass = 0; pass < kSweeps; ++pass) {
          for (const auto& tag : tags) {
            sink += eval.evaluate(0, tag, 0.0).distance_m;
          }
        }
      });
    };

    const double uncached_s = time_eval(false);
    const double cached_s = time_eval(true);
    entries.push_back({"path_eval_static_uncached", uncached_s, kSweeps * tags.size(),
                       "", 0.0, "20-tag read-range grid, full re-evaluation"});
    entries.push_back({"path_eval_static_cached", cached_s, kSweeps * tags.size(),
                       "path_eval_static_uncached", uncached_s / cached_s,
                       "same grid through the static-geometry cache"});

    // The batch kernel on the same grid, cache off: its edge on a static
    // scene is geometry hoisting alone (poses and tag vectors derived once,
    // not per evaluation).
    {
      scene::EvaluatorParams params = sc.portal.evaluator;
      params.static_geometry_cache = false;
      scene::BatchPathEvaluator batch(sc.scene, params);
      std::vector<rf::PathTerms> terms;
      const double batch_s = wall_seconds([&] {
        for (std::size_t pass = 0; pass < kSweeps; ++pass) {
          batch.evaluate_all(0, 0.0, terms);
          for (const rf::PathTerms& term : terms) sink += term.distance_m;
        }
      });
      entries.push_back({"path_eval_batch_static", batch_s, kSweeps * tags.size(),
                         "path_eval_static_uncached", uncached_s / batch_s,
                         "same grid through the SoA batch kernel, cache off"});
    }
    if (sink == 42.0) std::puts("");  // Defeat dead-code elimination.
  }

  // --- 2. Raw path evaluation, moving scene (Table 1 cart): scalar oracle
  // vs the SoA batch kernel. Entities move, so no cache engages on either
  // path — this is the honest per-evaluation cost, and the workload the
  // batch refactor targets (one reader round = every tag at one instant).
  // Outputs are bit-compared term by term before the speedup is trusted:
  // batch_matches_scalar = false poisons the record exactly like a sweep
  // mismatch would.
  bool batch_matches_scalar = true;
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front};
    const Scenario sc = make_object_tracking_scenario(opt, cal);
    const auto tags = sc.scene.all_tags();
    const scene::PathEvaluator eval(sc.scene, sc.portal.evaluator);
    constexpr std::size_t kSteps = 400;
    double sink = 0.0;
    const double t0 = sc.portal.start_time_s;
    const double dt = (sc.portal.end_time_s - t0) / static_cast<double>(kSteps);
    // Both walls are best-of-3: the ratio below is held to an absolute
    // floor by bench_regress, and the two loops run at different moments,
    // so a transient load spike on a shared runner would otherwise skew
    // the speedup. The min discards the disturbed reps.
    constexpr int kReps = 3;
    const auto best_of = [&](auto&& body) {
      double best = wall_seconds(body);
      for (int rep = 1; rep < kReps; ++rep) {
        best = std::min(best, wall_seconds(body));
      }
      return best;
    };
    const double scalar_wall = best_of([&] {
      for (std::size_t s = 0; s < kSteps; ++s) {
        for (const auto& tag : tags) {
          sink += eval.evaluate(0, tag, t0 + dt * static_cast<double>(s)).distance_m;
        }
      }
    });
    entries.push_back({"path_eval_moving", scalar_wall, kSteps * tags.size(), "", 0.0,
                       "12-box cart, scalar oracle, cache bypassed (entities move)"});

    scene::BatchPathEvaluator batch(sc.scene, sc.portal.evaluator);
    std::vector<rf::PathTerms> terms;
    const double batch_wall = best_of([&] {
      for (std::size_t s = 0; s < kSteps; ++s) {
        batch.evaluate_all(0, t0 + dt * static_cast<double>(s), terms);
        for (const rf::PathTerms& term : terms) sink += term.distance_m;
      }
    });
    entries.push_back({"path_eval_batch_moving", batch_wall, kSteps * tags.size(),
                       "path_eval_moving", scalar_wall / batch_wall,
                       "same cart workload through the SoA batch kernel"});

    // Untimed differential pass: every (tag, step) through both evaluators.
    for (std::size_t s = 0; s < kSteps && batch_matches_scalar; ++s) {
      const double t_s = t0 + dt * static_cast<double>(s);
      batch.evaluate_all(0, t_s, terms);
      for (std::size_t i = 0; i < tags.size(); ++i) {
        batch_matches_scalar =
            batch_matches_scalar && terms_equal(terms[i], eval.evaluate(0, tags[i], t_s));
      }
    }
    std::printf("batch kernel differential: %zu evaluations, terms %s\n\n",
                kSteps * tags.size(),
                batch_matches_scalar ? "IDENTICAL to scalar oracle"
                                     : "MISMATCH (BUG)");
    if (sink == 42.0) std::puts("");
  }

  // --- 3. Inventory rounds (MAC + RF, static scene). -----------------------
  {
    const Scenario sc = make_read_range_scenario(3.0, cal);
    constexpr std::size_t kRounds = 400;
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(bench::kSeed);
    const double wall = wall_seconds([&] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        (void)sim.run_single_round(sc.portal.start_time_s, rng);
      }
    });
    entries.push_back({"inventory_rounds", wall, kRounds, "", 0.0,
                       "single Gen 2 round, 20 static tags"});
  }

  // --- 4. Full-table sweep: Table 1, serial seed path vs sweep engine. -----
  // The headline workload: every tag location of Table 1, 12 repetitions
  // each. The serial entry is the seed path (run_repeated); the sweep
  // entries push the identical grid through rfidsim::sweep at increasing
  // thread counts. Event streams are compared before timings are trusted.
  bool sweep_matches_serial = true;
  {
    const scene::BoxFace faces[] = {scene::BoxFace::Front, scene::BoxFace::SideNear,
                                    scene::BoxFace::SideFar, scene::BoxFace::Top};
    constexpr std::size_t kReps = 12;
    std::vector<Scenario> scenarios;
    for (const auto face : faces) {
      ObjectScenarioOptions opt;
      opt.tag_faces = {face};
      scenarios.push_back(make_object_tracking_scenario(opt, cal));
    }

    std::vector<RepeatedRuns> serial_runs(scenarios.size());
    const double serial_s = wall_seconds([&] {
      for (std::size_t s = 0; s < scenarios.size(); ++s) {
        serial_runs[s] = run_repeated(scenarios[s], kReps, bench::kSeed);
      }
    });
    const std::size_t cells = scenarios.size() * kReps;
    entries.push_back({"full_table_sweep_serial", serial_s, cells, "", 0.0,
                       "Table 1 grid (4 locations x 12 reps), serial seed path"});

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::size_t> thread_counts = {2, 4};
    if (hw > 4) thread_counts.push_back(hw);
    for (const std::size_t threads : thread_counts) {
      std::vector<RepeatedRuns> sweep_runs(scenarios.size());
      const double sweep_s = wall_seconds([&] {
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
          sweep_runs[s] = run_repeated_parallel(scenarios[s], kReps, bench::kSeed, threads);
        }
      });
      for (std::size_t s = 0; s < scenarios.size(); ++s) {
        sweep_matches_serial =
            sweep_matches_serial && logs_equal(serial_runs[s], sweep_runs[s]);
      }
      entries.push_back({"full_table_sweep_" + std::to_string(threads) + "t", sweep_s,
                         cells, "full_table_sweep_serial", serial_s / sweep_s,
                         "same grid through rfidsim::sweep"});
    }

    std::size_t events = 0;
    for (const auto& runs : serial_runs) events += total_events(runs);
    std::printf("full-table sweep: %zu cells, %zu events, serial %.2fs, "
                "sweep output %s\n\n",
                cells, events, serial_s,
                sweep_matches_serial ? "IDENTICAL to serial" : "MISMATCH (BUG)");
  }

  // --- 5. Static-scene Monte Carlo: cache off vs on, end to end. -----------
  // Fig. 2-style repeated passes over a static scene: the cache survives
  // across repetitions inside one simulator, so the whole sweep accelerates
  // without a single bit of drift (the differential tests hold it to that).
  {
    constexpr std::size_t kReps = 60;
    auto run_with_cache = [&](bool cached, RepeatedRuns& out) {
      Scenario sc = make_read_range_scenario(4.0, cal);
      sc.portal.evaluator.static_geometry_cache = cached;
      return wall_seconds([&] { out = run_repeated(sc, kReps, bench::kSeed); });
    };
    RepeatedRuns off, on;
    const double off_s = run_with_cache(false, off);
    const double on_s = run_with_cache(true, on);
    sweep_matches_serial = sweep_matches_serial && logs_equal(off, on);
    entries.push_back({"static_sweep_uncached", off_s, kReps, "", 0.0,
                       "read-range pass x60, cache disabled"});
    entries.push_back({"static_sweep_cached", on_s, kReps, "static_sweep_uncached",
                       off_s / on_s, "identical passes, warm static-geometry cache"});
  }

  // --- 6. Observability differential: metrics + tracing on vs all off. -----
  // The obs contract is feedback-free: instrumentation may observe the
  // simulation but never influence it. Replay the Table-1 front-face pass
  // with everything on (including spans) and with everything off; the two
  // event streams must match bit for bit or the record flags the breach.
  bool obs_matches_disabled = true;
  {
    const bool saved_metrics = obs::enabled();
    const bool saved_trace = obs::trace_enabled();
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front};
    const Scenario sc = make_object_tracking_scenario(opt, cal);
    constexpr std::size_t kReps = 8;

    obs::set_enabled(true);
    obs::set_trace_enabled(true);
    RepeatedRuns with_obs;
    const double on_s =
        wall_seconds([&] { with_obs = run_repeated(sc, kReps, bench::kSeed); });

    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    RepeatedRuns without_obs;
    const double off_s =
        wall_seconds([&] { without_obs = run_repeated(sc, kReps, bench::kSeed); });

    obs::set_enabled(saved_metrics);
    obs::set_trace_enabled(saved_trace);

    obs_matches_disabled = logs_equal(with_obs, without_obs);
    entries.push_back({"full_pass_obs_off", off_s, kReps, "", 0.0,
                       "Table 1 front face x8, observability disabled"});
    entries.push_back({"full_pass_obs_on", on_s, kReps, "full_pass_obs_off",
                       off_s / on_s, "same passes with metrics + trace spans on"});
    std::printf("obs differential: event streams %s\n\n",
                obs_matches_disabled ? "IDENTICAL with obs on/off"
                                     : "MISMATCH (obs fed back into the sim, BUG)");
  }

  // Stage attribution (--attribution-dump / RFIDSIM_OBS=prof): where did
  // the wall clock of everything above actually go? This is the measured
  // answer to the ROADMAP's "portal sim dominates" assertion — portal-sim
  // vs path-eval vs store-merge shares, from the deterministic phase
  // timers, printed alongside the table they explain.
  if (obs::prof::attribution_enabled()) {
    obs::prof::write_attribution_report(std::cout);
    std::printf("\n");
  }

  TextTable t({"benchmark", "wall (s)", "cells", "vs baseline"});
  for (const Entry& e : entries) {
    t.add_row({e.name, std::to_string(e.wall_s), std::to_string(e.cells),
               e.baseline.empty() ? "-" : (std::to_string(e.speedup) + "x " + e.baseline)});
  }
  bench::print_table(t);

  write_json(out_path, entries, sweep_matches_serial, obs_matches_disabled,
             batch_matches_scalar);
  std::printf("\nwrote %s\n", out_path);
  return (sweep_matches_serial && obs_matches_disabled && batch_matches_scalar) ? 0 : 1;
}
