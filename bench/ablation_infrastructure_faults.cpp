// Ablation: infrastructure faults vs. redundancy schemes.
//
// The paper's redundancy analysis (Table 3 / Fig. 5) assumes the read
// infrastructure never fails. This bench injects the failures the
// DSN framing actually cares about — reader crash/restart cycles, dead
// antenna cables, RF jamming, corrupt middleware feeds, lossy buffered
// uploads — and asks which redundancy scheme still tracks.
//
// Headline result (not producible on the paper's hardware rig): the
// "2 tags per object" conclusion survives reader faults nearly intact,
// because tag redundancy lives on the object and diversifies in time,
// while "2 antennas, 1 tag" collapses toward the single-opportunity
// floor — both antennas share the reader's fate.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/corruption.hpp"
#include "fault/schedule.hpp"
#include "fleet/feed.hpp"
#include "fleet/store.hpp"
#include "reliability/analytical.hpp"
#include "system/event_io.hpp"
#include "system/portal.hpp"
#include "system/uploader.hpp"
#include "track/resilient_ingest.hpp"
#include "track/tracking.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

/// The four Table-3 schemes, in the paper's order.
struct Scheme {
  const char* name;
  std::size_t antennas;
  std::vector<scene::BoxFace> faces;
};

const std::vector<Scheme>& schemes() {
  static const std::vector<Scheme> s{
      {"1 ant, 1 tag", 1, {scene::BoxFace::Front}},
      {"2 ant, 1 tag", 2, {scene::BoxFace::Front}},
      {"1 ant, 2 tags", 1, {scene::BoxFace::Front, scene::BoxFace::SideNear}},
      {"2 ant, 2 tags", 2, {scene::BoxFace::Front, scene::BoxFace::SideNear}},
  };
  return s;
}

Scenario make_scheme_scenario(const Scheme& scheme, const CalibrationProfile& cal,
                              const fault::FaultConfig& faults) {
  ObjectScenarioOptions opt;
  opt.tag_faces = scheme.faces;
  opt.portal.antenna_count = scheme.antennas;
  Scenario sc = make_object_tracking_scenario(opt, cal);
  sc.portal.faults = faults;
  return sc;
}

constexpr std::size_t kReps = 24;

double measure(const Scheme& scheme, const CalibrationProfile& cal,
               const fault::FaultConfig& faults) {
  return measure_tracking_reliability(make_scheme_scenario(scheme, cal, faults), kReps,
                                      bench::kSeed);
}

fault::FaultConfig reader_faults(double mtbf_s, double mttr_s) {
  fault::FaultConfig f;
  f.reader.mtbf_s = mtbf_s;
  f.reader.mttr_s = mttr_s;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner(
      "Ablation - infrastructure faults vs. redundancy schemes",
      "Beyond the paper: reader crashes, dead cables, jamming, corrupt\n"
      "feeds and lossy uploads against the Table-3 redundancy schemes.\n"
      "Deterministic: identical seeds give identical tables.");
  const CalibrationProfile cal = bench::profile();

  // ---------------------------------------------------------------- 1 --
  // Fault-free baseline: must reproduce the seed Table-3 ranking.
  std::printf("[1] Fault-free baseline (Table 3 ranking check)\n");
  std::vector<double> baseline;
  {
    TextTable t({"scheme", "R_M (sim)", "paper R_M"});
    const char* paper_rm[] = {"80%", "86%", "97%", "100%"};
    std::size_t i = 0;
    for (const Scheme& s : schemes()) {
      baseline.push_back(measure(s, cal, {}));
      t.add_row({s.name, percent(baseline.back()), paper_rm[i++]});
    }
    bench::print_table(t);
    const bool ranking_ok = baseline[3] >= baseline[2] && baseline[2] >= baseline[1] &&
                            baseline[1] >= baseline[0];
    std::printf("ranking 2a2t >= 1a2t >= 2a1t >= 1a1t: %s\n\n",
                ranking_ok ? "reproduced" : "VIOLATED");
  }

  // ---------------------------------------------------------------- 2 --
  // Reader crash/restart sweep. The portal's single reader drives every
  // antenna (the paper's TDMA setup), so antenna redundancy shares the
  // reader's fate while tag redundancy rides out the blackout windows.
  std::printf("[2] Reader crash/restart faults (MTBF/MTTR sweep, %zu passes)\n",
              kReps);
  {
    struct Level {
      const char* name;
      double mtbf_s, mttr_s;
    };
    const std::vector<Level> levels{
        {"none", 0.0, 0.0},
        {"brownouts (MTBF 1.0s, MTTR 0.4s)", 1.0, 0.4},
        {"outages   (MTBF 1.5s, MTTR 0.5s)", 1.5, 0.5},
        {"blackouts (MTBF 2.0s, MTTR 1.0s)", 2.0, 1.0},
    };
    TextTable t({"fault level", "1a/1t", "2a/1t", "1a/2t", "2a/2t"});
    std::vector<std::vector<double>> rows;
    for (const Level& lvl : levels) {
      std::vector<std::string> row{lvl.name};
      rows.emplace_back();
      for (const Scheme& s : schemes()) {
        const double r = measure(s, cal, reader_faults(lvl.mtbf_s, lvl.mttr_s));
        rows.back().push_back(r);
        row.push_back(percent(r));
      }
      t.add_row(row);
    }
    bench::print_table(t);
    std::printf(
        "under brownouts the tag-redundant schemes hold at %s and %s (>= 95%%)\n"
        "while 2a/1t slides %s -> %s: both antennas share the reader's fate,\n"
        "the front and side tags are read at different pass times and do not.\n"
        "under blackouts, 2a/1t (%s) falls to the fault-free 1a/1t floor (%s) -\n"
        "antenna redundancy is wiped out; \"2 tags per object\" still holds %s.\n\n",
        percent(rows[1][2]).c_str(), percent(rows[1][3]).c_str(),
        percent(rows[0][1]).c_str(), percent(rows[1][1]).c_str(),
        percent(rows[3][1]).c_str(), percent(rows[0][0]).c_str(),
        percent(rows[3][2]).c_str());
  }

  // ---------------------------------------------------------------- 3 --
  // Dead antenna cables: a per-pass Bernoulli outage per antenna. The
  // degraded-mode analytical model re-weights R_C over live columns.
  std::printf("[3] Dead-cable outages (per-antenna probability sweep)\n");
  {
    TextTable t({"outage prob", "2a/1t", "2a/2t", "2a/2t R_C (degraded model)"});
    // Single-opportunity reliabilities for the analytical composition
    // (same approach as the Table 3 bench).
    ObjectScenarioOptions front;
    front.tag_faces = {scene::BoxFace::Front};
    ObjectScenarioOptions side;
    side.tag_faces = {scene::BoxFace::SideNear};
    ObjectScenarioOptions side_far;
    side_far.tag_faces = {scene::BoxFace::SideFar};
    const double p_front =
        measure_tracking_reliability(make_object_tracking_scenario(front, cal), kReps,
                                     bench::kSeed);
    const double p_side =
        measure_tracking_reliability(make_object_tracking_scenario(side, cal), kReps,
                                     bench::kSeed);
    const double p_side_far = measure_tracking_reliability(
        make_object_tracking_scenario(side_far, cal), kReps, bench::kSeed);
    // Grid layout: rows = tags (front, side), columns = antennas.
    const std::vector<double> grid{p_front, p_front, p_side, p_side_far};
    for (double q : {0.0, 0.1, 0.25, 0.5}) {
      fault::FaultConfig f;
      f.antenna.probability = q;
      // Expected degraded R_C: average the masked grids over outage draws.
      const double rc_full = expected_reliability_grid_degraded(grid, 2, 2, {true, true});
      const double rc_one = 0.5 * (expected_reliability_grid_degraded(
                                       grid, 2, 2, {false, true}) +
                                   expected_reliability_grid_degraded(
                                       grid, 2, 2, {true, false}));
      const double rc_none = 0.0;
      const double rc =
          (1 - q) * (1 - q) * rc_full + 2 * q * (1 - q) * rc_one + q * q * rc_none;
      t.add_row({percent(q), percent(measure(schemes()[1], cal, f)),
                 percent(measure(schemes()[3], cal, f)), percent(rc, 1)});
    }
    bench::print_table(t);
    std::printf("\n");
  }

  // ---------------------------------------------------------------- 4 --
  // RF jamming bursts across the schemes.
  std::printf("[4] Transient RF jamming bursts\n");
  {
    TextTable t({"jamming", "1a/1t", "2a/1t", "1a/2t", "2a/2t"});
    struct Jam {
      const char* name;
      double interarrival_s, burst_s;
    };
    for (const Jam& jam : {Jam{"none", 0.0, 0.0}, Jam{"bursty (1/2s, 0.3s)", 2.0, 0.3},
                           Jam{"harsh (1/1s, 0.5s)", 1.0, 0.5}}) {
      fault::FaultConfig f;
      f.jamming.mean_interarrival_s = jam.interarrival_s;
      f.jamming.mean_burst_s = jam.burst_s;
      f.jamming.extra_loss_db = 25.0;
      std::vector<std::string> row{jam.name};
      for (const Scheme& s : schemes()) row.push_back(percent(measure(s, cal, f)));
      t.add_row(row);
    }
    bench::print_table(t);
    std::printf("\n");
  }

  // ---------------------------------------------------------------- 5 --
  // Per-reader breakdown of one heavily faulted 2-reader portal.
  std::printf("[5] Per-reader stats under faults (2 readers, 2 antennas)\n");
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    opt.portal.antenna_count = 2;
    opt.portal.reader_count = 2;
    Scenario sc = make_object_tracking_scenario(opt, cal);
    sc.portal.faults = reader_faults(3.0, 1.0);
    sc.portal.faults.antenna.probability = 0.5;
    sc.portal.faults.jamming.mean_interarrival_s = 1.0;
    sc.portal.faults.jamming.mean_burst_s = 0.3;

    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(bench::kSeed);
    (void)sim.run(rng);
    TextTable t({"reader", "rounds", "busy (s)", "crashes", "downtime (s)",
                 "jammed rounds", "dead-cable rounds"});
    for (std::size_t r = 0; r < sim.stats().per_reader.size(); ++r) {
      const sys::ReaderRunStats& st = sim.stats().per_reader[r];
      t.add_row({std::to_string(r), std::to_string(st.rounds),
                 fixed_str(st.busy_time_s, 2), std::to_string(st.crashes),
                 fixed_str(st.downtime_s, 2), std::to_string(st.jammed_rounds),
                 std::to_string(st.dead_antenna_rounds)});
    }
    bench::print_table(t);
    std::printf("\n");
  }

  // ---------------------------------------------------------------- 6 --
  // Degraded-mode pipeline: ResilientIngest detects a silent reader and
  // the analytical R_C re-weights over the surviving antennas.
  std::printf("[6] Declared degraded mode (reader silence -> re-weighted R_C)\n");
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    opt.portal.antenna_count = 2;
    opt.portal.reader_count = 2;
    Scenario sc = make_object_tracking_scenario(opt, cal);
    // Long repairs: a crashed reader tends to stay silent to window end,
    // which is what the ingest stage can actually detect. The silence
    // threshold must exceed the natural trailing silence once the cart
    // has left the read zone (~2.7 s of the 5 s window).
    sc.portal.faults = reader_faults(6.0, 4.0);

    track::IngestConfig icfg;
    icfg.reader_count = sc.portal.readers.size();
    icfg.silence_gap_s = 2.5;
    track::ResilientIngest ingest(icfg);
    track::TrackingAnalyzer analyzer(sc.registry);

    std::size_t counts[2][2] = {{0, 0}, {0, 0}};  // [truly down][declared].
    double rm_declared = 0.0, rm_clean = 0.0;
    std::size_t declared_total = 0, clean_total = 0;
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(bench::kSeed);
    for (std::size_t rep = 0; rep < 2 * kReps; ++rep) {
      Rng run_rng = rng.fork(rep);
      const sys::EventLog log = sim.run(run_rng);
      double worst_downtime = 0.0;
      for (std::size_t r = 0; r < sc.portal.readers.size(); ++r) {
        worst_downtime =
            std::max(worst_downtime, sim.fault_schedule().reader_downtime_s(r));
      }
      const bool truly_down = worst_downtime > 1.5;
      const track::IngestReport report =
          ingest.ingest(log, sc.portal.start_time_s, sc.portal.end_time_s);
      const bool declared = report.degraded();
      ++counts[truly_down ? 1 : 0][declared ? 1 : 0];
      const double tracked = analyzer.tracking_fraction(report.events);
      if (declared) {
        ++declared_total;
        rm_declared += tracked;
      } else {
        ++clean_total;
        rm_clean += tracked;
      }
    }
    TextTable t({"schedule truth \\ ingest verdict", "declared down", "not declared"});
    t.add_row({"reader down > 1.5s", std::to_string(counts[1][1]),
               std::to_string(counts[1][0])});
    t.add_row({"readers healthy", std::to_string(counts[0][1]),
               std::to_string(counts[0][0])});
    bench::print_table(t);
    std::printf(
        "mean R_M: declared-down passes %s vs undeclared passes %s.\n"
        "the ingest stage flags exactly the damaged passes (no false alarms\n"
        "above the natural trailing silence); analysis then switches to the\n"
        "degraded R_C over the surviving antenna column (section [3]) instead\n"
        "of silently under-reporting reliability.\n\n",
        declared_total ? percent(rm_declared / static_cast<double>(declared_total)).c_str()
                       : "-",
        clean_total ? percent(rm_clean / static_cast<double>(clean_total)).c_str() : "-");
  }

  // ---------------------------------------------------------------- 7 --
  // Corrupt middleware feed through ResilientIngest.
  std::printf("[7] Corrupt event feed -> resilient ingest\n");
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    opt.portal.antenna_count = 2;
    Scenario sc = make_object_tracking_scenario(opt, cal);
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(bench::kSeed);
    const sys::EventLog clean = sim.run(rng);

    // Stage 1 - reader-memory damage: single-bit EPC flips on the log.
    fault::CorruptionConfig mem;
    mem.corrupt_probability = 0.04;
    Rng mem_rng = rng.fork(1);
    fault::CorruptionStats mstats;
    const sys::EventLog flipped = fault::corrupt_log(clean, mem, mem_rng, &mstats);
    // Stage 2 - transport damage on the CSV feed.
    fault::CorruptionConfig corr;
    corr.drop_probability = 0.03;
    corr.duplicate_probability = 0.04;
    corr.corrupt_probability = 0.05;
    corr.reorder_probability = 0.05;
    Rng corr_rng = rng.fork(2);
    fault::CorruptionStats cstats;
    const std::string bad_csv =
        fault::corrupt_csv(sys::to_csv(flipped), corr, corr_rng, &cstats);

    track::IngestConfig icfg;
    icfg.reader_count = sc.portal.readers.size();
    icfg.registry = &sc.registry;
    track::ResilientIngest ingest(icfg);
    const track::IngestReport report =
        ingest.ingest_csv(bad_csv, sc.portal.start_time_s, sc.portal.end_time_s);

    bool strict_throws = false;
    try {
      (void)sys::from_csv(bad_csv);
    } catch (const ConfigError&) {
      strict_throws = true;
    }

    track::TrackingAnalyzer analyzer(sc.registry);
    TextTable t({"metric", "value"});
    t.add_row({"input rows", std::to_string(cstats.input_records)});
    t.add_row({"EPC bit flips (reader memory)", std::to_string(mstats.corrupted)});
    t.add_row({"rows damaged in transport",
               std::to_string(cstats.dropped + cstats.duplicated + cstats.corrupted)});
    t.add_row({"strict read_csv", strict_throws ? "throws (pipeline aborts)"
                                                : "parsed"});
    t.add_row({"lenient rows ok / bad", std::to_string(report.parse.rows_ok) + " / " +
                                            std::to_string(report.parse.rows_bad)});
    t.add_row({"quarantined records", std::to_string(report.quarantined)});
    t.add_row({"transport duplicates", std::to_string(report.duplicates)});
    t.add_row({"out-of-order arrivals", std::to_string(report.reordered)});
    t.add_row({"accepted events", std::to_string(report.accepted)});
    t.add_row({"tracking on clean log", percent(analyzer.tracking_fraction(clean))});
    t.add_row(
        {"tracking on ingested log", percent(analyzer.tracking_fraction(report.events))});
    bench::print_table(t);
    std::printf("\n");
  }

  // ---------------------------------------------------------------- 8 --
  // Lossy buffered upload with retry + exponential backoff.
  std::printf("[8] Buffered upload loss (retry + exponential backoff)\n");
  {
    // Single-antenna, single-tag pass: each object's reads cluster in a
    // narrow time window, so a lost batch (a contiguous span of the feed)
    // can erase an object entirely — upload loss compounds with the RF
    // reliability the paper measures.
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front};
    Scenario sc = make_object_tracking_scenario(opt, cal);
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(bench::kSeed);
    const sys::EventLog clean = sim.run(rng);
    track::TrackingAnalyzer analyzer(sc.registry);

    TextTable t({"loss prob", "delivered", "retries", "backoff (s)", "batches lost",
                 "tracking"});
    std::size_t label = 100;
    for (double loss : {0.0, 0.1, 0.3, 0.6, 0.8}) {
      sys::UploaderConfig ucfg;
      ucfg.batch_size = 16;
      ucfg.loss_probability = loss;
      ucfg.max_retries = 2;
      sys::EventUploader uploader(ucfg);
      Rng up_rng = rng.fork(label++);
      const sys::EventLog got = uploader.upload(clean, up_rng);
      t.add_row({percent(loss),
                 std::to_string(got.size()) + "/" + std::to_string(clean.size()),
                 std::to_string(uploader.stats().retries),
                 fixed_str(uploader.stats().backoff_delay_s, 2),
                 std::to_string(uploader.stats().batches_lost),
                 percent(analyzer.tracking_fraction(got))});
    }
    bench::print_table(t);
    std::printf("\n");
  }

  // ---------------------------------------------------------------- 9 --
  // Online reliability monitor: streaming estimators over the pass stream
  // and detection latency for every injected reader fault. The first
  // passes are fault-free (the monitor must stay silent), then reader
  // crash faults switch on and the drift/silence detectors must notice —
  // the latency is counted in passes between fault onset and the alert.
  std::printf("[9] Online monitor: detection latency per injected reader fault\n");
  {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
    opt.portal.antenna_count = 2;
    opt.portal.reader_count = 2;
    const Scenario sc = make_object_tracking_scenario(opt, cal);
    Scenario sc_faulted = make_object_tracking_scenario(opt, cal);
    // Heavy crash/restart cycling: most of each faulted pass loses one
    // reader for seconds at a time.
    sc_faulted.portal.faults = reader_faults(1.5, 2.0);

    constexpr std::size_t kHealthyPasses = 12;
    constexpr std::size_t kTotalPasses = 28;
    const std::size_t reader_count = sc.portal.readers.size();

    sys::PortalSimulator sim_ok(sc.scene, sc.portal);
    sys::PortalSimulator sim_bad(sc_faulted.scene, sc_faulted.portal);
    obs::ReliabilityMonitor monitor;
    monitor.set_log(&obs::structured_log());  // Narrates under --log-dump.

    std::vector<std::size_t> onset_pass(reader_count, kTotalPasses);
    std::vector<double> onset_downtime(reader_count, 0.0);
    std::size_t healthy_alerts = 0;
    Rng rng(bench::kSeed);
    for (std::size_t pass = 0; pass < kTotalPasses; ++pass) {
      const bool fault_phase = pass >= kHealthyPasses;
      sys::PortalSimulator& sim = fault_phase ? sim_bad : sim_ok;
      Rng run_rng = rng.fork(pass);
      const sys::EventLog log = sim.run(run_rng);
      if (fault_phase) {
        for (std::size_t r = 0; r < reader_count; ++r) {
          const double down = sim.fault_schedule().reader_downtime_s(r);
          if (down > 0.0 && onset_pass[r] == kTotalPasses) {
            onset_pass[r] = pass;
            onset_downtime[r] = down;
          }
        }
      }
      monitor.observe_pass(sim.pass_observation(log));
      if (!fault_phase) healthy_alerts = monitor.alerts().size();
    }

    TextTable t({"reader", "fault onset (pass)", "downtime then (s)", "first alert",
                 "alert pass", "latency (passes)"});
    for (std::size_t r = 0; r < reader_count; ++r) {
      if (onset_pass[r] == kTotalPasses) {
        t.add_row({std::to_string(r), "no fault injected", "-", "-", "-", "-"});
        continue;
      }
      // The earliest alert of any type for this reader at or after onset.
      const obs::Alert* first = nullptr;
      for (const obs::Alert& a : monitor.alerts()) {
        if (a.reader == static_cast<int>(r) && a.pass >= onset_pass[r] &&
            (first == nullptr || a.pass < first->pass)) {
          first = &a;
        }
      }
      t.add_row({std::to_string(r), std::to_string(onset_pass[r]),
                 fixed_str(onset_downtime[r], 2),
                 first ? obs::alert_type_name(first->type) : "NOT DETECTED",
                 first ? std::to_string(first->pass) : "-",
                 first ? std::to_string(first->pass - onset_pass[r]) : "-"});
    }
    bench::print_table(t);
    std::printf(
        "alerts during the %zu fault-free passes: %zu (the no-false-alarm\n"
        "contract; tests/obs/monitor_detection_test.cpp holds it across seeds).\n"
        "windowed observed R_C %s vs independence-model prediction %s -\n"
        "the crash-correlated misses drag the observed rate below what the\n"
        "paper's R_C = 1-prod(1-P_i) composition expects from per-reader rates.\n",
        kHealthyPasses, healthy_alerts, percent(monitor.observed_rc()).c_str(),
        percent(monitor.predicted_rc()).c_str());
  }

  // --------------------------------------------------------------- 10 --
  // Watermark-stall detection: a facility feed whose uplink goes dark
  // mid-run. Event time stops flowing into the store while the pass
  // windows keep advancing — the freshness failure the per-pass quality
  // signals cannot see (an empty pass looks like silence, but only the
  // watermark says how *stale* stored truth is getting). Detection is
  // always-on arithmetic, so this section prints identically whether obs
  // hooks are on, off, or compiled out.
  std::printf("\n[10] Watermark-stall detection (uplink goes dark mid-run)\n");
  {
    constexpr std::size_t kTotalPasses = 20;
    constexpr std::size_t kOnsetPass = 12;  ///< First pass with a dark uplink.
    constexpr double kWindowS = 10.0;
    constexpr std::size_t kReaders = 2;
    constexpr std::size_t kTagsPerPass = 40;

    fleet::FeedConfig config;
    config.objects_total = kTagsPerPass;
    config.ingest.reader_count = kReaders;
    config.ingest.antenna_count = 2;
    const std::size_t stall_passes = config.monitor.watermark_stall_passes;

    fleet::FacilityFeed feed(config);
    fleet::TrackingStore store;
    Rng rng(bench::kSeed);
    std::size_t false_alarms_before_onset = 0;
    for (std::size_t pass = 0; pass < kTotalPasses; ++pass) {
      const double begin_s = static_cast<double>(pass) * kWindowS;
      sys::EventLog raw;
      if (pass < kOnsetPass) {
        // Healthy uplink: every reader reads every tag, spread over the
        // window — the watermark advances every pass.
        for (std::size_t r = 0; r < kReaders; ++r) {
          for (std::size_t tag = 0; tag < kTagsPerPass; ++tag) {
            sys::ReadEvent ev;
            ev.tag = scene::TagId{tag + 1};
            ev.time_s =
                begin_s + (static_cast<double>(tag) + 0.5) * kWindowS /
                              static_cast<double>(kTagsPerPass);
            ev.reader_index = r;
            ev.antenna_index = tag % 2;
            raw.push_back(ev);
          }
        }
      }
      // else: the uplink is dark — nothing reaches the backend, but the
      // backend's clock (the pass window) keeps moving.
      const fleet::FeedPassResult result =
          feed.ingest_pass(store, raw, begin_s, begin_s + kWindowS, rng);
      (void)result;
      if (pass < kOnsetPass) {
        false_alarms_before_onset = 0;
        for (const obs::Alert& a : feed.monitor().alerts()) {
          if (a.type == obs::AlertType::kWatermarkStalled) {
            ++false_alarms_before_onset;
          }
        }
      }
    }

    const obs::Alert* first =
        feed.monitor().first_alert(obs::AlertType::kWatermarkStalled);
    TextTable t({"quantity", "value"});
    t.add_row({"uplink dark from pass", std::to_string(kOnsetPass)});
    t.add_row({"stall threshold (passes)", std::to_string(stall_passes)});
    t.add_row({"first watermark_stalled alert (pass)",
               first ? std::to_string(first->pass) : "NOT DETECTED"});
    t.add_row({"detection latency (passes after onset)",
               first ? std::to_string(first->pass - kOnsetPass) : "-"});
    t.add_row({"false alarms on healthy prefix",
               std::to_string(false_alarms_before_onset)});
    t.add_row({"watermark at end (s)", fixed_str(feed.watermark_s(), 2)});
    t.add_row({"watermark age at end (s)", fixed_str(feed.watermark_age_s(), 2)});
    t.add_row({"still latched at end",
               feed.monitor().watermark_stalled() ? "yes" : "no"});
    bench::print_table(t);
    std::printf(
        "the alert fires once the watermark has sat still for %zu consecutive\n"
        "advancing windows: latency is %zu passes by construction, and the\n"
        "healthy prefix raises zero watermark alerts (the no-false-alarm\n"
        "contract, freshness edition). Stored truth is untouched - %zu\n"
        "sightings remain queryable; only their *age* is alarming.\n",
        stall_passes, stall_passes - 1, store.sighting_count());
  }
  return 0;
}
