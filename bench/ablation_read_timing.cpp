// Ablation (paper §4, text): inventory time vs. population size.
//
// "All measurements ... depend on allowing adequate time for all tags to
// be read, which is around .02 sec per tag." This bench inventories
// static, well-placed populations of increasing size and reports the time
// to read 100% of them, plus the per-tag cost and MAC slot statistics.
#include <memory>
#include <unordered_set>

#include "bench_util.hpp"
#include "system/portal.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

/// Static scene with `n` ideal tags at 1 m.
scene::Scene grid_scene(std::size_t n) {
  scene::Scene s;
  Pose pose;
  pose.position = {0.0, 0.0, 1.0};
  pose.frame.forward = {1.0, 0.0, 0.0};
  pose.frame.up = {0.0, 0.0, 1.0};
  scene::Entity holder("tags", std::monostate{}, rf::Material::Air,
                       std::make_unique<scene::StaticTrajectory>(pose));
  const int cols = 8;
  for (std::size_t i = 0; i < n; ++i) {
    scene::TagMount m;
    m.local_position = {0.06 * static_cast<double>(i % cols),
                        0.0, 0.08 * static_cast<double>(i / cols)};
    m.local_patch_normal = {0.0, 1.0, 0.0};
    m.local_dipole_axis = {1.0, 0.0, 0.0};
    m.backing_material = rf::Material::Foam;
    holder.add_tag(scene::Tag{scene::TagId{i + 1}, m});
  }
  s.entities.push_back(std::move(holder));
  s.antennas.push_back(scene::Scene::make_antenna({0.2, 1.0, 1.0}, {0.0, -1.0, 0.0}));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - inventory time vs. tag population",
                "Paper: ~0.02 s per tag end to end on 2006-era hardware.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"tags", "time to read all (s)", "per tag (ms)", "slots", "collisions"});
  for (const std::size_t n : {1u, 5u, 10u, 20u, 40u, 80u}) {
    const scene::Scene s = grid_scene(n);
    sys::PortalConfig portal = make_portal_config(cal, {}, 1, /*pass_duration_s=*/3.0);
    portal.pass_sigma_db = 0.0;  // Isolate MAC timing from RF luck.
    portal.shadow_sigma_db = 0.0;
    portal.fast_sigma_db = 0.0;
    sys::PortalSimulator sim(s, portal);
    Rng rng(bench::kSeed + n);
    const sys::EventLog log = sim.run(rng);

    // Time at which the last distinct tag appeared.
    std::unordered_set<scene::TagId> seen;
    double t_complete = 0.0;
    for (const auto& ev : log) {
      if (seen.insert(ev.tag).second) t_complete = ev.time_s;
      if (seen.size() == n) break;
    }
    const bool complete = seen.size() == n;
    t.add_row({std::to_string(n),
               complete ? fixed_str(t_complete, 3) : "incomplete",
               complete ? fixed_str(1000.0 * t_complete / static_cast<double>(n), 1) : "-",
               std::to_string(sim.stats().total_slots),
               std::to_string(sim.stats().collision_slots)});
  }
  bench::print_table(t);
  std::printf(
      "\nNote: the per-tag cost includes the 2006-era reader's per-round firmware\n"
      "overhead (LinkTiming::round_overhead_s); modern readers amortize far better.\n");
  return 0;
}
