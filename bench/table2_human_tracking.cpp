// Table 2: read reliability for tags on humans.
//
// Paper setup (§3): badge tags at waist level (belt/pocket, not touching
// the body); subjects walk past the antenna at 1 m; two-person trials walk
// abreast to maximize blocking; 20 repetitions per cell. Paper: one
// subject front/back 75%, side (closer) 90%, side (farther) 10%, avg 63%;
// two subjects avg 56% with the closer subject reading BETTER than a lone
// one (reflections off the farther subject).
#include "bench_util.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

struct Cell {
  double closer = 0.0;
  double farther = 0.0;
};

Cell measure_two_subject(scene::BodySpot spot, const CalibrationProfile& cal,
                         std::size_t reps) {
  HumanScenarioOptions opt;
  opt.subject_count = 2;
  opt.tag_spots = {spot};
  const Scenario sc = make_human_tracking_scenario(opt, cal);
  const auto per_obj = per_object_reliability(sc, run_repeated_parallel(sc, reps, bench::kSeed));
  Cell cell;
  for (const auto& [obj, ci] : per_obj) {
    (obj.value == 1 ? cell.closer : cell.farther) = ci.estimate;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Table 2 - read reliability for tags on humans",
                "Paper (1 subject): F/B 75%, side closer 90%, side farther 10%.\n"
                "Paper (2 subjects): closer avg 75%, farther avg 38%.");
  const CalibrationProfile cal = bench::profile();
  const std::size_t reps = 40;

  const struct {
    scene::BodySpot spot;
    const char* paper_one;
    const char* paper_closer;
    const char* paper_farther;
  } rows[] = {
      {scene::BodySpot::Front, "75%", "90%", "50%"},
      {scene::BodySpot::SideNear, "90%", "90%", "50%"},
      {scene::BodySpot::SideFar, "10%", "30%", "0%"},
  };

  TextTable t({"tag location", "1 subject (sim/paper)", "2 subj closer (sim/paper)",
               "2 subj farther (sim/paper)"});
  double one_sum = 0.0;
  double closer_sum = 0.0;
  double farther_sum = 0.0;
  for (const auto& r : rows) {
    HumanScenarioOptions solo;
    solo.tag_spots = {r.spot};
    const double one = measure_tracking_reliability(
        make_human_tracking_scenario(solo, cal), reps, bench::kSeed);
    const Cell two = measure_two_subject(r.spot, cal, reps);
    one_sum += one;
    closer_sum += two.closer;
    farther_sum += two.farther;
    t.add_row({std::string(scene::body_spot_name(r.spot)),
               percent(one) + " / " + r.paper_one,
               percent(two.closer) + " / " + r.paper_closer,
               percent(two.farther) + " / " + r.paper_farther});
  }
  t.add_row({"average", percent(one_sum / 3.0) + " / 63%",
             percent(closer_sum / 3.0) + " / 75%",
             percent(farther_sum / 3.0) + " / 38%"});
  bench::print_table(t);

  std::printf(
      "\nNote: the paper attributes the closer-of-two subject out-reading a lone\n"
      "subject to reflections off the farther subject; the simulator reproduces\n"
      "the effect via its behind-the-tag reflection bonus.\n");
  return 0;
}
