// Figure 7: tracking reliability with two subjects walking abreast,
// measured vs calculated, across the redundancy sweep.
//
// Paper: the farther (blocked) subject drags the averages below the
// one-subject case at low redundancy (~56% at 1 antenna/1 tag), but four
// tags per subject or 2 tags + 2 antennas still reach ~95-100%.
#include "bench_util.hpp"
#include "human_redundancy.hpp"

using namespace rfidsim;
using namespace rfidsim::bench;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  banner("Figure 7 - tracking two subjects, redundancy sweep",
         "Paper: ~56% at 1 antenna/1 tag rising to ~95-100% at high redundancy.");
  const CalibrationProfile cal = profile();
  const HumanSingles closer = measure_singles(2, false, cal);
  const HumanSingles farther = measure_singles(2, true, cal);

  auto avg_rc = [&](double (*rc)(const HumanSingles&, std::size_t),
                    std::size_t antennas) {
    return 0.5 * (rc(closer, antennas) + rc(farther, antennas));
  };
  auto avg_rm = [&](const std::vector<scene::BodySpot>& spots, std::size_t antennas) {
    HumanScenarioOptions opt;
    opt.subject_count = 2;
    opt.tag_spots = spots;
    opt.portal.antenna_count = antennas;
    const HumanResult r = measure_human(opt, cal);
    return 0.5 * (r.closer + r.farther);
  };

  TextTable t({"configuration", "measured R_M (avg)", "calculated R_C (avg)"});
  for (const std::size_t antennas : {std::size_t{1}, std::size_t{2}}) {
    {
      const double rm = 0.5 * (avg_rm({scene::BodySpot::Front}, antennas) +
                               avg_rm({scene::BodySpot::SideNear}, antennas));
      const double rc = 0.5 * (avg_rc(rc_one_fb, antennas) + avg_rc(rc_one_side, antennas));
      t.add_row({std::to_string(antennas) + " antenna(s), 1 tag", percent(rm),
                 percent(rc)});
    }
    {
      const double rm =
          0.5 * (avg_rm(spots_fb(), antennas) + avg_rm(spots_sides(), antennas));
      const double rc =
          0.5 * (avg_rc(rc_two_fb, antennas) + avg_rc(rc_two_sides, antennas));
      t.add_row({std::to_string(antennas) + " antenna(s), 2 tags", percent(rm),
                 percent(rc)});
    }
    {
      const double rm = avg_rm(spots_all(), antennas);
      const double rc = avg_rc(rc_four, antennas);
      t.add_row({std::to_string(antennas) + " antenna(s), 4 tags", percent(rm),
                 percent(rc)});
    }
  }
  bench::print_table(t);
  return 0;
}
