// Extension (related work [18] Vogt, [9] Kodialam & Nandagopal):
// estimating how many tags are present from one frame's slot statistics.
//
// A dock door often needs the *count* before the full inventory finishes
// (is this the 48-case pallet or the 96-case one?). This bench runs single
// inventory frames over static populations and compares three estimators
// against truth, plus the Q the estimate recommends for the next frame.
#include <memory>

#include "bench_util.hpp"
#include "gen2/estimation.hpp"
#include "system/portal.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

/// A dense but safely-spaced static tag field, all link-perfect.
scene::Scene field(std::size_t n) {
  scene::Scene s;
  Pose pose;
  pose.position = {0.0, 0.0, 1.0};
  pose.frame.forward = {1.0, 0.0, 0.0};
  pose.frame.up = {0.0, 0.0, 1.0};
  scene::Entity holder("field", std::monostate{}, rf::Material::Air,
                       std::make_unique<scene::StaticTrajectory>(pose));
  const int cols = 12;
  for (std::size_t i = 0; i < n; ++i) {
    scene::TagMount m;
    m.local_position = {0.05 * static_cast<double>(i % cols),
                        0.0, 0.06 * static_cast<double>(i / cols)};
    m.local_patch_normal = {0.0, 1.0, 0.0};
    m.local_dipole_axis = {1.0, 0.0, 0.0};
    m.backing_material = rf::Material::Foam;
    holder.add_tag(scene::Tag{scene::TagId{i + 1}, m});
  }
  s.entities.push_back(std::move(holder));
  s.antennas.push_back(scene::Scene::make_antenna({0.3, 1.2, 1.0}, {0.0, -1.0, 0.0}));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Extension - tag population estimation from frame statistics",
                "Vogt-style estimators on single Gen 2 frames (fixed Q = 7,\n"
                "no mid-round adaptation so the frame statistics stay pure).");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"true tags", "frame stats (empty/single/coll)", "lower bound",
               "collision-factor", "empty-based", "recommended Q"});
  for (const std::size_t n : {4u, 16u, 48u, 96u, 160u}) {
    const scene::Scene s = field(n);
    sys::PortalConfig portal = make_portal_config(cal, {}, 1, 10.0);
    portal.pass_sigma_db = 0.0;
    portal.shadow_sigma_db = 0.0;
    portal.fast_sigma_db = 0.0;
    // One pure frame: fixed Q 7 (128 slots), no adaptation, no early exit
    // distortion (the engine stops on quiescence which is fine - remaining
    // slots would be empty and are counted as such below).
    portal.readers[0].inventory.q.initial_q = 7.0;
    portal.readers[0].inventory.adjust_mid_round = false;

    sys::PortalSimulator sim(s, portal);
    Rng rng(bench::kSeed + n);
    sim.run_single_round(0.0, rng);
    const auto& st = sim.stats();

    gen2::FrameObservation obs;
    obs.frame_size = 128;
    obs.singleton = st.success_slots;
    obs.collision = st.collision_slots;
    // Slots the early-exit skipped would all have been empty.
    obs.empty = 128 - std::min<std::size_t>(128, st.success_slots + st.collision_slots);

    const auto lower = gen2::estimate_lower_bound(obs);
    const double vogt = gen2::estimate_collision_factor(obs);
    const double empties = gen2::estimate_from_empties(obs);
    t.add_row({std::to_string(n),
               std::to_string(obs.empty) + "/" + std::to_string(obs.singleton) + "/" +
                   std::to_string(obs.collision),
               std::to_string(lower), fixed_str(vogt, 1), fixed_str(empties, 1),
               std::to_string(gen2::recommended_q(empties))});
  }
  bench::print_table(t);
  std::printf(
      "\nReading: the empty-based estimator tracks truth until the frame saturates\n"
      "(few empties left), where the collision-factor estimate takes over; the\n"
      "recommended Q is what an estimating reader would use for its next frame.\n");
  return 0;
}
