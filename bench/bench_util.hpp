// Shared plumbing for the paper-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"

namespace rfidsim::bench {

/// Fixed seed for all benches: tables are bit-for-bit reproducible.
inline constexpr std::uint64_t kSeed = 20070625;  // DSN 2007.

/// The calibrated hardware profile every bench runs on.
inline reliability::CalibrationProfile profile() {
  return reliability::CalibrationProfile::paper2006();
}

/// Prints a header naming the paper artifact being regenerated.
inline void banner(const char* artifact, const char* summary) {
  std::printf("=== %s ===\n%s\n\n", artifact, summary);
}

/// "x% (y%-z%)" — estimate with a 95% Wilson interval, as the paper's
/// small-n percentages deserve.
inline std::string pct_ci(double estimate, std::size_t successes, std::size_t trials) {
  const ProportionInterval ci = wilson_interval(successes, trials);
  (void)estimate;
  return percent(ci.estimate) + " [" + percent(ci.lower) + ", " + percent(ci.upper) + "]";
}

}  // namespace rfidsim::bench
