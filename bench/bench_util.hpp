// Shared plumbing for the paper-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/provenance.hpp"
#include "obs/structured_log.hpp"
#include "obs/trace.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"

namespace rfidsim::bench {

/// Fixed seed for all benches: tables are bit-for-bit reproducible.
inline constexpr std::uint64_t kSeed = 20070625;  // DSN 2007.

/// The calibrated hardware profile every bench runs on.
inline reliability::CalibrationProfile profile() {
  return reliability::CalibrationProfile::paper2006();
}

/// Prints a header naming the paper artifact being regenerated.
inline void banner(const char* artifact, const char* summary) {
  std::printf("=== %s ===\n%s\n\n", artifact, summary);
}

/// "x% (y%-z%)" — estimate with a 95% Wilson interval, as the paper's
/// small-n percentages deserve.
inline std::string pct_ci(double estimate, std::size_t successes, std::size_t trials) {
  const ProportionInterval ci = wilson_interval(successes, trials);
  (void)estimate;
  return percent(ci.estimate) + " [" + percent(ci.lower) + ", " + percent(ci.upper) + "]";
}

/// Renders a table to stdout with a trailing blank line — the one way
/// every bench prints its results (was a copy-pasted fputs per table).
inline void print_table(const TextTable& table) {
  std::fputs(table.render().c_str(), stdout);
}

/// Per-binary harness: parses the flags every bench shares and, at end of
/// main, writes the requested observability dumps. Usage:
///
///   int main(int argc, char** argv) {
///     const bench::Session session(argc, argv);
///     ... tables ...
///   }
///
/// Flags (all optional):
///   --metrics-dump <path>  Prometheus text exposition of the obs registry.
///   --trace-dump <path>    Chrome trace_event JSON (enables span tracing).
///   --log-dump <path>      JSON-lines structured log (obs::structured_log()
///                          writes there for the whole bench run).
///   --provenance-dump <path>  JSON-lines per-batch provenance records
///                          (obs::provenance_log()).
///   --flight-dump <path>   Flight-recorder ring dump (JSON lines), written
///                          atomically at end of run.
///   --profile-dump <path>  Folded-stack sampling-profiler dump
///                          (flamegraph.pl input). Starts the SIGPROF
///                          sampler for the whole run; Linux-only (the
///                          dump is written empty elsewhere).
///   --attribution-dump <path>  Per-phase stage-attribution report (JSON;
///                          see EXPERIMENTS.md). Enables the deterministic
///                          phase timers for the whole run.
///   --obs-off              Run with observability disabled (overhead/
///                          differential experiments).
///   --threads <n>          Worker-thread request for benches with a
///                          parallel path (0 = the shared sweep engine's
///                          default). Benches read it via threads().
///   --seed <u64>           Scenario seed override; defaults to kSeed.
/// Remaining arguments are left for the bench in positional().
class Session {
 public:
  Session(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto take_value = [&](std::string& out) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "bench: %s needs a path argument\n", arg.c_str());
          std::exit(2);
        }
        out = argv[++i];
      };
      auto take_number = [&](const char* what) -> std::uint64_t {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "bench: %s needs a %s argument\n", arg.c_str(), what);
          std::exit(2);
        }
        char* end = nullptr;
        const unsigned long long v = std::strtoull(argv[++i], &end, 10);
        if (end == argv[i] || *end != '\0') {
          std::fprintf(stderr, "bench: %s: '%s' is not a valid %s\n", arg.c_str(),
                       argv[i], what);
          std::exit(2);
        }
        return static_cast<std::uint64_t>(v);
      };
      if (arg == "--metrics-dump") {
        take_value(metrics_path_);
      } else if (arg == "--trace-dump") {
        take_value(trace_path_);
        obs::set_trace_enabled(true);
      } else if (arg == "--log-dump") {
        take_value(log_path_);
      } else if (arg == "--provenance-dump") {
        take_value(provenance_path_);
      } else if (arg == "--flight-dump") {
        take_value(flight_path_);
      } else if (arg == "--profile-dump") {
        take_value(profile_path_);
      } else if (arg == "--attribution-dump") {
        take_value(attribution_path_);
      } else if (arg == "--obs-off") {
        obs::set_enabled(false);
      } else if (arg == "--threads") {
        threads_ = static_cast<std::size_t>(take_number("thread count"));
      } else if (arg == "--seed") {
        seed_ = take_number("seed");
      } else {
        positional_.push_back(arg);
      }
    }
    if (!log_path_.empty()) {
      log_stream_.open(log_path_);
      obs::structured_log().set_sink(&log_stream_);
    }
    // RFIDSIM_OBS=prof is the flag-free way to ask for both profiling
    // layers; an explicit dump path requests just its own layer.
    if (!attribution_path_.empty() || !profile_path_.empty() ||
        obs::profile_requested()) {
      obs::prof::set_attribution_enabled(true);
    }
    if (!profile_path_.empty() || obs::profile_requested()) {
      profiling_ = obs::prof::start();
    }
  }

  ~Session() {
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      obs::registry().write_exposition(out);
      std::printf("wrote metrics exposition to %s\n", metrics_path_.c_str());
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      obs::write_chrome_trace(out);
      std::printf("wrote Chrome trace to %s\n", trace_path_.c_str());
    }
    if (!log_path_.empty()) {
      obs::structured_log().set_sink(nullptr);
      std::printf("wrote structured log to %s (%llu records, %llu rate-dropped)\n",
                  log_path_.c_str(),
                  static_cast<unsigned long long>(obs::structured_log().emitted()),
                  static_cast<unsigned long long>(obs::structured_log().dropped()));
    }
    if (!provenance_path_.empty()) {
      std::ofstream out(provenance_path_);
      obs::provenance_log().write_jsonl(out);
      std::printf("wrote provenance log to %s (%llu records, %llu ring-dropped)\n",
                  provenance_path_.c_str(),
                  static_cast<unsigned long long>(obs::provenance_log().recorded()),
                  static_cast<unsigned long long>(obs::provenance_log().dropped()));
    }
    if (profiling_) {
      obs::prof::stop();
      if (profile_path_.empty()) {
        // stderr: RFIDSIM_OBS=prof alone must leave stdout byte-identical
        // to an obs-off run (CI cmp-gates exactly that).
        std::fprintf(stderr,
                     "sampling profiler: %llu samples (%llu ring-dropped), no "
                     "--profile-dump path given\n",
                     static_cast<unsigned long long>(obs::prof::samples_recorded()),
                     static_cast<unsigned long long>(obs::prof::samples_dropped()));
      }
    }
    if (!profile_path_.empty()) {
      // Written even when sampling never started (non-Linux, obs off): an
      // empty folded dump is a readable statement that nothing fired.
      if (obs::prof::dump_profile(profile_path_)) {
        std::printf("wrote folded profile to %s (%llu samples, %llu "
                    "ring-dropped)\n",
                    profile_path_.c_str(),
                    static_cast<unsigned long long>(obs::prof::samples_recorded()),
                    static_cast<unsigned long long>(obs::prof::samples_dropped()));
      } else {
        std::fprintf(stderr, "bench: could not write profile dump to %s\n",
                     profile_path_.c_str());
      }
    }
    if (obs::prof::attribution_enabled()) {
      obs::prof::publish_attribution_metrics();
      if (!attribution_path_.empty()) {
        if (obs::prof::dump_attribution(attribution_path_)) {
          std::printf("wrote attribution report to %s\n",
                      attribution_path_.c_str());
        } else {
          std::fprintf(stderr, "bench: could not write attribution report to %s\n",
                       attribution_path_.c_str());
        }
      }
    }
    if (!flight_path_.empty()) {
      if (obs::dump_flight_recorder(flight_path_)) {
        std::printf("wrote flight-recorder dump to %s (%llu records, %llu "
                    "ring-dropped)\n",
                    flight_path_.c_str(),
                    static_cast<unsigned long long>(obs::flight_recorded()),
                    static_cast<unsigned long long>(obs::flight_dropped()));
      } else {
        std::fprintf(stderr, "bench: could not write flight dump to %s\n",
                     flight_path_.c_str());
      }
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::vector<std::string>& positional() const { return positional_; }
  /// --threads value; 0 (default) = borrow the shared sweep engine.
  std::size_t threads() const { return threads_; }
  /// --seed value; kSeed unless overridden.
  std::uint64_t seed() const { return seed_; }

 private:
  std::size_t threads_ = 0;
  std::uint64_t seed_ = kSeed;
  std::string metrics_path_;
  std::string trace_path_;
  std::string log_path_;
  std::string provenance_path_;
  std::string flight_path_;
  std::string profile_path_;
  std::string attribution_path_;
  bool profiling_ = false;
  std::ofstream log_stream_;
  std::vector<std::string> positional_;
};

}  // namespace rfidsim::bench
