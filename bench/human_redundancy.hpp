// Shared measurement/composition helpers for the human-tracking redundancy
// benches (Tables 4-5, Figures 6-7).
#pragma once

#include <cstddef>
#include <vector>

#include "bench_util.hpp"
#include "reliability/analytical.hpp"

namespace rfidsim::bench {

using reliability::CalibrationProfile;
using reliability::HumanScenarioOptions;
using reliability::Scenario;

/// Per-subject measured tracking reliability; `farther` is zero for
/// one-subject runs.
struct HumanResult {
  double closer = 0.0;
  double farther = 0.0;
};

/// Runs a human-tracking scenario and splits results by subject.
inline HumanResult measure_human(const HumanScenarioOptions& opt,
                                 const CalibrationProfile& cal,
                                 std::size_t reps = 40) {
  const Scenario sc = make_human_tracking_scenario(opt, cal);
  const auto per_obj =
      reliability::per_object_reliability(sc, reliability::run_repeated_parallel(sc, reps, kSeed));
  HumanResult r;
  for (const auto& [obj, ci] : per_obj) {
    (obj.value == 1 ? r.closer : r.farther) = ci.estimate;
  }
  return r;
}

/// The §3 single-opportunity reliabilities this portal's R_C compositions
/// are built from, measured once per (subject count).
struct HumanSingles {
  double front = 0.0;      ///< Front or back badge, 1 antenna.
  double side_near = 0.0;  ///< Hip facing the (first) antenna.
  double side_far = 0.0;   ///< Hip away from the (first) antenna.
};

inline HumanSingles measure_singles(std::size_t subjects, bool farther_subject,
                                    const CalibrationProfile& cal,
                                    std::size_t reps = 40) {
  HumanSingles s;
  auto one = [&](scene::BodySpot spot) {
    HumanScenarioOptions opt;
    opt.subject_count = subjects;
    opt.tag_spots = {spot};
    const HumanResult r = measure_human(opt, cal, reps);
    return farther_subject ? r.farther : r.closer;
  };
  s.front = one(scene::BodySpot::Front);
  s.side_near = one(scene::BodySpot::SideNear);
  s.side_far = one(scene::BodySpot::SideFar);
  return s;
}

/// R_C compositions per the paper's opportunity counting. With one antenna
/// the opportunities are simply the per-spot reliabilities; the facing
/// second antenna adds a mirrored opportunity per tag (front/back tags see
/// `front` again; each side tag sees the other side's reliability).
inline double rc_two_fb(const HumanSingles& s, std::size_t antennas) {
  std::vector<double> ops{s.front, s.front};
  if (antennas == 2) ops.insert(ops.end(), {s.front, s.front});
  return reliability::expected_reliability(ops);
}

inline double rc_two_sides(const HumanSingles& s, std::size_t antennas) {
  std::vector<double> ops{s.side_near, s.side_far};
  if (antennas == 2) ops.insert(ops.end(), {s.side_far, s.side_near});
  return reliability::expected_reliability(ops);
}

inline double rc_four(const HumanSingles& s, std::size_t antennas) {
  std::vector<double> ops{s.front, s.front, s.side_near, s.side_far};
  if (antennas == 2) ops.insert(ops.end(), {s.front, s.front, s.side_far, s.side_near});
  return reliability::expected_reliability(ops);
}

inline double rc_one_fb(const HumanSingles& s, std::size_t antennas) {
  std::vector<double> ops{s.front};
  if (antennas == 2) ops.push_back(s.front);
  return reliability::expected_reliability(ops);
}

inline double rc_one_side(const HumanSingles& s, std::size_t antennas) {
  std::vector<double> ops{s.side_near};
  if (antennas == 2) ops.push_back(s.side_far);
  return reliability::expected_reliability(ops);
}

/// Tag-spot sets for the redundancy rows.
inline std::vector<scene::BodySpot> spots_fb() {
  return {scene::BodySpot::Front, scene::BodySpot::Back};
}
inline std::vector<scene::BodySpot> spots_sides() {
  return {scene::BodySpot::SideNear, scene::BodySpot::SideFar};
}
inline std::vector<scene::BodySpot> spots_all() {
  return {scene::BodySpot::Front, scene::BodySpot::Back, scene::BodySpot::SideNear,
          scene::BodySpot::SideFar};
}

}  // namespace rfidsim::bench
