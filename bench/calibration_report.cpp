// Calibration report: prints the simulator's reliabilities for every
// paper measurement next to the paper's values. Not itself a paper
// figure — this is the harness used to tune CalibrationProfile::paper2006()
// (see EXPERIMENTS.md), kept in-tree so the calibration is reproducible.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "reliability/estimator.hpp"
#include "reliability/orientation.hpp"
#include "reliability/scenarios.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

constexpr std::uint64_t kSeed = 20070625;  // DSN 2007 conference date.

void report_read_range(const CalibrationProfile& cal) {
  std::printf("--- Fig. 2: read range (paper: 20/20 at 1 m, gradual drop 2-9 m) ---\n");
  TextTable t({"distance (m)", "mean tags read (of 20)"});
  for (double d = 1.0; d <= 9.0; d += 1.0) {
    const Scenario sc = make_read_range_scenario(d, cal);
    const RepeatedRuns runs = run_repeated_parallel(sc, 40, kSeed + static_cast<int>(d));
    const SampleSummary s = summarize(distinct_tags_per_run(runs));
    t.add_row({fixed_str(d, 0), fixed_str(s.mean, 1)});
  }
  bench::print_table(t);
}

void report_intertag(const CalibrationProfile& cal) {
  std::printf(
      "\n--- Fig. 4: inter-tag spacing x orientation (paper: safe at 20-40 mm; "
      "cases 1,5 worst) ---\n");
  TextTable t({"spacing", "case1", "case2", "case3", "case4", "case5", "case6"});
  for (double mm : {0.3, 4.0, 10.0, 20.0, 40.0}) {
    std::vector<std::string> row{fixed_str(mm, 1) + " mm"};
    for (const auto& orientation : kFigure3Orientations) {
      const Scenario sc = make_intertag_scenario(mm * 1e-3, orientation, cal);
      const RepeatedRuns runs = run_repeated_parallel(sc, 10, kSeed + orientation.case_number);
      const SampleSummary s = summarize(distinct_tags_per_run(runs));
      row.push_back(fixed_str(s.mean, 1));
    }
    t.add_row(row);
  }
  bench::print_table(t);
}

void report_object_locations(const CalibrationProfile& cal) {
  std::printf("\n--- Table 1: tag location on boxes (paper: F 87%%, Sn 83%%, Sf 63%%, T 29%%) ---\n");
  TextTable t({"location", "simulated", "paper"});
  const struct {
    scene::BoxFace face;
    const char* paper;
  } rows[] = {
      {scene::BoxFace::Front, "87%"},
      {scene::BoxFace::SideNear, "83%"},
      {scene::BoxFace::SideFar, "63%"},
      {scene::BoxFace::Top, "29%"},
  };
  for (const auto& r : rows) {
    ObjectScenarioOptions opt;
    opt.tag_faces = {r.face};
    const Scenario sc = make_object_tracking_scenario(opt, cal);
    const double rel = measure_tag_reliability(sc, 12, kSeed);
    t.add_row({std::string(scene::box_face_name(r.face)), percent(rel), r.paper});
  }
  bench::print_table(t);
}

void report_human_locations(const CalibrationProfile& cal) {
  std::printf("\n--- Table 2: tags on humans, 1 subject (paper: F/B 75%%, Sn 90%%, Sf 10%%) ---\n");
  TextTable t({"location", "simulated", "paper"});
  const struct {
    scene::BodySpot spot;
    const char* paper;
  } rows[] = {
      {scene::BodySpot::Front, "75%"},
      {scene::BodySpot::SideNear, "90%"},
      {scene::BodySpot::SideFar, "10%"},
  };
  for (const auto& r : rows) {
    HumanScenarioOptions opt;
    opt.tag_spots = {r.spot};
    const Scenario sc = make_human_tracking_scenario(opt, cal);
    const double rel = measure_tag_reliability(sc, 20, kSeed);
    t.add_row({std::string(scene::body_spot_name(r.spot)), percent(rel), r.paper});
  }
  bench::print_table(t);

  std::printf("\n--- Table 2: two subjects (paper: closer avg 75%%, farther avg 38%%) ---\n");
  TextTable t2({"location", "closer", "farther", "paper closer", "paper farther"});
  const struct {
    scene::BodySpot spot;
    const char* p_close;
    const char* p_far;
  } rows2[] = {
      {scene::BodySpot::Front, "90%", "50%"},
      {scene::BodySpot::SideNear, "90%", "50%"},
      {scene::BodySpot::SideFar, "30%", "0%"},
  };
  for (const auto& r : rows2) {
    HumanScenarioOptions opt;
    opt.subject_count = 2;
    opt.tag_spots = {r.spot};
    const Scenario sc = make_human_tracking_scenario(opt, cal);
    const RepeatedRuns runs = run_repeated_parallel(sc, 20, kSeed);
    const auto per_obj = per_object_reliability(sc, runs);
    // Objects are registered in subject order: 1 = closer, 2 = farther.
    double closer = 0.0;
    double farther = 0.0;
    for (const auto& [obj, ci] : per_obj) {
      (obj.value == 1 ? closer : farther) = ci.estimate;
    }
    t2.add_row({std::string(scene::body_spot_name(r.spot)), percent(closer),
                percent(farther), r.p_close, r.p_far});
  }
  bench::print_table(t2);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  report_read_range(cal);
  report_intertag(cal);
  report_object_locations(cal);
  report_human_locations(cal);
  return 0;
}
