// Table 4: human tracking reliability with tag redundancy, one antenna.
//
// Paper setup (§4.2): the Table-2 rig with 2 or 4 badges per subject and a
// single portal antenna. Paper (one subject): 2 tags F/B R_M 100%/R_C 94%;
// 2 sides 93%/91%; 4 tags 100%/99.5%. Two-subject rows degrade for the
// farther subject but four tags still reach ~100%/94% average.
#include "bench_util.hpp"
#include "human_redundancy.hpp"

using namespace rfidsim;
using namespace rfidsim::bench;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  banner("Table 4 - human tracking redundancy, 1 antenna",
         "Paper (1 subject): 2 F/B 100%/94%, 2 sides 93%/91%, 4 tags 100%/99.5%.\n"
         "Paper (2 subjects avg): 2 F/B 88%, 2 sides 72%, 4 tags 94%.");
  const CalibrationProfile cal = profile();

  const HumanSingles one = measure_singles(1, false, cal);
  const HumanSingles closer = measure_singles(2, false, cal);
  const HumanSingles farther = measure_singles(2, true, cal);

  struct Row {
    const char* label;
    std::vector<scene::BodySpot> spots;
    double (*rc)(const HumanSingles&, std::size_t);
    const char* paper_one;
    const char* paper_two_avg;
  };
  const Row rows[] = {
      {"2 tags front/back", spots_fb(), rc_two_fb, "100% / 94%", "88%"},
      {"2 tags sides", spots_sides(), rc_two_sides, "93% / 91%", "72%"},
      {"4 tags F/B/sides", spots_all(), rc_four, "100% / 99.5%", "94%"},
  };

  TextTable t({"tags per subject", "1 subj R_M", "1 subj R_C", "2 subj closer R_M",
               "2 subj farther R_M", "2 subj avg R_M", "2 subj avg R_C",
               "paper 1 subj", "paper 2 avg"});
  for (const Row& row : rows) {
    HumanScenarioOptions solo;
    solo.tag_spots = row.spots;
    const double rm_one = measure_human(solo, cal).closer;

    HumanScenarioOptions duo = solo;
    duo.subject_count = 2;
    const HumanResult rm_two = measure_human(duo, cal);

    const double rc_one = row.rc(one, 1);
    const double rc_two_avg = 0.5 * (row.rc(closer, 1) + row.rc(farther, 1));
    t.add_row({row.label, percent(rm_one), percent(rc_one), percent(rm_two.closer),
               percent(rm_two.farther),
               percent(0.5 * (rm_two.closer + rm_two.farther)), percent(rc_two_avg),
               row.paper_one, row.paper_two_avg});
  }
  bench::print_table(t);
  return 0;
}
