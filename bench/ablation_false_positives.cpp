// Ablation (paper §2.1): false positives and their mitigation.
//
// "It is also possible to get false positive reads, where RFID tags might
// be read from outside the region normally associated with the antenna...
// false positives can typically be eliminated by increasing the distance
// between antennas and/or by decreasing the power output of the readers."
//
// Setup: the Table-1 cart lane plus a parked, fully tagged staging pallet
// 6 m downrange of the antenna. Each pass carries *fresh* cartons (new
// EPCs, as in any real flow), while the staging pallet answers every pass.
// The bench sweeps reader power and reports two mitigation strategies:
//   * the paper's (turn the power down) — which also costs main-lane
//     reliability, and
//   * the middleware one (a cross-pass background list) — which removes
//     strays without touching the radio. Per-pass RSSI features do NOT
//     separate the lanes (the distributions overlap); see
//     track::detect_background's documentation.
#include <memory>
#include <unordered_set>

#include "bench_util.hpp"
#include "track/tracking.hpp"
#include "track/zone_filter.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

constexpr std::uint64_t kStrayBase = 10000;
constexpr std::uint64_t kPassStride = 100000;

/// Adds the parked staging pallet (12 tagged boxes) 6 m downrange.
void add_staging_pallet(Scenario& sc) {
  const Vec3 extents{0.40, 0.40, 0.30};
  std::uint64_t id = kStrayBase;
  for (int i = 0; i < 12; ++i) {
    Pose pose;
    pose.position = {-1.0 + 0.4 * (i % 3), -6.0 + 0.42 * ((i / 3) % 2),
                     0.5 + 0.32 * (i / 6)};
    pose.frame.forward = {1.0, 0.0, 0.0};
    pose.frame.up = {0.0, 0.0, 1.0};
    scene::Entity box("staged box", scene::BoxBody{extents}, rf::Material::Metal,
                      std::make_unique<scene::StaticTrajectory>(pose), 0.62);
    box.add_tag(scene::Tag{
        scene::TagId{id++}, scene::mount_on_box_face(scene::BoxFace::SideNear, extents,
                                                     rf::Material::Metal, 0.05)});
    sc.scene.entities.push_back(std::move(box));
  }
}

/// Each pass carries fresh cartons: give the main-lane tags pass-unique
/// EPCs (the staging pallet keeps its ids — it is the same pallet).
sys::EventLog relabel_fresh_cartons(const sys::EventLog& log, std::size_t pass) {
  sys::EventLog out = log;
  for (auto& ev : out) {
    if (ev.tag.value < kStrayBase) ev.tag.value += (pass + 1) * kPassStride;
  }
  return out;
}

double count_strays(const sys::EventLog& log) {
  std::unordered_set<std::uint64_t> strays;
  for (const auto& ev : log) {
    if (ev.tag.value >= kStrayBase && ev.tag.value < kPassStride) {
      strays.insert(ev.tag.value);
    }
  }
  return static_cast<double>(strays.size());
}

/// Tracking fraction of the pass's 12 fresh cartons.
double main_fraction(const sys::EventLog& log, std::size_t pass) {
  std::unordered_set<std::uint64_t> seen;
  for (const auto& ev : log) {
    if (ev.tag.value < (pass + 1) * kPassStride) continue;
    const std::uint64_t base = ev.tag.value - (pass + 1) * kPassStride;
    if (base >= 1 && base <= 12) seen.insert(base);
  }
  return static_cast<double>(seen.size()) / 12.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - false positives vs. reader power",
                "Parked staging pallet 6 m downrange (12 tags); fresh cartons each\n"
                "pass. Strays counted per pass; background list learned from the\n"
                "preceding passes.");
  const CalibrationProfile base = bench::profile();

  TextTable t({"tx power", "main lane", "strays/pass (raw)",
               "strays/pass (bg filter)", "main (bg filter)"});
  for (const double power : {24.0, 27.0, 30.0, 33.0}) {
    CalibrationProfile cal = base;
    cal.radio.tx_power = DbmPower(power);
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front};
    Scenario sc = make_object_tracking_scenario(opt, cal);
    add_staging_pallet(sc);

    const std::size_t reps = 16;
    const RepeatedRuns runs = run_repeated_parallel(sc, reps, bench::kSeed);
    std::vector<sys::EventLog> passes;
    for (std::size_t p = 0; p < reps; ++p) {
      passes.push_back(relabel_fresh_cartons(runs.logs[p], p));
    }
    const auto background = track::detect_background(passes, /*min_passes=*/3);

    double main_raw = 0.0;
    double stray_raw = 0.0;
    double main_filtered = 0.0;
    double stray_filtered = 0.0;
    for (std::size_t p = 0; p < reps; ++p) {
      main_raw += main_fraction(passes[p], p);
      stray_raw += count_strays(passes[p]);
      const sys::EventLog clean = track::remove_background(passes[p], background);
      main_filtered += main_fraction(clean, p);
      stray_filtered += count_strays(clean);
    }
    const double n = static_cast<double>(reps);
    t.add_row({fixed_str(power, 0) + " dBm", percent(main_raw / n),
               fixed_str(stray_raw / n, 1), fixed_str(stray_filtered / n, 1),
               percent(main_filtered / n)});
  }
  bench::print_table(t);
  std::printf(
      "\nReading: lowering power trades main-lane reliability for fewer strays\n"
      "(the paper's §2.1 suggestion); the background list removes the parked\n"
      "pallet entirely at any power, because it answers every pass while real\n"
      "shipments appear once.\n");
  return 0;
}
