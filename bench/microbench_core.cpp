// Google-benchmark micro-benchmarks for the simulator's hot paths: the
// per-round link evaluation and the Gen 2 inventory engine. These guard
// against performance regressions that would make the Monte Carlo
// experiment sweeps (hundreds of passes per table) painful.
#include <benchmark/benchmark.h>

#include <memory>

#include "gen2/inventory.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "scene/path_evaluator.hpp"
#include "system/portal.hpp"

namespace {

using namespace rfidsim;

void BM_PathEvaluation(benchmark::State& state) {
  const auto cal = reliability::CalibrationProfile::paper2006();
  reliability::ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  const reliability::Scenario sc = reliability::make_object_tracking_scenario(opt, cal);
  const scene::PathEvaluator evaluator(sc.scene, cal.evaluator);
  const auto tags = sc.scene.all_tags();
  double t = 0.0;
  for (auto _ : state) {
    for (const auto& tag : tags) {
      benchmark::DoNotOptimize(evaluator.evaluate(0, tag, t));
    }
    t += 0.025;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tags.size()));
}
BENCHMARK(BM_PathEvaluation);

void BM_InventoryRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gen2::InventoryConfig cfg;
  gen2::InventoryEngine engine(cfg);
  Rng rng(1);
  double t = 0.0;
  for (auto _ : state) {
    // Fresh, fully powered population each round (worst case: everyone
    // contends).
    std::vector<gen2::TagState> states(n);
    std::vector<gen2::TagLink> links(n);
    for (std::size_t i = 0; i < n; ++i) {
      states[i].set_powered(true, t, gen2::Session::S0);
      links[i].powered = true;
      links[i].rx_power = DbmPower(-55.0);
    }
    benchmark::DoNotOptimize(engine.run_round(states, links, t, rng));
    t += 0.1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InventoryRound)->Arg(1)->Arg(10)->Arg(100);

void BM_FullPass(benchmark::State& state) {
  const auto cal = reliability::CalibrationProfile::paper2006();
  reliability::ObjectScenarioOptions opt;
  const reliability::Scenario sc = reliability::make_object_tracking_scenario(opt, cal);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(++seed);
    benchmark::DoNotOptimize(sim.run(rng));
  }
}
BENCHMARK(BM_FullPass);

}  // namespace

BENCHMARK_MAIN();
