// Google-benchmark micro-benchmarks for the simulator's hot paths: the
// per-round link evaluation and the Gen 2 inventory engine. These guard
// against performance regressions that would make the Monte Carlo
// experiment sweeps (hundreds of passes per table) painful.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "gen2/inventory.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "scene/path_evaluator.hpp"
#include "system/portal.hpp"

namespace {

using namespace rfidsim;

void BM_PathEvaluation(benchmark::State& state) {
  const auto cal = reliability::CalibrationProfile::paper2006();
  reliability::ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  const reliability::Scenario sc = reliability::make_object_tracking_scenario(opt, cal);
  const scene::PathEvaluator evaluator(sc.scene, cal.evaluator);
  const auto tags = sc.scene.all_tags();
  double t = 0.0;
  for (auto _ : state) {
    for (const auto& tag : tags) {
      benchmark::DoNotOptimize(evaluator.evaluate(0, tag, t));
    }
    t += 0.025;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tags.size()));
}
BENCHMARK(BM_PathEvaluation);

void BM_InventoryRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gen2::InventoryConfig cfg;
  gen2::InventoryEngine engine(cfg);
  Rng rng(1);
  double t = 0.0;
  for (auto _ : state) {
    // Fresh, fully powered population each round (worst case: everyone
    // contends).
    std::vector<gen2::TagState> states(n);
    std::vector<gen2::TagLink> links(n);
    for (std::size_t i = 0; i < n; ++i) {
      states[i].set_powered(true, t);
      links[i].powered = true;
      links[i].rx_power = DbmPower(-55.0);
    }
    benchmark::DoNotOptimize(engine.run_round(states, links, t, rng));
    t += 0.1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InventoryRound)->Arg(1)->Arg(10)->Arg(100);

void BM_FullPass(benchmark::State& state) {
  const auto cal = reliability::CalibrationProfile::paper2006();
  reliability::ObjectScenarioOptions opt;
  const reliability::Scenario sc = reliability::make_object_tracking_scenario(opt, cal);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(++seed);
    benchmark::DoNotOptimize(sim.run(rng));
  }
}
BENCHMARK(BM_FullPass);

/// Cached path evaluation with observability toggled at runtime. The pair
/// exists so `--check-obs-overhead` (and anyone eyeballing the regular
/// benchmark output) can see that the hot loop costs the same either way:
/// the evaluator keeps plain per-instance counters and only touches the
/// registry when it is destroyed.
void BM_PathEvaluationCached(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  const bool saved = obs::enabled();
  obs::set_enabled(obs_on);
  const auto cal = reliability::CalibrationProfile::paper2006();
  const reliability::Scenario sc = reliability::make_read_range_scenario(4.0, cal);
  scene::EvaluatorParams params = sc.portal.evaluator;
  params.static_geometry_cache = true;
  const scene::PathEvaluator evaluator(sc.scene, params);
  const auto tags = sc.scene.all_tags();
  for (auto _ : state) {
    for (const auto& tag : tags) {
      benchmark::DoNotOptimize(evaluator.evaluate(0, tag, 0.0));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tags.size()));
  obs::set_enabled(saved);
}
BENCHMARK(BM_PathEvaluationCached)->Arg(0)->Arg(1)->ArgNames({"obs"});

/// Shared A/B overhead gate: finely interleaved ~5 ms slices in a
/// deterministically shuffled order, compared by per-mode medians, 1%
/// budget on mode-true vs mode-false. A rigid A/B/B/A pattern measurably
/// aliases with periodic system activity (timer ticks, frequency-scaling
/// oscillation) on shared hardware — a null experiment with the flag held
/// constant still showed ~1% "overhead" under that pattern. Shuffling
/// decorrelates the mode from any such period and the median shrugs off
/// the occasional descheduled slice.
int run_ab_gate(const char* label,
                const std::function<double(bool)>& time_slice) {
  constexpr int kSlicesPerMode = 100;
  std::vector<char> order;
  for (int s = 0; s < kSlicesPerMode; ++s) {
    order.push_back(0);
    order.push_back(1);
  }
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;  // Fixed seed: run is reproducible.
  auto next = [&lcg] {
    lcg ^= lcg << 13;
    lcg ^= lcg >> 7;
    lcg ^= lcg << 17;
    return lcg;
  };
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[next() % i]);
  }
  std::vector<double> off_s, on_s;
  time_slice(false);  // Warm caches before the first measured slice.
  time_slice(true);
  for (const char mode : order) {
    (mode != 0 ? on_s : off_s).push_back(time_slice(mode != 0));
  }
  auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double med_off = median(off_s);
  const double med_on = median(on_s);
  const double overhead = med_on / med_off - 1.0;
  std::printf("%s: off %.6fs/slice, on %.6fs/slice, %+.3f%%\n", label, med_off,
              med_on, overhead * 100.0);
  if (overhead > 0.01) {
    std::printf("FAIL: %s costs more than 1%% on the hot loop\n", label);
    return 1;
  }
  std::printf("OK: within the 1%% disabled-overhead budget\n");
  return 0;
}

/// `--check-obs-overhead`: times the cached path-eval hot loop with obs
/// enabled vs disabled and fails if the enabled loop is more than 1%
/// slower. The hot loop compiles identically in both modes, so this holds
/// with plenty of margin; a regression here means someone put registry
/// traffic back on the per-evaluation path. Also gates the disabled
/// ScopedPhase markers (check_phase_overhead below) under the same budget.
int check_obs_overhead() {
  const auto cal = reliability::CalibrationProfile::paper2006();
  const reliability::Scenario sc = reliability::make_read_range_scenario(4.0, cal);
  scene::EvaluatorParams params = sc.portal.evaluator;
  params.static_geometry_cache = true;
  const auto tags = sc.scene.all_tags();

  const scene::PathEvaluator evaluator(sc.scene, params);
  double sink = 0.0;
  // Thread CPU time, not wall time: a preempted slice would otherwise
  // charge the whole scheduling gap to whichever mode was running.
  auto thread_seconds = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  };
  auto time_slice = [&](bool obs_on) {
    obs::set_enabled(obs_on);
    constexpr std::size_t kPasses = 5000;  // ~5 ms per slice.
    const double t0 = thread_seconds();
    for (std::size_t p = 0; p < kPasses; ++p) {
      for (const auto& tag : tags) {
        sink += evaluator.evaluate(0, tag, 0.0).distance_m;
      }
    }
    return thread_seconds() - t0;
  };

  const int rc = run_ab_gate("obs overhead on cached path eval", time_slice);
  obs::set_enabled(true);
  if (sink == 42.0) std::puts("");  // Defeat dead-code elimination.
  return rc;
}

/// Disabled-profiler-hook overhead: the same cached path-eval loop, with
/// every pass wrapped in a ScopedPhase marker whose attribution switch is
/// off, vs the bare loop. Markers live on per-round orchestration paths
/// (portal run, store route/merge), so a disabled marker must cost no more
/// than the disabled metric hooks it sits next to — the same 1% budget.
int check_phase_overhead() {
  const auto cal = reliability::CalibrationProfile::paper2006();
  const reliability::Scenario sc = reliability::make_read_range_scenario(4.0, cal);
  scene::EvaluatorParams params = sc.portal.evaluator;
  params.static_geometry_cache = true;
  const auto tags = sc.scene.all_tags();

  const scene::PathEvaluator evaluator(sc.scene, params);
  double sink = 0.0;
  auto thread_seconds = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  };
  const bool saved = obs::prof::attribution_enabled();
  obs::prof::set_attribution_enabled(false);
  auto time_slice = [&](bool with_markers) {
    constexpr std::size_t kPasses = 5000;  // ~5 ms per slice.
    const double t0 = thread_seconds();
    for (std::size_t p = 0; p < kPasses; ++p) {
      if (with_markers) {
        const obs::prof::ScopedPhase phase(obs::prof::Phase::kPathEval);
        for (const auto& tag : tags) {
          sink += evaluator.evaluate(0, tag, 0.0).distance_m;
        }
      } else {
        for (const auto& tag : tags) {
          sink += evaluator.evaluate(0, tag, 0.0).distance_m;
        }
      }
    }
    return thread_seconds() - t0;
  };
  const int rc =
      run_ab_gate("disabled phase markers on cached path eval", time_slice);
  obs::prof::set_attribution_enabled(saved);
  if (sink == 42.0) std::puts("");  // Defeat dead-code elimination.
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--check-obs-overhead") {
      const int rc = check_obs_overhead();
      return rc != 0 ? rc : check_phase_overhead();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
