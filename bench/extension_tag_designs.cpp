// Extension (paper §5 future work): active tags and alternative tag
// designs.
//
// "Future extensions of this work involve experimenting with active tags,
// and tag reliability for different tag designs." This bench re-runs the
// paper's three hardest scenarios with three tag architectures:
//   * the measured baseline (passive single dipole),
//   * a passive dual-dipole (the industry fix for orientation nulls),
//   * an active beacon (battery-assisted: link closed by the reader's
//     sensitivity, not the energy-harvesting threshold).
#include "bench_util.hpp"
#include "reliability/orientation.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

const struct {
  const char* name;
  rf::TagDesign design;
} kDesigns[] = {
    {"passive single-dipole", rf::TagDesign::single_dipole()},
    {"passive dual-dipole", rf::TagDesign::dual_dipole()},
    {"active beacon", rf::TagDesign::active_beacon()},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Extension - tag designs (paper future work)",
                "Dual dipoles cancel the orientation nulls; active tags erase the\n"
                "power-up margin problem entirely.");
  const CalibrationProfile cal = bench::profile();

  // Probe 1: the worst orientation case of Fig. 4 (case 1, 20 mm spacing).
  std::printf("Fig. 4 worst case (orientation 1, 20 mm spacing), tags read of 10:\n");
  TextTable t1({"design", "mean tags read", "read reliability"});
  for (const auto& d : kDesigns) {
    const Scenario sc =
        make_intertag_scenario(0.020, kFigure3Orientations[0], cal, d.design);
    const SampleSummary s =
        summarize(distinct_tags_per_run(run_repeated_parallel(sc, 12, bench::kSeed)));
    t1.add_row({d.name, fixed_str(s.mean, 1), percent(s.mean / 10.0)});
  }
  bench::print_table(t1);

  // Probe 2: the worst object placement of Table 1 (top of the box).
  std::printf("\nTable 1 worst placement (top of router box):\n");
  TextTable t2({"design", "tracking reliability"});
  for (const auto& d : kDesigns) {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Top};
    opt.tag_design = d.design;
    const double rel = measure_tracking_reliability(
        make_object_tracking_scenario(opt, cal), 24, bench::kSeed);
    t2.add_row({d.name, percent(rel)});
  }
  bench::print_table(t2);

  // Probe 3: the blocked badge of Table 2 (far-side hip, single subject).
  std::printf("\nTable 2 worst badge spot (side farther from the antenna):\n");
  TextTable t3({"design", "tracking reliability"});
  for (const auto& d : kDesigns) {
    HumanScenarioOptions opt;
    opt.tag_spots = {scene::BodySpot::SideFar};
    opt.tag_design = d.design;
    const double rel = measure_tracking_reliability(
        make_human_tracking_scenario(opt, cal), 40, bench::kSeed);
    t3.add_row({d.name, percent(rel)});
  }
  bench::print_table(t3);
  return 0;
}
