// Figure 2: read reliability vs. tag-antenna distance.
//
// Paper setup (§3, Fig. 1-2): 20 tags in a plane grid parallel to the
// antenna (12.5 cm x 20 cm pitch), fixed in position; a single read per
// trial, 40 trials per distance; report the average number of tags read
// with upper/lower quartiles. Paper result: 100% at 1 m, gradual drop
// between 2 m and 9 m.
#include "bench_util.hpp"
#include "reliability/scenarios.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Figure 2 - read reliability vs. distance",
                "Paper: 20/20 at 1 m; gradual decline from 2 m to 9 m.");
  const CalibrationProfile cal = bench::profile();

  TextTable t({"distance (m)", "mean tags read (of 20)", "lower quartile",
               "upper quartile", "read reliability"});
  for (int d = 1; d <= 9; ++d) {
    const Scenario sc = make_read_range_scenario(static_cast<double>(d), cal);
    const RepeatedRuns runs = run_repeated_parallel(sc, 40, bench::kSeed + d);
    const SampleSummary s = summarize(distinct_tags_per_run(runs));
    t.add_row({std::to_string(d), fixed_str(s.mean, 1), fixed_str(s.lower_quartile, 1),
               fixed_str(s.upper_quartile, 1), percent(s.mean / 20.0)});
  }
  bench::print_table(t);
  return 0;
}
