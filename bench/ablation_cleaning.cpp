// Ablation (paper §2.2, related work [6], [15]): data-stream cleaning vs.
// physical redundancy.
//
// The paper cites route/accompany constraints (Inoue et al.) and adaptive
// window smoothing (Jeffery et al.) as back-end complements to physical
// redundancy. This bench quantifies on the object-tracking rig how much
// each recovers at different raw reliabilities, and how cleaning composes
// with tag-level redundancy.
#include "bench_util.hpp"
#include "track/cleaning.hpp"
#include "track/tracking.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

struct CleaningResult {
  double raw = 0.0;
  double accompany = 0.0;  ///< Pallet-level accompany constraint (quorum 1/4).
  double route = 0.0;      ///< Two sequential portals + route constraint.
};

CleaningResult evaluate(const ObjectScenarioOptions& opt, const CalibrationProfile& cal,
                        std::size_t reps) {
  const Scenario sc = make_object_tracking_scenario(opt, cal);
  const track::TrackingAnalyzer analyzer(sc.registry);
  const std::vector<std::vector<track::ObjectId>> pallet{
      {sc.registry.objects().begin(), sc.registry.objects().end()}};

  CleaningResult result;
  const RepeatedRuns runs = run_repeated_parallel(sc, 2 * reps, bench::kSeed);
  for (std::size_t i = 0; i < reps; ++i) {
    // Two consecutive passes model two checkpoints of a route.
    const auto rep0 = analyzer.analyze(runs.logs[2 * i]);
    const auto rep1 = analyzer.analyze(runs.logs[2 * i + 1]);
    const double n = static_cast<double>(sc.registry.object_count());

    result.raw += static_cast<double>(rep0.objects_identified.size()) / n;

    const auto acc =
        track::apply_accompany_constraint(rep0.objects_identified, pallet, 0.25);
    result.accompany += static_cast<double>(acc.corrected.size()) / n;

    track::RouteObservations obs;
    obs.checkpoint_count = 2;
    obs.detected = {rep0.objects_identified, rep1.objects_identified};
    const auto fixed = track::apply_route_constraint(obs);
    result.route += static_cast<double>(fixed.corrected.detected[0].size()) / n;
  }
  result.raw /= static_cast<double>(reps);
  result.accompany /= static_cast<double>(reps);
  result.route /= static_cast<double>(reps);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  bench::banner("Ablation - back-end cleaning vs. physical redundancy",
                "Accompany/route constraints (related work [6]) recover misses in\n"
                "software; tag redundancy prevents them in the first place.");
  const CalibrationProfile cal = bench::profile();
  const std::size_t reps = 16;

  TextTable t({"tag placement", "raw", "+accompany (pallet)", "+route (2 portals)"});
  const struct {
    const char* label;
    std::vector<scene::BoxFace> faces;
  } rows[] = {
      {"1 tag, top (worst)", {scene::BoxFace::Top}},
      {"1 tag, side farther", {scene::BoxFace::SideFar}},
      {"1 tag, front", {scene::BoxFace::Front}},
      {"2 tags, front+side", {scene::BoxFace::Front, scene::BoxFace::SideNear}},
  };
  for (const auto& row : rows) {
    ObjectScenarioOptions opt;
    opt.tag_faces = row.faces;
    const CleaningResult r = evaluate(opt, cal, reps);
    t.add_row({row.label, percent(r.raw), percent(r.accompany), percent(r.route)});
  }
  bench::print_table(t);
  std::printf(
      "\nReading: accompany-cleaning already lifts weak placements dramatically\n"
      "(any box seen implies the pallet passed), but it changes the *semantics* —\n"
      "it infers presence rather than observing it. Physical tag redundancy keeps\n"
      "per-object evidence while reaching the same reliability.\n");
  return 0;
}
