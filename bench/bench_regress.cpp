// bench_regress — perf-trajectory gate over rfidsim-bench-v1 records.
//
//   bench_regress <baseline.json> <candidate.json> [--thresholds <file>]
//
// Compares the candidate perf record (the newer run) against the baseline
// (an older checked-in BENCH_*.json) metric by metric and exits non-zero
// when any metric regressed past its threshold — CI runs it along the
// checked-in trajectory (BENCH_2 -> BENCH_3 -> current run) so a slowdown
// has to answer for itself in the PR that introduced it, not three PRs
// later when someone happens to read the numbers.
//
// Threshold file: one rule per line, '#' starts a comment. <name> is a
// benchmark name or '*' (the fallback when no named rule matches).
//
//   wall <name|*> <max_ratio>       candidate wall_s / baseline wall_s
//                                   must be <= max_ratio
//   speedup <name|*> <min_fraction> candidate speedup must be >=
//                                   min_fraction * baseline speedup
//   floor <name> <min_speedup> [min_hw]
//                                   candidate speedup must be >= min_speedup
//                                   ABSOLUTELY (no baseline involved) — the
//                                   contract "this optimisation exists", not
//                                   "it didn't rot". With min_hw, the rule
//                                   is skipped on machines whose candidate
//                                   record shows hardware_concurrency <
//                                   min_hw: thread-scaling floors cannot
//                                   hold on a 1-core CI box.
//   allow-missing <name>            candidate may drop this benchmark
//
// Without a threshold file the built-in fallbacks apply (wall * 2.0,
// speedup * 0.5 — generous, because CI wall clocks are noisy; pin named
// metrics tighter where it matters). Benchmarks new in the candidate are
// reported but never fail; benchmarks missing from the candidate fail
// unless allow-missing'd. The records' own correctness verdicts
// (sweep_matches_serial, obs_matches_disabled) must be true wherever
// present — a fast record of a wrong simulation is not a baseline.
//
// The JSON reader below is deliberately minimal: it parses the subset of
// JSON that perf_baseline.cpp emits (objects, arrays, strings with
// backslash escapes, numbers, booleans) and nothing more. No third-party
// dependency for a 20-line schema.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace {

// --- Minimal JSON value + recursive-descent parser. ------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!value(out)) {
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content after top-level value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    error_ = std::string(what) + " near byte " + std::to_string(pos_);
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool string_body(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        c = text_[pos_++];
        // perf_baseline only ever emits \" and \\; pass anything else
        // through verbatim rather than rejecting the file.
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // Closing quote.
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      out.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_body(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        if (!value(out.object[key])) return false;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') { ++pos_; continue; }
        if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        out.array.emplace_back();
        if (!value(out.array.back())) return false;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') { ++pos_; continue; }
        if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string_body(out.string);
    }
    if (c == 't') { out.kind = JsonValue::Kind::kBool; out.boolean = true; return literal("true"); }
    if (c == 'f') { out.kind = JsonValue::Kind::kBool; out.boolean = false; return literal("false"); }
    if (c == 'n') { out.kind = JsonValue::Kind::kNull; return literal("null"); }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      out.kind = JsonValue::Kind::kNumber;
      char* end = nullptr;
      out.number = std::strtod(text_.c_str() + pos_, &end);
      if (end == text_.c_str() + pos_) return fail("bad number");
      pos_ = static_cast<std::size_t>(end - text_.c_str());
      return true;
    }
    return fail("unexpected character");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- The bench record and threshold rules. ---------------------------------

struct BenchEntry {
  std::string name;
  double wall_s = 0.0;
  double cells = 0.0;
  double speedup = 0.0;
  bool has_speedup = false;
};

struct BenchRecord {
  std::string path;
  std::map<std::string, BenchEntry> entries;
  std::vector<std::string> order;  ///< Names in file order, for stable output.
  std::vector<std::pair<std::string, bool>> verdicts;  ///< Correctness booleans.
  double hardware_concurrency = 0.0;  ///< 0 when the record predates the field.
};

bool load_record(const std::string& path, BenchRecord& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_regress: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  std::string error;
  if (!JsonParser(text).parse(root, error) ||
      root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_regress: %s: %s\n", path.c_str(),
                 error.empty() ? "top-level value is not an object" : error.c_str());
    return false;
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->string != "rfidsim-bench-v1") {
    std::fprintf(stderr, "bench_regress: %s: schema is not rfidsim-bench-v1\n",
                 path.c_str());
    return false;
  }
  if (const JsonValue* v = root.find("hardware_concurrency");
      v != nullptr && v->kind == JsonValue::Kind::kNumber) {
    out.hardware_concurrency = v->number;
  }
  for (const char* key :
       {"sweep_matches_serial", "obs_matches_disabled", "fleet_digest_matches",
        "batch_matches_scalar", "crash_recovery_matches",
        "flight_recorder_ok"}) {
    if (const JsonValue* v = root.find(key);
        v != nullptr && v->kind == JsonValue::Kind::kBool) {
      out.verdicts.emplace_back(key, v->boolean);
    }
  }
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_regress: %s: missing benchmarks array\n", path.c_str());
    return false;
  }
  out.path = path;
  for (const JsonValue& item : benches->array) {
    BenchEntry e;
    if (const JsonValue* v = item.find("name")) e.name = v->string;
    if (const JsonValue* v = item.find("wall_s")) e.wall_s = v->number;
    if (const JsonValue* v = item.find("cells")) e.cells = v->number;
    if (const JsonValue* v = item.find("speedup")) {
      e.speedup = v->number;
      e.has_speedup = true;
    }
    if (e.name.empty() || e.wall_s <= 0.0) {
      std::fprintf(stderr, "bench_regress: %s: benchmark entry without name/wall_s\n",
                   path.c_str());
      return false;
    }
    out.order.push_back(e.name);
    out.entries[e.name] = e;
  }
  return true;
}

/// An absolute speedup floor: `speedup` rules bound drift relative to the
/// baseline, floors pin the optimisation itself — a batch kernel that no
/// longer beats the scalar oracle 2x fails even if the baseline rotted too.
struct FloorRule {
  double min_speedup = 1.0;
  double min_hw = 0.0;  ///< Skip on candidates with fewer hardware threads.
};

struct Thresholds {
  std::map<std::string, double> wall;      ///< name -> max wall ratio.
  std::map<std::string, double> speedup;   ///< name -> min speedup fraction.
  std::map<std::string, FloorRule> floors; ///< name -> absolute speedup floor.
  std::map<std::string, bool> allow_missing;

  double wall_limit(const std::string& name) const {
    if (const auto it = wall.find(name); it != wall.end()) return it->second;
    if (const auto it = wall.find("*"); it != wall.end()) return it->second;
    return 2.0;
  }
  double speedup_limit(const std::string& name) const {
    if (const auto it = speedup.find(name); it != speedup.end()) return it->second;
    if (const auto it = speedup.find("*"); it != speedup.end()) return it->second;
    return 0.5;
  }
  bool missing_ok(const std::string& name) const {
    return allow_missing.count(name) != 0;
  }
};

bool load_thresholds(const std::string& path, Thresholds& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_regress: cannot open threshold file %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string kind, name;
    if (!(fields >> kind)) continue;  // Blank / comment-only line.
    if (!(fields >> name)) {
      std::fprintf(stderr, "bench_regress: %s:%zu: rule needs a benchmark name\n",
                   path.c_str(), lineno);
      return false;
    }
    if (kind == "allow-missing") {
      out.allow_missing[name] = true;
      continue;
    }
    double limit = 0.0;
    if (!(fields >> limit) || limit <= 0.0) {
      std::fprintf(stderr, "bench_regress: %s:%zu: rule needs a positive limit\n",
                   path.c_str(), lineno);
      return false;
    }
    if (kind == "wall") {
      out.wall[name] = limit;
    } else if (kind == "speedup") {
      out.speedup[name] = limit;
    } else if (kind == "floor") {
      FloorRule rule;
      rule.min_speedup = limit;
      double min_hw = 0.0;
      if (fields >> min_hw) {
        if (min_hw < 0.0) {
          std::fprintf(stderr, "bench_regress: %s:%zu: floor min_hw must be >= 0\n",
                       path.c_str(), lineno);
          return false;
        }
        rule.min_hw = min_hw;
      }
      out.floors[name] = rule;
    } else {
      std::fprintf(stderr,
                   "bench_regress: %s:%zu: unknown rule '%s' "
                   "(expected wall, speedup, floor, or allow-missing)\n",
                   path.c_str(), lineno, kind.c_str());
      return false;
    }
  }
  return true;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string threshold_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--thresholds") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_regress: --thresholds needs a path\n");
        return 2;
      }
      threshold_path = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_regress <baseline.json> <candidate.json> "
                 "[--thresholds <file>]\n");
    return 2;
  }

  BenchRecord baseline, candidate;
  if (!load_record(positional[0], baseline)) return 2;
  if (!load_record(positional[1], candidate)) return 2;
  Thresholds thresholds;
  if (!threshold_path.empty() && !load_thresholds(threshold_path, thresholds)) return 2;

  std::printf("bench_regress: %s -> %s\n\n", baseline.path.c_str(),
              candidate.path.c_str());

  std::size_t failures = 0;
  for (const auto& [key, ok] : candidate.verdicts) {
    if (!ok) {
      std::printf("FAIL %s: candidate record reports %s = false\n",
                  candidate.path.c_str(), key.c_str());
      ++failures;
    }
  }
  for (const auto& [key, ok] : baseline.verdicts) {
    if (!ok) {
      std::printf("FAIL %s: baseline record reports %s = false\n",
                  baseline.path.c_str(), key.c_str());
      ++failures;
    }
  }

  rfidsim::TextTable table(
      {"benchmark", "check", "baseline", "candidate", "limit", "verdict"});
  for (const std::string& name : baseline.order) {
    const BenchEntry& base = baseline.entries[name];
    const auto cand_it = candidate.entries.find(name);
    if (cand_it == candidate.entries.end()) {
      const bool ok = thresholds.missing_ok(name);
      table.add_row({name, "present", "yes", "MISSING", "-",
                     ok ? "allowed" : "FAIL"});
      if (!ok) ++failures;
      continue;
    }
    const BenchEntry& cand = cand_it->second;

    if (base.cells != cand.cells) {
      // The workload itself changed size; a wall-clock ratio would compare
      // apples to oranges, so report and move on.
      table.add_row({name, "cells", fmt(base.cells), fmt(cand.cells), "-",
                     "workload changed, wall skipped"});
    } else {
      const double ratio = cand.wall_s / base.wall_s;
      const double limit = thresholds.wall_limit(name);
      const bool ok = ratio <= limit;
      table.add_row({name, "wall ratio", fmt(base.wall_s) + "s",
                     fmt(cand.wall_s) + "s", "<= " + fmt(limit),
                     ok ? fmt(ratio) + " ok" : fmt(ratio) + " FAIL"});
      if (!ok) ++failures;
    }

    if (base.has_speedup && cand.has_speedup) {
      const double fraction = thresholds.speedup_limit(name);
      const double floor = fraction * base.speedup;
      const bool ok = cand.speedup >= floor;
      table.add_row({name, "speedup", fmt(base.speedup) + "x",
                     fmt(cand.speedup) + "x", ">= " + fmt(floor),
                     ok ? "ok" : "FAIL"});
      if (!ok) ++failures;
    }
  }
  for (const std::string& name : candidate.order) {
    if (baseline.entries.count(name) == 0) {
      table.add_row({name, "present", "-", "new", "-", "new benchmark"});
    }
  }

  // Floors check the candidate alone, so they also cover benchmarks new in
  // this record (the baseline-relative passes above cannot). One threshold
  // file serves several record kinds (BENCH_3 vs BENCH_FLEET), so a floor
  // whose benchmark appears in neither record simply belongs to the other
  // kind; it only fails when the baseline proves the benchmark was dropped.
  // Every floor rule this run does NOT enforce is logged below the table:
  // a silently skipped gate looks exactly like a passing one, and "the
  // floor held" must never mean "the floor never ran".
  std::vector<std::string> skipped_floors;
  for (const auto& [name, rule] : thresholds.floors) {
    const auto cand_it = candidate.entries.find(name);
    if (cand_it == candidate.entries.end()) {
      if (baseline.entries.count(name) == 0) {
        skipped_floors.push_back("floor " + name + " >= " +
                                 fmt(rule.min_speedup) +
                                 ": benchmark in neither record (rule belongs "
                                 "to another record kind)");
        continue;
      }
      const bool ok = thresholds.missing_ok(name);
      table.add_row({name, "floor", "-", "MISSING", ">= " + fmt(rule.min_speedup),
                     ok ? "allowed" : "FAIL"});
      if (!ok) ++failures;
      continue;
    }
    if (rule.min_hw > 0.0 && candidate.hardware_concurrency < rule.min_hw) {
      const std::string have =
          std::to_string(static_cast<long long>(candidate.hardware_concurrency));
      const std::string need = std::to_string(static_cast<long long>(rule.min_hw));
      table.add_row({name, "floor", "-", fmt(cand_it->second.speedup) + "x",
                     ">= " + fmt(rule.min_speedup),
                     "skipped (" + have + " hw threads < " + need + ")"});
      skipped_floors.push_back("floor " + name + " >= " + fmt(rule.min_speedup) +
                               ": hw-gated, runner has " + have +
                               " hardware threads < required " + need);
      continue;
    }
    if (!cand_it->second.has_speedup) {
      table.add_row({name, "floor", "-", "no speedup field",
                     ">= " + fmt(rule.min_speedup), "FAIL"});
      ++failures;
      continue;
    }
    const bool ok = cand_it->second.speedup >= rule.min_speedup;
    table.add_row({name, "floor", "-", fmt(cand_it->second.speedup) + "x",
                   ">= " + fmt(rule.min_speedup), ok ? "ok" : "FAIL"});
    if (!ok) ++failures;
  }
  std::fputs(table.render().c_str(), stdout);

  if (!skipped_floors.empty()) {
    std::printf("\n%zu floor rule%s NOT enforced on this run:\n",
                skipped_floors.size(), skipped_floors.size() == 1 ? "" : "s");
    for (const std::string& note : skipped_floors) {
      std::printf("  skipped %s\n", note.c_str());
    }
  }

  if (failures != 0) {
    std::printf("\nbench_regress: %zu regression%s past threshold\n", failures,
                failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("\nbench_regress: no regressions past thresholds\n");
  return 0;
}
