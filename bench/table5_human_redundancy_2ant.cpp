// Table 5: human tracking reliability with two antennas per portal.
//
// Paper setup (§4.2): the Table-2/4 rig with the facing antenna pair (2 m
// apart) driven by one reader. Paper (one subject): 1 tag F/B R_M 80%/R_C
// 94%; 1 side 90%/91%; 2 F/B 100%/99.6%; 2 sides 100%/99.2%; 4 tags
// 100%/100%. Two-subject columns within a few points of those.
#include "bench_util.hpp"
#include "human_redundancy.hpp"

using namespace rfidsim;
using namespace rfidsim::bench;
using namespace rfidsim::reliability;

int main(int argc, char** argv) {
  const bench::Session session(argc, argv);
  banner("Table 5 - human tracking redundancy, 2 antennas",
         "Paper (1 subject): 1 F/B 80%/94%; 1 side 90%/91%; 2 F/B 100%/99.6%;\n"
         "2 sides 100%/99.2%; 4 tags 100%/100%.");
  const CalibrationProfile cal = profile();

  const HumanSingles one = measure_singles(1, false, cal);
  const HumanSingles closer = measure_singles(2, false, cal);
  const HumanSingles farther = measure_singles(2, true, cal);

  struct Row {
    const char* label;
    std::vector<scene::BodySpot> spots;
    double (*rc)(const HumanSingles&, std::size_t);
    const char* paper_one;
    const char* paper_two;
  };
  const Row rows[] = {
      {"1 tag front/back", {scene::BodySpot::Front}, rc_one_fb, "80% / 94%",
       "90% / 95%"},
      {"1 tag side", {scene::BodySpot::SideNear}, rc_one_side, "90% / 91%",
       "80% / 78%"},
      {"2 tags front/back", spots_fb(), rc_two_fb, "100% / 99.6%", "100% / 99.8%"},
      {"2 tags sides", spots_sides(), rc_two_sides, "100% / 99.2%", "95% / 97%"},
      {"4 tags F/B/sides", spots_all(), rc_four, "100% / 100%", "100% / 99.9%"},
  };

  TextTable t({"tags per subject", "1 subj R_M", "1 subj R_C", "2 subj avg R_M",
               "2 subj avg R_C", "paper 1 subj", "paper 2 subj"});
  for (const Row& row : rows) {
    HumanScenarioOptions solo;
    solo.tag_spots = row.spots;
    solo.portal.antenna_count = 2;
    const double rm_one = measure_human(solo, cal).closer;

    HumanScenarioOptions duo = solo;
    duo.subject_count = 2;
    const HumanResult rm_two = measure_human(duo, cal);

    const double rc_one_v = row.rc(one, 2);
    const double rc_two_avg = 0.5 * (row.rc(closer, 2) + row.rc(farther, 2));
    t.add_row({row.label, percent(rm_one), percent(rc_one_v),
               percent(0.5 * (rm_two.closer + rm_two.farther)), percent(rc_two_avg),
               row.paper_one, row.paper_two});
  }
  bench::print_table(t);
  return 0;
}
