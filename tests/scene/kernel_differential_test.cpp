// Differential oracle for the batch path kernel: BatchPathEvaluator must be
// BIT-identical to the scalar PathEvaluator — not "close", identical. The
// batch kernel feeds PortalSimulator, whose event logs feed the Monte Carlo
// sweeps and the fleet store, all of which are checked by byte-exact golden
// digests; one ULP of drift in one term on one tag would cascade into a
// different event stream and a different fleet digest.
//
// The suite sweeps hundreds of seeded randomized scenes — moving and static
// entities, empty tag sets, single-pose evaluations, deliberate blockers
// between antenna and tags, coupling neighbourhoods on and off, caches on
// and off — and for every (antenna, tag, time) triple compares all nine
// PathTerms fields with EXPECT_EQ (exact) plus an FNV-1a digest over the
// raw IEEE-754 bit patterns of both streams. It must pass identically in
// default and -DRFIDSIM_OBS=OFF builds (the kernel tallies cache stats
// locally either way).
//
// Reproducibility: every scene derives from a fixed default seed via
// Rng::fork, so failures replay exactly. The weekly CI stress job varies
// the base seed with `--seed N` (parsed by the custom main below) to walk
// fresh regions of scene space without losing replayability — rerun with
// the printed seed to reproduce.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "scene/batch_evaluator.hpp"
#include "scene/entity.hpp"
#include "scene/path_evaluator.hpp"
#include "scene/scene.hpp"
#include "scene/trajectory.hpp"

namespace rfidsim::scene {
namespace {

/// Base seed for scene generation; overridable with --seed N (see main).
std::uint64_t g_seed = 20070625ULL;

// FNV-1a over raw double bit patterns — the same fold the sweep tables and
// fleet store use for their golden digests.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void fnv_terms(std::uint64_t& h, const rf::PathTerms& t) {
  fnv_double(h, t.distance_m);
  fnv_double(h, t.reader_gain.value());
  fnv_double(h, t.tag_gain.value());
  fnv_double(h, t.polarization_loss.value());
  fnv_double(h, t.material_loss.value());
  fnv_double(h, t.coupling_loss.value());
  fnv_double(h, t.blockage_loss.value());
  fnv_double(h, t.reflection_gain.value());
  fnv_double(h, t.multipath_gain.value());
}

/// Exact comparison of every PathTerms field, with enough context in the
/// failure message to replay the offending triple by hand.
void expect_identical(const rf::PathTerms& batch, const rf::PathTerms& scalar,
                      std::uint64_t scene_seed, std::size_t antenna,
                      const TagAddress& tag, double t_s) {
  const auto where = ::testing::Message()
                     << "scene seed " << scene_seed << " antenna " << antenna
                     << " entity " << tag.entity << " tag " << tag.tag << " t=" << t_s;
  EXPECT_EQ(batch.distance_m, scalar.distance_m) << where;
  EXPECT_EQ(batch.reader_gain, scalar.reader_gain) << where;
  EXPECT_EQ(batch.tag_gain, scalar.tag_gain) << where;
  EXPECT_EQ(batch.polarization_loss, scalar.polarization_loss) << where;
  EXPECT_EQ(batch.material_loss, scalar.material_loss) << where;
  EXPECT_EQ(batch.coupling_loss, scalar.coupling_loss) << where;
  EXPECT_EQ(batch.blockage_loss, scalar.blockage_loss) << where;
  EXPECT_EQ(batch.reflection_gain, scalar.reflection_gain) << where;
  EXPECT_EQ(batch.multipath_gain, scalar.multipath_gain) << where;
}

// --- Randomized scene generation --------------------------------------

Vec3 random_unit(Rng& rng) {
  for (;;) {
    const Vec3 v{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    if (v.norm() > 1e-6) return v.normalized();
  }
}

Pose random_pose(Rng& rng, double spread_m) {
  Pose pose;
  pose.position = Vec3{rng.uniform(-spread_m, spread_m), rng.uniform(-spread_m, spread_m),
                       rng.uniform(0.2, 2.0)};
  pose.frame.forward = random_unit(rng);
  pose.frame.up =
      std::abs(pose.frame.forward.z) > 0.9 ? Vec3{1.0, 0.0, 0.0} : Vec3{0.0, 0.0, 1.0};
  pose.frame.orthonormalize();
  return pose;
}

std::unique_ptr<Trajectory> random_trajectory(Rng& rng, bool force_static) {
  const Pose start = random_pose(rng, 2.5);
  if (force_static) return std::make_unique<StaticTrajectory>(start);
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return std::make_unique<StaticTrajectory>(start);
    case 1:
      // Zero-velocity linear: moving type, is_static() == true — exercises
      // the static classification through a different trajectory class.
      return std::make_unique<LinearTrajectory>(start, Vec3{});
    case 2:
      return std::make_unique<LinearTrajectory>(
          start, Vec3{rng.uniform(-1.5, 1.5), rng.uniform(-0.5, 0.5), 0.0});
    default:
      return std::make_unique<WalkingTrajectory>(
          start, Vec3{rng.uniform(0.4, 1.4), 0.0, 0.0});
  }
}

rf::Material random_material(Rng& rng) {
  static constexpr rf::Material kMaterials[] = {
      rf::Material::Air,   rf::Material::Cardboard, rf::Material::Foam,
      rf::Material::Plastic, rf::Material::Metal,   rf::Material::Liquid,
      rf::Material::HumanBody};
  return kMaterials[rng.uniform_int(0, 6)];
}

rf::TagDesign random_design(Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return rf::TagDesign::single_dipole();
    case 1: return rf::TagDesign::dual_dipole();
    default: return rf::TagDesign::active_beacon();
  }
}

TagMount random_mount(Rng& rng, double spread_m) {
  TagMount mount;
  mount.local_position = Vec3{rng.uniform(-spread_m, spread_m),
                              rng.uniform(-spread_m, spread_m),
                              rng.uniform(-spread_m, spread_m)};
  mount.local_dipole_axis = random_unit(rng);
  mount.local_patch_normal = random_unit(rng);
  mount.backing_material = random_material(rng);
  mount.backing_gap_m = rng.uniform(0.0, 0.05);
  mount.design = random_design(rng);
  return mount;
}

struct SceneOptions {
  bool force_static = false;   ///< All trajectories static.
  bool with_blocker = false;   ///< Guarantee a large metal body near the origin.
  int max_tags_per_entity = 3; ///< 0 makes every tag set empty.
  /// Half-width of the cube tag mounts scatter over. Shrink below the
  /// coupling neighbourhood radius to guarantee interacting tag pairs.
  double tag_spread_m = 0.3;
};

/// Builds one randomized scene: 0-5 entities with random bodies, materials,
/// trajectories and tag sets, 1-2 antennas aimed roughly at the origin.
Scene random_scene(Rng& rng, const SceneOptions& opts) {
  Scene scene;
  std::uint64_t next_epc = 1;
  const std::int64_t entity_count = rng.uniform_int(opts.with_blocker ? 1 : 0, 5);
  for (std::int64_t e = 0; e < entity_count; ++e) {
    Body body;
    switch (rng.uniform_int(0, 2)) {
      case 0: body = std::monostate{}; break;
      case 1:
        body = BoxBody{Vec3{rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8),
                            rng.uniform(0.2, 0.8)}};
        break;
      default:
        body = CylinderBody{rng.uniform(0.15, 0.3), rng.uniform(1.2, 1.9)};
        break;
    }
    Entity entity("e" + std::to_string(e), body, random_material(rng),
                  random_trajectory(rng, opts.force_static), rng.uniform(0.4, 1.0));
    const std::int64_t tag_count = rng.uniform_int(0, opts.max_tags_per_entity);
    for (std::int64_t t = 0; t < tag_count; ++t) {
      entity.add_tag(Tag{TagId{next_epc++}, random_mount(rng, opts.tag_spread_m)});
    }
    scene.entities.push_back(std::move(entity));
  }
  if (opts.with_blocker) {
    // A tall metal slab parked between the antennas (below, near y=-2..-3)
    // and the entity cluster (around the origin) — guaranteed occlusion and
    // Fresnel-grazing work on most paths.
    Pose pose;
    pose.position = Vec3{0.0, rng.uniform(-1.2, -0.6), 1.0};
    scene.entities.emplace_back(
        "blocker", BoxBody{Vec3{1.6, 0.25, 2.0}}, rf::Material::Metal,
        std::make_unique<StaticTrajectory>(pose), 1.0);
  }
  const std::int64_t antenna_count = rng.uniform_int(1, 2);
  for (std::int64_t a = 0; a < antenna_count; ++a) {
    const Vec3 position{rng.uniform(-1.5, 1.5), rng.uniform(-3.0, -2.0),
                        rng.uniform(1.0, 2.5)};
    const Vec3 target{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), 1.0};
    scene.antennas.push_back(Scene::make_antenna(position, (target - position)));
  }
  return scene;
}

EvaluatorParams random_params(Rng& rng) {
  EvaluatorParams params;
  params.static_geometry_cache = rng.bernoulli(0.7);
  if (rng.bernoulli(0.3)) params.coupling_neighbourhood_m = 0.0;  // coupling off
  if (rng.bernoulli(0.2)) params.fresnel_max_db = 0.0;
  return params;
}

// --- The differential driver -------------------------------------------

/// Evaluates every (time, antenna, tag) triple of `scene` through both
/// evaluators with matched call histories and demands bit-identity of every
/// term, the two output digests, the reported tag positions, and the cache
/// tallies. Returns the common digest (folded into suite-level digests so a
/// silent all-default degenerate generator would still be caught).
std::uint64_t run_differential(const Scene& scene, const EvaluatorParams& params,
                               const std::vector<double>& times,
                               std::uint64_t scene_seed) {
  const PathEvaluator scalar(scene, params);
  BatchPathEvaluator batch(scene, params);
  const std::vector<TagAddress> tags = scene.all_tags();
  EXPECT_EQ(batch.tag_count(), tags.size());
  EXPECT_EQ(batch.scene_static(), scalar.scene_static());

  std::uint64_t batch_digest = kFnvOffset;
  std::uint64_t scalar_digest = kFnvOffset;
  std::vector<rf::PathTerms> out;
  for (const double t_s : times) {
    for (std::size_t a = 0; a < scene.antennas.size(); ++a) {
      batch.evaluate_all(a, t_s, out);
      EXPECT_EQ(out.size(), tags.size());
      if (out.size() != tags.size()) return 0;  // can't index further
      for (std::size_t i = 0; i < tags.size(); ++i) {
        const rf::PathTerms reference = scalar.evaluate(a, tags[i], t_s);
        expect_identical(out[i], reference, scene_seed, a, tags[i], t_s);
        fnv_terms(batch_digest, out[i]);
        fnv_terms(scalar_digest, reference);
        const Vec3 expected_pos =
            scene.entities[tags[i].entity].tag_position(tags[i].tag, t_s);
        EXPECT_EQ(batch.tag_positions()[i].x, expected_pos.x);
        EXPECT_EQ(batch.tag_positions()[i].y, expected_pos.y);
        EXPECT_EQ(batch.tag_positions()[i].z, expected_pos.z);
      }
    }
  }
  EXPECT_EQ(batch_digest, scalar_digest) << "scene seed " << scene_seed;

  // Same caching decisions => same tallies: the batch kernel must neither
  // over-cache (risking staleness) nor under-cache (losing the speedup).
  const PathCacheStats& b = batch.cache_stats();
  const PathCacheStats& s = scalar.cache_stats();
  EXPECT_EQ(b.full_hits, s.full_hits) << "scene seed " << scene_seed;
  EXPECT_EQ(b.full_misses, s.full_misses) << "scene seed " << scene_seed;
  EXPECT_EQ(b.pair_hits, s.pair_hits) << "scene seed " << scene_seed;
  EXPECT_EQ(b.pair_misses, s.pair_misses) << "scene seed " << scene_seed;
  EXPECT_EQ(b.bypassed, s.bypassed) << "scene seed " << scene_seed;
  return batch_digest;
}

std::vector<double> sample_times(Rng& rng, std::size_t count) {
  std::vector<double> times;
  for (std::size_t i = 0; i < count; ++i) times.push_back(rng.uniform(0.0, 4.0));
  return times;
}

TEST(KernelDifferentialTest, RandomizedMixedScenesMatchScalar) {
  const Rng base(g_seed);
  for (std::uint64_t i = 0; i < 80; ++i) {
    Rng rng = base.fork(i);
    const Scene scene = random_scene(rng, SceneOptions{});
    const EvaluatorParams params = random_params(rng);
    run_differential(scene, params, sample_times(rng, 4), rng.seed());
    if (HasFatalFailure() || HasNonfatalFailure()) break;  // first scene is enough
  }
}

TEST(KernelDifferentialTest, StaticScenesRepeatedTimesMatchScalar) {
  // All-static scenes with the cache on, each time sampled twice, so the
  // full-result hit path (and full_pass_done_ distance-stage skip) runs.
  const Rng base(g_seed);
  for (std::uint64_t i = 0; i < 40; ++i) {
    Rng rng = base.fork(0x5747'4943ULL + i);  // distinct fork lane: "STIC"
    const Scene scene = random_scene(rng, SceneOptions{.force_static = true});
    EvaluatorParams params = random_params(rng);
    params.static_geometry_cache = true;
    std::vector<double> times = sample_times(rng, 2);
    times.insert(times.end(), times.begin(), times.end());
    run_differential(scene, params, times, rng.seed());
    if (HasFatalFailure() || HasNonfatalFailure()) break;
  }
}

TEST(KernelDifferentialTest, BlockerScenesMatchScalar) {
  const Rng base(g_seed);
  for (std::uint64_t i = 0; i < 40; ++i) {
    Rng rng = base.fork(0x424c'4f43ULL + i);  // "BLOC"
    const Scene scene = random_scene(rng, SceneOptions{.with_blocker = true});
    run_differential(scene, random_params(rng), sample_times(rng, 3), rng.seed());
    if (HasFatalFailure() || HasNonfatalFailure()) break;
  }
}

TEST(KernelDifferentialTest, SinglePoseMatchesScalar) {
  // One time step, one shot: no cache warm-up, no geometry reuse across
  // steps — the pure cold path.
  const Rng base(g_seed);
  for (std::uint64_t i = 0; i < 30; ++i) {
    Rng rng = base.fork(0x504f'5345ULL + i);  // "POSE"
    const Scene scene = random_scene(rng, SceneOptions{});
    run_differential(scene, random_params(rng), {rng.uniform(0.0, 4.0)}, rng.seed());
    if (HasFatalFailure() || HasNonfatalFailure()) break;
  }
}

TEST(KernelDifferentialTest, EmptyTagSetsMatchScalar) {
  // Entities with zero tags (and some scenes with zero entities): the
  // kernel must handle tag_count() == 0 without touching its arrays.
  const Rng base(g_seed);
  for (std::uint64_t i = 0; i < 15; ++i) {
    Rng rng = base.fork(0x454d'5054ULL + i);  // "EMPT"
    const Scene scene = random_scene(rng, SceneOptions{.max_tags_per_entity = 0});
    const std::vector<double> times = sample_times(rng, 2);
    run_differential(scene, random_params(rng), times, rng.seed());

    std::vector<rf::PathTerms> out{rf::PathTerms{}};  // non-empty on purpose
    BatchPathEvaluator batch(scene, EvaluatorParams{});
    batch.evaluate_all(0, times[0], out);
    EXPECT_TRUE(out.empty());
    if (HasFatalFailure() || HasNonfatalFailure()) break;
  }
}

TEST(KernelDifferentialTest, CouplingOnOffMatchScalar) {
  // The same geometry evaluated under coupling on and off — both runs must
  // match their scalar twins, and (sanity on the generator, not the kernel)
  // at least one scene must produce a coupling-dependent difference, or the
  // neighbourhood loop was never exercised.
  const Rng base(g_seed);
  bool coupling_mattered = false;
  for (std::uint64_t i = 0; i < 15; ++i) {
    Rng rng = base.fork(0x434f'5550ULL + i);  // "COUP"
    SceneOptions opts;
    opts.max_tags_per_entity = 6;   // crowd the tags...
    opts.tag_spread_m = 0.05;       // ...inside the 0.10 m neighbourhood
    const Scene scene = random_scene(rng, opts);
    const std::vector<double> times = sample_times(rng, 2);

    EvaluatorParams coupled;
    EvaluatorParams uncoupled;
    uncoupled.coupling_neighbourhood_m = 0.0;
    const std::uint64_t with = run_differential(scene, coupled, times, rng.seed());
    const std::uint64_t without = run_differential(scene, uncoupled, times, rng.seed());
    if (with != without) coupling_mattered = true;
    if (HasFatalFailure() || HasNonfatalFailure()) break;
  }
  EXPECT_TRUE(coupling_mattered)
      << "no generated scene had interacting tag neighbourhoods; the coupling "
         "path of the kernel was not exercised";
}

}  // namespace
}  // namespace rfidsim::scene

// Custom main so CI's weekly stress job can re-aim the whole suite at a
// fresh seed (--seed N, also N via --seed=N) while `ctest` runs keep the
// fixed default. Defining main here simply wins over GTest::gtest_main's —
// the library's main object is only pulled in when the symbol is undefined.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      rfidsim::scene::g_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg.rfind("--seed=", 0) == 0) {
      rfidsim::scene::g_seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    }
  }
  printf("kernel_differential_test: base seed %llu\n",
         static_cast<unsigned long long>(rfidsim::scene::g_seed));
  return RUN_ALL_TESTS();
}
