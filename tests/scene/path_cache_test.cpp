// Differential tests for the static-geometry cache (EvaluatorParams::
// static_geometry_cache): a cached evaluator must return bit-identical
// rf::PathTerms to an uncached one on every (antenna, tag, time) triple.
// "Close enough" is not good enough here — the cache feeds the Monte Carlo
// sweeps whose outputs are compared byte-for-byte against the serial seed
// path, so a single ULP of drift would surface as a reliability-table diff.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "reliability/scenarios.hpp"
#include "scene/path_evaluator.hpp"

namespace rfidsim::scene {
namespace {

using reliability::CalibrationProfile;
using reliability::HumanScenarioOptions;
using reliability::ObjectScenarioOptions;
using reliability::Scenario;

const CalibrationProfile kCal = CalibrationProfile::paper2006();

/// Exact (bitwise, via operator==) comparison of every PathTerms field.
void expect_identical(const rf::PathTerms& a, const rf::PathTerms& b,
                      std::size_t antenna, const TagAddress& tag, double t_s) {
  const auto where = ::testing::Message()
                     << "antenna " << antenna << " entity " << tag.entity << " tag "
                     << tag.tag << " t=" << t_s;
  EXPECT_EQ(a.distance_m, b.distance_m) << where;
  EXPECT_EQ(a.reader_gain, b.reader_gain) << where;
  EXPECT_EQ(a.tag_gain, b.tag_gain) << where;
  EXPECT_EQ(a.polarization_loss, b.polarization_loss) << where;
  EXPECT_EQ(a.material_loss, b.material_loss) << where;
  EXPECT_EQ(a.coupling_loss, b.coupling_loss) << where;
  EXPECT_EQ(a.blockage_loss, b.blockage_loss) << where;
  EXPECT_EQ(a.reflection_gain, b.reflection_gain) << where;
  EXPECT_EQ(a.multipath_gain, b.multipath_gain) << where;
}

/// Sweeps every (antenna, tag) pair over `steps` time samples of the portal
/// window with a cached and an uncached evaluator and demands bit-identity.
/// Each pair is evaluated twice per time step so the second call exercises
/// the cache-hit path, not just the fill path.
void run_differential(const Scenario& sc, std::size_t steps) {
  EvaluatorParams cached_params = sc.portal.evaluator;
  cached_params.static_geometry_cache = true;
  EvaluatorParams uncached_params = sc.portal.evaluator;
  uncached_params.static_geometry_cache = false;
  const PathEvaluator cached(sc.scene, cached_params);
  const PathEvaluator uncached(sc.scene, uncached_params);

  const auto tags = sc.scene.all_tags();
  const double t0 = sc.portal.start_time_s;
  const double dt =
      steps > 1 ? (sc.portal.end_time_s - t0) / static_cast<double>(steps - 1) : 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double t_s = t0 + dt * static_cast<double>(s);
    for (std::size_t a = 0; a < sc.scene.antennas.size(); ++a) {
      for (const TagAddress& tag : tags) {
        expect_identical(uncached.evaluate(a, tag, t_s), cached.evaluate(a, tag, t_s),
                         a, tag, t_s);
        expect_identical(uncached.evaluate(a, tag, t_s), cached.evaluate(a, tag, t_s),
                         a, tag, t_s);
      }
    }
  }
}

TEST(PathCacheDifferentialTest, ReadRangeGridFullyStatic) {
  // Fig. 2 rig: everything static, so the cache stores whole PathTerms.
  for (const double d : {2.0, 5.0, 9.0}) {
    run_differential(reliability::make_read_range_scenario(d, kCal), 3);
  }
}

TEST(PathCacheDifferentialTest, ObjectCartMoving) {
  // Table 1 rig: the cart moves, so the cache must bypass itself entirely.
  ObjectScenarioOptions opt;
  opt.tag_faces = {BoxFace::Front, BoxFace::Top};
  opt.portal.antenna_count = 2;
  run_differential(reliability::make_object_tracking_scenario(opt, kCal), 7);
}

TEST(PathCacheDifferentialTest, HumanSubjectsWalking) {
  // Table 5 rig: two walking subjects, badges on both, 2 antennas.
  HumanScenarioOptions opt;
  opt.subject_count = 2;
  opt.tag_spots = {BodySpot::Front, BodySpot::Back};
  opt.portal.antenna_count = 2;
  run_differential(reliability::make_human_tracking_scenario(opt, kCal), 7);
}

TEST(PathCacheDifferentialTest, IntertagCouplingGrid) {
  run_differential(reliability::make_intertag_scenario(
                       0.01, reliability::kFigure3Orientations[1], kCal),
                   5);
}

TEST(PathCacheDifferentialTest, MixedStaticAndMovingEntities) {
  // The pair-term tier: a static shelf watched while a person walks past.
  // The shelf tags' pair-local terms are cached; occlusion/Fresnel/
  // proximity from the mover must still be recomputed every step.
  Scenario sc = reliability::make_read_range_scenario(4.0, kCal);
  HumanScenarioOptions walker;
  Scenario human = reliability::make_human_tracking_scenario(walker, kCal);
  for (Entity& e : human.scene.entities) {
    sc.scene.entities.push_back(std::move(e));
  }
  sc.portal.end_time_s = human.portal.end_time_s;
  run_differential(sc, 9);
}

TEST(PathCacheDifferentialTest, SceneStaticReflectsTrajectories) {
  const Scenario static_sc = reliability::make_read_range_scenario(3.0, kCal);
  EXPECT_TRUE(PathEvaluator(static_sc.scene, static_sc.portal.evaluator).scene_static());

  ObjectScenarioOptions opt;
  const Scenario moving_sc = reliability::make_object_tracking_scenario(opt, kCal);
  EXPECT_FALSE(
      PathEvaluator(moving_sc.scene, moving_sc.portal.evaluator).scene_static());
}

TEST(PathCacheDifferentialTest, RepeatedEvaluationIsIdempotent) {
  // A cached evaluator must return the same bits on call 1, 2 and 1000 —
  // the Monte Carlo loop hits each pair thousands of times per sweep.
  const Scenario sc = reliability::make_read_range_scenario(4.0, kCal);
  const PathEvaluator ev(sc.scene, sc.portal.evaluator);
  const auto tags = sc.scene.all_tags();
  ASSERT_FALSE(tags.empty());
  const rf::PathTerms first = ev.evaluate(0, tags[0], sc.portal.start_time_s);
  for (int i = 0; i < 1000; ++i) {
    const rf::PathTerms again = ev.evaluate(0, tags[0], sc.portal.start_time_s);
    ASSERT_EQ(first.distance_m, again.distance_m);
    ASSERT_EQ(first.material_loss, again.material_loss);
    ASSERT_EQ(first.multipath_gain, again.multipath_gain);
  }
}

}  // namespace
}  // namespace rfidsim::scene
