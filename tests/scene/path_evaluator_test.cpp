#include "scene/path_evaluator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace rfidsim::scene {
namespace {

Pose lane_pose(Vec3 position) {
  Pose p;
  p.position = position;
  p.frame.forward = {1.0, 0.0, 0.0};
  p.frame.up = {0.0, 0.0, 1.0};
  return p;
}

/// One bare tag at the origin facing +y, antenna on the +y side.
Scene simple_scene(double antenna_distance = 2.0) {
  Scene s;
  Entity bare("tag holder", std::monostate{}, rf::Material::Air,
              std::make_unique<StaticTrajectory>(lane_pose({0.0, 0.0, 1.0})));
  TagMount m;
  m.local_patch_normal = {0.0, 1.0, 0.0};
  m.local_dipole_axis = {1.0, 0.0, 0.0};
  m.backing_material = rf::Material::Air;
  bare.add_tag(Tag{TagId{1}, m});
  s.entities.push_back(std::move(bare));
  s.antennas.push_back(
      Scene::make_antenna({0.0, antenna_distance, 1.0}, {0.0, -1.0, 0.0}));
  return s;
}

TEST(PathEvaluatorTest, EmptySceneThrows) {
  const Scene empty;
  EXPECT_THROW(PathEvaluator(empty, {}), ConfigError);
}

TEST(PathEvaluatorTest, OutOfRangeIndicesThrow) {
  const Scene s = simple_scene();
  const PathEvaluator ev(s, {});
  EXPECT_THROW(ev.evaluate(1, {0, 0}, 0.0), ConfigError);
  EXPECT_THROW(ev.evaluate(0, {1, 0}, 0.0), ConfigError);
  EXPECT_THROW(ev.evaluate(0, {0, 1}, 0.0), ConfigError);
}

TEST(PathEvaluatorTest, DistanceAndBoresightGains) {
  const Scene s = simple_scene(2.0);
  const PathEvaluator ev(s, {});
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  EXPECT_NEAR(t.distance_m, 2.0, 1e-12);
  // Tag on boresight: peak reader gain; broadside dipole: peak tag gain.
  EXPECT_NEAR(t.reader_gain.value(), 6.0, 1e-9);
  EXPECT_NEAR(t.tag_gain.value(), 2.15, 1e-9);
  // Circular antenna on boresight: exactly 3 dB.
  EXPECT_NEAR(t.polarization_loss.value(), 3.0, 1e-9);
}

TEST(PathEvaluatorTest, AxialTagHitsDipoleNullOrScatterFloor) {
  Scene s = simple_scene(2.0);
  // Rotate the tag so its dipole points at the antenna.
  Entity& e = s.entities[0];
  Entity rotated("tag holder", std::monostate{}, rf::Material::Air,
                 std::make_unique<StaticTrajectory>(lane_pose({0.0, 0.0, 1.0})));
  TagMount m = e.tags()[0].mount;
  m.local_dipole_axis = {0.0, 1.0, 0.0};
  m.local_patch_normal = {1.0, 0.0, 0.0};
  rotated.add_tag(Tag{e.tags()[0].id, m});
  s.entities[0] = rotated;

  const PathEvaluator ev(s, {});
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  // Either the floored dipole null (direct) or the scatter path's average
  // gain; both are far below broadside.
  EXPECT_LT(t.tag_gain.value() - t.material_loss.value(), -8.0);
}

TEST(PathEvaluatorTest, OcclusionByInterposedBody) {
  Scene s = simple_scene(3.0);
  // Park a metal box between tag and antenna.
  Entity box("blocker", BoxBody{{0.4, 0.4, 1.0}}, rf::Material::Metal,
             std::make_unique<StaticTrajectory>(lane_pose({0.0, 1.5, 1.0})));
  s.entities.push_back(std::move(box));

  EvaluatorParams params;
  params.scatter_excess_db = 200.0;  // Disable the scatter bypass.
  const PathEvaluator ev(s, params);
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  EXPECT_GE(t.material_loss.value(), 60.0);
}

TEST(PathEvaluatorTest, ScatterPathBoundsOcclusionLoss) {
  Scene s = simple_scene(3.0);
  Entity box("blocker", BoxBody{{0.4, 0.4, 1.0}}, rf::Material::Metal,
             std::make_unique<StaticTrajectory>(lane_pose({0.0, 1.5, 1.0})));
  s.entities.push_back(std::move(box));

  EvaluatorParams params;  // Default scatter path enabled.
  const PathEvaluator ev(s, params);
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  // The diffuse path caps the effective loss near scatter_excess_db.
  EXPECT_LE(t.material_loss.value(), params.scatter_excess_db + 3.0);
}

TEST(PathEvaluatorTest, SelfOcclusionExemptsMountingFace) {
  Scene s;
  // Tag on the near face of a metal-content box: the ray leaves through
  // the face it is mounted on and must NOT be charged for its own box.
  Entity box("box", BoxBody{{0.4, 0.4, 0.3}}, rf::Material::Metal,
             std::make_unique<StaticTrajectory>(lane_pose({0.0, 0.0, 1.0})));
  TagMount m = mount_on_box_face(BoxFace::SideNear, {0.4, 0.4, 0.3},
                                 rf::Material::Metal, 0.05);
  box.add_tag(Tag{TagId{1}, m});
  s.entities.push_back(std::move(box));
  s.antennas.push_back(Scene::make_antenna({0.0, 2.0, 1.0}, {0.0, -1.0, 0.0}));

  const PathEvaluator ev(s, {});
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  EXPECT_LT(t.material_loss.value(), 10.0);  // Image factor only, no 60 dB.
}

TEST(PathEvaluatorTest, CouplingCountsNearestNeighboursOnly) {
  Scene s = simple_scene(2.0);
  Entity& holder = s.entities[0];
  // Add four parallel neighbours at 10 mm pitch along x.
  for (int i = 1; i <= 4; ++i) {
    TagMount m = holder.tags()[0].mount;
    m.local_position = {0.01 * i, 0.0, 0.0};
    holder.add_tag(Tag{TagId{static_cast<std::uint64_t>(i + 1)}, m});
  }
  const PathEvaluator ev(s, {});
  const rf::PathTerms end_tag = ev.evaluate(0, {0, 0}, 0.0);
  const rf::PathTerms mid_tag = ev.evaluate(0, {0, 2}, 0.0);
  EXPECT_GT(end_tag.coupling_loss.value(), 0.0);
  // The middle tag has close neighbours on both sides: more coupling.
  EXPECT_GT(mid_tag.coupling_loss.value(), end_tag.coupling_loss.value());
  // But never more than the configured cap.
  const EvaluatorParams params;
  EXPECT_LE(mid_tag.coupling_loss.value(), params.coupling.contact_loss_db * 1.5);
}

TEST(PathEvaluatorTest, ReflectorBehindTagGivesBonus) {
  Scene s = simple_scene(2.0);
  // Reflective body behind the tag (opposite side from the antenna).
  Entity mirror("mirror", CylinderBody{0.22, 1.75}, rf::Material::HumanBody,
                std::make_unique<StaticTrajectory>(lane_pose({0.0, -0.6, 0.875})));
  s.entities.push_back(std::move(mirror));
  const PathEvaluator ev(s, {});
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  EXPECT_GT(t.reflection_gain.value(), 0.0);
}

TEST(PathEvaluatorTest, ReflectorTowardAntennaGivesNoBonus) {
  Scene s = simple_scene(4.0);
  // Reflective body on the antenna side but off to the side enough not to
  // intersect: still no bonus because it is in the forward cone.
  Entity mirror("mirror", CylinderBody{0.1, 1.75}, rf::Material::HumanBody,
                std::make_unique<StaticTrajectory>(lane_pose({0.5, 1.0, 0.875})));
  s.entities.push_back(std::move(mirror));
  const PathEvaluator ev(s, {});
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  EXPECT_EQ(t.reflection_gain.value(), 0.0);
}

TEST(PathEvaluatorTest, ProximityLossFromAdjacentBody) {
  Scene s = simple_scene(2.0);
  Entity person("bystander", CylinderBody{0.22, 1.75}, rf::Material::HumanBody,
                std::make_unique<StaticTrajectory>(lane_pose({0.6, 0.0, 0.875})));
  s.entities.push_back(std::move(person));
  const PathEvaluator ev(s, {});
  const rf::PathTerms t = ev.evaluate(0, {0, 0}, 0.0);
  EXPECT_GT(t.blockage_loss.value(), 0.0);
  const EvaluatorParams params;
  EXPECT_LE(t.blockage_loss.value(), params.proximity_loss_db);
}

TEST(PathEvaluatorTest, NoProximityLossFromMetalBoxes) {
  Scene s = simple_scene(2.0);
  Entity box("metal box", BoxBody{{0.4, 0.4, 0.3}}, rf::Material::Metal,
             std::make_unique<StaticTrajectory>(lane_pose({0.5, 0.0, 1.0})));
  s.entities.push_back(std::move(box));
  const PathEvaluator ev(s, {});
  EXPECT_EQ(ev.evaluate(0, {0, 0}, 0.0).blockage_loss.value(), 0.0);
}

TEST(PathEvaluatorTest, FresnelGrazingAddsLoss) {
  Scene s = simple_scene(4.0);
  // A body near (but not crossing) the mid-path.
  Entity person("grazer", CylinderBody{0.22, 1.75}, rf::Material::HumanBody,
                std::make_unique<StaticTrajectory>(lane_pose({0.35, 2.0, 0.875})));
  s.entities.push_back(std::move(person));

  EvaluatorParams with;
  EvaluatorParams without;
  without.fresnel_max_db = 0.0;
  // Keep proximity out of the comparison.
  with.proximity_loss_db = 0.0;
  without.proximity_loss_db = 0.0;
  const double loss_with =
      PathEvaluator(s, with).evaluate(0, {0, 0}, 0.0).material_loss.value();
  const double loss_without =
      PathEvaluator(s, without).evaluate(0, {0, 0}, 0.0).material_loss.value();
  EXPECT_GT(loss_with, loss_without);
}

TEST(PathEvaluatorTest, MultipathRippleChangesWithDistance) {
  const Scene near_scene = simple_scene(1.3);
  const Scene far_scene = simple_scene(5.0);
  const rf::PathTerms a = PathEvaluator(near_scene, {}).evaluate(0, {0, 0}, 0.0);
  const rf::PathTerms b = PathEvaluator(far_scene, {}).evaluate(0, {0, 0}, 0.0);
  EXPECT_NE(a.multipath_gain.value(), b.multipath_gain.value());
}

}  // namespace
}  // namespace rfidsim::scene
