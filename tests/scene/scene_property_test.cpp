// Metamorphic tests for the PathEvaluator: transformations of the scene
// with a provable effect on the physics. Unlike the spot checks in
// path_evaluator_test.cpp, these hold over geometry families — the level
// at which a refactor of the evaluator (like the static-geometry cache
// split) could silently bend a term.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <variant>

#include "rf/link_budget.hpp"
#include "scene/path_evaluator.hpp"

namespace rfidsim::scene {
namespace {

Pose pose_at(Vec3 position) {
  Pose p;
  p.position = position;
  p.frame.forward = {1.0, 0.0, 0.0};
  p.frame.up = {0.0, 0.0, 1.0};
  return p;
}

/// One tagged carton at `tag_pos` facing +y, antenna across the lane.
Scene carton_scene(Vec3 tag_pos, Vec3 antenna_pos) {
  Scene s;
  Entity carton("carton", BoxBody{{0.4, 0.4, 0.4}},
                rf::Material::Cardboard,
                std::make_unique<StaticTrajectory>(pose_at(tag_pos)));
  TagMount m;
  m.local_position = {0.0, 0.2, 0.0};
  m.local_patch_normal = {0.0, 1.0, 0.0};
  m.local_dipole_axis = {1.0, 0.0, 0.0};
  carton.add_tag(Tag{TagId{1}, m});
  s.entities.push_back(std::move(carton));
  s.antennas.push_back(
      Scene::make_antenna(antenna_pos, (tag_pos - antenna_pos).normalized()));
  return s;
}

/// Mirrors a vector across the y = 0 plane.
Vec3 mirror_y(Vec3 v) { return {v.x, -v.y, v.z}; }

TEST(ScenePropertyTest, MirrorSymmetryPreservesPathTerms) {
  // Reflecting the whole rig across y = 0 (tag on the -y side, antenna
  // facing +y -> -y) is a rigid symmetry of every term in the model: the
  // mirrored scene must produce the same PathTerms. The physics has no
  // chirality; only the geometry does.
  for (const double lane : {1.0, 2.5, 4.0}) {
    const Vec3 tag_pos{0.3, 0.0, 1.0};
    const Vec3 ant_pos{0.0, lane, 1.1};
    const Scene scene = carton_scene(tag_pos, ant_pos);

    Scene mirrored;
    Entity carton("carton", BoxBody{{0.4, 0.4, 0.4}},
                  rf::Material::Cardboard,
                  std::make_unique<StaticTrajectory>(pose_at(mirror_y(tag_pos))));
    TagMount m;
    m.local_position = {0.0, -0.2, 0.0};
    m.local_patch_normal = {0.0, -1.0, 0.0};
    m.local_dipole_axis = {1.0, 0.0, 0.0};
    carton.add_tag(Tag{TagId{1}, m});
    mirrored.entities.push_back(std::move(carton));
    mirrored.antennas.push_back(Scene::make_antenna(
        mirror_y(ant_pos), (mirror_y(tag_pos) - mirror_y(ant_pos)).normalized()));

    const PathEvaluator ev(scene, {});
    const PathEvaluator ev_mirror(mirrored, {});
    const rf::PathTerms a = ev.evaluate(0, {0, 0}, 0.0);
    const rf::PathTerms b = ev_mirror.evaluate(0, {0, 0}, 0.0);
    EXPECT_DOUBLE_EQ(a.distance_m, b.distance_m) << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.reader_gain.value(), b.reader_gain.value()) << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.tag_gain.value(), b.tag_gain.value()) << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.polarization_loss.value(), b.polarization_loss.value())
        << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.material_loss.value(), b.material_loss.value())
        << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.coupling_loss.value(), b.coupling_loss.value())
        << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.blockage_loss.value(), b.blockage_loss.value())
        << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.reflection_gain.value(), b.reflection_gain.value())
        << "lane " << lane;
    EXPECT_DOUBLE_EQ(a.multipath_gain.value(), b.multipath_gain.value())
        << "lane " << lane;
  }
}

TEST(ScenePropertyTest, AddingABlockerNeverIncreasesDeliveredPower) {
  // Occlusion and Fresnel blockage are non-negative by construction:
  // interposing a body between tag and antenna can only cost power,
  // whichever of the direct/scatter paths ends up selected.
  const rf::LinkBudget budget;
  for (const double lane : {2.0, 4.0, 6.0}) {
    Scene open = carton_scene({0.0, 0.0, 1.0}, {0.0, lane, 1.0});
    const double clear_dbm =
        budget.forward(PathEvaluator(open, {}).evaluate(0, {0, 0}, 0.0))
            .received.value();

    Scene blocked = carton_scene({0.0, 0.0, 1.0}, {0.0, lane, 1.0});
    blocked.entities.emplace_back(
        "blocker", CylinderBody{.radius = 0.25, .height = 1.8},
        rf::Material::HumanBody,
        std::make_unique<StaticTrajectory>(pose_at({0.0, lane / 2.0, 1.0})));
    const double blocked_dbm =
        budget.forward(PathEvaluator(blocked, {}).evaluate(0, {0, 0}, 0.0))
            .received.value();
    EXPECT_LE(blocked_dbm, clear_dbm) << "lane " << lane;
  }
}

TEST(ScenePropertyTest, GrazingBodyCostsLessThanBlockingBody) {
  // A body near — but off — the ray eats Fresnel-zone margin; straddling
  // the ray it occludes outright. Loss must be ordered: clear <= grazing
  // <= blocking.
  const double lane = 4.0;
  auto received_with_body_at = [&](std::optional<Vec3> body) {
    Scene s = carton_scene({0.0, 0.0, 1.0}, {0.0, lane, 1.0});
    if (body) {
      s.entities.emplace_back(
          "body", CylinderBody{.radius = 0.25, .height = 1.8},
          rf::Material::HumanBody,
          std::make_unique<StaticTrajectory>(pose_at(*body)));
    }
    return rf::LinkBudget()
        .forward(PathEvaluator(s, {}).evaluate(0, {0, 0}, 0.0))
        .received.value();
  };
  const double clear = received_with_body_at(std::nullopt);
  // Offset sideways so the cylinder misses the ray but grazes the zone
  // (clearance 0.15 m < the 0.28 m Fresnel radius).
  const double grazing = received_with_body_at(Vec3{0.4, lane / 2.0, 1.0});
  const double blocking = received_with_body_at(Vec3{0.0, lane / 2.0, 1.0});
  EXPECT_LE(grazing, clear);
  EXPECT_LE(blocking, grazing);
  EXPECT_LT(blocking, clear);
}

TEST(ScenePropertyTest, CouplingIsExactlyZeroBeyondTheNeighbourhood) {
  // Neighbour tags farther than coupling_neighbourhood_m must contribute
  // an exact zero (the pruning the evaluator applies is lossless).
  EvaluatorParams params;
  auto coupling_at = [&](double spacing) {
    Scene s;
    Entity board("board", std::monostate{}, rf::Material::Air,
                 std::make_unique<StaticTrajectory>(pose_at({0.0, 0.0, 1.0})));
    for (int i = 0; i < 2; ++i) {
      TagMount m;
      m.local_position = {spacing * i, 0.0, 0.0};
      m.local_patch_normal = {0.0, 1.0, 0.0};
      m.local_dipole_axis = {0.0, 0.0, 1.0};  // Parallel pair: worst case.
      m.backing_material = rf::Material::Air;
      board.add_tag(Tag{TagId{static_cast<std::uint64_t>(i + 1)}, m});
    }
    s.entities.push_back(std::move(board));
    s.antennas.push_back(Scene::make_antenna({0.0, 2.0, 1.0}, {0.0, -1.0, 0.0}));
    return PathEvaluator(s, params).evaluate(0, {0, 0}, 0.0).coupling_loss.value();
  };
  EXPECT_GT(coupling_at(0.01), 0.0);
  EXPECT_EQ(coupling_at(params.coupling_neighbourhood_m * 1.01), 0.0);
  EXPECT_EQ(coupling_at(params.coupling_neighbourhood_m * 3.0), 0.0);
}

}  // namespace
}  // namespace rfidsim::scene
