#include "scene/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfidsim::scene {
namespace {

Pose origin_pose() {
  Pose p;
  p.position = {1.0, 2.0, 3.0};
  p.frame.forward = {1.0, 0.0, 0.0};
  p.frame.up = {0.0, 0.0, 1.0};
  return p;
}

TEST(StaticTrajectoryTest, NeverMoves) {
  const StaticTrajectory traj(origin_pose());
  EXPECT_EQ(traj.pose_at(0.0).position, (Vec3{1.0, 2.0, 3.0}));
  EXPECT_EQ(traj.pose_at(100.0).position, (Vec3{1.0, 2.0, 3.0}));
}

TEST(LinearTrajectoryTest, AdvancesAtConstantVelocity) {
  const LinearTrajectory traj(origin_pose(), {2.0, 0.0, 0.0});
  EXPECT_EQ(traj.pose_at(0.0).position, (Vec3{1.0, 2.0, 3.0}));
  EXPECT_EQ(traj.pose_at(1.5).position, (Vec3{4.0, 2.0, 3.0}));
  EXPECT_EQ(traj.pose_at(-1.0).position, (Vec3{-1.0, 2.0, 3.0}));
}

TEST(LinearTrajectoryTest, OrientationIsConstant) {
  const LinearTrajectory traj(origin_pose(), {1.0, 1.0, 0.0});
  EXPECT_EQ(traj.pose_at(7.0).frame.forward, (Vec3{1.0, 0.0, 0.0}));
  EXPECT_EQ(traj.pose_at(7.0).frame.up, (Vec3{0.0, 0.0, 1.0}));
}

TEST(WalkingTrajectoryTest, ProgressMatchesVelocityOnAverage) {
  const WalkingTrajectory traj(origin_pose(), {1.0, 0.0, 0.0});
  const Pose p = traj.pose_at(4.0);
  EXPECT_NEAR(p.position.x, 5.0, 1e-12);  // Sway is lateral only.
}

TEST(WalkingTrajectoryTest, SwayStaysWithinAmplitude) {
  Gait gait;
  gait.sway_amplitude_m = 0.05;
  gait.bob_amplitude_m = 0.03;
  const WalkingTrajectory traj(origin_pose(), {1.0, 0.0, 0.0}, gait);
  for (double t = 0.0; t < 5.0; t += 0.01) {
    const Pose p = traj.pose_at(t);
    EXPECT_LE(std::abs(p.position.y - 2.0), 0.05 + 1e-12);
    EXPECT_GE(p.position.z, 3.0 - 1e-12);  // Bob only lifts.
    EXPECT_LE(p.position.z, 3.03 + 1e-12);
  }
}

TEST(WalkingTrajectoryTest, SwayActuallySways) {
  const WalkingTrajectory traj(origin_pose(), {1.0, 0.0, 0.0});
  double min_y = 1e9;
  double max_y = -1e9;
  for (double t = 0.0; t < 2.0; t += 0.01) {
    const double y = traj.pose_at(t).position.y;
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  EXPECT_GT(max_y - min_y, 0.04);
}

TEST(TrajectoryCloneTest, CloneIsIndependentCopy) {
  const LinearTrajectory traj(origin_pose(), {1.0, 0.0, 0.0});
  const auto clone = traj.clone();
  EXPECT_EQ(clone->pose_at(2.0).position, traj.pose_at(2.0).position);
}

TEST(TrajectoryCloneTest, WalkingCloneKeepsGait) {
  Gait gait;
  gait.sway_amplitude_m = 0.1;
  const WalkingTrajectory traj(origin_pose(), {1.0, 0.0, 0.0}, gait);
  const auto clone = traj.clone();
  for (double t = 0.0; t < 2.0; t += 0.1) {
    EXPECT_EQ(clone->pose_at(t).position, traj.pose_at(t).position);
  }
}

}  // namespace
}  // namespace rfidsim::scene
