#include "scene/scene.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace rfidsim::scene {
namespace {

Entity bare_entity(const std::string& name, std::size_t tag_count,
                   std::uint64_t first_id) {
  Pose pose;
  pose.frame.forward = {1.0, 0.0, 0.0};
  pose.frame.up = {0.0, 0.0, 1.0};
  Entity e(name, std::monostate{}, rf::Material::Air,
           std::make_unique<StaticTrajectory>(pose));
  for (std::size_t i = 0; i < tag_count; ++i) {
    e.add_tag(Tag{TagId{first_id + i}, {}});
  }
  return e;
}

TEST(SceneTest, AllTagsEnumeratesInEntityOrder) {
  Scene s;
  s.entities.push_back(bare_entity("a", 2, 1));
  s.entities.push_back(bare_entity("b", 1, 10));
  const auto tags = s.all_tags();
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], (TagAddress{0, 0}));
  EXPECT_EQ(tags[1], (TagAddress{0, 1}));
  EXPECT_EQ(tags[2], (TagAddress{1, 0}));
}

TEST(SceneTest, AllTagsEmptyForEmptyScene) {
  const Scene s;
  EXPECT_TRUE(s.all_tags().empty());
}

TEST(SceneTest, MakeAntennaFacesTheRequestedDirection) {
  const AntennaSite site = Scene::make_antenna({0.0, 2.0, 1.0}, {0.0, -3.0, 0.0});
  EXPECT_NEAR(site.pose.frame.forward.y, -1.0, 1e-12);
  EXPECT_NEAR(site.pose.frame.forward.norm(), 1.0, 1e-12);
  EXPECT_NEAR(site.pose.frame.forward.dot(site.pose.frame.up), 0.0, 1e-12);
}

TEST(SceneTest, MakeAntennaHandlesVerticalBoresight) {
  // Facing straight down: the default up vector would be parallel; the
  // helper must pick another and still produce an orthonormal frame.
  const AntennaSite site = Scene::make_antenna({0.0, 0.0, 3.0}, {0.0, 0.0, -1.0});
  EXPECT_NEAR(site.pose.frame.forward.z, -1.0, 1e-12);
  EXPECT_NEAR(site.pose.frame.up.norm(), 1.0, 1e-12);
  EXPECT_NEAR(site.pose.frame.forward.dot(site.pose.frame.up), 0.0, 1e-12);
}

TEST(SceneTest, TagAddressOrdering) {
  EXPECT_LT((TagAddress{0, 1}), (TagAddress{1, 0}));
  EXPECT_LT((TagAddress{1, 0}), (TagAddress{1, 1}));
  EXPECT_EQ((TagAddress{2, 3}), (TagAddress{2, 3}));
}

}  // namespace
}  // namespace rfidsim::scene
