#include "scene/entity.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace rfidsim::scene {
namespace {

Pose lane_pose(Vec3 position) {
  Pose p;
  p.position = position;
  p.frame.forward = {1.0, 0.0, 0.0};
  p.frame.up = {0.0, 0.0, 1.0};
  return p;
}

Entity make_box_entity(Vec3 position = {0.0, 0.0, 0.0}) {
  return Entity("box", BoxBody{{0.4, 0.4, 0.3}}, rf::Material::Metal,
                std::make_unique<StaticTrajectory>(lane_pose(position)),
                /*content_fill=*/1.0);
}

TEST(EntityTest, NullTrajectoryThrows) {
  EXPECT_THROW(Entity("x", std::monostate{}, rf::Material::Air, nullptr), ConfigError);
}

TEST(EntityTest, InvalidContentFillThrows) {
  EXPECT_THROW(Entity("x", BoxBody{}, rf::Material::Air,
                      std::make_unique<StaticTrajectory>(Pose{}), 1.5),
               ConfigError);
  EXPECT_THROW(Entity("x", BoxBody{}, rf::Material::Air,
                      std::make_unique<StaticTrajectory>(Pose{}), -0.1),
               ConfigError);
}

TEST(EntityTest, AddTagReturnsSequentialIndices) {
  Entity e = make_box_entity();
  EXPECT_EQ(e.add_tag(Tag{TagId{1}, {}}), 0u);
  EXPECT_EQ(e.add_tag(Tag{TagId{2}, {}}), 1u);
  EXPECT_EQ(e.tags().size(), 2u);
}

TEST(EntityTest, TagWorldPositionFollowsEntity) {
  Entity e("box", BoxBody{{0.4, 0.4, 0.3}}, rf::Material::Metal,
           std::make_unique<LinearTrajectory>(lane_pose({0.0, 0.0, 0.0}),
                                              Vec3{1.0, 0.0, 0.0}));
  TagMount m;
  m.local_position = {0.2, 0.1, 0.15};
  e.add_tag(Tag{TagId{1}, m});
  const Vec3 p0 = e.tag_position(0, 0.0);
  EXPECT_NEAR(p0.x, 0.2, 1e-12);
  EXPECT_NEAR(p0.y, 0.1, 1e-12);
  EXPECT_NEAR(p0.z, 0.15, 1e-12);
  const Vec3 p2 = e.tag_position(0, 2.0);
  EXPECT_NEAR(p2.x, 2.2, 1e-12);
}

TEST(EntityTest, LocalAxesMapToWorld) {
  Entity e = make_box_entity();
  TagMount m;
  m.local_dipole_axis = {0.0, 1.0, 0.0};
  m.local_patch_normal = {0.0, 0.0, 1.0};
  e.add_tag(Tag{TagId{1}, m});
  // Identity-oriented lane frame: local y -> world y, local z -> world z.
  EXPECT_NEAR(e.tag_dipole_axis(0, 0.0).y, 1.0, 1e-12);
  EXPECT_NEAR(e.tag_patch_normal(0, 0.0).z, 1.0, 1e-12);
}

TEST(EntityTest, TagIndexOutOfRangeThrows) {
  Entity e = make_box_entity();
  EXPECT_THROW(e.tag_position(0, 0.0), ConfigError);
  EXPECT_THROW(e.tag_dipole_axis(0, 0.0), ConfigError);
  EXPECT_THROW(e.tag_patch_normal(0, 0.0), ConfigError);
}

TEST(EntityTest, BodyChordThroughBox) {
  const Entity e = make_box_entity();
  const Segment seg{{0.0, -5.0, 0.0}, {0.0, 5.0, 0.0}};
  const auto chord = e.body_chord(seg, 0.0);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 0.4, 1e-12);
}

TEST(EntityTest, ContentFillShrinksChord) {
  Entity e("box", BoxBody{{0.4, 0.4, 0.3}}, rf::Material::Metal,
           std::make_unique<StaticTrajectory>(lane_pose({0.0, 0.0, 0.0})),
           /*content_fill=*/0.5);
  const Segment seg{{0.0, -5.0, 0.0}, {0.0, 5.0, 0.0}};
  const auto chord = e.body_chord(seg, 0.0);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 0.2, 1e-12);
}

TEST(EntityTest, SkipMarginCanEliminateChord) {
  const Entity e = make_box_entity();
  // A segment grazing just inside the face plane.
  const Segment seg{{-5.0, 0.19, 0.0}, {5.0, 0.19, 0.0}};
  EXPECT_TRUE(e.body_chord(seg, 0.0).has_value());
  EXPECT_FALSE(e.body_chord(seg, 0.0, 0.02).has_value());
}

TEST(EntityTest, NoBodyNoChord) {
  Entity e("bare", std::monostate{}, rf::Material::Air,
           std::make_unique<StaticTrajectory>(Pose{}));
  EXPECT_FALSE(e.body_chord({{-1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}}, 0.0).has_value());
  EXPECT_EQ(e.body_radius(), 0.0);
}

TEST(EntityTest, CylinderBodyChordAndRadius) {
  Entity e("person", CylinderBody{0.22, 1.75}, rf::Material::HumanBody,
           std::make_unique<StaticTrajectory>(lane_pose({0.0, 0.0, 0.875})));
  const Segment seg{{-5.0, 0.0, 0.9}, {5.0, 0.0, 0.9}};
  const auto chord = e.body_chord(seg, 0.0);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 0.44, 1e-12);
  EXPECT_NEAR(e.body_radius(), 0.22, 1e-12);
}

TEST(EntityTest, CopyIsDeep) {
  Entity original = make_box_entity();
  original.add_tag(Tag{TagId{1}, {}});
  Entity copy = original;
  copy.add_tag(Tag{TagId{2}, {}});
  EXPECT_EQ(original.tags().size(), 1u);
  EXPECT_EQ(copy.tags().size(), 2u);
  EXPECT_EQ(copy.name(), "box");
}

TEST(BoxFaceMountTest, FrontFaceGeometry) {
  const Vec3 extents{0.4, 0.4, 0.3};
  const TagMount m = mount_on_box_face(BoxFace::Front, extents, rf::Material::Metal, 0.05);
  EXPECT_NEAR(m.local_position.x, 0.2, 1e-12);
  EXPECT_NEAR(m.local_patch_normal.x, 1.0, 1e-12);
  EXPECT_EQ(m.backing_material, rf::Material::Metal);
  EXPECT_EQ(m.backing_gap_m, 0.05);
}

TEST(BoxFaceMountTest, AllFacesHaveOutwardNormals) {
  const Vec3 extents{0.4, 0.4, 0.3};
  for (const BoxFace face : {BoxFace::Front, BoxFace::Back, BoxFace::Top,
                             BoxFace::Bottom, BoxFace::SideNear, BoxFace::SideFar}) {
    const TagMount m = mount_on_box_face(face, extents, rf::Material::Metal, 0.05);
    // The normal points the same way as the position offset (outward).
    EXPECT_GT(m.local_patch_normal.dot(m.local_position), 0.0)
        << box_face_name(face);
    // The dipole axis lies in the face plane.
    EXPECT_NEAR(m.local_dipole_axis.dot(m.local_patch_normal), 0.0, 1e-12)
        << box_face_name(face);
  }
}

TEST(BodySpotMountTest, SpotsAreAtWaistHeightOffTheBody) {
  const CylinderBody body{0.22, 1.75};
  for (const BodySpot spot :
       {BodySpot::Front, BodySpot::Back, BodySpot::SideNear, BodySpot::SideFar}) {
    const TagMount m = mount_on_person(spot, body);
    EXPECT_EQ(m.backing_material, rf::Material::HumanBody);
    EXPECT_GT(m.backing_gap_m, 0.0) << "tags should not touch the body";
    // Radial distance beyond the body surface.
    const double radial = std::hypot(m.local_position.x, m.local_position.y);
    EXPECT_GT(radial, body.radius);
    // Waist height: 1 m above the feet = body centre - height/2 + 1.
    EXPECT_NEAR(m.local_position.z, -body.height * 0.5 + 1.0, 1e-12);
    EXPECT_NEAR(m.local_dipole_axis.dot(m.local_patch_normal), 0.0, 1e-12);
  }
}

TEST(FaceNamesTest, MatchPaperTerminology) {
  EXPECT_EQ(box_face_name(BoxFace::SideNear), "side (closer)");
  EXPECT_EQ(box_face_name(BoxFace::SideFar), "side (farther)");
  EXPECT_EQ(body_spot_name(BodySpot::Front), "front");
}

}  // namespace
}  // namespace rfidsim::scene
