#include "scene/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace rfidsim::scene {
namespace {

TEST(AabbTest, ContainsInteriorAndBoundary) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
  EXPECT_TRUE(box.contains({0.0, 0.0, 0.0}));
  EXPECT_TRUE(box.contains({1.0, 1.0, 1.0}));  // Corner.
  EXPECT_FALSE(box.contains({1.1, 0.0, 0.0}));
}

TEST(BoxChordTest, ThroughCentreIsFullSide) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 4.0, 6.0}};
  const Segment seg{{-5.0, 0.0, 0.0}, {5.0, 0.0, 0.0}};
  const auto chord = chord_length(seg, box);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 2.0, 1e-12);
}

TEST(BoxChordTest, MissReturnsNullopt) {
  const Aabb box{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  EXPECT_FALSE(chord_length({{-5.0, 2.0, 0.0}, {5.0, 2.0, 0.0}}, box).has_value());
  EXPECT_FALSE(chord_length({{2.0, 2.0, 2.0}, {3.0, 3.0, 3.0}}, box).has_value());
}

TEST(BoxChordTest, SegmentEndingInsideCountsPartialChord) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
  const Segment seg{{-5.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};  // Ends at centre.
  const auto chord = chord_length(seg, box);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 1.0, 1e-12);
}

TEST(BoxChordTest, SegmentStartingInsideCountsInsidePortion) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
  const Segment seg{{0.0, 0.0, 0.0}, {5.0, 0.0, 0.0}};
  const auto chord = chord_length(seg, box);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 1.0, 1e-12);
}

TEST(BoxChordTest, DiagonalChord) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
  const Segment seg{{-2.0, -2.0, 0.0}, {2.0, 2.0, 0.0}};
  const auto chord = chord_length(seg, box);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 2.0 * std::numbers::sqrt2, 1e-9);
}

TEST(BoxChordTest, AxisParallelSegmentOutsideSlabMisses) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
  // Parallel to x at z above the box.
  EXPECT_FALSE(chord_length({{-5.0, 0.0, 3.0}, {5.0, 0.0, 3.0}}, box).has_value());
}

TEST(BoxChordTest, GrazingTouchIsNotAChord) {
  const Aabb box{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
  // Exactly on the face plane: zero-length chord -> nullopt.
  EXPECT_FALSE(chord_length({{-5.0, 1.0, 0.0}, {5.0, 1.0, 0.0}}, box).has_value());
}

TEST(CylinderChordTest, ThroughAxisIsDiameter) {
  const VerticalCylinder cyl{{0.0, 0.0, 1.0}, 0.5, 2.0};
  const Segment seg{{-3.0, 0.0, 1.0}, {3.0, 0.0, 1.0}};
  const auto chord = chord_length(seg, cyl);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 1.0, 1e-12);
}

TEST(CylinderChordTest, OffsetChordIsShorter) {
  const VerticalCylinder cyl{{0.0, 0.0, 1.0}, 0.5, 2.0};
  const Segment seg{{-3.0, 0.3, 1.0}, {3.0, 0.3, 1.0}};
  const auto chord = chord_length(seg, cyl);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 2.0 * std::sqrt(0.25 - 0.09), 1e-9);
}

TEST(CylinderChordTest, MissesBeyondRadius) {
  const VerticalCylinder cyl{{0.0, 0.0, 1.0}, 0.5, 2.0};
  EXPECT_FALSE(chord_length({{-3.0, 0.6, 1.0}, {3.0, 0.6, 1.0}}, cyl).has_value());
}

TEST(CylinderChordTest, MissesAboveAndBelow) {
  const VerticalCylinder cyl{{0.0, 0.0, 1.0}, 0.5, 2.0};
  EXPECT_FALSE(chord_length({{-3.0, 0.0, 2.5}, {3.0, 0.0, 2.5}}, cyl).has_value());
  EXPECT_FALSE(chord_length({{-3.0, 0.0, -0.5}, {3.0, 0.0, -0.5}}, cyl).has_value());
}

TEST(CylinderChordTest, VerticalSegmentInsideCircle) {
  const VerticalCylinder cyl{{0.0, 0.0, 1.0}, 0.5, 2.0};
  const Segment seg{{0.1, 0.1, -1.0}, {0.1, 0.1, 3.0}};
  const auto chord = chord_length(seg, cyl);
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(*chord, 2.0, 1e-12);  // Clipped to the cylinder height.
}

TEST(CylinderChordTest, VerticalSegmentOutsideCircleMisses) {
  const VerticalCylinder cyl{{0.0, 0.0, 1.0}, 0.5, 2.0};
  EXPECT_FALSE(chord_length({{1.0, 0.0, -1.0}, {1.0, 0.0, 3.0}}, cyl).has_value());
}

TEST(CylinderChordTest, ObliqueChordClippedByHeight) {
  const VerticalCylinder cyl{{0.0, 0.0, 0.0}, 1.0, 1.0};
  // Steep segment entering the top and leaving the bottom within the circle.
  const Segment seg{{0.0, 0.0, 2.0}, {0.2, 0.0, -2.0}};
  const auto chord = chord_length(seg, cyl);
  ASSERT_TRUE(chord.has_value());
  // z spans 1.0 of a 4.0 total z range: chord = |seg| / 4.
  const double expected = Vec3{0.2, 0.0, -4.0}.norm() / 4.0;
  EXPECT_NEAR(*chord, expected, 1e-9);
}

TEST(ClosestPointTest, ProjectsOntoSegmentInterior) {
  const Segment seg{{0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}};
  const PointToSegment r = closest_point(seg, {3.0, 4.0, 0.0});
  EXPECT_NEAR(r.t, 0.3, 1e-12);
  EXPECT_NEAR(r.distance, 4.0, 1e-12);
}

TEST(ClosestPointTest, ClampsToEndpoints) {
  const Segment seg{{0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}};
  EXPECT_NEAR(closest_point(seg, {-5.0, 0.0, 0.0}).t, 0.0, 1e-12);
  EXPECT_NEAR(closest_point(seg, {-3.0, 4.0, 0.0}).distance, 5.0, 1e-12);
  EXPECT_NEAR(closest_point(seg, {15.0, 0.0, 0.0}).t, 1.0, 1e-12);
}

TEST(ClosestPointTest, DegenerateSegment) {
  const Segment seg{{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}};
  const PointToSegment r = closest_point(seg, {1.0, 2.0, 1.0});
  EXPECT_EQ(r.t, 0.0);
  EXPECT_NEAR(r.distance, 1.0, 1e-12);
}

}  // namespace
}  // namespace rfidsim::scene
