#include "gen2/interference.hpp"

#include <gtest/gtest.h>

namespace rfidsim::gen2 {
namespace {

ReaderRfState reader_at(double x, int channel, bool drm = false,
                        bool transmitting = true) {
  ReaderRfState st;
  st.position = {x, 0.0, 0.0};
  st.channel = channel;
  st.dense_reader_mode = drm;
  st.transmitting = transmitting;
  return st;
}

TEST(InterferenceTest, NoOthersNoJam) {
  const ReaderInterference model;
  EXPECT_EQ(model.command_jam_probability(reader_at(0.0, 0), {}), 0.0);
}

TEST(InterferenceTest, CochannelNeighbourJamsHard) {
  const ReaderInterference model;
  const double p = model.command_jam_probability(reader_at(0.0, 0), {reader_at(2.0, 0)});
  EXPECT_DOUBLE_EQ(p, model.params().cochannel_jam_probability);
}

TEST(InterferenceTest, SilentReaderDoesNotJam) {
  const ReaderInterference model;
  const double p = model.command_jam_probability(
      reader_at(0.0, 0), {reader_at(2.0, 0, false, /*transmitting=*/false)});
  EXPECT_EQ(p, 0.0);
}

TEST(InterferenceTest, FarReaderDoesNotJam) {
  const ReaderInterference model;
  const double p = model.command_jam_probability(
      reader_at(0.0, 0), {reader_at(100.0, 0)});
  EXPECT_EQ(p, 0.0);
}

TEST(InterferenceTest, DrmOnDistinctChannelsIsNearlyClean) {
  const ReaderInterference model;
  const double p = model.command_jam_probability(reader_at(0.0, 0, true),
                                                 {reader_at(2.0, 1, true)});
  EXPECT_NEAR(p, model.params().drm_jam_probability, 1e-9);
  EXPECT_LT(p, 0.1);
}

TEST(InterferenceTest, DistinctChannelsHelpEvenWithoutDrm) {
  // Channel separation is the physical mechanism; DRM is how readers agree
  // to maintain it.
  const ReaderInterference model;
  const double p = model.command_jam_probability(reader_at(0.0, 0),
                                                 {reader_at(2.0, 3)});
  EXPECT_NEAR(p, model.params().drm_jam_probability, 1e-9);
}

TEST(InterferenceTest, MultipleInterferersCompound) {
  const ReaderInterference model;
  const double one = model.command_jam_probability(reader_at(0.0, 0), {reader_at(2.0, 0)});
  const double two = model.command_jam_probability(
      reader_at(0.0, 0), {reader_at(2.0, 0), reader_at(-2.0, 0)});
  EXPECT_GT(two, one);
  EXPECT_NEAR(two, 1.0 - (1.0 - one) * (1.0 - one), 1e-12);
}

TEST(AssignChannelsTest, WithoutDrmAllShareChannelZero) {
  const auto channels = ReaderInterference::assign_channels(3, false);
  EXPECT_EQ(channels, (std::vector<int>{0, 0, 0}));
}

TEST(AssignChannelsTest, WithDrmChannelsAreDistinct) {
  const auto channels = ReaderInterference::assign_channels(3, true);
  EXPECT_EQ(channels, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace rfidsim::gen2
