#include "gen2/inventory.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rfidsim::gen2 {
namespace {

/// Powers `n` tags with perfect links.
struct Population {
  std::vector<TagState> states;
  std::vector<TagLink> links;

  explicit Population(std::size_t n, double decode_probability = 1.0) {
    states.resize(n);
    links.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      states[i].set_powered(true, 0.0);
      links[i].powered = true;
      links[i].reply_decode_probability = decode_probability;
      links[i].rx_power = DbmPower(-55.0);
    }
  }
};

InventoryConfig quiet_config() {
  InventoryConfig cfg;
  cfg.q.initial_q = 2.0;
  return cfg;
}

TEST(InventoryTest, MismatchedArraysThrow) {
  InventoryEngine engine(quiet_config());
  std::vector<TagState> states(2);
  std::vector<TagLink> links(3);
  Rng rng(1);
  EXPECT_THROW(engine.run_round(states, links, 0.0, rng), ConfigError);
}

TEST(InventoryTest, SingleTagIsSingulated) {
  InventoryEngine engine(quiet_config());
  Population pop(1);
  Rng rng(1);
  const InventoryRoundResult r = engine.run_round(pop.states, pop.links, 0.0, rng);
  ASSERT_EQ(r.singulated.size(), 1u);
  EXPECT_EQ(r.singulated[0], 0u);
  EXPECT_EQ(r.success_slots, 1u);
  EXPECT_GT(r.duration_s, 0.0);
}

TEST(InventoryTest, WholePopulationReadWithinFewRounds) {
  InventoryEngine engine(quiet_config());
  Population pop(20);
  Rng rng(7);
  std::vector<bool> seen(20, false);
  for (int round = 0; round < 10; ++round) {
    const auto r = engine.run_round(pop.states, pop.links, 0.1 * round, rng);
    for (std::size_t i : r.singulated) seen[i] = true;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 20);
}

TEST(InventoryTest, ReadTagsStaySilentInLaterRounds) {
  InventoryEngine engine(quiet_config());
  Population pop(5);
  Rng rng(3);
  std::size_t total = 0;
  for (int round = 0; round < 8; ++round) {
    total += engine.run_round(pop.states, pop.links, 0.05 * round, rng).singulated.size();
  }
  // Continuously powered S0 tags flip to B after a read and are not
  // re-inventoried.
  EXPECT_EQ(total, 5u);
}

TEST(InventoryTest, UnpoweredTagsNeverRead) {
  InventoryEngine engine(quiet_config());
  Population pop(4);
  pop.links[2].powered = false;
  pop.states[2].set_powered(false, 0.0);
  Rng rng(5);
  std::vector<bool> seen(4, false);
  for (int round = 0; round < 6; ++round) {
    for (std::size_t i : engine.run_round(pop.states, pop.links, 0.1 * round, rng).singulated) {
      seen[i] = true;
    }
  }
  EXPECT_FALSE(seen[2]);
  EXPECT_TRUE(seen[0] && seen[1] && seen[3]);
}

TEST(InventoryTest, CollisionsHappenWithManyTagsAndSmallQ) {
  InventoryConfig cfg;
  cfg.q.initial_q = 1.0;  // 2 slots for 10 tags: guaranteed contention.
  cfg.adjust_mid_round = false;
  InventoryEngine engine(cfg);
  Population pop(10);
  Rng rng(11);
  const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
  EXPECT_GT(r.collision_slots, 0u);
}

TEST(InventoryTest, QAdaptationResolvesContention) {
  InventoryConfig cfg;
  cfg.q.initial_q = 1.0;
  cfg.adjust_mid_round = true;
  InventoryEngine engine(cfg);
  Population pop(16);
  Rng rng(13);
  std::vector<bool> seen(16, false);
  for (int round = 0; round < 12; ++round) {
    for (std::size_t i : engine.run_round(pop.states, pop.links, 0.1 * round, rng).singulated) {
      seen[i] = true;
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 16);
}

TEST(InventoryTest, CaptureEffectDecodesDominantTag) {
  InventoryConfig cfg;
  cfg.q.initial_q = 0.0;  // Everyone in slot 0: always colliding.
  cfg.q.max_slots_per_round = 4;
  cfg.capture_threshold_db = 6.0;
  InventoryEngine engine(cfg);
  Population pop(3);
  pop.links[1].rx_power = DbmPower(-40.0);  // 15 dB above the others.
  Rng rng(17);
  const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
  ASSERT_GE(r.singulated.size(), 1u);
  EXPECT_EQ(r.singulated[0], 1u);
}

TEST(InventoryTest, NoCaptureWhenPowersAreComparable) {
  InventoryConfig cfg;
  cfg.q.initial_q = 0.0;
  cfg.q.max_slots_per_round = 1;
  InventoryEngine engine(cfg);
  Population pop(3);  // All equal rx power.
  Rng rng(19);
  const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
  EXPECT_TRUE(r.singulated.empty());
  EXPECT_EQ(r.collision_slots, 1u);
}

TEST(InventoryTest, FullJamReadsNothing) {
  InventoryConfig cfg = quiet_config();
  cfg.command_jam_probability = 1.0;
  InventoryEngine engine(cfg);
  Population pop(5);
  Rng rng(23);
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(engine.run_round(pop.states, pop.links, 0.1 * round, rng).singulated.empty());
  }
}

TEST(InventoryTest, PartialJamSlowsButDoesNotStopInventory) {
  InventoryConfig cfg = quiet_config();
  cfg.command_jam_probability = 0.5;
  InventoryEngine engine(cfg);
  Population pop(8);
  Rng rng(29);
  std::vector<bool> seen(8, false);
  for (int round = 0; round < 30; ++round) {
    for (std::size_t i : engine.run_round(pop.states, pop.links, 0.1 * round, rng).singulated) {
      seen[i] = true;
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 8);
}

TEST(InventoryTest, LowDecodeProbabilityCausesMisses) {
  InventoryConfig cfg = quiet_config();
  InventoryEngine engine(cfg);
  Population pop(1, /*decode_probability=*/0.0);
  Rng rng(31);
  const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
  EXPECT_TRUE(r.singulated.empty());
}

TEST(InventoryTest, DurationAccumulatesPerSlotCosts) {
  InventoryConfig cfg = quiet_config();
  InventoryEngine engine(cfg);
  Population pop(4);
  Rng rng(37);
  const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
  const LinkTiming& t = cfg.timing;
  // Lower bound: overhead + query + per-success singulation time.
  const double lower =
      t.round_overhead_s + t.query_s +
      static_cast<double>(r.success_slots) * t.singulation_s;
  EXPECT_GE(r.duration_s, lower);
}

TEST(InventoryTest, IdealInventoryTimeIsAboutTwentyMsPerTag) {
  // The paper's end-to-end measurement: ~0.02 s per tag.
  const LinkTiming timing;
  const double per_tag_20 = timing.ideal_inventory_time_s(20) / 20.0;
  EXPECT_GT(per_tag_20, 0.004);
  EXPECT_LT(per_tag_20, 0.03);
}

TEST(InventoryTest, DeterministicGivenSeed) {
  const InventoryConfig cfg = quiet_config();
  auto run = [&cfg](std::uint64_t seed) {
    InventoryEngine engine(cfg);
    Population pop(10);
    Rng rng(seed);
    std::vector<std::size_t> order;
    for (int round = 0; round < 5; ++round) {
      const auto r = engine.run_round(pop.states, pop.links, 0.1 * round, rng);
      order.insert(order.end(), r.singulated.begin(), r.singulated.end());
    }
    return order;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(InventoryTest, DualTargetReReadsTagsEveryRound) {
  InventoryConfig cfg = quiet_config();
  cfg.dual_target = true;
  InventoryEngine engine(cfg);
  Population pop(3);
  Rng rng(53);
  std::size_t total = 0;
  for (int round = 0; round < 8; ++round) {
    total += engine.run_round(pop.states, pop.links, 0.1 * round, rng).singulated.size();
  }
  // Alternating A/B targets keep toggled tags in play: far more than one
  // read per tag.
  EXPECT_GT(total, 3u * 4u);
}

TEST(InventoryTest, SingleTargetReadsEachTagOnce) {
  InventoryEngine engine(quiet_config());
  Population pop(3);
  Rng rng(59);
  std::size_t total = 0;
  for (int round = 0; round < 8; ++round) {
    total += engine.run_round(pop.states, pop.links, 0.1 * round, rng).singulated.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(InventoryTest, ResetQRestoresInitial) {
  InventoryConfig cfg;
  cfg.q.initial_q = 1.0;
  InventoryEngine engine(cfg);
  Population pop(16);
  Rng rng(41);
  engine.run_round(pop.states, pop.links, 0.0, rng);
  engine.reset_q();
  EXPECT_DOUBLE_EQ(engine.qfp(), 1.0);
}

TEST(InventoryTest, RunawayGuardBoundsSlots) {
  InventoryConfig cfg;
  cfg.q.initial_q = 15.0;  // Enormous frame.
  cfg.q.max_slots_per_round = 64;
  InventoryEngine engine(cfg);
  Population pop(2);
  Rng rng(43);
  const auto r = engine.run_round(pop.states, pop.links, 0.0, rng);
  EXPECT_LE(r.total_slots, 64u);
}

}  // namespace
}  // namespace rfidsim::gen2
