// gen2::reliable — multi-session inventory, session fusion, and MPR.
//
// Covers the redundancy-axes subsystem: MultiSessionInventory determinism
// (golden and randomized), SessionFusion confidence monotonicity in K,
// MPR round accounting with the M = 1 bit-identity contract against the
// conventional InventoryEngine, and the Pudasaini optimal-load goldens
// (lambda*(2) is the golden ratio).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen2/inventory.hpp"
#include "gen2/reliable/fusion.hpp"
#include "gen2/reliable/mpr.hpp"
#include "gen2/reliable/multi_session.hpp"

namespace rfidsim::gen2::reliable {
namespace {

/// Powers `n` tags with configurable links (mirrors inventory_test.cpp).
struct Population {
  std::vector<TagState> states;
  std::vector<TagLink> links;

  explicit Population(std::size_t n, double decode_probability = 1.0) {
    states.resize(n);
    links.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      states[i].set_powered(true, 0.0);
      links[i].powered = true;
      links[i].reply_decode_probability = decode_probability;
      links[i].rx_power = DbmPower(-55.0);
    }
  }
};

InventoryConfig base_config(double initial_q = 2.0) {
  InventoryConfig cfg;
  cfg.q.initial_q = initial_q;
  return cfg;
}

// ---------------------------------------------------------------- MPR math

TEST(MprMathTest, OptimalLoadGoldens) {
  // M = 1: the classic slotted-ALOHA optimum, exactly.
  EXPECT_DOUBLE_EQ(optimal_slot_load(1), 1.0);
  // M = 2: the positive root of 1 + lambda - lambda^2 = 0 is the golden
  // ratio (Pudasaini et al. eq. for N = 2).
  const double golden = (1.0 + std::sqrt(5.0)) / 2.0;
  EXPECT_NEAR(optimal_slot_load(2), golden, 1e-9);
}

TEST(MprMathTest, OptimalLoadIncreasesWithCapability) {
  double prev = 0.0;
  for (int m = 1; m <= 8; ++m) {
    const double load = optimal_slot_load(m);
    EXPECT_GT(load, prev) << "m=" << m;
    prev = load;
  }
  // And stays below the m replies/slot a perfect reader could absorb.
  EXPECT_LT(prev, 9.0);
}

TEST(MprMathTest, OptimalLoadMaximizesThroughput) {
  for (int m = 1; m <= 6; ++m) {
    const double star = optimal_slot_load(m);
    const double at_star = expected_decodes_per_slot(star, m);
    for (const double delta : {-0.2, -0.05, 0.05, 0.2}) {
      EXPECT_GE(at_star, expected_decodes_per_slot(star + delta, m))
          << "m=" << m << " delta=" << delta;
    }
  }
}

TEST(MprMathTest, OptimalQMatchesTextbookAtMEqualsOne) {
  // Q* = round(log2(N)) for a conventional reader.
  EXPECT_EQ(optimal_q(64, 1), 6);
  EXPECT_EQ(optimal_q(100, 1), 7);
  EXPECT_EQ(optimal_q(1, 1), 0);
  EXPECT_EQ(optimal_q(0, 1), 0);
}

TEST(MprMathTest, OptimalQShrinksWithCapability) {
  // An MPR reader wants a SMALLER frame for the same population.
  EXPECT_LE(optimal_q(256, 4), optimal_q(256, 2));
  EXPECT_LE(optimal_q(256, 2), optimal_q(256, 1));
  // The offset is the closed form -log2(lambda*).
  EXPECT_NEAR(optimal_q_offset(1), 0.0, 1e-12);
  EXPECT_NEAR(optimal_q_offset(2), -std::log2((1.0 + std::sqrt(5.0)) / 2.0), 1e-9);
}

TEST(MprMathTest, ExpectedDecodesLimits) {
  // Zero load decodes nothing; m -> large approaches lambda.
  EXPECT_DOUBLE_EQ(expected_decodes_per_slot(0.0, 3), 0.0);
  EXPECT_NEAR(expected_decodes_per_slot(0.5, 64), 0.5, 1e-9);
}

// --------------------------------------------------------- M = 1 identity

TEST(MprBitIdentityTest, MEqualsOneMatchesConventionalEngine) {
  // The contract InventoryConfig::mpr_capacity documents: an MPR-1 engine
  // (via the wrapper, no population-derived Q) runs the exact code path
  // of the conventional engine — identical singulation order, slot
  // accounting, durations, and RNG consumption, over randomized
  // populations with lossy links and capture-prone power spreads.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng setup(seed);
    const auto n = static_cast<std::size_t>(setup.uniform_int(1, 40));
    Population pop_a(n);
    Population pop_b(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double decode = setup.uniform(0.3, 1.0);
      const double power = setup.uniform(-70.0, -50.0);
      pop_a.links[i].reply_decode_probability = decode;
      pop_b.links[i].reply_decode_probability = decode;
      pop_a.links[i].rx_power = DbmPower(power);
      pop_b.links[i].rx_power = DbmPower(power);
    }

    InventoryConfig cfg = base_config(setup.uniform(1.0, 4.0));
    cfg.command_jam_probability = setup.uniform(0.0, 0.1);
    InventoryEngine conventional(cfg);
    MprInventoryEngine mpr(cfg, /*m=*/1);

    Rng rng_a(seed * 1000 + 1);
    Rng rng_b(seed * 1000 + 1);
    for (int round = 0; round < 6; ++round) {
      const auto a =
          conventional.run_round(pop_a.states, pop_a.links, 0.05 * round, rng_a);
      const auto b = mpr.run_round(pop_b.states, pop_b.links, 0.05 * round, rng_b);
      ASSERT_EQ(a.singulated, b.singulated) << "seed=" << seed << " round=" << round;
      ASSERT_EQ(a.total_slots, b.total_slots);
      ASSERT_EQ(a.empty_slots, b.empty_slots);
      ASSERT_EQ(a.collision_slots, b.collision_slots);
      ASSERT_EQ(a.success_slots, b.success_slots);
      ASSERT_EQ(b.mpr_decodes, 0u) << "MPR-1 must never report MPR decodes";
      ASSERT_DOUBLE_EQ(a.duration_s, b.duration_s);
      ASSERT_DOUBLE_EQ(a.final_q, b.final_q);
      // Same RNG consumption: the streams stay aligned round after round.
      ASSERT_EQ(rng_a.uniform_int(0, 1u << 30), rng_b.uniform_int(0, 1u << 30));
    }
  }
}

TEST(MprEngineTest, MprTwoDecodesCollidedSlots) {
  // 2 tags forced into the same slot (Q = 0 frame): a conventional reader
  // loses the slot (equal powers, no capture); an MPR-2 reader reads both.
  InventoryConfig cfg = base_config(0.0);
  cfg.adjust_mid_round = false;

  Population conv_pop(2);
  InventoryEngine conventional(cfg);
  Rng rng_a(3);
  const auto conv = conventional.run_round(conv_pop.states, conv_pop.links, 0.0, rng_a);
  EXPECT_EQ(conv.singulated.size(), 0u);
  EXPECT_GE(conv.collision_slots, 1u);

  Population mpr_pop(2);
  MprInventoryEngine mpr(cfg, /*m=*/2);
  Rng rng_b(3);
  const auto both = mpr.run_round(mpr_pop.states, mpr_pop.links, 0.0, rng_b);
  EXPECT_EQ(both.singulated.size(), 2u);
  EXPECT_EQ(both.mpr_decodes, 2u);
  EXPECT_EQ(both.collision_slots, 0u);
}

TEST(MprEngineTest, RoundAccountingConsistent) {
  // Slot taxonomy partitions total_slots for any capability.
  for (int m = 1; m <= 3; ++m) {
    InventoryConfig cfg = base_config(2.0);
    MprInventoryEngine engine(cfg, m);
    Population pop(15, 0.8);
    Rng rng(11);
    for (int round = 0; round < 5; ++round) {
      const auto r = engine.run_round(pop.states, pop.links, 0.05 * round, rng);
      EXPECT_EQ(r.empty_slots + r.collision_slots + r.success_slots, r.total_slots)
          << "m=" << m;
      EXPECT_LE(r.mpr_decodes, r.singulated.size());
      if (m == 1) EXPECT_EQ(r.mpr_decodes, 0u);
    }
  }
}

// -------------------------------------------------------- multi-session

MultiSessionConfig three_session_config(SessionSchedule schedule) {
  MultiSessionConfig cfg;
  cfg.base = base_config(3.0);
  cfg.sessions = {Session::S1, Session::S2, Session::S3};
  cfg.schedule = schedule;
  cfg.rounds_per_session = 3;
  return cfg;
}

TEST(MultiSessionTest, EverySessionReadsTheWholePopulationOnCleanLinks) {
  // Perfect links: each of the 3 session passes independently reads all
  // tags — per-session flags never interfere.
  MultiSessionInventory inv(three_session_config(SessionSchedule::kInterleaved));
  Population pop(10);
  Rng rng(5);
  const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
  ASSERT_EQ(r.per_session.size(), 3u);
  for (const SessionPassResult& pass : r.per_session) {
    EXPECT_EQ(pass.read_tags.size(), 10u)
        << "session " << static_cast<int>(pass.session);
  }
  ASSERT_EQ(r.sessions_seen.size(), 10u);
  for (std::size_t c : r.sessions_seen) EXPECT_EQ(c, 3u);
  EXPECT_GT(r.total_duration_s, 0.0);
}

TEST(MultiSessionTest, PassesNeverMutateOtherSessionsFlags) {
  // Engine-level independence: after ONLY the S2 pass runs, S1/S3 flags
  // of every read tag are still A (ready to answer their own passes).
  MultiSessionConfig cfg;
  cfg.base = base_config(3.0);
  cfg.sessions = {Session::S2};
  cfg.rounds_per_session = 4;
  MultiSessionInventory inv(cfg);
  Population pop(8);
  Rng rng(9);
  const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
  ASSERT_EQ(r.per_session[0].read_tags.size(), 8u);
  const double t_end = r.total_duration_s;
  for (const TagState& st : pop.states) {
    EXPECT_EQ(st.flag(t_end, Session::S2), InventoriedFlag::B);
    EXPECT_EQ(st.flag(t_end, Session::S1), InventoriedFlag::A);
    EXPECT_EQ(st.flag(t_end, Session::S3), InventoriedFlag::A);
  }
}

TEST(MultiSessionTest, DeterministicGolden) {
  // Fixed seed, fixed config: the sweep is a pure function of the RNG.
  // Golden-pins the aggregate shape; the randomized repeat below pins
  // equality structurally.
  MultiSessionInventory inv(three_session_config(SessionSchedule::kInterleaved));
  Population pop(6, 0.9);
  Rng rng(20070625);
  const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
  std::size_t total_reads = 0;
  for (const auto& pass : r.per_session) total_reads += pass.read_tags.size();
  const std::size_t seen_total =
      std::accumulate(r.sessions_seen.begin(), r.sessions_seen.end(), std::size_t{0});
  EXPECT_EQ(total_reads, seen_total);
  // Golden values for this seed (update deliberately if the engine's RNG
  // draw order ever changes — that is the point of the pin).
  EXPECT_EQ(r.per_session[0].rounds, 3u);
  EXPECT_EQ(r.per_session[1].rounds, 3u);
  EXPECT_EQ(r.per_session[2].rounds, 3u);
  EXPECT_EQ(seen_total, 18u) << "clean 6-tag population, 3 sessions";
}

TEST(MultiSessionTest, RepeatedRunsAreIdentical) {
  for (const auto schedule :
       {SessionSchedule::kSequential, SessionSchedule::kInterleaved}) {
    for (std::uint64_t seed : {1ull, 42ull, 20070625ull}) {
      auto run_once = [&] {
        MultiSessionInventory inv(three_session_config(schedule));
        Population pop(12, 0.7);
        Rng rng(seed);
        return inv.run(pop.states, pop.links, 0.0, rng);
      };
      const MultiSessionResult a = run_once();
      const MultiSessionResult b = run_once();
      ASSERT_EQ(a.sessions_seen, b.sessions_seen) << "seed=" << seed;
      ASSERT_DOUBLE_EQ(a.total_duration_s, b.total_duration_s);
      for (std::size_t i = 0; i < a.per_session.size(); ++i) {
        ASSERT_EQ(a.per_session[i].read_tags, b.per_session[i].read_tags);
        ASSERT_EQ(a.per_session[i].singulations, b.per_session[i].singulations);
        ASSERT_DOUBLE_EQ(a.per_session[i].duration_s, b.per_session[i].duration_s);
      }
    }
  }
}

TEST(MultiSessionTest, SequentialAndInterleavedCoverEqually) {
  // On clean links both schedules read everything; they differ only in
  // WHEN each session's rounds run.
  for (const auto schedule :
       {SessionSchedule::kSequential, SessionSchedule::kInterleaved}) {
    MultiSessionInventory inv(three_session_config(schedule));
    Population pop(10);
    Rng rng(13);
    const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
    for (std::size_t c : r.sessions_seen) EXPECT_EQ(c, 3u);
  }
}

TEST(MultiSessionTest, LossyLinksYieldPartialSessionCounts) {
  // With weak links, sessions_seen spreads over 0..K — the fusion input
  // actually exercises intermediate counts.
  MultiSessionConfig cfg = three_session_config(SessionSchedule::kInterleaved);
  cfg.rounds_per_session = 1;
  MultiSessionInventory inv(cfg);
  Population pop(30, 0.35);
  Rng rng(17);
  const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
  std::array<std::size_t, 4> histogram{};
  for (std::size_t c : r.sessions_seen) ++histogram[std::min<std::size_t>(c, 3)];
  // Not all-or-nothing: some tag landed strictly between 0 and K passes.
  EXPECT_GT(histogram[1] + histogram[2], 0u);
}

// --------------------------------------------------------------- fusion

FusionConfig identical_sessions(std::size_t k, double p, double f = 0.0) {
  FusionConfig cfg;
  for (std::size_t i = 0; i < k; ++i) {
    cfg.sessions.push_back(SessionModel{static_cast<Session>((i % 3) + 1), p, f});
  }
  return cfg;
}

TEST(FusionTest, FusedDetectionProbabilityMatchesIndependenceModel) {
  FusionConfig cfg;
  cfg.sessions = {SessionModel{Session::S1, 0.9, 0.0},
                  SessionModel{Session::S2, 0.8, 0.0},
                  SessionModel{Session::S3, 0.7, 0.0}};
  const SessionFusion fusion(cfg);
  // R_C = 1 - (1-0.9)(1-0.8)(1-0.7).
  EXPECT_NEAR(fusion.fused_detection_probability(), 1.0 - 0.1 * 0.2 * 0.3, 1e-12);
}

TEST(FusionTest, PosteriorMonotoneInSessionsSeen) {
  const SessionFusion fusion(identical_sessions(4, 0.85, 0.02));
  double prev = -1.0;
  for (std::size_t seen = 0; seen <= 4; ++seen) {
    const double post = fusion.posterior(seen);
    EXPECT_GT(post, prev) << "seen=" << seen;
    EXPECT_GE(post, 0.0);
    EXPECT_LE(post, 1.0);
    prev = post;
  }
}

TEST(FusionTest, ConfidenceMonotoneInSessionCountK) {
  // The headline property: adding sessions can only raise both the
  // analytical fused rate and the full-agreement confidence.
  double prev_rate = 0.0;
  double prev_conf = 0.0;
  for (std::size_t k = 1; k <= 4; ++k) {
    const SessionFusion fusion(identical_sessions(k, 0.8, 0.05));
    const double rate = fusion.fused_detection_probability();
    const double conf = fusion.posterior(k);  // All K sessions agree.
    EXPECT_GT(rate, prev_rate) << "k=" << k;
    EXPECT_GT(conf, prev_conf) << "k=" << k;
    prev_rate = rate;
    prev_conf = conf;
  }
}

TEST(FusionTest, AnyOfRule) {
  const SessionFusion fusion(identical_sessions(3, 0.8));
  const FusionResult r = fusion.fuse({0, 1, 2, 3, 0});
  ASSERT_EQ(r.verdicts.size(), 5u);
  EXPECT_FALSE(r.verdicts[0].present);
  EXPECT_TRUE(r.verdicts[1].present);
  EXPECT_TRUE(r.verdicts[2].present);
  EXPECT_TRUE(r.verdicts[3].present);
  EXPECT_FALSE(r.verdicts[4].present);
  EXPECT_EQ(r.detected, 3u);
}

TEST(FusionTest, MajorityRule) {
  FusionConfig cfg = identical_sessions(3, 0.8, 0.1);
  cfg.rule = FusionRule::kMajority;
  const SessionFusion fusion(cfg);
  const FusionResult r = fusion.fuse({0, 1, 2, 3});
  EXPECT_FALSE(r.verdicts[0].present);
  EXPECT_FALSE(r.verdicts[1].present);  // 1 of 3 is not a majority.
  EXPECT_TRUE(r.verdicts[2].present);
  EXPECT_TRUE(r.verdicts[3].present);
  EXPECT_EQ(r.detected, 2u);
}

TEST(FusionTest, WeightedRuleThresholdsOnPosterior) {
  FusionConfig cfg = identical_sessions(3, 0.9, 0.05);
  cfg.rule = FusionRule::kWeighted;
  cfg.confidence_threshold = 0.95;
  const SessionFusion fusion(cfg);
  const FusionResult r = fusion.fuse({0, 1, 2, 3});
  for (const TagVerdict& v : r.verdicts) {
    EXPECT_EQ(v.present, v.confidence >= cfg.confidence_threshold)
        << "seen=" << v.sessions_seen;
  }
  // Full agreement clears a 95% bar with p=0.9 / f=0.05 detectors.
  EXPECT_TRUE(r.verdicts[3].present);
  EXPECT_FALSE(r.verdicts[0].present);
}

TEST(FusionTest, ZeroFalsePositiveSaturatesOnAnyRead) {
  // f = 0: a single read is decisive — posterior 1 regardless of p.
  const SessionFusion fusion(identical_sessions(3, 0.6, 0.0));
  EXPECT_LT(fusion.posterior(0), 1.0);
  for (std::size_t seen = 1; seen <= 3; ++seen) {
    EXPECT_DOUBLE_EQ(fusion.posterior(seen), 1.0);
  }
}

TEST(FusionTest, VerdictsCoverWholePopulationVector) {
  const SessionFusion fusion(identical_sessions(2, 0.8, 0.01));
  const FusionResult r = fusion.fuse(std::vector<std::size_t>(50, 1));
  ASSERT_EQ(r.verdicts.size(), 50u);
  for (std::size_t i = 0; i < r.verdicts.size(); ++i) {
    EXPECT_EQ(r.verdicts[i].tag, i);
    EXPECT_EQ(r.verdicts[i].sessions_seen, 1u);
  }
}

TEST(FusionTest, InvalidConfigsThrow) {
  EXPECT_THROW(SessionFusion{FusionConfig{}}, ConfigError);
  FusionConfig bad = identical_sessions(2, 0.5);
  bad.sessions[0].false_positive_rate = 0.9;  // Exceeds detection rate.
  EXPECT_THROW(SessionFusion{bad}, ConfigError);
}

// ------------------------------------------- end-to-end: measured vs R_C

TEST(RedundancyModelTest, MeasuredFusedRateMatchesAnalyticalModel) {
  // The ablation's core claim in miniature: per-session detection rates
  // p_k measured from the sweep, fused any-of rate within tolerance of
  // 1 - prod(1 - p_k). Lossy links + 1 round/session keep p_k well below
  // 1 so the product actually discriminates.
  constexpr std::size_t kTags = 40;
  constexpr int kPasses = 300;
  MultiSessionConfig cfg;
  cfg.base = base_config(4.0);
  cfg.sessions = {Session::S1, Session::S2, Session::S3};
  cfg.rounds_per_session = 1;
  cfg.schedule = SessionSchedule::kInterleaved;

  std::array<std::size_t, 3> session_reads{};
  std::size_t fused_reads = 0;
  Rng rng(20070625);
  for (int pass = 0; pass < kPasses; ++pass) {
    MultiSessionInventory inv(cfg);
    Population pop(kTags, 0.55);
    const MultiSessionResult r = inv.run(pop.states, pop.links, 0.0, rng);
    for (std::size_t s = 0; s < 3; ++s) {
      session_reads[s] += r.per_session[s].read_tags.size();
    }
    for (std::size_t c : r.sessions_seen) {
      if (c > 0) ++fused_reads;
    }
  }

  const double denom = static_cast<double>(kTags) * kPasses;
  double miss = 1.0;
  for (std::size_t s = 0; s < 3; ++s) {
    miss *= 1.0 - static_cast<double>(session_reads[s]) / denom;
  }
  const double analytical = 1.0 - miss;
  const double measured = static_cast<double>(fused_reads) / denom;
  // Sessions share the physical channel but draw independent slots; the
  // independence model holds within a small tolerance at this sample size.
  EXPECT_NEAR(measured, analytical, 0.03);
  EXPECT_GT(measured, static_cast<double>(session_reads[0]) / denom)
      << "fusion must beat the best single session";
}

}  // namespace
}  // namespace rfidsim::gen2::reliable
