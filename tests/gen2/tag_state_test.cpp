#include "gen2/tag_state.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rfidsim::gen2 {
namespace {

TEST(TagStateTest, StartsUnpowered) {
  const TagState tag;
  EXPECT_EQ(tag.state(), TagProtocolState::Unpowered);
  EXPECT_FALSE(tag.powered());
}

TEST(TagStateTest, PowerOnEntersReady) {
  TagState tag;
  tag.set_powered(true, 0.0);
  EXPECT_TRUE(tag.powered());
  EXPECT_EQ(tag.state(), TagProtocolState::Ready);
}

TEST(TagStateTest, UnpoweredTagIgnoresQuery) {
  TagState tag;
  Rng rng(1);
  tag.on_query(4, InventoriedFlag::A, Session::S0, 0.0, rng);
  EXPECT_EQ(tag.state(), TagProtocolState::Unpowered);
}

TEST(TagStateTest, QueryWithQZeroRepliesImmediately) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S0, 0.0, rng);
  EXPECT_TRUE(tag.replying());
  EXPECT_EQ(tag.slot_counter(), 0u);
}

TEST(TagStateTest, SlotCounterWithinFrame) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    TagState tag;
    tag.set_powered(true, 0.0);
    tag.on_query(3, InventoriedFlag::A, Session::S0, 0.0, rng);
    EXPECT_LT(tag.slot_counter(), 8u);
  }
}

TEST(TagStateTest, QueryRepCountsDownToReply) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  // Force a draw until nonzero slot.
  for (int attempt = 0; attempt < 100; ++attempt) {
    tag.on_query(4, InventoriedFlag::A, Session::S0, 0.0, rng);
    if (tag.slot_counter() > 0) break;
  }
  ASSERT_GT(tag.slot_counter(), 0u);
  const std::uint32_t slots = tag.slot_counter();
  for (std::uint32_t i = 0; i < slots; ++i) {
    EXPECT_FALSE(tag.replying());
    tag.on_query_rep();
  }
  EXPECT_TRUE(tag.replying());
}

TEST(TagStateTest, AcknowledgeTogglesFlagAndLeavesRound) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.0, rng);
  ASSERT_TRUE(tag.replying());
  tag.on_acknowledged(0.0);
  EXPECT_EQ(tag.state(), TagProtocolState::Acknowledged);
  EXPECT_EQ(tag.flag(0.1, Session::S1), InventoriedFlag::B);
  // A subsequent A-targeted query is ignored.
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.1, rng);
  EXPECT_FALSE(tag.replying());
  // But a B-targeted query re-engages it.
  tag.on_query(0, InventoriedFlag::B, Session::S1, 0.2, rng);
  EXPECT_TRUE(tag.replying());
}

TEST(TagStateTest, AcknowledgeRequiresReplyState) {
  TagState tag;
  tag.set_powered(true, 0.0);
  tag.on_acknowledged(0.0);  // Not replying: no-op.
  EXPECT_EQ(tag.state(), TagProtocolState::Ready);
}

TEST(TagStateTest, ReplyLostRedraws) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S0, 0.0, rng);
  ASSERT_TRUE(tag.replying());
  tag.on_reply_lost(4, rng);
  EXPECT_TRUE(tag.state() == TagProtocolState::Arbitrate ||
              tag.state() == TagProtocolState::Reply);
}

TEST(TagStateTest, PowerLossDropsOutOfRound) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(4, InventoriedFlag::A, Session::S0, 0.0, rng);
  tag.set_powered(false, 1.0);
  EXPECT_EQ(tag.state(), TagProtocolState::Unpowered);
  EXPECT_EQ(tag.slot_counter(), 0u);
}

TEST(TagStateTest, S0FlagResetsOnPowerLoss) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S0, 0.0, rng);
  tag.on_acknowledged(0.0);
  EXPECT_EQ(tag.flag(0.1, Session::S0), InventoriedFlag::B);
  tag.set_powered(false, 0.2);
  // S0 persistence is zero: immediately back to A.
  EXPECT_EQ(tag.flag(0.21, Session::S0), InventoriedFlag::A);
  tag.set_powered(true, 0.3);
  tag.on_query(0, InventoriedFlag::A, Session::S0, 0.3, rng);
  EXPECT_TRUE(tag.replying());
}

TEST(TagStateTest, S1FlagPersistsThroughShortPowerLoss) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.0, rng);
  tag.on_acknowledged(0.0);
  tag.set_powered(false, 0.1);
  // Within the 1 s persistence window: still B.
  EXPECT_EQ(tag.flag(0.5, Session::S1), InventoriedFlag::B);
  // Beyond it: decayed to A.
  EXPECT_EQ(tag.flag(2.0, Session::S1), InventoriedFlag::A);
}

TEST(TagStateTest, S1FlagDecayResolvedAtRepower) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.0, rng);
  tag.on_acknowledged(0.0);
  tag.set_powered(false, 0.1);
  tag.set_powered(true, 5.0);  // Long dark period.
  EXPECT_EQ(tag.flag(5.0, Session::S1), InventoriedFlag::A);
}

TEST(TagStateTest, AcknowledgeTogglesFlagBothWays) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.0, rng);
  tag.on_acknowledged(0.0);
  EXPECT_EQ(tag.flag(0.0, Session::S1), InventoriedFlag::B);
  // A B-targeted singulation toggles back to A (dual-target inventory).
  tag.on_query(0, InventoriedFlag::B, Session::S1, 0.1, rng);
  ASSERT_TRUE(tag.replying());
  tag.on_acknowledged(0.1);
  EXPECT_EQ(tag.flag(0.1, Session::S1), InventoriedFlag::A);
}

TEST(TagStateTest, S1FlagDecaysWhilePowered) {
  // Regression: S1 persistence (0.5-5 s nominal) applies REGARDLESS of
  // power — a continuously-energized tag's B flag still reverts to A once
  // the window elapses. The pre-fix implementation only started the decay
  // timer on power loss, so a tag parked in the read zone never reverted.
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.0, rng);
  tag.on_acknowledged(0.0);
  EXPECT_EQ(tag.flag(0.5, Session::S1), InventoriedFlag::B);
  // Never unpowered, yet past the window the flag has decayed.
  EXPECT_EQ(tag.flag(1.5, Session::S1), InventoriedFlag::A);
  // And an A-targeted query re-engages it without any power cycle.
  tag.on_query(0, InventoriedFlag::A, Session::S1, 1.5, rng);
  EXPECT_TRUE(tag.replying());
}

TEST(TagStateTest, S1DecayClockRestartsOnEachAcknowledge) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S1, 0.0, rng);
  tag.on_acknowledged(0.0);
  // Re-singulated on the B target at 0.8 s: the persistence reference
  // moves, so at 1.5 s the flag (now A) is 0.7 s old, not 1.5 s.
  tag.on_query(0, InventoriedFlag::B, Session::S1, 0.8, rng);
  ASSERT_TRUE(tag.replying());
  tag.on_acknowledged(0.8);
  EXPECT_EQ(tag.flag(1.5, Session::S1), InventoriedFlag::A);
  // S1 decay always lands on A, so the toggled-to-A flag stays A forever.
  EXPECT_EQ(tag.flag(10.0, Session::S1), InventoriedFlag::A);
}

TEST(TagStateTest, SessionsCarryIndependentFlags) {
  // Singulating on S2 must not disturb S1/S3 flags (and vice versa):
  // that independence is what makes multi-session redundancy work.
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S2, 0.0, rng);
  ASSERT_TRUE(tag.replying());
  tag.on_acknowledged(0.0);
  EXPECT_EQ(tag.flag(0.1, Session::S2), InventoriedFlag::B);
  EXPECT_EQ(tag.flag(0.1, Session::S0), InventoriedFlag::A);
  EXPECT_EQ(tag.flag(0.1, Session::S1), InventoriedFlag::A);
  EXPECT_EQ(tag.flag(0.1, Session::S3), InventoriedFlag::A);
  // The S3 pass still finds the tag on target A.
  tag.on_query(0, InventoriedFlag::A, Session::S3, 0.1, rng);
  ASSERT_TRUE(tag.replying());
  tag.on_acknowledged(0.1);
  EXPECT_EQ(tag.flag(0.2, Session::S3), InventoriedFlag::B);
  EXPECT_EQ(tag.flag(0.2, Session::S2), InventoriedFlag::B);
  EXPECT_EQ(tag.flag(0.2, Session::S1), InventoriedFlag::A);
}

TEST(TagStateTest, S2FlagPersistsWhilePoweredAndDecaysDark) {
  TagState tag;
  Rng rng(1);
  tag.set_powered(true, 0.0);
  tag.on_query(0, InventoriedFlag::A, Session::S2, 0.0, rng);
  tag.on_acknowledged(0.0);
  // Powered: indefinite persistence, far beyond the S1 window.
  EXPECT_EQ(tag.flag(100.0, Session::S2), InventoriedFlag::B);
  // Dark within the persistence window: still B.
  tag.set_powered(false, 100.0);
  EXPECT_EQ(tag.flag(101.0, Session::S2), InventoriedFlag::B);
  // Dark past the window: decayed.
  EXPECT_EQ(tag.flag(110.0, Session::S2), InventoriedFlag::A);
  // Repower resolves the decay.
  tag.set_powered(true, 110.0);
  tag.on_query(0, InventoriedFlag::A, Session::S2, 110.0, rng);
  EXPECT_TRUE(tag.replying());
}

TEST(SessionTest, PersistenceConstants) {
  EXPECT_EQ(flag_persistence_s(Session::S0), 0.0);
  EXPECT_GT(flag_persistence_s(Session::S1), 0.0);
  EXPECT_GE(flag_persistence_s(Session::S2), flag_persistence_s(Session::S1));
}

}  // namespace
}  // namespace rfidsim::gen2
