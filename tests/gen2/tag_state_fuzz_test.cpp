// Randomized fuzzing of the tag-side protocol state machine: any sequence
// of power transitions and reader commands must leave the tag in a legal
// state, never crash, and obey the basic protocol invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gen2/tag_state.hpp"

namespace rfidsim::gen2 {
namespace {

class TagStateFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TagStateFuzz, RandomCommandSequencesKeepInvariants) {
  Rng rng(GetParam());
  TagState tag;
  double t = 0.0;
  const Session session = static_cast<Session>(rng.uniform_int(0, 3));

  for (int step = 0; step < 2000; ++step) {
    t += rng.uniform(0.0, 0.1);
    const int q = static_cast<int>(rng.uniform_int(0, 8));
    switch (rng.uniform_int(0, 6)) {
      case 0:
        tag.set_powered(rng.bernoulli(0.7), t);
        break;
      case 1:
        tag.on_query(q, rng.bernoulli(0.5) ? InventoriedFlag::A : InventoriedFlag::B,
                     session, t, rng);
        break;
      case 2:
        tag.on_query_adjust(q, rng);
        break;
      case 3:
        tag.on_query_rep();
        break;
      case 4:
        tag.on_acknowledged(t);
        break;
      case 5:
        tag.on_reply_lost(q, rng);
        break;
      default:
        break;
    }

    // Invariants after every step:
    // 1. Powered flag and state agree.
    if (!tag.powered()) {
      ASSERT_EQ(tag.state(), TagProtocolState::Unpowered);
    } else {
      ASSERT_NE(tag.state(), TagProtocolState::Unpowered);
    }
    // 2. A replying tag has a zero slot counter.
    if (tag.replying()) {
      ASSERT_EQ(tag.slot_counter(), 0u);
    }
    // 3. Slot counter stays within the largest frame ever offered.
    ASSERT_LT(tag.slot_counter(), 1u << 9);
    // 4. The flag query never crashes and returns a valid value.
    const InventoriedFlag f = tag.flag(t, session);
    ASSERT_TRUE(f == InventoriedFlag::A || f == InventoriedFlag::B);
  }
}

// Session-independence fuzz: random commands across ALL FOUR sessions,
// with the one invariant that makes multi-session redundancy sound —
// a session's flag moves A -> B only through an ACK of a round that ran
// on that very session. Decay (B -> A) is time-driven and may happen to
// any session at any step; spontaneous A -> B must never.
TEST_P(TagStateFuzz, CrossSessionFlagIsolation) {
  Rng rng(GetParam() + 0x5e55u);
  TagState tag;
  double t = 0.0;
  std::array<InventoriedFlag, 4> before{};

  for (int step = 0; step < 2000; ++step) {
    // Steps up to 0.3 s apart so S1's 1 s window decays mid-sequence.
    t += rng.uniform(0.0, 0.3);
    const auto session = static_cast<Session>(rng.uniform_int(0, 3));
    const int q = static_cast<int>(rng.uniform_int(0, 6));
    for (int s = 0; s < 4; ++s) before[s] = tag.flag(t, static_cast<Session>(s));

    const int command = static_cast<int>(rng.uniform_int(0, 6));
    switch (command) {
      case 0:
        tag.set_powered(rng.bernoulli(0.7), t);
        break;
      case 1:
        tag.on_query(q, rng.bernoulli(0.5) ? InventoriedFlag::A : InventoriedFlag::B,
                     session, t, rng);
        break;
      case 2:
        tag.on_query_adjust(q, rng);
        break;
      case 3:
        tag.on_query_rep();
        break;
      case 4:
        tag.on_acknowledged(t);
        break;
      case 5:
        tag.on_reply_lost(q, rng);
        break;
      default:
        break;
    }

    for (int s = 0; s < 4; ++s) {
      const InventoriedFlag after = tag.flag(t, static_cast<Session>(s));
      if (before[s] == InventoriedFlag::A && after == InventoriedFlag::B) {
        ASSERT_EQ(command, 4) << "flag set outside an acknowledge";
        ASSERT_EQ(tag.round_session(), static_cast<Session>(s))
            << "S" << s << " flag set by a round on session "
            << static_cast<int>(tag.round_session());
      }
    }
  }
}

// Persistence windows across power cycles, against a reference model of
// the last ACK / power-loss times: the implementation's per-session decay
// must match the spec arithmetic for every session simultaneously.
TEST_P(TagStateFuzz, PersistenceWindowsMatchReferenceModel) {
  Rng rng(GetParam() + 0xd1eu);
  TagState tag;
  double t = 0.0;
  // Reference model state: B-set time per session (-inf = never/decayed
  // to A), plus the time power was last lost.
  std::array<double, 4> set_time{-1e18, -1e18, -1e18, -1e18};
  std::array<bool, 4> is_b{};
  double dark_since = -1e18;
  bool powered = false;

  auto model_flag = [&](int s, double now) {
    if (!is_b[s]) return InventoriedFlag::A;
    const auto session = static_cast<Session>(s);
    const double window = flag_persistence_s(session);
    switch (session) {
      case Session::S0:
        return powered ? InventoriedFlag::B : InventoriedFlag::A;
      case Session::S1:
        return now - set_time[s] > window ? InventoriedFlag::A : InventoriedFlag::B;
      default:  // S2/S3: indefinite while powered, window once dark.
        if (!powered && now - dark_since > window) return InventoriedFlag::A;
        return InventoriedFlag::B;
    }
  };

  for (int step = 0; step < 2000; ++step) {
    t += rng.uniform(0.0, 0.4);
    const auto session = static_cast<Session>(rng.uniform_int(0, 3));
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        const bool on = rng.bernoulli(0.6);
        if (powered && !on) dark_since = t;
        if (!powered && on) {
          // Repower resolves any decay completed while dark.
          for (int s = 0; s < 4; ++s) {
            if (model_flag(s, t) == InventoriedFlag::A) is_b[s] = false;
          }
        }
        powered = on;
        tag.set_powered(on, t);
        break;
      }
      case 1: {
        // Full forced singulation on `session` when its flag matches A.
        tag.on_query(0, InventoriedFlag::A, session, t, rng);
        if (tag.replying()) {
          tag.on_acknowledged(t);
          const int s = static_cast<int>(session);
          is_b[s] = true;
          set_time[s] = t;
        }
        break;
      }
      default:
        break;
    }

    for (int s = 0; s < 4; ++s) {
      ASSERT_EQ(tag.flag(t, static_cast<Session>(s)), model_flag(s, t))
          << "session " << s << " at t=" << t << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TagStateFuzz, ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace rfidsim::gen2
