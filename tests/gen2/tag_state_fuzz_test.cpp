// Randomized fuzzing of the tag-side protocol state machine: any sequence
// of power transitions and reader commands must leave the tag in a legal
// state, never crash, and obey the basic protocol invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gen2/tag_state.hpp"

namespace rfidsim::gen2 {
namespace {

class TagStateFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TagStateFuzz, RandomCommandSequencesKeepInvariants) {
  Rng rng(GetParam());
  TagState tag;
  double t = 0.0;
  const Session session = static_cast<Session>(rng.uniform_int(0, 3));

  for (int step = 0; step < 2000; ++step) {
    t += rng.uniform(0.0, 0.1);
    const int q = static_cast<int>(rng.uniform_int(0, 8));
    switch (rng.uniform_int(0, 6)) {
      case 0:
        tag.set_powered(rng.bernoulli(0.7), t, session);
        break;
      case 1:
        tag.on_query(q, rng.bernoulli(0.5) ? InventoriedFlag::A : InventoriedFlag::B,
                     session, t, rng);
        break;
      case 2:
        tag.on_query_adjust(q, rng);
        break;
      case 3:
        tag.on_query_rep();
        break;
      case 4:
        tag.on_acknowledged(t);
        break;
      case 5:
        tag.on_reply_lost(q, rng);
        break;
      default:
        break;
    }

    // Invariants after every step:
    // 1. Powered flag and state agree.
    if (!tag.powered()) {
      ASSERT_EQ(tag.state(), TagProtocolState::Unpowered);
    } else {
      ASSERT_NE(tag.state(), TagProtocolState::Unpowered);
    }
    // 2. A replying tag has a zero slot counter.
    if (tag.replying()) {
      ASSERT_EQ(tag.slot_counter(), 0u);
    }
    // 3. Slot counter stays within the largest frame ever offered.
    ASSERT_LT(tag.slot_counter(), 1u << 9);
    // 4. The flag query never crashes and returns a valid value.
    const InventoriedFlag f = tag.flag(t, session);
    ASSERT_TRUE(f == InventoriedFlag::A || f == InventoriedFlag::B);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TagStateFuzz, ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace rfidsim::gen2
