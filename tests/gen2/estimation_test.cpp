#include "gen2/estimation.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rfidsim::gen2 {
namespace {

FrameObservation obs(std::size_t frame, std::size_t empty, std::size_t single,
                     std::size_t collision) {
  FrameObservation o;
  o.frame_size = frame;
  o.empty = empty;
  o.singleton = single;
  o.collision = collision;
  return o;
}

TEST(EstimationTest, LowerBoundCountsCollisionsTwice) {
  EXPECT_EQ(estimate_lower_bound(obs(16, 8, 5, 3)), 11u);
  EXPECT_EQ(estimate_lower_bound(obs(16, 16, 0, 0)), 0u);
}

TEST(EstimationTest, CollisionFactorUsesVogtConstant) {
  EXPECT_NEAR(estimate_collision_factor(obs(16, 8, 5, 3)), 5.0 + 2.3922 * 3.0, 1e-9);
}

TEST(EstimationTest, EmptyBasedEstimateInvertsOccupancy) {
  // 100 tags in 128 slots: E[empty] = 128 * (1 - 1/128)^100 ~ 58.4.
  const double n = estimate_from_empties(obs(128, 58, 0, 0));
  EXPECT_NEAR(n, 100.0, 3.0);
}

TEST(EstimationTest, SaturatedFrameFallsBackToCollisionFactor) {
  const FrameObservation saturated = obs(16, 0, 2, 14);
  EXPECT_DOUBLE_EQ(estimate_from_empties(saturated),
                   estimate_collision_factor(saturated));
}

TEST(EstimationTest, AllEmptyFrameFallsBack) {
  const FrameObservation empty = obs(16, 16, 0, 0);
  EXPECT_DOUBLE_EQ(estimate_from_empties(empty), estimate_collision_factor(empty));
}

TEST(EstimationTest, EstimateAtLeastLowerBound) {
  const FrameObservation o = obs(64, 30, 20, 14);
  EXPECT_GE(estimate_from_empties(o), static_cast<double>(estimate_lower_bound(o)));
}

TEST(EstimationTest, RecommendedQTracksPopulation) {
  EXPECT_EQ(recommended_q(1.0), 0);
  EXPECT_EQ(recommended_q(16.0), 4);
  EXPECT_EQ(recommended_q(100.0), 7);
  EXPECT_EQ(recommended_q(1e9), 15);   // Clamped.
  EXPECT_EQ(recommended_q(0.0), 0);    // Degenerate.
  EXPECT_EQ(recommended_q(100.0, 5, 6), 6);
}

TEST(EstimationTest, FromRoundMapsSlotCounts) {
  InventoryRoundResult round;
  round.total_slots = 32;
  round.empty_slots = 20;
  round.success_slots = 9;
  round.collision_slots = 3;
  const FrameObservation o = FrameObservation::from_round(round);
  EXPECT_EQ(o.frame_size, 32u);
  EXPECT_EQ(o.empty, 20u);
  EXPECT_EQ(o.singleton, 9u);
  EXPECT_EQ(o.collision, 3u);
}

/// Monte Carlo property: simulate balls-in-bins frames and check both
/// estimators land near the true population across a sweep of loads.
class EstimationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EstimationSweep, EstimatesTrackTruePopulation) {
  const std::size_t true_n = GetParam();
  const std::size_t frame = 256;
  Rng rng(1234 + true_n);

  double sum_empty_est = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> bins(frame, 0);
    for (std::size_t i = 0; i < true_n; ++i) {
      ++bins[static_cast<std::size_t>(rng.uniform_int(0, frame - 1))];
    }
    FrameObservation o;
    o.frame_size = frame;
    for (int b : bins) {
      if (b == 0) ++o.empty;
      else if (b == 1) ++o.singleton;
      else ++o.collision;
    }
    sum_empty_est += estimate_from_empties(o);
  }
  const double mean_est = sum_empty_est / trials;
  EXPECT_NEAR(mean_est, static_cast<double>(true_n),
              0.15 * static_cast<double>(true_n) + 3.0);
}

INSTANTIATE_TEST_SUITE_P(Loads, EstimationSweep,
                         ::testing::Values<std::size_t>(5, 20, 80, 200, 400));

}  // namespace
}  // namespace rfidsim::gen2
