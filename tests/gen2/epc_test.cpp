#include "gen2/epc.hpp"

#include <gtest/gtest.h>

namespace rfidsim::gen2 {
namespace {

TEST(EpcTest, DefaultIsZero) {
  const Epc e;
  EXPECT_EQ(e.to_hex(), "000000000000000000000000");
}

TEST(EpcTest, FromSerial) {
  const Epc e = Epc::from_serial(0xFF);
  EXPECT_EQ(e.hi, 0u);
  EXPECT_EQ(e.lo, 0xFFu);
  EXPECT_EQ(e.to_hex(), "0000000000000000000000FF");
}

TEST(EpcTest, HexRendersAllNibbles) {
  const Epc e{0x12345678, 0x9ABCDEF012345678ULL};
  EXPECT_EQ(e.to_hex(), "123456789ABCDEF012345678");
  EXPECT_EQ(e.to_hex().size(), 24u);
}

TEST(EpcTest, Ordering) {
  EXPECT_LT(Epc::from_serial(1), Epc::from_serial(2));
  EXPECT_LT((Epc{0, 0xFFFFFFFFFFFFFFFFULL}), (Epc{1, 0}));
  EXPECT_EQ(Epc::from_serial(7), Epc::from_serial(7));
}

}  // namespace
}  // namespace rfidsim::gen2
