#include "wire/batch_codec.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "wire/wire.hpp"

namespace rfidsim::wire {
namespace {

/// A batch that looks like real portal traffic: a small tag population
/// re-read many times, monotone timestamps, jittery RSSI.
EventBatch make_batch(Rng& rng, std::size_t events, std::size_t tag_pool) {
  EventBatch batch;
  batch.facility = static_cast<std::uint32_t>(rng.uniform_int(0, 40));
  batch.sent_time_s = rng.uniform(0.0, 1000.0);
  batch.arrival_time_s = batch.sent_time_s + rng.uniform(0.0, 2.0);
  double t = batch.sent_time_s - 1.0;
  for (std::size_t i = 0; i < events; ++i) {
    sys::ReadEvent ev;
    ev.tag = scene::TagId{
        static_cast<std::uint64_t>(rng.uniform_int(1, static_cast<std::int64_t>(tag_pool)))};
    t += rng.uniform(0.0, 0.01);
    ev.time_s = t;
    ev.reader_index = static_cast<std::size_t>(rng.uniform_int(0, 3));
    ev.antenna_index = static_cast<std::size_t>(rng.uniform_int(0, 7));
    ev.rssi = DbmPower{-60.0 + rng.gaussian(0.0, 4.0)};
    batch.events.push_back(ev);
  }
  return batch;
}

TEST(BatchCodecTest, RoundTripsBitForBit) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const EventBatch batch = make_batch(rng, 1 + static_cast<std::size_t>(trial) * 3, 16);
    const std::vector<std::uint8_t> payload = encode_event_batch(batch);
    const auto decoded = decode_event_batch(payload.data(), payload.size());
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_TRUE(*decoded == batch) << "trial " << trial;
  }
}

TEST(BatchCodecTest, RoundTripsEmptyBatch) {
  EventBatch batch;
  batch.facility = 7;
  batch.sent_time_s = 3.25;
  batch.arrival_time_s = 3.5;
  const std::vector<std::uint8_t> payload = encode_event_batch(batch);
  const auto decoded = decode_event_batch(payload.data(), payload.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == batch);
}

TEST(BatchCodecTest, RoundTripsHostileDoubles) {
  // Bit-pattern delta encoding must be lossless for *any* double, not just
  // friendly ones: negative zero, denormals, infinities, huge magnitudes.
  EventBatch batch;
  batch.facility = 1;
  batch.sent_time_s = -0.0;
  batch.arrival_time_s = std::numeric_limits<double>::infinity();
  const double times[] = {0.0, -0.0, 1e-308, -1e-308, 1e308,
                          std::numeric_limits<double>::denorm_min(),
                          -std::numeric_limits<double>::infinity()};
  std::uint64_t tag = 1;
  for (const double t : times) {
    sys::ReadEvent ev;
    ev.tag = scene::TagId{tag++};
    ev.time_s = t;
    ev.rssi = DbmPower{-1e30};
    batch.events.push_back(ev);
  }
  const std::vector<std::uint8_t> payload = encode_event_batch(batch);
  const auto decoded = decode_event_batch(payload.data(), payload.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == batch);
}

TEST(BatchCodecTest, DictionaryCompressesRepeatedTags) {
  // 256 re-reads of 4 tags: the EPC dictionary pays for each tag value
  // once, so the pooled batch must encode well below the same events
  // carrying 256 distinct wide EPCs — the dictionary is the point.
  Rng rng(7);
  const EventBatch batch = make_batch(rng, 256, 4);
  const std::vector<std::uint8_t> pooled = encode_event_batch(batch);
  EventBatch spread = batch;
  for (std::size_t i = 0; i < spread.events.size(); ++i) {
    // 2^54-spaced EPCs: even delta-encoded, each dictionary entry costs
    // ~8 varint bytes, where the 4-tag pool pays for 4 entries total.
    spread.events[i].tag =
        scene::TagId{0x0100000000000000ull + i * 0x0040000000000000ull};
  }
  const std::vector<std::uint8_t> wide = encode_event_batch(spread);
  EXPECT_LT(pooled.size() + 1024, wide.size());
}

TEST(BatchCodecTest, FrameRoundTripThroughDecoder) {
  Rng rng(11);
  const EventBatch batch = make_batch(rng, 32, 8);
  const std::vector<std::uint8_t> frame = encode_event_batch_frame(batch);
  const DecodeResult res = next_frame(frame, 0);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.frame.opcode, OpCode::kEventBatch);
  const auto decoded = decode_event_batch(res.frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == batch);
}

TEST(BatchCodecTest, RejectsTrailingBytes) {
  Rng rng(13);
  const EventBatch batch = make_batch(rng, 8, 4);
  std::vector<std::uint8_t> payload = encode_event_batch(batch);
  payload.push_back(0x00);
  EXPECT_FALSE(decode_event_batch(payload.data(), payload.size()).has_value());
}

TEST(BatchCodecTest, RejectsEveryTruncation) {
  Rng rng(17);
  const EventBatch batch = make_batch(rng, 16, 6);
  const std::vector<std::uint8_t> payload = encode_event_batch(batch);
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    EXPECT_FALSE(decode_event_batch(payload.data(), keep).has_value())
        << "accepted a " << keep << "-byte prefix of " << payload.size();
  }
}

TEST(BatchCodecTest, StrictDecodeNeverCrashesOnBitFlips) {
  // The payload decoder (below the CRC — this is what a CRC collision
  // would expose it to) must classify or survive every single-bit flip,
  // never crash. Run under ASan/UBSan in CI.
  Rng rng(19);
  const EventBatch batch = make_batch(rng, 24, 8);
  const std::vector<std::uint8_t> payload = encode_event_batch(batch);
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = payload;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (!decode_event_batch(damaged.data(), damaged.size()).has_value()) {
      ++rejected;
    }
  }
  // Most flips land in varints/counts and must be rejected; flips inside a
  // raw double bit pattern decode to a different-but-valid batch (that is
  // the CRC's job to catch, one layer up).
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace rfidsim::wire
