#include "wire/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

namespace rfidsim::wire {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::strlen(s));
}

TEST(Crc16Test, MatchesCcittFalseReferenceVectors) {
  // The canonical CRC-16/CCITT-FALSE check value (poly 0x1021, init
  // 0xFFFF) over "123456789" — the vector every published table lists.
  EXPECT_EQ(crc16(bytes_of("123456789")), 0x29B1);
  EXPECT_EQ(crc16(bytes_of("")), 0xFFFF);  // Init value untouched.
  EXPECT_EQ(crc16(bytes_of("A")), 0xB915);
}

TEST(Crc16Test, DetectsEverySingleBitError) {
  const std::vector<std::uint8_t> data = bytes_of("reliability");
  const std::uint16_t good = crc16(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = data;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc16(damaged), good) << "missed flip at bit " << bit;
  }
}

TEST(FrameTest, RoundTripsPayloadAndMetadata) {
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x00};
  const std::vector<std::uint8_t> frame =
      make_frame(OpCode::kEventBatch, payload);
  ASSERT_EQ(frame.size(), payload.size() + kFrameOverhead);
  EXPECT_EQ(frame[0], kSoh);

  const DecodeResult res = next_frame(frame, 0);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.frame.opcode, OpCode::kEventBatch);
  EXPECT_EQ(res.frame.version, kWireVersion);
  ASSERT_EQ(res.frame.payload_size, payload.size());
  EXPECT_EQ(std::memcmp(res.frame.payload, payload.data(), payload.size()), 0);
  EXPECT_EQ(res.next_offset, frame.size());
}

TEST(FrameTest, EmptyPayloadIsAValidFrame) {
  const std::vector<std::uint8_t> frame = make_frame(OpCode::kCheckpointEnd, {});
  const DecodeResult res = next_frame(frame, 0);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.frame.payload_size, 0u);
}

TEST(FrameTest, WalksAStreamOfBackToBackFrames) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, OpCode::kEventBatch, {1, 2, 3});
  append_frame(stream, OpCode::kCheckpointHeader, {});
  append_frame(stream, OpCode::kCheckpointEnd, {9});

  std::size_t offset = 0;
  std::vector<OpCode> seen;
  while (offset < stream.size()) {
    const DecodeResult res = next_frame(stream, offset);
    ASSERT_TRUE(res.ok) << "at offset " << offset;
    seen.push_back(res.frame.opcode);
    offset = res.next_offset;
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], OpCode::kEventBatch);
  EXPECT_EQ(seen[1], OpCode::kCheckpointHeader);
  EXPECT_EQ(seen[2], OpCode::kCheckpointEnd);
}

TEST(FrameTest, ClassifiesBadMagic) {
  std::vector<std::uint8_t> frame = make_frame(OpCode::kEventBatch, {1, 2});
  frame[0] = 0x55;
  const DecodeResult res = next_frame(frame, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.error, DecodeErrorKind::kBadMagic);
  EXPECT_STREQ(decode_error_name(res.error), "bad_magic");
}

TEST(FrameTest, ClassifiesTruncation) {
  const std::vector<std::uint8_t> full = make_frame(OpCode::kEventBatch, {1, 2, 3});
  for (std::size_t keep = 1; keep < full.size(); ++keep) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<std::ptrdiff_t>(keep));
    const DecodeResult res = next_frame(cut, 0);
    ASSERT_FALSE(res.ok) << "kept " << keep << " bytes";
    EXPECT_EQ(res.error, DecodeErrorKind::kTruncated);
    // Resync has nowhere to go in a truncated buffer with one SOH.
    EXPECT_LE(res.next_offset, cut.size());
  }
}

TEST(FrameTest, ClassifiesBadLength) {
  std::vector<std::uint8_t> frame = make_frame(OpCode::kEventBatch, {1});
  // Length field is bytes 1..4 (LE); forge one beyond kMaxPayloadBytes.
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(frame.data() + 1, &huge, sizeof huge);
  const DecodeResult res = next_frame(frame, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.error, DecodeErrorKind::kBadLength);
}

TEST(FrameTest, ClassifiesBadCrc) {
  std::vector<std::uint8_t> frame = make_frame(OpCode::kEventBatch, {7, 8, 9});
  frame[frame.size() - 4] ^= 0x01;  // One payload bit.
  const DecodeResult res = next_frame(frame, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.error, DecodeErrorKind::kBadCrc);
}

TEST(FrameTest, ClassifiesUnknownVersionAndOpcode) {
  const std::vector<std::uint8_t> v =
      make_frame(OpCode::kEventBatch, {1}, kWireVersion + 1);
  const DecodeResult rv = next_frame(v, 0);
  ASSERT_FALSE(rv.ok);
  EXPECT_EQ(rv.error, DecodeErrorKind::kUnknownVersion);
  // The envelope passed CRC, so resync can safely skip the whole frame.
  EXPECT_EQ(rv.next_offset, v.size());

  const std::vector<std::uint8_t> o =
      make_frame(static_cast<OpCode>(0x7f), {1});
  const DecodeResult ro = next_frame(o, 0);
  ASSERT_FALSE(ro.ok);
  EXPECT_EQ(ro.error, DecodeErrorKind::kUnknownOpcode);
  EXPECT_EQ(ro.next_offset, o.size());
}

TEST(FrameTest, ResynchronizesAfterACorruptFrame) {
  // garbage + damaged frame + good frame: the decoder must surface the
  // failure, then find the good frame by hunting for the next SOH.
  std::vector<std::uint8_t> stream = {0x42, 0x42, 0x42};
  std::vector<std::uint8_t> damaged = make_frame(OpCode::kEventBatch, {1, 2, 3, 4});
  damaged[7] ^= 0x10;  // Payload bit -> bad CRC.
  stream.insert(stream.end(), damaged.begin(), damaged.end());
  const std::size_t good_at = stream.size();
  append_frame(stream, OpCode::kEventBatch, {0xAA, 0xBB});

  std::size_t offset = 0;
  bool found_good = false;
  std::size_t failures = 0;
  while (offset < stream.size()) {
    const DecodeResult res = next_frame(stream, offset);
    if (res.ok) {
      EXPECT_EQ(offset, good_at);
      ASSERT_EQ(res.frame.payload_size, 2u);
      EXPECT_EQ(res.frame.payload[0], 0xAA);
      found_good = true;
      offset = res.next_offset;
      continue;
    }
    ++failures;
    ASSERT_GT(res.next_offset, offset) << "resync must make progress";
    offset = res.next_offset;
  }
  EXPECT_TRUE(found_good);
  EXPECT_GE(failures, 1u);
  EXPECT_LE(failures, 4u);  // One corrupt frame costs a few scans, not the stream.
}

TEST(FrameTest, EverySingleBitFlipIsDetected) {
  // CRC-16 catches all 1-bit errors; SOH flips are bad magic; CRC-field
  // flips mismatch. No single-bit flip may yield a *different* valid frame.
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40, 50, 60};
  const std::vector<std::uint8_t> frame = make_frame(OpCode::kEventBatch, payload);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = frame;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const DecodeResult res = next_frame(damaged, 0);
    EXPECT_FALSE(res.ok) << "undetected flip at bit " << bit;
  }
}

TEST(FrameTest, RejectsOversizedPayloadAtEncode) {
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> too_big(kMaxPayloadBytes + 1, 0);
  EXPECT_ANY_THROW(append_frame(out, OpCode::kEventBatch, too_big));
}

TEST(VarintTest, RoundTripsEdgeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0x7fffffffULL,
                                  0xffffffffULL,
                                  0x7fffffffffffffffULL,
                                  0xffffffffffffffffULL};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    Reader r{buf.data(), buf.size(), 0};
    std::uint64_t got = 0;
    ASSERT_TRUE(r.get_varint(got));
    EXPECT_EQ(got, v);
    EXPECT_TRUE(r.done());
  }
}

TEST(VarintTest, SignedZigzagRoundTrips) {
  const std::int64_t values[] = {0, -1, 1, -2, 63, -64, 1'000'000,
                                 -1'000'000,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint_signed(buf, v);
    Reader r{buf.data(), buf.size(), 0};
    std::int64_t got = 0;
    ASSERT_TRUE(r.get_varint_signed(got));
    EXPECT_EQ(got, v);
  }
}

TEST(VarintTest, RejectsTruncatedAndOverlongInput) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0xffffffffffffffffULL);
  buf.pop_back();  // Continuation bit says more, buffer says no.
  Reader r{buf.data(), buf.size(), 0};
  std::uint64_t v = 0;
  EXPECT_FALSE(r.get_varint(v));

  // 11 continuation bytes: more than a u64 can carry.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  Reader r2{overlong.data(), overlong.size(), 0};
  EXPECT_FALSE(r2.get_varint(v));
}

}  // namespace
}  // namespace rfidsim::wire
