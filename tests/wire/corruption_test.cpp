#include "fault/wire_corruptor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "wire/batch_codec.hpp"
#include "wire/wire.hpp"

namespace rfidsim::fault {
namespace {

std::vector<std::uint8_t> test_frame(std::size_t payload_bytes) {
  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return wire::make_frame(wire::OpCode::kEventBatch, payload);
}

TEST(WireCorruptorTest, DefaultConfigIsStrictIdentityAndDrawsNothing) {
  WireCorruptor corruptor;
  ASSERT_TRUE(corruptor.identity());
  Rng rng(42), untouched(42);
  std::vector<std::uint8_t> frame = test_frame(64);
  const std::vector<std::uint8_t> original = frame;
  EXPECT_FALSE(corruptor.corrupt_frame(frame, rng));
  EXPECT_EQ(frame, original);
  // Load-bearing for digest contracts: the identity path must not consume
  // a single draw, so downstream RNG sequences are unchanged.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(WireCorruptorTest, DeterministicGivenSeed) {
  WireCorruptorConfig cfg;
  cfg.bit_error_rate = 1e-3;
  cfg.burst_probability = 0.1;
  cfg.truncate_probability = 0.05;
  WireCorruptor c1(cfg), c2(cfg);
  Rng a(7), b(7);
  for (int i = 0; i < 32; ++i) {
    std::vector<std::uint8_t> f1 = test_frame(256);
    std::vector<std::uint8_t> f2 = test_frame(256);
    c1.corrupt_frame(f1, a);
    c2.corrupt_frame(f2, b);
    EXPECT_EQ(f1, f2) << "frame " << i;
  }
  EXPECT_EQ(c1.stats().bits_flipped, c2.stats().bits_flipped);
  EXPECT_EQ(c1.stats().frames_damaged, c2.stats().frames_damaged);
}

TEST(WireCorruptorTest, BitErrorRateFlipsRoughlyTheExpectedCount) {
  WireCorruptorConfig cfg;
  cfg.bit_error_rate = 1e-3;
  WireCorruptor corruptor(cfg);
  Rng rng(123);
  const std::size_t frames = 400;
  const std::size_t frame_bytes = 512 + wire::kFrameOverhead;
  for (std::size_t i = 0; i < frames; ++i) {
    std::vector<std::uint8_t> frame = test_frame(512);
    corruptor.corrupt_frame(frame, rng);
  }
  const double expected =
      cfg.bit_error_rate * static_cast<double>(frames * frame_bytes * 8);
  const double got = static_cast<double>(corruptor.stats().bits_flipped);
  // ~1640 expected flips; 4 sigma ~ 160.
  EXPECT_NEAR(got, expected, 4.0 * std::sqrt(expected));
}

TEST(WireCorruptorTest, TruncationAlwaysLeavesAtLeastOneByte) {
  WireCorruptorConfig cfg;
  cfg.truncate_probability = 1.0;
  WireCorruptor corruptor(cfg);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> frame = test_frame(16);
    const std::size_t before = frame.size();
    corruptor.corrupt_frame(frame, rng);
    EXPECT_GE(frame.size(), 1u);
    EXPECT_LT(frame.size(), before);
  }
  EXPECT_EQ(corruptor.stats().truncated, 100u);
}

TEST(WireCorruptorTest, StreamPassDuplicatesAndReorders) {
  WireCorruptorConfig cfg;
  cfg.duplicate_probability = 0.5;
  WireCorruptor corruptor(cfg);
  Rng rng(9);
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t i = 0; i < 64; ++i) frames.push_back(test_frame(8 + i));
  const auto out = corruptor.corrupt_stream(frames, rng);
  EXPECT_GT(out.size(), frames.size());
  EXPECT_EQ(out.size(), frames.size() + corruptor.stats().duplicated);

  WireCorruptorConfig rcfg;
  rcfg.reorder_probability = 0.5;
  WireCorruptor reorderer(rcfg);
  const auto swapped = reorderer.corrupt_stream(frames, rng);
  EXPECT_EQ(swapped.size(), frames.size());
  EXPECT_GT(reorderer.stats().reordered, 0u);
}

// --- Detection: every injected fault class must be *classified* by the
// decoder, not merely break something. ---

TEST(WireDetectionTest, TruncationIsClassifiedAsTruncated) {
  WireCorruptorConfig cfg;
  cfg.truncate_probability = 1.0;
  WireCorruptor corruptor(cfg);
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> frame = test_frame(64);
    corruptor.corrupt_frame(frame, rng);
    const wire::DecodeResult res = wire::next_frame(frame, 0);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.error, wire::DecodeErrorKind::kTruncated) << "iteration " << i;
  }
}

TEST(WireDetectionTest, BurstsAndFlipsAreAlwaysDetected) {
  WireCorruptorConfig cfg;
  cfg.bit_error_rate = 5e-4;
  cfg.burst_probability = 0.3;
  WireCorruptor corruptor(cfg);
  Rng rng(22);
  std::size_t damaged = 0, detected = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> frame = test_frame(256);
    const std::vector<std::uint8_t> original = frame;
    if (!corruptor.corrupt_frame(frame, rng)) continue;
    if (frame == original) continue;  // Burst noise can rewrite a byte to itself.
    ++damaged;
    const wire::DecodeResult res = wire::next_frame(frame, 0);
    if (!res.ok) {
      ++detected;
      continue;
    }
    // A decode that "succeeds" must be byte-identical payload — anything
    // else is an undetected corruption, which CRC-16 makes astronomically
    // unlikely at these damage rates.
    ASSERT_EQ(res.frame.payload_size, 256u);
  }
  ASSERT_GT(damaged, 50u);
  EXPECT_EQ(detected, damaged);
}

TEST(WireDetectionTest, EveryOffsetSingleBitFlipOnRealBatchIsDetected) {
  // The acceptance bar: zero corrupt frames may reach the store
  // undetected. For single-bit damage CRC-16 guarantees it — prove it at
  // every bit offset of a real encoded batch frame.
  wire::EventBatch batch;
  batch.facility = 3;
  batch.sent_time_s = 12.5;
  for (std::uint64_t i = 0; i < 24; ++i) {
    sys::ReadEvent ev;
    ev.tag = scene::TagId{1 + (i % 6)};
    ev.time_s = 12.0 + 0.02 * static_cast<double>(i);
    ev.reader_index = i % 3;
    batch.events.push_back(ev);
  }
  const std::vector<std::uint8_t> frame = wire::encode_event_batch_frame(batch);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = frame;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const wire::DecodeResult res = wire::next_frame(damaged, 0);
    EXPECT_FALSE(res.ok) << "undetected flip at bit " << bit;
  }
}

TEST(WireDetectionTest, DecoderNeverCrashesOnHeavilyDamagedFrames) {
  // Fuzz-style hammering: arbitrary damage, decoder must classify and
  // resynchronize without reading out of bounds (ASan-checked in CI).
  WireCorruptorConfig cfg;
  cfg.bit_error_rate = 0.02;
  cfg.burst_probability = 0.5;
  cfg.burst_max_bytes = 32;
  cfg.truncate_probability = 0.3;
  WireCorruptor corruptor(cfg);
  Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> frame = test_frame(1 + (i % 300));
    corruptor.corrupt_frame(frame, rng);
    std::size_t offset = 0;
    while (offset < frame.size()) {
      const wire::DecodeResult res = wire::next_frame(frame, offset);
      if (res.ok) {
        const auto decoded = wire::decode_event_batch(res.frame);
        (void)decoded;  // May or may not parse; must not crash.
      }
      ASSERT_GT(res.next_offset, offset);
      offset = res.next_offset;
    }
  }
}

}  // namespace
}  // namespace rfidsim::fault
