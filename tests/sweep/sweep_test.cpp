// Unit and determinism tests for rfidsim::sweep — the thread pool, the
// per-cell RNG derivation, and parallel_for's contract that thread count
// can change wall-clock only, never results.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace rfidsim::sweep {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPoolTest, SurvivesMultipleBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 40; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 40 * (batch + 1));
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(CellRngTest, IsAPureFunctionOfSeedAndCell) {
  for (const std::uint64_t seed : {0ull, 1ull, 20070625ull}) {
    for (std::uint64_t cell = 0; cell < 16; ++cell) {
      Rng a = cell_rng(seed, cell);
      Rng b = cell_rng(seed, cell);
      for (int i = 0; i < 32; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64()) << "seed " << seed << " cell " << cell;
      }
    }
  }
}

TEST(CellRngTest, MatchesTheSerialForkConvention) {
  // run_repeated derives repetition i's generator as Rng(seed).fork(i);
  // byte-identity between serial and sweep paths rests on this equality.
  for (std::uint64_t cell = 0; cell < 8; ++cell) {
    Rng serial = Rng(321).fork(cell);
    Rng sweep = cell_rng(321, cell);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(serial.next_u64(), sweep.next_u64());
    }
  }
}

TEST(CellRngTest, DistinctCellsGetDistinctStreams) {
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    first_draws.insert(cell_rng(99, cell).next_u64());
  }
  EXPECT_EQ(first_draws.size(), 64u);
}

TEST(CellRngTest, GridCellRngNestsTwoForkLevels) {
  Rng direct = grid_cell_rng(7, 3, 5);
  Rng nested = cell_rng(cell_rng(7, 3).seed(), 5);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(direct.next_u64(), nested.next_u64());
  }
  // Scenario and repetition axes must be independent: transposing indices
  // lands in a different stream.
  EXPECT_NE(grid_cell_rng(7, 5, 3).next_u64(), grid_cell_rng(7, 3, 5).next_u64());
}

TEST(ParallelForTest, EveryCellRunsExactlyOnce) {
  constexpr std::size_t kCells = 137;
  std::vector<std::atomic<int>> hits(kCells);
  parallel_for(kCells, SweepOptions{.threads = 4}, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  // The determinism contract, end to end: per-cell RNG consumption through
  // any thread count produces the identical result vector.
  constexpr std::size_t kCells = 64;
  auto run_with = [&](std::size_t threads) {
    std::vector<std::uint64_t> out(kCells);
    parallel_for(kCells, SweepOptions{.threads = threads}, [&](std::size_t i) {
      Rng rng = cell_rng(20070625, i);
      std::uint64_t acc = 0;
      for (int d = 0; d < 100; ++d) acc ^= rng.next_u64();
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run_with(1);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(3));
  EXPECT_EQ(serial, run_with(8));
  EXPECT_EQ(serial, run_with(0));  // Shared engine, hardware concurrency.
}

TEST(ParallelForTest, ZeroAndOneCellsAreHandled) {
  int calls = 0;
  parallel_for(0, SweepOptions{.threads = 4}, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, SweepOptions{.threads = 4}, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, LaneAwareSetupAndLaneBounds) {
  constexpr std::size_t kCells = 50;
  std::size_t lanes_seen = 0;
  std::mutex mu;
  std::vector<int> hits(kCells, 0);
  std::set<std::size_t> lanes_used;
  parallel_for(
      kCells, SweepOptions{.threads = 4},
      [&](std::size_t lanes) { lanes_seen = lanes; },
      [&](std::size_t cell, std::size_t lane) {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_LT(lane, lanes_seen);
        ++hits[cell];
        lanes_used.insert(lane);
      });
  ASSERT_GE(lanes_seen, 1u);
  ASSERT_LE(lanes_seen, 4u);
  EXPECT_GE(lanes_used.size(), 1u);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(hits[i], 1) << "cell " << i;
  }
}

TEST(ParallelForTest, LaneCountNeverExceedsCellCount) {
  parallel_for(
      2, SweepOptions{.threads = 16},
      [&](std::size_t lanes) { EXPECT_LE(lanes, 2u); },
      [](std::size_t, std::size_t) {});
}

TEST(SweepEngineTest, SingleThreadEngineHasNoPool) {
  SweepEngine engine(SweepOptions{.threads = 1});
  EXPECT_EQ(engine.thread_count(), 1u);
  std::vector<std::size_t> order;
  engine.run(5, [&](std::size_t i) { order.push_back(i); });
  // The inline path runs cells in index order on the calling thread.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepEngineTest, EngineIsReusableAcrossSweeps) {
  SweepEngine engine(SweepOptions{.threads = 3});
  for (int sweep = 0; sweep < 4; ++sweep) {
    std::atomic<std::size_t> sum{0};
    engine.run(100, [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(SweepEngineTest, SharedEngineUsesHardwareConcurrency) {
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(shared_engine().thread_count(), hw);
  EXPECT_EQ(&shared_engine(), &shared_engine());
}

}  // namespace
}  // namespace rfidsim::sweep
