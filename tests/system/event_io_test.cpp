#include "system/event_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace rfidsim::sys {
namespace {

ReadEvent event(double t, std::uint64_t tag, std::size_t reader, std::size_t antenna,
                double rssi) {
  ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  ev.rssi = DbmPower(rssi);
  return ev;
}

TEST(EventIoTest, EmptyLogIsHeaderOnly) {
  EXPECT_EQ(to_csv({}), "time_s,tag,reader,antenna,rssi_dbm\n");
}

TEST(EventIoTest, WritesOneRowPerEvent) {
  const EventLog log{event(1.472, 1001, 0, 1, -61.7)};
  EXPECT_EQ(to_csv(log),
            "time_s,tag,reader,antenna,rssi_dbm\n"
            "1.472000,1001,0,1,-61.70\n");
}

TEST(EventIoTest, RoundTripsExactly) {
  const EventLog log{
      event(0.25, 1, 0, 0, -40.0),
      event(1.5, 99, 1, 3, -65.25),
      event(2.0, 18446744073709551615ULL, 0, 0, -80.5),
  };
  const EventLog parsed = from_csv(to_csv(log));
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed[i].tag, log[i].tag);
    EXPECT_EQ(parsed[i].reader_index, log[i].reader_index);
    EXPECT_EQ(parsed[i].antenna_index, log[i].antenna_index);
    EXPECT_NEAR(parsed[i].time_s, log[i].time_s, 1e-6);
    EXPECT_NEAR(parsed[i].rssi.value(), log[i].rssi.value(), 0.01);
  }
}

TEST(EventIoTest, ToleratesCrLfAndBlankLines) {
  const std::string csv =
      "time_s,tag,reader,antenna,rssi_dbm\r\n"
      "1.000000,5,0,0,-50.00\r\n"
      "\n";
  const EventLog parsed = from_csv(csv);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].tag.value, 5u);
}

TEST(EventIoTest, RejectsBadHeader) {
  EXPECT_THROW(from_csv("nope\n1,2,3,4,5\n"), ConfigError);
  EXPECT_THROW(from_csv(""), ConfigError);
}

TEST(EventIoTest, RejectsMalformedRows) {
  const std::string missing_field =
      "time_s,tag,reader,antenna,rssi_dbm\n"
      "1.0,5,0\n";
  EXPECT_THROW(from_csv(missing_field), ConfigError);
  const std::string not_a_number =
      "time_s,tag,reader,antenna,rssi_dbm\n"
      "abc,5,0,0,-50\n";
  EXPECT_THROW(from_csv(not_a_number), ConfigError);
}

}  // namespace
}  // namespace rfidsim::sys
