#include "system/reader.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::sys {
namespace {

TEST(AntennaMuxTest, EmptyAntennaListThrows) {
  EXPECT_THROW(AntennaMux({}, 0.1), ConfigError);
}

TEST(AntennaMuxTest, NonPositiveDwellThrows) {
  EXPECT_THROW(AntennaMux({0}, 0.0), ConfigError);
  EXPECT_THROW(AntennaMux({0}, -1.0), ConfigError);
}

TEST(AntennaMuxTest, SingleAntennaAlwaysActive) {
  const AntennaMux mux({3}, 0.1);
  EXPECT_EQ(mux.active_at(0.0), 3u);
  EXPECT_EQ(mux.active_at(5.0), 3u);
}

TEST(AntennaMuxTest, RoundRobinSchedule) {
  const AntennaMux mux({0, 1}, 0.1);
  EXPECT_EQ(mux.active_at(0.05), 0u);
  EXPECT_EQ(mux.active_at(0.15), 1u);
  EXPECT_EQ(mux.active_at(0.25), 0u);
  EXPECT_EQ(mux.active_at(0.35), 1u);
}

TEST(AntennaMuxTest, ThreeWayRotation) {
  const AntennaMux mux({5, 7, 9}, 0.2);
  EXPECT_EQ(mux.active_at(0.1), 5u);
  EXPECT_EQ(mux.active_at(0.3), 7u);
  EXPECT_EQ(mux.active_at(0.5), 9u);
  EXPECT_EQ(mux.active_at(0.7), 5u);
}

TEST(AntennaMuxTest, NegativeTimeMapsToFirst) {
  const AntennaMux mux({2, 4}, 0.1);
  EXPECT_EQ(mux.active_at(-1.0), 2u);
}

TEST(AntennaMuxTest, EachAntennaGetsEqualShare) {
  const AntennaMux mux({0, 1}, 0.05);
  int counts[2] = {0, 0};
  for (double t = 0.001; t < 10.0; t += 0.01) {
    ++counts[mux.active_at(t)];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 1.0, 0.1);
}

}  // namespace
}  // namespace rfidsim::sys
