#include "system/uploader.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fault/wire_corruptor.hpp"

namespace rfidsim::sys {
namespace {

EventLog make_log(std::size_t n) {
  EventLog log;
  for (std::size_t i = 0; i < n; ++i) {
    ReadEvent ev;
    ev.time_s = 0.01 * static_cast<double>(i);
    ev.tag = scene::TagId{i};
    log.push_back(ev);
  }
  return log;
}

TEST(EventUploaderTest, LosslessChannelDeliversEverythingInOrder) {
  EventUploader up(UploaderConfig{});
  Rng rng(1);
  const EventLog log = make_log(100);
  const EventLog got = up.upload(log, rng);
  ASSERT_EQ(got.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) EXPECT_EQ(got[i].tag, log[i].tag);
  EXPECT_EQ(up.stats().batches, 4u);  // 100 events / batch_size 32.
  EXPECT_EQ(up.stats().attempts, 4u);
  EXPECT_EQ(up.stats().retries, 0u);
  EXPECT_EQ(up.stats().events_lost, 0u);
  EXPECT_EQ(up.stats().events_delivered, 100u);
}

TEST(EventUploaderTest, RetriesRecoverFromTransientLoss) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.max_retries = 16;  // Effectively always recovers: 0.3^17 ~ 1e-9.
  EventUploader up(cfg);
  Rng rng(2);
  const EventLog log = make_log(320);
  const EventLog got = up.upload(log, rng);
  EXPECT_EQ(got.size(), log.size());
  EXPECT_GT(up.stats().retries, 0u);
  EXPECT_GT(up.stats().backoff_delay_s, 0.0);
  EXPECT_EQ(up.stats().batches_lost, 0u);
}

TEST(EventUploaderTest, ExhaustedRetryBudgetDropsWholeBatches) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.9;
  cfg.max_retries = 1;
  cfg.batch_size = 10;
  EventUploader up(cfg);
  Rng rng(3);
  const EventLog log = make_log(500);
  const EventLog got = up.upload(log, rng);
  EXPECT_LT(got.size(), log.size());
  EXPECT_GT(up.stats().batches_lost, 0u);
  EXPECT_EQ(up.stats().events_delivered + up.stats().events_lost, log.size());
  EXPECT_EQ(got.size(), up.stats().events_delivered);
  // Loss is batch-granular: delivered count is a multiple of batch size.
  EXPECT_EQ(got.size() % cfg.batch_size, 0u);
}

TEST(EventUploaderTest, BackoffGrowsExponentially) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.999;  // Force the full retry ladder.
  cfg.max_retries = 3;
  cfg.initial_backoff_s = 0.1;
  cfg.backoff_multiplier = 2.0;
  cfg.batch_size = 8;
  EventUploader up(cfg);
  Rng rng(4);
  (void)up.upload(make_log(8), rng);
  // With (almost certainly) every attempt lost: 0.1 + 0.2 + 0.4.
  EXPECT_NEAR(up.stats().backoff_delay_s, 0.7, 1e-9);
  EXPECT_EQ(up.stats().attempts, 4u);
}

TEST(EventUploaderTest, DeterministicGivenSeed) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.max_retries = 2;
  cfg.batch_size = 4;
  const EventLog log = make_log(64);
  EventUploader u1(cfg), u2(cfg);
  Rng a(42), b(42);
  const EventLog g1 = u1.upload(log, a);
  const EventLog g2 = u2.upload(log, b);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_EQ(g1[i].tag, g2[i].tag);
  EXPECT_EQ(u1.stats().retries, u2.stats().retries);
}

TEST(EventUploaderTest, LosslessBatchesArriveAtFlushTime) {
  UploaderConfig cfg;
  cfg.batch_size = 10;
  EventUploader up(cfg);
  Rng rng(1);
  const EventLog log = make_log(35);
  const auto batches = up.upload_batches(log, rng);
  ASSERT_EQ(batches.size(), 4u);  // 10 + 10 + 10 + 5.
  std::size_t offset = 0;
  for (const DeliveredBatch& b : batches) {
    ASSERT_FALSE(b.events.empty());
    // No loss, no retries: the batch arrives the instant it is flushed.
    EXPECT_DOUBLE_EQ(b.sent_time_s, b.events.back().time_s);
    EXPECT_DOUBLE_EQ(b.arrival_time_s, b.sent_time_s);
    for (const ReadEvent& ev : b.events) {
      EXPECT_EQ(ev.tag, log[offset++].tag);
    }
  }
  EXPECT_EQ(offset, log.size());
}

TEST(EventUploaderTest, RetryBackoffDelaysArrival) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.max_retries = 16;
  cfg.initial_backoff_s = 0.05;
  cfg.batch_size = 64;  // The whole log is one batch.
  const EventLog log = make_log(64);
  // Find a seed whose single batch needs at least one retry; with p = 0.5
  // the first few seeds all but surely contain one.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    EventUploader up(cfg);
    Rng rng(seed);
    const auto batches = up.upload_batches(log, rng);
    if (up.stats().retries == 0 || batches.empty()) continue;
    // One batch: its arrival delay is exactly the backoff the stats saw.
    EXPECT_DOUBLE_EQ(batches[0].arrival_time_s,
                     batches[0].sent_time_s + up.stats().backoff_delay_s);
    return;
  }
  FAIL() << "no seed in 1..64 produced a retried delivered batch";
}

TEST(EventUploaderTest, ArrivalsAreHeadOfLineOrdered) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.4;
  cfg.max_retries = 16;
  cfg.batch_size = 8;
  EventUploader up(cfg);
  Rng rng(7);
  const auto batches = up.upload_batches(make_log(160), rng);
  ASSERT_GT(batches.size(), 1u);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    // A batch can never arrive before it was flushed...
    EXPECT_GE(batches[i].arrival_time_s, batches[i].sent_time_s);
    // ...nor overtake the batch ahead of it on the serial channel.
    if (i > 0) {
      EXPECT_GE(batches[i].arrival_time_s, batches[i - 1].arrival_time_s);
    }
  }
}

TEST(EventUploaderTest, UploadIsUploadBatchesFlattened) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.max_retries = 4;
  cfg.batch_size = 8;
  const EventLog log = make_log(200);
  EventUploader flat(cfg), batched(cfg);
  Rng a(11), b(11);
  const EventLog direct = flat.upload(log, a);
  EventLog rebuilt;
  for (const DeliveredBatch& batch : batched.upload_batches(log, b)) {
    rebuilt.insert(rebuilt.end(), batch.events.begin(), batch.events.end());
  }
  ASSERT_EQ(direct.size(), rebuilt.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].tag, rebuilt[i].tag);
    EXPECT_DOUBLE_EQ(direct[i].time_s, rebuilt[i].time_s);
  }
  EXPECT_EQ(flat.stats().attempts, batched.stats().attempts);
  EXPECT_EQ(flat.stats().retries, batched.stats().retries);
  EXPECT_EQ(flat.stats().batches_lost, batched.stats().batches_lost);
  EXPECT_DOUBLE_EQ(flat.stats().backoff_delay_s, batched.stats().backoff_delay_s);
}

TEST(EventUploaderTest, BackoffIsBoundedByMaxBackoff) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.999;  // Walk the whole ladder.
  cfg.max_retries = 6;
  cfg.initial_backoff_s = 1.0;
  cfg.backoff_multiplier = 4.0;
  cfg.max_backoff_s = 2.0;  // Caps from the second retry on.
  cfg.batch_size = 8;
  EventUploader up(cfg);
  Rng rng(4);
  (void)up.upload(make_log(8), rng);
  // Unbounded would wait 1 + 4 + 16 + 64 + 256 + 1024; bounded waits
  // 1 + 2 + 2 + 2 + 2 + 2.
  EXPECT_NEAR(up.stats().backoff_delay_s, 11.0, 1e-9);
}

TEST(EventUploaderTest, JitterIsSeededBoundedAndOffByDefault) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.999;
  cfg.max_retries = 3;
  cfg.initial_backoff_s = 0.1;
  cfg.backoff_multiplier = 2.0;
  cfg.batch_size = 8;
  cfg.jitter_fraction = 0.5;
  const double base = 0.7;  // 0.1 + 0.2 + 0.4 without jitter.

  EventUploader u1(cfg), u2(cfg);
  Rng a(9), b(9);
  (void)u1.upload(make_log(8), a);
  (void)u2.upload(make_log(8), b);
  // Jittered, but deterministically: same seed, same total backoff.
  EXPECT_GT(u1.stats().backoff_delay_s, base);
  EXPECT_LE(u1.stats().backoff_delay_s, base * (1.0 + cfg.jitter_fraction) + 1e-12);
  EXPECT_DOUBLE_EQ(u1.stats().backoff_delay_s, u2.stats().backoff_delay_s);

  // Different seeds decorrelate the retries (that is the point of jitter).
  EventUploader u3(cfg);
  Rng c(10);
  (void)u3.upload(make_log(8), c);
  EXPECT_NE(u1.stats().backoff_delay_s, u3.stats().backoff_delay_s);
}

TEST(EventUploaderWireTest, CleanWireMatchesUploadBatchesBitForBit) {
  UploaderConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.max_retries = 6;
  cfg.batch_size = 8;
  EventUploader plain(cfg), wired(cfg);
  Rng a(21), b(21);
  const EventLog log = make_log(200);
  const auto expect = plain.upload_batches(log, a);
  const auto got = wired.upload_wire(log, 3, b, nullptr);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].sent_time_s, expect[i].sent_time_s);
    EXPECT_DOUBLE_EQ(got[i].arrival_time_s, expect[i].arrival_time_s);
    EXPECT_EQ(got[i].nak_retransmits, 0u);
    ASSERT_EQ(got[i].events.size(), expect[i].events.size());
    for (std::size_t j = 0; j < got[i].events.size(); ++j) {
      EXPECT_EQ(got[i].events[j].tag, expect[i].events[j].tag);
      EXPECT_DOUBLE_EQ(got[i].events[j].time_s, expect[i].events[j].time_s);
    }
  }
  EXPECT_EQ(wired.stats().attempts, plain.stats().attempts);
  EXPECT_DOUBLE_EQ(wired.stats().backoff_delay_s, plain.stats().backoff_delay_s);
  EXPECT_EQ(wired.wire_stats().corrupt_frames, 0u);
  EXPECT_GT(wired.wire_stats().frames_sent, 0u);
  EXPECT_GT(wired.wire_stats().bytes_sent, 0u);
}

TEST(EventUploaderWireTest, DetectedCorruptionRetransmitsAndRecovers) {
  UploaderConfig cfg;
  cfg.batch_size = 16;
  cfg.max_nak_retransmits = 24;
  EventUploader up(cfg);
  fault::WireCorruptorConfig ccfg;
  ccfg.bit_error_rate = 1e-3;  // Most frames need at least one retransmit.
  fault::WireCorruptor corruptor(ccfg);
  Rng rng(31);
  const EventLog log = make_log(320);  // 20 batches.
  const auto got = up.upload_wire(log, 1, rng, &corruptor);
  ASSERT_EQ(got.size(), 20u);
  const WireUploadStats& ws = up.wire_stats();
  EXPECT_GT(ws.corrupt_frames, 0u);
  EXPECT_EQ(ws.nak_retransmits, ws.corrupt_frames);  // Every NAK retransmitted.
  EXPECT_GT(ws.batches_recovered, 0u);
  EXPECT_EQ(ws.batches_quarantined, 0u);
  EXPECT_EQ(ws.undetected_corruptions, 0u);
  // Per-batch NAK counts in the delivery record sum to the stats view.
  std::size_t naks = 0, recovered = 0;
  for (const DeliveredBatch& batch : got) {
    naks += batch.nak_retransmits;
    if (batch.nak_retransmits > 0) ++recovered;
  }
  EXPECT_EQ(naks, ws.nak_retransmits);
  EXPECT_EQ(recovered, ws.batches_recovered);
  // Detected failures are classified: the per-kind tallies cover them all.
  std::uint64_t by_kind = 0;
  for (const std::uint64_t k : ws.corrupt_by_kind) by_kind += k;
  EXPECT_EQ(by_kind, ws.corrupt_frames);
  // Delivered events are the decoded bytes — bit-identical to what was sent.
  std::size_t offset = 0;
  for (const DeliveredBatch& batch : got) {
    for (const ReadEvent& ev : batch.events) {
      EXPECT_EQ(ev.tag, log[offset].tag);
      EXPECT_DOUBLE_EQ(ev.time_s, log[offset].time_s);
      ++offset;
    }
  }
  EXPECT_EQ(offset, log.size());
}

TEST(EventUploaderWireTest, ExhaustedNakBudgetQuarantines) {
  UploaderConfig cfg;
  cfg.batch_size = 16;
  cfg.max_nak_retransmits = 1;
  EventUploader up(cfg);
  fault::WireCorruptorConfig ccfg;
  ccfg.bit_error_rate = 0.05;  // Every try all but surely corrupt.
  fault::WireCorruptor corruptor(ccfg);
  Rng rng(33);
  const EventLog log = make_log(160);
  const auto got = up.upload_wire(log, 1, rng, &corruptor);
  const WireUploadStats& ws = up.wire_stats();
  EXPECT_GT(ws.batches_quarantined, 0u);
  EXPECT_EQ(ws.events_quarantined + up.stats().events_delivered, log.size());
  EXPECT_EQ(got.size() + ws.batches_quarantined, up.stats().batches);
  // Quarantine is typed loss, not silence: undetected stays zero.
  EXPECT_EQ(ws.undetected_corruptions, 0u);
}

TEST(EventUploaderTest, RejectsBadConfig) {
  UploaderConfig zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(EventUploader{zero_batch}, ConfigError);
  UploaderConfig certain_loss;
  certain_loss.loss_probability = 1.0;
  EXPECT_THROW(EventUploader{certain_loss}, ConfigError);
  UploaderConfig shrink;
  shrink.backoff_multiplier = 0.5;
  EXPECT_THROW(EventUploader{shrink}, ConfigError);
  UploaderConfig bad_jitter;
  bad_jitter.jitter_fraction = 1.5;
  EXPECT_THROW(EventUploader{bad_jitter}, ConfigError);
  UploaderConfig bad_cap;
  bad_cap.max_backoff_s = -1.0;
  EXPECT_THROW(EventUploader{bad_cap}, ConfigError);
}

}  // namespace
}  // namespace rfidsim::sys
