#include "system/portal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/error.hpp"

namespace rfidsim::sys {
namespace {

using scene::BoxBody;
using scene::Entity;
using scene::Scene;
using scene::StaticTrajectory;
using scene::Tag;
using scene::TagId;
using scene::TagMount;

Pose lane_pose(Vec3 position) {
  Pose p;
  p.position = position;
  p.frame.forward = {1.0, 0.0, 0.0};
  p.frame.up = {0.0, 0.0, 1.0};
  return p;
}

/// A static scene with `n` well-placed bare tags 1 m from one antenna.
Scene easy_scene(std::size_t n, std::size_t antennas = 1) {
  Scene s;
  Entity holder("tags", std::monostate{}, rf::Material::Air,
                std::make_unique<StaticTrajectory>(lane_pose({0.0, 0.0, 1.0})));
  for (std::size_t i = 0; i < n; ++i) {
    TagMount m;
    m.local_position = {0.1 * static_cast<double>(i), 0.0, 0.0};
    m.local_patch_normal = {0.0, 1.0, 0.0};
    m.local_dipole_axis = {1.0, 0.0, 0.0};
    m.backing_material = rf::Material::Air;
    holder.add_tag(Tag{TagId{i + 1}, m});
  }
  s.entities.push_back(std::move(holder));
  s.antennas.push_back(Scene::make_antenna({0.0, 1.0, 1.0}, {0.0, -1.0, 0.0}));
  if (antennas == 2) {
    s.antennas.push_back(Scene::make_antenna({0.0, -1.0, 1.0}, {0.0, 1.0, 0.0}));
  }
  return s;
}

PortalConfig one_reader_config(std::vector<std::size_t> antenna_indices,
                               double duration = 1.0) {
  PortalConfig cfg;
  ReaderConfig rc;
  rc.antenna_indices = std::move(antenna_indices);
  cfg.readers.push_back(rc);
  cfg.end_time_s = duration;
  cfg.pass_sigma_db = 0.0;
  cfg.shadow_sigma_db = 0.0;
  cfg.fast_sigma_db = 0.0;
  return cfg;
}

TEST(PortalTest, NoReadersThrows) {
  const Scene s = easy_scene(1);
  PortalConfig cfg;
  cfg.end_time_s = 1.0;
  EXPECT_THROW(PortalSimulator(s, cfg), ConfigError);
}

TEST(PortalTest, BadTimeWindowThrows) {
  const Scene s = easy_scene(1);
  PortalConfig cfg = one_reader_config({0});
  cfg.end_time_s = cfg.start_time_s;
  EXPECT_THROW(PortalSimulator(s, cfg), ConfigError);
}

TEST(PortalTest, AntennaIndexOutOfRangeThrows) {
  const Scene s = easy_scene(1);
  EXPECT_THROW(PortalSimulator(s, one_reader_config({5})), ConfigError);
}

TEST(PortalTest, EasyTagsAreAllRead) {
  const Scene s = easy_scene(5);
  PortalSimulator sim(s, one_reader_config({0}));
  Rng rng(1);
  const EventLog log = sim.run(rng);
  std::unordered_set<TagId> seen;
  for (const ReadEvent& ev : log) seen.insert(ev.tag);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(PortalTest, EventsAreChronological) {
  const Scene s = easy_scene(8);
  PortalSimulator sim(s, one_reader_config({0}));
  Rng rng(2);
  const EventLog log = sim.run(rng);
  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end(),
                             [](const ReadEvent& a, const ReadEvent& b) {
                               return a.time_s < b.time_s;
                             }));
  EXPECT_GE(log.front().time_s, 0.0);
}

TEST(PortalTest, DeterministicWithSameSeed) {
  const Scene s = easy_scene(6);
  const PortalConfig cfg = one_reader_config({0});
  auto run = [&](std::uint64_t seed) {
    PortalSimulator sim(s, cfg);
    Rng rng(seed);
    const EventLog log = sim.run(rng);
    std::vector<std::uint64_t> ids;
    for (const auto& ev : log) ids.push_back(ev.tag.value);
    return ids;
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(PortalTest, StatsArePopulated) {
  const Scene s = easy_scene(4);
  PortalSimulator sim(s, one_reader_config({0}));
  Rng rng(3);
  sim.run(rng);
  EXPECT_GT(sim.stats().rounds, 0u);
  EXPECT_GT(sim.stats().total_slots, 0u);
  EXPECT_GT(sim.stats().busy_time_s, 0.0);
  EXPECT_EQ(sim.stats().success_slots, 4u);
}

TEST(PortalTest, SingleRoundModeRunsOneRoundPerReader) {
  const Scene s = easy_scene(3);
  PortalSimulator sim(s, one_reader_config({0}));
  Rng rng(4);
  sim.run_single_round(0.0, rng);
  EXPECT_EQ(sim.stats().rounds, 1u);
}

TEST(PortalTest, TwoAntennaMuxUsesBoth) {
  const Scene s = easy_scene(4, 2);
  PortalConfig cfg = one_reader_config({0, 1}, 4.0);
  cfg.readers[0].antenna_dwell_s = 0.05;
  // Force re-reads so both antennas log events: use session S1 with target
  // A only; simpler: many tags and long window gives events from both mux
  // positions anyway because reads happen in the first dwell of each.
  PortalSimulator sim(s, cfg);
  Rng rng(5);
  const EventLog log = sim.run(rng);
  std::unordered_set<std::size_t> antennas_used;
  for (const auto& ev : log) antennas_used.insert(ev.antenna_index);
  EXPECT_GE(antennas_used.size(), 1u);
  for (const auto& ev : log) {
    EXPECT_LT(ev.antenna_index, 2u);
  }
}

TEST(PortalTest, RssiIsPlausible) {
  const Scene s = easy_scene(1);
  PortalSimulator sim(s, one_reader_config({0}));
  Rng rng(6);
  const EventLog log = sim.run(rng);
  ASSERT_FALSE(log.empty());
  // Backscatter at 1 m with defaults lands far above the sensitivity floor
  // and far below the transmit power.
  EXPECT_GT(log.front().rssi.value(), -70.0);
  EXPECT_LT(log.front().rssi.value(), 0.0);
}

TEST(PortalTest, CochannelReadersInterfere) {
  const Scene s = easy_scene(10, 2);
  // Two readers, one antenna each, same channel, no DRM.
  PortalConfig noisy;
  for (std::size_t r = 0; r < 2; ++r) {
    ReaderConfig rc;
    rc.antenna_indices = {r};
    rc.channel = 0;
    noisy.readers.push_back(rc);
  }
  noisy.end_time_s = 0.5;
  noisy.pass_sigma_db = 0.0;
  noisy.shadow_sigma_db = 0.0;
  noisy.fast_sigma_db = 0.0;

  PortalConfig drm = noisy;
  drm.readers[0].dense_reader_mode = true;
  drm.readers[1].dense_reader_mode = true;
  drm.readers[1].channel = 1;

  auto distinct_reads = [&s](const PortalConfig& cfg, std::uint64_t seed) {
    PortalSimulator sim(s, cfg);
    Rng rng(seed);
    const EventLog log = sim.run(rng);
    std::unordered_set<TagId> seen;
    for (const auto& ev : log) seen.insert(ev.tag);
    return seen.size();
  };

  std::size_t noisy_total = 0;
  std::size_t drm_total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    noisy_total += distinct_reads(noisy, seed);
    drm_total += distinct_reads(drm, seed);
  }
  EXPECT_LT(noisy_total, drm_total);
}

TEST(PortalTest, PassOutageSuppressesReads) {
  const Scene s = easy_scene(1);
  PortalConfig cfg = one_reader_config({0});
  cfg.pass_outage_probability = 1.0;
  cfg.pass_outage_db = 60.0;
  PortalSimulator sim(s, cfg);
  Rng rng(7);
  EXPECT_TRUE(sim.run(rng).empty());
}

TEST(PortalTest, RunsAreIndependentAcrossCalls) {
  const Scene s = easy_scene(2);
  PortalConfig cfg = one_reader_config({0});
  cfg.pass_sigma_db = 30.0;  // Huge pass variance: outcomes differ per run.
  PortalSimulator sim(s, cfg);
  Rng rng(8);
  std::size_t distinct_outcomes = 0;
  std::size_t prev = 999;
  for (int i = 0; i < 10; ++i) {
    const std::size_t n = sim.run(rng).size();
    if (n != prev) ++distinct_outcomes;
    prev = n;
  }
  EXPECT_GT(distinct_outcomes, 1u);
}

}  // namespace
}  // namespace rfidsim::sys
