// Property/fuzz coverage for event-log serialization: the lenient parser
// must never throw on damaged input (truncation, duplicate rows, NaN
// RSSI, mixed line endings, random mangling), must preserve every clean
// row, and must account for every input row in ParseStats.
#include "system/event_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rfidsim::sys {
namespace {

ReadEvent event(double t, std::uint64_t tag, std::size_t reader, std::size_t antenna,
                double rssi) {
  ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  ev.rssi = DbmPower(rssi);
  return ev;
}

EventLog random_log(Rng& rng, std::size_t n) {
  EventLog log;
  for (std::size_t i = 0; i < n; ++i) {
    log.push_back(event(rng.uniform(0.0, 10.0), rng.next_u64(),
                        static_cast<std::size_t>(rng.uniform_int(0, 3)),
                        static_cast<std::size_t>(rng.uniform_int(0, 3)),
                        rng.uniform(-90.0, -30.0)));
  }
  return log;
}

TEST(EventIoFuzzTest, LenientMatchesStrictOnCleanInput) {
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    const EventLog log = random_log(rng, 40);
    const std::string csv = to_csv(log);
    ParseStats stats;
    const EventLog lenient = from_csv(csv, ParseMode::Lenient, &stats);
    const EventLog strict = from_csv(csv);
    ASSERT_EQ(lenient.size(), strict.size());
    EXPECT_EQ(stats.rows_ok, log.size());
    EXPECT_EQ(stats.rows_bad, 0u);
    for (std::size_t i = 0; i < strict.size(); ++i) {
      EXPECT_EQ(lenient[i].tag, strict[i].tag);
      EXPECT_EQ(lenient[i].time_s, strict[i].time_s);
    }
  }
}

TEST(EventIoFuzzTest, TruncationAtEveryByteNeverThrowsLenient) {
  Rng rng(2);
  const std::string csv = to_csv(random_log(rng, 10));
  for (std::size_t cut = csv.find('\n') + 1; cut <= csv.size(); ++cut) {
    ParseStats stats;
    const EventLog parsed = from_csv(csv.substr(0, cut), ParseMode::Lenient, &stats);
    EXPECT_LE(parsed.size(), 10u);
    EXPECT_LE(stats.rows_bad, 1u);  // Only the torn row can be bad.
  }
}

TEST(EventIoFuzzTest, DuplicatedRowsParseTwice) {
  const EventLog log{event(1.0, 7, 0, 0, -50.0)};
  std::string csv = to_csv(log);
  const std::string row = csv.substr(csv.find('\n') + 1);
  csv += row;  // Same data row twice.
  ParseStats stats;
  const EventLog parsed = from_csv(csv, ParseMode::Lenient, &stats);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].tag, parsed[1].tag);
  EXPECT_EQ(stats.rows_ok, 2u);
}

TEST(EventIoFuzzTest, NanRssiRoundTripsStrictButIsLenientBad) {
  const EventLog log{event(1.0, 7, 0, 0, std::numeric_limits<double>::quiet_NaN())};
  const std::string csv = to_csv(log);
  // Strict keeps historical behaviour: "nan" parses.
  const EventLog strict = from_csv(csv);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_TRUE(std::isnan(strict[0].rssi.value()));
  // Lenient quarantines it: NaN is sensor garbage.
  ParseStats stats;
  const EventLog lenient = from_csv(csv, ParseMode::Lenient, &stats);
  EXPECT_TRUE(lenient.empty());
  EXPECT_EQ(stats.rows_bad, 1u);
  ASSERT_FALSE(stats.sample_errors.empty());
}

TEST(EventIoFuzzTest, MixedLineEndingsParseIdentically) {
  Rng rng(3);
  const EventLog log = random_log(rng, 12);
  const std::string lf = to_csv(log);
  // Re-terminate a pseudo-random subset of lines with CRLF.
  std::string mixed;
  std::size_t line_idx = 0;
  for (char c : lf) {
    if (c == '\n' && (line_idx++ % 3 == 0)) mixed += '\r';
    mixed += c;
  }
  const EventLog a = from_csv(lf, ParseMode::Lenient, nullptr);
  const EventLog b = from_csv(mixed, ParseMode::Lenient, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag);
    EXPECT_EQ(a[i].rssi.value(), b[i].rssi.value());
  }
}

TEST(EventIoFuzzTest, RandomManglingNeverThrowsLenientAndAccountsAllRows) {
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    std::string csv = to_csv(random_log(rng, n));
    // Mangle a handful of bytes after the header, avoiding newline bytes so
    // the row count stays known.
    const std::size_t start = csv.find('\n') + 1;
    for (int k = 0; k < 8 && start < csv.size(); ++k) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(start),
                          static_cast<std::int64_t>(csv.size()) - 1));
      if (csv[pos] != '\n') {
        csv[pos] = static_cast<char>(rng.uniform_int(32, 126));
      }
    }
    ParseStats stats;
    EventLog parsed;
    EXPECT_NO_THROW(parsed = from_csv(csv, ParseMode::Lenient, &stats));
    EXPECT_EQ(stats.rows_ok + stats.rows_bad, n);
    EXPECT_EQ(parsed.size(), stats.rows_ok);
  }
}

TEST(EventIoFuzzTest, StrictStillThrowsOnBadRows) {
  const std::string bad =
      "time_s,tag,reader,antenna,rssi_dbm\n"
      "1.0,5,0,0,-50\n"
      "garbage row\n";
  EXPECT_THROW(from_csv(bad), ConfigError);
  // And the lenient parse of the same input keeps the good row.
  ParseStats stats;
  const EventLog parsed = from_csv(bad, ParseMode::Lenient, &stats);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(stats.rows_bad, 1u);
}

}  // namespace
}  // namespace rfidsim::sys
