// End-to-end checks that the instrumentation threaded through the
// simulator (a) never feeds back into simulated state and (b) actually
// counts what it claims to count.
#include <gtest/gtest.h>

#include <string>

#include "fault/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "system/event_io.hpp"
#include "system/uploader.hpp"
#include "track/resilient_ingest.hpp"

namespace rfidsim {
namespace {

/// With -DRFIDSIM_OBS=OFF every hook compiles to a constant false; the
/// counter-delta tests then assert that nothing moves.
#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kHooksLive = false;
#else
constexpr bool kHooksLive = true;
#endif

using reliability::CalibrationProfile;
using reliability::RepeatedRuns;
using reliability::Scenario;

class InstrumentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_metrics_ = obs::enabled();
    saved_trace_ = obs::trace_enabled();
    obs::set_enabled(true);
    obs::set_trace_enabled(false);
  }
  void TearDown() override {
    obs::set_trace_enabled(saved_trace_);
    obs::set_enabled(saved_metrics_);
  }

 private:
  bool saved_metrics_ = false;
  bool saved_trace_ = false;
};

bool logs_equal(const RepeatedRuns& a, const RepeatedRuns& b) {
  if (a.logs.size() != b.logs.size()) return false;
  for (std::size_t r = 0; r < a.logs.size(); ++r) {
    if (a.logs[r].size() != b.logs[r].size()) return false;
    for (std::size_t i = 0; i < a.logs[r].size(); ++i) {
      const sys::ReadEvent& x = a.logs[r][i];
      const sys::ReadEvent& y = b.logs[r][i];
      if (x.tag != y.tag || x.time_s != y.time_s ||
          x.reader_index != y.reader_index || x.antenna_index != y.antenna_index ||
          x.rssi.value() != y.rssi.value()) {
        return false;
      }
    }
  }
  return true;
}

// The feedback-free contract, held end to end: the exact same seeds must
// produce the exact same event stream whether observability (metrics AND
// trace spans) is on or off. This is the same differential perf_baseline
// runs, kept in the tier-1 suite so a breach fails fast under ctest and
// the sanitizers.
TEST_F(InstrumentationTest, EventStreamsAreIdenticalWithObsOnAndOff) {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  reliability::ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front};
  const Scenario sc = reliability::make_object_tracking_scenario(opt, cal);
  constexpr std::size_t kReps = 3;
  constexpr std::uint64_t kSeed = 20070625;

  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  const RepeatedRuns with_obs = reliability::run_repeated(sc, kReps, kSeed);

  obs::set_enabled(false);
  obs::set_trace_enabled(false);
  const RepeatedRuns without_obs = reliability::run_repeated(sc, kReps, kSeed);

  EXPECT_FALSE(with_obs.logs.empty());
  EXPECT_TRUE(logs_equal(with_obs, without_obs));
}

TEST_F(InstrumentationTest, PortalRunFeedsGen2AndPathCacheCounters) {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  const Scenario sc = reliability::make_read_range_scenario(3.0, cal);

  const std::uint64_t rounds_before = obs::counter("gen2.rounds").value();
  const std::uint64_t passes_before = obs::counter("sys.portal.passes").value();
  const std::uint64_t hits_before = obs::counter("scene.path_cache.full_hits").value();
  const std::uint64_t misses_before =
      obs::counter("scene.path_cache.full_misses").value();

  (void)reliability::run_repeated(sc, 2, 7);

  if (!kHooksLive) {
    EXPECT_EQ(obs::counter("gen2.rounds").value(), rounds_before);
    EXPECT_EQ(obs::counter("sys.portal.passes").value(), passes_before);
    return;
  }
  EXPECT_GT(obs::counter("gen2.rounds").value(), rounds_before);
  EXPECT_EQ(obs::counter("sys.portal.passes").value(), passes_before + 2);
  // The read-range scene is fully static: the first evaluation of each
  // (antenna, tag) pair misses, every later one hits.
  EXPECT_GT(obs::counter("scene.path_cache.full_misses").value(), misses_before);
  EXPECT_GT(obs::counter("scene.path_cache.full_hits").value(), hits_before);
}

TEST_F(InstrumentationTest, DisabledHooksRecordNothing) {
  obs::set_enabled(false);
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  const Scenario sc = reliability::make_read_range_scenario(3.0, cal);
  const std::uint64_t rounds_before = obs::counter("gen2.rounds").value();
  const std::uint64_t passes_before = obs::counter("sys.portal.passes").value();
  (void)reliability::run_repeated(sc, 1, 7);
  EXPECT_EQ(obs::counter("gen2.rounds").value(), rounds_before);
  EXPECT_EQ(obs::counter("sys.portal.passes").value(), passes_before);
}

// Satellite fix for the lenient-parse blind spot: dropped rows now land in
// a registry counter even when the caller discards ParseStats.
TEST_F(InstrumentationTest, LenientCsvParseCountsDroppedRows) {
  const std::string csv =
      "time_s,tag,reader,antenna,rssi_dbm\n"
      "0.10,42,0,0,-55.0\n"
      "garbage,row,is,not,numeric_enough\n"
      "0.20,43,0,0,-58.0\n";
  const std::uint64_t ok_before = obs::counter("sys.read_csv.rows_ok").value();
  const std::uint64_t bad_before = obs::counter("sys.read_csv.rows_bad").value();
  const std::uint64_t parses_before = obs::counter("sys.read_csv.parses").value();

  // No ParseStats out-param: before the registry hook this caller had no
  // way of noticing the dropped row.
  const sys::EventLog log = sys::from_csv(csv, sys::ParseMode::Lenient, nullptr);

  EXPECT_EQ(log.size(), 2u);
  const std::uint64_t d = kHooksLive ? 1 : 0;
  EXPECT_EQ(obs::counter("sys.read_csv.rows_ok").value(), ok_before + 2 * d);
  EXPECT_EQ(obs::counter("sys.read_csv.rows_bad").value(), bad_before + d);
  EXPECT_EQ(obs::counter("sys.read_csv.parses").value(), parses_before + d);
}

TEST_F(InstrumentationTest, UploaderRetriesSurfaceInRegistry) {
  sys::UploaderConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.max_retries = 16;
  sys::EventUploader up(cfg);
  sys::EventLog log;
  for (std::size_t i = 0; i < 320; ++i) {
    sys::ReadEvent ev;
    ev.time_s = 0.01 * static_cast<double>(i);
    ev.tag = scene::TagId{i};
    log.push_back(ev);
  }
  const std::uint64_t retries_before = obs::counter("sys.uploader.retries").value();
  const std::uint64_t batches_before = obs::counter("sys.uploader.batches").value();
  Rng rng(2);
  (void)up.upload(log, rng);
  EXPECT_GT(up.stats().retries, 0u);  // Old accessor still works...
  if (!kHooksLive) {
    EXPECT_EQ(obs::counter("sys.uploader.retries").value(), retries_before);
    return;
  }
  EXPECT_EQ(obs::counter("sys.uploader.retries").value(),
            retries_before + up.stats().retries);  // ...and the registry agrees.
  EXPECT_EQ(obs::counter("sys.uploader.batches").value(),
            batches_before + up.stats().batches);
}

TEST_F(InstrumentationTest, IngestQuarantineSurfacesInRegistry) {
  track::ResilientIngest ingest;
  sys::EventLog raw;
  sys::ReadEvent ok;
  ok.time_s = 1.0;
  ok.tag = scene::TagId{1};
  ok.rssi = DbmPower(-60.0);
  raw.push_back(ok);
  sys::ReadEvent outside = ok;
  outside.time_s = 99.0;  // Outside the pass window: quarantined.
  raw.push_back(outside);

  const std::uint64_t quarantined_before =
      obs::counter("track.ingest.quarantined").value();
  const std::uint64_t accepted_before = obs::counter("track.ingest.accepted").value();
  const track::IngestReport report = ingest.ingest(raw, 0.0, 10.0);
  EXPECT_EQ(report.quarantined, 1u);
  const std::uint64_t d = kHooksLive ? 1 : 0;
  EXPECT_EQ(obs::counter("track.ingest.quarantined").value(), quarantined_before + d);
  EXPECT_EQ(obs::counter("track.ingest.accepted").value(), accepted_before + d);
}

TEST_F(InstrumentationTest, FaultScheduleSamplingIsCounted) {
  fault::FaultConfig cfg;
  cfg.reader.mtbf_s = 2.0;
  cfg.reader.mttr_s = 0.5;
  const std::uint64_t sampled_before = obs::counter("fault.schedules_sampled").value();
  Rng rng(11);
  (void)fault::FaultSchedule::sample(cfg, 2, 2, 0.0, 20.0, rng);
  const std::uint64_t d = kHooksLive ? 1 : 0;
  EXPECT_EQ(obs::counter("fault.schedules_sampled").value(), sampled_before + d);

  // The all-off default config is deliberately not counted: it samples an
  // empty schedule on every run and would drown the signal.
  Rng rng2(11);
  (void)fault::FaultSchedule::sample({}, 2, 2, 0.0, 20.0, rng2);
  EXPECT_EQ(obs::counter("fault.schedules_sampled").value(), sampled_before + d);
}

}  // namespace
}  // namespace rfidsim
