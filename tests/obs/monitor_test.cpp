#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rfidsim::obs {
namespace {

#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kHooksLive = false;
#else
constexpr bool kHooksLive = true;
#endif

// ---------------------------------------------------------------------------
// SlidingWindowRate

TEST(SlidingWindowRateTest, AccumulatesAndEvictsOldestPass) {
  SlidingWindowRate w(3);
  w.add(1, 2);
  w.add(2, 2);
  w.add(0, 2);
  EXPECT_EQ(w.successes(), 3u);
  EXPECT_EQ(w.trials(), 6u);
  EXPECT_DOUBLE_EQ(w.rate(), 0.5);
  w.add(2, 2);  // Evicts the (1, 2) pass.
  EXPECT_EQ(w.successes(), 4u);
  EXPECT_EQ(w.trials(), 6u);
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindowRateTest, EmptyWindowRatesZero) {
  SlidingWindowRate w(4);
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
  EXPECT_DOUBLE_EQ(w.wilson().estimate, 0.0);
  w.add(0, 0);  // A pass with no objects is legal and contributes nothing.
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
}

TEST(SlidingWindowRateTest, WilsonMatchesCommonStats) {
  SlidingWindowRate w(8);
  w.add(9, 10);
  w.add(8, 10);
  const ProportionInterval direct = wilson_interval(17, 20);
  const ProportionInterval windowed = w.wilson();
  EXPECT_DOUBLE_EQ(windowed.estimate, direct.estimate);
  EXPECT_DOUBLE_EQ(windowed.lower, direct.lower);
  EXPECT_DOUBLE_EQ(windowed.upper, direct.upper);
}

TEST(SlidingWindowRateTest, RejectsInvalidInput) {
  EXPECT_THROW(SlidingWindowRate(0), ConfigError);
  SlidingWindowRate w(2);
  EXPECT_THROW(w.add(3, 2), ConfigError);
}

TEST(SlidingWindowRateTest, ResetClearsSums) {
  SlidingWindowRate w(2);
  w.add(1, 1);
  w.reset();
  EXPECT_EQ(w.trials(), 0u);
  EXPECT_EQ(w.size(), 0u);
}

// ---------------------------------------------------------------------------
// Detectors

TEST(EwmaDetectorTest, SeedsOnFirstSampleThenSmooths) {
  EwmaDetector d({.lambda = 0.5, .threshold = 0.6});
  EXPECT_DOUBLE_EQ(d.update(0.8), 0.8);  // Seeded, not 0.5 * 0.8.
  EXPECT_TRUE(d.alarmed());
  EXPECT_DOUBLE_EQ(d.update(0.0), 0.4);
  EXPECT_FALSE(d.alarmed());
}

TEST(EwmaDetectorTest, UnseededNeverAlarms) {
  EwmaDetector d({.lambda = 0.25, .threshold = -1.0});
  EXPECT_FALSE(d.alarmed());  // value 0 > -1, but no sample yet.
}

TEST(CusumDetectorTest, AccumulatesAboveReferenceAndFloorsAtZero) {
  CusumDetector d({.reference = 0.25, .threshold = 1.0});
  EXPECT_DOUBLE_EQ(d.update(1.0), 0.75);
  EXPECT_FALSE(d.alarmed());
  EXPECT_DOUBLE_EQ(d.update(1.0), 1.5);
  EXPECT_TRUE(d.alarmed());
  d.update(0.0);  // Decays by the reference when the signal clears.
  EXPECT_DOUBLE_EQ(d.value(), 1.25);
  for (int i = 0; i < 10; ++i) d.update(0.0);
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
}

TEST(CusumDetectorTest, DetectionLatencyIsThresholdOverExcess) {
  // Persistent deficit 0.7, reference 0.2, threshold 1.5: the statistic
  // grows 0.5 per pass and crosses on pass 4 (0-based pass 3).
  CusumDetector d({.reference = 0.2, .threshold = 1.5});
  int fired_at = -1;
  for (int i = 0; i < 10 && fired_at < 0; ++i) {
    d.update(0.7);
    if (d.alarmed()) fired_at = i;
  }
  EXPECT_EQ(fired_at, 3);
}

TEST(AlertTypeTest, NamesAreStable) {
  EXPECT_STREQ(alert_type_name(AlertType::kReaderDegraded), "reader_degraded");
  EXPECT_STREQ(alert_type_name(AlertType::kModelDivergence), "model_divergence");
  EXPECT_STREQ(alert_type_name(AlertType::kSilence), "silence");
}

// ---------------------------------------------------------------------------
// ReliabilityMonitor

/// A healthy pass: both readers run 10 rounds, each sees 9 of 10 objects,
/// the portal identifies all 10 (predicted 1-(0.1)^2 = 0.99 ~ observed 1.0).
PassObservation healthy_pass(double t0) {
  return PassObservation{.window_begin_s = t0,
                         .window_end_s = t0 + 1.0,
                         .objects_total = 10,
                         .objects_identified = 10,
                         .readers = {{.rounds = 10, .objects_seen = 9},
                                     {.rounds = 10, .objects_seen = 9}}};
}

TEST(ReliabilityMonitorTest, HealthyStreamRaisesNoAlerts) {
  ReliabilityMonitor mon;
  for (int p = 0; p < 50; ++p) mon.observe_pass(healthy_pass(p));
  EXPECT_TRUE(mon.alerts().empty());
  EXPECT_EQ(mon.passes(), 50u);
  EXPECT_EQ(mon.reader_count(), 2u);
  EXPECT_DOUBLE_EQ(mon.observed_rc(), 1.0);
  EXPECT_DOUBLE_EQ(mon.predicted_rc(), 1.0 - 0.1 * 0.1);
  EXPECT_DOUBLE_EQ(mon.reader_read_rate(0), 0.9);
}

TEST(ReliabilityMonitorTest, SilentReaderFiresOnceAndRearmsAfterRecovery) {
  ReliabilityMonitor mon;
  for (int p = 0; p < 4; ++p) mon.observe_pass(healthy_pass(p));
  PassObservation down = healthy_pass(4.0);
  down.readers[1] = {.rounds = 0, .objects_seen = 0};
  down.objects_identified = 9;
  mon.observe_pass(down);
  ASSERT_NE(mon.first_alert(AlertType::kSilence, 1), nullptr);
  EXPECT_EQ(mon.first_alert(AlertType::kSilence, 1)->pass, 4u);
  EXPECT_EQ(mon.first_alert(AlertType::kSilence, 0), nullptr);

  // Still down: latched, no second alert.
  mon.observe_pass(down);
  std::size_t silence_alerts = 0;
  for (const Alert& a : mon.alerts()) silence_alerts += a.type == AlertType::kSilence;
  EXPECT_EQ(silence_alerts, 1u);

  // Recover, then fail again: the latch re-arms.
  mon.observe_pass(healthy_pass(7.0));
  mon.observe_pass(down);
  silence_alerts = 0;
  for (const Alert& a : mon.alerts()) silence_alerts += a.type == AlertType::kSilence;
  EXPECT_EQ(silence_alerts, 2u);
}

TEST(ReliabilityMonitorTest, PersistentRoundDeficitFiresCusumDegradedAlert) {
  ReliabilityMonitor mon;
  for (int p = 0; p < 8; ++p) mon.observe_pass(healthy_pass(p));
  for (int p = 8; p < 20; ++p) {
    PassObservation slow = healthy_pass(p);
    slow.readers[0].rounds = 3;  // Deficit 0.7 against the healthy reader.
    slow.readers[0].objects_seen = 4;
    mon.observe_pass(slow);
  }
  const Alert* a = mon.first_alert(AlertType::kReaderDegraded, 0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->detector, "cusum");
  // CUSUM needs ceil(1.5 / (0.7 - 0.2)) = 4 deficit passes: onset at pass
  // 8, alert at pass 11 -> detection latency 3 passes after onset.
  EXPECT_EQ(a->pass, 11u);
  EXPECT_EQ(mon.first_alert(AlertType::kReaderDegraded, 1), nullptr);
}

TEST(ReliabilityMonitorTest, NoDriftAlertsDuringWarmup) {
  ReliabilityMonitor mon({.warmup_passes = 100});
  for (int p = 0; p < 30; ++p) {
    PassObservation slow = healthy_pass(p);
    slow.readers[0].rounds = 1;
    mon.observe_pass(slow);
  }
  EXPECT_EQ(mon.first_alert(AlertType::kReaderDegraded), nullptr);
  // Silence is exempt from warm-up.
  PassObservation down = healthy_pass(30.0);
  down.readers[0].rounds = 0;
  mon.observe_pass(down);
  EXPECT_NE(mon.first_alert(AlertType::kSilence, 0), nullptr);
}

TEST(ReliabilityMonitorTest, CorrelatedMissesFireModelDivergence) {
  ReliabilityMonitor mon;
  // Both readers see 60% of objects, but always the *same* 60%: the
  // portal identifies 6/10 while independence predicts 1-0.4^2 = 0.84.
  for (int p = 0; p < 20; ++p) {
    mon.observe_pass(PassObservation{.window_begin_s = static_cast<double>(p),
                                     .window_end_s = p + 1.0,
                                     .objects_total = 10,
                                     .objects_identified = 6,
                                     .readers = {{.rounds = 10, .objects_seen = 6},
                                                 {.rounds = 10, .objects_seen = 6}}});
  }
  const Alert* a = mon.first_alert(AlertType::kModelDivergence);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->reader, -1);
  EXPECT_EQ(a->detector, "model");
  EXPECT_GT(a->value, a->threshold);  // Prediction escaped above the band.
}

TEST(ReliabilityMonitorTest, DetectionRunsWithHooksDisabled) {
  const bool saved = enabled();
  set_enabled(false);
  ReliabilityMonitor mon;
  for (int p = 0; p < 4; ++p) mon.observe_pass(healthy_pass(p));
  PassObservation down = healthy_pass(4.0);
  down.readers[0].rounds = 0;
  mon.observe_pass(down);
  EXPECT_NE(mon.first_alert(AlertType::kSilence, 0), nullptr);
  set_enabled(saved);
}

TEST(ReliabilityMonitorTest, AlertsAreCountedInRegistryWhenHooksLive) {
  const bool saved = enabled();
  set_enabled(true);
  Counter& silences = counter("obs.monitor.alerts", {{"type", "silence"}});
  const std::uint64_t before = silences.value();
  ReliabilityMonitor mon;
  PassObservation down = healthy_pass(0.0);
  down.readers[0].rounds = 0;
  mon.observe_pass(down);
  EXPECT_EQ(silences.value() - before, kHooksLive ? 1u : 0u);
  set_enabled(saved);
}

TEST(ReliabilityMonitorTest, NarratesAlertsIntoStructuredLog) {
  const bool saved = enabled();
  set_enabled(true);
  std::ostringstream out;
  StructuredLog log;
  log.set_sink(&out);
  ReliabilityMonitor mon;
  mon.set_log(&log);
  PassObservation down = healthy_pass(0.0);
  down.readers[1].rounds = 0;
  mon.observe_pass(down);
  if (kHooksLive) {
    EXPECT_EQ(out.str(),
              "{\"lvl\":\"warn\",\"comp\":\"obs.monitor\",\"event\":\"silence\","
              "\"t_s\":1,\"pass\":0,\"reader\":1,\"value\":0,\"threshold\":0,"
              "\"detector\":\"silence\"}\n");
  } else {
    EXPECT_TRUE(out.str().empty());
  }
  set_enabled(saved);
}

TEST(ReliabilityMonitorTest, StateIsAPureFunctionOfTheObservationSequence) {
  // Same stream fed to two monitors (one with hooks off) produces
  // identical alerts and estimates: detection is observation-only.
  const bool saved = enabled();
  auto feed = [](ReliabilityMonitor& mon) {
    for (int p = 0; p < 12; ++p) {
      PassObservation obs = healthy_pass(p);
      if (p >= 6) {
        obs.readers[1].rounds = 0;
        obs.readers[1].objects_seen = 0;
        obs.objects_identified = 9;
      }
      mon.observe_pass(obs);
    }
  };
  set_enabled(true);
  ReliabilityMonitor a;
  feed(a);
  set_enabled(false);
  ReliabilityMonitor b;
  feed(b);
  set_enabled(saved);
  ASSERT_EQ(a.alerts().size(), b.alerts().size());
  for (std::size_t i = 0; i < a.alerts().size(); ++i) {
    EXPECT_EQ(a.alerts()[i].type, b.alerts()[i].type);
    EXPECT_EQ(a.alerts()[i].pass, b.alerts()[i].pass);
    EXPECT_EQ(a.alerts()[i].reader, b.alerts()[i].reader);
    EXPECT_DOUBLE_EQ(a.alerts()[i].value, b.alerts()[i].value);
  }
  EXPECT_DOUBLE_EQ(a.observed_rc(), b.observed_rc());
  EXPECT_DOUBLE_EQ(a.predicted_rc(), b.predicted_rc());
}

TEST(ReliabilityMonitorTest, RejectsInconsistentStreams) {
  ReliabilityMonitor mon;
  mon.observe_pass(healthy_pass(0.0));
  PassObservation wrong = healthy_pass(1.0);
  wrong.readers.resize(3);
  EXPECT_THROW(mon.observe_pass(wrong), ConfigError);
  PassObservation bad = healthy_pass(1.0);
  bad.objects_identified = 11;
  EXPECT_THROW(mon.observe_pass(bad), ConfigError);
}

TEST(ReliabilityMonitorTest, ResetReturnsToInitialState) {
  ReliabilityMonitor mon;
  PassObservation down = healthy_pass(0.0);
  down.readers[0].rounds = 0;
  mon.observe_pass(down);
  EXPECT_FALSE(mon.alerts().empty());
  mon.reset();
  EXPECT_TRUE(mon.alerts().empty());
  EXPECT_EQ(mon.passes(), 0u);
  EXPECT_EQ(mon.reader_count(), 0u);
  // A stream with a different reader count is accepted after reset.
  PassObservation three = healthy_pass(0.0);
  three.readers.push_back({.rounds = 10, .objects_seen = 9});
  mon.observe_pass(three);
  EXPECT_EQ(mon.reader_count(), 3u);
}

}  // namespace
}  // namespace rfidsim::obs
