// rfidsim::obs::prof — sampling-profiler and stage-attribution tests.
//
// Covers the PR-9 observability layer: phase vocabulary, self-time
// accounting, call-count determinism across store thread counts, folded
// aggregation of fabricated samples, live SIGPROF sampling under load
// (Linux, non-TSan builds), a forked crash-style stress of the handler,
// lane-id stability in sweep::ThreadPool, and the compiled-out degenerate
// behaviour (this whole file also runs under -DRFIDSIM_OBS=OFF).
#include "obs/attribution.hpp"
#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/store.hpp"
#include "obs/metrics.hpp"
#include "sweep/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

// TSan intercepts signal delivery and forbids timers firing into
// instrumented threads mid-race-check; the sampling tests are gated off
// under it (the fold/attribution logic below still runs).
#if defined(__SANITIZE_THREAD__)
#define RFIDSIM_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RFIDSIM_TEST_TSAN 1
#endif
#endif

namespace rfidsim::obs::prof {
namespace {

#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kCompiledOut = true;
#else
constexpr bool kCompiledOut = false;
#endif

constexpr std::array<Phase, kPhaseCount> kAllPhases = {
    Phase::kPathEval,      Phase::kPortalSim,  Phase::kGen2Inventory,
    Phase::kEventLogAppend, Phase::kStoreRoute, Phase::kStoreMerge,
    Phase::kGen2Fusion,
};

/// Saves and restores the global obs + attribution switches around a test.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = obs::enabled();
    saved_attribution_ = attribution_enabled();
  }
  void TearDown() override {
    set_attribution_enabled(saved_attribution_);
    obs::set_enabled(saved_enabled_);
    reset_attribution();
  }

 private:
  bool saved_enabled_ = false;
  bool saved_attribution_ = false;
};

void spin_for(std::chrono::microseconds duration) {
  const auto until = std::chrono::steady_clock::now() + duration;
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) sink = sink + 1;
}

TEST(ProfPhaseTest, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kPathEval), "path_eval");
  EXPECT_STREQ(phase_name(Phase::kPortalSim), "portal_sim");
  EXPECT_STREQ(phase_name(Phase::kGen2Inventory), "gen2_inventory");
  EXPECT_STREQ(phase_name(Phase::kEventLogAppend), "event_log_append");
  EXPECT_STREQ(phase_name(Phase::kStoreRoute), "store_route");
  EXPECT_STREQ(phase_name(Phase::kStoreMerge), "store_merge");
  EXPECT_STREQ(phase_name(Phase::kGen2Fusion), "gen2_fusion");
}

TEST(ProfPhaseTest, EnvModeProfRequestsProfiling) {
  EXPECT_TRUE(obs::env_mode("prof").profile);
  EXPECT_TRUE(obs::env_mode("prof").metrics);
  EXPECT_FALSE(obs::env_mode("prof").trace);
  EXPECT_FALSE(obs::env_mode("off").profile);
  EXPECT_FALSE(obs::env_mode("trace").profile);
  EXPECT_FALSE(obs::env_mode(nullptr).profile);
}

TEST_F(ProfTest, DisabledMarkersCountNothing) {
  obs::set_enabled(true);
  set_attribution_enabled(false);
  reset_attribution();
  {
    const ScopedPhase phase(Phase::kPathEval);
    spin_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(phase_totals(Phase::kPathEval).calls, 0u);
  EXPECT_EQ(phase_totals(Phase::kPathEval).self_seconds, 0.0);
}

TEST_F(ProfTest, SelfTimeChargesChildToChildNotParent) {
  obs::set_enabled(true);
  set_attribution_enabled(true);
  reset_attribution();
  if (kCompiledOut) {
    const ScopedPhase outer(Phase::kPortalSim);
    EXPECT_FALSE(attribution_hooks_enabled());
    EXPECT_EQ(phase_totals(Phase::kPortalSim).calls, 0u);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  {
    const ScopedPhase outer(Phase::kPortalSim);
    spin_for(std::chrono::microseconds(500));
    {
      const ScopedPhase inner(Phase::kGen2Inventory);
      spin_for(std::chrono::microseconds(2000));
    }
    spin_for(std::chrono::microseconds(500));
  }
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const PhaseTotals outer_totals = phase_totals(Phase::kPortalSim);
  const PhaseTotals inner_totals = phase_totals(Phase::kGen2Inventory);
  EXPECT_EQ(outer_totals.calls, 1u);
  EXPECT_EQ(inner_totals.calls, 1u);
  // The inner spin is charged to the child; the parent keeps only its own
  // two spins. Bounds are loose (wall clock on shared machines) but the
  // child must dominate the parent and neither may exceed the elapsed
  // total.
  EXPECT_GT(inner_totals.self_seconds, 0.0);
  EXPECT_GT(inner_totals.self_seconds, outer_totals.self_seconds);
  EXPECT_LE(outer_totals.self_seconds + inner_totals.self_seconds,
            total_s + 1e-3);
}

std::vector<fleet::FacilityBatch> tiny_batches() {
  std::vector<fleet::FacilityBatch> batches;
  for (std::uint32_t facility = 0; facility < 2; ++facility) {
    for (std::size_t b = 0; b < 10; ++b) {
      fleet::FacilityBatch batch;
      batch.facility = facility;
      batch.sent_time_s = 1.0;
      batch.arrival_time_s = 1.0;
      for (std::size_t e = 0; e < 50; ++e) {
        sys::ReadEvent ev;
        ev.tag = scene::TagId{e * 7 + facility * 3 + 1};
        ev.time_s = 0.5 + static_cast<double>(e) * 1e-3;
        ev.reader_index = e % 3;
        ev.antenna_index = e % 4;
        batch.events.push_back(ev);
      }
      batches.push_back(std::move(batch));
    }
  }
  return batches;
}

TEST_F(ProfTest, AttributionCallsAreDeterministicAcrossThreadCounts) {
  obs::set_enabled(true);
  set_attribution_enabled(true);
  const auto run_with_threads = [](std::size_t threads) {
    reset_attribution();
    fleet::StoreConfig config;
    config.threads = threads;
    fleet::TrackingStore store(config);
    const std::vector<fleet::FacilityBatch> batches = tiny_batches();
    store.ingest(batches);
    for (const fleet::FacilityBatch& batch : batches) store.ingest(batch);
    std::array<std::uint64_t, kPhaseCount> calls{};
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      calls[i] = phase_totals(kAllPhases[i]).calls;
    }
    return calls;
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  // Markers sit on the orchestrating thread, so the enter counts are a
  // pure function of the workload — identical at any worker count. (The
  // profiler's own samples, when active, live in a separate ring and never
  // feed these counters.)
  EXPECT_EQ(serial, parallel);
  if (!kCompiledOut) {
    // 1 bulk ingest + 20 single-batch ingests, one route + one merge each.
    EXPECT_EQ(serial[static_cast<std::size_t>(Phase::kStoreRoute)], 21u);
    EXPECT_EQ(serial[static_cast<std::size_t>(Phase::kStoreMerge)], 21u);
  } else {
    EXPECT_EQ(serial[static_cast<std::size_t>(Phase::kStoreRoute)], 0u);
  }
}

TEST_F(ProfTest, AttributionReportAndJsonNameEveryPhase) {
  obs::set_enabled(true);
  set_attribution_enabled(true);
  reset_attribution();
  {
    const ScopedPhase phase(Phase::kPathEval);
    spin_for(std::chrono::microseconds(200));
  }
  std::ostringstream report;
  write_attribution_report(report);
  std::ostringstream json;
  write_attribution_json(json);
  for (const Phase phase : kAllPhases) {
    EXPECT_NE(report.str().find(phase_name(phase)), std::string::npos);
    EXPECT_NE(json.str().find(std::string("\"") + phase_name(phase) + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.str().find("\"groups\""), std::string::npos);
  EXPECT_EQ(json.str().back(), '\n');
}

TEST(ProfFoldTest, FoldSamplesAggregatesIdenticalStacks) {
  // Fabricated addresses: symbolization falls back to stable hex names for
  // addresses outside any mapped symbol, so folding is still exercised
  // end-to-end without a live profiler.
  Sample a;
  a.depth = 4;  // Two handler frames stripped, two retained.
  a.frames[0] = reinterpret_cast<void*>(0x1001);  // "handler"
  a.frames[1] = reinterpret_cast<void*>(0x1002);  // "trampoline"
  a.frames[2] = reinterpret_cast<void*>(0x2000);  // leaf
  a.frames[3] = reinterpret_cast<void*>(0x3000);  // root
  Sample b = a;
  Sample c = a;
  c.frames[2] = reinterpret_cast<void*>(0x2222);
  const auto folded = fold_samples({a, b, c});
  ASSERT_EQ(folded.size(), 2u);
  // Root-first ordering: the root (deepest frame) leads the folded stack.
  EXPECT_EQ(folded.at("0x3000;0x2000"), 2u);
  EXPECT_EQ(folded.at("0x3000;0x2222"), 1u);
}

TEST(ProfFoldTest, HandlerFramesAreStrippedOnlyWhenDeeper) {
  // depth > 2: the top two frames (handler + trampoline) are stripped.
  Sample deep;
  deep.depth = 3;
  deep.frames[0] = reinterpret_cast<void*>(0x1);
  deep.frames[1] = reinterpret_cast<void*>(0x2);
  deep.frames[2] = reinterpret_cast<void*>(0x4000);
  const auto deep_folded = fold_samples({deep});
  ASSERT_EQ(deep_folded.size(), 1u);
  EXPECT_EQ(deep_folded.begin()->first, "0x4000");
  // depth <= 2: the stack never reached past the handler, so nothing is
  // stripped (an all-stripped sample would vanish silently otherwise).
  Sample shallow;
  shallow.depth = 2;
  shallow.frames[0] = reinterpret_cast<void*>(0x5000);
  shallow.frames[1] = reinterpret_cast<void*>(0x6000);
  const auto shallow_folded = fold_samples({shallow});
  ASSERT_EQ(shallow_folded.size(), 1u);
  EXPECT_EQ(shallow_folded.begin()->first, "0x6000;0x5000");
}

TEST(ProfLaneTest, PoolWorkersReportStableLaneIds) {
  EXPECT_EQ(sweep::ThreadPool::current_lane(), sweep::ThreadPool::kNotALane);
  std::mutex mutex;
  std::vector<std::size_t> seen;
  const auto collect = [&] {
    sweep::ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] {
        std::lock_guard lock(mutex);
        seen.push_back(sweep::ThreadPool::current_lane());
      });
    }
    pool.wait_idle();
  };
  collect();
  collect();  // A second pool reuses lane ids 0..3, not 4..7.
  ASSERT_EQ(seen.size(), 128u);
  for (const std::size_t lane : seen) EXPECT_LT(lane, 4u);
}

TEST_F(ProfTest, PoolPublishesPerLaneMetrics) {
  obs::set_enabled(true);
  {
    sweep::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([] { spin_for(std::chrono::microseconds(50)); });
    }
    pool.wait_idle();
  }
  const std::string exposition = obs::registry().exposition();
  if (kCompiledOut) {
    EXPECT_EQ(exposition.find("lane_busy_seconds"), std::string::npos);
    return;
  }
  EXPECT_NE(exposition.find(
                "rfidsim_sweep_pool_lane_busy_seconds{lane=\"0\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find(
                "rfidsim_sweep_pool_lane_idle_seconds{lane=\"1\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find(
                "rfidsim_sweep_pool_lane_queue_wait_seconds{lane=\"0\"}"),
            std::string::npos);
}

TEST_F(ProfTest, StartRefusesWhenHooksAreOff) {
  obs::set_enabled(false);
  EXPECT_FALSE(start());
  EXPECT_FALSE(profiling_active());
}

#if defined(__linux__) && !defined(RFIDSIM_OBS_DISABLED) && !defined(RFIDSIM_TEST_TSAN)

// Burns `cpu` of *thread CPU time* — the clock the sampler's timers run
// on. Wall-clock spins flake on loaded CI runners: a descheduled thread
// accrues no CPU time, so its timer may never expire inside a wall-bound
// window. Bounding by CPU time guarantees expirations per interval.
void burn_thread_cpu(std::chrono::microseconds cpu) {
  auto now_ns = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<long long>(ts.tv_sec) * 1'000'000'000ll + ts.tv_nsec;
  };
  const long long until = now_ns() + cpu.count() * 1000ll;
  volatile std::uint64_t sink = 0;
  while (now_ns() < until) sink = sink + 1;
}

TEST_F(ProfTest, LiveSamplingCapturesStacksUnderLoad) {
  obs::set_enabled(true);
  clear_profile();
  ProfilerConfig config;
  config.interval_usec = 500;
  ASSERT_TRUE(start(config));
  EXPECT_TRUE(profiling_active());
  EXPECT_FALSE(start(config));  // Already active.
  burn_thread_cpu(std::chrono::milliseconds(50));  // >= ~100 expirations.
  stop();
  EXPECT_FALSE(profiling_active());
  EXPECT_GT(samples_recorded(), 0u);
  const std::vector<Sample> samples = samples_snapshot();
  ASSERT_FALSE(samples.empty());
  for (const Sample& sample : samples) {
    EXPECT_GT(sample.depth, 0u);
    EXPECT_LE(sample.depth, kMaxFrames);
  }
  std::ostringstream folded;
  write_folded(folded);
  EXPECT_FALSE(folded.str().empty());
  std::ostringstream trace;
  write_profile_chrome_trace(trace);
  EXPECT_EQ(trace.str().front(), '[');
  clear_profile();
  EXPECT_TRUE(samples_snapshot().empty());
}

TEST_F(ProfTest, PoolWorkersCarryLaneIdsInSamples) {
  obs::set_enabled(true);
  clear_profile();
  ProfilerConfig config;
  config.interval_usec = 500;
  sweep::ThreadPool pool(2);  // Workers register before start(): arm path.
  ASSERT_TRUE(start(config));
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { burn_thread_cpu(std::chrono::milliseconds(10)); });
  }
  pool.wait_idle();
  stop();
  bool saw_lane = false;
  for (const Sample& sample : samples_snapshot()) {
    if (sample.lane != kNoLane) {
      EXPECT_LT(sample.lane, 2u);
      saw_lane = true;
    }
  }
  EXPECT_TRUE(saw_lane);
  clear_profile();
}

// Crash-style stress in a forked child (the repo's flight-recorder fork
// pattern): SIGPROF firing at full rate into threads doing allocation,
// locking, and attribution work must neither deadlock nor corrupt the
// rings. The child's exit code is the verdict; a signal-death or a
// timeout fails the waitpid assertions.
TEST(ProfForkTest, SigprofUnderLoadSurvivesInAChild) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    obs::set_enabled(true);
    set_attribution_enabled(true);
    ProfilerConfig config;
    config.interval_usec = 200;  // Aggressive: ~5 kHz per thread.
    if (!start(config)) std::_Exit(2);
    std::atomic<bool> stop_flag{false};
    std::vector<std::thread> workers;
    std::mutex mutex;
    std::uint64_t shared = 0;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&] {
        register_thread(kNoLane);
        while (!stop_flag.load(std::memory_order_relaxed)) {
          const ScopedPhase phase(Phase::kGen2Inventory);
          std::vector<std::uint64_t> churn(256, 1);  // Allocator traffic.
          std::lock_guard lock(mutex);
          for (const std::uint64_t v : churn) shared += v;
        }
      });
    }
    burn_thread_cpu(std::chrono::milliseconds(100));
    stop_flag.store(true, std::memory_order_relaxed);
    for (std::thread& w : workers) w.join();
    stop();
    if (samples_recorded() == 0) std::_Exit(3);
    if (shared == 0) std::_Exit(4);
    std::_Exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died by signal "
                                 << (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

#else  // !(__linux__ && obs && !tsan)

TEST_F(ProfTest, SamplingDegeneratesToNoOpsHere) {
  obs::set_enabled(true);
  // Non-Linux, compiled-out, or TSan build: start() refuses, every query
  // returns empty, and dumps still produce well-formed (empty) output.
  if (kCompiledOut || !profiling_active()) {
    EXPECT_EQ(samples_dropped(), 0u);
    std::ostringstream folded;
    write_folded(folded);
    SUCCEED();
  }
}

#endif

TEST_F(ProfTest, DumpProfileWritesAtomically) {
  const std::string path = "prof_test_dump.folded";
  EXPECT_TRUE(dump_profile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_FALSE(dump_profile("no_such_dir/prof_test_dump.folded"));
  std::remove(path.c_str());
}

TEST_F(ProfTest, DumpAttributionWritesJson) {
  obs::set_enabled(true);
  set_attribution_enabled(true);
  reset_attribution();
  {
    const ScopedPhase phase(Phase::kStoreMerge);
    spin_for(std::chrono::microseconds(100));
  }
  const std::string path = "prof_test_attribution.json";
  ASSERT_TRUE(dump_attribution(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"attribution\":"), std::string::npos);
  EXPECT_NE(content.str().find("\"store_merge\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rfidsim::obs::prof
