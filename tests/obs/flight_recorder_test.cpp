#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace rfidsim::obs {
namespace {

/// Under -DRFIDSIM_OBS=OFF flight_record() is compiled down to nothing:
/// dumps then carry only their meta line. The tests assert that rather
/// than skipping.
#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kCompiledOut = true;
#else
constexpr bool kCompiledOut = false;
#endif

/// The recorder is process-wide (per-thread rings, global tallies):
/// every test starts from a cleared state and restores the obs switch.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = enabled();
    set_enabled(true);
    clear_flight_recorder();
  }
  void TearDown() override {
    clear_flight_recorder();
    set_enabled(saved_);
  }

 private:
  bool saved_ = false;
};

TEST_F(FlightRecorderTest, RecordsCarrySeqOrderAndPayload) {
  flight_record("test", "first", 1, 2, 3, 0.5);
  flight_record("test", "second", 4);
  const std::vector<FlightRecord> records = flight_snapshot();
  if (kCompiledOut) {
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(flight_recorded(), 0u);
    return;
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_STREQ(records[0].category, "test");
  EXPECT_STREQ(records[0].event, "first");
  EXPECT_EQ(records[0].a, 1u);
  EXPECT_EQ(records[0].b, 2u);
  EXPECT_EQ(records[0].c, 3u);
  EXPECT_EQ(records[0].time_s, 0.5);
  EXPECT_STREQ(records[1].event, "second");
  EXPECT_EQ(records[1].time_s, -1.0);  // Default: no simulated time.
  EXPECT_EQ(flight_recorded(), 2u);
  EXPECT_EQ(flight_dropped(), 0u);
}

TEST_F(FlightRecorderTest, RingWrapKeepsNewestAndTalliesDrops) {
  for (std::uint64_t i = 0; i < kFlightRingCapacity + 7; ++i) {
    flight_record("test", "flood", i);
  }
  if (kCompiledOut) {
    EXPECT_EQ(flight_dropped(), 0u);
    return;
  }
  EXPECT_EQ(flight_recorded(), kFlightRingCapacity + 7);
  EXPECT_EQ(flight_dropped(), 7u);
  const std::vector<FlightRecord> records = flight_snapshot();
  ASSERT_EQ(records.size(), kFlightRingCapacity);
  EXPECT_EQ(records.front().a, 7u);  // 0..6 were overwritten.
  EXPECT_EQ(records.back().a, kFlightRingCapacity + 6);
}

TEST_F(FlightRecorderTest, ThreadsGetOwnRingsAndMergeInSeqOrder) {
  flight_record("test", "main-before");
  std::thread worker([] { flight_record("test", "worker"); });
  worker.join();
  flight_record("test", "main-after");
  const std::vector<FlightRecord> records = flight_snapshot();
  if (kCompiledOut) {
    EXPECT_TRUE(records.empty());
    return;
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_STREQ(records[0].event, "main-before");
  EXPECT_STREQ(records[1].event, "worker");
  EXPECT_STREQ(records[2].event, "main-after");
  EXPECT_NE(records[1].tid, records[0].tid);
  EXPECT_EQ(records[2].tid, records[0].tid);
}

// Golden dump schema: meta line first, then one JSON object per record —
// EXPERIMENTS.md documents exactly this.
TEST_F(FlightRecorderTest, DumpIsMetaLinePlusJsonlRecords) {
  flight_record("provenance", "merged", 11, 22, 33, 1.5);
  std::ostringstream out;
  write_flight_dump(out, "unit-test");
  const std::string dump = out.str();
  if (kCompiledOut) {
    EXPECT_EQ(dump,
              "{\"flight_recorder\":\"rfidsim\",\"reason\":\"unit-test\","
              "\"recorded\":0,\"dropped\":0}\n");
    return;
  }
  EXPECT_NE(dump.find("{\"flight_recorder\":\"rfidsim\",\"reason\":\"unit-test\","
                      "\"recorded\":1,\"dropped\":0}\n"),
            std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"provenance\",\"event\":\"merged\",\"a\":11,"
                      "\"b\":22,\"c\":33,\"t_s\":1.500000,"),
            std::string::npos);
}

TEST_F(FlightRecorderTest, ExplicitDumpLandsAtomicallyOnDisk) {
  flight_record("test", "persisted", 99);
  const std::string path = ::testing::TempDir() + "rfidsim_flight_dump_test.jsonl";
  ASSERT_TRUE(dump_flight_recorder(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string meta;
  ASSERT_TRUE(std::getline(in, meta));
  EXPECT_NE(meta.find("\"flight_recorder\":\"rfidsim\""), std::string::npos);
  EXPECT_NE(meta.find("\"reason\":\"explicit\""), std::string::npos);
  std::size_t records = 0;
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++records;
  }
  EXPECT_EQ(records, kCompiledOut ? 0u : 1u);
  // tmp + rename: no temporary may survive a successful dump.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ClearZeroesRecordsAndTallies) {
  for (std::uint64_t i = 0; i < kFlightRingCapacity + 3; ++i) {
    flight_record("test", "gone", i);
  }
  clear_flight_recorder();
  EXPECT_TRUE(flight_snapshot().empty());
  EXPECT_EQ(flight_recorded(), 0u);
  EXPECT_EQ(flight_dropped(), 0u);
  flight_record("test", "back");
  EXPECT_EQ(flight_snapshot().size(), kCompiledOut ? 0u : 1u);
}

TEST_F(FlightRecorderTest, DisabledHooksRecordNothing) {
  set_enabled(false);
  flight_record("test", "invisible");
  EXPECT_TRUE(flight_snapshot().empty());
  EXPECT_EQ(flight_recorded(), 0u);
}

#if (defined(__unix__) || defined(__APPLE__)) && !defined(__SANITIZE_THREAD__)

/// End-to-end crash path in a forked child: install the handler, record,
/// die on SIGABRT. The parent asserts the default disposition was
/// re-raised (the exit status is the signal, not a handler exit) and the
/// dump landed, meta line first.
TEST_F(FlightRecorderTest, CrashHandlerDumpsOnFatalSignal) {
  const std::string path = ::testing::TempDir() + "rfidsim_crash_dump_test.jsonl";
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    if (!install_crash_handler(path)) _Exit(10);
    flight_record("test", "pre-crash", 7);
    std::raise(SIGABRT);
    _Exit(11);  // Unreachable: the handler re-raises with default disposition.
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler left no dump at " << path;
  std::string meta;
  ASSERT_TRUE(std::getline(in, meta));
  EXPECT_NE(meta.find("\"flight_recorder\":\"rfidsim\""), std::string::npos);
  EXPECT_NE(meta.find("\"reason\":\"signal:"), std::string::npos);
  bool saw_record = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"event\":\"pre-crash\"") != std::string::npos) saw_record = true;
  }
  EXPECT_EQ(saw_record, !kCompiledOut);
  std::remove(path.c_str());
}

TEST(FlightRecorderInstallTest, InstallRecordsTheDumpPath) {
  // Installing twice replaces the path (the handler dumps to the latest).
  EXPECT_TRUE(install_crash_handler("first.jsonl"));
  EXPECT_STREQ(crash_dump_path(), "first.jsonl");
  EXPECT_TRUE(install_crash_handler("second.jsonl"));
  EXPECT_STREQ(crash_dump_path(), "second.jsonl");
}

#endif  // unix && !tsan

TEST_F(FlightRecorderTest, DumpStatusCountersTrackAttemptsAndFailures) {
  const std::uint64_t attempts = flight_dump_attempts();
  const std::uint64_t failures = flight_dump_failures();
  const std::string ok_path = "flight_dump_status.jsonl";
  EXPECT_TRUE(dump_flight_recorder(ok_path));
  EXPECT_EQ(flight_dump_attempts(), attempts + 1);
  EXPECT_EQ(flight_dump_failures(), failures);
  // A dump into a directory that does not exist must fail loudly — and the
  // failure tally is what health_snapshot() surfaces fleet-wide.
  EXPECT_FALSE(dump_flight_recorder("no_such_dir/flight_dump_status.jsonl"));
  EXPECT_EQ(flight_dump_attempts(), attempts + 2);
  EXPECT_EQ(flight_dump_failures(), failures + 1);
  std::remove(ok_path.c_str());
}

}  // namespace
}  // namespace rfidsim::obs
