// Freshness-side monitoring: the event-time low-watermark stall detector.
// All of this is always-on arithmetic (the feedback-free contract), so the
// same assertions hold with obs hooks on, off, or compiled out.
#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfidsim::obs {
namespace {

WatermarkObservation mark(double watermark_s, double window_end_s) {
  WatermarkObservation obs;
  obs.watermark_s = watermark_s;
  obs.window_end_s = window_end_s;
  return obs;
}

TEST(WatermarkMonitorTest, AdvancingWatermarkNeverAlerts) {
  ReliabilityMonitor monitor;
  for (int pass = 0; pass < 20; ++pass) {
    const double end = 10.0 * (pass + 1);
    monitor.observe_watermark(mark(end - 0.5, end));
  }
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_FALSE(monitor.watermark_stalled());
  EXPECT_EQ(monitor.watermark_stall_streak(), 0u);
  EXPECT_DOUBLE_EQ(monitor.watermark_s(), 199.5);
  EXPECT_DOUBLE_EQ(monitor.watermark_age_s(), 0.5);
}

TEST(WatermarkMonitorTest, AgeIsInfiniteUntilAnythingMerges) {
  ReliabilityMonitor monitor;
  EXPECT_TRUE(std::isinf(monitor.watermark_age_s()));
  EXPECT_LT(monitor.watermark_s(), 0.0);
  // A pass that merged nothing (watermark still negative) keeps it so.
  monitor.observe_watermark(mark(-1.0, 10.0));
  EXPECT_TRUE(std::isinf(monitor.watermark_age_s()));
  // The first merge makes the age finite.
  monitor.observe_watermark(mark(15.0, 20.0));
  EXPECT_DOUBLE_EQ(monitor.watermark_age_s(), 5.0);
}

TEST(WatermarkMonitorTest, StallFiresAfterExactlyStallPassesAndLatches) {
  MonitorConfig config;
  config.watermark_stall_passes = 3;
  ReliabilityMonitor monitor(config);
  // Healthy prefix: five advancing passes.
  for (int pass = 0; pass < 5; ++pass) {
    const double end = 10.0 * (pass + 1);
    monitor.observe_watermark(mark(end - 1.0, end));
  }
  ASSERT_TRUE(monitor.alerts().empty());
  // The uplink goes dark: windows keep moving, the watermark sits at 49.
  for (int pass = 5; pass < 12; ++pass) {
    monitor.observe_watermark(mark(49.0, 10.0 * (pass + 1)));
  }
  // Latched: a seven-pass outage is one alert, not seven.
  ASSERT_EQ(monitor.alerts().size(), 1u);
  const Alert& alert = monitor.alerts()[0];
  EXPECT_EQ(alert.type, AlertType::kWatermarkStalled);
  EXPECT_EQ(alert.pass, 7u);  // Stalled passes 5, 6, 7 -> fires on the third.
  EXPECT_EQ(alert.reader, -1);
  EXPECT_DOUBLE_EQ(alert.value, 3.0);      // Streak at firing time.
  EXPECT_DOUBLE_EQ(alert.threshold, 3.0);  // = watermark_stall_passes.
  EXPECT_EQ(alert.detector, "watermark");
  EXPECT_TRUE(monitor.watermark_stalled());
  EXPECT_EQ(monitor.watermark_stall_streak(), 7u);
  // Detection latency is stall_passes - 1 passes past the onset (onset
  // itself is the first non-advancing pass).
  EXPECT_EQ(alert.pass - 5u, config.watermark_stall_passes - 1);
}

TEST(WatermarkMonitorTest, AlertReArmsAfterTheWatermarkAdvances) {
  MonitorConfig config;
  config.watermark_stall_passes = 2;
  ReliabilityMonitor monitor(config);
  monitor.observe_watermark(mark(9.0, 10.0));
  monitor.observe_watermark(mark(9.0, 20.0));
  monitor.observe_watermark(mark(9.0, 30.0));
  ASSERT_EQ(monitor.alerts().size(), 1u);
  // Recovery: fresh events reach stored truth, the latch clears...
  monitor.observe_watermark(mark(39.0, 40.0));
  EXPECT_FALSE(monitor.watermark_stalled());
  EXPECT_EQ(monitor.watermark_stall_streak(), 0u);
  // ...and a second outage fires a second alert.
  monitor.observe_watermark(mark(39.0, 50.0));
  monitor.observe_watermark(mark(39.0, 60.0));
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[1].pass, 5u);
}

TEST(WatermarkMonitorTest, StationaryWindowSaysNothingAboutFreshness) {
  MonitorConfig config;
  config.watermark_stall_passes = 2;
  ReliabilityMonitor monitor(config);
  monitor.observe_watermark(mark(9.0, 10.0));
  // Re-observing the same window must not accumulate stall passes: no
  // new window, no claim the feed failed to fill it.
  monitor.observe_watermark(mark(9.0, 10.0));
  monitor.observe_watermark(mark(9.0, 10.0));
  monitor.observe_watermark(mark(9.0, 10.0));
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_EQ(monitor.watermark_stall_streak(), 0u);
}

TEST(WatermarkMonitorTest, FirstAlertLookupAndTypeName) {
  EXPECT_STREQ(alert_type_name(AlertType::kWatermarkStalled), "watermark_stalled");
  ReliabilityMonitor monitor;  // Default stall threshold: 3 passes.
  for (int pass = 0; pass < 6; ++pass) {
    monitor.observe_watermark(mark(1.0, 10.0 * (pass + 1)));
  }
  const Alert* alert = monitor.first_alert(AlertType::kWatermarkStalled);
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert, monitor.first_alert(AlertType::kWatermarkStalled, -1));
  EXPECT_EQ(monitor.first_alert(AlertType::kSilence), nullptr);
}

TEST(WatermarkMonitorTest, ResetReturnsToTheVirginState) {
  ReliabilityMonitor monitor;
  for (int pass = 0; pass < 6; ++pass) {
    monitor.observe_watermark(mark(1.0, 10.0 * (pass + 1)));
  }
  ASSERT_TRUE(monitor.watermark_stalled());
  monitor.reset();
  EXPECT_FALSE(monitor.watermark_stalled());
  EXPECT_EQ(monitor.watermark_stall_streak(), 0u);
  EXPECT_LT(monitor.watermark_s(), 0.0);
  EXPECT_TRUE(std::isinf(monitor.watermark_age_s()));
  EXPECT_TRUE(monitor.alerts().empty());
}

}  // namespace
}  // namespace rfidsim::obs
