#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace rfidsim::obs {
namespace {

/// Under -DRFIDSIM_OBS=OFF record() is compiled down to nothing; the
/// recording tests then assert exactly that instead of skipping. Batch-id
/// minting is plumbing, not telemetry, and must work in both builds.
#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kCompiledOut = true;
#else
constexpr bool kCompiledOut = false;
#endif

/// Recording tests need hooks on (and restored afterwards — the switch is
/// process-wide); records mirror into the flight recorder, so that is
/// cleared too.
class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = enabled();
    set_enabled(true);
    clear_flight_recorder();
  }
  void TearDown() override {
    clear_flight_recorder();
    set_enabled(saved_);
  }

 private:
  bool saved_ = false;
};

TEST(ProvenanceBatchIdTest, IdsAreDeterministicNonZeroAndWellMixed) {
  EXPECT_EQ(provenance_batch_id(0, 0), provenance_batch_id(0, 0));
  EXPECT_NE(provenance_batch_id(0, 0), 0u);
  EXPECT_NE(provenance_batch_id(kNoFacility, 7), 0u);
  std::set<std::uint64_t> ids;
  for (std::uint32_t f = 0; f < 8; ++f) {
    for (std::uint64_t s = 0; s < 64; ++s) ids.insert(provenance_batch_id(f, s));
  }
  EXPECT_EQ(ids.size(), 8u * 64u);
}

TEST(ProvenanceBatchIdTest, HopNamesAreStable) {
  EXPECT_STREQ(batch_hop_name(BatchHop::kEnqueued), "enqueued");
  EXPECT_STREQ(batch_hop_name(BatchHop::kQuarantined), "quarantined");
  EXPECT_STREQ(batch_hop_name(BatchHop::kMerged), "merged");
  EXPECT_STREQ(batch_hop_name(BatchHop::kCheckpointed), "checkpointed");
  EXPECT_STREQ(batch_hop_name(BatchHop::kRestored), "restored");
}

TEST_F(ProvenanceTest, RecordSnapshotAndPerBatchHistory) {
  ProvenanceLog log(8);
  const std::uint64_t id = provenance_batch_id(1, 0);
  const std::uint64_t other = provenance_batch_id(2, 0);
  log.record({id, BatchHop::kEnqueued, 1, 100, 0.5});
  log.record({other, BatchHop::kEnqueued, 2, 50, 0.6});
  log.record({id, BatchHop::kMerged, 1, 100, 1.5});
  if (kCompiledOut) {
    EXPECT_EQ(log.recorded(), 0u);
    EXPECT_TRUE(log.snapshot().empty());
    return;
  }
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
  const std::vector<ProvenanceRecord> all = log.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].hop, BatchHop::kEnqueued);
  EXPECT_EQ(all[2].hop, BatchHop::kMerged);
  // history() reconstructs one batch's pipeline walk, oldest first.
  const std::vector<ProvenanceRecord> chain = log.history(id);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].hop, BatchHop::kEnqueued);
  EXPECT_EQ(chain[1].hop, BatchHop::kMerged);
  EXPECT_EQ(chain[1].value, 100u);
  EXPECT_EQ(chain[1].time_s, 1.5);
}

TEST_F(ProvenanceTest, RingWrapKeepsNewestAndTalliesDrops) {
  ProvenanceLog log(8);
  for (std::uint64_t i = 0; i < 11; ++i) {
    log.record({provenance_batch_id(0, i), BatchHop::kEnqueued, 0, i, 0.0});
  }
  if (kCompiledOut) {
    EXPECT_EQ(log.recorded(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    return;
  }
  EXPECT_EQ(log.recorded(), 11u);
  EXPECT_EQ(log.dropped(), 3u);
  const std::vector<ProvenanceRecord> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 8u);
  EXPECT_EQ(kept.front().value, 3u);  // 0..2 were overwritten.
  EXPECT_EQ(kept.back().value, 10u);
}

TEST_F(ProvenanceTest, RecordsMirrorIntoTheFlightRecorder) {
  ProvenanceLog log(8);
  const std::uint64_t id = provenance_batch_id(3, 9);
  log.record({id, BatchHop::kMerged, 3, 42, 2.0});
  const std::vector<FlightRecord> flight = flight_snapshot();
  if (kCompiledOut) {
    EXPECT_TRUE(flight.empty());
    return;
  }
  ASSERT_EQ(flight.size(), 1u);
  EXPECT_STREQ(flight[0].category, "provenance");
  EXPECT_STREQ(flight[0].event, "merged");
  EXPECT_EQ(flight[0].a, id);
  EXPECT_EQ(flight[0].b, 42u);
  EXPECT_EQ(flight[0].c, 3u);
  EXPECT_EQ(flight[0].time_s, 2.0);
}

// Golden JSONL schema (one object per line, kNoFacility as -1, fixed
// six-decimal times) — EXPERIMENTS.md documents exactly this.
TEST_F(ProvenanceTest, JsonlSchemaGolden) {
  ProvenanceLog log(8);
  log.record({7, BatchHop::kLost, 2, 13, 1.25});
  log.record({8, BatchHop::kCheckpointed, kNoFacility, 5, -1.0});
  std::ostringstream out;
  log.write_jsonl(out);
  if (kCompiledOut) {
    EXPECT_TRUE(out.str().empty());
    return;
  }
  EXPECT_EQ(out.str(),
            "{\"batch_id\":7,\"hop\":\"lost\",\"facility\":2,\"value\":13,"
            "\"t_s\":1.250000}\n"
            "{\"batch_id\":8,\"hop\":\"checkpointed\",\"facility\":-1,"
            "\"value\":5,\"t_s\":-1.000000}\n");
}

TEST_F(ProvenanceTest, ChromeTraceInstantEventsOnTheSimTimeAxis) {
  ProvenanceLog log(8);
  log.record({9, BatchHop::kDelivered, 4, 10, 0.0015});
  log.record({9, BatchHop::kCheckpointed, kNoFacility, 3, -1.0});
  std::ostringstream out;
  log.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  if (kCompiledOut) {
    EXPECT_EQ(json.find("\"ph\":\"i\""), std::string::npos);
    return;
  }
  // ts is simulated time in microseconds; tid the facility.
  EXPECT_NE(json.find("{\"name\":\"delivered\",\"ph\":\"i\",\"s\":\"t\","
                      "\"pid\":0,\"tid\":4,\"ts\":1500.000,"
                      "\"args\":{\"batch_id\":9,\"value\":10}}"),
            std::string::npos);
  // No-facility hops park on tid 0xffff with ts clamped at 0.
  EXPECT_NE(json.find("\"tid\":65535,\"ts\":0.000"), std::string::npos);
}

TEST_F(ProvenanceTest, DisabledHooksRecordNothing) {
  set_enabled(false);
  ProvenanceLog log(8);
  log.record({1, BatchHop::kEnqueued, 0, 1, 0.0});
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_TRUE(flight_snapshot().empty());
}

TEST_F(ProvenanceTest, ClearDiscardsRecordsAndTheLogKeepsWorking) {
  ProvenanceLog log(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    log.record({1, BatchHop::kEnqueued, 0, i, 0.0});
  }
  log.clear();
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
  log.record({2, BatchHop::kMerged, 0, 7, 0.0});
  EXPECT_EQ(log.recorded(), kCompiledOut ? 0u : 1u);
}

TEST_F(ProvenanceTest, ProcessWideLogIsOneInstance) {
  EXPECT_EQ(&provenance_log(), &provenance_log());
}

}  // namespace
}  // namespace rfidsim::obs
