#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace rfidsim::obs {
namespace {

/// When the subsystem is compiled out (-DRFIDSIM_OBS=OFF) spans are inert
/// no matter what the runtime switches say; the recording tests then
/// assert exactly that instead of skipping.
#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kCompiledOut = true;
#else
constexpr bool kCompiledOut = false;
#endif

/// Every test runs with a clean slate and restores the global switches:
/// the obs flags are process-wide and other suites in this binary depend
/// on their defaults.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_metrics_ = enabled();
    saved_trace_ = trace_enabled();
    set_enabled(true);
    set_trace_enabled(true);
    clear_trace();
  }
  void TearDown() override {
    clear_trace();
    set_trace_enabled(saved_trace_);
    set_enabled(saved_metrics_);
  }

 private:
  bool saved_metrics_ = false;
  bool saved_trace_ = false;
};

TEST_F(TraceTest, RecordsNestedSpansWithDepths) {
  {
    const TraceSpan outer("outer");
    {
      const TraceSpan middle("middle");
      const TraceSpan inner("inner");
    }
  }
  std::vector<TraceEvent> events = trace_snapshot();
  if (kCompiledOut) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), 3u);
  // Snapshot is sorted by start time: outer, middle, inner.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 2u);
  // Inner spans close before (or with) their parents.
  EXPECT_LE(events[2].start_ns + events[2].duration_ns,
            events[0].start_ns + events[0].duration_ns);
  // Sibling-after-nested restarts at the parent's depth + 1.
  {
    const TraceSpan outer("outer2");
    const TraceSpan sibling("sibling");
  }
  events = trace_snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[4].depth, 1u);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  set_trace_enabled(false);
  { const TraceSpan span("invisible"); }
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(TraceTest, MetricsMasterSwitchAlsoGatesTracing) {
  set_enabled(false);  // Tracing requires the master switch too.
  { const TraceSpan span("invisible"); }
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(TraceTest, SpanOpenAcrossDisableDoesNotRecord) {
  // The gate is checked at construction; a span that was alive when
  // tracing got switched off still completes without recording garbage.
  {
    set_trace_enabled(false);
    const TraceSpan span("started-disabled");
    set_trace_enabled(true);
  }
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(TraceTest, RingOverflowKeepsTheNewestSpans) {
  for (std::size_t i = 0; i < 100; ++i) {
    const TraceSpan span("old");
  }
  for (std::size_t i = 0; i < kTraceRingCapacity; ++i) {
    const TraceSpan span("new");
  }
  const std::vector<TraceEvent> events = trace_snapshot();
  if (kCompiledOut) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), kTraceRingCapacity);
  for (const TraceEvent& ev : events) EXPECT_STREQ(ev.name, "new");
}

TEST_F(TraceTest, ThreadsMergeWithDistinctTids) {
  std::thread a([] {
    const TraceSpan span("thread-a");
  });
  a.join();
  std::thread b([] {
    const TraceSpan span("thread-b");
  });
  b.join();
  { const TraceSpan span("main-thread"); }

  const std::vector<TraceEvent> events = trace_snapshot();
  if (kCompiledOut) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), 3u);
  std::set<std::uint32_t> tids;
  std::set<std::string> names;
  for (const TraceEvent& ev : events) {
    tids.insert(ev.tid);
    names.insert(ev.name);
  }
  EXPECT_EQ(tids.size(), 3u);  // Rings survive thread exit, tids distinct.
  EXPECT_EQ(names, (std::set<std::string>{"thread-a", "thread-b", "main-thread"}));
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  {
    const TraceSpan outer("pass");
    const TraceSpan inner("round");
  }
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  if (kCompiledOut) {
    EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
    return;
  }
  EXPECT_NE(json.find("\"name\":\"pass\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Timestamps are rebased: the earliest span starts at 0.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_EQ(json.find("e+"), std::string::npos) << "ts must not be scientific";
}

TEST_F(TraceTest, RingWrapTalliesDroppedSpans) {
  // clear_trace() in SetUp zeroed the tallies; overflow this thread's ring
  // by exactly five spans.
  for (std::size_t i = 0; i < kTraceRingCapacity + 5; ++i) {
    const TraceSpan span("wrap");
  }
  if (kCompiledOut) {
    EXPECT_EQ(trace_dropped_spans(), 0u);
    return;
  }
  EXPECT_EQ(trace_dropped_spans(), 5u);
  EXPECT_EQ(trace_snapshot().size(), kTraceRingCapacity);
  // A clear re-arms the tally along with the rings.
  clear_trace();
  EXPECT_EQ(trace_dropped_spans(), 0u);
}

TEST_F(TraceTest, ClearTraceEmptiesEveryRing) {
  { const TraceSpan span("gone"); }
  std::thread t([] { const TraceSpan span("gone-too"); });
  t.join();
  clear_trace();
  EXPECT_TRUE(trace_snapshot().empty());
  // Rings keep working after a clear.
  { const TraceSpan span("back"); }
  EXPECT_EQ(trace_snapshot().size(), kCompiledOut ? 0u : 1u);
}

}  // namespace
}  // namespace rfidsim::obs
