#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace rfidsim::obs {
namespace {

TEST(CounterTest, StartsAtZeroAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsAllLand) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 4000.0);
}

TEST(HistogramTest, BucketAssignmentUsesInclusiveUpperBounds) {
  // Edges: 1, 2, 4, 8 (+Inf overflow at index 4).
  const Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 4});
  ASSERT_EQ(h.edges().size(), 4u);
  Histogram hist({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 4});
  hist.observe(0.5);   // <= 1 -> bucket 0.
  hist.observe(1.0);   // Edge values are inclusive -> bucket 0.
  hist.observe(1.001); // -> bucket 1.
  hist.observe(8.0);   // Last finite edge -> bucket 3.
  hist.observe(9.0);   // Overflow -> +Inf bucket.
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 0u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.bucket_count(4), 1u);  // +Inf.
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.001 + 8.0 + 9.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  const Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 3});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  for (std::size_t i = 0; i <= h.edges().size(); ++i) EXPECT_EQ(h.bucket_count(i), 0u);
}

TEST(HistogramTest, SingleObservationLandsInExactlyOneBucket) {
  Histogram h({.first_upper_bound = 1.0, .growth = 10.0, .buckets = 3});
  h.observe(5.0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= h.edges().size(); ++i) total += h.bucket_count(i);
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);  // (1, 10].
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
}

TEST(HistogramTest, AllEqualObservationsStackInOneBucket) {
  Histogram h({.first_upper_bound = 0.001, .growth = 2.0, .buckets = 8});
  for (int i = 0; i < 100; ++i) h.observe(0.01);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bucket_count(4), 100u);  // 0.008 < 0.01 <= 0.016.
  EXPECT_DOUBLE_EQ(h.sum(), 100 * 0.01);
}

TEST(HistogramTest, ResetZeroesCountsButKeepsEdges) {
  Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 4});
  h.observe(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.edges().size(), 4u);
}

// The edges must be exactly the result of repeated IEEE-754 double
// multiplication — the golden values below pin that down so any change
// (powers, long double, reassociation) shows up as a bucket-boundary
// break instead of silent drift between platforms or builds.
TEST(HistogramTest, DefaultSpecEdgesAreBitExact) {
  const Histogram h({});  // first 1e-6, growth 4, 16 buckets.
  ASSERT_EQ(h.edges().size(), 16u);
  // 4x growth shifts the exponent: mantissa is constant.
  EXPECT_EQ(h.edges()[0], 0x1.0c6f7a0b5ed8dp-20);   // 1e-6.
  EXPECT_EQ(h.edges()[5], 0x1.0c6f7a0b5ed8dp-10);   // 1.024e-3.
  EXPECT_EQ(h.edges()[10], 0x1.0c6f7a0b5ed8dp+0);   // 1.048576.
  EXPECT_EQ(h.edges()[15], 0x1.0c6f7a0b5ed8dp+10);  // 1073.741824.
}

TEST(HistogramTest, NonDyadicGrowthEdgesAreBitExact) {
  const Histogram h({.first_upper_bound = 0.001, .growth = 2.5, .buckets = 6});
  EXPECT_EQ(h.edges()[0], 0x1.0624dd2f1a9fcp-10);
  EXPECT_EQ(h.edges()[1], 0x1.47ae147ae147bp-9);
  EXPECT_EQ(h.edges()[2], 0x1.999999999999ap-8);
  EXPECT_EQ(h.edges()[3], 0x1p-6);  // 0.001 * 2.5^3 rounds to exactly 1/64.
  EXPECT_EQ(h.edges()[5], 0x1.9p-4);
}

TEST(HistogramTest, InvalidSpecsThrow) {
  EXPECT_THROW(Histogram({.first_upper_bound = 0.0}), ConfigError);
  EXPECT_THROW(Histogram({.first_upper_bound = -1.0}), ConfigError);
  EXPECT_THROW(Histogram({.growth = 1.0}), ConfigError);
  EXPECT_THROW(Histogram({.buckets = 0}), ConfigError);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("layer.signal");
  Counter& b = reg.counter("layer.signal");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("layer.level");
  Gauge& g2 = reg.gauge("layer.level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("layer.durations");
  Histogram& h2 = reg.histogram("layer.durations");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter("layer.signal");
  EXPECT_THROW(reg.gauge("layer.signal"), ConfigError);
  EXPECT_THROW(reg.histogram("layer.signal"), ConfigError);
  reg.histogram("layer.durations");
  EXPECT_THROW(reg.counter("layer.durations"), ConfigError);
}

TEST(MetricsRegistryTest, HistogramSpecAppliesOnFirstCreationOnly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {.first_upper_bound = 1.0, .growth = 2.0, .buckets = 3});
  Histogram& again = reg.histogram("h", {.first_upper_bound = 9.0, .growth = 9.0, .buckets = 9});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.edges().size(), 3u);
  EXPECT_EQ(again.edges()[0], 1.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(7);
  Gauge& g = reg.gauge("g");
  g.set(1.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(&reg.counter("c"), &c);  // Same handle survives the reset.
}

TEST(MetricsRegistryTest, ConcurrentRegistrationOfOneNameIsSafe) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, &handles, t] {
      Counter& c = reg.counter("contended.name");
      c.add(100);
      handles[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& th : threads) th.join();
  for (Counter* h : handles) EXPECT_EQ(h, handles[0]);
  EXPECT_EQ(reg.counter("contended.name").value(), 800u);
}

// Golden exposition dump: pins name mangling, TYPE lines, sort order,
// cumulative histogram buckets, the +Inf terminator and number formatting
// all at once. Update deliberately or not at all.
TEST(MetricsRegistryTest, ExpositionGolden) {
  MetricsRegistry reg;
  reg.counter("gen2.rounds").add(3);
  reg.gauge("sweep.pool.queue_depth").set(2.5);
  Histogram& h =
      reg.histogram("gen2.round_duration_seconds",
                    {.first_upper_bound = 0.001, .growth = 10.0, .buckets = 3});
  h.observe(0.0005);
  h.observe(0.02);
  h.observe(0.02);
  h.observe(5.0);  // Overflows into +Inf.
  const std::string expected =
      "# TYPE rfidsim_gen2_round_duration_seconds histogram\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"0.001\"} 1\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"0.01\"} 1\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"0.1\"} 3\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"+Inf\"} 4\n"
      "rfidsim_gen2_round_duration_seconds_sum 5.0405\n"
      "rfidsim_gen2_round_duration_seconds_count 4\n"
      "# TYPE rfidsim_gen2_rounds counter\n"
      "rfidsim_gen2_rounds 3\n"
      "# TYPE rfidsim_sweep_pool_queue_depth gauge\n"
      "rfidsim_sweep_pool_queue_depth 2.5\n";
  EXPECT_EQ(reg.exposition(), expected);
  std::ostringstream out;
  reg.write_exposition(out);
  EXPECT_EQ(out.str(), expected);
}

TEST(EnvModeTest, ParsesTheDocumentedValues) {
  EXPECT_TRUE(env_mode(nullptr).metrics);
  EXPECT_FALSE(env_mode(nullptr).trace);
  for (const char* off : {"off", "0", "false", "OFF"}) {
    EXPECT_FALSE(env_mode(off).metrics) << off;
    EXPECT_FALSE(env_mode(off).trace) << off;
  }
  EXPECT_TRUE(env_mode("trace").metrics);
  EXPECT_TRUE(env_mode("trace").trace);
  EXPECT_TRUE(env_mode("anything-else").metrics);
  EXPECT_FALSE(env_mode("anything-else").trace);
}

TEST(GlobalRegistryTest, ShorthandsHitTheProcessWideInstance) {
  Counter& c = counter("obs_test.shorthand");
  EXPECT_EQ(&c, &registry().counter("obs_test.shorthand"));
}

}  // namespace
}  // namespace rfidsim::obs
