#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace rfidsim::obs {
namespace {

TEST(CounterTest, StartsAtZeroAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsAllLand) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 4000.0);
}

TEST(HistogramTest, BucketAssignmentUsesInclusiveUpperBounds) {
  // Edges: 1, 2, 4, 8 (+Inf overflow at index 4).
  const Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 4});
  ASSERT_EQ(h.edges().size(), 4u);
  Histogram hist({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 4});
  hist.observe(0.5);   // <= 1 -> bucket 0.
  hist.observe(1.0);   // Edge values are inclusive -> bucket 0.
  hist.observe(1.001); // -> bucket 1.
  hist.observe(8.0);   // Last finite edge -> bucket 3.
  hist.observe(9.0);   // Overflow -> +Inf bucket.
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 0u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.bucket_count(4), 1u);  // +Inf.
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.001 + 8.0 + 9.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  const Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 3});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  for (std::size_t i = 0; i <= h.edges().size(); ++i) EXPECT_EQ(h.bucket_count(i), 0u);
}

TEST(HistogramTest, SingleObservationLandsInExactlyOneBucket) {
  Histogram h({.first_upper_bound = 1.0, .growth = 10.0, .buckets = 3});
  h.observe(5.0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= h.edges().size(); ++i) total += h.bucket_count(i);
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);  // (1, 10].
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
}

TEST(HistogramTest, AllEqualObservationsStackInOneBucket) {
  Histogram h({.first_upper_bound = 0.001, .growth = 2.0, .buckets = 8});
  for (int i = 0; i < 100; ++i) h.observe(0.01);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bucket_count(4), 100u);  // 0.008 < 0.01 <= 0.016.
  EXPECT_DOUBLE_EQ(h.sum(), 100 * 0.01);
}

TEST(HistogramTest, ResetZeroesCountsButKeepsEdges) {
  Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 4});
  h.observe(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.edges().size(), 4u);
}

// The edges must be exactly the result of repeated IEEE-754 double
// multiplication — the golden values below pin that down so any change
// (powers, long double, reassociation) shows up as a bucket-boundary
// break instead of silent drift between platforms or builds.
TEST(HistogramTest, DefaultSpecEdgesAreBitExact) {
  const Histogram h({});  // first 1e-6, growth 4, 16 buckets.
  ASSERT_EQ(h.edges().size(), 16u);
  // 4x growth shifts the exponent: mantissa is constant.
  EXPECT_EQ(h.edges()[0], 0x1.0c6f7a0b5ed8dp-20);   // 1e-6.
  EXPECT_EQ(h.edges()[5], 0x1.0c6f7a0b5ed8dp-10);   // 1.024e-3.
  EXPECT_EQ(h.edges()[10], 0x1.0c6f7a0b5ed8dp+0);   // 1.048576.
  EXPECT_EQ(h.edges()[15], 0x1.0c6f7a0b5ed8dp+10);  // 1073.741824.
}

TEST(HistogramTest, NonDyadicGrowthEdgesAreBitExact) {
  const Histogram h({.first_upper_bound = 0.001, .growth = 2.5, .buckets = 6});
  EXPECT_EQ(h.edges()[0], 0x1.0624dd2f1a9fcp-10);
  EXPECT_EQ(h.edges()[1], 0x1.47ae147ae147bp-9);
  EXPECT_EQ(h.edges()[2], 0x1.999999999999ap-8);
  EXPECT_EQ(h.edges()[3], 0x1p-6);  // 0.001 * 2.5^3 rounds to exactly 1/64.
  EXPECT_EQ(h.edges()[5], 0x1.9p-4);
}

TEST(HistogramTest, InvalidSpecsThrow) {
  EXPECT_THROW(Histogram({.first_upper_bound = 0.0}), ConfigError);
  EXPECT_THROW(Histogram({.first_upper_bound = -1.0}), ConfigError);
  EXPECT_THROW(Histogram({.growth = 1.0}), ConfigError);
  EXPECT_THROW(Histogram({.buckets = 0}), ConfigError);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("layer.signal");
  Counter& b = reg.counter("layer.signal");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("layer.level");
  Gauge& g2 = reg.gauge("layer.level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("layer.durations");
  Histogram& h2 = reg.histogram("layer.durations");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter("layer.signal");
  EXPECT_THROW(reg.gauge("layer.signal"), ConfigError);
  EXPECT_THROW(reg.histogram("layer.signal"), ConfigError);
  reg.histogram("layer.durations");
  EXPECT_THROW(reg.counter("layer.durations"), ConfigError);
}

TEST(MetricsRegistryTest, HistogramSpecAppliesOnFirstCreationOnly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {.first_upper_bound = 1.0, .growth = 2.0, .buckets = 3});
  Histogram& again = reg.histogram("h", {.first_upper_bound = 9.0, .growth = 9.0, .buckets = 9});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.edges().size(), 3u);
  EXPECT_EQ(again.edges()[0], 1.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(7);
  Gauge& g = reg.gauge("g");
  g.set(1.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(&reg.counter("c"), &c);  // Same handle survives the reset.
}

TEST(MetricsRegistryTest, ConcurrentRegistrationOfOneNameIsSafe) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, &handles, t] {
      Counter& c = reg.counter("contended.name");
      c.add(100);
      handles[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& th : threads) th.join();
  for (Counter* h : handles) EXPECT_EQ(h, handles[0]);
  EXPECT_EQ(reg.counter("contended.name").value(), 800u);
}

// Golden exposition dump: pins name mangling, TYPE lines, sort order,
// cumulative histogram buckets, the +Inf terminator and number formatting
// all at once. Update deliberately or not at all.
TEST(MetricsRegistryTest, ExpositionGolden) {
  MetricsRegistry reg;
  reg.counter("gen2.rounds").add(3);
  reg.gauge("sweep.pool.queue_depth").set(2.5);
  Histogram& h =
      reg.histogram("gen2.round_duration_seconds",
                    {.first_upper_bound = 0.001, .growth = 10.0, .buckets = 3});
  h.observe(0.0005);
  h.observe(0.02);
  h.observe(0.02);
  h.observe(5.0);  // Overflows into +Inf.
  const std::string expected =
      "# TYPE rfidsim_gen2_round_duration_seconds histogram\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"0.001\"} 1\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"0.01\"} 1\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"0.1\"} 3\n"
      "rfidsim_gen2_round_duration_seconds_bucket{le=\"+Inf\"} 4\n"
      "rfidsim_gen2_round_duration_seconds_sum 5.0405\n"
      "rfidsim_gen2_round_duration_seconds_count 4\n"
      "# rfidsim_gen2_round_duration_seconds{quantile=\"0.5\"} 0.0316227766\n"
      "# rfidsim_gen2_round_duration_seconds{quantile=\"0.95\"} 0.1\n"
      "# rfidsim_gen2_round_duration_seconds{quantile=\"0.99\"} 0.1\n"
      "# TYPE rfidsim_gen2_rounds counter\n"
      "rfidsim_gen2_rounds 3\n"
      "# TYPE rfidsim_sweep_pool_queue_depth gauge\n"
      "rfidsim_sweep_pool_queue_depth 2.5\n";
  EXPECT_EQ(reg.exposition(), expected);
  std::ostringstream out;
  reg.write_exposition(out);
  EXPECT_EQ(out.str(), expected);
}

// Golden hexfloat pins for the log-bucket quantile interpolation: a rank
// fraction f inside a bucket maps to lo * (hi/lo)^f. The chosen loads
// make the interpolants mathematically exact powers of 2 and 4^(3/4), so
// any change to the interpolation (linear instead of geometric, different
// lower edge for bucket 0, off-by-one ranks) breaks bit-exactly.
TEST(HistogramQuantileTest, LogBucketInterpolationGolden) {
  Histogram h({.first_upper_bound = 1e-3, .growth = 4.0, .buckets = 8});
  // 20 obs in (0.001, 0.004], 60 in (0.004, 0.016], 20 in (0.016, 0.064].
  for (int i = 0; i < 100; ++i) h.observe(0.002 * (1 + i % 10));
  EXPECT_EQ(h.quantile(0.5), 0x1.0624dd2f1a9fcp-7);    // 0.004 * 4^0.5 = 0.008.
  EXPECT_EQ(h.quantile(0.95), 0x1.72ba43fff3718p-5);   // 0.016 * 4^0.75.
  EXPECT_EQ(h.quantile(0.99), 0x1.e92d917a58c5cp-5);   // 0.016 * 4^0.9.
}

TEST(HistogramQuantileTest, BracketBucketEdgesAndEmpty) {
  Histogram one({.first_upper_bound = 1.0, .growth = 4.0, .buckets = 4});
  one.observe(2.0);
  one.observe(3.0);
  // Both obs sit in bucket 1 (1, 4]: rank fraction 0.25 -> 1 * 4^0.25.
  EXPECT_EQ(one.quantile(0.25), 0x1.6a09e667f3bcdp+0);  // sqrt(2).
  EXPECT_EQ(one.quantile(0.0), 1.0);   // Lower edge of the bracketing bucket.
  EXPECT_EQ(one.quantile(1.0), 4.0);   // Upper edge.

  const Histogram empty({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 3});
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_THROW(one.quantile(-0.01), ConfigError);
  EXPECT_THROW(one.quantile(1.01), ConfigError);
}

TEST(HistogramQuantileTest, OverflowMassClampsToLastFiniteEdge) {
  Histogram h({.first_upper_bound = 1.0, .growth = 2.0, .buckets = 3});  // 1, 2, 4.
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_EQ(h.quantile(0.5), 4.0);
  EXPECT_EQ(h.quantile(0.99), 4.0);
}

TEST(LabelTest, EscapeLabelValueHandlesBackslashQuoteNewline) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(LabelTest, SameLabelsReturnSameHandleRegardlessOfOrder) {
  MetricsRegistry reg;
  Counter& a = reg.counter("portal.reader_rounds", {{"reader", "0"}, {"site", "x"}});
  Counter& b = reg.counter("portal.reader_rounds", {{"site", "x"}, {"reader", "0"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("portal.reader_rounds", {{"reader", "1"}, {"site", "x"}});
  EXPECT_NE(&a, &other);
  // The plain (unlabelled) metric of the family is yet another child.
  Counter& plain = reg.counter("portal.reader_rounds");
  EXPECT_NE(&plain, &a);
  EXPECT_EQ(&plain, &reg.counter("portal.reader_rounds"));
}

TEST(LabelTest, KindMustAgreeAcrossTheWholeFamily) {
  MetricsRegistry reg;
  reg.counter("layer.signal", {{"reader", "0"}});
  EXPECT_THROW(reg.gauge("layer.signal"), ConfigError);
  EXPECT_THROW(reg.gauge("layer.signal", {{"reader", "1"}}), ConfigError);
  EXPECT_THROW(reg.histogram("layer.signal", {{"reader", "0"}}), ConfigError);
  // A *different* family whose name shares a prefix is unaffected.
  reg.gauge("layer.signal_level");
  reg.gauge("layer.sig");
}

TEST(LabelTest, DuplicateLabelKeysThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("x", {{"k", "1"}, {"k", "2"}}), ConfigError);
  EXPECT_THROW(reg.counter("x", {{"", "1"}}), ConfigError);
}

// Labelled exposition golden: one # TYPE line per family, children
// sorted by label set right after the plain sample, escaped values, and
// histogram children splicing `le` after their labels.
TEST(LabelTest, ExpositionGroupsFamiliesAndEscapesValues) {
  MetricsRegistry reg;
  reg.counter("sys.portal.reader_rounds", {{"reader", "0"}}).add(10);
  reg.counter("sys.portal.reader_rounds", {{"reader", "1"}}).add(20);
  reg.counter("sys.portal.rounds").add(30);
  reg.gauge("obs.rate", {{"stream", "a\"b\\c\nd"}}).set(0.5);
  Histogram& h = reg.histogram("obs.lat", {{"reader", "0"}},
                               {.first_upper_bound = 1.0, .growth = 2.0, .buckets = 2});
  h.observe(1.5);
  const std::string expected =
      "# TYPE rfidsim_obs_lat histogram\n"
      "rfidsim_obs_lat_bucket{reader=\"0\",le=\"1\"} 0\n"
      "rfidsim_obs_lat_bucket{reader=\"0\",le=\"2\"} 1\n"
      "rfidsim_obs_lat_bucket{reader=\"0\",le=\"+Inf\"} 1\n"
      "rfidsim_obs_lat_sum{reader=\"0\"} 1.5\n"
      "rfidsim_obs_lat_count{reader=\"0\"} 1\n"
      "# rfidsim_obs_lat{reader=\"0\",quantile=\"0.5\"} 1.41421356\n"
      "# rfidsim_obs_lat{reader=\"0\",quantile=\"0.95\"} 1.93187266\n"
      "# rfidsim_obs_lat{reader=\"0\",quantile=\"0.99\"} 1.98618499\n"
      "# TYPE rfidsim_obs_rate gauge\n"
      "rfidsim_obs_rate{stream=\"a\\\"b\\\\c\\nd\"} 0.5\n"
      "# TYPE rfidsim_sys_portal_reader_rounds counter\n"
      "rfidsim_sys_portal_reader_rounds{reader=\"0\"} 10\n"
      "rfidsim_sys_portal_reader_rounds{reader=\"1\"} 20\n"
      "# TYPE rfidsim_sys_portal_rounds counter\n"
      "rfidsim_sys_portal_rounds 30\n";
  EXPECT_EQ(reg.exposition(), expected);
}

// The registry primitives are plain data structures, deliberately outside
// the hooks_enabled() gate: a standalone registry must render the exact
// same labelled-histogram exposition (buckets, sum/count, quantile comment
// lines) with the master switch off — and under the -DRFIDSIM_OBS=OFF
// cross-build, where hooks_enabled() is constant false. The OBS=OFF CI job
// runs this very test to pin that.
TEST(LabelTest, LabelledHistogramExpositionSurvivesDisabledHooks) {
  const bool saved = enabled();
  set_enabled(false);
#ifdef RFIDSIM_OBS_DISABLED
  EXPECT_FALSE(hooks_enabled());
#endif
  MetricsRegistry reg;
  Histogram& h = reg.histogram(
      "fleet.feed.visibility_lag_seconds", {{"facility", "3"}},
      {.first_upper_bound = 1.0, .growth = 2.0, .buckets = 2});
  h.observe(1.5);
  const std::string text = reg.exposition();
  set_enabled(saved);
  const std::string expected =
      "# TYPE rfidsim_fleet_feed_visibility_lag_seconds histogram\n"
      "rfidsim_fleet_feed_visibility_lag_seconds_bucket{facility=\"3\",le=\"1\"} 0\n"
      "rfidsim_fleet_feed_visibility_lag_seconds_bucket{facility=\"3\",le=\"2\"} 1\n"
      "rfidsim_fleet_feed_visibility_lag_seconds_bucket{facility=\"3\",le=\"+Inf\"} 1\n"
      "rfidsim_fleet_feed_visibility_lag_seconds_sum{facility=\"3\"} 1.5\n"
      "rfidsim_fleet_feed_visibility_lag_seconds_count{facility=\"3\"} 1\n"
      "# rfidsim_fleet_feed_visibility_lag_seconds{facility=\"3\",quantile=\"0.5\"} 1.41421356\n"
      "# rfidsim_fleet_feed_visibility_lag_seconds{facility=\"3\",quantile=\"0.95\"} 1.93187266\n"
      "# rfidsim_fleet_feed_visibility_lag_seconds{facility=\"3\",quantile=\"0.99\"} 1.98618499\n";
  EXPECT_EQ(text, expected);
}

TEST(LabelTest, GlobalShorthandsResolveLabelledChildren) {
  Counter& c = counter("obs_test.labelled", {{"k", "v"}});
  EXPECT_EQ(&c, &registry().counter("obs_test.labelled", {{"k", "v"}}));
  Gauge& g = gauge("obs_test.labelled_gauge", {{"k", "v"}});
  EXPECT_EQ(&g, &registry().gauge("obs_test.labelled_gauge", {{"k", "v"}}));
}

TEST(EnvModeTest, ParsesTheDocumentedValues) {
  EXPECT_TRUE(env_mode(nullptr).metrics);
  EXPECT_FALSE(env_mode(nullptr).trace);
  for (const char* off : {"off", "0", "false", "OFF"}) {
    EXPECT_FALSE(env_mode(off).metrics) << off;
    EXPECT_FALSE(env_mode(off).trace) << off;
  }
  EXPECT_TRUE(env_mode("trace").metrics);
  EXPECT_TRUE(env_mode("trace").trace);
  EXPECT_TRUE(env_mode("anything-else").metrics);
  EXPECT_FALSE(env_mode("anything-else").trace);
}

TEST(GlobalRegistryTest, ShorthandsHitTheProcessWideInstance) {
  Counter& c = counter("obs_test.shorthand");
  EXPECT_EQ(&c, &registry().counter("obs_test.shorthand"));
}

}  // namespace
}  // namespace rfidsim::obs
