// End-to-end detection behaviour of the reliability monitor against the
// real portal simulator: no false alarms over fault-free pass streams,
// and a pinned detection latency under the PR-1 reader crash/restart
// schedule. The monitor's detection path is plain arithmetic outside the
// obs hook gates, so every test here passes unchanged with
// -DRFIDSIM_OBS=OFF — that invariance is itself part of the contract
// (see monitor.hpp, Determinism).
#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/schedule.hpp"
#include "reliability/scenarios.hpp"
#include "system/portal.hpp"

namespace rfidsim::obs {
namespace {

// The bench seed (DSN 2007): the latency golden below must match the
// numbers ablation_infrastructure_faults section [9] prints.
constexpr std::uint64_t kSeed = 20070625;

reliability::Scenario monitor_scenario(double reader_mtbf_s, double reader_mttr_s) {
  reliability::ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  opt.portal.antenna_count = 2;
  opt.portal.reader_count = 2;
  reliability::Scenario sc = reliability::make_object_tracking_scenario(
      opt, reliability::CalibrationProfile::paper2006());
  if (reader_mtbf_s > 0.0) {
    sc.portal.faults.reader.mtbf_s = reader_mtbf_s;
    sc.portal.faults.reader.mttr_s = reader_mttr_s;
  }
  return sc;
}

// With healthy infrastructure the monitor must never speak: estimator
// noise across 100 independently seeded sweeps of the real simulator
// stays inside the drift thresholds and the divergence margin.
TEST(MonitorDetectionTest, FaultFreeSweepsRaiseNoAlertsAcrossOneHundredSeeds) {
  const reliability::Scenario sc = monitor_scenario(0.0, 0.0);
  sys::PortalSimulator sim(sc.scene, sc.portal);
  ReliabilityMonitor monitor;

  const Rng root(kSeed);
  constexpr std::size_t kSweeps = 100;
  for (std::size_t pass = 0; pass < kSweeps; ++pass) {
    Rng rng = root.fork(pass);
    const sys::EventLog log = sim.run(rng);
    monitor.observe_pass(sim.pass_observation(log));
  }

  EXPECT_EQ(monitor.passes(), kSweeps);
  EXPECT_TRUE(monitor.alerts().empty())
      << monitor.alerts().size() << " alert(s) on a fault-free stream; first: "
      << alert_type_name(monitor.alerts().front().type) << " at pass "
      << monitor.alerts().front().pass;
  // The independence model must also agree with observation when its
  // assumptions hold — fault-free passes are exactly that regime.
  EXPECT_NEAR(monitor.predicted_rc(), monitor.observed_rc(), 0.25);
}

// The ablation_infrastructure_faults section [9] run, pinned: 12 healthy
// passes, then the heavy crash/restart schedule (MTBF 1.5 s, MTTR 2 s)
// switches on. Both readers fault on the first degraded pass and the
// CUSUM over round deficits must fire a reader_degraded alert for each
// within a bounded, byte-stable number of passes.
TEST(MonitorDetectionTest, ReaderCrashScheduleDetectionLatencyGolden) {
  const reliability::Scenario healthy = monitor_scenario(0.0, 0.0);
  const reliability::Scenario faulted = monitor_scenario(1.5, 2.0);
  constexpr std::size_t kHealthyPasses = 12;
  constexpr std::size_t kTotalPasses = 28;
  const std::size_t reader_count = healthy.portal.readers.size();
  ASSERT_EQ(reader_count, 2u);

  sys::PortalSimulator sim_ok(healthy.scene, healthy.portal);
  sys::PortalSimulator sim_bad(faulted.scene, faulted.portal);
  ReliabilityMonitor monitor;

  std::vector<std::size_t> onset_pass(reader_count, kTotalPasses);
  std::size_t healthy_alerts = 0;
  const Rng root(kSeed);
  for (std::size_t pass = 0; pass < kTotalPasses; ++pass) {
    const bool fault_phase = pass >= kHealthyPasses;
    sys::PortalSimulator& sim = fault_phase ? sim_bad : sim_ok;
    Rng rng = root.fork(pass);
    const sys::EventLog log = sim.run(rng);
    if (fault_phase) {
      for (std::size_t r = 0; r < reader_count; ++r) {
        if (sim.fault_schedule().reader_downtime_s(r) > 0.0 &&
            onset_pass[r] == kTotalPasses) {
          onset_pass[r] = pass;
        }
      }
    }
    monitor.observe_pass(sim.pass_observation(log));
    if (!fault_phase) healthy_alerts = monitor.alerts().size();
  }

  EXPECT_EQ(healthy_alerts, 0u) << "alert fired during the fault-free phase";
  for (std::size_t r = 0; r < reader_count; ++r) {
    SCOPED_TRACE("reader " + std::to_string(r));
    // This schedule faults both readers on the very first degraded pass.
    ASSERT_EQ(onset_pass[r], kHealthyPasses);
    const Alert* alert =
        monitor.first_alert(AlertType::kReaderDegraded, static_cast<int>(r));
    ASSERT_NE(alert, nullptr) << "fault never detected";
    EXPECT_EQ(alert->detector, "cusum");
    // The golden latency: six passes from onset, matching the ablation's
    // section [9] table. A drift here means the detectors, the deficit
    // signal, or the simulator's fault sampling changed.
    EXPECT_EQ(alert->pass, 18u);
    EXPECT_GT(alert->value, monitor.config().cusum.threshold);
  }
}

}  // namespace
}  // namespace rfidsim::obs
