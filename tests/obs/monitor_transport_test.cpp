// observe_transport(): typed wire_corruption / stale_batch alerts with the
// same latched rising-edge semantics as the reader alerts.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"

namespace rfidsim::obs {
namespace {

TransportObservation clean_pass(double t) {
  TransportObservation obs;
  obs.frames = 10;
  obs.window_end_s = t;
  return obs;
}

TEST(MonitorTransportTest, CleanPassesRaiseNothing) {
  ReliabilityMonitor monitor;
  for (int i = 0; i < 8; ++i) {
    monitor.observe_transport(clean_pass(10.0 * i));
  }
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(MonitorTransportTest, CorruptFramesRaiseOnceWhileLatched) {
  ReliabilityMonitor monitor;
  TransportObservation obs = clean_pass(10.0);
  obs.corrupt_frames = 4;
  obs.recovered_batches = 2;
  // A five-pass corruption storm is ONE alert, not five.
  for (int i = 0; i < 5; ++i) {
    obs.window_end_s = 10.0 * (i + 1);
    monitor.observe_transport(obs);
  }
  ASSERT_EQ(monitor.alerts().size(), 1u);
  const Alert& alert = monitor.alerts()[0];
  EXPECT_EQ(alert.type, AlertType::kWireCorruption);
  EXPECT_EQ(alert.reader, -1);
  EXPECT_EQ(alert.detector, "wire");
  EXPECT_DOUBLE_EQ(alert.value, 0.4);  // 4 corrupt of 10 frames.
  EXPECT_EQ(alert.pass, 0u);
  EXPECT_STREQ(alert_type_name(alert.type), "wire_corruption");
}

TEST(MonitorTransportTest, CorruptionRearmsAfterACleanPass) {
  ReliabilityMonitor monitor;
  TransportObservation dirty = clean_pass(10.0);
  dirty.corrupt_frames = 1;
  monitor.observe_transport(dirty);
  monitor.observe_transport(clean_pass(20.0));  // Clears the latch.
  dirty.window_end_s = 30.0;
  monitor.observe_transport(dirty);
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[1].pass, 2u);
}

TEST(MonitorTransportTest, QuarantineAloneTriggersWireCorruption) {
  // A quarantined batch means corruption beat the NAK budget — alert even
  // if this pass's frame tally happens to be clean.
  ReliabilityMonitor monitor;
  TransportObservation obs = clean_pass(5.0);
  obs.quarantined_batches = 1;
  monitor.observe_transport(obs);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].type, AlertType::kWireCorruption);
}

TEST(MonitorTransportTest, StaleBatchesRaiseTypedLatchedAlert) {
  ReliabilityMonitor monitor;
  TransportObservation obs = clean_pass(10.0);
  obs.stale_batches = 3;
  monitor.observe_transport(obs);
  monitor.observe_transport(obs);  // Latched.
  monitor.observe_transport(clean_pass(30.0));
  monitor.observe_transport(obs);  // Re-armed.
  ASSERT_EQ(monitor.alerts().size(), 2u);
  for (const Alert& alert : monitor.alerts()) {
    EXPECT_EQ(alert.type, AlertType::kStaleBatch);
    EXPECT_EQ(alert.reader, -1);
    EXPECT_EQ(alert.detector, "stale");
    EXPECT_DOUBLE_EQ(alert.value, 3.0);
  }
  EXPECT_STREQ(alert_type_name(AlertType::kStaleBatch), "stale_batch");
}

TEST(MonitorTransportTest, WireAndStaleAlertsAreIndependent) {
  ReliabilityMonitor monitor;
  TransportObservation obs = clean_pass(10.0);
  obs.corrupt_frames = 2;
  obs.stale_batches = 1;
  monitor.observe_transport(obs);
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_NE(monitor.first_alert(AlertType::kWireCorruption), nullptr);
  EXPECT_NE(monitor.first_alert(AlertType::kStaleBatch), nullptr);
}

TEST(MonitorTransportTest, ResetClearsTransportState) {
  ReliabilityMonitor monitor;
  TransportObservation obs = clean_pass(10.0);
  obs.corrupt_frames = 1;
  monitor.observe_transport(obs);
  monitor.reset();
  EXPECT_TRUE(monitor.alerts().empty());
  // Still latch-armed after reset: the same condition fires again.
  monitor.observe_transport(obs);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].pass, 0u);  // Pass index restarted too.
}

TEST(MonitorTransportTest, TransportDoesNotPerturbPassIndexing) {
  // Transport and portal passes are indexed independently; interleaving
  // them must not shift either sequence.
  ReliabilityMonitor monitor;
  PassObservation pass;
  pass.objects_total = 4;
  pass.objects_identified = 4;
  pass.readers.resize(1);
  pass.readers[0].rounds = 10;
  pass.readers[0].objects_seen = 4;
  monitor.observe_pass(pass);
  monitor.observe_transport(clean_pass(10.0));
  monitor.observe_pass(pass);
  EXPECT_EQ(monitor.passes(), 2u);
}

}  // namespace
}  // namespace rfidsim::obs
