#include "obs/structured_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rfidsim::obs {
namespace {

/// With -DRFIDSIM_OBS=OFF the sink's master switch is a constant false:
/// the same tests then assert that nothing ever reaches the stream.
#ifdef RFIDSIM_OBS_DISABLED
constexpr bool kHooksLive = false;
#else
constexpr bool kHooksLive = true;
#endif

class StructuredLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = enabled();
    set_enabled(true);
  }
  void TearDown() override { set_enabled(saved_); }

  bool saved_ = false;
};

TEST_F(StructuredLogTest, EmitsOneJsonObjectPerLineWithFieldsInOrder) {
  std::ostringstream out;
  StructuredLog log;
  log.set_sink(&out);
  const bool wrote =
      log.log(LogLevel::kWarn, "obs.monitor", "reader_degraded", 2.25,
              {{"reader", 1}, {"cusum", 0.75}, {"degraded", true}, {"why", "miss"}});
  EXPECT_EQ(wrote, kHooksLive);
  if (kHooksLive) {
    EXPECT_EQ(out.str(),
              "{\"lvl\":\"warn\",\"comp\":\"obs.monitor\","
              "\"event\":\"reader_degraded\",\"t_s\":2.25,"
              "\"reader\":1,\"cusum\":0.75,\"degraded\":true,\"why\":\"miss\"}\n");
    EXPECT_EQ(log.emitted(), 1u);
  } else {
    EXPECT_TRUE(out.str().empty());
    EXPECT_EQ(log.emitted(), 0u);
  }
}

TEST_F(StructuredLogTest, OmitsSimTimeWhenNegativeAndEscapesStrings) {
  std::ostringstream out;
  StructuredLog log;
  log.set_sink(&out);
  log.log(LogLevel::kInfo, "bench", "note", -1.0, {{"msg", "a\"b\\c\nd\te"}});
  if (kHooksLive) {
    EXPECT_EQ(out.str(),
              "{\"lvl\":\"info\",\"comp\":\"bench\",\"event\":\"note\","
              "\"msg\":\"a\\\"b\\\\c\\nd\\te\"}\n");
  } else {
    EXPECT_TRUE(out.str().empty());
  }
}

TEST_F(StructuredLogTest, AppendJsonEscapedHandlesControlCharacters) {
  std::string out;
  append_json_escaped(out, std::string_view("\x01\x1f ok", 5));
  EXPECT_EQ(out, "\\u0001\\u001f ok");
}

TEST_F(StructuredLogTest, LevelFilterDropsSilentlyWithoutRateAccounting) {
  std::ostringstream out;
  StructuredLog log;
  log.set_sink(&out);
  log.set_min_level(LogLevel::kWarn);
  EXPECT_FALSE(log.log(LogLevel::kDebug, "c", "e", 0.0));
  EXPECT_FALSE(log.log(LogLevel::kInfo, "c", "e", 0.0));
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(log.dropped(), 0u);  // Level filtering is not rate limiting.
  EXPECT_EQ(log.log(LogLevel::kError, "c", "e", 0.0), kHooksLive);
}

TEST_F(StructuredLogTest, PerKeyBudgetRefillsOnNewWindow) {
  std::ostringstream out;
  StructuredLog log({.per_key_per_window = 2, .total_per_window = 0});
  log.set_sink(&out);
  EXPECT_EQ(log.log(LogLevel::kInfo, "c", "a", 0.0), kHooksLive);
  EXPECT_EQ(log.log(LogLevel::kInfo, "c", "a", 0.0), kHooksLive);
  EXPECT_FALSE(log.log(LogLevel::kInfo, "c", "a", 0.0));  // Over budget.
  // A different (component, event) key has its own budget.
  EXPECT_EQ(log.log(LogLevel::kInfo, "c", "b", 0.0), kHooksLive);
  EXPECT_EQ(log.dropped(), kHooksLive ? 1u : 0u);
  log.new_window();
  EXPECT_EQ(log.log(LogLevel::kInfo, "c", "a", 0.0), kHooksLive);
  EXPECT_EQ(log.emitted(), kHooksLive ? 4u : 0u);
}

TEST_F(StructuredLogTest, TotalBudgetCapsTheWholeWindow) {
  std::ostringstream out;
  StructuredLog log({.per_key_per_window = 0, .total_per_window = 3});
  log.set_sink(&out);
  for (int i = 0; i < 5; ++i) log.log(LogLevel::kInfo, "c", "e", 0.0);
  EXPECT_EQ(log.emitted(), kHooksLive ? 3u : 0u);
  EXPECT_EQ(log.dropped(), kHooksLive ? 2u : 0u);
}

TEST_F(StructuredLogTest, DropsAreMirroredIntoTheRegistry) {
  Counter& dropped = counter("obs.log.dropped_records");
  const std::uint64_t before = dropped.value();
  StructuredLog log({.per_key_per_window = 1, .total_per_window = 0});
  std::ostringstream out;
  log.set_sink(&out);
  log.log(LogLevel::kInfo, "c", "e", 0.0);
  log.log(LogLevel::kInfo, "c", "e", 0.0);
  EXPECT_EQ(dropped.value() - before, kHooksLive ? 1u : 0u);
}

TEST_F(StructuredLogTest, RuntimeDisableSilencesEverything) {
  set_enabled(false);
  std::ostringstream out;
  StructuredLog log;
  log.set_sink(&out);
  EXPECT_FALSE(log.log(LogLevel::kError, "c", "e", 0.0));
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST_F(StructuredLogTest, NullSinkStillAccountsRateBudget) {
  StructuredLog log({.per_key_per_window = 1, .total_per_window = 0});
  EXPECT_FALSE(log.log(LogLevel::kInfo, "c", "e", 0.0));  // No sink: not emitted.
  EXPECT_FALSE(log.log(LogLevel::kInfo, "c", "e", 0.0));  // Now over budget too.
  EXPECT_EQ(log.dropped(), kHooksLive ? 1u : 0u);
}

TEST_F(StructuredLogTest, ResetClearsTallies) {
  StructuredLog log({.per_key_per_window = 1, .total_per_window = 0});
  std::ostringstream out;
  log.set_sink(&out);
  log.log(LogLevel::kInfo, "c", "e", 0.0);
  log.log(LogLevel::kInfo, "c", "e", 0.0);
  log.reset();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.log(LogLevel::kInfo, "c", "e", 0.0), kHooksLive);
}

TEST_F(StructuredLogTest, WallClockFieldIsOptInAndMonotoneWithTraceClock) {
  std::ostringstream out;
  StructuredLog log;
  log.set_sink(&out);
  log.set_wall_clock(true);
  const std::uint64_t before = trace_now_ns();
  log.log(LogLevel::kInfo, "c", "e", 1.0);
  const std::uint64_t after = trace_now_ns();
  if (kHooksLive) {
    const std::string line = out.str();
    const auto pos = line.find("\"wall_ns\":");
    ASSERT_NE(pos, std::string::npos);
    const std::uint64_t stamp = std::stoull(line.substr(pos + 10));
    EXPECT_GE(stamp, before);
    EXPECT_LE(stamp, after);
  }
}

TEST_F(StructuredLogTest, ProcessWideInstanceIsSingleton) {
  EXPECT_EQ(&structured_log(), &structured_log());
}

TEST(LogLevelTest, NamesAreLowerCase) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "debug");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "info");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "warn");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
}

}  // namespace
}  // namespace rfidsim::obs
