#include "rf/tag_design.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rfidsim::rf {
namespace {

const DipoleTagAntenna kElement;
const Vec3 kAxis{1.0, 0.0, 0.0};
const Vec3 kNormal{0.0, 1.0, 0.0};

TEST(TagDesignTest, NamesAreDistinct) {
  EXPECT_EQ(tag_type_name(TagType::PassiveSingleDipole), "passive single-dipole");
  EXPECT_EQ(tag_type_name(TagType::PassiveDualDipole), "passive dual-dipole");
  EXPECT_EQ(tag_type_name(TagType::ActiveBeacon), "active beacon");
}

TEST(TagDesignTest, FactoriesSetTypes) {
  EXPECT_EQ(TagDesign::single_dipole().type, TagType::PassiveSingleDipole);
  EXPECT_EQ(TagDesign::dual_dipole().type, TagType::PassiveDualDipole);
  EXPECT_EQ(TagDesign::active_beacon().type, TagType::ActiveBeacon);
}

TEST(TagDesignTest, SingleDipoleMatchesElementPattern) {
  const TagDesign single = TagDesign::single_dipole();
  const Vec3 dir{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(tag_design_gain(single, kElement, kAxis, kNormal, dir).value(),
                   kElement.gain(kAxis, dir).value());
}

TEST(TagDesignTest, DualDipoleCoversThePrimaryNull) {
  const TagDesign dual = TagDesign::dual_dipole();
  // Direction along the primary axis: the single dipole is in its null,
  // the dual design responds on the orthogonal element at full gain.
  const Vec3 axial = kAxis;
  const double single_gain =
      tag_design_gain(TagDesign::single_dipole(), kElement, kAxis, kNormal, axial).value();
  const double dual_gain = tag_design_gain(dual, kElement, kAxis, kNormal, axial).value();
  EXPECT_LT(single_gain, -20.0);
  EXPECT_NEAR(dual_gain, kElement.params().peak_gain_dbi, 1e-9);
}

TEST(TagDesignTest, DualDipoleOnlyNullIsThePatchNormal) {
  const TagDesign dual = TagDesign::dual_dipole();
  // Along the patch normal both in-plane dipoles are broadside... actually
  // the normal is orthogonal to both axes, so both are at PEAK gain there;
  // the design has no null at all for in-plane-mounted elements.
  const double g = tag_design_gain(dual, kElement, kAxis, kNormal, kNormal).value();
  EXPECT_NEAR(g, kElement.params().peak_gain_dbi, 1e-9);
  // Sweep directions: dual gain never falls below -3 dB of peak except
  // nowhere — it is the max of two orthogonal sin^2 patterns, whose minimum
  // is at 45 degrees between the axes (sin^2 = 1/2 -> -3 dB).
  for (double a = 0.0; a < 6.28; a += 0.1) {
    const Vec3 dir{std::cos(a), 0.0, std::sin(a)};
    const double gain = tag_design_gain(dual, kElement, kAxis, kNormal, dir).value();
    EXPECT_GE(gain, kElement.params().peak_gain_dbi - 3.02);
  }
}

TEST(TagDesignTest, DualDipoleNeverWorseThanSingle) {
  const TagDesign dual = TagDesign::dual_dipole();
  const TagDesign single = TagDesign::single_dipole();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Vec3 dir =
        Vec3{rng.gaussian(), rng.gaussian(), rng.gaussian()}.normalized();
    if (dir.norm2() == 0.0) continue;
    EXPECT_GE(tag_design_gain(dual, kElement, kAxis, kNormal, dir).value(),
              tag_design_gain(single, kElement, kAxis, kNormal, dir).value() - 1e-9);
  }
}

TEST(TagDesignTest, ActiveBeaconUsesSingleElementPattern) {
  const TagDesign active = TagDesign::active_beacon();
  const Vec3 dir{0.3, 0.8, 0.1};
  EXPECT_DOUBLE_EQ(tag_design_gain(active, kElement, kAxis, kNormal, dir).value(),
                   kElement.gain(kAxis, dir).value());
}

TEST(TagDesignTest, DegenerateNormalFallsBackToPrimary) {
  const TagDesign dual = TagDesign::dual_dipole();
  // Normal parallel to axis: no valid second element.
  const Vec3 dir{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(tag_design_gain(dual, kElement, kAxis, kAxis, dir).value(),
                   kElement.gain(kAxis, dir).value());
}

}  // namespace
}  // namespace rfidsim::rf
