#include "rf/antenna.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace rfidsim::rf {
namespace {

constexpr double kDeg = std::numbers::pi / 180.0;

TEST(ReaderAntennaTest, BoresightGainIsPeak) {
  const ReaderAntennaPattern antenna;
  EXPECT_DOUBLE_EQ(antenna.gain(0.0).value(), antenna.params().boresight_gain_dbi);
}

TEST(ReaderAntennaTest, ThreeDbDownAtHalfBeamwidth) {
  ReaderAntennaPattern::Params p;
  p.boresight_gain_dbi = 6.0;
  p.beamwidth_deg = 65.0;
  const ReaderAntennaPattern antenna(p);
  EXPECT_NEAR(antenna.gain(32.5 * kDeg).value(), 3.0, 0.05);
}

TEST(ReaderAntennaTest, GainIsMonotoneOffBoresight) {
  const ReaderAntennaPattern antenna;
  double prev = antenna.gain(0.0).value();
  for (double deg = 5.0; deg <= 120.0; deg += 5.0) {
    const double g = antenna.gain(deg * kDeg).value();
    EXPECT_LE(g, prev + 1e-9) << "at " << deg << " deg";
    prev = g;
  }
}

TEST(ReaderAntennaTest, BacklobeFloor) {
  const ReaderAntennaPattern antenna;
  EXPECT_EQ(antenna.gain(std::numbers::pi).value(), antenna.params().backlobe_floor_dbi);
  EXPECT_EQ(antenna.gain(100.0 * kDeg).value(), antenna.params().backlobe_floor_dbi);
}

TEST(ReaderAntennaTest, NegativeAngleIsSymmetric) {
  const ReaderAntennaPattern antenna;
  EXPECT_EQ(antenna.gain(-0.4).value(), antenna.gain(0.4).value());
}

TEST(ReaderAntennaTest, GainTowardUsesBoresightAngle) {
  const ReaderAntennaPattern antenna;
  Pose pose;
  pose.position = {0.0, 0.0, 0.0};
  pose.frame.forward = {0.0, 1.0, 0.0};
  // Point on boresight.
  EXPECT_DOUBLE_EQ(antenna.gain_toward(pose, {0.0, 3.0, 0.0}).value(),
                   antenna.params().boresight_gain_dbi);
  // Point abeam: 90 degrees off.
  EXPECT_EQ(antenna.gain_toward(pose, {3.0, 0.0, 0.0}).value(),
            antenna.params().backlobe_floor_dbi);
}

TEST(DipoleTest, BroadsideIsPeakGain) {
  const DipoleTagAntenna dipole;
  // Axis z, direction x: broadside.
  EXPECT_NEAR(dipole.gain({0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}).value(), 2.15, 1e-9);
}

TEST(DipoleTest, AxialNullIsFloored) {
  const DipoleTagAntenna dipole;
  const double g = dipole.gain({1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}).value();
  EXPECT_NEAR(g, 2.15 - 25.0, 1e-9);
}

TEST(DipoleTest, PatternFollowsSinSquared) {
  const DipoleTagAntenna dipole;
  // 30 degrees from axis: sin^2 = 0.25 -> -6.02 dB from peak.
  const Vec3 axis{1.0, 0.0, 0.0};
  const Vec3 dir{std::cos(30.0 * kDeg), std::sin(30.0 * kDeg), 0.0};
  EXPECT_NEAR(dipole.gain(axis, dir).value(), 2.15 - 6.02, 0.01);
}

TEST(DipoleTest, SymmetricFrontBack) {
  const DipoleTagAntenna dipole;
  const Vec3 axis{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dipole.gain(axis, {0.0, 1.0, 0.5}).value(),
                   dipole.gain(axis, {0.0, -1.0, -0.5}).value());
}

TEST(PolarizationTest, CircularReaderCostsThreeDb) {
  const Decibel loss = polarization_mismatch(true, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0},
                                             {0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(loss.value(), 3.0);
}

TEST(PolarizationTest, AlignedLinearHasNoLoss) {
  // Reader polarization z, tag axis z, propagation x.
  const Decibel loss = polarization_mismatch(false, {0.0, 0.0, 1.0}, {0.0, 0.0, 1.0},
                                             {1.0, 0.0, 0.0});
  EXPECT_NEAR(loss.value(), 0.0, 1e-9);
}

TEST(PolarizationTest, CrossedLinearHitsFloor) {
  const Decibel loss = polarization_mismatch(false, {0.0, 0.0, 1.0}, {0.0, 1.0, 0.0},
                                             {1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(loss.value(), 20.0);
}

TEST(PolarizationTest, FortyFiveDegreesLinearLosesThreeDb) {
  const Vec3 diag = Vec3{0.0, 1.0, 1.0}.normalized();
  const Decibel loss =
      polarization_mismatch(false, {0.0, 0.0, 1.0}, diag, {1.0, 0.0, 0.0});
  EXPECT_NEAR(loss.value(), 3.01, 0.01);
}

}  // namespace
}  // namespace rfidsim::rf
