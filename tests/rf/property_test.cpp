// Property and metamorphic tests for the RF layer: invariants that must
// hold across whole parameter ranges, not just at calibrated spot values.
// These are the guard rails under the static-geometry cache and the sweep
// engine — a refactor that preserves the differential tests but bends the
// physics monotonicity shows up here.
#include <gtest/gtest.h>

#include <cmath>

#include "rf/coupling.hpp"
#include "rf/material.hpp"
#include "rf/propagation.hpp"

namespace rfidsim::rf {
namespace {

constexpr double kFreq = 915e6;

TEST(PropagationPropertyTest, FreeSpacePathLossIsMonotoneInDistance) {
  // Friis: strictly increasing loss with distance over the portal range.
  double prev = free_space_path_loss(0.05, kFreq).value();
  for (double d = 0.1; d <= 20.0; d += 0.1) {
    const double loss = free_space_path_loss(d, kFreq).value();
    ASSERT_GT(loss, prev) << "distance " << d;
    prev = loss;
  }
}

TEST(PropagationPropertyTest, FreeSpacePathLossIsMonotoneInFrequency) {
  double prev = free_space_path_loss(3.0, 400e6).value();
  for (double f = 500e6; f <= 6e9; f += 100e6) {
    const double loss = free_space_path_loss(3.0, f).value();
    ASSERT_GT(loss, prev) << "frequency " << f;
    prev = loss;
  }
}

TEST(PropagationPropertyTest, FreeSpacePathLossClampsTheNearField) {
  // Below the 1 cm clamp the loss must stop decreasing: contact distances
  // cannot keep manufacturing link margin.
  EXPECT_EQ(free_space_path_loss(0.001, kFreq).value(),
            free_space_path_loss(0.01, kFreq).value());
  EXPECT_EQ(free_space_path_loss(0.0, kFreq).value(),
            free_space_path_loss(0.01, kFreq).value());
}

TEST(PropagationPropertyTest, TwoRayGainStaysBetweenFloorAndCoherentSum) {
  // |1 + Gamma e^{j phi}| is at most 1 + Gamma and the model clamps fades
  // at floor_db: every geometry must land inside that band.
  const TwoRayGround::Params params;
  const TwoRayGround two_ray(params);
  const double ceiling_db = 20.0 * std::log10(1.0 + params.reflection_coefficient);
  for (double h_tx = 0.5; h_tx <= 2.0; h_tx += 0.5) {
    for (double h_rx = 0.2; h_rx <= 2.0; h_rx += 0.3) {
      for (double d = 0.5; d <= 12.0; d += 0.25) {
        const double g = two_ray.gain(h_tx, h_rx, d, kFreq).value();
        ASSERT_GE(g, params.floor_db) << h_tx << " " << h_rx << " " << d;
        ASSERT_LE(g, ceiling_db + 1e-9) << h_tx << " " << h_rx << " " << d;
      }
    }
  }
}

TEST(PropagationPropertyTest, ShadowFadingExceedProbabilityIsMonotone) {
  const ShadowFading fading(4.0);
  double prev = fading.exceed_probability(Decibel(-20.0));
  for (double margin = -19.0; margin <= 20.0; margin += 1.0) {
    const double p = fading.exceed_probability(Decibel(margin));
    ASSERT_GE(p, prev) << "margin " << margin;
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
    prev = p;
  }
  // Zero-sigma fading degenerates to a step function.
  const ShadowFading off(0.0);
  EXPECT_EQ(off.exceed_probability(Decibel(1.0)), 1.0);
  EXPECT_EQ(off.exceed_probability(Decibel(-1.0)), 0.0);
}

TEST(CouplingPropertyTest, PairwiseLossIsNonNegativeAndMonotoneDecreasing) {
  const CouplingParams params;
  double prev = pairwise_coupling_loss(0.0, params).value();
  EXPECT_LE(prev, params.contact_loss_db + 1e-9);
  for (double s = 0.001; s <= 0.1; s += 0.001) {
    const double loss = pairwise_coupling_loss(s, params).value();
    ASSERT_GE(loss, 0.0) << "spacing " << s;
    ASSERT_LE(loss, prev + 1e-12) << "spacing " << s;
    prev = loss;
  }
}

TEST(CouplingPropertyTest, LossVanishesBeyondTheSafeSpacing) {
  // The negligible_db cutoff must produce an exact zero far out — this is
  // the property the evaluator's coupling_neighbourhood_m pruning relies
  // on to skip distant neighbours without changing any result.
  const CouplingParams params;
  const double safe = minimum_safe_spacing_m(params.negligible_db, params);
  EXPECT_GT(safe, 0.0);
  for (double s = safe * 1.01; s <= safe * 4.0; s += safe * 0.25) {
    ASSERT_EQ(pairwise_coupling_loss(s, params).value(), 0.0) << "spacing " << s;
  }
  EXPECT_GT(pairwise_coupling_loss(safe * 0.5, params).value(), 0.0);
}

TEST(CouplingPropertyTest, AlignmentScalesTheLossDown) {
  const CouplingParams params;
  const double parallel = pairwise_coupling_loss(0.01, params, 1.0).value();
  const double oblique = pairwise_coupling_loss(0.01, params, 0.5).value();
  const double orthogonal = pairwise_coupling_loss(0.01, params, 0.0).value();
  EXPECT_GT(parallel, oblique);
  EXPECT_GT(oblique, orthogonal);
  EXPECT_EQ(orthogonal, 0.0);
}

TEST(CouplingPropertyTest, TotalLossIsSuperadditiveButCapped) {
  const CouplingParams params;
  const double one = total_coupling_loss({0.01}, params).value();
  const double two = total_coupling_loss({0.01, 0.01}, params).value();
  EXPECT_GE(two, one);  // A second neighbour never helps.
  // Piling on neighbours saturates at the detuning cap.
  const std::vector<double> crowd(50, 0.001);
  EXPECT_LE(total_coupling_loss(crowd, params).value(),
            params.contact_loss_db * 1.5 + 1e-9);
}

TEST(MaterialPropertyTest, PenetrationLossIsNonNegativeAndMonotoneInChord) {
  // Occlusion sums penetration_loss over body chords; the occlusion term
  // can only ever be a loss because each summand is one.
  for (const Material m : {Material::Air, Material::Cardboard, Material::Foam,
                           Material::Plastic, Material::Metal, Material::Liquid,
                           Material::HumanBody}) {
    double prev = penetration_loss(m, 0.0).value();
    EXPECT_GE(prev, 0.0);
    for (double chord = 0.05; chord <= 1.0; chord += 0.05) {
      const double loss = penetration_loss(m, chord).value();
      ASSERT_GE(loss, prev - 1e-12) << "material " << static_cast<int>(m);
      prev = loss;
    }
  }
}

}  // namespace
}  // namespace rfidsim::rf
