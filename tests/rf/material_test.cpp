#include "rf/material.hpp"

#include <gtest/gtest.h>

namespace rfidsim::rf {
namespace {

TEST(MaterialNameTest, AllMaterialsNamed) {
  EXPECT_EQ(material_name(Material::Air), "air");
  EXPECT_EQ(material_name(Material::Cardboard), "cardboard");
  EXPECT_EQ(material_name(Material::Foam), "foam");
  EXPECT_EQ(material_name(Material::Plastic), "plastic");
  EXPECT_EQ(material_name(Material::Metal), "metal");
  EXPECT_EQ(material_name(Material::Liquid), "liquid");
  EXPECT_EQ(material_name(Material::HumanBody), "human body");
}

TEST(PenetrationTest, AirIsTransparent) {
  EXPECT_EQ(penetration_loss(Material::Air, 1.0).value(), 0.0);
}

TEST(PenetrationTest, ZeroThicknessIsFree) {
  EXPECT_EQ(penetration_loss(Material::Metal, 0.0).value(), 0.0);
  EXPECT_EQ(penetration_loss(Material::Liquid, -0.1).value(), 0.0);
}

TEST(PenetrationTest, MetalIsOpaqueRegardlessOfThickness) {
  EXPECT_EQ(penetration_loss(Material::Metal, 0.0001).value(), 60.0);
  EXPECT_EQ(penetration_loss(Material::Metal, 1.0).value(), 60.0);
}

TEST(PenetrationTest, LossyDielectricsScaleWithThickness) {
  const double thin = penetration_loss(Material::HumanBody, 0.10).value();
  const double thick = penetration_loss(Material::HumanBody, 0.20).value();
  EXPECT_NEAR(thick, 2.0 * thin, 1e-9);
  EXPECT_NEAR(thin, 30.0, 1e-9);  // 3 dB/cm * 10 cm.
}

TEST(PenetrationTest, OrderingMatchesPhysics) {
  const double d = 0.05;
  EXPECT_LT(penetration_loss(Material::Foam, d).value(),
            penetration_loss(Material::Cardboard, d).value());
  EXPECT_LT(penetration_loss(Material::Cardboard, d).value(),
            penetration_loss(Material::HumanBody, d).value());
  EXPECT_LT(penetration_loss(Material::HumanBody, d).value(),
            penetration_loss(Material::Liquid, d).value());
}

TEST(ReflectionCoefficientTest, Ordering) {
  EXPECT_EQ(reflection_coefficient(Material::Air), 0.0);
  EXPECT_GT(reflection_coefficient(Material::Metal), 0.9);
  EXPECT_GT(reflection_coefficient(Material::Metal),
            reflection_coefficient(Material::Liquid));
  EXPECT_GT(reflection_coefficient(Material::Liquid),
            reflection_coefficient(Material::HumanBody));
  EXPECT_GT(reflection_coefficient(Material::HumanBody),
            reflection_coefficient(Material::Cardboard));
}

TEST(BackingLossTest, AirBackingIsFree) {
  EXPECT_EQ(backing_loss(Material::Air, 0.0).value(), 0.0);
}

TEST(BackingLossTest, FlushMetalIsSevere) {
  EXPECT_GE(backing_loss(Material::Metal, 0.0).value(), 30.0);
}

TEST(BackingLossTest, DecaysWithGap) {
  const double flush = backing_loss(Material::Metal, 0.0).value();
  const double spaced = backing_loss(Material::Metal, 0.03).value();
  EXPECT_LT(spaced, flush / 4.0);
}

TEST(ImageFactorTest, NoBackingNoEffect) {
  EXPECT_EQ(image_factor_gain(Material::Air, 0.01, 1.0).value(), 0.0);
}

TEST(ImageFactorTest, FlushMetalGrazingIsDeeplyCancelled) {
  // Small gap, grazing departure: direct and image nearly cancel.
  const double g = image_factor_gain(Material::Metal, 0.005, 0.05).value();
  EXPECT_LT(g, -20.0);
}

TEST(ImageFactorTest, QuarterWaveBroadsideIsConstructive) {
  // gap = lambda/4, sin_alpha = 1: phase difference pi -> in-phase image.
  const double lambda = wavelength_m(915e6);
  const double g = image_factor_gain(Material::Metal, lambda / 4.0, 1.0).value();
  EXPECT_NEAR(g, 20.0 * std::log10(1.95), 0.05);
}

TEST(ImageFactorTest, FloorIsRespected) {
  const double g = image_factor_gain(Material::Metal, 0.0, 0.0, 915e6, -25.0).value();
  EXPECT_GE(g, -25.0);
}

TEST(ImageFactorTest, WeakerReflectorCancelsLess) {
  const double metal = image_factor_gain(Material::Metal, 0.005, 0.1).value();
  const double body = image_factor_gain(Material::HumanBody, 0.005, 0.1).value();
  EXPECT_LT(metal, body);
}

TEST(ImageFactorTest, MoreGapLessCancellationAtBroadside) {
  const double close = image_factor_gain(Material::Metal, 0.003, 1.0).value();
  const double far = image_factor_gain(Material::Metal, 0.03, 1.0).value();
  EXPECT_LT(close, far);
}

TEST(IsReflectiveTest, MetalLiquidBodyReflect) {
  EXPECT_TRUE(is_reflective(Material::Metal));
  EXPECT_TRUE(is_reflective(Material::Liquid));
  EXPECT_TRUE(is_reflective(Material::HumanBody));
  EXPECT_FALSE(is_reflective(Material::Cardboard));
  EXPECT_FALSE(is_reflective(Material::Air));
  EXPECT_FALSE(is_reflective(Material::Foam));
}

}  // namespace
}  // namespace rfidsim::rf
