#include "rf/coupling.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::rf {
namespace {

TEST(CouplingTest, ContactLossAtZeroSpacing) {
  const CouplingParams p;
  EXPECT_NEAR(pairwise_coupling_loss(0.0, p).value(), p.contact_loss_db, 1e-9);
}

TEST(CouplingTest, DecaysMonotonically) {
  double prev = 1e9;
  for (double s = 0.0; s <= 0.06; s += 0.002) {
    const double loss = pairwise_coupling_loss(s).value();
    EXPECT_LE(loss, prev);
    prev = loss;
  }
}

TEST(CouplingTest, NegligibleBeyondCutoff) {
  const CouplingParams p;
  // Far enough that the exponential is below the cutoff.
  EXPECT_EQ(pairwise_coupling_loss(0.2, p).value(), 0.0);
}

TEST(CouplingTest, AlignmentScalesLoss) {
  const double parallel = pairwise_coupling_loss(0.01, {}, 1.0).value();
  const double oblique = pairwise_coupling_loss(0.01, {}, 0.5).value();
  const double orthogonal = pairwise_coupling_loss(0.01, {}, 0.0).value();
  EXPECT_NEAR(oblique, parallel / 2.0, 1e-9);
  EXPECT_EQ(orthogonal, 0.0);
}

TEST(CouplingTest, InvalidAlignmentThrows) {
  EXPECT_THROW(pairwise_coupling_loss(0.01, {}, -0.1), ConfigError);
  EXPECT_THROW(pairwise_coupling_loss(0.01, {}, 1.1), ConfigError);
}

TEST(CouplingTest, NegativeSpacingClampsToContact) {
  const CouplingParams p;
  EXPECT_NEAR(pairwise_coupling_loss(-0.01, p).value(), p.contact_loss_db, 1e-9);
}

TEST(TotalCouplingTest, SumsNeighbours) {
  const CouplingParams p;
  const double one = total_coupling_loss({0.02}, p).value();
  const double two = total_coupling_loss({0.02, 0.02}, p).value();
  EXPECT_NEAR(two, 2.0 * one, 1e-9);
}

TEST(TotalCouplingTest, CapIsApplied) {
  const CouplingParams p;
  const double total =
      total_coupling_loss({0.0, 0.0, 0.0, 0.0, 0.0}, p).value();
  EXPECT_NEAR(total, p.contact_loss_db * 1.5, 1e-9);
}

TEST(TotalCouplingTest, EmptyNeighboursIsZero) {
  EXPECT_EQ(total_coupling_loss({}).value(), 0.0);
}

TEST(MinimumSafeSpacingTest, InverseOfPairwiseLoss) {
  const CouplingParams p;
  const double spacing = minimum_safe_spacing_m(3.0, p);
  EXPECT_NEAR(pairwise_coupling_loss(spacing, p).value(), 3.0, 1e-6);
}

TEST(MinimumSafeSpacingTest, PaperCalibrationLandsIn20to40mm) {
  // With the paper2006 coupling constants (30 dB contact, 12 mm scale), a
  // 3 dB tolerance demands roughly 28 mm — inside the paper's measured
  // 20-40 mm band.
  CouplingParams p;
  p.contact_loss_db = 30.0;
  p.decay_scale_m = 0.012;
  const double spacing = minimum_safe_spacing_m(3.0, p);
  EXPECT_GT(spacing, 0.020);
  EXPECT_LT(spacing, 0.040);
}

TEST(MinimumSafeSpacingTest, HighToleranceNeedsNoSpacing) {
  const CouplingParams p;
  EXPECT_EQ(minimum_safe_spacing_m(p.contact_loss_db + 1.0, p), 0.0);
}

TEST(MinimumSafeSpacingTest, InvalidToleranceThrows) {
  EXPECT_THROW(minimum_safe_spacing_m(0.0), ConfigError);
  EXPECT_THROW(minimum_safe_spacing_m(-2.0), ConfigError);
}

}  // namespace
}  // namespace rfidsim::rf
