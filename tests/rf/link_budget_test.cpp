#include "rf/link_budget.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rfidsim::rf {
namespace {

PathTerms clean_terms(double distance_m) {
  PathTerms t;
  t.distance_m = distance_m;
  t.reader_gain = Decibel(6.0);
  t.tag_gain = Decibel(2.15);
  t.polarization_loss = Decibel(3.0);
  t.material_loss = Decibel(0.0);
  t.coupling_loss = Decibel(0.0);
  t.blockage_loss = Decibel(0.0);
  t.reflection_gain = Decibel(0.0);
  t.multipath_gain = Decibel(0.0);
  return t;
}

TEST(LinkBudgetTest, ForwardPowerAtOneMetreMatchesHandCalculation) {
  RadioParams params;  // 30 dBm, 0.8 dB cable, -11 dBm threshold.
  const LinkBudget budget(params);
  const LinkResult fwd = budget.forward(clean_terms(1.0));
  // 30 - 0.8 + 6 + 2.15 - 31.67 - 3 = 2.68 dBm.
  EXPECT_NEAR(fwd.received.value(), 2.68, 0.05);
  EXPECT_NEAR(fwd.margin.value(), 13.68, 0.05);
  EXPECT_TRUE(fwd.closed);
}

TEST(LinkBudgetTest, ForwardLinkOpensWithDistance) {
  const LinkBudget budget;
  EXPECT_TRUE(budget.forward(clean_terms(1.0)).closed);
  EXPECT_FALSE(budget.forward(clean_terms(50.0)).closed);
}

TEST(LinkBudgetTest, LossesReduceForwardPower) {
  const LinkBudget budget;
  PathTerms t = clean_terms(1.0);
  const double base = budget.forward(t).received.value();
  t.material_loss = Decibel(10.0);
  EXPECT_NEAR(budget.forward(t).received.value(), base - 10.0, 1e-9);
  t.coupling_loss = Decibel(5.0);
  EXPECT_NEAR(budget.forward(t).received.value(), base - 15.0, 1e-9);
  t.reflection_gain = Decibel(2.0);
  EXPECT_NEAR(budget.forward(t).received.value(), base - 13.0, 1e-9);
}

TEST(LinkBudgetTest, ReverseRetraversesPathLoss) {
  const LinkBudget budget;
  const PathTerms t = clean_terms(2.0);
  const LinkResult fwd = budget.forward(t);
  const LinkResult rev = budget.reverse(t, fwd.received);
  // Reverse = tag power - backscatter loss + gains - path loss - cable.
  const double fspl2m = free_space_path_loss(2.0, 915e6).value();
  const double expected =
      fwd.received.value() - 6.0 + 2.15 + 6.0 - fspl2m - 3.0 - 0.8;
  EXPECT_NEAR(rev.received.value(), expected, 0.05);
}

TEST(LinkBudgetTest, ForwardLimitedAtPortalRange) {
  // The defining property of passive UHF: at the range where the tag just
  // powers up, the reader still has tens of dB of reverse margin.
  const LinkBudget budget;
  // Find roughly where the forward link closes marginally.
  double d = 1.0;
  while (budget.forward(clean_terms(d)).margin.value() > 0.5 && d < 30.0) d += 0.1;
  const LinkResult fwd = budget.forward(clean_terms(d));
  const LinkResult rev = budget.reverse(clean_terms(d), fwd.received);
  EXPECT_GT(rev.margin.value(), fwd.margin.value() + 10.0);
}

TEST(LinkBudgetTest, LimitingMarginIsMinOfBoth) {
  const LinkBudget budget;
  const PathTerms t = clean_terms(3.0);
  const LinkResult fwd = budget.forward(t);
  const LinkResult rev = budget.reverse(t, fwd.received);
  const Decibel lim = budget.limiting_margin(t);
  EXPECT_DOUBLE_EQ(lim.value(), std::min(fwd.margin.value(), rev.margin.value()));
}

TEST(LinkBudgetTest, AttemptProbabilityMatchesFadingModel) {
  const LinkBudget budget;
  const ShadowFading fading(4.0);
  const PathTerms t = clean_terms(4.0);
  const double p = budget.attempt_success_probability(t, fading);
  EXPECT_NEAR(p, fading.exceed_probability(budget.limiting_margin(t)), 1e-12);
}

TEST(LinkBudgetTest, SampledAttemptsConvergeToProbability) {
  const LinkBudget budget;
  const ShadowFading fading(4.0);
  const PathTerms t = clean_terms(5.0);
  Rng rng(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (budget.sample_attempt(t, fading, rng)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n,
              budget.attempt_success_probability(t, fading), 0.01);
}

TEST(LinkBudgetTest, PathLossExponentSteepensDecay) {
  RadioParams free_space;
  free_space.path_loss_exponent = 2.0;
  RadioParams cluttered;
  cluttered.path_loss_exponent = 2.5;
  const LinkBudget fs(free_space);
  const LinkBudget cl(cluttered);
  // Same at the 1 m reference...
  EXPECT_NEAR(fs.forward(clean_terms(1.0)).received.value(),
              cl.forward(clean_terms(1.0)).received.value(), 1e-9);
  // ...but 5 dB apart at 10 m.
  EXPECT_NEAR(fs.forward(clean_terms(10.0)).received.value() -
                  cl.forward(clean_terms(10.0)).received.value(),
              5.0, 1e-6);
}

TEST(LinkBudgetTest, HigherTxPowerExtendsRange) {
  RadioParams low;
  low.tx_power = DbmPower(20.0);
  RadioParams high;
  high.tx_power = DbmPower(30.0);
  const PathTerms t = clean_terms(4.0);
  EXPECT_NEAR(LinkBudget(high).forward(t).margin.value(),
              LinkBudget(low).forward(t).margin.value() + 10.0, 1e-9);
}

/// Property sweep: margins are monotone non-increasing in distance for any
/// radio profile.
class LinkBudgetDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinkBudgetDistanceSweep, ForwardMarginDecreasesWithDistance) {
  RadioParams params;
  params.path_loss_exponent = GetParam();
  const LinkBudget budget(params);
  double prev = 1e9;
  for (double d = 0.5; d <= 12.0; d += 0.5) {
    const double m = budget.forward(clean_terms(d)).margin.value();
    EXPECT_LT(m, prev);
    prev = m;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, LinkBudgetDistanceSweep,
                         ::testing::Values(2.0, 2.2, 2.3, 2.6, 3.0));

}  // namespace
}  // namespace rfidsim::rf
