#include "rf/propagation.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rfidsim::rf {
namespace {

TEST(FsplTest, KnownValueAt1m915MHz) {
  // 20*log10(4*pi*1/0.3276) = 31.67 dB.
  EXPECT_NEAR(free_space_path_loss(1.0, 915e6).value(), 31.67, 0.05);
}

TEST(FsplTest, SixDbPerDoubling) {
  const double l1 = free_space_path_loss(2.0, 915e6).value();
  const double l2 = free_space_path_loss(4.0, 915e6).value();
  EXPECT_NEAR(l2 - l1, 6.02, 0.01);
}

TEST(FsplTest, HigherFrequencyLosesMore) {
  EXPECT_GT(free_space_path_loss(3.0, 2.4e9).value(),
            free_space_path_loss(3.0, 915e6).value());
}

TEST(FsplTest, TinyDistanceIsClamped) {
  EXPECT_EQ(free_space_path_loss(0.0, 915e6).value(),
            free_space_path_loss(0.01, 915e6).value());
}

TEST(TwoRayTest, ZeroReflectionIsTransparent) {
  TwoRayGround::Params p;
  p.reflection_coefficient = 0.0;
  const TwoRayGround model(p);
  EXPECT_EQ(model.gain(1.0, 1.0, 3.0, 915e6).value(), 0.0);
}

TEST(TwoRayTest, GainIsBoundedByReflectionCoefficient) {
  const TwoRayGround model;
  const double gamma = model.params().reflection_coefficient;
  const double max_gain = 20.0 * std::log10(1.0 + gamma);
  for (double d = 0.5; d < 12.0; d += 0.1) {
    const double g = model.gain(1.0, 1.0, d, 915e6).value();
    EXPECT_LE(g, max_gain + 1e-9) << "at d=" << d;
    EXPECT_GE(g, model.params().floor_db) << "at d=" << d;
  }
}

TEST(TwoRayTest, FadeFloorIsRespected) {
  TwoRayGround::Params p;
  p.reflection_coefficient = 0.99;  // Near-perfect mirror: deep nulls exist.
  p.floor_db = -10.0;
  const TwoRayGround model(p);
  double deepest = 0.0;
  for (double d = 0.5; d < 20.0; d += 0.01) {
    deepest = std::min(deepest, model.gain(1.0, 1.0, d, 915e6).value());
  }
  EXPECT_GE(deepest, -10.0);
  EXPECT_LT(deepest, -9.0);  // The floor is actually reached somewhere.
}

TEST(TwoRayTest, RippleAlternatesWithDistance) {
  const TwoRayGround model;
  bool saw_positive = false;
  bool saw_negative = false;
  for (double d = 0.5; d < 15.0; d += 0.05) {
    const double g = model.gain(1.0, 1.0, d, 915e6).value();
    saw_positive |= g > 0.5;
    saw_negative |= g < -0.5;
  }
  EXPECT_TRUE(saw_positive);
  EXPECT_TRUE(saw_negative);
}

TEST(ShadowFadingTest, DisabledFadingIsDeterministic) {
  const ShadowFading fading(0.0);
  Rng rng(1);
  EXPECT_EQ(fading.draw(rng).value(), 0.0);
  EXPECT_EQ(fading.exceed_probability(Decibel(0.1)), 1.0);
  EXPECT_EQ(fading.exceed_probability(Decibel(-0.1)), 0.0);
}

TEST(ShadowFadingTest, ExceedProbabilityAtZeroMarginIsHalf) {
  const ShadowFading fading(4.0);
  EXPECT_NEAR(fading.exceed_probability(Decibel(0.0)), 0.5, 1e-12);
}

TEST(ShadowFadingTest, ExceedProbabilityIsSymmetric) {
  const ShadowFading fading(4.0);
  const double up = fading.exceed_probability(Decibel(3.0));
  const double down = fading.exceed_probability(Decibel(-3.0));
  EXPECT_NEAR(up + down, 1.0, 1e-12);
}

TEST(ShadowFadingTest, ExceedProbabilityIsMonotoneInMargin) {
  const ShadowFading fading(4.0);
  double prev = 0.0;
  for (double m = -12.0; m <= 12.0; m += 1.0) {
    const double p = fading.exceed_probability(Decibel(m));
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ShadowFadingTest, DrawStatisticsMatchSigma) {
  const ShadowFading fading(4.0);
  Rng rng(5);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = fading.draw(rng).value();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(sum2 / n), 4.0, 0.1);
}

TEST(ShadowFadingTest, EmpiricalExceedRateMatchesFormula) {
  const ShadowFading fading(4.0);
  Rng rng(5);
  const Decibel margin(2.5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if ((margin + fading.draw(rng)).value() > 0.0) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, fading.exceed_probability(margin), 0.01);
}

}  // namespace
}  // namespace rfidsim::rf
