#include "reliability/estimator.hpp"

#include <gtest/gtest.h>

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();

Scenario easy_scenario() {
  // Read-range at 1 m: essentially every tag reads every time.
  return make_read_range_scenario(1.0, kCal);
}

TEST(EstimatorTest, RunRepeatedProducesRequestedLogs) {
  const Scenario sc = easy_scenario();
  const RepeatedRuns runs = run_repeated(sc, 7, 123);
  EXPECT_EQ(runs.logs.size(), 7u);
}

TEST(EstimatorTest, DeterministicAcrossInvocations) {
  const Scenario sc = easy_scenario();
  const auto a = distinct_tags_per_run(run_repeated(sc, 5, 99));
  const auto b = distinct_tags_per_run(run_repeated(sc, 5, 99));
  EXPECT_EQ(a, b);
}

TEST(EstimatorTest, DifferentSeedsDiffer) {
  // At a marginal distance the per-run counts depend on the draws.
  const Scenario sc = make_read_range_scenario(6.0, kCal);
  const auto a = distinct_tags_per_run(run_repeated(sc, 10, 1));
  const auto b = distinct_tags_per_run(run_repeated(sc, 10, 2));
  EXPECT_NE(a, b);
}

TEST(EstimatorTest, DistinctCountsAreBoundedByPopulation) {
  const Scenario sc = easy_scenario();
  for (double count : distinct_tags_per_run(run_repeated(sc, 5, 7))) {
    EXPECT_GE(count, 0.0);
    EXPECT_LE(count, 20.0);
  }
}

TEST(EstimatorTest, PerTagReliabilityCoversAllTags) {
  const Scenario sc = easy_scenario();
  const RepeatedRuns runs = run_repeated(sc, 10, 5);
  const auto per_tag = per_tag_reliability(sc, runs);
  EXPECT_EQ(per_tag.size(), 20u);
  for (const auto& [id, ci] : per_tag) {
    EXPECT_GE(ci.estimate, 0.0);
    EXPECT_LE(ci.estimate, 1.0);
    EXPECT_LE(ci.lower, ci.estimate);
    EXPECT_GE(ci.upper, ci.estimate);
  }
}

TEST(EstimatorTest, EasyScenarioReadsNearlyEverything) {
  const Scenario sc = easy_scenario();
  EXPECT_GT(measure_tag_reliability(sc, 10, 3), 0.97);
  EXPECT_GT(measure_tracking_reliability(sc, 10, 3), 0.97);
}

TEST(EstimatorTest, FarScenarioReadsLess) {
  const Scenario far = make_read_range_scenario(8.0, kCal);
  const Scenario near = make_read_range_scenario(2.0, kCal);
  EXPECT_LT(measure_tag_reliability(far, 15, 3),
            measure_tag_reliability(near, 15, 3));
}

TEST(EstimatorTest, ObjectReliabilityUsesRegistry) {
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front};
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  const RepeatedRuns runs = run_repeated(sc, 6, 11);
  const auto per_object = per_object_reliability(sc, runs);
  EXPECT_EQ(per_object.size(), 12u);
}

TEST(EstimatorTest, SingleRoundModeIsShorterThanContinuous) {
  const Scenario sc = easy_scenario();
  const RepeatedRuns single = run_repeated(sc, 3, 17, /*single_round=*/true);
  const RepeatedRuns continuous = run_repeated(sc, 3, 17, /*single_round=*/false);
  // Continuous mode sees at least as many events (re-reads across rounds
  // are collapsed per tag, so compare raw event counts).
  std::size_t single_events = 0;
  std::size_t continuous_events = 0;
  for (const auto& log : single.logs) single_events += log.size();
  for (const auto& log : continuous.logs) continuous_events += log.size();
  EXPECT_LE(single_events, continuous_events);
}

TEST(EstimatorTest, MeanReliabilityIsAverageOfPerTag) {
  const Scenario sc = make_read_range_scenario(5.0, kCal);
  const RepeatedRuns runs = run_repeated(sc, 8, 23);
  const auto per_tag = per_tag_reliability(sc, runs);
  double sum = 0.0;
  for (const auto& [id, ci] : per_tag) sum += ci.estimate;
  EXPECT_NEAR(mean_tag_reliability(sc, runs), sum / per_tag.size(), 1e-12);
}

}  // namespace
}  // namespace rfidsim::reliability
