#include "reliability/scenarios.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();

TEST(ReadRangeScenarioTest, TwentyTagGridOneAntenna) {
  const Scenario sc = make_read_range_scenario(3.0, kCal);
  EXPECT_EQ(sc.scene.all_tags().size(), 20u);
  EXPECT_EQ(sc.scene.antennas.size(), 1u);
  EXPECT_EQ(sc.registry.object_count(), 20u);
  EXPECT_EQ(sc.registry.tag_count(), 20u);
  EXPECT_NEAR(sc.scene.antennas[0].pose.position.y, 3.0, 1e-12);
}

TEST(ReadRangeScenarioTest, InvalidDistanceThrows) {
  EXPECT_THROW(make_read_range_scenario(0.0, kCal), ConfigError);
  EXPECT_THROW(make_read_range_scenario(-1.0, kCal), ConfigError);
}

TEST(IntertagScenarioTest, TenTagsAtRequestedSpacing) {
  const Scenario sc = make_intertag_scenario(0.02, kFigure3Orientations[1], kCal);
  const auto tags = sc.scene.all_tags();
  ASSERT_EQ(tags.size(), 10u);
  const auto& entity = sc.scene.entities[0];
  const double spacing =
      entity.tag_position(1, 0.0).distance_to(entity.tag_position(0, 0.0));
  EXPECT_NEAR(spacing, 0.02, 1e-12);
}

TEST(IntertagScenarioTest, OrientationIsApplied) {
  const Scenario sc = make_intertag_scenario(0.02, kFigure3Orientations[0], kCal);
  const auto& entity = sc.scene.entities[0];
  // Case 1: dipole axis toward the antenna (+y).
  EXPECT_NEAR(entity.tag_dipole_axis(0, 0.0).y, 1.0, 1e-12);
}

TEST(IntertagScenarioTest, NegativeSpacingThrows) {
  EXPECT_THROW(make_intertag_scenario(-0.01, kFigure3Orientations[0], kCal),
               ConfigError);
}

TEST(ObjectScenarioTest, TwelveBoxesWithRequestedFaces) {
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  EXPECT_EQ(sc.scene.entities.size(), 12u);
  EXPECT_EQ(sc.scene.all_tags().size(), 24u);
  EXPECT_EQ(sc.registry.object_count(), 12u);
  // Every box has both its tags bound to it.
  for (const auto& obj : sc.registry.objects()) {
    EXPECT_EQ(sc.registry.tags_of(obj).size(), 2u);
  }
}

TEST(ObjectScenarioTest, EmptyFacesThrow) {
  ObjectScenarioOptions opt;
  opt.tag_faces.clear();
  EXPECT_THROW(make_object_tracking_scenario(opt, kCal), ConfigError);
}

TEST(ObjectScenarioTest, TwoAntennasFormFacingPair) {
  ObjectScenarioOptions opt;
  opt.portal.antenna_count = 2;
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  ASSERT_EQ(sc.scene.antennas.size(), 2u);
  const auto& a0 = sc.scene.antennas[0];
  const auto& a1 = sc.scene.antennas[1];
  EXPECT_NEAR(a0.pose.position.distance_to(a1.pose.position), 2.0, 1e-12);
  // They face each other.
  EXPECT_LT(a0.pose.frame.forward.dot(a1.pose.frame.forward), -0.99);
}

TEST(ObjectScenarioTest, TwoReadersSplitAntennas) {
  ObjectScenarioOptions opt;
  opt.portal.antenna_count = 2;
  opt.portal.reader_count = 2;
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  ASSERT_EQ(sc.portal.readers.size(), 2u);
  EXPECT_EQ(sc.portal.readers[0].antenna_indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(sc.portal.readers[1].antenna_indices, (std::vector<std::size_t>{1}));
  // Without DRM both land on the same channel.
  EXPECT_EQ(sc.portal.readers[0].channel, sc.portal.readers[1].channel);
}

TEST(ObjectScenarioTest, DrmAssignsDistinctChannels) {
  ObjectScenarioOptions opt;
  opt.portal.antenna_count = 2;
  opt.portal.reader_count = 2;
  opt.portal.dense_reader_mode = true;
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  EXPECT_NE(sc.portal.readers[0].channel, sc.portal.readers[1].channel);
  EXPECT_TRUE(sc.portal.readers[0].dense_reader_mode);
}

TEST(ObjectScenarioTest, MoreReadersThanAntennasThrows) {
  ObjectScenarioOptions opt;
  opt.portal.antenna_count = 1;
  opt.portal.reader_count = 2;
  EXPECT_THROW(make_object_tracking_scenario(opt, kCal), ConfigError);
}

TEST(ObjectScenarioTest, SpeedScalesPassDuration) {
  ObjectScenarioOptions slow;
  slow.speed_mps = 0.5;
  ObjectScenarioOptions fast;
  fast.speed_mps = 2.0;
  const Scenario s1 = make_object_tracking_scenario(slow, kCal);
  const Scenario s2 = make_object_tracking_scenario(fast, kCal);
  EXPECT_NEAR(s1.portal.end_time_s / s2.portal.end_time_s, 4.0, 1e-9);
}

TEST(HumanScenarioTest, SubjectsAndSpots) {
  HumanScenarioOptions opt;
  opt.subject_count = 2;
  opt.tag_spots = {scene::BodySpot::Front, scene::BodySpot::Back};
  const Scenario sc = make_human_tracking_scenario(opt, kCal);
  EXPECT_EQ(sc.scene.entities.size(), 2u);
  EXPECT_EQ(sc.scene.all_tags().size(), 4u);
  EXPECT_EQ(sc.registry.object_count(), 2u);
}

TEST(HumanScenarioTest, CloserSubjectIsOnAntennaSide) {
  HumanScenarioOptions opt;
  opt.subject_count = 2;
  const Scenario sc = make_human_tracking_scenario(opt, kCal);
  const double antenna_y = sc.scene.antennas[0].pose.position.y;
  const double y0 = sc.scene.entities[0].pose_at(0.0).position.y;
  const double y1 = sc.scene.entities[1].pose_at(0.0).position.y;
  EXPECT_GT(antenna_y, 0.0);
  EXPECT_GT(y0, y1);  // Subject 0 is closer to the +y antenna.
}

TEST(HumanScenarioTest, InvalidCountsThrow) {
  HumanScenarioOptions opt;
  opt.subject_count = 3;
  EXPECT_THROW(make_human_tracking_scenario(opt, kCal), ConfigError);
  opt.subject_count = 1;
  opt.tag_spots.clear();
  EXPECT_THROW(make_human_tracking_scenario(opt, kCal), ConfigError);
}

TEST(HumanScenarioTest, BadgeTagsDoNotTouchTheBody) {
  HumanScenarioOptions opt;
  const Scenario sc = make_human_tracking_scenario(opt, kCal);
  for (const auto& tag : sc.scene.entities[0].tags()) {
    EXPECT_GT(tag.mount.backing_gap_m, 0.0);
    EXPECT_EQ(tag.mount.backing_material, rf::Material::HumanBody);
  }
}

TEST(PortalConfigTest, CalibrationPropagates) {
  PortalOptions opt;
  const sys::PortalConfig cfg = make_portal_config(kCal, opt, 1, 5.0);
  EXPECT_EQ(cfg.readers.size(), 1u);
  EXPECT_EQ(cfg.end_time_s, 5.0);
  EXPECT_EQ(cfg.shadow_sigma_db, kCal.shadow_sigma_db);
  EXPECT_EQ(cfg.readers[0].radio.tx_power.value(), kCal.radio.tx_power.value());
}

TEST(PortalConfigTest, ValidationErrors) {
  PortalOptions opt;
  opt.reader_count = 0;
  EXPECT_THROW(make_portal_config(kCal, opt, 1, 5.0), ConfigError);
  opt.reader_count = 2;
  EXPECT_THROW(make_portal_config(kCal, opt, 1, 5.0), ConfigError);
}

TEST(ScenarioDescriptionsTest, AreNonEmpty) {
  EXPECT_FALSE(make_read_range_scenario(1.0, kCal).description.empty());
  EXPECT_FALSE(make_intertag_scenario(0.02, kFigure3Orientations[0], kCal)
                   .description.empty());
  EXPECT_FALSE(make_object_tracking_scenario({}, kCal).description.empty());
  EXPECT_FALSE(make_human_tracking_scenario({}, kCal).description.empty());
}

}  // namespace
}  // namespace rfidsim::reliability
