// Guards on the calibrated profile: EXPERIMENTS.md documents these values;
// changing any of them invalidates every reproduced table, so a change
// must be deliberate (and must come with a recalibration pass).
#include "reliability/calibration.hpp"

#include <gtest/gtest.h>

namespace rfidsim::reliability {
namespace {

TEST(CalibrationTest, PaperHardwareAnchors) {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  // Stated in the paper: 30 dBm (1 W) max power, UHF Gen 2.
  EXPECT_DOUBLE_EQ(cal.radio.tx_power.value(), 30.0);
  EXPECT_DOUBLE_EQ(cal.radio.frequency_hz, 915e6);
}

TEST(CalibrationTest, CalibratedConstantsMatchExperimentsDoc) {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  EXPECT_DOUBLE_EQ(cal.radio.tag_sensitivity.value(), -15.5);
  EXPECT_DOUBLE_EQ(cal.radio.path_loss_exponent, 2.3);
  EXPECT_DOUBLE_EQ(cal.shadow_sigma_db, 4.0);
  EXPECT_DOUBLE_EQ(cal.evaluator.coupling.contact_loss_db, 30.0);
  EXPECT_DOUBLE_EQ(cal.evaluator.coupling.decay_scale_m, 0.012);
  EXPECT_DOUBLE_EQ(cal.evaluator.scatter_excess_db, 14.0);
  EXPECT_DOUBLE_EQ(cal.evaluator.reflection_bonus_db, 8.0);
  EXPECT_DOUBLE_EQ(cal.evaluator.proximity_loss_db, 4.5);
}

TEST(CalibrationTest, TwentyMsPerTagTimingAnchor) {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  const double per_tag = cal.inventory.timing.ideal_inventory_time_s(20) / 20.0;
  EXPECT_GT(per_tag, 0.004);
  EXPECT_LT(per_tag, 0.03);
}

TEST(CalibrationTest, ForwardLinkIsTheBindingConstraint) {
  // The defining regime of 2006-era passive UHF (DESIGN.md §4.1).
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  const rf::LinkBudget budget(cal.radio);
  rf::PathTerms terms;
  terms.distance_m = 3.0;
  const rf::LinkResult fwd = budget.forward(terms);
  const rf::LinkResult rev = budget.reverse(terms, fwd.received);
  EXPECT_GT(rev.margin.value(), fwd.margin.value());
}

}  // namespace
}  // namespace rfidsim::reliability
