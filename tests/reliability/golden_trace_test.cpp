// Golden-trace regression tests: tolerance-free digests of small fixed-seed
// runs, checked against constants captured when the physics was last
// deliberately changed. Any drift — an RNG reordering, a refactored
// floating-point expression, a new term in the link budget — lands here as
// a digest mismatch long before it would move a reliability table.
//
// To regenerate after an INTENTIONAL physics change: run this binary and
// copy the "actual" values from the failure output into the kGolden*
// constants below, then say so in the commit message.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"

namespace rfidsim::reliability {
namespace {

constexpr std::uint64_t kGoldenSeed = 20070625;  // The paper's DSN date.

/// Compact fingerprint of a repeated-run event stream: the per-repetition
/// read counts (cheap to eyeball in a diff) plus an order-sensitive FNV-1a
/// hash over every field of every event (catches everything else).
struct TraceDigest {
  std::vector<std::size_t> reads_per_rep;
  std::uint64_t hash = 0;

  bool operator==(const TraceDigest&) const = default;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

TraceDigest digest(const RepeatedRuns& runs) {
  TraceDigest d;
  d.hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  for (const sys::EventLog& log : runs.logs) {
    d.reads_per_rep.push_back(log.size());
    for (const sys::ReadEvent& e : log) {
      d.hash = fnv1a(d.hash, e.tag.value);
      d.hash = fnv1a(d.hash, std::bit_cast<std::uint64_t>(e.time_s));
      d.hash = fnv1a(d.hash, e.reader_index);
      d.hash = fnv1a(d.hash, e.antenna_index);
      d.hash = fnv1a(d.hash, std::bit_cast<std::uint64_t>(e.rssi.value()));
    }
  }
  return d;
}

void expect_digest(const TraceDigest& actual, const TraceDigest& golden) {
  EXPECT_EQ(actual, golden)
      << "Golden trace drifted. If the physics change was intentional, update "
         "the constants from these actual values:\n  reads_per_rep = "
      << ::testing::PrintToString(actual.reads_per_rep) << "\n  hash = 0x" << std::hex
      << actual.hash << "ull";
}

TEST(GoldenTraceTest, ReadRangeGrid) {
  // Fig. 2 rig at 4 m: static scene, so this trace also pins the
  // static-geometry cache (it is on by default here).
  const Scenario sc =
      make_read_range_scenario(4.0, CalibrationProfile::paper2006());
  const TraceDigest golden{{15, 18, 13}, 0x1edf117b9ea6bc37ull};
  expect_digest(digest(run_repeated(sc, 3, kGoldenSeed)), golden);
}

TEST(GoldenTraceTest, ObjectTrackingCart) {
  // Table 1 rig, front-face tags: moving entities, occlusion, two-ray.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front};
  const Scenario sc =
      make_object_tracking_scenario(opt, CalibrationProfile::paper2006());
  const TraceDigest golden{{41, 42}, 0x2d76b698c52ae4bbull};
  expect_digest(digest(run_repeated(sc, 2, kGoldenSeed)), golden);
}

TEST(GoldenTraceTest, SingleRoundInventory) {
  // One Gen 2 round per repetition: pins the MAC layer (slot choices,
  // collisions) with almost no RF surface.
  const Scenario sc =
      make_read_range_scenario(3.0, CalibrationProfile::paper2006());
  const TraceDigest golden{{14, 10, 16, 14}, 0xd2faa7dfb6108924ull};
  expect_digest(digest(run_repeated(sc, 4, kGoldenSeed, true)), golden);
}

TEST(GoldenTraceTest, ParallelPathYieldsTheSameDigest) {
  // Ties the golden layer to the sweep engine: the parallel estimator must
  // reproduce the identical digest, so one constant guards both paths.
  const Scenario sc =
      make_read_range_scenario(4.0, CalibrationProfile::paper2006());
  EXPECT_EQ(digest(run_repeated(sc, 3, kGoldenSeed)),
            digest(run_repeated_parallel(sc, 3, kGoldenSeed, 4)));
}

}  // namespace
}  // namespace rfidsim::reliability
