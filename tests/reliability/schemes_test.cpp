#include "reliability/schemes.hpp"

#include <gtest/gtest.h>

namespace rfidsim::reliability {
namespace {

TEST(SchemeTest, ReadOpportunitiesIsProduct) {
  const RedundancyScheme s{.tags_per_object = 2, .antennas_per_portal = 2};
  EXPECT_EQ(s.read_opportunities(), 4u);
}

TEST(SchemeTest, LabelsReadNaturally) {
  EXPECT_EQ((RedundancyScheme{1, 1, 1, false}.label()), "1 antenna, 1 tag");
  EXPECT_EQ((RedundancyScheme{2, 2, 1, false}.label()), "2 antennas, 2 tags");
  EXPECT_EQ((RedundancyScheme{1, 2, 2, false}.label()),
            "2 antennas, 1 tag, 2 readers (no DRM)");
  EXPECT_EQ((RedundancyScheme{1, 2, 2, true}.label()),
            "2 antennas, 1 tag, 2 readers (DRM)");
}

TEST(SchemeTest, Figure5SchemesMatchPaper) {
  const auto schemes = figure5_schemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0].read_opportunities(), 1u);
  EXPECT_EQ(schemes[3].read_opportunities(), 4u);
  for (const auto& s : schemes) {
    EXPECT_EQ(s.readers_per_portal, 1u);
    EXPECT_LE(s.tags_per_object, 2u);
    EXPECT_LE(s.antennas_per_portal, 2u);
  }
}

TEST(SchemeTest, Figure6SchemesIncludeFourTags) {
  const auto schemes = figure6_schemes();
  ASSERT_EQ(schemes.size(), 6u);
  bool has_four_tags = false;
  for (const auto& s : schemes) {
    if (s.tags_per_object == 4) has_four_tags = true;
  }
  EXPECT_TRUE(has_four_tags);
}

TEST(CostModelTest, TagsScaleWithVolume) {
  CostModel cost;
  cost.tag_cost = 0.05;
  cost.objects_per_horizon = 10000.0;
  cost.antenna_cost = 200.0;
  cost.reader_cost = 1500.0;
  const RedundancyScheme one_tag{1, 1, 1, false};
  const RedundancyScheme two_tags{2, 1, 1, false};
  EXPECT_NEAR(cost.total_cost(two_tags) - cost.total_cost(one_tag), 500.0, 1e-9);
}

TEST(CostModelTest, InfrastructureIsPerPortal) {
  CostModel cost;
  const RedundancyScheme base{1, 1, 1, false};
  const RedundancyScheme extra_antenna{1, 2, 1, false};
  EXPECT_NEAR(cost.total_cost(extra_antenna) - cost.total_cost(base),
              cost.antenna_cost, 1e-9);
}

}  // namespace
}  // namespace rfidsim::reliability
