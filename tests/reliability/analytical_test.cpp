#include "reliability/analytical.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rfidsim::reliability {
namespace {

TEST(AnalyticalTest, EmptySetHasZeroReliability) {
  EXPECT_EQ(expected_reliability({}), 0.0);
}

TEST(AnalyticalTest, SingleOpportunityIsItsOwnReliability) {
  EXPECT_DOUBLE_EQ(expected_reliability({0.63}), 0.63);
}

TEST(AnalyticalTest, PaperTable3FrontExample) {
  // Two antennas, one front tag at 87%: R_C = 1 - 0.13^2 = 0.9831 (the
  // paper rounds to 98%).
  EXPECT_NEAR(expected_reliability({0.87, 0.87}), 0.9831, 1e-4);
}

TEST(AnalyticalTest, PaperTable3SideExample) {
  // Side tag: near 83% to one antenna, far-side-like 63% to the other:
  // R_C = 1 - 0.17*0.37 = 0.9371 (the paper rounds to 94%).
  EXPECT_NEAR(expected_reliability({0.83, 0.63}), 0.9371, 1e-4);
}

TEST(AnalyticalTest, OutOfRangeProbabilityThrows) {
  EXPECT_THROW(expected_reliability({1.2}), ConfigError);
  EXPECT_THROW(expected_reliability({-0.1}), ConfigError);
}

TEST(AnalyticalTest, CertainOpportunityDominates) {
  EXPECT_DOUBLE_EQ(expected_reliability({0.1, 1.0, 0.2}), 1.0);
}

TEST(IdenticalTest, MatchesGeneralFormula) {
  EXPECT_NEAR(expected_reliability_identical(0.63, 2),
              expected_reliability({0.63, 0.63}), 1e-12);
  EXPECT_NEAR(expected_reliability_identical(0.63, 4), 0.9813, 1e-3);
}

TEST(IdenticalTest, ZeroCountIsZero) {
  EXPECT_EQ(expected_reliability_identical(0.9, 0), 0.0);
}

TEST(OpportunitiesForTargetTest, PaperScale) {
  // At the paper's 63% average single-tag reliability, two tags predict
  // ~86%, three ~95%, four ~98%: hitting 99% takes five.
  EXPECT_EQ(opportunities_for_target(0.63, 0.99), 5u);
  EXPECT_EQ(opportunities_for_target(0.63, 0.95), 4u);
  EXPECT_EQ(opportunities_for_target(0.63, 0.60), 1u);
}

TEST(OpportunitiesForTargetTest, EdgeCases) {
  EXPECT_EQ(opportunities_for_target(0.5, 0.0), 0u);
  EXPECT_EQ(opportunities_for_target(0.5, -1.0), 0u);
  EXPECT_EQ(opportunities_for_target(1.0, 0.999), 1u);
  EXPECT_THROW(opportunities_for_target(0.0, 0.5), ConfigError);
  EXPECT_THROW(opportunities_for_target(0.5, 1.0), ConfigError);
}

TEST(OpportunitiesForTargetTest, ResultActuallyMeetsTarget) {
  for (double p : {0.1, 0.3, 0.63, 0.9}) {
    for (double target : {0.5, 0.9, 0.99, 0.999}) {
      const std::size_t n = opportunities_for_target(p, target);
      EXPECT_GE(expected_reliability_identical(p, n), target - 1e-12);
      if (n > 1) {
        EXPECT_LT(expected_reliability_identical(p, n - 1), target);
      }
    }
  }
}

TEST(MarginalGainTest, Values) {
  EXPECT_NEAR(marginal_gain(0.8, 0.63), (1.0 - 0.2 * 0.37) - 0.8, 1e-12);
  EXPECT_EQ(marginal_gain(1.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(marginal_gain(0.0, 0.9), 0.9);
}

TEST(MarginalGainTest, DiminishingReturns) {
  // Each extra identical opportunity buys less than the previous one.
  double r = 0.0;
  double prev_gain = 1.0;
  for (int i = 0; i < 6; ++i) {
    const double gain = marginal_gain(r, 0.63);
    EXPECT_LT(gain, prev_gain);
    prev_gain = gain;
    r += gain;
  }
}

TEST(GridTest, SizeMismatchThrows) {
  EXPECT_THROW(expected_reliability_grid({0.5, 0.5, 0.5}, 2, 2), ConfigError);
}

TEST(GridTest, MatchesFlatFormula) {
  const std::vector<double> ps{0.87, 0.83, 0.87, 0.83};
  EXPECT_DOUBLE_EQ(expected_reliability_grid(ps, 2, 2), expected_reliability(ps));
}

/// Property sweep: R_C is monotone in every opportunity and bounded by
/// [max(P_i), 1].
class AnalyticalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyticalPropertyTest, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> ps;
  const int n = static_cast<int>(rng.uniform_int(1, 6));
  double max_p = 0.0;
  for (int i = 0; i < n; ++i) {
    ps.push_back(rng.uniform());
    max_p = std::max(max_p, ps.back());
  }
  const double r = expected_reliability(ps);
  EXPECT_GE(r, max_p - 1e-12);
  EXPECT_LE(r, 1.0);
  // Bumping any single opportunity never lowers R_C.
  for (int i = 0; i < n; ++i) {
    std::vector<double> bumped = ps;
    bumped[static_cast<std::size_t>(i)] =
        std::min(1.0, bumped[static_cast<std::size_t>(i)] + 0.1);
    EXPECT_GE(expected_reliability(bumped), r - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, AnalyticalPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(DegradedGridTest, AllLiveMatchesPlainGrid) {
  const std::vector<double> ps{0.8, 0.86, 0.97, 0.7};
  EXPECT_DOUBLE_EQ(expected_reliability_grid_degraded(ps, 2, 2, {true, true}),
                   expected_reliability_grid(ps, 2, 2));
}

TEST(DegradedGridTest, DeadAntennaDropsItsColumn) {
  // 2 tags x 2 antennas; antenna 1 down leaves the column-0 opportunities.
  const std::vector<double> ps{0.8, 0.86, 0.97, 0.7};
  EXPECT_DOUBLE_EQ(expected_reliability_grid_degraded(ps, 2, 2, {true, false}),
                   expected_reliability({0.8, 0.97}));
  EXPECT_DOUBLE_EQ(expected_reliability_grid_degraded(ps, 2, 2, {false, true}),
                   expected_reliability({0.86, 0.7}));
}

TEST(DegradedGridTest, AllDeadIsZero) {
  EXPECT_EQ(expected_reliability_grid_degraded({0.9, 0.9}, 2, 1, {false}), 0.0);
}

TEST(DegradedGridTest, TagRedundancySurvivesAntennaLossBetter) {
  // The PR's headline result in analytical form: losing one of two
  // antennas barely dents a 2-tag scheme but guts the 1-tag scheme's
  // redundancy.
  const double p_front = 0.8, p_side = 0.7;
  const std::vector<double> one_tag{p_front, p_front};
  const std::vector<double> two_tags{p_front, p_front, p_side, p_side};
  const double one_tag_degraded =
      expected_reliability_grid_degraded(one_tag, 1, 2, {true, false});
  const double two_tag_degraded =
      expected_reliability_grid_degraded(two_tags, 2, 2, {true, false});
  EXPECT_GT(two_tag_degraded, 0.93);
  EXPECT_LE(one_tag_degraded, 0.8 + 1e-12);
}

TEST(DegradedGridTest, RejectsSizeMismatch) {
  EXPECT_THROW(expected_reliability_grid_degraded({0.5}, 1, 2, {true, true}),
               ConfigError);
  EXPECT_THROW(expected_reliability_grid_degraded({0.5, 0.5}, 1, 2, {true}),
               ConfigError);
}

}  // namespace
}  // namespace rfidsim::reliability
