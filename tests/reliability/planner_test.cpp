#include "reliability/planner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "reliability/analytical.hpp"

namespace rfidsim::reliability {
namespace {

PlannerRequest paper_request() {
  PlannerRequest req;
  // Paper Table 1 per-location reliabilities.
  req.tag_position_reliabilities = {0.87, 0.83, 0.63, 0.29};
  req.target_reliability = 0.99;
  return req;
}

TEST(PredictTest, SingleTagSingleAntenna) {
  const RedundancyScheme s{1, 1, 1, false};
  EXPECT_DOUBLE_EQ(predict_scheme_reliability(s, {0.87}), 0.87);
}

TEST(PredictTest, TwoTagsUseBestPositionsFirst) {
  const RedundancyScheme s{2, 1, 1, false};
  EXPECT_NEAR(predict_scheme_reliability(s, {0.87, 0.83}),
              expected_reliability({0.87, 0.83}), 1e-12);
}

TEST(PredictTest, AntennasMultiplyOpportunities) {
  const RedundancyScheme s{1, 2, 1, false};
  EXPECT_NEAR(predict_scheme_reliability(s, {0.87}),
              expected_reliability({0.87, 0.87}), 1e-12);
}

TEST(PredictTest, MoreTagsThanPositionsThrows) {
  const RedundancyScheme s{3, 1, 1, false};
  EXPECT_THROW(predict_scheme_reliability(s, {0.87, 0.83}), ConfigError);
}

TEST(PlannerTest, InvalidInputsThrow) {
  PlannerRequest req = paper_request();
  req.target_reliability = 1.0;
  EXPECT_THROW(plan_redundancy(req), ConfigError);
  req = paper_request();
  req.tag_position_reliabilities.clear();
  EXPECT_THROW(plan_redundancy(req), ConfigError);
  req = paper_request();
  req.tag_position_reliabilities = {1.3};
  EXPECT_THROW(plan_redundancy(req), ConfigError);
}

TEST(PlannerTest, FindsCheapestSchemeMeetingPaperTarget) {
  PlannerRequest req = paper_request();
  req.target_reliability = 0.98;  // 2 antennas x 0.87 -> 0.983.
  const PlanResult result = plan_redundancy(req);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GE(result.best->predicted_reliability, 0.98);
  // With tags at $0.05 * 10k objects vs a $200 antenna, the cheapest way
  // to 99% from {0.87, 0.83} is one tag + second antenna ($200 extra)
  // rather than a second tag ($500 extra).
  EXPECT_EQ(result.best->scheme.antennas_per_portal, 2u);
  EXPECT_EQ(result.best->scheme.tags_per_object, 1u);
}

TEST(PlannerTest, TagHeavySchemeWinsWhenInfrastructureIsExpensive) {
  PlannerRequest req = paper_request();
  req.cost.antenna_cost = 100000.0;
  const PlanResult result = plan_redundancy(req);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best->scheme.antennas_per_portal, 1u);
  EXPECT_GE(result.best->scheme.tags_per_object, 2u);
}

TEST(PlannerTest, UnreachableTargetYieldsNoBest) {
  PlannerRequest req;
  req.tag_position_reliabilities = {0.1};
  req.max_tags_per_object = 1;
  req.max_antennas_per_portal = 1;
  req.target_reliability = 0.99;
  const PlanResult result = plan_redundancy(req);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_FALSE(result.candidates.empty());
}

TEST(PlannerTest, CandidatesSortedByCost) {
  const PlanResult result = plan_redundancy(paper_request());
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(result.candidates[i - 1].cost, result.candidates[i].cost);
  }
}

TEST(PlannerTest, NoMultiReaderWithoutDrm) {
  PlannerRequest req = paper_request();
  req.max_readers_per_portal = 2;
  req.dense_reader_mode_available = false;
  const PlanResult result = plan_redundancy(req);
  for (const PlannedScheme& c : result.candidates) {
    EXPECT_EQ(c.scheme.readers_per_portal, 1u);
  }
}

TEST(PlannerTest, DrmUnlocksMultiReaderCandidates) {
  PlannerRequest req = paper_request();
  req.max_readers_per_portal = 2;
  req.dense_reader_mode_available = true;
  const PlanResult result = plan_redundancy(req);
  bool saw_two_readers = false;
  for (const PlannedScheme& c : result.candidates) {
    if (c.scheme.readers_per_portal == 2) {
      saw_two_readers = true;
      EXPECT_TRUE(c.scheme.dense_reader_mode);
      EXPECT_GE(c.scheme.antennas_per_portal, 2u);  // One antenna each.
    }
  }
  EXPECT_TRUE(saw_two_readers);
}

TEST(PlannerTest, PositionsAreSortedBestFirstInternally) {
  PlannerRequest req;
  req.tag_position_reliabilities = {0.29, 0.87};  // Deliberately unsorted.
  req.target_reliability = 0.85;
  const PlanResult result = plan_redundancy(req);
  ASSERT_TRUE(result.best.has_value());
  // One tag at the best position (0.87) suffices.
  EXPECT_EQ(result.best->scheme.tags_per_object, 1u);
  EXPECT_EQ(result.best->scheme.antennas_per_portal, 1u);
}

}  // namespace
}  // namespace rfidsim::reliability
