#include <gtest/gtest.h>

#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();

TEST(ParallelEstimatorTest, MatchesSerialResultsExactly) {
  // The whole point of per-repetition RNG forking: thread scheduling must
  // not change a single event.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front};
  const Scenario sc = make_object_tracking_scenario(opt, kCal);

  const RepeatedRuns serial = run_repeated(sc, 8, 321);
  const RepeatedRuns parallel = run_repeated_parallel(sc, 8, 321, 4);
  ASSERT_EQ(serial.logs.size(), parallel.logs.size());
  for (std::size_t rep = 0; rep < serial.logs.size(); ++rep) {
    ASSERT_EQ(serial.logs[rep].size(), parallel.logs[rep].size()) << "rep " << rep;
    for (std::size_t i = 0; i < serial.logs[rep].size(); ++i) {
      EXPECT_EQ(serial.logs[rep][i].tag, parallel.logs[rep][i].tag);
      EXPECT_EQ(serial.logs[rep][i].time_s, parallel.logs[rep][i].time_s);
      EXPECT_EQ(serial.logs[rep][i].antenna_index, parallel.logs[rep][i].antenna_index);
    }
  }
}

TEST(ParallelEstimatorTest, SingleRoundModeMatchesToo) {
  const Scenario sc = make_read_range_scenario(4.0, kCal);
  const auto serial = distinct_tags_per_run(run_repeated(sc, 6, 11, true));
  const auto parallel =
      distinct_tags_per_run(run_repeated_parallel(sc, 6, 11, 3, true));
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEstimatorTest, MoreThreadsThanRepsIsFine) {
  const Scenario sc = make_read_range_scenario(2.0, kCal);
  const RepeatedRuns runs = run_repeated_parallel(sc, 2, 5, 16);
  EXPECT_EQ(runs.logs.size(), 2u);
}

TEST(ParallelEstimatorTest, ZeroThreadsUsesHardwareConcurrency) {
  const Scenario sc = make_read_range_scenario(2.0, kCal);
  const RepeatedRuns runs = run_repeated_parallel(sc, 4, 5, 0);
  EXPECT_EQ(runs.logs.size(), 4u);
}

}  // namespace
}  // namespace rfidsim::reliability
