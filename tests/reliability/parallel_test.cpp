// Differential tests: the sweep-backed parallel estimator against the
// serial reference loop. The contract is byte-identity — every field of
// every event, in order — not statistical agreement; run_repeated stays in
// the codebase precisely so these comparisons keep an independent witness.
#include <gtest/gtest.h>

#include <cstddef>

#include "reliability/estimator.hpp"
#include "reliability/facility.hpp"
#include "reliability/scenarios.hpp"

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();

/// Full-field, exact comparison of two repeated-run event streams.
void expect_logs_identical(const RepeatedRuns& serial, const RepeatedRuns& parallel) {
  ASSERT_EQ(serial.logs.size(), parallel.logs.size());
  for (std::size_t rep = 0; rep < serial.logs.size(); ++rep) {
    ASSERT_EQ(serial.logs[rep].size(), parallel.logs[rep].size()) << "rep " << rep;
    for (std::size_t i = 0; i < serial.logs[rep].size(); ++i) {
      const sys::ReadEvent& s = serial.logs[rep][i];
      const sys::ReadEvent& p = parallel.logs[rep][i];
      EXPECT_EQ(s.tag, p.tag) << "rep " << rep << " event " << i;
      EXPECT_EQ(s.time_s, p.time_s) << "rep " << rep << " event " << i;
      EXPECT_EQ(s.reader_index, p.reader_index) << "rep " << rep << " event " << i;
      EXPECT_EQ(s.antenna_index, p.antenna_index) << "rep " << rep << " event " << i;
      EXPECT_EQ(s.rssi, p.rssi) << "rep " << rep << " event " << i;
    }
  }
}

TEST(ParallelEstimatorTest, MatchesSerialResultsExactly) {
  // The whole point of per-repetition RNG forking: thread scheduling must
  // not change a single event.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front};
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  expect_logs_identical(run_repeated(sc, 8, 321), run_repeated_parallel(sc, 8, 321, 4));
}

TEST(ParallelEstimatorTest, MatchesSerialOnHumanScenario) {
  // The human rig exercises walking trajectories, two antennas and the
  // proximity/Fresnel terms — the scenario family the object test misses.
  HumanScenarioOptions opt;
  opt.subject_count = 2;
  opt.tag_spots = {scene::BodySpot::Front, scene::BodySpot::Back};
  opt.portal.antenna_count = 2;
  const Scenario sc = make_human_tracking_scenario(opt, kCal);
  expect_logs_identical(run_repeated(sc, 6, 777), run_repeated_parallel(sc, 6, 777, 3));
}

TEST(ParallelEstimatorTest, IdenticalAcrossThreadCounts) {
  // 1, 2, 5 and hardware threads must all produce the same bytes; only
  // wall-clock may differ. threads == 1 takes the inline no-pool path.
  const Scenario sc = make_read_range_scenario(4.0, kCal);
  const RepeatedRuns reference = run_repeated(sc, 10, 20070625);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                                    std::size_t{0}}) {
    SCOPED_TRACE(threads);
    expect_logs_identical(reference, run_repeated_parallel(sc, 10, 20070625, threads));
  }
}

TEST(ParallelEstimatorTest, SingleRoundModeMatchesToo) {
  const Scenario sc = make_read_range_scenario(4.0, kCal);
  expect_logs_identical(run_repeated(sc, 6, 11, true),
                        run_repeated_parallel(sc, 6, 11, 3, true));
}

TEST(ParallelEstimatorTest, MoreThreadsThanRepsIsFine) {
  const Scenario sc = make_read_range_scenario(2.0, kCal);
  const RepeatedRuns runs = run_repeated_parallel(sc, 2, 5, 16);
  EXPECT_EQ(runs.logs.size(), 2u);
  expect_logs_identical(run_repeated(sc, 2, 5), runs);
}

TEST(ParallelEstimatorTest, ZeroThreadsUsesHardwareConcurrency) {
  const Scenario sc = make_read_range_scenario(2.0, kCal);
  const RepeatedRuns runs = run_repeated_parallel(sc, 4, 5, 0);
  EXPECT_EQ(runs.logs.size(), 4u);
}

TEST(ParallelFacilityTest, ShipmentTraceIndependentOfThreadCount) {
  // FacilitySimulator checkpoints are sweep cells: the shipment trace from
  // a 4-thread run must equal the single-thread run, detection set for
  // detection set.
  const FacilitySimulator facility(
      {
          {"dock", {}, 1.0},
          {"aisle", {.antenna_count = 2}, 1.2},
          {"gate", {}, 0.8},
      },
      ShipmentSpec{}, kCal);
  const FacilityRun serial = facility.run_shipment(4242, 1);
  const FacilityRun parallel = facility.run_shipment(4242, 4);

  EXPECT_EQ(serial.case_count, parallel.case_count);
  ASSERT_EQ(serial.observations.detected.size(), parallel.observations.detected.size());
  for (std::size_t k = 0; k < serial.observations.detected.size(); ++k) {
    EXPECT_EQ(serial.observations.detected[k], parallel.observations.detected[k])
        << "checkpoint " << k;
  }
  EXPECT_EQ(serial.full_trace_fraction, parallel.full_trace_fraction);
  EXPECT_EQ(serial.delivered_fraction, parallel.delivered_fraction);
  EXPECT_EQ(serial.cell_coverage, parallel.cell_coverage);
}

}  // namespace
}  // namespace rfidsim::reliability
