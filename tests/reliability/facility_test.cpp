#include "reliability/facility.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();

FacilityCheckpoint checkpoint(const char* name, std::size_t antennas = 1) {
  FacilityCheckpoint cp;
  cp.name = name;
  cp.portal.antenna_count = antennas;
  return cp;
}

TEST(FacilityTest, EmptyRouteThrows) {
  EXPECT_THROW(FacilitySimulator({}, ShipmentSpec{}, kCal), ConfigError);
}

TEST(FacilityTest, EmptyTagFacesThrow) {
  ShipmentSpec shipment;
  shipment.tag_faces.clear();
  EXPECT_THROW(FacilitySimulator({checkpoint("dock")}, shipment, kCal), ConfigError);
}

TEST(FacilityTest, RunProducesOneDetectionSetPerCheckpoint) {
  const FacilitySimulator facility(
      {checkpoint("inbound"), checkpoint("aisle"), checkpoint("outbound")},
      ShipmentSpec{}, kCal);
  const FacilityRun run = facility.run_shipment(1);
  EXPECT_EQ(run.observations.checkpoint_count, 3u);
  EXPECT_EQ(run.observations.detected.size(), 3u);
  EXPECT_EQ(run.case_count, 12u);
}

TEST(FacilityTest, MetricsAreConsistent) {
  const FacilitySimulator facility({checkpoint("a"), checkpoint("b")}, ShipmentSpec{},
                                   kCal);
  const FacilityRun run = facility.run_shipment(2);
  EXPECT_GE(run.cell_coverage, run.full_trace_fraction);
  EXPECT_GE(run.delivered_fraction, run.full_trace_fraction);
  EXPECT_LE(run.full_trace_fraction, 1.0);
  EXPECT_GE(run.full_trace_fraction, 0.0);
}

TEST(FacilityTest, DeterministicPerSeed) {
  const FacilitySimulator facility({checkpoint("a"), checkpoint("b")}, ShipmentSpec{},
                                   kCal);
  const FacilityRun r1 = facility.run_shipment(7);
  const FacilityRun r2 = facility.run_shipment(7);
  EXPECT_EQ(r1.full_trace_fraction, r2.full_trace_fraction);
  EXPECT_EQ(r1.cell_coverage, r2.cell_coverage);
  const FacilityRun r3 = facility.run_shipment(8);
  // Not a hard guarantee, but with 24 cells at <100% reliability two seeds
  // almost surely differ.
  EXPECT_TRUE(r1.cell_coverage != r3.cell_coverage ||
              r1.delivered_fraction != r3.delivered_fraction ||
              r1.full_trace_fraction == r3.full_trace_fraction);
}

TEST(FacilityTest, BetterTaggingImprovesFullTrace) {
  ShipmentSpec weak;
  weak.tag_faces = {scene::BoxFace::Top};
  ShipmentSpec strong;
  strong.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  const std::vector<FacilityCheckpoint> route{checkpoint("a"), checkpoint("b"),
                                              checkpoint("c")};
  double weak_sum = 0.0;
  double strong_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    weak_sum += FacilitySimulator(route, weak, kCal).run_shipment(seed).full_trace_fraction;
    strong_sum +=
        FacilitySimulator(route, strong, kCal).run_shipment(seed).full_trace_fraction;
  }
  EXPECT_GT(strong_sum, weak_sum);
}

TEST(FacilityTest, RouteConstraintNeverLowersMetrics) {
  ShipmentSpec weak;
  weak.tag_faces = {scene::BoxFace::SideFar};
  const FacilitySimulator facility(
      {checkpoint("a"), checkpoint("b"), checkpoint("c")}, weak, kCal);
  const FacilityRun raw = facility.run_shipment(3);
  const FacilityRun cleaned = FacilitySimulator::clean_with_route_constraint(raw);
  EXPECT_GE(cleaned.cell_coverage, raw.cell_coverage);
  EXPECT_GE(cleaned.full_trace_fraction, raw.full_trace_fraction);
  // Delivery (final checkpoint) cannot be inferred by the route constraint.
  EXPECT_EQ(cleaned.delivered_fraction, raw.delivered_fraction);
}

TEST(FacilityTest, RouteConstraintMakesFullTraceEqualDelivery) {
  // After route cleaning, every case seen at the last checkpoint has a
  // full (inferred) trace.
  ShipmentSpec spec;
  const FacilitySimulator facility({checkpoint("a"), checkpoint("b")}, spec, kCal);
  const FacilityRun cleaned =
      FacilitySimulator::clean_with_route_constraint(facility.run_shipment(11));
  EXPECT_GE(cleaned.full_trace_fraction, cleaned.delivered_fraction - 1e-12);
}

}  // namespace
}  // namespace rfidsim::reliability
