// Randomized full-pipeline fuzzing: build random-but-valid scenes, run the
// whole stack, and assert structural invariants that must hold for ANY
// input — no crashes, chronologically sorted logs, sane RSSI, registry
// closure, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/rng.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "system/portal.hpp"
#include "track/tracking.hpp"

namespace rfidsim::reliability {
namespace {

/// Builds a random scene: a few entities of random kinds with random tag
/// placements, one or two antennas.
Scenario random_scenario(Rng& rng) {
  Scenario sc;
  sc.description = "fuzz";
  std::uint64_t next_tag = 1;

  const auto entity_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
  for (std::size_t e = 0; e < entity_count; ++e) {
    Pose start;
    start.position = {rng.uniform(-3.0, -1.0), rng.uniform(-0.5, 0.5),
                      rng.uniform(0.5, 1.2)};
    start.frame.forward = {1.0, 0.0, 0.0};
    start.frame.up = {0.0, 0.0, 1.0};
    std::unique_ptr<scene::Trajectory> trajectory;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        trajectory = std::make_unique<scene::StaticTrajectory>(start);
        break;
      case 1:
        trajectory = std::make_unique<scene::LinearTrajectory>(
            start, Vec3{rng.uniform(0.3, 2.0), 0.0, 0.0});
        break;
      default:
        trajectory = std::make_unique<scene::WalkingTrajectory>(
            start, Vec3{rng.uniform(0.5, 1.5), 0.0, 0.0});
        break;
    }

    scene::Body body;
    rf::Material material = rf::Material::Air;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        body = std::monostate{};
        break;
      case 1:
        body = scene::BoxBody{{rng.uniform(0.2, 0.6), rng.uniform(0.2, 0.6),
                               rng.uniform(0.2, 0.6)}};
        material = rng.bernoulli(0.5) ? rf::Material::Metal : rf::Material::Cardboard;
        break;
      default:
        body = scene::CylinderBody{rng.uniform(0.15, 0.3), rng.uniform(1.5, 1.9)};
        material = rf::Material::HumanBody;
        break;
    }

    scene::Entity entity("fuzz " + std::to_string(e), body, material,
                         std::move(trajectory), rng.uniform(0.4, 1.0));
    const auto object = sc.registry.add_object(entity.name());
    const auto tag_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t t = 0; t < tag_count; ++t) {
      scene::TagMount m;
      m.local_position = {rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                          rng.uniform(-0.2, 0.2)};
      m.local_dipole_axis =
          Vec3{rng.gaussian(), rng.gaussian(), rng.gaussian()}.normalized();
      if (m.local_dipole_axis.norm2() == 0.0) m.local_dipole_axis = {1.0, 0.0, 0.0};
      m.local_patch_normal = {0.0, 1.0, 0.0};
      m.backing_material = static_cast<rf::Material>(rng.uniform_int(0, 6));
      m.backing_gap_m = rng.uniform(0.0, 0.05);
      switch (rng.uniform_int(0, 2)) {
        case 0: m.design = rf::TagDesign::single_dipole(); break;
        case 1: m.design = rf::TagDesign::dual_dipole(); break;
        default: m.design = rf::TagDesign::active_beacon(); break;
      }
      const scene::TagId id{next_tag++};
      entity.add_tag(scene::Tag{id, m});
      sc.registry.bind_tag(id, object);
    }
    sc.scene.entities.push_back(std::move(entity));
  }

  sc.scene.antennas.push_back(
      scene::Scene::make_antenna({0.0, rng.uniform(0.8, 2.0), 1.0}, {0.0, -1.0, 0.0}));
  if (rng.bernoulli(0.5)) {
    sc.scene.antennas.push_back(
        scene::Scene::make_antenna({0.0, -rng.uniform(0.8, 2.0), 1.0}, {0.0, 1.0, 0.0}));
  }

  PortalOptions options;
  options.antenna_count = sc.scene.antennas.size() >= 2 ? 2 : 1;
  options.reader_count = 1;
  sc.portal = make_portal_config(CalibrationProfile::paper2006(), options,
                                 sc.scene.antennas.size(), rng.uniform(1.0, 5.0));
  return sc;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomScenes) {
  Rng scene_rng(GetParam());
  const Scenario sc = random_scenario(scene_rng);

  sys::PortalSimulator sim(sc.scene, sc.portal);
  Rng run_rng(GetParam() * 7 + 1);
  const sys::EventLog log = sim.run(run_rng);

  // Events chronological and within the window.
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end(),
                             [](const sys::ReadEvent& a, const sys::ReadEvent& b) {
                               return a.time_s < b.time_s;
                             }));
  const auto tags = sc.scene.all_tags();
  std::unordered_set<std::uint64_t> known_ids;
  for (const auto& addr : tags) {
    known_ids.insert(sc.scene.entities[addr.entity].tags()[addr.tag].id.value);
  }
  for (const auto& ev : log) {
    EXPECT_GE(ev.time_s, sc.portal.start_time_s);
    // Events are stamped at round end; allow one round beyond the window.
    EXPECT_LE(ev.time_s, sc.portal.end_time_s + 1.0);
    EXPECT_LT(ev.antenna_index, sc.scene.antennas.size());
    EXPECT_TRUE(known_ids.contains(ev.tag.value));
    EXPECT_GT(ev.rssi.value(), -120.0);
    EXPECT_LT(ev.rssi.value(), 30.0);
  }

  // Stats consistent with the log.
  EXPECT_EQ(sim.stats().success_slots, log.size());
  EXPECT_GE(sim.stats().total_slots,
            sim.stats().collision_slots + sim.stats().success_slots);

  // The tracking pipeline digests any log without surprises.
  const track::TrackingAnalyzer analyzer(sc.registry);
  const track::PassReport report = analyzer.analyze(log);
  EXPECT_LE(report.objects_identified.size(), sc.registry.object_count());
  EXPECT_LE(analyzer.read_fraction(log), 1.0);

  // Determinism: same seeds, same event sequence.
  sys::PortalSimulator sim2(sc.scene, sc.portal);
  Rng rerun_rng(GetParam() * 7 + 1);
  const sys::EventLog log2 = sim2.run(rerun_rng);
  ASSERT_EQ(log.size(), log2.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].tag, log2[i].tag);
    EXPECT_EQ(log[i].time_s, log2[i].time_s);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenes, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace rfidsim::reliability
