// Integration tests for the paper's headline claims. Each test runs the
// full stack (scene -> RF -> Gen 2 -> portal -> tracking -> estimator) on
// the calibrated profile and asserts the *qualitative* result the paper
// reports — orderings and directions, not absolute percentages.
#include <gtest/gtest.h>

#include "reliability/analytical.hpp"
#include "reliability/estimator.hpp"
#include "reliability/orientation.hpp"
#include "reliability/scenarios.hpp"

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();
constexpr std::uint64_t kSeed = 777;

double object_reliability(const ObjectScenarioOptions& opt, std::size_t reps = 16) {
  return measure_tracking_reliability(make_object_tracking_scenario(opt, kCal), reps,
                                      kSeed);
}

double human_reliability(const HumanScenarioOptions& opt, std::size_t reps = 24) {
  return measure_tracking_reliability(make_human_tracking_scenario(opt, kCal), reps,
                                      kSeed);
}

TEST(PaperClaim, ReadReliabilityDecaysWithDistance) {
  // Fig. 2: 100% at 1 m, gradual decay to 9 m.
  const double at_1m = measure_tag_reliability(make_read_range_scenario(1.0, kCal), 20, kSeed);
  const double at_5m = measure_tag_reliability(make_read_range_scenario(5.0, kCal), 20, kSeed);
  const double at_9m = measure_tag_reliability(make_read_range_scenario(9.0, kCal), 20, kSeed);
  EXPECT_GT(at_1m, 0.99);
  EXPECT_LT(at_5m, at_1m);
  EXPECT_LT(at_9m, at_5m);
  EXPECT_GT(at_5m, 0.3);  // Gradual, not a cliff.
}

TEST(PaperClaim, CloseTagsInterfereAndFortyMmIsSafe) {
  // Fig. 4: 0.3-4 mm spacing is unusable; 40 mm reads fully.
  const auto& orientation = kFigure3Orientations[1];  // Case 2: best case.
  const double tight = measure_tag_reliability(
      make_intertag_scenario(0.004, orientation, kCal), 10, kSeed);
  const double safe = measure_tag_reliability(
      make_intertag_scenario(0.040, orientation, kCal), 10, kSeed);
  EXPECT_LT(tight, 0.2);
  EXPECT_GT(safe, 0.95);
}

TEST(PaperClaim, PerpendicularOrientationsAreWorst) {
  // Fig. 4 at 20 mm: cases 1 and 5 (dipole axis toward the antenna) trail
  // every other orientation.
  double perpendicular_best = 0.0;  // Highest reliability among cases 1, 5.
  double parallel_worst = 1.0;      // Lowest among the rest.
  for (const auto& orientation : kFigure3Orientations) {
    const double rel = measure_tag_reliability(
        make_intertag_scenario(0.020, orientation, kCal), 12, kSeed);
    if (orientation.case_number == 1 || orientation.case_number == 5) {
      perpendicular_best = std::max(perpendicular_best, rel);
    } else {
      parallel_worst = std::min(parallel_worst, rel);
    }
  }
  EXPECT_LT(perpendicular_best, parallel_worst);
}

TEST(PaperClaim, TagLocationOnObjectMattersAndTopIsWorst) {
  // Table 1: front best, top worst, with a big spread.
  ObjectScenarioOptions front;
  front.tag_faces = {scene::BoxFace::Front};
  ObjectScenarioOptions side_far;
  side_far.tag_faces = {scene::BoxFace::SideFar};
  ObjectScenarioOptions top;
  top.tag_faces = {scene::BoxFace::Top};
  const double r_front = object_reliability(front);
  const double r_side_far = object_reliability(side_far);
  const double r_top = object_reliability(top);
  EXPECT_GT(r_front, r_side_far);
  EXPECT_GT(r_side_far, r_top);
  EXPECT_GT(r_front - r_top, 0.3);  // "dramatic impact".
}

TEST(PaperClaim, BodyBlockingMakesFarSideNearlyUnreadable) {
  // Table 2: side (farther) at 10% vs side (closer) at 90%.
  HumanScenarioOptions near_side;
  near_side.tag_spots = {scene::BodySpot::SideNear};
  HumanScenarioOptions far_side;
  far_side.tag_spots = {scene::BodySpot::SideFar};
  const double r_near = human_reliability(near_side);
  const double r_far = human_reliability(far_side);
  EXPECT_GT(r_near, 0.8);
  EXPECT_LT(r_far, 0.35);
}

TEST(PaperClaim, ReflectionOffSecondSubjectHelpsCloserOne) {
  // §3: "read reliabilities for the closer subject in the two subject case
  // was higher than those for a single subject".
  HumanScenarioOptions solo;
  solo.tag_spots = {scene::BodySpot::SideFar};
  HumanScenarioOptions pair = solo;
  pair.subject_count = 2;
  const Scenario duo = make_human_tracking_scenario(pair, kCal);
  const auto per_obj = per_object_reliability(duo, run_repeated(duo, 60, kSeed));
  double closer = 0.0;
  for (const auto& [obj, ci] : per_obj) {
    if (obj.value == 1) closer = ci.estimate;
  }
  const double alone = human_reliability(solo, 60);
  EXPECT_GE(closer, alone - 0.02);
}

TEST(PaperClaim, TwoTagsBeatOneTag) {
  // Table 3: 1 tag avg 80% -> 2 tags avg 97%.
  ObjectScenarioOptions one;
  one.tag_faces = {scene::BoxFace::Front};
  ObjectScenarioOptions two;
  two.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  EXPECT_GT(object_reliability(two), object_reliability(one));
  EXPECT_GT(object_reliability(two), 0.93);
}

TEST(PaperClaim, TagRedundancyBeatsAntennaRedundancy) {
  // §4: "the performance of multiple tags per object is better than
  // multiple antennas per portal".
  ObjectScenarioOptions two_tags;
  two_tags.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  ObjectScenarioOptions two_antennas;
  two_antennas.tag_faces = {scene::BoxFace::Front};
  two_antennas.portal.antenna_count = 2;
  EXPECT_GE(object_reliability(two_tags, 24), object_reliability(two_antennas, 24));
}

TEST(PaperClaim, FullRedundancyReachesNearCertainty) {
  // Table 3 bottom row: 2 antennas + 2 tags -> 100%.
  ObjectScenarioOptions full;
  full.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  full.portal.antenna_count = 2;
  EXPECT_GT(object_reliability(full, 24), 0.97);
}

TEST(PaperClaim, FourTagsPerPersonVirtuallyGuaranteeTracking) {
  // Tables 4-5: four tags reach ~100% even for one antenna.
  HumanScenarioOptions four;
  four.tag_spots = {scene::BodySpot::Front, scene::BodySpot::Back,
                    scene::BodySpot::SideNear, scene::BodySpot::SideFar};
  EXPECT_GT(human_reliability(four), 0.95);
}

TEST(PaperClaim, ReaderRedundancyWithoutDrmHurts) {
  // §4: two readers per portal severely reduce reliability without
  // dense-reader mode...
  ObjectScenarioOptions one_reader;
  one_reader.tag_faces = {scene::BoxFace::Front};
  one_reader.portal.antenna_count = 2;
  ObjectScenarioOptions two_readers = one_reader;
  two_readers.portal.reader_count = 2;
  const double single = object_reliability(one_reader, 20);
  const double dual = object_reliability(two_readers, 20);
  EXPECT_LT(dual, single - 0.15);

  // ...and DRM restores the loss.
  ObjectScenarioOptions drm = two_readers;
  drm.portal.dense_reader_mode = true;
  EXPECT_GT(object_reliability(drm, 20), dual);
}

TEST(PaperClaim, AnalyticalModelPredictsRedundancyGain) {
  // §4: R_C = 1 - prod(1 - P_i) tracks the measured two-tag reliability.
  ObjectScenarioOptions front;
  front.tag_faces = {scene::BoxFace::Front};
  ObjectScenarioOptions side;
  side.tag_faces = {scene::BoxFace::SideNear};
  const double p_front = object_reliability(front, 24);
  const double p_side = object_reliability(side, 24);

  ObjectScenarioOptions both;
  both.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  const double measured = object_reliability(both, 24);
  const double predicted = expected_reliability({p_front, p_side});
  EXPECT_NEAR(measured, predicted, 0.08);
}

}  // namespace
}  // namespace rfidsim::reliability
