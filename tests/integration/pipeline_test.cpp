// End-to-end pipeline tests: event logs flowing from the portal simulator
// through tracking and cleaning, and cross-module consistency checks.
#include <gtest/gtest.h>

#include <unordered_set>

#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "track/cleaning.hpp"
#include "track/tracking.hpp"

namespace rfidsim::reliability {
namespace {

const CalibrationProfile kCal = CalibrationProfile::paper2006();

TEST(PipelineTest, EventsResolveToRegisteredObjects) {
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  const RepeatedRuns runs = run_repeated(sc, 4, 42);
  for (const auto& log : runs.logs) {
    for (const auto& ev : log) {
      EXPECT_TRUE(sc.registry.object_of(ev.tag).has_value())
          << "event for unbound tag " << ev.tag.value;
    }
  }
}

TEST(PipelineTest, TrackingAnalyzerAgreesWithEstimator) {
  ObjectScenarioOptions opt;
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  const RepeatedRuns runs = run_repeated(sc, 6, 43);
  const track::TrackingAnalyzer analyzer(sc.registry);
  double manual_sum = 0.0;
  for (const auto& log : runs.logs) {
    manual_sum += analyzer.tracking_fraction(log);
  }
  EXPECT_NEAR(manual_sum / 6.0, mean_object_reliability(sc, runs), 1e-12);
}

TEST(PipelineTest, WindowSmootherBridgesIntraPassGaps) {
  ObjectScenarioOptions opt;
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  const RepeatedRuns runs = run_repeated(sc, 1, 44);
  const auto& log = runs.logs[0];
  if (log.empty()) GTEST_SKIP() << "no events this seed";
  // With a window the length of the pass, every tag has one presence
  // interval; with a tiny window, at least as many.
  const track::WindowSmoother wide(10.0);
  const track::WindowSmoother narrow(0.01);
  std::unordered_set<scene::TagId> distinct;
  for (const auto& ev : log) distinct.insert(ev.tag);
  EXPECT_EQ(wide.smooth(log).size(), distinct.size());
  EXPECT_GE(narrow.smooth(log).size(), wide.smooth(log).size());
}

TEST(PipelineTest, AccompanyConstraintRecoversMissedBoxes) {
  // Run the single-tag object scenario (imperfect), group all 12 boxes as
  // one pallet, and verify the accompany constraint lifts detection.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::SideFar};  // Deliberately weak spot.
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  const RepeatedRuns runs = run_repeated(sc, 10, 45);
  const track::TrackingAnalyzer analyzer(sc.registry);

  std::vector<std::vector<track::ObjectId>> groups{
      {sc.registry.objects().begin(), sc.registry.objects().end()}};

  double raw = 0.0;
  double cleaned = 0.0;
  for (const auto& log : runs.logs) {
    const auto report = analyzer.analyze(log);
    raw += static_cast<double>(report.objects_identified.size()) / 12.0;
    const auto fixed =
        track::apply_accompany_constraint(report.objects_identified, groups, 0.25);
    cleaned += static_cast<double>(fixed.corrected.size()) / 12.0;
  }
  EXPECT_GT(cleaned, raw);
}

TEST(PipelineTest, RouteConstraintAcrossSequentialPortals) {
  // Simulate the same cart passing two portals; an object missed at portal
  // 0 but seen at portal 1 is recovered by the route constraint.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Top};  // Weak: plenty of misses.
  const Scenario sc = make_object_tracking_scenario(opt, kCal);
  const track::TrackingAnalyzer analyzer(sc.registry);
  const RepeatedRuns runs = run_repeated(sc, 2, 46);

  track::RouteObservations obs;
  obs.checkpoint_count = 2;
  obs.detected.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    const auto report = analyzer.analyze(runs.logs[k]);
    obs.detected[k] = report.objects_identified;
  }
  const auto result = track::apply_route_constraint(obs);
  // Everything ever seen at checkpoint 1 is present at checkpoint 0.
  for (const auto& obj : obs.detected[1]) {
    EXPECT_TRUE(result.corrected.detected[0].contains(obj));
  }
}

TEST(PipelineTest, StatsAccountForAllEvents) {
  const Scenario sc = make_read_range_scenario(1.0, kCal);
  sys::PortalSimulator sim(sc.scene, sc.portal);
  Rng rng(47);
  const sys::EventLog log = sim.run(rng);
  EXPECT_EQ(sim.stats().success_slots, log.size());
}

}  // namespace
}  // namespace rfidsim::reliability
