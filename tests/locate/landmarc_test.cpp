#include "locate/landmarc.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::locate {
namespace {

using scene::TagId;

RssiSignature sig(std::vector<double> values) {
  return RssiSignature{std::move(values)};
}

sys::ReadEvent event(std::uint64_t tag, std::size_t antenna, double rssi) {
  sys::ReadEvent ev;
  ev.tag = TagId{tag};
  ev.antenna_index = antenna;
  ev.rssi = DbmPower(rssi);
  return ev;
}

TEST(SignatureTest, MeansPerAntenna) {
  const sys::EventLog log{event(1, 0, -50.0), event(1, 0, -54.0), event(1, 1, -60.0)};
  const auto sigs = build_signatures(log, 2);
  ASSERT_TRUE(sigs.contains(TagId{1}));
  EXPECT_DOUBLE_EQ(sigs.at(TagId{1}).per_antenna_dbm[0], -52.0);
  EXPECT_DOUBLE_EQ(sigs.at(TagId{1}).per_antenna_dbm[1], -60.0);
}

TEST(SignatureTest, UnheardAntennaGetsFloor) {
  const sys::EventLog log{event(1, 0, -50.0)};
  const auto sigs = build_signatures(log, 3, -95.0);
  EXPECT_DOUBLE_EQ(sigs.at(TagId{1}).per_antenna_dbm[1], -95.0);
  EXPECT_DOUBLE_EQ(sigs.at(TagId{1}).per_antenna_dbm[2], -95.0);
}

TEST(SignatureTest, OutOfRangeAntennaThrows) {
  const sys::EventLog log{event(1, 5, -50.0)};
  EXPECT_THROW(build_signatures(log, 2), ConfigError);
  EXPECT_THROW(build_signatures({}, 0), ConfigError);
}

TEST(SignalDistanceTest, EuclideanAndValidated) {
  EXPECT_DOUBLE_EQ(signal_distance(sig({0.0, 0.0}), sig({3.0, 4.0})), 5.0);
  EXPECT_DOUBLE_EQ(signal_distance(sig({-50.0}), sig({-50.0})), 0.0);
  EXPECT_THROW(signal_distance(sig({1.0}), sig({1.0, 2.0})), ConfigError);
}

TEST(LocatorTest, InvalidConstructionThrows) {
  EXPECT_THROW(LandmarcLocator({}, 4), ConfigError);
  EXPECT_THROW(LandmarcLocator({{TagId{1}, {0, 0, 0}}}, 0), ConfigError);
}

TEST(LocatorTest, ExactMatchSnapsToReference) {
  const LandmarcLocator locator({{TagId{1}, {1.0, 2.0, 0.0}}, {TagId{2}, {5.0, 5.0, 0.0}}},
                                2);
  std::unordered_map<TagId, RssiSignature> refs{
      {TagId{1}, sig({-50.0, -60.0})},
      {TagId{2}, sig({-70.0, -40.0})},
  };
  const LocationEstimate est = locator.locate(sig({-50.0, -60.0}), refs);
  EXPECT_EQ(est.position, (Vec3{1.0, 2.0, 0.0}));
  ASSERT_EQ(est.neighbours.size(), 1u);
  EXPECT_EQ(est.neighbours[0], TagId{1});
}

TEST(LocatorTest, SymmetricNeighboursAverage) {
  const LandmarcLocator locator(
      {{TagId{1}, {0.0, 0.0, 0.0}}, {TagId{2}, {2.0, 0.0, 0.0}}}, 2);
  std::unordered_map<TagId, RssiSignature> refs{
      {TagId{1}, sig({-50.0})},
      {TagId{2}, sig({-60.0})},
  };
  // Equidistant target in signal space: midpoint in position space.
  const LocationEstimate est = locator.locate(sig({-55.0}), refs);
  EXPECT_NEAR(est.position.x, 1.0, 1e-9);
}

TEST(LocatorTest, CloserReferenceWeighsMore) {
  const LandmarcLocator locator(
      {{TagId{1}, {0.0, 0.0, 0.0}}, {TagId{2}, {2.0, 0.0, 0.0}}}, 2);
  std::unordered_map<TagId, RssiSignature> refs{
      {TagId{1}, sig({-50.0})},
      {TagId{2}, sig({-60.0})},
  };
  const LocationEstimate est = locator.locate(sig({-52.0}), refs);
  EXPECT_LT(est.position.x, 1.0);  // Pulled toward reference 1.
  EXPECT_GT(est.position.x, 0.0);
}

TEST(LocatorTest, KLimitsNeighbourCount) {
  const LandmarcLocator locator({{TagId{1}, {0.0, 0.0, 0.0}},
                                 {TagId{2}, {1.0, 0.0, 0.0}},
                                 {TagId{3}, {9.0, 0.0, 0.0}}},
                                2);
  std::unordered_map<TagId, RssiSignature> refs{
      {TagId{1}, sig({-50.0})},
      {TagId{2}, sig({-51.0})},
      {TagId{3}, sig({-80.0})},
  };
  const LocationEstimate est = locator.locate(sig({-50.4}), refs);
  EXPECT_EQ(est.neighbours.size(), 2u);
  // The distant reference 3 is not among the neighbours.
  for (const TagId& id : est.neighbours) EXPECT_NE(id, TagId{3});
  EXPECT_LT(est.position.x, 1.0);
}

TEST(LocatorTest, MissingReferencesAreSkipped) {
  const LandmarcLocator locator(
      {{TagId{1}, {0.0, 0.0, 0.0}}, {TagId{2}, {4.0, 0.0, 0.0}}}, 2);
  std::unordered_map<TagId, RssiSignature> refs{{TagId{2}, sig({-60.0})}};
  const LocationEstimate est = locator.locate(sig({-55.0}), refs);
  EXPECT_EQ(est.position, (Vec3{4.0, 0.0, 0.0}));
}

TEST(LocatorTest, NoObservedReferencesThrows) {
  const LandmarcLocator locator({{TagId{1}, {0.0, 0.0, 0.0}}}, 1);
  EXPECT_THROW(locator.locate(sig({-55.0}), {}), ConfigError);
}

TEST(LocatorTest, NeighbourDistancesAreSorted) {
  const LandmarcLocator locator({{TagId{1}, {0.0, 0.0, 0.0}},
                                 {TagId{2}, {1.0, 0.0, 0.0}},
                                 {TagId{3}, {2.0, 0.0, 0.0}}},
                                3);
  std::unordered_map<TagId, RssiSignature> refs{
      {TagId{1}, sig({-50.0})},
      {TagId{2}, sig({-58.0})},
      {TagId{3}, sig({-66.0})},
  };
  const LocationEstimate est = locator.locate(sig({-53.0}), refs);
  ASSERT_EQ(est.distances.size(), 3u);
  EXPECT_LE(est.distances[0], est.distances[1]);
  EXPECT_LE(est.distances[1], est.distances[2]);
}

}  // namespace
}  // namespace rfidsim::locate
