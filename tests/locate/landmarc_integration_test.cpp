// Integration: LANDMARC localization against the full simulator — a small
// room with active reference and target tags, located from real simulated
// event logs.
#include <gtest/gtest.h>

#include <memory>

#include "locate/landmarc.hpp"
#include "reliability/calibration.hpp"
#include "reliability/scenarios.hpp"
#include "system/portal.hpp"

namespace rfidsim::locate {
namespace {

void place_active_tag(scene::Scene& s, scene::TagId id, const Vec3& position) {
  Pose pose;
  pose.position = position;
  pose.frame.forward = {1.0, 0.0, 0.0};
  pose.frame.up = {0.0, 0.0, 1.0};
  scene::Entity holder("tag " + std::to_string(id.value), std::monostate{},
                       rf::Material::Air,
                       std::make_unique<scene::StaticTrajectory>(pose));
  scene::TagMount m;
  m.local_dipole_axis = {0.0, 0.0, 1.0};
  m.local_patch_normal = {1.0, 0.0, 0.0};
  m.backing_material = rf::Material::Air;
  m.design = rf::TagDesign::active_beacon();
  holder.add_tag(scene::Tag{id, m});
  s.entities.push_back(std::move(holder));
}

TEST(LandmarcIntegrationTest, LocatesTargetsInSimulatedRoom) {
  const double room = 4.0;
  scene::Scene s;
  s.antennas.push_back(scene::Scene::make_antenna({0.0, 0.0, 1.5}, {1.0, 1.0, 0.0}));
  s.antennas.push_back(scene::Scene::make_antenna({room, 0.0, 1.5}, {-1.0, 1.0, 0.0}));
  s.antennas.push_back(scene::Scene::make_antenna({room, room, 1.5}, {-1.0, -1.0, 0.0}));
  s.antennas.push_back(scene::Scene::make_antenna({0.0, room, 1.5}, {1.0, -1.0, 0.0}));

  std::vector<ReferenceTag> references;
  std::uint64_t id = 1;
  for (double x = 0.5; x < room; x += 1.0) {
    for (double y = 0.5; y < room; y += 1.0) {
      const scene::TagId tag{id++};
      place_active_tag(s, tag, {x, y, 1.0});
      references.push_back({tag, {x, y, 1.0}});
    }
  }
  const scene::TagId target{999};
  const Vec3 truth{1.7, 2.3, 1.0};
  place_active_tag(s, target, truth);

  auto cal = reliability::CalibrationProfile::paper2006();
  cal.inventory.dual_target = true;
  sys::PortalConfig portal =
      reliability::make_portal_config(cal, {}, s.antennas.size(), 4.0);
  portal.readers[0].antenna_indices = {0, 1, 2, 3};
  portal.readers[0].antenna_dwell_s = 0.08;
  portal.pass_sigma_db = 1.0;
  portal.shadow_sigma_db = 2.0;

  sys::PortalSimulator sim(s, portal);
  Rng rng(2024);
  const sys::EventLog log = sim.run(rng);
  ASSERT_FALSE(log.empty());

  const auto signatures = build_signatures(log, s.antennas.size());
  ASSERT_TRUE(signatures.contains(target));

  const LandmarcLocator locator(references, 4);
  const LocationEstimate estimate = locator.locate(signatures.at(target), signatures);
  // Room-level accuracy, comfortably: the estimate stays within the room
  // and within ~2 m of truth (LANDMARC-grade, given our per-path noise).
  EXPECT_GE(estimate.position.x, 0.0);
  EXPECT_LE(estimate.position.x, room);
  EXPECT_GE(estimate.position.y, 0.0);
  EXPECT_LE(estimate.position.y, room);
  EXPECT_LT(estimate.position.distance_to(truth), 2.0);
}

}  // namespace
}  // namespace rfidsim::locate
