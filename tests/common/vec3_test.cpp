#include "common/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace rfidsim {
namespace {

TEST(Vec3Test, DefaultConstructsToZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3Test, ArithmeticOperators) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Vec3{3.0, 3.0, 3.0}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= Vec3{1.0, 1.0, 1.0};
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3.0, 6.0, 9.0}));
}

TEST(Vec3Test, DotProduct) {
  EXPECT_DOUBLE_EQ((Vec3{1.0, 2.0, 3.0}.dot({4.0, -5.0, 6.0})), 12.0);
  EXPECT_DOUBLE_EQ((Vec3{1.0, 0.0, 0.0}.dot({0.0, 1.0, 0.0})), 0.0);
}

TEST(Vec3Test, CrossProductIsRightHanded) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  const Vec3 z{0.0, 0.0, 1.0};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3Test, NormAndNorm2) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vec3Test, NormalizedHasUnitLength) {
  const Vec3 v = Vec3{1.0, 2.0, -2.0}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
}

TEST(Vec3Test, NormalizedZeroVectorStaysZero) {
  const Vec3 v = Vec3{}.normalized();
  EXPECT_EQ(v, Vec3{});
}

TEST(Vec3Test, DistanceTo) {
  EXPECT_DOUBLE_EQ((Vec3{1.0, 1.0, 1.0}.distance_to({1.0, 1.0, 4.0})), 3.0);
}

TEST(AngleBetweenTest, OrthogonalVectorsAreHalfPi) {
  EXPECT_NEAR(angle_between({1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}), std::numbers::pi / 2.0,
              1e-12);
}

TEST(AngleBetweenTest, ParallelAndAntiparallel) {
  EXPECT_NEAR(angle_between({2.0, 0.0, 0.0}, {5.0, 0.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(angle_between({1.0, 0.0, 0.0}, {-1.0, 0.0, 0.0}), std::numbers::pi, 1e-12);
}

TEST(AngleBetweenTest, IndependentOfMagnitude) {
  const double a = angle_between({1.0, 1.0, 0.0}, {0.0, 1.0, 1.0});
  const double b = angle_between({10.0, 10.0, 0.0}, {0.0, 0.1, 0.1});
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(AngleBetweenTest, ZeroVectorReturnsZero) {
  EXPECT_EQ(angle_between({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}), 0.0);
}

TEST(AngleBetweenTest, NearlyParallelDoesNotProduceNan) {
  // Rounding can push the cosine slightly above 1; acos must stay clamped.
  const Vec3 a{1.0, 1e-9, 0.0};
  const Vec3 b{1.0, 0.0, 0.0};
  const double angle = angle_between(a, b);
  EXPECT_FALSE(std::isnan(angle));
  EXPECT_GE(angle, 0.0);
}

}  // namespace
}  // namespace rfidsim
