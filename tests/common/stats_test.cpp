#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

namespace rfidsim {
namespace {

TEST(SummarizeTest, EmptySampleIsAllZero) {
  const SampleSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const SampleSummary s = summarize({4.2});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.2);
  EXPECT_EQ(s.median, 4.2);
  EXPECT_EQ(s.min, 4.2);
  EXPECT_EQ(s.max, 4.2);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, KnownQuartiles) {
  // numpy.percentile([1,2,3,4,5], [25,50,75]) = [2, 3, 4].
  const SampleSummary s = summarize({5.0, 1.0, 4.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.lower_quartile, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.upper_quartile, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(SummarizeTest, InterpolatedQuartiles) {
  // numpy.percentile([1,2,3,4], [25,50,75]) = [1.75, 2.5, 3.25].
  const SampleSummary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.lower_quartile, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.upper_quartile, 3.25);
}

TEST(SummarizeTest, AllEqualSampleCollapsesToThatValue) {
  const SampleSummary s = summarize({7.5, 7.5, 7.5, 7.5, 7.5, 7.5});
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.mean, 7.5);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 7.5);
  EXPECT_EQ(s.lower_quartile, 7.5);
  EXPECT_EQ(s.median, 7.5);
  EXPECT_EQ(s.upper_quartile, 7.5);
  EXPECT_EQ(s.max, 7.5);
}

TEST(SummarizeTest, TwoValuesInterpolateEveryQuantile) {
  // numpy.percentile([1, 3], [25, 50, 75]) = [1.5, 2, 2.5].
  const SampleSummary s = summarize({3.0, 1.0});
  EXPECT_DOUBLE_EQ(s.lower_quartile, 1.5);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.upper_quartile, 2.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(SummarizeTest, StddevMatchesDefinition) {
  const SampleSummary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  // Sample stddev (n-1) of this classic set is ~2.138.
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
}

TEST(WilsonTest, ZeroTrialsGivesZeroInterval) {
  const ProportionInterval ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.estimate, 0.0);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.upper, 0.0);
}

TEST(WilsonTest, KnownValue) {
  // Wilson 95% for 8/10: estimate 0.8, interval ~ (0.49, 0.943).
  const ProportionInterval ci = wilson_interval(8, 10);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.8);
  EXPECT_NEAR(ci.lower, 0.49, 0.01);
  EXPECT_NEAR(ci.upper, 0.943, 0.005);
}

TEST(WilsonTest, PerfectScoreHasUpperBoundOne) {
  const ProportionInterval ci = wilson_interval(20, 20);
  EXPECT_DOUBLE_EQ(ci.estimate, 1.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
  EXPECT_GT(ci.lower, 0.8);  // Still informative at n=20.
  EXPECT_LT(ci.lower, 1.0);  // But never degenerate.
}

TEST(WilsonTest, ZeroSuccessesHasLowerBoundZero) {
  const ProportionInterval ci = wilson_interval(0, 20);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
}

/// Property sweep: the Wilson interval always brackets the estimate and
/// stays within [0, 1], for every (successes, trials) combination.
class WilsonPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(WilsonPropertyTest, IntervalBracketsEstimateWithinUnitRange) {
  const auto [successes, trials] = GetParam();
  if (successes > trials) GTEST_SKIP();
  const ProportionInterval ci = wilson_interval(successes, trials);
  EXPECT_GE(ci.estimate, ci.lower);
  EXPECT_LE(ci.estimate, ci.upper);
  EXPECT_GE(ci.lower, 0.0);
  EXPECT_LE(ci.upper, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SweepSmallN, WilsonPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 3, 7, 10, 12, 20, 40),
                       ::testing::Values<std::size_t>(1, 10, 12, 20, 40)));

TEST(WilsonTest, NarrowsWithMoreTrials) {
  const ProportionInterval small = wilson_interval(5, 10);
  const ProportionInterval large = wilson_interval(500, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(RunningStatsTest, EmptyIsZero) {
  const RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs{1.5, 2.5, 3.5, 10.0, -4.0};
  RunningStats rs;
  double sum = 0.0;
  for (double x : xs) {
    rs.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), ss / (static_cast<double>(xs.size()) - 1.0), 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(rs.variance()), 1e-12);
}

TEST(RunningStatsTest, SingleObservationHasZeroVariance) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_EQ(rs.mean(), 42.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, AllEqualObservationsHaveZeroVariance) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.add(0.1);  // 0.1 is not exactly representable.
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.1);
  // Welford keeps catastrophic cancellation out: exactly zero, not 1e-18.
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace rfidsim
