#include "common/units.hpp"

#include <gtest/gtest.h>

namespace rfidsim {
namespace {

using namespace rfidsim::literals;

TEST(DecibelTest, LinearConversionRoundTrips) {
  EXPECT_NEAR(Decibel(10.0).linear(), 10.0, 1e-12);
  EXPECT_NEAR(Decibel(3.0).linear(), 1.9953, 1e-3);
  EXPECT_NEAR(Decibel::from_linear(100.0).value(), 20.0, 1e-12);
  EXPECT_NEAR(Decibel::from_linear(Decibel(7.3).linear()).value(), 7.3, 1e-12);
}

TEST(DecibelTest, Arithmetic) {
  EXPECT_EQ((Decibel(3.0) + Decibel(4.0)).value(), 7.0);
  EXPECT_EQ((Decibel(3.0) - Decibel(4.0)).value(), -1.0);
  EXPECT_EQ((-Decibel(5.0)).value(), -5.0);
  EXPECT_EQ((Decibel(4.0) * 0.5).value(), 2.0);
  Decibel d(1.0);
  d += Decibel(2.0);
  d -= Decibel(0.5);
  EXPECT_EQ(d.value(), 2.5);
}

TEST(DecibelTest, Comparisons) {
  EXPECT_LT(Decibel(1.0), Decibel(2.0));
  EXPECT_EQ(Decibel(1.0), Decibel(1.0));
}

TEST(DbmPowerTest, MilliwattConversion) {
  EXPECT_NEAR(DbmPower(0.0).milliwatts(), 1.0, 1e-12);
  EXPECT_NEAR(DbmPower(30.0).milliwatts(), 1000.0, 1e-9);
  EXPECT_NEAR(DbmPower(30.0).watts(), 1.0, 1e-12);
  EXPECT_NEAR(DbmPower::from_milliwatts(2.0).value(), 3.0103, 1e-4);
}

TEST(DbmPowerTest, GainApplication) {
  const DbmPower p = DbmPower(10.0) + Decibel(5.0) - Decibel(3.0);
  EXPECT_EQ(p.value(), 12.0);
}

TEST(DbmPowerTest, PowerDifferenceIsGain) {
  const Decibel g = DbmPower(10.0) - DbmPower(4.0);
  EXPECT_EQ(g.value(), 6.0);
}

TEST(UnitsLiteralsTest, LiteralsWork) {
  EXPECT_EQ((3.5_dB).value(), 3.5);
  EXPECT_EQ((30_dBm).value(), 30.0);
  EXPECT_EQ((2_dB).value(), 2.0);
  EXPECT_EQ(DbmPower(-11.5).value(), -11.5);
}

TEST(UnitsTest, WavelengthAt915MHz) {
  EXPECT_NEAR(wavelength_m(915e6), 0.3276, 1e-3);
}

TEST(SumIncoherentTest, EqualPowersAddThreeDb) {
  const DbmPower sum = sum_incoherent(DbmPower(10.0), DbmPower(10.0));
  EXPECT_NEAR(sum.value(), 13.0103, 1e-3);
}

TEST(SumIncoherentTest, DominantPowerWins) {
  const DbmPower sum = sum_incoherent(DbmPower(0.0), DbmPower(-40.0));
  EXPECT_NEAR(sum.value(), 0.00043, 1e-3);
}

}  // namespace
}  // namespace rfidsim
