#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rfidsim {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(0, 3));
  }
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateIsRoughlyP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(RngTest, ExponentialIsPositiveWithExpectedMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkIsDeterministicGivenSeedAndLabel) {
  const Rng parent(99);
  Rng c1 = parent.fork(5);
  Rng c2 = parent.fork(5);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(c1.next_u64(), c2.next_u64());
  }
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng p1(99);
  Rng p2(99);
  p2.next_u64();  // Consume from one parent only.
  Rng c1 = p1.fork(3);
  Rng c2 = p2.fork(3);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, DifferentLabelsGiveDifferentChildren) {
  const Rng parent(99);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, SeedAccessorReturnsConstructorSeed) {
  EXPECT_EQ(Rng(1234).seed(), 1234u);
}

}  // namespace
}  // namespace rfidsim
