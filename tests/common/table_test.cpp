#include "common/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfidsim {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name  | value"), std::string::npos);
  EXPECT_NE(out.find("alpha | 1"), std::string::npos);
  EXPECT_NE(out.find("b     | 22"), std::string::npos);
  EXPECT_NE(out.find("------+------"), std::string::npos);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TextTableTest, OverlongRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTableTest, WideCellStretchesColumn) {
  TextTable t({"h"});
  t.add_row({"very long cell"});
  const std::string out = t.render();
  EXPECT_NE(out.find("very long cell"), std::string::npos);
  EXPECT_NE(out.find("h             "), std::string::npos);
}

TEST(PercentTest, FormatsWithoutDecimalsByDefault) {
  EXPECT_EQ(percent(0.873), "87%");
  EXPECT_EQ(percent(1.0), "100%");
  EXPECT_EQ(percent(0.0), "0%");
}

TEST(PercentTest, RoundsCorrectly) {
  EXPECT_EQ(percent(0.875), "88%");
  EXPECT_EQ(percent(0.004), "0%");
  EXPECT_EQ(percent(0.0051), "1%");
}

TEST(PercentTest, SupportsDecimals) {
  EXPECT_EQ(percent(0.8734, 1), "87.3%");
  EXPECT_EQ(percent(0.99951, 1), "100.0%");
}

TEST(FixedStrTest, FixedDecimals) {
  EXPECT_EQ(fixed_str(3.14159, 2), "3.14");
  EXPECT_EQ(fixed_str(2.0, 0), "2");
  EXPECT_EQ(fixed_str(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace rfidsim
