#include "common/pose.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace rfidsim {
namespace {

constexpr double kHalfPi = std::numbers::pi / 2.0;

TEST(FrameTest, DefaultFrameIsOrthonormal) {
  const Frame f;
  EXPECT_NEAR(f.forward.norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.up.norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.forward.dot(f.up), 0.0, 1e-12);
}

TEST(FrameTest, RightCompletesRightHandedTriad) {
  Frame f;
  f.forward = {1.0, 0.0, 0.0};
  f.up = {0.0, 0.0, 1.0};
  EXPECT_EQ(f.right(), (Vec3{0.0, -1.0, 0.0}));
}

TEST(FrameTest, OrthonormalizeFixesSkewedUp) {
  Frame f;
  f.forward = {2.0, 0.0, 0.0};
  f.up = {0.5, 0.0, 1.0};  // Not orthogonal to forward.
  f.orthonormalize();
  EXPECT_NEAR(f.forward.norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.up.norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.forward.dot(f.up), 0.0, 1e-12);
  EXPECT_NEAR(f.up.z, 1.0, 1e-12);  // The z component survives.
}

TEST(FrameTest, RotatedAboutZTurnsForward) {
  Frame f;
  f.forward = {1.0, 0.0, 0.0};
  f.up = {0.0, 0.0, 1.0};
  const Frame g = f.rotated({0.0, 0.0, 1.0}, kHalfPi);
  EXPECT_NEAR(g.forward.x, 0.0, 1e-12);
  EXPECT_NEAR(g.forward.y, 1.0, 1e-12);
  EXPECT_NEAR(g.up.z, 1.0, 1e-12);  // Up unchanged by z rotation.
}

TEST(FrameTest, RotationPreservesOrthonormality) {
  Frame f;
  const Frame g = f.rotated(Vec3{1.0, 2.0, 3.0}.normalized(), 1.234);
  EXPECT_NEAR(g.forward.norm(), 1.0, 1e-12);
  EXPECT_NEAR(g.up.norm(), 1.0, 1e-12);
  EXPECT_NEAR(g.forward.dot(g.up), 0.0, 1e-12);
}

TEST(FrameTest, FullTurnIsIdentity) {
  Frame f;
  f.forward = {0.0, 1.0, 0.0};
  f.up = {0.0, 0.0, 1.0};
  const Frame g = f.rotated({0.0, 0.0, 1.0}, 2.0 * std::numbers::pi);
  EXPECT_NEAR(g.forward.x, f.forward.x, 1e-9);
  EXPECT_NEAR(g.forward.y, f.forward.y, 1e-9);
}

TEST(PoseTest, DirectionToPoint) {
  Pose p;
  p.position = {1.0, 0.0, 0.0};
  const Vec3 d = p.direction_to({1.0, 2.0, 0.0});
  EXPECT_NEAR(d.y, 1.0, 1e-12);
  EXPECT_NEAR(d.norm(), 1.0, 1e-12);
}

TEST(PoseTest, DirectionToSelfIsZero) {
  Pose p;
  p.position = {1.0, 2.0, 3.0};
  EXPECT_EQ(p.direction_to(p.position), Vec3{});
}

}  // namespace
}  // namespace rfidsim
