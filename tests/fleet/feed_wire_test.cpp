// FacilityFeed over the wire-framed uplink: corruption is detected and
// recovered (or quarantined with a typed alert), staleness is observable,
// and a clean channel is bit-identical to the pre-wire path.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "fleet/feed.hpp"
#include "fleet/store.hpp"
#include "obs/monitor.hpp"

namespace rfidsim::fleet {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader = 0,
                     std::size_t antenna = 0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  return ev;
}

FeedConfig feed_config(std::size_t readers, std::size_t objects) {
  FeedConfig config;
  config.ingest.reader_count = readers;
  config.objects_total = objects;
  config.ingest.silence_gap_s = 3.0;
  return config;
}

sys::EventLog full_pass(const std::vector<std::uint64_t>& tags, std::size_t readers,
                        double begin_s, double width_s = 10.0) {
  sys::EventLog log;
  const std::size_t count = tags.size() * readers * 2;
  const double dt = (width_s - 0.2) / static_cast<double>(count);
  double t = begin_s + 0.1;
  for (std::size_t rep = 0; rep < 2; ++rep) {
    for (const std::uint64_t tag : tags) {
      for (std::size_t r = 0; r < readers; ++r) {
        log.push_back(event(t, tag, r));
        t += dt;
      }
    }
  }
  return log;
}

TEST(FeedWireTest, CleanChannelCountsFramesAndNothingElse) {
  FacilityFeed feed(feed_config(2, 3));
  TrackingStore store;
  Rng rng(1);
  const FeedPassResult result =
      feed.ingest_pass(store, full_pass({1, 2, 3}, 2, 0.0), 0.0, 10.0, rng);
  EXPECT_GT(result.frames_sent, 0u);
  EXPECT_EQ(result.corrupt_frames, 0u);
  EXPECT_EQ(result.recovered_batches, 0u);
  EXPECT_EQ(result.quarantined_batches, 0u);
  EXPECT_EQ(result.stale_batches, 0u);
  EXPECT_EQ(feed.wire_stats().undetected_corruptions, 0u);
  EXPECT_EQ(feed.monitor().first_alert(obs::AlertType::kWireCorruption), nullptr);
  EXPECT_EQ(feed.monitor().first_alert(obs::AlertType::kStaleBatch), nullptr);
}

TEST(FeedWireTest, CorruptionIsDetectedRecoveredAndAlerted) {
  FeedConfig config = feed_config(2, 4);
  config.uploader.batch_size = 16;
  config.uploader.max_nak_retransmits = 16;  // Deep budget: recovery certain.
  // ~0.65 expected flips per ~160-byte frame: about half the frames arrive
  // damaged, and 17 tries at ~50% clean make quarantine astronomically rare.
  config.wire_corruption.bit_error_rate = 5e-4;
  FacilityFeed dirty(config);
  FacilityFeed clean(feed_config(2, 4));
  TrackingStore dirty_store, clean_store;

  Rng rng_a(3), rng_b(3);
  std::size_t corrupt_total = 0, recovered_total = 0;
  for (std::size_t pass = 0; pass < 12; ++pass) {
    const double begin = 20.0 * static_cast<double>(pass);
    const sys::EventLog log = full_pass({1, 2, 3, 4}, 2, begin);
    const FeedPassResult r =
        dirty.ingest_pass(dirty_store, log, begin, begin + 10.0, rng_a);
    clean.ingest_pass(clean_store, log, begin, begin + 10.0, rng_b);
    corrupt_total += r.corrupt_frames;
    recovered_total += r.recovered_batches;
  }
  // The channel really did damage frames, the receiver caught every one,
  // and retransmission recovered every batch...
  EXPECT_GT(corrupt_total, 0u);
  EXPECT_GT(recovered_total, 0u);
  EXPECT_EQ(dirty.wire_stats().batches_quarantined, 0u);
  EXPECT_EQ(dirty.wire_stats().undetected_corruptions, 0u);
  // ...so the stored truth is *bit-identical* to the clean channel's: the
  // end-to-end integrity contract in one assertion.
  EXPECT_EQ(dirty_store.digest(), clean_store.digest());
  // And the monitor raised the typed transport alert.
  const obs::Alert* alert =
      dirty.monitor().first_alert(obs::AlertType::kWireCorruption);
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->reader, -1);
  EXPECT_EQ(alert->detector, "wire");
}

TEST(FeedWireTest, ExhaustedNakBudgetQuarantinesWithTypedAlert) {
  FeedConfig config = feed_config(1, 2);
  config.uploader.batch_size = 8;
  config.uploader.max_nak_retransmits = 0;       // One shot per batch.
  config.wire_corruption.bit_error_rate = 5e-2;  // Almost every frame dies.
  FacilityFeed feed(config);
  TrackingStore store;
  Rng rng(5);
  const FeedPassResult result =
      feed.ingest_pass(store, full_pass({1, 2}, 1, 0.0), 0.0, 10.0, rng);
  EXPECT_GT(result.quarantined_batches, 0u);
  EXPECT_EQ(feed.wire_stats().undetected_corruptions, 0u);
  // Quarantined events never reach the store.
  EXPECT_EQ(store.stats().events,
            feed.upload_stats().events_delivered);
  ASSERT_NE(feed.monitor().first_alert(obs::AlertType::kWireCorruption), nullptr);
}

TEST(FeedWireTest, StaleBatchesAreAlertedButStillStored) {
  FeedConfig config = feed_config(1, 2);
  config.uploader.batch_size = 4;
  config.uploader.loss_probability = 0.9;  // Heavy retrying -> late arrivals.
  config.uploader.max_retries = 20;
  config.uploader.initial_backoff_s = 5.0;
  config.stale_horizon_s = 1.0;
  FacilityFeed feed(config);
  TrackingStore store;
  Rng rng(7);
  const sys::EventLog log = full_pass({1, 2}, 1, 0.0);
  const FeedPassResult result = feed.ingest_pass(store, log, 0.0, 10.0, rng);
  ASSERT_GT(result.stale_batches, 0u);
  // Stale is observability, not loss: every delivered event is stored.
  EXPECT_EQ(store.stats().events, feed.upload_stats().events_delivered);
  const obs::Alert* alert = feed.monitor().first_alert(obs::AlertType::kStaleBatch);
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->detector, "stale");
}

TEST(FeedWireTest, StaleHorizonDefaultsToNeverFiring) {
  FeedConfig config = feed_config(1, 2);
  config.uploader.batch_size = 4;
  config.uploader.loss_probability = 0.9;
  config.uploader.max_retries = 20;
  config.uploader.initial_backoff_s = 5.0;  // Same latency as above...
  FacilityFeed feed(config);
  TrackingStore store;
  Rng rng(7);
  const FeedPassResult result =
      feed.ingest_pass(store, full_pass({1, 2}, 1, 0.0), 0.0, 10.0, rng);
  // ...but the infinite default horizon never calls it stale.
  EXPECT_EQ(result.stale_batches, 0u);
  EXPECT_EQ(feed.monitor().first_alert(obs::AlertType::kStaleBatch), nullptr);
}

TEST(FeedWireTest, DirtyChannelDeterministicGivenSeed) {
  FeedConfig config = feed_config(2, 3);
  config.wire_corruption.bit_error_rate = 1e-3;
  config.uploader.jitter_fraction = 0.3;  // Jitter is seeded too.
  FacilityFeed f1(config), f2(config);
  TrackingStore s1, s2;
  Rng a(11), b(11);
  for (std::size_t pass = 0; pass < 4; ++pass) {
    const double begin = 20.0 * static_cast<double>(pass);
    const sys::EventLog log = full_pass({1, 2, 3}, 2, begin);
    f1.ingest_pass(s1, log, begin, begin + 10.0, a);
    f2.ingest_pass(s2, log, begin, begin + 10.0, b);
  }
  EXPECT_EQ(s1.digest(), s2.digest());
  EXPECT_EQ(f1.wire_stats().corrupt_frames, f2.wire_stats().corrupt_frames);
  EXPECT_EQ(f1.wire_stats().nak_retransmits, f2.wire_stats().nak_retransmits);
  EXPECT_EQ(f1.corruption_stats().bits_flipped, f2.corruption_stats().bits_flipped);
}

}  // namespace
}  // namespace rfidsim::fleet
