#include "fleet/query.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "reliability/analytical.hpp"

namespace rfidsim::fleet {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader = 0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  return ev;
}

FacilityBatch batch(FacilityId facility, double sent,
                    std::vector<sys::ReadEvent> events) {
  FacilityBatch b;
  b.facility = facility;
  b.sent_time_s = sent;
  b.arrival_time_s = sent;
  b.events = std::move(events);
  return b;
}

TEST(FacilityModelTest, IdentificationRcMatchesAnalyticalModel) {
  FacilityModel model;
  model.reader_read_rates = {0.3, 0.5, 0.2};
  model.reader_live = {true, true, true};
  EXPECT_DOUBLE_EQ(model.identification_rc(),
                   reliability::expected_reliability({0.3, 0.5, 0.2}));
  // Masking a dead reader removes its opportunity, exactly as the
  // degraded-mode grid does.
  model.reader_live = {true, false, true};
  EXPECT_DOUBLE_EQ(model.identification_rc(),
                   reliability::expected_reliability({0.3, 0.2}));
  // No live readers: no opportunities, no identification.
  model.reader_live = {false, false, false};
  EXPECT_DOUBLE_EQ(model.identification_rc(), 0.0);
}

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() {
    object_a_ = registry_.add_object("pallet-a");
    object_b_ = registry_.add_object("pallet-b");
    object_c_ = registry_.add_object("pallet-c");
    object_d_ = registry_.add_object("pallet-d");
    registry_.bind_tag(scene::TagId{1}, object_a_);
    registry_.bind_tag(scene::TagId{2}, object_b_);
    registry_.bind_tag(scene::TagId{3}, object_c_);
    registry_.bind_tag(scene::TagId{4}, object_d_);
    // Object A carries a second tag (the paper's many-tags-per-object).
    registry_.bind_tag(scene::TagId{11}, object_a_);
  }

  track::ObjectRegistry registry_;
  track::ObjectId object_a_, object_b_, object_c_, object_d_;
  TrackingStore store_;
};

TEST_F(QueryServiceTest, LocatePicksNewestSightingAcrossAnObjectsTags) {
  store_.ingest(batch(0, 10.0, {event(1.0, 1)}));
  store_.ingest(batch(1, 10.0, {event(5.0, 11)}));  // Second tag, later, elsewhere.
  QueryService query(store_, registry_);
  FacilityModel model;
  model.reader_read_rates = {0.8};
  query.set_facility_model(1, model);

  const LocateResult at_mid = query.locate(object_a_, 3.0);
  ASSERT_TRUE(at_mid.found);
  EXPECT_EQ(at_mid.facility, 0u);

  const LocateResult at_end = query.locate(object_a_, 10.0);
  ASSERT_TRUE(at_end.found);
  EXPECT_EQ(at_end.facility, 1u);
  EXPECT_DOUBLE_EQ(at_end.time_s, 5.0);
  EXPECT_DOUBLE_EQ(at_end.confidence, 0.8);

  EXPECT_FALSE(query.locate(object_c_, 10.0).found);
}

TEST_F(QueryServiceTest, InventoryListsObjectsWhoseLastLocationIsTheFacility) {
  store_.ingest(batch(0, 10.0, {event(1.0, 1), event(2.0, 2)}));
  store_.ingest(batch(1, 10.0, {event(5.0, 2), event(6.0, 4)}));
  QueryService query(store_, registry_);
  // B moved from 0 to 1; A stayed; D only ever seen at 1; C never seen.
  const auto at_zero = query.inventory(0, 10.0);
  ASSERT_EQ(at_zero.size(), 1u);
  EXPECT_EQ(at_zero[0], object_a_);
  const auto at_one = query.inventory(1, 10.0);
  ASSERT_EQ(at_one.size(), 2u);
  EXPECT_EQ(at_one[0], object_b_);
  EXPECT_EQ(at_one[1], object_d_);
  // Before B's move, it still inventories at facility 0.
  EXPECT_EQ(query.inventory(0, 3.0).size(), 2u);
}

TEST_F(QueryServiceTest, MissingGoldenFaultScenario) {
  // The acceptance scenario: facility 1 runs a two-reader portal with
  // reader 1 faulted (dead). Manifest expects A, B, C for the pass window
  // [100, 110]:
  //   A  sighted at facility 1 in the window           -> present
  //   B  sighted upstream (facility 0) at t=95, then
  //      missed by the degraded portal                 -> probably missed read
  //   C  never sighted anywhere in the fleet           -> probably absent
  //   D  sighted in the window but not on the manifest -> unexpected
  store_.ingest(batch(0, 96.0, {event(95.0, 2)}));
  store_.ingest(batch(1, 110.0, {event(105.0, 1), event(106.0, 4)}));

  QueryService query(store_, registry_);
  FacilityModel degraded;
  degraded.reader_read_rates = {0.5, 0.9};
  degraded.reader_live = {true, false};  // Reader 1 declared down.
  query.set_facility_model(1, degraded);

  track::Manifest manifest;
  manifest.expected = {object_a_, object_b_, object_c_};
  const MissingReport report = query.missing(manifest, 1, 100.0, 110.0);

  ASSERT_EQ(report.present.size(), 1u);
  EXPECT_EQ(report.present[0], object_a_);
  ASSERT_EQ(report.missed_reads.size(), 1u);
  EXPECT_EQ(report.missed_reads[0], object_b_);
  ASSERT_EQ(report.absent.size(), 1u);
  EXPECT_EQ(report.absent[0], object_c_);
  ASSERT_EQ(report.unexpected.size(), 1u);
  EXPECT_EQ(report.unexpected[0], object_d_);

  // The per-item evidence matches the §4 model: the miss probability is
  // 1 - R_C over the *live* readers only.
  const double rc_live = reliability::expected_reliability({0.5});
  for (const Reconciliation& item : report.items) {
    EXPECT_DOUBLE_EQ(item.miss_probability, 1.0 - rc_live);
    if (item.object == object_b_) {
      EXPECT_TRUE(item.custody_evidence);
      EXPECT_GT(item.posterior_present, query.config().decision_threshold);
    }
    if (item.object == object_c_) {
      EXPECT_FALSE(item.custody_evidence);
      EXPECT_LT(item.posterior_present, query.config().decision_threshold);
    }
  }
}

TEST_F(QueryServiceTest, HealthyPortalTurnsMissedReadIntoAbsent) {
  // Same custody evidence for B, but the portal is healthy: a miss at
  // R_C = 0.99 is strong evidence of absence, custody or not.
  store_.ingest(batch(0, 96.0, {event(95.0, 2)}));
  QueryService query(store_, registry_);
  FacilityModel healthy;
  healthy.reader_read_rates = {0.9, 0.9};
  healthy.reader_live = {true, true};
  query.set_facility_model(1, healthy);

  track::Manifest manifest;
  manifest.expected = {object_b_};
  const MissingReport report = query.missing(manifest, 1, 100.0, 110.0);
  ASSERT_EQ(report.items.size(), 1u);
  EXPECT_EQ(report.items[0].verdict, MissingVerdict::kProbablyAbsent);
  EXPECT_TRUE(report.items[0].custody_evidence);
}

TEST_F(QueryServiceTest, CustodyEvidenceExpiresWithTheHorizon) {
  // B was last seen 900 s before the window closes; with the default
  // 600 s horizon that sighting no longer props up the prior.
  store_.ingest(batch(0, 96.0, {event(95.0, 2)}));
  QueryService query(store_, registry_);
  FacilityModel degraded;
  degraded.reader_read_rates = {0.5};
  degraded.reader_live = {true};
  query.set_facility_model(1, degraded);

  track::Manifest manifest;
  manifest.expected = {object_b_};
  const MissingReport stale = query.missing(manifest, 1, 985.0, 995.0);
  ASSERT_EQ(stale.items.size(), 1u);
  EXPECT_FALSE(stale.items[0].custody_evidence);
  EXPECT_EQ(stale.items[0].verdict, MissingVerdict::kProbablyAbsent);
}

TEST_F(QueryServiceTest, RejectsBadConfig) {
  QueryConfig bad_prior;
  bad_prior.prior_present_seen = 1.0;
  EXPECT_THROW(QueryService(store_, registry_, bad_prior), ConfigError);
  QueryConfig bad_threshold;
  bad_threshold.decision_threshold = 0.0;
  EXPECT_THROW(QueryService(store_, registry_, bad_threshold), ConfigError);
  QueryService ok(store_, registry_);
  track::Manifest manifest;
  EXPECT_THROW(ok.missing(manifest, 0, 1.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace rfidsim::fleet
