#include "fleet/service.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::fleet {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader = 0,
                     std::size_t antenna = 0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  return ev;
}

FeedConfig feed_config(std::size_t readers, std::size_t objects) {
  FeedConfig config;
  config.ingest.reader_count = readers;
  config.objects_total = objects;
  // Test passes are sparse (a handful of reads over seconds); keep the
  // silence detector from declaring every quiet stretch an outage.
  config.ingest.silence_gap_s = 3.0;
  return config;
}

/// One pass worth of clean reads: every tag read by every reader, twice,
/// spread evenly over the window so no reader looks silent.
sys::EventLog full_pass(const std::vector<std::uint64_t>& tags, std::size_t readers,
                        double begin_s, double width_s = 10.0) {
  sys::EventLog log;
  const std::size_t count = tags.size() * readers * 2;
  const double dt = (width_s - 0.2) / static_cast<double>(count);
  double t = begin_s + 0.1;
  for (std::size_t rep = 0; rep < 2; ++rep) {
    for (const std::uint64_t tag : tags) {
      for (std::size_t r = 0; r < readers; ++r) {
        log.push_back(event(t, tag, r));
        t += dt;
      }
    }
  }
  return log;
}

TEST(FacilityFeedTest, CleanPassLandsInStoreAndMonitor) {
  FacilityFeed feed(feed_config(2, 3));
  TrackingStore store;
  Rng rng(1);
  const FeedPassResult result =
      feed.ingest_pass(store, full_pass({1, 2, 3}, 2, 0.0), 0.0, 10.0, rng);

  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_EQ(result.lost_batches, 0u);
  EXPECT_FALSE(result.batches.empty());
  EXPECT_EQ(store.tag_count(), 3u);
  EXPECT_EQ(feed.monitor().passes(), 1u);
  // Every object was read by every reader: windowed rates are 1.
  const FacilityModel model = feed.model();
  ASSERT_EQ(model.reader_read_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(model.reader_read_rates[0], 1.0);
  EXPECT_DOUBLE_EQ(model.reader_read_rates[1], 1.0);
  EXPECT_TRUE(model.reader_live[0]);
  EXPECT_TRUE(model.reader_live[1]);
}

TEST(FacilityFeedTest, ImplausibleRecordsAreQuarantinedBeforeTheStore) {
  FeedConfig config = feed_config(2, 2);
  FacilityFeed feed(config);
  TrackingStore store;
  Rng rng(1);
  sys::EventLog log = full_pass({1, 2}, 2, 0.0);
  log.push_back(event(5.0, 1, 9));   // No reader 9.
  log.push_back(event(99.0, 2, 0));  // Outside the window.
  const FeedPassResult result = feed.ingest_pass(store, log, 0.0, 10.0, rng);
  EXPECT_EQ(result.quarantined, 2u);
  // The store only ever saw validated sightings.
  for (const scene::TagId tag : store.tags()) {
    for (const Sighting& s : *store.timeline(tag)) {
      EXPECT_LT(s.reader, 2u);
      EXPECT_LE(s.time_s, 10.0);
    }
  }
}

TEST(FacilityFeedTest, SilentReaderIsMaskedDeadInTheModel) {
  FacilityFeed feed(feed_config(2, 3));
  TrackingStore store;
  Rng rng(1);
  // Reader 1 never speaks for the whole window: a silence gap to the
  // window end declares it down.
  sys::EventLog log;
  for (std::size_t i = 0; i < 40; ++i) {
    log.push_back(event(0.1 + 0.2 * static_cast<double>(i), 1 + i % 3, 0));
  }
  (void)feed.ingest_pass(store, log, 0.0, 10.0, rng);
  const FacilityModel model = feed.model();
  EXPECT_TRUE(model.reader_live[0]);
  EXPECT_FALSE(model.reader_live[1]);
  // Masking flows straight into the confidence: R_C over reader 0 alone.
  EXPECT_DOUBLE_EQ(model.identification_rc(), model.reader_read_rates[0]);
}

TEST(FacilityFeedTest, LateBatchesReachTheStoreButNotTheMonitor) {
  FeedConfig config = feed_config(1, 2);
  // Certain first-attempt loss with one retry: every delivered batch waits
  // out one backoff. A backoff longer than the pass window pushes every
  // arrival past the window end.
  config.uploader.loss_probability = 0.65;
  config.uploader.max_retries = 12;
  config.uploader.initial_backoff_s = 30.0;
  config.uploader.batch_size = 8;
  FacilityFeed feed(config);
  TrackingStore store;
  Rng rng(3);
  sys::EventLog log;
  for (std::size_t i = 0; i < 64; ++i) {
    log.push_back(event(0.1 + 0.15 * static_cast<double>(i), 1 + i % 2, 0));
  }
  const FeedPassResult result = feed.ingest_pass(store, log, 0.0, 10.0, rng);

  ASSERT_GT(result.late_batches, 0u);
  // Late batches are stored (timelines repair retroactively)...
  EXPECT_GT(store.sighting_count(), 0u);
  EXPECT_EQ(store.stats().late_batches, result.late_batches);
  // ...but the monitor's pass-level view excludes them, so the on-time
  // union is strictly smaller than what the store accepted.
  EXPECT_LT(result.report.accepted, store.sighting_count() + result.quarantined + 1);
}

TEST(FacilityFeedTest, RequiresReaderRoster) {
  FeedConfig config;  // reader_count left 0.
  EXPECT_THROW(FacilityFeed{config}, ConfigError);
}

TEST(FleetServiceTest, TwoFacilityCustodyHandoff) {
  track::ObjectRegistry registry;
  const track::ObjectId pallet = registry.add_object("pallet");
  registry.bind_tag(scene::TagId{1}, pallet);
  const track::ObjectId crate = registry.add_object("crate");
  registry.bind_tag(scene::TagId{2}, crate);

  FleetService service(registry);
  const FacilityId dock = service.add_facility(feed_config(2, 2));
  // Only the pallet is due at the gate, so its pass expects one object.
  const FacilityId gate = service.add_facility(feed_config(2, 1));
  ASSERT_EQ(service.facility_count(), 2u);

  Rng rng(5);
  // Pass 1: both objects at the dock. Pass 2: the pallet reappears at the
  // gate (a short pass, windowed to match); the crate stays put.
  (void)service.ingest_pass(dock, full_pass({1, 2}, 2, 0.0), 0.0, 10.0, rng);
  (void)service.ingest_pass(gate, full_pass({1}, 2, 100.0, 3.0), 100.0, 103.0, rng);

  const LocateResult early = service.query().locate(pallet, 50.0);
  ASSERT_TRUE(early.found);
  EXPECT_EQ(early.facility, dock);
  const LocateResult late = service.query().locate(pallet, 120.0);
  ASSERT_TRUE(late.found);
  EXPECT_EQ(late.facility, gate);
  EXPECT_GT(late.confidence, 0.9);  // Clean feed: both readers at rate 1.

  const auto at_dock = service.query().inventory(dock, 120.0);
  ASSERT_EQ(at_dock.size(), 1u);
  EXPECT_EQ(at_dock[0], crate);

  // Reconciliation at the gate: the crate never left the dock, and the
  // gate portal is healthy, so it reconciles as absent — correctly.
  track::Manifest manifest;
  manifest.expected = {pallet, crate};
  const MissingReport report = service.query().missing(manifest, gate, 100.0, 103.0);
  ASSERT_EQ(report.present.size(), 1u);
  EXPECT_EQ(report.present[0], pallet);
  ASSERT_EQ(report.absent.size(), 1u);
  EXPECT_EQ(report.absent[0], crate);

  EXPECT_THROW(service.feed(7), ConfigError);
}

}  // namespace
}  // namespace rfidsim::fleet
