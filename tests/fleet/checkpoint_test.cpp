#include "fleet/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "fleet/store.hpp"
#include "wire/wire.hpp"

namespace rfidsim::fleet {
namespace {

FacilityBatch make_batch(Rng& rng, FacilityId facility, double t0,
                         std::size_t events, std::uint64_t tag_pool) {
  FacilityBatch batch;
  batch.facility = facility;
  double t = t0;
  for (std::size_t i = 0; i < events; ++i) {
    sys::ReadEvent ev;
    ev.tag = scene::TagId{static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(tag_pool)))};
    t += rng.uniform(0.0, 0.01);
    ev.time_s = t;
    ev.reader_index = static_cast<std::size_t>(rng.uniform_int(0, 2));
    ev.antenna_index = static_cast<std::size_t>(rng.uniform_int(0, 3));
    batch.events.push_back(ev);
  }
  batch.sent_time_s = t;
  batch.arrival_time_s = t;
  return batch;
}

TrackingStore populated_store(std::uint64_t seed, std::size_t batches,
                              StoreConfig config = {16, 1}) {
  TrackingStore store(config);
  Rng rng(seed);
  for (std::size_t b = 0; b < batches; ++b) {
    store.ingest(make_batch(rng, static_cast<FacilityId>(b % 3),
                            static_cast<double>(b), 40, 200));
  }
  return store;
}

void expect_equal_stats(const StoreStats& a, const StoreStats& b) {
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.late_batches, b.late_batches);
}

TEST(CheckpointTest, FullSnapshotRestoresDigestIdentical) {
  const TrackingStore store = populated_store(1, 20);
  Checkpointer cp;
  const std::vector<std::uint8_t> snap = cp.full(store);
  EXPECT_EQ(cp.last_stats().shards_written, store.config().shard_count);
  EXPECT_EQ(cp.last_stats().shards_skipped, 0u);
  EXPECT_FALSE(cp.last_stats().incremental);

  const TrackingStore restored = restore_checkpoint(snap);
  EXPECT_EQ(restored.digest(), store.digest());
  EXPECT_EQ(restored.tag_count(), store.tag_count());
  EXPECT_EQ(restored.sighting_count(), store.sighting_count());
  expect_equal_stats(restored.stats(), store.stats());
}

TEST(CheckpointTest, RestoredStoreKeepsIngestingIdentically) {
  // Crash-recovery's real bar: the restored store must be *functionally*
  // the pre-crash store, so ingesting the post-crash tail of the workload
  // converges to the uninterrupted run, digest for digest.
  TrackingStore live = populated_store(2, 10);
  Checkpointer cp;
  const std::vector<std::uint8_t> snap = cp.full(live);
  TrackingStore recovered = restore_checkpoint(snap);

  Rng tail_a(77), tail_b(77);
  for (std::size_t b = 0; b < 10; ++b) {
    live.ingest(make_batch(tail_a, 1, 100.0 + static_cast<double>(b), 30, 150));
    recovered.ingest(make_batch(tail_b, 1, 100.0 + static_cast<double>(b), 30, 150));
  }
  EXPECT_EQ(recovered.digest(), live.digest());
  expect_equal_stats(recovered.stats(), live.stats());
}

TEST(CheckpointTest, RestoreIsThreadCountInvariant) {
  const TrackingStore store = populated_store(3, 16, {32, 1});
  Checkpointer cp;
  const std::vector<std::uint8_t> snap = cp.full(store);
  const TrackingStore serial = restore_checkpoint(snap, 1);
  const TrackingStore threaded = restore_checkpoint(snap, 4);
  EXPECT_EQ(serial.digest(), store.digest());
  EXPECT_EQ(threaded.digest(), store.digest());
}

TEST(CheckpointTest, IncrementalChainRestoresAndSkipsCleanShards) {
  TrackingStore store = populated_store(4, 12, {64, 1});
  Checkpointer cp;
  std::vector<std::uint8_t> stream = cp.full(store);

  // A tiny follow-up ingest touches few shards; the incremental must skip
  // the rest and the concatenated chain must restore the updated store.
  Rng rng(5);
  FacilityBatch small;
  small.facility = 2;
  sys::ReadEvent ev;
  ev.tag = scene::TagId{7};
  ev.time_s = 500.0;
  small.events.push_back(ev);
  small.sent_time_s = small.arrival_time_s = 500.0;
  store.ingest(small);

  const std::vector<std::uint8_t> inc = cp.incremental(store);
  EXPECT_TRUE(cp.last_stats().incremental);
  EXPECT_EQ(cp.last_stats().sequence, 1u);
  EXPECT_LT(cp.last_stats().shards_written, store.config().shard_count);
  EXPECT_GT(cp.last_stats().shards_skipped, 0u);
  EXPECT_LT(inc.size(), stream.size());  // The point of incrementals.

  stream.insert(stream.end(), inc.begin(), inc.end());
  const TrackingStore restored = restore_checkpoint(stream);
  EXPECT_EQ(restored.digest(), store.digest());
  expect_equal_stats(restored.stats(), store.stats());
}

TEST(CheckpointTest, FirstIncrementalDegradesToFull) {
  const TrackingStore store = populated_store(6, 8);
  Checkpointer cp;
  const std::vector<std::uint8_t> snap = cp.incremental(store);
  EXPECT_FALSE(cp.last_stats().incremental);
  EXPECT_EQ(restore_checkpoint(snap).digest(), store.digest());
}

TEST(CheckpointTest, NoOpIncrementalWritesNoShards) {
  const TrackingStore store = populated_store(7, 8);
  Checkpointer cp;
  std::vector<std::uint8_t> chain = cp.full(store);
  const std::vector<std::uint8_t> noop = cp.incremental(store);
  EXPECT_EQ(cp.last_stats().shards_written, 0u);
  EXPECT_EQ(cp.last_stats().shards_skipped, store.config().shard_count);
  // Header + end only; restoring full + no-op inc still verifies.
  chain.insert(chain.end(), noop.begin(), noop.end());
  EXPECT_EQ(restore_checkpoint(chain).digest(), store.digest());
}

TEST(CheckpointTest, EmptyStoreRoundTrips) {
  const TrackingStore store{StoreConfig{8, 1}};
  Checkpointer cp;
  const TrackingStore restored = restore_checkpoint(cp.full(store));
  EXPECT_EQ(restored.digest(), store.digest());
  EXPECT_EQ(restored.tag_count(), 0u);
}

// --- Typed failure taxonomy ------------------------------------------------

TEST(CheckpointErrorTest, EmptyStreamIsMissingHeader) {
  try {
    (void)restore_checkpoint(nullptr, 0);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMissingHeader);
    EXPECT_STREQ(checkpoint_error_name(e.kind()), "missing_header");
  }
}

TEST(CheckpointErrorTest, StreamEndingMidSnapshotIsMissingEnd) {
  const TrackingStore store = populated_store(8, 6);
  Checkpointer cp;
  std::vector<std::uint8_t> snap = cp.full(store);
  // Drop the end frame (11 bytes: varint count <= 2 + digest 8 + overhead 9
  // — find it precisely by re-scanning frames).
  std::size_t last_frame_at = 0, offset = 0;
  while (offset < snap.size()) {
    const wire::DecodeResult res = wire::next_frame(snap, offset);
    ASSERT_TRUE(res.ok);
    last_frame_at = offset;
    offset = res.next_offset;
  }
  snap.resize(last_frame_at);
  try {
    (void)restore_checkpoint(snap);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMissingEnd);
  }
}

TEST(CheckpointErrorTest, SequenceGapInChainIsBadSequence) {
  TrackingStore store = populated_store(9, 6);
  Checkpointer cp;
  std::vector<std::uint8_t> chain = cp.full(store);
  Rng rng(1);
  store.ingest(make_batch(rng, 0, 50.0, 10, 50));
  (void)cp.incremental(store);  // Sequence 1, deliberately dropped.
  store.ingest(make_batch(rng, 0, 60.0, 10, 50));
  const std::vector<std::uint8_t> inc2 = cp.incremental(store);  // Sequence 2.
  chain.insert(chain.end(), inc2.begin(), inc2.end());
  try {
    (void)restore_checkpoint(chain);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadSequence);
  }
}

TEST(CheckpointErrorTest, ForgedDigestIsDigestMismatch) {
  const TrackingStore store = populated_store(10, 6);
  Checkpointer cp;
  std::vector<std::uint8_t> snap = cp.full(store);
  // Rewrite the end frame with a wrong digest (keeping its CRC valid, so
  // only the semantic check can catch it).
  std::size_t last_frame_at = 0, offset = 0;
  while (offset < snap.size()) {
    const wire::DecodeResult res = wire::next_frame(snap, offset);
    ASSERT_TRUE(res.ok);
    last_frame_at = offset;
    offset = res.next_offset;
  }
  snap.resize(last_frame_at);
  std::vector<std::uint8_t> payload;
  wire::put_varint(payload, store.config().shard_count);
  wire::put_u64le(payload, store.digest() ^ 1);
  wire::append_frame(snap, wire::OpCode::kCheckpointEnd, payload);
  try {
    (void)restore_checkpoint(snap);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kDigestMismatch);
  }
}

TEST(CheckpointErrorTest, ChainStartingWithIncrementalIsBadSequence) {
  // Hand-forge an incremental header with nothing before it.
  std::vector<std::uint8_t> payload;
  payload.push_back(1);  // kind = incremental
  wire::put_varint(payload, 0);  // sequence
  wire::put_varint(payload, 4);  // shard count
  for (int i = 0; i < 6; ++i) wire::put_varint(payload, 0);  // stats
  std::vector<std::uint8_t> stream =
      wire::make_frame(wire::OpCode::kCheckpointHeader, payload);
  try {
    (void)restore_checkpoint(stream);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadSequence);
  }
}

TEST(CheckpointErrorTest, EventBatchFrameBeforeHeaderIsMissingHeader) {
  const std::vector<std::uint8_t> stream =
      wire::make_frame(wire::OpCode::kEventBatch, {1, 2, 3});
  try {
    (void)restore_checkpoint(stream);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMissingHeader);
  }
}

// --- Fuzz: hostile bytes must yield a typed error or a digest-identical
// store; never a crash, never partial state. (ASan/UBSan in CI.) ----------

TEST(CheckpointFuzzTest, EverySingleBitFlipFailsTypedOrRestoresIdentical) {
  const TrackingStore store = populated_store(11, 4, {4, 1});
  Checkpointer cp;
  const std::vector<std::uint8_t> snap = cp.full(store);
  const std::uint64_t want = store.digest();
  std::size_t typed_failures = 0;
  for (std::size_t bit = 0; bit < snap.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = snap;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const TrackingStore restored = restore_checkpoint(damaged);
      // Extremely unlikely (CRC-16 catches all single-bit flips), but the
      // contract permits success only if the result is indistinguishable.
      EXPECT_EQ(restored.digest(), want) << "bit " << bit;
    } catch (const CheckpointError&) {
      ++typed_failures;  // The expected outcome.
    }
    // Any other exception type escapes and fails the test.
  }
  EXPECT_GT(typed_failures, snap.size());  // Nearly every flip is caught.
}

TEST(CheckpointFuzzTest, EveryTruncationFailsTyped) {
  const TrackingStore store = populated_store(12, 4, {4, 1});
  Checkpointer cp;
  const std::vector<std::uint8_t> snap = cp.full(store);
  for (std::size_t keep = 0; keep < snap.size(); ++keep) {
    try {
      (void)restore_checkpoint(snap.data(), keep);
      FAIL() << "accepted a " << keep << "-byte prefix of " << snap.size();
    } catch (const CheckpointError&) {
      // Typed, as required.
    }
  }
}

}  // namespace
}  // namespace rfidsim::fleet
