// Property and fuzz tests for the arena-backed TrackingStore.
//
// The store's shards were rewritten from one std::map node per EPC to an
// arena layout (open-addressing EPC index over dense parallel epc/timeline
// vectors). The determinism contract in store.hpp did not change: final
// state is a pure function of the multiset of ingested batches, so every
// externally visible bit must be invariant under duplicate re-delivery,
// batch arrival order, shard count, and thread count.
//
// The old implementation is gone, so these tests keep it alive as a
// REFERENCE MODEL: a std::map-based store with the same merge rule
// (sorted insert, exact-duplicate drop) and the same digest algorithm
// (SplitMix64-keyed shards don't matter to the model — the digest walks
// ascending EPC, which is exactly std::map order). A randomized fuzzer
// drives both through thousands of merges with adversarial collisions
// (small EPC range, equal timestamps, exact duplicates, late batches) and
// demands the digests, timelines and tallies agree after every round.
#include "fleet/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace rfidsim::fleet {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader = 0,
                     std::size_t antenna = 0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  return ev;
}

FacilityBatch batch(FacilityId facility, double sent, std::vector<sys::ReadEvent> events,
                    double arrival = -1.0) {
  FacilityBatch b;
  b.facility = facility;
  b.sent_time_s = sent;
  b.arrival_time_s = arrival < 0.0 ? sent : arrival;
  b.events = std::move(events);
  return b;
}

// --- Reference model ----------------------------------------------------
// The pre-arena implementation, distilled: ordered map of timelines, the
// published merge rule, the published digest. Deliberately naive — its only
// job is to be obviously correct.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

struct ReferenceStore {
  std::map<std::uint64_t, std::vector<Sighting>> timelines;
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t repairs = 0;

  void ingest(const FacilityBatch& b) {
    for (const sys::ReadEvent& ev : b.events) {
      const Sighting s{ev.time_s, b.facility, static_cast<std::uint32_t>(ev.reader_index),
                       static_cast<std::uint32_t>(ev.antenna_index)};
      std::vector<Sighting>& tl = timelines[ev.tag.value];
      const auto pos = std::lower_bound(tl.begin(), tl.end(), s, sighting_less);
      if (pos != tl.end() && *pos == s) {
        ++duplicates;
        continue;
      }
      if (pos != tl.end()) ++repairs;
      tl.insert(pos, s);
      ++accepted;
    }
  }

  std::uint64_t digest() const {
    std::uint64_t hash = kFnvOffset;
    for (const auto& [epc, tl] : timelines) {
      hash = fnv1a(hash, epc);
      hash = fnv1a(hash, tl.size());
      for (const Sighting& s : tl) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &s.time_s, sizeof(bits));
        hash = fnv1a(hash, bits);
        hash = fnv1a(hash, (static_cast<std::uint64_t>(s.facility) << 32) |
                               (static_cast<std::uint64_t>(s.reader) << 16) | s.antenna);
      }
    }
    return hash;
  }
};

/// Full-state comparison, not just the digest: digests prove bit-equality
/// only if the digested walk covers everything, so also cross-check the
/// query surface the digest summarises.
void expect_matches_reference(const TrackingStore& store, const ReferenceStore& ref) {
  ASSERT_EQ(store.digest(), ref.digest());
  EXPECT_EQ(store.tag_count(), ref.timelines.size());
  EXPECT_EQ(store.stats().accepted, ref.accepted);
  EXPECT_EQ(store.stats().duplicates, ref.duplicates);
  EXPECT_EQ(store.stats().repairs, ref.repairs);
  std::size_t sightings = 0;
  for (const auto& [epc, tl] : ref.timelines) {
    sightings += tl.size();
    const std::vector<Sighting>* stored = store.timeline(scene::TagId{epc});
    ASSERT_NE(stored, nullptr) << "epc " << epc;
    EXPECT_EQ(*stored, tl) << "epc " << epc;
  }
  EXPECT_EQ(store.sighting_count(), sightings);
}

/// Adversarial batch: EPCs drawn from a small range (hash collisions and
/// shared timelines guaranteed), timestamps quantized to a coarse grid
/// (equal-time tie-breaks exercised), a slice of events duplicated exactly.
FacilityBatch fuzz_batch(Rng& rng, double base_time) {
  std::vector<sys::ReadEvent> events;
  const std::int64_t count = rng.uniform_int(0, 120);  // includes empty batches
  for (std::int64_t e = 0; e < count; ++e) {
    const double t = base_time + 0.25 * static_cast<double>(rng.uniform_int(0, 40));
    events.push_back(event(t, static_cast<std::uint64_t>(rng.uniform_int(1, 60)),
                           static_cast<std::size_t>(rng.uniform_int(0, 2)),
                           static_cast<std::size_t>(rng.uniform_int(0, 3))));
  }
  // Re-deliver a prefix of this batch inside itself: exact duplicates that
  // must be dropped with the duplicates counter ticking.
  const std::int64_t dupes = events.empty() ? 0 : rng.uniform_int(0, 10);
  for (std::int64_t d = 0; d < dupes; ++d) {
    events.push_back(events[static_cast<std::size_t>(d) % events.size()]);
  }
  const double sent = base_time + 10.0;
  const double arrival = rng.bernoulli(0.2) ? sent + rng.uniform(0.1, 30.0) : sent;
  return batch(static_cast<FacilityId>(rng.uniform_int(0, 4)), sent, std::move(events),
               arrival);
}

std::vector<FacilityBatch> fuzz_batches(Rng& rng, std::size_t count) {
  std::vector<FacilityBatch> batches;
  for (std::size_t b = 0; b < count; ++b) {
    batches.push_back(fuzz_batch(rng, static_cast<double>(b)));
  }
  return batches;
}

TEST(StoreArenaTest, MergeFuzzerMatchesReferenceModel) {
  // 24 independent universes x 8 ingest rounds, each round cross-checked.
  // Store configs rotate through shard/thread combinations so arena growth,
  // rehashing and the parallel merge path all run against the model.
  Rng universes(0xa7e4'a0f0'0dULL);
  for (std::uint64_t u = 0; u < 24; ++u) {
    Rng rng = universes.fork(u);
    const StoreConfig config{
        static_cast<std::size_t>(rng.uniform_int(1, 64)),  // shard_count
        static_cast<std::size_t>(rng.uniform_int(1, 4)),   // threads
    };
    TrackingStore store(config);
    ReferenceStore ref;
    for (std::size_t round = 0; round < 8; ++round) {
      const std::vector<FacilityBatch> batches =
          fuzz_batches(rng, static_cast<std::size_t>(rng.uniform_int(1, 6)));
      store.ingest(batches);
      for (const FacilityBatch& b : batches) ref.ingest(b);
      expect_matches_reference(store, ref);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(StoreArenaTest, DuplicateIngestIsIdempotent) {
  Rng rng(77);
  const std::vector<FacilityBatch> batches = fuzz_batches(rng, 12);
  TrackingStore store(StoreConfig{16, 1});
  store.ingest(batches);
  const std::uint64_t digest = store.digest();
  const std::uint64_t accepted = store.stats().accepted;
  const std::size_t sightings = store.sighting_count();
  ASSERT_GT(sightings, 0u);

  store.ingest(batches);  // whole-workload re-delivery
  EXPECT_EQ(store.digest(), digest);
  EXPECT_EQ(store.stats().accepted, accepted);
  EXPECT_EQ(store.sighting_count(), sightings);
  // Every offered event was either accepted or dropped as an exact
  // duplicate, and the re-delivery accepted nothing.
  EXPECT_EQ(store.stats().duplicates, store.stats().events - accepted);
}

TEST(StoreArenaTest, ArrivalOrderInvariance) {
  Rng rng(78);
  const std::vector<FacilityBatch> batches = fuzz_batches(rng, 16);
  std::vector<FacilityBatch> reversed(batches.rbegin(), batches.rend());
  std::vector<FacilityBatch> shuffled = batches;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.uniform_int(0, i - 1))]);
  }

  TrackingStore forward(StoreConfig{16, 1});
  forward.ingest(batches);
  TrackingStore backward(StoreConfig{16, 1});
  for (const FacilityBatch& b : reversed) backward.ingest(b);  // one at a time
  TrackingStore random_order(StoreConfig{16, 1});
  random_order.ingest(shuffled);

  EXPECT_EQ(forward.digest(), backward.digest());
  EXPECT_EQ(forward.digest(), random_order.digest());
  EXPECT_EQ(forward.stats().accepted, backward.stats().accepted);
  EXPECT_EQ(forward.stats().accepted, random_order.stats().accepted);
  EXPECT_EQ(forward.stats().duplicates, backward.stats().duplicates);
}

TEST(StoreArenaTest, ShardCountInvariance) {
  Rng rng(79);
  const std::vector<FacilityBatch> batches = fuzz_batches(rng, 16);
  bool have_first = false;
  std::uint64_t first = 0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                                   std::size_t{256}}) {
    TrackingStore store(StoreConfig{shards, 1});
    store.ingest(batches);
    if (!have_first) {
      first = store.digest();
      have_first = true;
    } else {
      EXPECT_EQ(store.digest(), first) << "shard_count " << shards;
    }
  }
}

TEST(StoreArenaTest, ThreadCountInvariance) {
  Rng rng(80);
  const std::vector<FacilityBatch> batches = fuzz_batches(rng, 16);
  bool have_first = false;
  std::uint64_t first = 0;
  std::uint64_t first_repairs = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    TrackingStore store(StoreConfig{32, threads});
    store.ingest(batches);
    if (!have_first) {
      first = store.digest();
      first_repairs = store.stats().repairs;
      have_first = true;
    } else {
      EXPECT_EQ(store.digest(), first) << "threads " << threads;
      EXPECT_EQ(store.stats().repairs, first_repairs) << "threads " << threads;
    }
  }
}

TEST(StoreArenaTest, ArenaGrowthPreservesTimelines) {
  // One shard, thousands of distinct EPCs: forces the open-addressing index
  // through several rehash doublings. Every timeline must survive intact.
  TrackingStore store(StoreConfig{1, 1});
  ReferenceStore ref;
  for (std::uint64_t wave = 0; wave < 4; ++wave) {
    std::vector<sys::ReadEvent> events;
    for (std::uint64_t e = 0; e < 1500; ++e) {
      events.push_back(event(static_cast<double>(wave), wave * 1500 + e + 1));
    }
    const FacilityBatch b = batch(0, static_cast<double>(wave), std::move(events));
    store.ingest(b);
    ref.ingest(b);
  }
  EXPECT_EQ(store.shard_depth(0), store.sighting_count());
  expect_matches_reference(store, ref);
}

TEST(StoreArenaTest, VisitShardWalksAscendingEpcs) {
  // visit_shard's ascending order comes from the lazily rebuilt by_epc
  // permutation; interleave inserts and visits so a stale permutation (the
  // arena's one genuinely new failure mode) would surface.
  Rng rng(81);
  TrackingStore store(StoreConfig{8, 1});
  for (std::size_t round = 0; round < 4; ++round) {
    store.ingest(fuzz_batch(rng, static_cast<double>(round)));
    std::vector<std::uint64_t> visited;
    for (std::size_t s = 0; s < store.config().shard_count; ++s) {
      std::uint64_t previous = 0;
      store.visit_shard(s, [&](std::uint64_t epc, const std::vector<Sighting>& tl) {
        EXPECT_GT(epc, previous) << "shard " << s;  // strictly ascending
        EXPECT_FALSE(tl.empty());
        previous = epc;
        visited.push_back(epc);
      });
    }
    std::sort(visited.begin(), visited.end());
    const std::vector<scene::TagId> tags = store.tags();
    ASSERT_EQ(visited.size(), tags.size());
    for (std::size_t i = 0; i < tags.size(); ++i) {
      EXPECT_EQ(visited[i], tags[i].value);
    }
  }
}

}  // namespace
}  // namespace rfidsim::fleet
