#include "fleet/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rfidsim::fleet {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader = 0,
                     std::size_t antenna = 0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  return ev;
}

FacilityBatch batch(FacilityId facility, double sent, std::vector<sys::ReadEvent> events,
                    double arrival = -1.0) {
  FacilityBatch b;
  b.facility = facility;
  b.sent_time_s = sent;
  b.arrival_time_s = arrival < 0.0 ? sent : arrival;
  b.events = std::move(events);
  return b;
}

/// A mixed workload: 3 facilities, 500 tags, some shared across batches.
std::vector<FacilityBatch> workload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FacilityBatch> batches;
  for (std::size_t b = 0; b < 40; ++b) {
    std::vector<sys::ReadEvent> events;
    const double base = static_cast<double>(b) * 5.0;
    for (std::size_t e = 0; e < 200; ++e) {
      events.push_back(event(base + rng.uniform(0.0, 5.0),
                             static_cast<std::uint64_t>(rng.uniform_int(1, 500)),
                             static_cast<std::size_t>(rng.uniform_int(0, 2)),
                             static_cast<std::size_t>(rng.uniform_int(0, 3))));
    }
    batches.push_back(batch(static_cast<FacilityId>(b % 3), base + 5.0,
                            std::move(events)));
  }
  return batches;
}

TEST(TrackingStoreTest, TimelinesAreTimeSortedRegardlessOfArrivalOrder) {
  TrackingStore store;
  store.ingest(batch(0, 10.0, {event(9.0, 7), event(9.5, 7)}));
  store.ingest(batch(1, 5.0, {event(4.0, 7), event(4.5, 7)}));  // Late delivery.
  const auto* tl = store.timeline(scene::TagId{7});
  ASSERT_NE(tl, nullptr);
  ASSERT_EQ(tl->size(), 4u);
  EXPECT_TRUE(std::is_sorted(tl->begin(), tl->end(), sighting_less));
  EXPECT_DOUBLE_EQ(tl->front().time_s, 4.0);
  EXPECT_EQ(tl->front().facility, 1u);
  // The second ingest inserted ahead of existing sightings: repairs.
  EXPECT_EQ(store.stats().repairs, 2u);
}

TEST(TrackingStoreTest, ExactRedeliveryIsIdempotent) {
  const FacilityBatch b = batch(0, 1.0, {event(0.2, 1), event(0.4, 2), event(0.6, 1)});
  TrackingStore store;
  store.ingest(b);
  const std::uint64_t digest_once = store.digest();
  EXPECT_EQ(store.stats().accepted, 3u);
  store.ingest(b);  // Middleware re-delivered the whole batch.
  EXPECT_EQ(store.digest(), digest_once);
  EXPECT_EQ(store.stats().accepted, 3u);
  EXPECT_EQ(store.stats().duplicates, 3u);
  EXPECT_EQ(store.sighting_count(), 3u);
}

TEST(TrackingStoreTest, DigestInvariantAcrossThreadsShardsAndBatchOrder) {
  const std::vector<FacilityBatch> batches = workload(42);

  auto digest_with = [&](std::size_t shards, std::size_t threads,
                         bool reversed) {
    StoreConfig config;
    config.shard_count = shards;
    config.threads = threads;
    TrackingStore store(config);
    if (reversed) {
      const std::vector<FacilityBatch> rev(batches.rbegin(), batches.rend());
      store.ingest(rev);
    } else {
      store.ingest(batches);
    }
    return store.digest();
  };

  const std::uint64_t reference = digest_with(64, 1, false);
  EXPECT_EQ(digest_with(64, 4, false), reference);
  EXPECT_EQ(digest_with(64, 0, false), reference);  // Shared sweep engine.
  EXPECT_EQ(digest_with(1, 1, false), reference);
  EXPECT_EQ(digest_with(7, 2, false), reference);
  EXPECT_EQ(digest_with(64, 1, true), reference);   // Arrival order reversed.
  EXPECT_EQ(digest_with(64, 4, true), reference);
}

TEST(TrackingStoreTest, LastSightingAtRespectsQueryTime) {
  TrackingStore store;
  store.ingest(batch(2, 3.0, {event(1.0, 9), event(2.0, 9), event(3.0, 9)}));
  EXPECT_FALSE(store.last_sighting_at(scene::TagId{9}, 0.5).has_value());
  const auto at_exact = store.last_sighting_at(scene::TagId{9}, 2.0);
  ASSERT_TRUE(at_exact.has_value());
  EXPECT_DOUBLE_EQ(at_exact->time_s, 2.0);
  const auto after = store.last_sighting_at(scene::TagId{9}, 99.0);
  ASSERT_TRUE(after.has_value());
  EXPECT_DOUBLE_EQ(after->time_s, 3.0);
  EXPECT_FALSE(store.last_sighting_at(scene::TagId{1234}, 1.0).has_value());
}

TEST(TrackingStoreTest, CountsLateBatches) {
  TrackingStore store;
  store.ingest(batch(0, 1.0, {event(0.5, 1)}));             // On time.
  store.ingest(batch(0, 2.0, {event(1.5, 2)}, 7.5));        // Delayed in transit.
  EXPECT_EQ(store.stats().late_batches, 1u);
  EXPECT_EQ(store.stats().batches, 2u);
}

TEST(TrackingStoreTest, TagsAscendAndShardDepthsSumToSightings) {
  const std::vector<FacilityBatch> batches = workload(7);
  StoreConfig config;
  config.shard_count = 16;
  TrackingStore store(config);
  store.ingest(batches);

  const std::vector<scene::TagId> tags = store.tags();
  EXPECT_EQ(tags.size(), store.tag_count());
  EXPECT_TRUE(std::is_sorted(tags.begin(), tags.end()));

  std::size_t depth_sum = 0;
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    depth_sum += store.shard_depth(s);
  }
  EXPECT_EQ(depth_sum, store.sighting_count());
  for (const scene::TagId tag : tags) {
    EXPECT_LT(store.shard_of(tag), config.shard_count);
    ASSERT_NE(store.timeline(tag), nullptr);
  }
}

TEST(TrackingStoreTest, RejectsZeroShards) {
  StoreConfig config;
  config.shard_count = 0;
  EXPECT_THROW(TrackingStore{config}, ConfigError);
}

}  // namespace
}  // namespace rfidsim::fleet
