// The fleet health surface: FleetService::health_snapshot() and its two
// serializations. The snapshot is built from always-on state (feed totals,
// monitor arithmetic, store stats), so every structural assertion here
// holds with obs hooks on, off, or compiled out — only the provenance
// chain test at the bottom needs hooks.
#include "fleet/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/service.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/provenance.hpp"

namespace rfidsim::fleet {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader = 0,
                     std::size_t antenna = 0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  return ev;
}

FeedConfig feed_config(std::size_t readers, std::size_t objects) {
  FeedConfig config;
  config.ingest.reader_count = readers;
  config.objects_total = objects;
  config.ingest.silence_gap_s = 3.0;
  return config;
}

/// One clean pass: every tag read by every reader, twice, spread over the
/// window (same shape as service_test.cpp).
sys::EventLog full_pass(const std::vector<std::uint64_t>& tags, std::size_t readers,
                        double begin_s, double width_s = 10.0) {
  sys::EventLog log;
  const std::size_t count = tags.size() * readers * 2;
  const double dt = (width_s - 0.2) / static_cast<double>(count);
  double t = begin_s + 0.1;
  for (std::size_t rep = 0; rep < 2; ++rep) {
    for (const std::uint64_t tag : tags) {
      for (std::size_t r = 0; r < readers; ++r) {
        log.push_back(event(t, tag, r));
        t += dt;
      }
    }
  }
  return log;
}

track::ObjectRegistry three_object_registry() {
  track::ObjectRegistry registry;
  for (std::uint64_t tag = 1; tag <= 3; ++tag) {
    registry.bind_tag(scene::TagId{tag}, registry.add_object("obj"));
  }
  return registry;
}

TEST(FleetHealthTest, EmptyServiceReportsAnUnknownWatermark) {
  const track::ObjectRegistry registry;
  const FleetService service(registry);
  const FleetHealth health = service.health_snapshot();
  EXPECT_EQ(health.facilities, 0u);
  EXPECT_EQ(health.tags, 0u);
  EXPECT_EQ(health.sightings, 0u);
  EXPECT_EQ(health.alerts_total, 0u);
  EXPECT_EQ(health.stalled_facilities, 0u);
  EXPECT_EQ(health.min_watermark_s, -1.0);
  EXPECT_TRUE(health.per_facility.empty());

  // Byte-exact writer golden on a default-constructed document (the live
  // snapshot's obs tallies depend on what earlier tests in this binary
  // dumped; the writer's format must not).
  std::ostringstream json;
  write_health_json(json, FleetHealth{});
  EXPECT_EQ(json.str(),
            "{\"facilities\":0,\"tags\":0,\"sightings\":0,\"alerts_total\":0,"
            "\"stalled_facilities\":0,\"min_watermark_s\":-1.000000,"
            "\"store\":{\"batches\":0,\"events\":0,\"accepted\":0,"
            "\"duplicates\":0,\"repairs\":0,\"late_batches\":0},"
            "\"obs\":{\"provenance_dropped\":0,\"flight_dump_attempts\":0,"
            "\"flight_dump_failures\":0,\"crash_handler_installed\":false},"
            "\"per_facility\":[]}\n");

  // The live snapshot carries the telemetry self-health section too.
  std::ostringstream live;
  write_health_json(live, health);
  EXPECT_NE(live.str().find("\"obs\":{\"provenance_dropped\":"),
            std::string::npos);
  EXPECT_EQ(health.provenance_dropped, obs::provenance_log().dropped());
  EXPECT_EQ(health.flight_dump_attempts, obs::flight_dump_attempts());
  EXPECT_EQ(health.flight_dump_failures, obs::flight_dump_failures());
}

/// One healthy facility, one whose uplink is dark from the start: the
/// health document must pin the failure to the right facility.
TEST(FleetHealthTest, DarkFacilityShowsUpStalledWithAnUnknownWatermark) {
  const track::ObjectRegistry registry = three_object_registry();
  FleetService service(registry);
  const FacilityId healthy = service.add_facility(feed_config(2, 3));
  const FacilityId dark = service.add_facility(feed_config(2, 3));
  Rng rng(7);
  const sys::EventLog empty;
  for (int pass = 0; pass < 4; ++pass) {
    const double begin = 10.0 * pass;
    (void)service.ingest_pass(healthy, full_pass({1, 2, 3}, 2, begin), begin,
                              begin + 10.0, rng);
    (void)service.ingest_pass(dark, empty, begin, begin + 10.0, rng);
  }

  const FleetHealth health = service.health_snapshot();
  EXPECT_EQ(health.facilities, 2u);
  ASSERT_EQ(health.per_facility.size(), 2u);
  EXPECT_EQ(health.tags, 3u);
  EXPECT_GT(health.sightings, 0u);
  EXPECT_EQ(health.store.batches, health.per_facility[0].totals.delivered_batches);

  const FacilityHealth& ok = health.per_facility[healthy];
  EXPECT_EQ(ok.facility, healthy);
  EXPECT_EQ(ok.passes, 4u);
  EXPECT_GT(ok.watermark_s, 30.0);  // Last pass's events merged.
  EXPECT_TRUE(std::isfinite(ok.watermark_age_s));
  EXPECT_FALSE(ok.watermark_stalled);
  EXPECT_EQ(ok.alerts_by_type[static_cast<std::size_t>(
                obs::AlertType::kWatermarkStalled)],
            0u);

  const FacilityHealth& bad = health.per_facility[dark];
  EXPECT_EQ(bad.facility, dark);
  EXPECT_EQ(bad.passes, 4u);
  EXPECT_EQ(bad.watermark_s, -1.0);  // Nothing ever merged.
  EXPECT_TRUE(std::isinf(bad.watermark_age_s));
  // Default stall threshold is 3 passes; the fourth dark pass latched it.
  EXPECT_TRUE(bad.watermark_stalled);
  EXPECT_GE(bad.watermark_stall_streak, 3u);
  EXPECT_EQ(bad.alerts_by_type[static_cast<std::size_t>(
                obs::AlertType::kWatermarkStalled)],
            1u);
  EXPECT_GE(bad.alerts_total, 1u);

  // Fleet rollup: the dark facility drags the freshness floor to unknown.
  EXPECT_EQ(health.stalled_facilities, 1u);
  EXPECT_EQ(health.min_watermark_s, -1.0);
  EXPECT_GE(health.alerts_total, bad.alerts_total);
}

TEST(FleetHealthTest, MinWatermarkIsTheSlowestFacility) {
  const track::ObjectRegistry registry = three_object_registry();
  FleetService service(registry);
  const FacilityId fast = service.add_facility(feed_config(2, 3));
  const FacilityId slow = service.add_facility(feed_config(2, 3));
  Rng rng(7);
  (void)service.ingest_pass(fast, full_pass({1, 2}, 2, 0.0), 0.0, 10.0, rng);
  (void)service.ingest_pass(fast, full_pass({1, 2}, 2, 10.0), 10.0, 20.0, rng);
  (void)service.ingest_pass(slow, full_pass({3}, 2, 0.0), 0.0, 10.0, rng);

  const FleetHealth health = service.health_snapshot();
  const double fast_mark = health.per_facility[fast].watermark_s;
  const double slow_mark = health.per_facility[slow].watermark_s;
  EXPECT_GT(fast_mark, 10.0);
  EXPECT_GT(slow_mark, 0.0);
  EXPECT_LT(slow_mark, 10.0);
  EXPECT_EQ(health.min_watermark_s, slow_mark);
  EXPECT_EQ(health.stalled_facilities, 0u);
}

TEST(FleetHealthTest, JsonRowsCarryStallStateAndSentinelAges) {
  const track::ObjectRegistry registry = three_object_registry();
  FleetService service(registry);
  const FacilityId healthy = service.add_facility(feed_config(2, 3));
  const FacilityId dark = service.add_facility(feed_config(2, 3));
  Rng rng(7);
  const sys::EventLog empty;
  for (int pass = 0; pass < 4; ++pass) {
    const double begin = 10.0 * pass;
    (void)service.ingest_pass(healthy, full_pass({1, 2, 3}, 2, begin), begin,
                              begin + 10.0, rng);
    (void)service.ingest_pass(dark, empty, begin, begin + 10.0, rng);
  }
  std::ostringstream out;
  write_health_json(out, service.health_snapshot());
  const std::string json = out.str();
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // One line.
  EXPECT_NE(json.find("\"watermark_stalled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"watermark_stalled\":false"), std::string::npos);
  // Non-finite age collapses to the JSON "unknown" sentinel -1 (no JSON
  // encoding for Inf), distinct from finite -1.000000 values.
  EXPECT_NE(json.find("\"watermark_age_s\":-1,"), std::string::npos);
  EXPECT_NE(json.find("\"min_watermark_s\":-1.000000"), std::string::npos);
  EXPECT_NE(json.find("\"watermark_stalled\":1"), std::string::npos);  // Alert tally.
  EXPECT_NE(json.find("\"totals\":{\"delivered_batches\":"), std::string::npos);
}

TEST(FleetHealthTest, PrometheusExpositionKeepsInfinitiesScrapeable) {
  const track::ObjectRegistry registry = three_object_registry();
  FleetService service(registry);
  const FacilityId healthy = service.add_facility(feed_config(2, 3));
  const FacilityId dark = service.add_facility(feed_config(2, 3));
  Rng rng(7);
  const sys::EventLog empty;
  for (int pass = 0; pass < 4; ++pass) {
    const double begin = 10.0 * pass;
    (void)service.ingest_pass(healthy, full_pass({1, 2, 3}, 2, begin), begin,
                              begin + 10.0, rng);
    (void)service.ingest_pass(dark, empty, begin, begin + 10.0, rng);
  }
  std::ostringstream out;
  write_health_prometheus(out, service.health_snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE rfidsim_fleet_health_facilities gauge\n"
                      "rfidsim_fleet_health_facilities 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_stalled_facilities 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_min_watermark_seconds -1.000000\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_watermark_stalled{facility=\"" +
                      std::to_string(dark) + "\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_watermark_age_seconds{facility=\"" +
                      std::to_string(dark) + "\"} +Inf\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_alerts{facility=\"" +
                      std::to_string(dark) + "\",type=\"watermark_stalled\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_watermark_seconds{facility=\"" +
                      std::to_string(healthy) + "\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rfidsim_fleet_health_provenance_dropped_records "
                      "gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_flight_dump_failures "),
            std::string::npos);
  EXPECT_NE(text.find("rfidsim_fleet_health_crash_handler_installed "),
            std::string::npos);
}

/// The always-on contract, stated as an equality: the serialized snapshot
/// of an identical run must be byte-identical with the obs master switch
/// on and off (and the OBS=OFF CI job re-runs this whole file compiled
/// out).
TEST(FleetHealthTest, SnapshotIsByteIdenticalWithHooksOff) {
  const track::ObjectRegistry registry = three_object_registry();
  const auto run = [&registry] {
    FleetService service(registry);
    const FacilityId healthy = service.add_facility(feed_config(2, 3));
    const FacilityId dark = service.add_facility(feed_config(2, 3));
    Rng rng(7);
    const sys::EventLog empty;
    for (int pass = 0; pass < 4; ++pass) {
      const double begin = 10.0 * pass;
      (void)service.ingest_pass(healthy, full_pass({1, 2, 3}, 2, begin), begin,
                                begin + 10.0, rng);
      (void)service.ingest_pass(dark, empty, begin, begin + 10.0, rng);
    }
    std::ostringstream json;
    write_health_json(json, service.health_snapshot());
    std::ostringstream prom;
    write_health_prometheus(prom, service.health_snapshot());
    return json.str() + prom.str();
  };
  const bool saved = obs::enabled();
  obs::set_enabled(true);
  const std::string with_hooks = run();
  obs::set_enabled(false);
  const std::string without_hooks = run();
  obs::set_enabled(saved);
  EXPECT_EQ(with_hooks, without_hooks);
}

/// End-to-end provenance: one clean pass leaves every store-bound batch a
/// complete hop chain enqueued -> encoded -> delivered -> validated ->
/// merged in the process-wide log. Under -DRFIDSIM_OBS=OFF the log stays
/// empty but the ids themselves are still minted (plumbing, not telemetry).
TEST(FleetHealthTest, IngestPassLeavesACompleteProvenanceChain) {
  const bool saved = obs::enabled();
  obs::set_enabled(true);
  obs::provenance_log().clear();
  obs::clear_flight_recorder();

  const track::ObjectRegistry registry = three_object_registry();
  FleetService service(registry);
  const FacilityId facility = service.add_facility(feed_config(2, 3));
  Rng rng(7);
  const FeedPassResult result =
      service.ingest_pass(facility, full_pass({1, 2, 3}, 2, 0.0), 0.0, 10.0, rng);
  ASSERT_FALSE(result.batches.empty());
  const std::uint64_t id = result.batches[0].batch_id;
  EXPECT_NE(id, 0u);  // Minted in every build.

  const std::vector<obs::ProvenanceRecord> chain = obs::provenance_log().history(id);
  obs::provenance_log().clear();
  obs::clear_flight_recorder();
  obs::set_enabled(saved);
#ifdef RFIDSIM_OBS_DISABLED
  EXPECT_TRUE(chain.empty());
#else
  // The expected hops must appear in pipeline order; late/stale records
  // may interleave, so assert the subsequence rather than the whole chain.
  const obs::BatchHop expected[] = {
      obs::BatchHop::kEnqueued, obs::BatchHop::kEncoded,
      obs::BatchHop::kDelivered, obs::BatchHop::kValidated,
      obs::BatchHop::kMerged};
  std::size_t next = 0;
  for (const obs::ProvenanceRecord& record : chain) {
    EXPECT_EQ(record.batch_id, id);
    if (next < std::size(expected) && record.hop == expected[next]) ++next;
  }
  EXPECT_EQ(next, std::size(expected))
      << "chain stopped before " << obs::batch_hop_name(expected[next]);
#endif
}

}  // namespace
}  // namespace rfidsim::fleet
