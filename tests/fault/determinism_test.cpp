// Seed determinism of the fault layer, end to end: identical seeds must
// give identical fault schedules AND identical event logs, with faults
// enabled and disabled alike — reproducibility is the whole point of a
// seeded fault injector.
#include <gtest/gtest.h>

#include "reliability/calibration.hpp"
#include "reliability/scenarios.hpp"
#include "system/event_io.hpp"
#include "system/portal.hpp"

namespace rfidsim {
namespace {

reliability::Scenario faulty_scenario(const fault::FaultConfig& faults) {
  reliability::ObjectScenarioOptions opt;
  opt.portal.antenna_count = 2;
  opt.portal.reader_count = 2;
  reliability::Scenario sc = reliability::make_object_tracking_scenario(
      opt, reliability::CalibrationProfile::paper2006());
  sc.portal.faults = faults;
  return sc;
}

fault::FaultConfig all_faults() {
  fault::FaultConfig f;
  f.reader.mtbf_s = 2.0;
  f.reader.mttr_s = 0.5;
  f.antenna.probability = 0.2;
  f.jamming.mean_interarrival_s = 1.5;
  f.jamming.mean_burst_s = 0.2;
  return f;
}

TEST(FaultDeterminismTest, SameSeedSameScheduleAndSameLog) {
  const reliability::Scenario sc = faulty_scenario(all_faults());

  std::string csv1, csv2;
  std::vector<std::vector<fault::TimeWindow>> outages1, outages2;
  {
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(12345);
    csv1 = sys::to_csv(sim.run(rng));
    outages1 = sim.fault_schedule().reader_outages();
  }
  {
    sys::PortalSimulator sim(sc.scene, sc.portal);
    Rng rng(12345);
    csv2 = sys::to_csv(sim.run(rng));
    outages2 = sim.fault_schedule().reader_outages();
  }
  EXPECT_EQ(csv1, csv2);
  ASSERT_EQ(outages1.size(), outages2.size());
  for (std::size_t r = 0; r < outages1.size(); ++r) {
    ASSERT_EQ(outages1[r].size(), outages2[r].size());
    for (std::size_t i = 0; i < outages1[r].size(); ++i) {
      EXPECT_EQ(outages1[r][i].begin_s, outages2[r][i].begin_s);
      EXPECT_EQ(outages1[r][i].end_s, outages2[r][i].end_s);
    }
  }
}

TEST(FaultDeterminismTest, DefaultFaultConfigMatchesFaultFreeRun) {
  // A default (all-off) FaultConfig must not perturb the event stream:
  // same seed, with and without the faults member explicitly defaulted,
  // gives byte-identical CSV.
  reliability::ObjectScenarioOptions opt;
  const reliability::Scenario sc = reliability::make_object_tracking_scenario(
      opt, reliability::CalibrationProfile::paper2006());

  sys::PortalConfig with_default_faults = sc.portal;
  with_default_faults.faults = fault::FaultConfig{};

  sys::PortalSimulator a(sc.scene, sc.portal);
  sys::PortalSimulator b(sc.scene, with_default_faults);
  Rng ra(777), rb(777);
  EXPECT_EQ(sys::to_csv(a.run(ra)), sys::to_csv(b.run(rb)));
  for (const auto& rstats : a.stats().per_reader) {
    EXPECT_EQ(rstats.crashes, 0u);
    EXPECT_EQ(rstats.jammed_rounds, 0u);
    EXPECT_EQ(rstats.dead_antenna_rounds, 0u);
    EXPECT_EQ(rstats.downtime_s, 0.0);
  }
}

TEST(FaultDeterminismTest, CrashesShortenBusyTimeAndAreCounted) {
  fault::FaultConfig f;
  f.reader.mtbf_s = 1.0;  // Aggressive: several crashes in a 4 s pass.
  f.reader.mttr_s = 0.5;
  const reliability::Scenario sc = faulty_scenario(f);

  sys::PortalSimulator sim(sc.scene, sc.portal);
  Rng rng(5);
  (void)sim.run(rng);
  std::size_t crashes = 0;
  double downtime = 0.0;
  ASSERT_EQ(sim.stats().per_reader.size(), 2u);
  for (const auto& rstats : sim.stats().per_reader) {
    crashes += rstats.crashes;
    downtime += rstats.downtime_s;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(downtime, 0.0);
  // Busy time plus downtime cannot exceed the wall-clock window per reader.
  const double window = sc.portal.end_time_s - sc.portal.start_time_s;
  for (const auto& rstats : sim.stats().per_reader) {
    EXPECT_LE(rstats.busy_time_s + rstats.downtime_s,
              window + 0.1);  // One round may overhang the end.
  }
}

TEST(FaultDeterminismTest, DeadAntennasProduceNoReadsFromThem) {
  fault::FaultConfig f;
  f.antenna.probability = 1.0;  // Every cable severed.
  const reliability::Scenario sc = faulty_scenario(f);
  sys::PortalSimulator sim(sc.scene, sc.portal);
  Rng rng(6);
  const sys::EventLog log = sim.run(rng);
  EXPECT_TRUE(log.empty());
  std::size_t dead_rounds = 0;
  for (const auto& rstats : sim.stats().per_reader) {
    dead_rounds += rstats.dead_antenna_rounds;
  }
  EXPECT_GT(dead_rounds, 0u);
}

TEST(FaultDeterminismTest, PerReaderStatsSumToAggregates) {
  const reliability::Scenario sc = faulty_scenario(all_faults());
  sys::PortalSimulator sim(sc.scene, sc.portal);
  Rng rng(31);
  (void)sim.run(rng);
  const sys::PortalRunStats& st = sim.stats();
  std::size_t rounds = 0, total = 0, collisions = 0, successes = 0;
  double busy = 0.0;
  for (const auto& rstats : st.per_reader) {
    rounds += rstats.rounds;
    total += rstats.total_slots;
    collisions += rstats.collision_slots;
    successes += rstats.success_slots;
    busy += rstats.busy_time_s;
  }
  EXPECT_EQ(rounds, st.rounds);
  EXPECT_EQ(total, st.total_slots);
  EXPECT_EQ(collisions, st.collision_slots);
  EXPECT_EQ(successes, st.success_slots);
  EXPECT_DOUBLE_EQ(busy, st.busy_time_s);
}

}  // namespace
}  // namespace rfidsim
