#include "fault/corruption.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "system/event_io.hpp"

namespace rfidsim::fault {
namespace {

sys::EventLog make_log(std::size_t n) {
  sys::EventLog log;
  for (std::size_t i = 0; i < n; ++i) {
    sys::ReadEvent ev;
    ev.time_s = 0.01 * static_cast<double>(i);
    ev.tag = scene::TagId{100 + i};
    ev.reader_index = i % 2;
    ev.antenna_index = i % 3;
    ev.rssi = DbmPower(-55.0 - static_cast<double>(i % 7));
    log.push_back(ev);
  }
  return log;
}

TEST(CorruptLogTest, DefaultConfigIsIdentity) {
  const sys::EventLog log = make_log(50);
  Rng rng(1);
  CorruptionStats stats;
  const sys::EventLog out = corrupt_log(log, {}, rng, &stats);
  ASSERT_EQ(out.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(out[i].tag, log[i].tag);
    EXPECT_EQ(out[i].time_s, log[i].time_s);
  }
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.corrupted, 0u);
  EXPECT_EQ(stats.reordered, 0u);
}

TEST(CorruptLogTest, StatsAccountForSizeChange) {
  const sys::EventLog log = make_log(400);
  CorruptionConfig cfg;
  cfg.drop_probability = 0.1;
  cfg.duplicate_probability = 0.1;
  Rng rng(7);
  CorruptionStats stats;
  const sys::EventLog out = corrupt_log(log, cfg, rng, &stats);
  EXPECT_EQ(stats.input_records, log.size());
  EXPECT_EQ(out.size(), log.size() - stats.dropped + stats.duplicated);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
}

TEST(CorruptLogTest, BitFlipChangesExactlyOneBit) {
  const sys::EventLog log = make_log(1);
  CorruptionConfig cfg;
  cfg.corrupt_probability = 1.0;
  Rng rng(3);
  const sys::EventLog out = corrupt_log(log, cfg, rng, nullptr);
  ASSERT_EQ(out.size(), 1u);
  const std::uint64_t diff = out[0].tag.value ^ log[0].tag.value;
  EXPECT_NE(diff, 0u);
  EXPECT_EQ(diff & (diff - 1), 0u);  // Power of two: a single flipped bit.
}

TEST(CorruptLogTest, DeterministicGivenSeed) {
  const sys::EventLog log = make_log(200);
  CorruptionConfig cfg;
  cfg.drop_probability = 0.05;
  cfg.duplicate_probability = 0.05;
  cfg.corrupt_probability = 0.05;
  cfg.reorder_probability = 0.1;
  Rng a(99), b(99);
  const sys::EventLog o1 = corrupt_log(log, cfg, a, nullptr);
  const sys::EventLog o2 = corrupt_log(log, cfg, b, nullptr);
  ASSERT_EQ(o1.size(), o2.size());
  for (std::size_t i = 0; i < o1.size(); ++i) {
    EXPECT_EQ(o1[i].tag, o2[i].tag);
    EXPECT_EQ(o1[i].time_s, o2[i].time_s);
  }
}

TEST(CorruptLogTest, ReorderDisplacesRecords) {
  const sys::EventLog log = make_log(100);
  CorruptionConfig cfg;
  cfg.reorder_probability = 0.5;
  Rng rng(11);
  CorruptionStats stats;
  const sys::EventLog out = corrupt_log(log, cfg, rng, &stats);
  ASSERT_EQ(out.size(), log.size());
  EXPECT_GT(stats.reordered, 0u);
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].time_s < out[i - 1].time_s) ++inversions;
  }
  EXPECT_GT(inversions, 0u);
}

TEST(CorruptCsvTest, PreservesHeaderAndBreaksRows) {
  const std::string csv = sys::to_csv(make_log(200));
  CorruptionConfig cfg;
  cfg.corrupt_probability = 0.2;
  Rng rng(5);
  CorruptionStats stats;
  const std::string bad = corrupt_csv(csv, cfg, rng, &stats);
  EXPECT_EQ(bad.substr(0, bad.find('\n')), "time_s,tag,reader,antenna,rssi_dbm");
  EXPECT_GT(stats.corrupted, 0u);

  // The strict parser must choke; the lenient one must survive and count.
  EXPECT_THROW(sys::from_csv(bad), ConfigError);
  sys::ParseStats parse;
  const sys::EventLog parsed = sys::from_csv(bad, sys::ParseMode::Lenient, &parse);
  EXPECT_GT(parse.rows_bad, 0u);
  EXPECT_GT(parsed.size(), 0u);
  // Character mangling can still leave a parseable row (e.g. a flipped
  // digit), so rows_bad is at most the mangle count, and every input row
  // is accounted for.
  EXPECT_LE(parse.rows_bad, stats.corrupted);
  EXPECT_EQ(parse.rows_ok + parse.rows_bad, stats.input_records + stats.duplicated -
                                                stats.dropped);
}

TEST(CorruptCsvTest, TruncationCutsTheTail) {
  const std::string csv = sys::to_csv(make_log(50));
  CorruptionConfig cfg;
  cfg.truncate_probability = 1.0;
  Rng rng(17);
  CorruptionStats stats;
  const std::string bad = corrupt_csv(csv, cfg, rng, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(bad.size(), csv.size());
  // Lenient parse survives the torn final row.
  sys::ParseStats parse;
  (void)sys::from_csv(bad, sys::ParseMode::Lenient, &parse);
  EXPECT_GE(parse.rows_ok, 1u);
}

TEST(CorruptCsvTest, RejectsInvalidProbabilities) {
  CorruptionConfig cfg;
  cfg.drop_probability = -0.1;
  Rng rng(1);
  EXPECT_THROW(corrupt_csv("h\n", cfg, rng, nullptr), ConfigError);
  EXPECT_THROW(corrupt_log({}, cfg, rng, nullptr), ConfigError);
}

}  // namespace
}  // namespace rfidsim::fault
