#include "fault/schedule.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::fault {
namespace {

FaultConfig crashy() {
  FaultConfig cfg;
  cfg.reader.mtbf_s = 2.0;
  cfg.reader.mttr_s = 0.5;
  return cfg;
}

TEST(FaultScheduleTest, AllOffConfigYieldsEmptySchedule) {
  Rng rng(1);
  const FaultSchedule sched = FaultSchedule::sample({}, 2, 2, 0.0, 4.0, rng);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_TRUE(sched.reader_outages()[r].empty());
    EXPECT_FALSE(sched.reader_down(r, 1.0));
    EXPECT_EQ(sched.reader_downtime_s(r), 0.0);
  }
  EXPECT_FALSE(sched.antenna_dead(0));
  EXPECT_EQ(sched.jamming_loss_db(1.0), 0.0);
}

TEST(FaultScheduleTest, AllOffConfigConsumesNoRandomness) {
  Rng a(77), b(77);
  (void)FaultSchedule::sample({}, 4, 4, 0.0, 10.0, a);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(FaultScheduleTest, IdenticalSeedsGiveIdenticalSchedules) {
  FaultConfig cfg = crashy();
  cfg.antenna.probability = 0.3;
  cfg.jamming.mean_interarrival_s = 1.0;
  Rng a(42), b(42);
  const FaultSchedule s1 = FaultSchedule::sample(cfg, 3, 4, 0.0, 8.0, a);
  const FaultSchedule s2 = FaultSchedule::sample(cfg, 3, 4, 0.0, 8.0, b);

  ASSERT_EQ(s1.reader_outages().size(), s2.reader_outages().size());
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(s1.reader_outages()[r].size(), s2.reader_outages()[r].size());
    for (std::size_t i = 0; i < s1.reader_outages()[r].size(); ++i) {
      EXPECT_EQ(s1.reader_outages()[r][i].begin_s, s2.reader_outages()[r][i].begin_s);
      EXPECT_EQ(s1.reader_outages()[r][i].end_s, s2.reader_outages()[r][i].end_s);
    }
  }
  EXPECT_EQ(s1.dead_antennas(), s2.dead_antennas());
  ASSERT_EQ(s1.jamming_bursts().size(), s2.jamming_bursts().size());
  for (std::size_t i = 0; i < s1.jamming_bursts().size(); ++i) {
    EXPECT_EQ(s1.jamming_bursts()[i].begin_s, s2.jamming_bursts()[i].begin_s);
  }
}

TEST(FaultScheduleTest, DifferentSeedsGiveDifferentSchedules) {
  Rng a(1), b(2);
  const FaultSchedule s1 = FaultSchedule::sample(crashy(), 1, 1, 0.0, 100.0, a);
  const FaultSchedule s2 = FaultSchedule::sample(crashy(), 1, 1, 0.0, 100.0, b);
  ASSERT_FALSE(s1.reader_outages()[0].empty());
  ASSERT_FALSE(s2.reader_outages()[0].empty());
  EXPECT_NE(s1.reader_outages()[0][0].begin_s, s2.reader_outages()[0][0].begin_s);
}

TEST(FaultScheduleTest, OutageWindowsAreOrderedDisjointAndClamped) {
  Rng rng(9);
  const FaultSchedule sched = FaultSchedule::sample(crashy(), 2, 1, 1.0, 21.0, rng);
  for (const auto& windows : sched.reader_outages()) {
    double prev_end = 1.0;
    for (const TimeWindow& w : windows) {
      EXPECT_GE(w.begin_s, prev_end);
      EXPECT_GT(w.end_s, w.begin_s);
      EXPECT_LE(w.end_s, 21.0);
      prev_end = w.end_s;
    }
  }
}

TEST(FaultScheduleTest, ReaderDownTracksWindows) {
  Rng rng(5);
  const FaultSchedule sched = FaultSchedule::sample(crashy(), 1, 1, 0.0, 50.0, rng);
  ASSERT_FALSE(sched.reader_outages()[0].empty());
  const TimeWindow w = sched.reader_outages()[0].front();
  const double mid = 0.5 * (w.begin_s + w.end_s);
  EXPECT_TRUE(sched.reader_down(0, mid));
  EXPECT_FALSE(sched.reader_down(0, w.end_s));
  EXPECT_EQ(sched.reader_up_after(0, mid), w.end_s);
  EXPECT_EQ(sched.reader_up_after(0, w.begin_s - 1e-6), w.begin_s - 1e-6);
}

TEST(FaultScheduleTest, DowntimeSumsWindows) {
  Rng rng(13);
  const FaultSchedule sched = FaultSchedule::sample(crashy(), 1, 1, 0.0, 40.0, rng);
  double expected = 0.0;
  for (const TimeWindow& w : sched.reader_outages()[0]) expected += w.end_s - w.begin_s;
  EXPECT_DOUBLE_EQ(sched.reader_downtime_s(0), expected);
}

TEST(FaultScheduleTest, MtbfControlsCrashFrequency) {
  // Statistical sanity over a long window: mean #crashes ~ duration/(MTBF+MTTR).
  FaultConfig cfg;
  cfg.reader.mtbf_s = 4.0;
  cfg.reader.mttr_s = 1.0;
  Rng rng(21);
  std::size_t crashes = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    Rng fork = rng.fork(static_cast<std::uint64_t>(i));
    crashes += FaultSchedule::sample(cfg, 1, 1, 0.0, 100.0, fork).reader_outages()[0].size();
  }
  const double mean = static_cast<double>(crashes) / trials;
  EXPECT_GT(mean, 100.0 / 5.0 * 0.7);
  EXPECT_LT(mean, 100.0 / 5.0 * 1.3);
}

TEST(FaultScheduleTest, AntennaOutageProbabilityExtremes) {
  FaultConfig all;
  all.antenna.probability = 1.0;
  Rng rng(3);
  const FaultSchedule sched = FaultSchedule::sample(all, 1, 3, 0.0, 1.0, rng);
  EXPECT_TRUE(sched.antenna_dead(0));
  EXPECT_TRUE(sched.antenna_dead(1));
  EXPECT_TRUE(sched.antenna_dead(2));
  EXPECT_FALSE(sched.antenna_dead(3));  // Out of range is not dead.
}

TEST(FaultScheduleTest, JammingBurstsCarryConfiguredLoss) {
  FaultConfig cfg;
  cfg.jamming.mean_interarrival_s = 0.5;
  cfg.jamming.mean_burst_s = 0.3;
  cfg.jamming.extra_loss_db = 17.0;
  Rng rng(8);
  const FaultSchedule sched = FaultSchedule::sample(cfg, 1, 1, 0.0, 30.0, rng);
  ASSERT_FALSE(sched.jamming_bursts().empty());
  const TimeWindow w = sched.jamming_bursts().front();
  EXPECT_EQ(sched.jamming_loss_db(0.5 * (w.begin_s + w.end_s)), 17.0);
  EXPECT_EQ(sched.jamming_loss_db(w.begin_s - 1e-6), 0.0);
}

TEST(FaultScheduleTest, RejectsBadConfig) {
  Rng rng(1);
  FaultConfig bad_mttr;
  bad_mttr.reader.mtbf_s = 1.0;
  bad_mttr.reader.mttr_s = 0.0;
  EXPECT_THROW(FaultSchedule::sample(bad_mttr, 1, 1, 0.0, 1.0, rng), ConfigError);
  FaultConfig bad_prob;
  bad_prob.antenna.probability = 1.5;
  EXPECT_THROW(FaultSchedule::sample(bad_prob, 1, 1, 0.0, 1.0, rng), ConfigError);
  EXPECT_THROW(FaultSchedule::sample({}, 1, 1, 2.0, 1.0, rng), ConfigError);
}

}  // namespace
}  // namespace rfidsim::fault
