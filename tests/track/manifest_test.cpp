#include "track/manifest.hpp"

#include <gtest/gtest.h>

namespace rfidsim::track {
namespace {

PassReport pass_with(std::initializer_list<std::uint64_t> ids) {
  PassReport report;
  for (std::uint64_t id : ids) report.objects_identified.insert(ObjectId{id});
  return report;
}

Manifest manifest_with(std::initializer_list<std::uint64_t> ids) {
  Manifest m;
  for (std::uint64_t id : ids) m.expected.insert(ObjectId{id});
  return m;
}

TEST(ManifestTest, PerfectMatchIsCleanAndComplete) {
  const ManifestReport r = verify_manifest(manifest_with({1, 2, 3}), pass_with({1, 2, 3}));
  EXPECT_EQ(r.confirmed.size(), 3u);
  EXPECT_TRUE(r.missing.empty());
  EXPECT_TRUE(r.unexpected.empty());
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.clean());
}

TEST(ManifestTest, MissedReadsShowAsMissing) {
  const ManifestReport r = verify_manifest(manifest_with({1, 2, 3}), pass_with({1}));
  EXPECT_EQ(r.confirmed.size(), 1u);
  ASSERT_EQ(r.missing.size(), 2u);
  EXPECT_FALSE(r.complete());
  // Deterministic ordering.
  EXPECT_EQ(r.missing[0], ObjectId{2});
  EXPECT_EQ(r.missing[1], ObjectId{3});
}

TEST(ManifestTest, StraysShowAsUnexpected) {
  const ManifestReport r = verify_manifest(manifest_with({1}), pass_with({1, 9}));
  EXPECT_TRUE(r.complete());
  EXPECT_FALSE(r.clean());
  ASSERT_EQ(r.unexpected.size(), 1u);
  EXPECT_EQ(r.unexpected[0], ObjectId{9});
}

TEST(ManifestTest, EmptyManifestEmptyPass) {
  const ManifestReport r = verify_manifest({}, PassReport{});
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.complete());
}

TEST(GateTest, AuthorizedObjectOpens) {
  AccessPolicy policy;
  policy.authorized = {ObjectId{1}};
  EXPECT_EQ(decide_gate(policy, pass_with({1})), GateAction::Open);
}

TEST(GateTest, UnauthorizedObjectAlarms) {
  AccessPolicy policy;
  policy.authorized = {ObjectId{1}};
  EXPECT_EQ(decide_gate(policy, pass_with({2})), GateAction::Alarm);
}

TEST(GateTest, MixedPresenceAlarms) {
  // Tailgating: an authorized badge does not excuse an unauthorized one.
  AccessPolicy policy;
  policy.authorized = {ObjectId{1}};
  EXPECT_EQ(decide_gate(policy, pass_with({1, 2})), GateAction::Alarm);
}

TEST(GateTest, NoIdentificationPolicyDependent) {
  AccessPolicy secure;
  secure.alarm_on_unidentified = true;
  EXPECT_EQ(decide_gate(secure, PassReport{}), GateAction::Alarm);
  AccessPolicy logging;
  logging.alarm_on_unidentified = false;
  EXPECT_EQ(decide_gate(logging, PassReport{}), GateAction::Ignore);
}

TEST(GateTest, MissedReadOfAuthorizedBadgeIsTheFalseAlarm) {
  // The paper's point, in action form: at 63% read reliability a secure
  // gate false-alarms on legitimate staff 37% of the time.
  AccessPolicy policy;
  policy.authorized = {ObjectId{1}};
  // The badge was present but not read: the pass is empty.
  EXPECT_EQ(decide_gate(policy, PassReport{}), GateAction::Alarm);
}

}  // namespace
}  // namespace rfidsim::track
