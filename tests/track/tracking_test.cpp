#include "track/tracking.hpp"

#include <gtest/gtest.h>

namespace rfidsim::track {
namespace {

using scene::TagId;
using sys::EventLog;
using sys::ReadEvent;

ReadEvent event(std::uint64_t tag, double t) {
  ReadEvent ev;
  ev.tag = TagId{tag};
  ev.time_s = t;
  return ev;
}

struct Fixture {
  ObjectRegistry registry;
  ObjectId crate;
  ObjectId person;

  Fixture() {
    crate = registry.add_object("crate");
    person = registry.add_object("person");
    registry.bind_tag(TagId{1}, crate);
    registry.bind_tag(TagId{2}, crate);
    registry.bind_tag(TagId{3}, person);
  }
};

TEST(TrackingTest, EmptyLogIdentifiesNothing) {
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  const PassReport report = analyzer.analyze({});
  EXPECT_TRUE(report.tags_seen.empty());
  EXPECT_TRUE(report.objects_identified.empty());
  EXPECT_EQ(analyzer.tracking_fraction({}), 0.0);
  EXPECT_EQ(analyzer.read_fraction({}), 0.0);
}

TEST(TrackingTest, OneTagIdentifiesItsObject) {
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  const EventLog log{event(2, 1.0)};
  const PassReport report = analyzer.analyze(log);
  EXPECT_TRUE(report.objects_identified.contains(f.crate));
  EXPECT_FALSE(report.objects_identified.contains(f.person));
  EXPECT_TRUE(analyzer.identified(log, f.crate));
  EXPECT_FALSE(analyzer.identified(log, f.person));
}

TEST(TrackingTest, DuplicateReadsCollapse) {
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  const EventLog log{event(1, 0.1), event(1, 0.2), event(1, 0.3)};
  const PassReport report = analyzer.analyze(log);
  EXPECT_EQ(report.tags_seen.size(), 1u);
  EXPECT_EQ(report.reads_per_tag.at(TagId{1}), 3u);
  EXPECT_EQ(report.objects_identified.size(), 1u);
}

TEST(TrackingTest, FirstSeenTimeIsEarliest) {
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  const EventLog log{event(1, 2.0), event(2, 0.5), event(1, 3.0)};
  const PassReport report = analyzer.analyze(log);
  EXPECT_DOUBLE_EQ(report.first_seen_s.at(f.crate), 0.5);
}

TEST(TrackingTest, FractionsCountRegistryWide) {
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  const EventLog log{event(1, 0.1), event(3, 0.2)};
  // 2 of 3 tags seen, 2 of 2 objects identified.
  EXPECT_NEAR(analyzer.read_fraction(log), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(analyzer.tracking_fraction(log), 1.0, 1e-12);
}

TEST(TrackingTest, UnknownTagsCountForReadsButNoObject) {
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  const EventLog log{event(77, 0.1)};
  const PassReport report = analyzer.analyze(log);
  EXPECT_EQ(report.tags_seen.size(), 1u);
  EXPECT_TRUE(report.objects_identified.empty());
}

TEST(TrackingTest, MultiTagRedundancyNeedsOnlyOne) {
  // The paper's tracking-reliability definition: any of the object's tags
  // suffices.
  const Fixture f;
  const TrackingAnalyzer analyzer(f.registry);
  EXPECT_TRUE(analyzer.identified({event(1, 0.0)}, f.crate));
  EXPECT_TRUE(analyzer.identified({event(2, 0.0)}, f.crate));
}

}  // namespace
}  // namespace rfidsim::track
