#include "track/zone_filter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::track {
namespace {

using scene::TagId;
using sys::EventLog;
using sys::ReadEvent;

ReadEvent event(std::uint64_t tag, double t, double rssi_dbm) {
  ReadEvent ev;
  ev.tag = TagId{tag};
  ev.time_s = t;
  ev.rssi = DbmPower(rssi_dbm);
  return ev;
}

TEST(ZoneFilterTest, InvalidParamsThrow) {
  ZoneFilterParams p;
  p.window_s = 0.0;
  EXPECT_THROW(filter_zone({}, p), ConfigError);
  p = {};
  p.min_reads = 0;
  EXPECT_THROW(filter_zone({}, p), ConfigError);
}

TEST(ZoneFilterTest, EmptyLogPassesThrough) {
  const ZoneFilterResult r = filter_zone({});
  EXPECT_TRUE(r.in_zone.empty());
  EXPECT_TRUE(r.stray.empty());
}

TEST(ZoneFilterTest, StrongPeakKeepsAllOfTheTagsReads) {
  // One strong closest-approach read rescues the tag's weak reads too:
  // the classification is per tag, not per read.
  const EventLog log{event(1, 0.0, -65.0), event(1, 1.0, -45.0), event(1, 2.0, -66.0)};
  const ZoneFilterResult r = filter_zone(log);
  EXPECT_EQ(r.in_zone.size(), 3u);
  EXPECT_TRUE(r.stray.empty());
}

TEST(ZoneFilterTest, WeakPeakSparseTagIsStray) {
  const EventLog log{event(1, 0.0, -65.0), event(1, 3.0, -68.0)};
  const ZoneFilterResult r = filter_zone(log);
  EXPECT_TRUE(r.in_zone.empty());
  EXPECT_EQ(r.stray.size(), 2u);
}

TEST(ZoneFilterTest, EdgeDwellerPassesViaDensity) {
  // Just below the peak threshold but within the slack, and three reads in
  // under a second: a tag dwelling at the zone edge.
  const EventLog log{event(1, 0.0, -53.0), event(1, 0.4, -54.0), event(1, 0.8, -52.5)};
  const ZoneFilterResult r = filter_zone(log);
  EXPECT_EQ(r.in_zone.size(), 3u);
}

TEST(ZoneFilterTest, DenseButDeepReadsStayStray) {
  // Below even the slack floor: density alone does not rescue.
  const EventLog log{event(1, 0.0, -60.0), event(1, 0.3, -61.0), event(1, 0.6, -60.0),
                     event(1, 0.9, -62.0)};
  const ZoneFilterResult r = filter_zone(log);
  EXPECT_TRUE(r.in_zone.empty());
  EXPECT_EQ(r.stray.size(), 4u);
}

TEST(ZoneFilterTest, NearMissReadsSpreadOutStayStray) {
  ZoneFilterParams p;  // window 1 s, 3 reads.
  const EventLog log{event(1, 0.0, -53.0), event(1, 2.0, -53.0), event(1, 4.0, -53.0)};
  const ZoneFilterResult r = filter_zone(log, p);
  EXPECT_TRUE(r.in_zone.empty());
}

TEST(ZoneFilterTest, TagsAreJudgedIndependently) {
  const EventLog log{
      event(1, 0.0, -45.0),                        // Strong peak: in zone.
      event(2, 0.1, -60.0),                        // Weak lone read: stray.
      event(3, 0.2, -53.0), event(3, 0.5, -53.0),  // Two near-misses: not enough.
  };
  const ZoneFilterResult r = filter_zone(log);
  EXPECT_EQ(r.in_zone.size(), 1u);
  EXPECT_EQ(r.stray.size(), 3u);
}

TEST(ZoneFilterTest, ThresholdsAreConfigurable) {
  ZoneFilterParams lax;
  lax.min_peak_rssi_dbm = -70.0;
  const EventLog log{event(1, 0.0, -60.0)};
  EXPECT_EQ(filter_zone(log, lax).in_zone.size(), 1u);
  ZoneFilterParams strict;
  strict.min_peak_rssi_dbm = -40.0;
  EXPECT_EQ(filter_zone(log, strict).stray.size(), 1u);
}

TEST(BackgroundTest, InvalidMinPassesThrows) {
  EXPECT_THROW(detect_background({}, 0), ConfigError);
}

TEST(BackgroundTest, EmptyPassesNoBackground) {
  EXPECT_TRUE(detect_background({}, 2).empty());
  EXPECT_TRUE(detect_background({{}, {}}, 2).empty());
}

TEST(BackgroundTest, PersistentTagsAreFlagged) {
  const std::vector<EventLog> passes{
      {event(1, 0.0, -50.0), event(7, 0.1, -60.0)},
      {event(2, 0.0, -50.0), event(7, 0.1, -60.0)},
      {event(3, 0.0, -50.0), event(7, 0.1, -60.0)},
  };
  const auto background = detect_background(passes, 2);
  EXPECT_EQ(background.size(), 1u);
  EXPECT_TRUE(background.contains(TagId{7}));
}

TEST(BackgroundTest, DuplicatesWithinOnePassCountOnce) {
  const std::vector<EventLog> passes{
      {event(7, 0.0, -60.0), event(7, 0.1, -60.0), event(7, 0.2, -60.0)},
      {event(1, 0.0, -50.0)},
  };
  // Tag 7 appeared in only one pass despite three reads.
  EXPECT_TRUE(detect_background(passes, 2).empty());
}

TEST(BackgroundTest, RemoveBackgroundDropsOnlyFlaggedTags) {
  const EventLog log{event(1, 0.0, -50.0), event(7, 0.1, -60.0), event(1, 0.2, -51.0)};
  const std::unordered_set<TagId> background{TagId{7}};
  const EventLog clean = remove_background(log, background);
  ASSERT_EQ(clean.size(), 2u);
  EXPECT_EQ(clean[0].tag, TagId{1});
  EXPECT_EQ(clean[1].tag, TagId{1});
}

TEST(ZoneFilterTest, PartitionIsComplete) {
  const EventLog log{event(1, 0.0, -45.0), event(2, 0.1, -80.0),
                     event(3, 0.2, -60.0), event(4, 0.3, -90.0)};
  const ZoneFilterResult r = filter_zone(log);
  EXPECT_EQ(r.in_zone.size() + r.stray.size(), log.size());
}

}  // namespace
}  // namespace rfidsim::track
