#include "track/resilient_ingest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "fault/corruption.hpp"
#include "system/event_io.hpp"
#include "track/tracking.hpp"

namespace rfidsim::track {
namespace {

sys::ReadEvent event(double t, std::uint64_t tag, std::size_t reader,
                     std::size_t antenna, double rssi = -55.0) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  ev.antenna_index = antenna;
  ev.rssi = DbmPower(rssi);
  return ev;
}

sys::EventLog dense_log(std::size_t n) {
  sys::EventLog log;
  for (std::size_t i = 0; i < n; ++i) {
    log.push_back(event(0.02 * static_cast<double>(i % 190), 1 + i % 12, i % 2, i % 2));
  }
  return log;
}

TEST(ResilientIngestTest, CleanLogPassesThroughUntouched) {
  ResilientIngest ingest;
  sys::EventLog log{event(0.1, 1, 0, 0), event(0.5, 2, 0, 0), event(0.9, 1, 0, 0)};
  const IngestReport report = ingest.ingest(log, 0.0, 1.0);
  EXPECT_EQ(report.accepted, 3u);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.reordered, 0u);
  EXPECT_FALSE(report.degraded());
}

TEST(ResilientIngestTest, QuarantinesImplausibleRecordsWithoutThrowing) {
  IngestConfig cfg;
  cfg.reader_count = 2;
  cfg.antenna_count = 2;
  ResilientIngest ingest(cfg);
  sys::EventLog log{
      event(0.1, 1, 0, 0),
      event(std::numeric_limits<double>::quiet_NaN(), 2, 0, 0),  // NaN time.
      event(0.2, 3, 0, 0, 55.0),                                 // +55 dBm: absurd.
      event(0.3, 4, 9, 0),                                       // No reader 9.
      event(0.4, 5, 0, 7),                                       // No antenna 7.
      event(99.0, 6, 0, 0),                                      // Outside window.
      event(0.5, 7, 1, 1),
  };
  const IngestReport report = ingest.ingest(log, 0.0, 1.0);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.quarantined, 5u);
  EXPECT_EQ(report.quarantine_samples.size(), 5u);
}

TEST(ResilientIngestTest, RegistryCatchesBitFlippedTags) {
  ObjectRegistry registry;
  const ObjectId box = registry.add_object("box");
  registry.bind_tag(scene::TagId{1001}, box);

  IngestConfig cfg;
  cfg.registry = &registry;
  ResilientIngest ingest(cfg);
  sys::EventLog log{event(0.1, 1001, 0, 0), event(0.2, 1001 ^ 64, 0, 0)};
  const IngestReport report = ingest.ingest(log, 0.0, 1.0);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.quarantined, 1u);
}

TEST(ResilientIngestTest, CollapsesTransportDuplicates) {
  ResilientIngest ingest;
  sys::EventLog log{
      event(0.100, 1, 0, 0), event(0.100, 1, 0, 0),   // Exact duplicate.
      event(0.1005, 1, 0, 0),                         // Within dedup window.
      event(0.200, 1, 0, 0),                          // A genuine re-read.
      event(0.100, 1, 1, 0),                          // Other reader: kept.
  };
  const IngestReport report = ingest.ingest(log, 0.0, 1.0);
  EXPECT_EQ(report.accepted, 3u);
  EXPECT_EQ(report.duplicates, 2u);
}

TEST(ResilientIngestTest, RestoresOrderAndCountsInversions) {
  ResilientIngest ingest;
  sys::EventLog log{event(0.5, 1, 0, 0), event(0.1, 2, 0, 0), event(0.3, 3, 0, 0)};
  const IngestReport report = ingest.ingest(log, 0.0, 1.0);
  EXPECT_EQ(report.reordered, 2u);
  ASSERT_EQ(report.events.size(), 3u);
  EXPECT_LT(report.events[0].time_s, report.events[1].time_s);
  EXPECT_LT(report.events[1].time_s, report.events[2].time_s);
}

TEST(ResilientIngestTest, DetectsSilenceGapsAndDeclaresReadersDown) {
  IngestConfig cfg;
  cfg.reader_count = 2;
  cfg.silence_gap_s = 1.0;
  ResilientIngest ingest(cfg);
  // Reader 0 speaks throughout; reader 1 dies at t = 2.
  sys::EventLog log;
  for (int i = 0; i < 80; ++i) log.push_back(event(0.1 * i, 1, 0, 0));
  for (int i = 0; i < 20; ++i) log.push_back(event(0.1 * i, 2, 1, 1));
  const IngestReport report = ingest.ingest(log, 0.0, 8.0);
  ASSERT_EQ(report.degraded_readers.size(), 1u);
  EXPECT_EQ(report.degraded_readers[0], 1u);
  EXPECT_TRUE(report.degraded());
  bool found_tail_gap = false;
  for (const SilenceGap& gap : report.gaps) {
    if (gap.reader == 1 && gap.to_window_end) {
      found_tail_gap = true;
      EXPECT_NEAR(gap.begin_s, 1.9, 1e-9);
      EXPECT_EQ(gap.end_s, 8.0);
    }
  }
  EXPECT_TRUE(found_tail_gap);
}

TEST(ResilientIngestTest, KnownReaderThatNeverSpeaksIsDown) {
  IngestConfig cfg;
  cfg.reader_count = 2;
  ResilientIngest ingest(cfg);
  sys::EventLog log;
  for (int i = 0; i < 40; ++i) log.push_back(event(0.1 * i, 1, 0, 0));
  const IngestReport report = ingest.ingest(log, 0.0, 4.0);
  ASSERT_EQ(report.degraded_readers.size(), 1u);
  EXPECT_EQ(report.degraded_readers[0], 1u);
}

TEST(ResilientIngestTest, SurvivesHeavilyCorruptedCsv) {
  // Acceptance criterion: >= 5% bad/dropped/duplicated rows, no throw,
  // quarantine counters populated.
  const sys::EventLog log = dense_log(1000);
  const std::string csv = sys::to_csv(log);
  fault::CorruptionConfig corr;
  corr.drop_probability = 0.03;
  corr.duplicate_probability = 0.03;
  corr.corrupt_probability = 0.05;
  corr.reorder_probability = 0.05;
  Rng rng(2024);
  fault::CorruptionStats cstats;
  const std::string bad = fault::corrupt_csv(csv, corr, rng, &cstats);
  ASSERT_GE(cstats.dropped + cstats.duplicated + cstats.corrupted, 50u);

  IngestConfig cfg;
  cfg.reader_count = 2;
  cfg.antenna_count = 2;
  ResilientIngest ingest(cfg);
  IngestReport report;
  ASSERT_NO_THROW(report = ingest.ingest_csv(bad, 0.0, 4.0));
  EXPECT_GT(report.parse.rows_bad, 0u);
  EXPECT_GT(report.duplicates, 0u);
  EXPECT_GT(report.accepted, 800u);  // The vast majority survives.
  EXPECT_EQ(report.accepted, report.events.size());
  // Everything the corruptor injected is either parsed, parse-failed, or
  // quarantined/deduped — nothing vanishes unaccounted.
  EXPECT_EQ(report.parse.rows_ok,
            report.accepted + report.duplicates + report.quarantined);
}

TEST(ResilientIngestTest, CsvPathMatchesInMemoryPathOnCleanInput) {
  const sys::EventLog log = dense_log(200);
  ResilientIngest ingest;
  const IngestReport a = ingest.ingest(log, 0.0, 4.0);
  const IngestReport b = ingest.ingest_csv(sys::to_csv(log), 0.0, 4.0);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.duplicates, b.duplicates);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].tag, b.events[i].tag);
  }
}

TEST(ResilientIngestTest, WrongHeaderStillThrows) {
  ResilientIngest ingest;
  EXPECT_THROW(ingest.ingest_csv(std::string("not,a,log\n1,2,3\n"), 0.0, 1.0),
               ConfigError);
}

TEST(ResilientIngestTest, OutOfOrderBatchArrivalConvergesToSortedStream) {
  // Two upload batches from the same pass delivered in the wrong order
  // (the second flush arrived first): the ingest output must be the same
  // time-sorted stream as the in-order delivery, with the inversion
  // tallied, not dropped.
  const sys::EventLog batch1{event(0.1, 1, 0, 0), event(0.2, 2, 0, 0),
                             event(0.3, 3, 0, 0)};
  const sys::EventLog batch2{event(0.6, 4, 1, 0), event(0.7, 5, 1, 0),
                             event(0.8, 1, 1, 0)};
  sys::EventLog in_order(batch1);
  in_order.insert(in_order.end(), batch2.begin(), batch2.end());
  sys::EventLog swapped(batch2);
  swapped.insert(swapped.end(), batch1.begin(), batch1.end());

  ResilientIngest ingest;
  const IngestReport a = ingest.ingest(in_order, 0.0, 1.0);
  const IngestReport b = ingest.ingest(swapped, 0.0, 1.0);
  EXPECT_EQ(a.reordered, 0u);
  EXPECT_EQ(b.reordered, 3u);  // All of batch1 arrived behind batch2's times.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].tag, b.events[i].tag);
    EXPECT_DOUBLE_EQ(a.events[i].time_s, b.events[i].time_s);
  }
}

TEST(ResilientIngestTest, DuplicateBatchArrivalCollapsesToOneCopy) {
  // Middleware re-delivered a whole batch: every record is an exact
  // repeat of an already-seen (tag, reader, antenna, time) and must
  // collapse as a transport duplicate, leaving the accepted stream
  // identical to the single-delivery run.
  const sys::EventLog batch{event(0.1, 1, 0, 0), event(0.2, 2, 0, 1),
                            event(0.3, 3, 1, 0)};
  sys::EventLog redelivered(batch);
  redelivered.insert(redelivered.end(), batch.begin(), batch.end());

  ResilientIngest ingest;
  const IngestReport once = ingest.ingest(batch, 0.0, 1.0);
  const IngestReport twice = ingest.ingest(redelivered, 0.0, 1.0);
  EXPECT_EQ(twice.accepted, once.accepted);
  EXPECT_EQ(twice.duplicates, batch.size());
  ASSERT_EQ(twice.events.size(), once.events.size());
  for (std::size_t i = 0; i < once.events.size(); ++i) {
    EXPECT_EQ(twice.events[i].tag, once.events[i].tag);
  }
}

TEST(ResilientIngestTest, ValidateEventMatchesIngestQuarantineRules) {
  IngestConfig cfg;
  cfg.reader_count = 2;
  cfg.antenna_count = 2;
  const ResilientIngest ingest(cfg);
  const sys::EventLog log{
      event(0.1, 1, 0, 0),                                       // Clean.
      event(std::numeric_limits<double>::quiet_NaN(), 2, 0, 0),  // NaN time.
      event(0.2, 3, 0, 0, 55.0),                                 // Absurd RSSI.
      event(0.3, 4, 9, 0),                                       // No reader 9.
      event(99.0, 6, 0, 0),                                      // Outside window.
  };
  // Record-by-record verdicts agree with the pass-level tallies...
  std::size_t rejected = 0;
  for (const sys::ReadEvent& ev : log) {
    std::string reason;
    if (!validate_event(ev, cfg, 0.0, 1.0, &reason)) {
      ++rejected;
      EXPECT_FALSE(reason.empty());
    }
  }
  const IngestReport report = ingest.ingest(log, 0.0, 1.0);
  EXPECT_EQ(report.quarantined, rejected);
  // ...and the sampled reasons are the exact strings ingest() records.
  ASSERT_EQ(report.quarantine_samples.size(), rejected);
  std::size_t sample = 0;
  for (const sys::ReadEvent& ev : log) {
    std::string reason;
    if (!validate_event(ev, cfg, 0.0, 1.0, &reason)) {
      EXPECT_EQ(report.quarantine_samples[sample++], reason);
    }
  }
}

TEST(ResilientIngestTest, RejectsBadConfig) {
  IngestConfig inverted;
  inverted.min_rssi_dbm = 0.0;
  inverted.max_rssi_dbm = -10.0;
  EXPECT_THROW(ResilientIngest{inverted}, ConfigError);
  IngestConfig negative;
  negative.dedup_window_s = -1.0;
  EXPECT_THROW(ResilientIngest{negative}, ConfigError);
  ResilientIngest ok;
  EXPECT_THROW(ok.ingest({}, 1.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace rfidsim::track
