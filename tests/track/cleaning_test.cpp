#include "track/cleaning.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::track {
namespace {

using scene::TagId;
using sys::EventLog;
using sys::ReadEvent;

ReadEvent event(std::uint64_t tag, double t) {
  ReadEvent ev;
  ev.tag = TagId{tag};
  ev.time_s = t;
  return ev;
}

TEST(WindowSmootherTest, InvalidWindowThrows) {
  EXPECT_THROW(WindowSmoother(0.0), ConfigError);
  EXPECT_THROW(WindowSmoother(-1.0), ConfigError);
}

TEST(WindowSmootherTest, EmptyLogNoPresence) {
  const WindowSmoother smoother(1.0);
  EXPECT_TRUE(smoother.smooth({}).empty());
}

TEST(WindowSmootherTest, GapsWithinWindowMerge) {
  const WindowSmoother smoother(1.0);
  const EventLog log{event(1, 0.0), event(1, 0.8), event(1, 1.5)};
  const auto presences = smoother.smooth(log);
  ASSERT_EQ(presences.size(), 1u);
  EXPECT_DOUBLE_EQ(presences[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(presences[0].end_s, 1.5);
}

TEST(WindowSmootherTest, GapsBeyondWindowSplit) {
  const WindowSmoother smoother(1.0);
  const EventLog log{event(1, 0.0), event(1, 3.0)};
  const auto presences = smoother.smooth(log);
  ASSERT_EQ(presences.size(), 2u);
  EXPECT_DOUBLE_EQ(presences[0].end_s, 0.0);
  EXPECT_DOUBLE_EQ(presences[1].start_s, 3.0);
}

TEST(WindowSmootherTest, TagsAreIndependent) {
  const WindowSmoother smoother(1.0);
  const EventLog log{event(1, 0.0), event(2, 0.5), event(1, 0.9)};
  const auto presences = smoother.smooth(log);
  EXPECT_EQ(presences.size(), 2u);
}

TEST(WindowSmootherTest, UnsortedInputIsHandled) {
  const WindowSmoother smoother(1.0);
  const EventLog log{event(1, 2.0), event(1, 0.0), event(1, 1.0)};
  const auto presences = smoother.smooth(log);
  ASSERT_EQ(presences.size(), 1u);
  EXPECT_DOUBLE_EQ(presences[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(presences[0].end_s, 2.0);
}

TEST(WindowSmootherTest, PresentAtBridgesGaps) {
  const WindowSmoother smoother(2.0);
  const EventLog log{event(1, 1.0)};
  EXPECT_TRUE(smoother.present_at(log, TagId{1}, 1.0));
  EXPECT_TRUE(smoother.present_at(log, TagId{1}, 2.9));
  EXPECT_FALSE(smoother.present_at(log, TagId{1}, 3.1));
  EXPECT_FALSE(smoother.present_at(log, TagId{1}, 0.5));  // Before the read.
  EXPECT_FALSE(smoother.present_at(log, TagId{2}, 1.0));
}

RouteObservations route(std::size_t checkpoints) {
  RouteObservations obs;
  obs.checkpoint_count = checkpoints;
  obs.detected.resize(checkpoints);
  return obs;
}

TEST(RouteConstraintTest, SizeMismatchThrows) {
  RouteObservations obs;
  obs.checkpoint_count = 3;
  obs.detected.resize(2);
  EXPECT_THROW(apply_route_constraint(obs), ConfigError);
}

TEST(RouteConstraintTest, MissedMiddleCheckpointIsInferred) {
  RouteObservations obs = route(3);
  const ObjectId box{1};
  obs.detected[0].insert(box);
  obs.detected[2].insert(box);  // Missed at checkpoint 1.
  const RouteCleanResult result = apply_route_constraint(obs);
  EXPECT_TRUE(result.corrected.detected[1].contains(box));
  EXPECT_EQ(result.recovered, 1u);
}

TEST(RouteConstraintTest, NoForwardInference) {
  RouteObservations obs = route(3);
  const ObjectId box{1};
  obs.detected[0].insert(box);  // Seen only at the start.
  const RouteCleanResult result = apply_route_constraint(obs);
  EXPECT_FALSE(result.corrected.detected[1].contains(box));
  EXPECT_FALSE(result.corrected.detected[2].contains(box));
  EXPECT_EQ(result.recovered, 0u);
}

TEST(RouteConstraintTest, LastCheckpointBackfillsEverything) {
  RouteObservations obs = route(4);
  const ObjectId box{1};
  obs.detected[3].insert(box);
  const RouteCleanResult result = apply_route_constraint(obs);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(result.corrected.detected[k].contains(box)) << "checkpoint " << k;
  }
  EXPECT_EQ(result.recovered, 3u);
}

TEST(RouteConstraintTest, MultipleObjectsIndependent) {
  RouteObservations obs = route(2);
  obs.detected[1].insert(ObjectId{1});
  obs.detected[0].insert(ObjectId{2});
  const RouteCleanResult result = apply_route_constraint(obs);
  EXPECT_TRUE(result.corrected.detected[0].contains(ObjectId{1}));
  EXPECT_FALSE(result.corrected.detected[1].contains(ObjectId{2}));
}

TEST(AccompanyTest, InvalidQuorumThrows) {
  EXPECT_THROW(apply_accompany_constraint({}, {}, 0.0), ConfigError);
  EXPECT_THROW(apply_accompany_constraint({}, {}, 1.5), ConfigError);
}

TEST(AccompanyTest, QuorumMetInfersMissingMembers) {
  const std::vector<std::vector<ObjectId>> groups{
      {ObjectId{1}, ObjectId{2}, ObjectId{3}}};
  const std::unordered_set<ObjectId> detected{ObjectId{1}, ObjectId{2}};
  const AccompanyCleanResult result = apply_accompany_constraint(detected, groups, 0.5);
  EXPECT_TRUE(result.corrected.contains(ObjectId{3}));
  EXPECT_EQ(result.recovered, 1u);
}

TEST(AccompanyTest, QuorumNotMetNoInference) {
  const std::vector<std::vector<ObjectId>> groups{
      {ObjectId{1}, ObjectId{2}, ObjectId{3}, ObjectId{4}}};
  const std::unordered_set<ObjectId> detected{ObjectId{1}};
  const AccompanyCleanResult result = apply_accompany_constraint(detected, groups, 0.5);
  EXPECT_FALSE(result.corrected.contains(ObjectId{2}));
  EXPECT_EQ(result.recovered, 0u);
}

TEST(AccompanyTest, EmptyDetectionNeverInfers) {
  const std::vector<std::vector<ObjectId>> groups{{ObjectId{1}, ObjectId{2}}};
  const AccompanyCleanResult result = apply_accompany_constraint({}, groups, 0.5);
  EXPECT_TRUE(result.corrected.empty());
}

TEST(AccompanyTest, ObjectsOutsideGroupsUntouched) {
  const std::vector<std::vector<ObjectId>> groups{{ObjectId{1}, ObjectId{2}}};
  const std::unordered_set<ObjectId> detected{ObjectId{9}};
  const AccompanyCleanResult result = apply_accompany_constraint(detected, groups, 0.5);
  EXPECT_TRUE(result.corrected.contains(ObjectId{9}));
  EXPECT_EQ(result.corrected.size(), 1u);
}

TEST(AccompanyTest, FullQuorumRequiresAllMembers) {
  const std::vector<std::vector<ObjectId>> groups{
      {ObjectId{1}, ObjectId{2}, ObjectId{3}}};
  const std::unordered_set<ObjectId> two{ObjectId{1}, ObjectId{2}};
  EXPECT_EQ(apply_accompany_constraint(two, groups, 1.0).recovered, 0u);
  const std::unordered_set<ObjectId> all{ObjectId{1}, ObjectId{2}, ObjectId{3}};
  EXPECT_EQ(apply_accompany_constraint(all, groups, 1.0).recovered, 0u);
}

}  // namespace
}  // namespace rfidsim::track
