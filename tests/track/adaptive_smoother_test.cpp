#include "track/adaptive_smoother.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rfidsim::track {
namespace {

using scene::TagId;
using sys::EventLog;
using sys::ReadEvent;

ReadEvent event(std::uint64_t tag, double t) {
  ReadEvent ev;
  ev.tag = TagId{tag};
  ev.time_s = t;
  return ev;
}

/// Reads every `period_s` from t0 for `count` reads.
EventLog periodic(std::uint64_t tag, double t0, double period_s, int count) {
  EventLog log;
  for (int i = 0; i < count; ++i) log.push_back(event(tag, t0 + i * period_s));
  return log;
}

TEST(AdaptiveSmootherTest, InvalidParamsThrow) {
  AdaptiveSmoother::Params p;
  p.epoch_s = 0.0;
  EXPECT_THROW(AdaptiveSmoother{p}, ConfigError);
  p = {};
  p.delta = 1.0;
  EXPECT_THROW(AdaptiveSmoother{p}, ConfigError);
  p = {};
  p.min_window_s = 2.0;
  p.max_window_s = 1.0;
  EXPECT_THROW(AdaptiveSmoother{p}, ConfigError);
}

TEST(AdaptiveSmootherTest, EmptyLogEmptyResult) {
  const AdaptiveSmoother smoother;
  EXPECT_TRUE(smoother.smooth({}).empty());
  EXPECT_TRUE(smoother.window_sizes({}).empty());
}

TEST(AdaptiveSmootherTest, SingleReadGetsMaxWindow) {
  const AdaptiveSmoother smoother;
  const auto windows = smoother.window_sizes({event(1, 2.0)});
  ASSERT_TRUE(windows.contains(TagId{1}));
  EXPECT_DOUBLE_EQ(windows.at(TagId{1}), smoother.params().max_window_s);
}

TEST(AdaptiveSmootherTest, FrequentReadersGetTighterWindows) {
  const AdaptiveSmoother smoother;
  EventLog log = periodic(1, 0.0, 0.05, 40);  // Read every epoch: p ~ 1.
  const EventLog sparse = periodic(2, 0.0, 0.45, 5);  // Read every 9th epoch.
  log.insert(log.end(), sparse.begin(), sparse.end());
  const auto windows = smoother.window_sizes(log);
  EXPECT_LT(windows.at(TagId{1}), windows.at(TagId{2}));
}

TEST(AdaptiveSmootherTest, SteadyStreamYieldsOnePresence) {
  const AdaptiveSmoother smoother;
  const EventLog log = periodic(1, 0.0, 0.05, 40);
  const auto presences = smoother.smooth(log);
  ASSERT_EQ(presences.size(), 1u);
  EXPECT_DOUBLE_EQ(presences[0].start_s, 0.0);
  EXPECT_NEAR(presences[0].end_s, 39 * 0.05, 1e-9);
}

TEST(AdaptiveSmootherTest, DropoutWithinWindowIsBridged) {
  const AdaptiveSmoother smoother;
  // Sparse reader (every 0.3 s) with one missing read in the middle: the
  // adaptive window (sized for the 0.3 s cadence) must bridge the 0.6 s gap.
  EventLog log = periodic(1, 0.0, 0.3, 5);
  EventLog tail = periodic(1, 1.8, 0.3, 5);  // Skips the 1.5 s read.
  log.insert(log.end(), tail.begin(), tail.end());
  const auto presences = smoother.smooth(log);
  EXPECT_EQ(presences.size(), 1u);
}

TEST(AdaptiveSmootherTest, TrueDepartureSplitsForFastReaders) {
  AdaptiveSmoother::Params p;
  p.epoch_s = 0.05;
  p.delta = 0.05;
  p.min_window_s = 0.05;
  p.max_window_s = 10.0;
  const AdaptiveSmoother smoother(p);
  // Dense reads, 3 s silence, dense reads: a fast reader's tight window
  // treats the silence as a real departure.
  EventLog log = periodic(1, 0.0, 0.05, 20);
  EventLog later = periodic(1, 4.0, 0.05, 20);
  log.insert(log.end(), later.begin(), later.end());
  const auto presences = smoother.smooth(log);
  EXPECT_EQ(presences.size(), 2u);
}

TEST(AdaptiveSmootherTest, WindowRespectsClamp) {
  AdaptiveSmoother::Params p;
  p.max_window_s = 0.2;
  p.min_window_s = 0.1;
  const AdaptiveSmoother smoother(p);
  const auto windows = smoother.window_sizes(periodic(1, 0.0, 0.45, 5));
  EXPECT_LE(windows.at(TagId{1}), 0.2);
  EXPECT_GE(windows.at(TagId{1}), 0.1);
}

TEST(AdaptiveSmootherTest, ComparesFavourablyToFixedWindowOnMixedTraffic) {
  // A fixed window that bridges the sparse tag's dropouts over-smooths the
  // dense tag's true departure; the adaptive smoother handles both.
  EventLog log = periodic(1, 0.0, 0.05, 20);           // Dense...
  EventLog later = periodic(1, 4.0, 0.05, 20);         // ...with a real gap.
  EventLog sparse = periodic(2, 0.0, 0.4, 15);         // Sparse, continuous.
  log.insert(log.end(), later.begin(), later.end());
  log.insert(log.end(), sparse.begin(), sparse.end());

  const AdaptiveSmoother adaptive;
  std::size_t tag1_presences = 0;
  std::size_t tag2_presences = 0;
  for (const auto& presence : adaptive.smooth(log)) {
    (presence.tag == TagId{1} ? tag1_presences : tag2_presences) += 1;
  }
  EXPECT_EQ(tag1_presences, 2u);  // True departure preserved.
  EXPECT_EQ(tag2_presences, 1u);  // Sparse stream not shredded.
}

}  // namespace
}  // namespace rfidsim::track
