#include "track/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace rfidsim::track {
namespace {

using scene::TagId;

TEST(RegistryTest, AddObjectAssignsDistinctIds) {
  ObjectRegistry reg;
  const ObjectId a = reg.add_object("box A");
  const ObjectId b = reg.add_object("box B");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.object_count(), 2u);
  EXPECT_EQ(reg.name_of(a), "box A");
  EXPECT_EQ(reg.name_of(b), "box B");
}

TEST(RegistryTest, BindAndLookup) {
  ObjectRegistry reg;
  const ObjectId obj = reg.add_object("pallet");
  reg.bind_tag(TagId{10}, obj);
  reg.bind_tag(TagId{11}, obj);
  EXPECT_EQ(reg.object_of(TagId{10}), obj);
  EXPECT_EQ(reg.object_of(TagId{11}), obj);
  EXPECT_EQ(reg.tag_count(), 2u);
  const auto tags = reg.tags_of(obj);
  EXPECT_EQ(tags.size(), 2u);
  EXPECT_NE(std::find(tags.begin(), tags.end(), TagId{10}), tags.end());
}

TEST(RegistryTest, UnknownTagIsNullopt) {
  ObjectRegistry reg;
  EXPECT_EQ(reg.object_of(TagId{99}), std::nullopt);
}

TEST(RegistryTest, UnknownObjectNameIsQuestionMark) {
  ObjectRegistry reg;
  EXPECT_EQ(reg.name_of(ObjectId{123}), "?");
  EXPECT_TRUE(reg.tags_of(ObjectId{123}).empty());
}

TEST(RegistryTest, DoubleBindThrows) {
  ObjectRegistry reg;
  const ObjectId a = reg.add_object("a");
  const ObjectId b = reg.add_object("b");
  reg.bind_tag(TagId{1}, a);
  EXPECT_THROW(reg.bind_tag(TagId{1}, b), ConfigError);
}

TEST(RegistryTest, BindToUnknownObjectThrows) {
  ObjectRegistry reg;
  EXPECT_THROW(reg.bind_tag(TagId{1}, ObjectId{42}), ConfigError);
}

TEST(RegistryTest, ObjectsPreserveRegistrationOrder) {
  ObjectRegistry reg;
  const ObjectId a = reg.add_object("first");
  const ObjectId b = reg.add_object("second");
  ASSERT_EQ(reg.objects().size(), 2u);
  EXPECT_EQ(reg.objects()[0], a);
  EXPECT_EQ(reg.objects()[1], b);
}

}  // namespace
}  // namespace rfidsim::track
