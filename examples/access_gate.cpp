// Badge-based access gate: tracking people through a doorway.
//
// The paper's human-tracking application: people with badge tags walk
// through a gate and the system logs who passed, at room-level accuracy.
// This example compares badge policies (one badge vs. badge + back-up tag
// vs. four tags) for single people and pairs walking together, and shows
// the event stream a door controller would consume, including
// first-detection latency (how far into the doorway before the badge is
// seen).
#include <cstdio>

#include "common/table.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "track/tracking.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

constexpr std::uint64_t kSeed = 31337;

struct Policy {
  const char* name;
  std::vector<scene::BodySpot> spots;
};

}  // namespace

int main() {
  const CalibrationProfile cal = CalibrationProfile::paper2006();

  const Policy policies[] = {
      {"single front badge", {scene::BodySpot::Front}},
      {"front + back badges", {scene::BodySpot::Front, scene::BodySpot::Back}},
      {"four tags (F/B/sides)",
       {scene::BodySpot::Front, scene::BodySpot::Back, scene::BodySpot::SideNear,
        scene::BodySpot::SideFar}},
  };

  std::printf("== Gate reliability per badge policy (2-antenna doorway) ==\n");
  TextTable t({"policy", "1 person", "2 people (worst of pair)"});
  for (const Policy& policy : policies) {
    HumanScenarioOptions solo;
    solo.tag_spots = policy.spots;
    solo.portal.antenna_count = 2;
    const double one = measure_tracking_reliability(
        make_human_tracking_scenario(solo, cal), 40, kSeed);

    HumanScenarioOptions duo = solo;
    duo.subject_count = 2;
    const Scenario pair_scenario = make_human_tracking_scenario(duo, cal);
    const auto per_person =
        per_object_reliability(pair_scenario, run_repeated(pair_scenario, 40, kSeed));
    double worst = 1.0;
    for (const auto& [person, ci] : per_person) worst = std::min(worst, ci.estimate);

    t.add_row({policy.name, percent(one), percent(worst)});
  }
  std::fputs(t.render().c_str(), stdout);

  // What the door controller sees: the event stream of one pass, and when
  // the person is first identified relative to entering the gate zone.
  std::printf("\n== One pass through the gate (front + back badges) ==\n");
  HumanScenarioOptions opt;
  opt.tag_spots = {scene::BodySpot::Front, scene::BodySpot::Back};
  opt.portal.antenna_count = 2;
  const Scenario sc = make_human_tracking_scenario(opt, cal);
  sys::PortalSimulator sim(sc.scene, sc.portal);
  Rng rng(kSeed);
  const sys::EventLog log = sim.run(rng);
  std::printf("%zu events:\n", log.size());
  for (std::size_t i = 0; i < log.size() && i < 8; ++i) {
    std::printf("  t=%.2fs tag=%llu antenna=%zu\n", log[i].time_s,
                static_cast<unsigned long long>(log[i].tag.value), log[i].antenna_index);
  }
  if (log.size() > 8) std::printf("  ... %zu more\n", log.size() - 8);

  const track::TrackingAnalyzer analyzer(sc.registry);
  const track::PassReport report = analyzer.analyze(log);
  for (const auto& [person, first_seen] : report.first_seen_s) {
    // The subject starts 2.5 m before the gate at 1 m/s.
    std::printf("%s first identified %.2fs into the pass (%.2f m before the gate)\n",
                sc.registry.name_of(person).c_str(), first_seen, 2.5 - first_seen);
  }
  return 0;
}
