// Conveyor-line audit: raw event streams into clean shipment records.
//
// A pharmaceutical-style line (the paper cites a pharma pilot with read
// rates from under 10% to 100%): cases pass two sequential portals; the
// back end must turn a lossy duplicate-ridden event stream into per-case
// shipment records. Demonstrates the track:: toolkit end to end:
//   * window smoothing to collapse duplicate reads into presence intervals,
//   * per-portal detection sets,
//   * route-constraint cleaning across the two portals,
//   * accompany-constraint cleaning within the pallet,
// and reports how many cases each stage recovers.
#include <cstdio>

#include "common/table.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "track/cleaning.hpp"
#include "track/tracking.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main() {
  const CalibrationProfile cal = CalibrationProfile::paper2006();

  // A deliberately weak line: one tag per case, on the far side (the
  // placement nobody chose on purpose — it just came off the applicator
  // that way). Paper Table 1 says ~63% per case.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::SideFar};
  const Scenario sc = make_object_tracking_scenario(opt, cal);
  const track::TrackingAnalyzer analyzer(sc.registry);
  const std::size_t cases = sc.registry.object_count();

  // Two sequential portals = two passes of the same cart.
  const RepeatedRuns runs = run_repeated(sc, 2, /*seed=*/99);
  const sys::EventLog& portal_a = runs.logs[0];
  const sys::EventLog& portal_b = runs.logs[1];

  // Stage 0: raw duplicates -> presence intervals.
  const track::WindowSmoother smoother(/*window_s=*/0.5);
  const auto presences = smoother.smooth(portal_a);
  std::printf("portal A: %zu raw events -> %zu smoothed presence intervals\n",
              portal_a.size(), presences.size());

  // Stage 1: per-portal detections.
  const auto report_a = analyzer.analyze(portal_a);
  const auto report_b = analyzer.analyze(portal_b);
  std::printf("portal A saw %zu/%zu cases; portal B saw %zu/%zu\n",
              report_a.objects_identified.size(), cases,
              report_b.objects_identified.size(), cases);

  // Stage 2: route constraint — anything portal B saw must have passed A.
  track::RouteObservations route;
  route.checkpoint_count = 2;
  route.detected = {report_a.objects_identified, report_b.objects_identified};
  const auto routed = track::apply_route_constraint(route);
  std::printf("route constraint recovered %zu missed detections at portal A\n",
              routed.recovered);

  // Stage 3: accompany constraint — the cases travel as one pallet.
  const std::vector<std::vector<track::ObjectId>> pallet{
      {sc.registry.objects().begin(), sc.registry.objects().end()}};
  const auto accompanied = track::apply_accompany_constraint(
      routed.corrected.detected[0], pallet, /*quorum=*/0.5);
  std::printf("accompany constraint inferred %zu more\n", accompanied.recovered);

  TextTable t({"stage", "cases accounted for at portal A"});
  t.add_row({"raw reads", std::to_string(report_a.objects_identified.size()) + "/" +
                              std::to_string(cases)});
  t.add_row({"+ route constraint",
             std::to_string(routed.corrected.detected[0].size()) + "/" +
                 std::to_string(cases)});
  t.add_row({"+ accompany constraint", std::to_string(accompanied.corrected.size()) +
                                           "/" + std::to_string(cases)});
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nThe cleaning stages account for every case, but only as *inference* — the\n"
      "paper's physical fix (a second tag per case) keeps the evidence direct:\n");
  ObjectScenarioOptions fixed = opt;
  fixed.tag_faces = {scene::BoxFace::SideFar, scene::BoxFace::Front};
  const double fixed_rel = measure_tracking_reliability(
      make_object_tracking_scenario(fixed, cal), 24, /*seed=*/99);
  std::printf("with a second (front) tag per case: %s raw read reliability\n",
              percent(fixed_rel).c_str());
  return 0;
}
