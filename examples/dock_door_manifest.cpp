// Dock-door manifest verification: where read reliability becomes money.
//
// Paper §2: the back end "implements the logic and actions for when a tag
// is identified ... updating a database, or ... integrated management and
// monitoring for shipment tracking." The concrete action at a dock door is
// comparing each departing shipment against its advance shipping notice
// (the manifest). A missed read on a case that IS on the truck produces a
// false "short shipment" exception — a worker walks the dock, scans by
// hand, the truck waits. This example measures that exception rate per
// redundancy scheme, plus the CSV trace hand-off middleware would archive.
#include <cstdio>
#include <unordered_set>

#include "common/table.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "system/event_io.hpp"
#include "track/manifest.hpp"
#include "track/tracking.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

int main() {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  constexpr std::uint64_t kSeed = 606;
  constexpr std::size_t kShipments = 40;

  std::printf(
      "Exception rates over %zu shipments (12 cases each, all actually on\n"
      "the truck — every 'short' exception is false):\n\n",
      kShipments);

  TextTable t({"scheme", "clean shipments", "avg cases flagged short",
               "worker walks per 100 trucks"});
  const struct {
    const char* label;
    std::vector<scene::BoxFace> faces;
    std::size_t antennas;
  } schemes[] = {
      {"1 tag (front), 1 antenna", {scene::BoxFace::Front}, 1},
      {"1 tag (front), 2 antennas", {scene::BoxFace::Front}, 2},
      {"2 tags, 1 antenna", {scene::BoxFace::Front, scene::BoxFace::SideNear}, 1},
      {"2 tags, 2 antennas", {scene::BoxFace::Front, scene::BoxFace::SideNear}, 2},
  };

  for (const auto& scheme : schemes) {
    ObjectScenarioOptions opt;
    opt.tag_faces = scheme.faces;
    opt.portal.antenna_count = scheme.antennas;
    const Scenario sc = make_object_tracking_scenario(opt, cal);
    const track::TrackingAnalyzer analyzer(sc.registry);

    track::Manifest manifest;
    manifest.expected.insert(sc.registry.objects().begin(), sc.registry.objects().end());

    const RepeatedRuns runs = run_repeated(sc, kShipments, kSeed);
    std::size_t clean = 0;
    std::size_t short_cases = 0;
    for (const auto& log : runs.logs) {
      const auto report = track::verify_manifest(manifest, analyzer.analyze(log));
      if (report.complete()) ++clean;
      short_cases += report.missing.size();
    }
    const double walks_per_100 =
        100.0 * (1.0 - static_cast<double>(clean) / kShipments);
    t.add_row({scheme.label,
               std::to_string(clean) + "/" + std::to_string(kShipments),
               fixed_str(static_cast<double>(short_cases) / kShipments, 1),
               fixed_str(walks_per_100, 0)});
  }
  std::fputs(t.render().c_str(), stdout);

  // The archival hand-off: one shipment's raw trace as middleware CSV.
  ObjectScenarioOptions opt;
  opt.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear};
  opt.portal.antenna_count = 2;
  const Scenario sc = make_object_tracking_scenario(opt, cal);
  const RepeatedRuns one = run_repeated(sc, 1, kSeed);
  const std::string csv = sys::to_csv(one.logs[0]);
  std::printf("\nArchived trace for one shipment (%zu events), first lines:\n",
              one.logs[0].size());
  std::printf("%.*s...\n", 200, csv.c_str());
  return 0;
}
