# Smoke-test runner for example binaries (ctest -P script): the example
# must exit 0 AND print something. A silently-succeeding example is a
# broken example — each one exists to show output.
#
# Usage: cmake -DEXAMPLE_BIN=<path> -P smoke_test.cmake
if(NOT DEFINED EXAMPLE_BIN)
  message(FATAL_ERROR "smoke_test.cmake: pass -DEXAMPLE_BIN=<binary>")
endif()

execute_process(
  COMMAND "${EXAMPLE_BIN}"
  OUTPUT_VARIABLE example_stdout
  ERROR_VARIABLE example_stderr
  RESULT_VARIABLE example_rc
)

if(NOT example_rc EQUAL 0)
  message(FATAL_ERROR
    "${EXAMPLE_BIN} exited with ${example_rc}\nstderr:\n${example_stderr}")
endif()

string(STRIP "${example_stdout}" stripped)
if(stripped STREQUAL "")
  message(FATAL_ERROR "${EXAMPLE_BIN} exited 0 but printed nothing to stdout")
endif()
