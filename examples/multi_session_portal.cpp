// Multi-session portal: protocol redundancy without extra hardware.
//
// The paper's fix for missed reads is physical redundancy — more tags per
// object, more antennas (§4). The gen2::reliable subsystem adds knobs
// that need no new hardware on the object: run the SAME portal pass as K
// independent inventories on distinct Gen 2 sessions (each session keeps
// its own inventoried flag on the tag, so the passes don't blind each
// other), fuse the K read sets into per-tag confidence, or upgrade the
// reader to multi-packet reception (M simultaneous decodes per slot).
// This example runs a dock-door pallet through three configurations and
// then shows what session fusion buys at the identification layer.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "gen2/reliable/fusion.hpp"
#include "gen2/reliable/multi_session.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;
using namespace rfidsim::gen2::reliable;

int main() {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  constexpr std::uint64_t kSeed = 606;
  constexpr std::size_t kPasses = 24;

  // [1] The same dock-door rig, three reader configurations. The portal
  // picks its inventory strategy from ReaderConfig — no scene changes.
  std::printf("Dock-door portal, one front tag per case, %zu passes:\n\n",
              kPasses);
  TextTable t({"reader configuration", "tracking reliability"});
  sys::InventoryStrategy three_sessions;
  three_sessions.mode = sys::InventoryMode::kMultiSession;
  three_sessions.sessions = {gen2::Session::S1, gen2::Session::S2,
                             gen2::Session::S3};
  const struct {
    const char* label;
    sys::InventoryStrategy strategy;
    int mpr;
  } rows[] = {
      {"conventional (K=1 session, M=1)", sys::InventoryStrategy{}, 1},
      {"K=3 sessions, interleaved", three_sessions, 1},
      {"M=2 multi-packet reception", sys::InventoryStrategy{}, 2},
  };
  for (const auto& r : rows) {
    ObjectScenarioOptions opt;
    opt.tag_faces = {scene::BoxFace::Front};
    opt.portal.antenna_count = 2;
    opt.portal.strategy = r.strategy;
    opt.portal.mpr_capacity = r.mpr;
    const double rel = measure_tracking_reliability(
        make_object_tracking_scenario(opt, cal), kPasses, kSeed);
    t.add_row({r.label, percent(rel)});
  }
  std::fputs(t.render().c_str(), stdout);

  // [2] What the K passes buy at the identification layer: run a lossy
  // 12-tag pallet through a 3-session inventory and fuse. A tag seen by
  // one session might be a ghost read; a tag seen by all three is there.
  std::printf("\n3-session inventory over a lossy 12-tag pallet:\n\n");
  MultiSessionConfig cfg;
  cfg.sessions = {gen2::Session::S1, gen2::Session::S2, gen2::Session::S3};
  cfg.rounds_per_session = 2;
  MultiSessionInventory inventory(cfg);

  std::vector<gen2::TagState> states(12);
  std::vector<gen2::TagLink> links(12);
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i].set_powered(true, 0.0);
    links[i].powered = true;
    // The far half of the pallet reads much worse than the near half.
    links[i].reply_decode_probability = i < 6 ? 0.95 : 0.45;
    links[i].rx_power = DbmPower(-55.0);
  }
  Rng rng(kSeed);
  const MultiSessionResult sweep = inventory.run(states, links, 0.0, rng);

  FusionConfig fusion_cfg;
  fusion_cfg.sessions = {SessionModel{gen2::Session::S1, 0.7, 0.01},
                         SessionModel{gen2::Session::S2, 0.7, 0.01},
                         SessionModel{gen2::Session::S3, 0.7, 0.01}};
  const SessionFusion fusion(fusion_cfg);
  const FusionResult fused = fusion.fuse(sweep.sessions_seen);

  TextTable verdicts({"tag", "link", "sessions seen (of 3)", "confidence",
                      "verdict"});
  for (const auto& v : fused.verdicts) {
    verdicts.add_row({"tag " + std::to_string(v.tag),
                      v.tag < 6 ? "good" : "poor",
                      std::to_string(v.sessions_seen),
                      percent(v.confidence), v.present ? "present" : "miss"});
  }
  std::fputs(verdicts.render().c_str(), stdout);
  std::printf(
      "\nfused any-of detection: %zu/%zu tags; independence model predicts\n"
      "R_C = 1 - (1 - p)^3 = %s per tag at p = 70%% per session.\n",
      fused.detected, fused.verdicts.size(),
      percent(fusion.fused_detection_probability()).c_str());
  return 0;
}
