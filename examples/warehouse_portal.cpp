// Warehouse dock-door portal: engineering a pallet lane to a reliability
// target.
//
// The scenario the paper's introduction motivates: pallets of cases roll
// through a dock door and the warehouse system must not lose shipments.
// This example:
//   * measures per-location read reliability for this site's cartons,
//   * asks the planner for the cheapest redundancy scheme that reaches
//     99.5% per-case tracking,
//   * validates the chosen scheme in simulation,
//   * shows what the same lane does at forklift speed.
#include <cstdio>

#include "common/table.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/planner.hpp"
#include "reliability/scenarios.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

constexpr std::uint64_t kSeed = 2026;

double measure_face(scene::BoxFace face, const CalibrationProfile& cal) {
  ObjectScenarioOptions opt;
  opt.tag_faces = {face};
  return measure_tracking_reliability(make_object_tracking_scenario(opt, cal), 24, kSeed);
}

}  // namespace

int main() {
  const CalibrationProfile cal = CalibrationProfile::paper2006();

  // Site survey: how do tags read on this site's cartons, per placement?
  std::printf("== Site survey: single-tag read reliability per placement ==\n");
  const scene::BoxFace faces[] = {scene::BoxFace::Front, scene::BoxFace::SideNear,
                                  scene::BoxFace::SideFar, scene::BoxFace::Top};
  std::vector<double> placements;
  TextTable survey({"placement", "read reliability"});
  for (const scene::BoxFace face : faces) {
    const double rel = measure_face(face, cal);
    placements.push_back(rel);
    survey.add_row({std::string(scene::box_face_name(face)), percent(rel)});
  }
  std::fputs(survey.render().c_str(), stdout);

  // Plan: cheapest scheme meeting 99.5%, amortized over 50k cases/year.
  std::printf("\n== Redundancy plan for a 99.5%% tracking target ==\n");
  PlannerRequest request;
  request.target_reliability = 0.995;
  request.tag_position_reliabilities = placements;
  request.max_tags_per_object = 4;
  request.max_antennas_per_portal = 2;
  request.cost.objects_per_horizon = 50000.0;
  const PlanResult plan = plan_redundancy(request);

  TextTable candidates({"scheme", "predicted R_C", "cost ($)"});
  for (const PlannedScheme& c : plan.candidates) {
    candidates.add_row({c.scheme.label(), percent(c.predicted_reliability, 1),
                        fixed_str(c.cost, 0)});
  }
  std::fputs(candidates.render().c_str(), stdout);
  if (!plan.best) {
    std::printf("no scheme reaches the target; raise the redundancy bounds\n");
    return 1;
  }
  std::printf("chosen: %s (predicted %s, $%.0f)\n", plan.best->scheme.label().c_str(),
              percent(plan.best->predicted_reliability, 1).c_str(), plan.best->cost);

  // Validate the plan against the full simulation (the analytical model
  // assumes independent opportunities; the simulator has the correlations).
  ObjectScenarioOptions chosen;
  chosen.tag_faces = {scene::BoxFace::Front, scene::BoxFace::SideNear,
                      scene::BoxFace::SideFar, scene::BoxFace::Top};
  chosen.tag_faces.resize(plan.best->scheme.tags_per_object);
  chosen.portal.antenna_count = plan.best->scheme.antennas_per_portal;
  const double validated = measure_tracking_reliability(
      make_object_tracking_scenario(chosen, cal), 40, kSeed + 1);
  std::printf("validated in simulation: %s\n\n", percent(validated, 1).c_str());

  // Forklifts don't crawl: same scheme at 3 m/s.
  ObjectScenarioOptions fast = chosen;
  fast.speed_mps = 3.0;
  const double at_speed = measure_tracking_reliability(
      make_object_tracking_scenario(fast, cal), 40, kSeed + 2);
  std::printf("same scheme at forklift speed (3 m/s): %s\n", percent(at_speed, 1).c_str());
  return 0;
}
