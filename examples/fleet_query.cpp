// Fleet tracking session: two facilities, one faulted reader.
//
// The paper's reliability model earns its keep at the moment a manifest
// does not reconcile: is the unread case missing, or did a degraded portal
// miss it? This example runs the full fleet stack on that question. Twelve
// cases are read at a dock door (both readers healthy), then the truck
// reaches the exit gate with one gate reader dead: eight cases are read,
// two are physically present but missed by the crippled portal, and two
// never made it onto the truck at all. One extra case that is not on the
// manifest rides along. locate() answers with a confidence from the gate's
// live R_C = 1 - prod(1 - P_r), and missing() separates "probably missed
// read" from "probably absent" by combining that R_C with each case's
// cross-facility custody evidence.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fleet/service.hpp"

using namespace rfidsim;

namespace {

sys::ReadEvent read_of(double t, std::uint64_t tag, std::size_t reader) {
  sys::ReadEvent ev;
  ev.time_s = t;
  ev.tag = scene::TagId{tag};
  ev.reader_index = reader;
  return ev;
}

/// Every listed tag read `reps` times by every listed reader, spread
/// evenly across the pass window so no healthy reader looks silent.
sys::EventLog pass_log(const std::vector<std::uint64_t>& tags,
                       const std::vector<std::size_t>& readers, double begin_s,
                       double width_s, std::size_t reps = 2) {
  sys::EventLog log;
  const std::size_t count = tags.size() * readers.size() * reps;
  const double dt = (width_s - 0.2) / static_cast<double>(count);
  double t = begin_s + 0.1;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const std::uint64_t tag : tags) {
      for (const std::size_t reader : readers) {
        log.push_back(read_of(t, tag, reader));
        t += dt;
      }
    }
  }
  return log;
}

}  // namespace

int main() {
  // Thirteen tagged cases: 1..12 are due on the truck, 13 is a stray.
  track::ObjectRegistry registry;
  std::vector<track::ObjectId> cases;
  for (int i = 1; i <= 13; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "case-%02d", i);
    cases.push_back(registry.add_object(name));
    registry.bind_tag(scene::TagId{static_cast<std::uint64_t>(i)}, cases.back());
  }

  fleet::FleetService service(registry);
  fleet::FeedConfig dock_config;
  dock_config.ingest.reader_count = 2;
  dock_config.objects_total = 12;
  const fleet::FacilityId dock = service.add_facility(dock_config);
  const fleet::FacilityId gate = service.add_facility(dock_config);
  const char* facility_name[] = {"dock door", "exit gate"};

  Rng rng(2007);

  // Pass 1, dock door [0, 10]: cases 1..10 and the stray 13 cross with
  // both readers healthy. Cases 11 and 12 never arrive anywhere.
  std::vector<std::uint64_t> at_dock = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 13};
  (void)service.ingest_pass(dock, pass_log(at_dock, {0, 1}, 0.0, 10.0), 0.0, 10.0,
                            rng);

  // Pass 2, exit gate [60, 70]: reader 1 is dead (cut cable). Reader 0
  // catches cases 1..8 and the stray; 9 and 10 are on the truck but missed.
  std::vector<std::uint64_t> seen_at_gate = {1, 2, 3, 4, 5, 6, 7, 8, 13};
  (void)service.ingest_pass(gate, pass_log(seen_at_gate, {0}, 60.0, 10.0), 60.0,
                            70.0, rng);

  const fleet::FacilityModel gate_model = service.feed(gate).model();
  std::printf("gate after pass: reader 0 rate %.2f (live), reader 1 %s; "
              "portal R_C = %.2f\n\n",
              gate_model.reader_read_rates[0],
              gate_model.reader_live[1] ? "live" : "DECLARED DOWN",
              gate_model.identification_rc());

  // --- locate: last known position with live confidence. -------------------
  TextTable where({"case", "located at", "sighted (s)", "confidence"});
  for (const std::uint64_t tag : {1ULL, 9ULL, 11ULL}) {
    const fleet::LocateResult r = service.query().locate(scene::TagId{tag}, 75.0);
    char time_s[32], conf[32];
    std::snprintf(time_s, sizeof time_s, r.found ? "%.1f" : "-", r.time_s);
    std::snprintf(conf, sizeof conf, r.found ? "%.2f" : "-", r.confidence);
    where.add_row({"case-" + std::to_string(tag),
                   r.found ? facility_name[r.facility] : "never sighted", time_s,
                   conf});
  }
  std::fputs(where.render().c_str(), stdout);
  std::printf("\n");

  // --- missing: reconcile the truck's manifest at the gate. ----------------
  track::Manifest manifest;
  for (int i = 0; i < 12; ++i) manifest.expected.insert(cases[i]);
  const fleet::MissingReport report =
      service.query().missing(manifest, gate, 60.0, 70.0);

  TextTable verdicts({"case", "verdict", "P(present|no read)", "custody evidence"});
  for (const fleet::Reconciliation& item : report.items) {
    char posterior[32];
    std::snprintf(posterior, sizeof posterior, "%.2f", item.posterior_present);
    verdicts.add_row({registry.name_of(item.object),
                      fleet::missing_verdict_name(item.verdict),
                      item.verdict == fleet::MissingVerdict::kPresent ? "-" : posterior,
                      item.custody_evidence ? "yes" : "no"});
  }
  std::fputs(verdicts.render().c_str(), stdout);

  std::printf("\nreconciliation: %zu read, %zu probably missed reads "
              "(walk the truck), %zu probably absent (call the dock), "
              "%zu unexpected\n",
              report.present.size(), report.missed_reads.size(),
              report.absent.size(), report.unexpected.size());
  for (const track::ObjectId object : report.unexpected) {
    std::printf("unexpected on the truck: %s\n", registry.name_of(object).c_str());
  }

  // The fleet health document an ops dashboard would scrape: per-facility
  // freshness watermarks, alert tallies, and transport depths in one JSON
  // object (write_health_prometheus renders the same snapshot for a
  // Prometheus endpoint).
  std::printf("\nfleet health snapshot:\n");
  std::ostringstream health_json;
  fleet::write_health_json(health_json, service.health_snapshot());
  std::fputs(health_json.str().c_str(), stdout);
  return 0;
}
