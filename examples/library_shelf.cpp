// Library shelf inventory: the paper's own hard case.
//
// §3: "current UHF tags would not work well for scenarios where tags are
// placed very close to each other and are perpendicular to the antenna,
// such as on book covers in a bookshelf." This example builds that shelf —
// 30 tagged books, spines toward the aisle, covers (and tags) parallel to
// each other at the books' thickness spacing — and quantifies the paper's
// warning with a handheld-reader sweep along the aisle. It then evaluates
// the two mitigations available without re-shelving the library:
// thicker books... or better tags (the dual-dipole design).
#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"

using namespace rfidsim;
using namespace rfidsim::reliability;

namespace {

/// A shelf of `count` books of thickness `spacing_m`, tags on the covers
/// (parallel planes, dipole axis toward the aisle when shelved). The
/// "reader" sweeps along the aisle 0.6 m away, like a librarian with a
/// handheld.
Scenario make_shelf(std::size_t count, double spacing_m, rf::TagDesign design,
                    const CalibrationProfile& cal) {
  Scenario sc;
  sc.description = "library shelf";

  // A handheld sweeping along a static shelf is, in the fixed-antenna
  // convention, the shelf drifting past the antenna at walking speed.
  const double row_len = spacing_m * static_cast<double>(count);
  Pose start;
  start.position = {-row_len / 2.0 - 1.0, 0.0, 1.2};  // Eye-level shelf.
  start.frame.forward = {1.0, 0.0, 0.0};
  start.frame.up = {0.0, 0.0, 1.0};
  scene::Entity shelf("bookshelf", std::monostate{}, rf::Material::Air,
                      std::make_unique<scene::LinearTrajectory>(start,
                                                                Vec3{0.5, 0.0, 0.0}));
  for (std::size_t i = 0; i < count; ++i) {
    scene::TagMount m;
    // Books stand side by side along x; each cover tag lies in the y-z
    // plane: dipole axis vertical, patch normal along the row.
    m.local_position = {spacing_m * static_cast<double>(i), 0.0, 0.0};
    m.local_dipole_axis = {0.0, 0.0, 1.0};
    m.local_patch_normal = {1.0, 0.0, 0.0};
    m.backing_material = rf::Material::Cardboard;  // Paper is RF-mild.
    m.backing_gap_m = 0.003;
    m.design = design;
    shelf.add_tag(scene::Tag{scene::TagId{i + 1}, m});
    const auto obj = sc.registry.add_object("book " + std::to_string(i + 1));
    sc.registry.bind_tag(scene::TagId{i + 1}, obj);
  }
  sc.scene.entities.push_back(std::move(shelf));

  sc.scene.antennas.push_back(
      scene::Scene::make_antenna({0.0, 0.6, 1.2}, {0.0, -1.0, 0.0}));
  const double duration = (row_len + 2.0) / 0.5;
  sc.portal = make_portal_config(cal, {}, 1, duration);
  sc.portal.pass_sigma_db = 2.5;  // Library tags are applied consistently.
  return sc;
}

}  // namespace

int main() {
  const CalibrationProfile cal = CalibrationProfile::paper2006();
  const std::size_t books = 30;

  std::printf("Shelf inventory completeness, 30 books, handheld sweep at 0.6 m:\n\n");
  TextTable t({"book thickness", "single-dipole tags", "dual-dipole tags"});
  for (const double mm : {10.0, 20.0, 30.0, 50.0}) {
    std::vector<std::string> row{fixed_str(mm, 0) + " mm"};
    for (const rf::TagDesign design :
         {rf::TagDesign::single_dipole(), rf::TagDesign::dual_dipole()}) {
      const Scenario sc = make_shelf(books, mm * 1e-3, design, cal);
      const double rel = measure_tag_reliability(sc, 12, /*seed=*/4242);
      row.push_back(percent(rel));
    }
    t.add_row(row);
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nAs the paper warns, thin books (tags a centimetre apart, dipoles\n"
      "parallel) lose half the shelf: mutual coupling detunes the tag antennas,\n"
      "and no tag design or reader power fixes a detuned antenna — only spacing\n"
      "does. Note that dual-dipole tags do NOT help here (the vertical dipole is\n"
      "already broadside to the aisle); their value is orientation diversity,\n"
      "not coupling immunity. The fix the paper implies is physical: keep tag\n"
      "positions staggered (e.g. alternate cover corners) so neighbours sit\n"
      "beyond the ~25-30 mm safe distance even on thin books.\n");
  return 0;
}
