// Quickstart: simulate one tagged carton passing a portal, end to end.
//
// This walks the whole public API in ~80 lines:
//   1. build a Scene (a tagged box on a cart, one portal antenna),
//   2. configure the portal (reader + Gen 2 + RF environment),
//   3. run passes and read the event log,
//   4. map tag reads to object identifications,
//   5. estimate tracking reliability over repeated passes.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "reliability/calibration.hpp"
#include "reliability/estimator.hpp"
#include "reliability/scenarios.hpp"
#include "system/portal.hpp"
#include "track/tracking.hpp"

using namespace rfidsim;

int main() {
  // 1. The physical world: a carton with a metal appliance inside rides a
  //    cart along +x; the portal antenna sits 1 m to the +y side.
  scene::Scene world;

  Pose start;
  start.position = {-2.5, 0.0, 0.7};  // Carton centre, 70 cm off the floor.
  start.frame.forward = {1.0, 0.0, 0.0};
  start.frame.up = {0.0, 0.0, 1.0};

  scene::Entity carton("appliance carton", scene::BoxBody{{0.4, 0.4, 0.3}},
                       rf::Material::Metal,
                       std::make_unique<scene::LinearTrajectory>(start, Vec3{1.0, 0.0, 0.0}),
                       /*content_fill=*/0.6);

  // A label tag on the face toward the reader, with the metal content 5 cm
  // behind it.
  const scene::TagId tag_id{1001};
  carton.add_tag(scene::Tag{
      tag_id, scene::mount_on_box_face(scene::BoxFace::SideNear, {0.4, 0.4, 0.3},
                                       rf::Material::Metal, 0.05)});
  world.entities.push_back(std::move(carton));

  world.antennas.push_back(
      scene::Scene::make_antenna({0.0, 1.2, 1.0}, {0.0, -1.0, 0.0}));

  // 2. The installation: one reader on that antenna, 2006-era calibrated
  //    radio constants, a 5-second pass window.
  const auto cal = reliability::CalibrationProfile::paper2006();
  sys::PortalConfig portal = reliability::make_portal_config(
      cal, reliability::PortalOptions{}, world.antennas.size(), /*pass_duration_s=*/5.0);

  // 3. One pass: the reader inventories continuously while the cart rolls by.
  sys::PortalSimulator simulator(world, portal);
  Rng rng(/*seed=*/42);
  const sys::EventLog log = simulator.run(rng);
  std::printf("pass produced %zu read events\n", log.size());
  for (const sys::ReadEvent& ev : log) {
    std::printf("  t=%.3fs tag=%llu antenna=%zu rssi=%.1f dBm\n", ev.time_s,
                static_cast<unsigned long long>(ev.tag.value), ev.antenna_index,
                ev.rssi.value());
  }

  // 4. The back end: tags belong to objects; an object is tracked if any
  //    of its tags was read.
  track::ObjectRegistry registry;
  const track::ObjectId carton_object = registry.add_object("appliance carton");
  registry.bind_tag(tag_id, carton_object);
  const track::TrackingAnalyzer analyzer(registry);
  std::printf("carton identified this pass: %s\n",
              analyzer.identified(log, carton_object) ? "yes" : "no");

  // 5. Reliability is a statistic over passes, not one pass: wrap the same
  //    world in a Scenario and repeat.
  reliability::Scenario scenario{world, portal, std::move(registry), "quickstart"};
  const double reliability =
      reliability::measure_tracking_reliability(scenario, /*repetitions=*/40, /*seed=*/7);
  std::printf("tracking reliability over 40 passes: %.0f%%\n", reliability * 100.0);
  return 0;
}
