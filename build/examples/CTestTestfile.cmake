# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warehouse_portal "/root/repo/build/examples/warehouse_portal")
set_tests_properties(example_warehouse_portal PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_access_gate "/root/repo/build/examples/access_gate")
set_tests_properties(example_access_gate PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conveyor_audit "/root/repo/build/examples/conveyor_audit")
set_tests_properties(example_conveyor_audit PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_library_shelf "/root/repo/build/examples/library_shelf")
set_tests_properties(example_library_shelf PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dock_door_manifest "/root/repo/build/examples/dock_door_manifest")
set_tests_properties(example_dock_door_manifest PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
