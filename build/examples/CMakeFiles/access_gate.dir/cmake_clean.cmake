file(REMOVE_RECURSE
  "CMakeFiles/access_gate.dir/access_gate.cpp.o"
  "CMakeFiles/access_gate.dir/access_gate.cpp.o.d"
  "access_gate"
  "access_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
