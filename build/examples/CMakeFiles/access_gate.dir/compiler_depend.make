# Empty compiler generated dependencies file for access_gate.
# This may be replaced when dependencies are built.
