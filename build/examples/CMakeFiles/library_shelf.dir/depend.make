# Empty dependencies file for library_shelf.
# This may be replaced when dependencies are built.
