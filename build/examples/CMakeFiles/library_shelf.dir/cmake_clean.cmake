file(REMOVE_RECURSE
  "CMakeFiles/library_shelf.dir/library_shelf.cpp.o"
  "CMakeFiles/library_shelf.dir/library_shelf.cpp.o.d"
  "library_shelf"
  "library_shelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_shelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
