
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/library_shelf.cpp" "examples/CMakeFiles/library_shelf.dir/library_shelf.cpp.o" "gcc" "examples/CMakeFiles/library_shelf.dir/library_shelf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reliability/CMakeFiles/rfidsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/rfidsim_track.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/rfidsim_system.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/rfidsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfidsim_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
