# Empty dependencies file for warehouse_portal.
# This may be replaced when dependencies are built.
