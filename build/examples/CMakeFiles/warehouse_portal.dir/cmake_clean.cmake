file(REMOVE_RECURSE
  "CMakeFiles/warehouse_portal.dir/warehouse_portal.cpp.o"
  "CMakeFiles/warehouse_portal.dir/warehouse_portal.cpp.o.d"
  "warehouse_portal"
  "warehouse_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
