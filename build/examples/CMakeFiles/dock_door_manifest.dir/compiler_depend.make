# Empty compiler generated dependencies file for dock_door_manifest.
# This may be replaced when dependencies are built.
