file(REMOVE_RECURSE
  "CMakeFiles/dock_door_manifest.dir/dock_door_manifest.cpp.o"
  "CMakeFiles/dock_door_manifest.dir/dock_door_manifest.cpp.o.d"
  "dock_door_manifest"
  "dock_door_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dock_door_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
