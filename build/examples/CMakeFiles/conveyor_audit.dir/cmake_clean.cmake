file(REMOVE_RECURSE
  "CMakeFiles/conveyor_audit.dir/conveyor_audit.cpp.o"
  "CMakeFiles/conveyor_audit.dir/conveyor_audit.cpp.o.d"
  "conveyor_audit"
  "conveyor_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conveyor_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
