# Empty compiler generated dependencies file for conveyor_audit.
# This may be replaced when dependencies are built.
