# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/rf_tests[1]_include.cmake")
include("/root/repo/build/tests/scene_tests[1]_include.cmake")
include("/root/repo/build/tests/gen2_tests[1]_include.cmake")
include("/root/repo/build/tests/system_tests[1]_include.cmake")
include("/root/repo/build/tests/track_tests[1]_include.cmake")
include("/root/repo/build/tests/locate_tests[1]_include.cmake")
include("/root/repo/build/tests/reliability_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
