# Empty dependencies file for gen2_tests.
# This may be replaced when dependencies are built.
