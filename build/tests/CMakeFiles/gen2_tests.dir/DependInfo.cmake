
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gen2/epc_test.cpp" "tests/CMakeFiles/gen2_tests.dir/gen2/epc_test.cpp.o" "gcc" "tests/CMakeFiles/gen2_tests.dir/gen2/epc_test.cpp.o.d"
  "/root/repo/tests/gen2/estimation_test.cpp" "tests/CMakeFiles/gen2_tests.dir/gen2/estimation_test.cpp.o" "gcc" "tests/CMakeFiles/gen2_tests.dir/gen2/estimation_test.cpp.o.d"
  "/root/repo/tests/gen2/interference_test.cpp" "tests/CMakeFiles/gen2_tests.dir/gen2/interference_test.cpp.o" "gcc" "tests/CMakeFiles/gen2_tests.dir/gen2/interference_test.cpp.o.d"
  "/root/repo/tests/gen2/inventory_test.cpp" "tests/CMakeFiles/gen2_tests.dir/gen2/inventory_test.cpp.o" "gcc" "tests/CMakeFiles/gen2_tests.dir/gen2/inventory_test.cpp.o.d"
  "/root/repo/tests/gen2/tag_state_fuzz_test.cpp" "tests/CMakeFiles/gen2_tests.dir/gen2/tag_state_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/gen2_tests.dir/gen2/tag_state_fuzz_test.cpp.o.d"
  "/root/repo/tests/gen2/tag_state_test.cpp" "tests/CMakeFiles/gen2_tests.dir/gen2/tag_state_test.cpp.o" "gcc" "tests/CMakeFiles/gen2_tests.dir/gen2/tag_state_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reliability/CMakeFiles/rfidsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/locate/CMakeFiles/rfidsim_locate.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/rfidsim_track.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/rfidsim_system.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/rfidsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfidsim_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
