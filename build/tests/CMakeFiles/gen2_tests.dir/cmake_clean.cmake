file(REMOVE_RECURSE
  "CMakeFiles/gen2_tests.dir/gen2/epc_test.cpp.o"
  "CMakeFiles/gen2_tests.dir/gen2/epc_test.cpp.o.d"
  "CMakeFiles/gen2_tests.dir/gen2/estimation_test.cpp.o"
  "CMakeFiles/gen2_tests.dir/gen2/estimation_test.cpp.o.d"
  "CMakeFiles/gen2_tests.dir/gen2/interference_test.cpp.o"
  "CMakeFiles/gen2_tests.dir/gen2/interference_test.cpp.o.d"
  "CMakeFiles/gen2_tests.dir/gen2/inventory_test.cpp.o"
  "CMakeFiles/gen2_tests.dir/gen2/inventory_test.cpp.o.d"
  "CMakeFiles/gen2_tests.dir/gen2/tag_state_fuzz_test.cpp.o"
  "CMakeFiles/gen2_tests.dir/gen2/tag_state_fuzz_test.cpp.o.d"
  "CMakeFiles/gen2_tests.dir/gen2/tag_state_test.cpp.o"
  "CMakeFiles/gen2_tests.dir/gen2/tag_state_test.cpp.o.d"
  "gen2_tests"
  "gen2_tests.pdb"
  "gen2_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen2_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
