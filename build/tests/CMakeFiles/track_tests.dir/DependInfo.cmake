
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/track/adaptive_smoother_test.cpp" "tests/CMakeFiles/track_tests.dir/track/adaptive_smoother_test.cpp.o" "gcc" "tests/CMakeFiles/track_tests.dir/track/adaptive_smoother_test.cpp.o.d"
  "/root/repo/tests/track/cleaning_test.cpp" "tests/CMakeFiles/track_tests.dir/track/cleaning_test.cpp.o" "gcc" "tests/CMakeFiles/track_tests.dir/track/cleaning_test.cpp.o.d"
  "/root/repo/tests/track/manifest_test.cpp" "tests/CMakeFiles/track_tests.dir/track/manifest_test.cpp.o" "gcc" "tests/CMakeFiles/track_tests.dir/track/manifest_test.cpp.o.d"
  "/root/repo/tests/track/registry_test.cpp" "tests/CMakeFiles/track_tests.dir/track/registry_test.cpp.o" "gcc" "tests/CMakeFiles/track_tests.dir/track/registry_test.cpp.o.d"
  "/root/repo/tests/track/tracking_test.cpp" "tests/CMakeFiles/track_tests.dir/track/tracking_test.cpp.o" "gcc" "tests/CMakeFiles/track_tests.dir/track/tracking_test.cpp.o.d"
  "/root/repo/tests/track/zone_filter_test.cpp" "tests/CMakeFiles/track_tests.dir/track/zone_filter_test.cpp.o" "gcc" "tests/CMakeFiles/track_tests.dir/track/zone_filter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reliability/CMakeFiles/rfidsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/locate/CMakeFiles/rfidsim_locate.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/rfidsim_track.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/rfidsim_system.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/rfidsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfidsim_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
