# Empty compiler generated dependencies file for track_tests.
# This may be replaced when dependencies are built.
