file(REMOVE_RECURSE
  "CMakeFiles/track_tests.dir/track/adaptive_smoother_test.cpp.o"
  "CMakeFiles/track_tests.dir/track/adaptive_smoother_test.cpp.o.d"
  "CMakeFiles/track_tests.dir/track/cleaning_test.cpp.o"
  "CMakeFiles/track_tests.dir/track/cleaning_test.cpp.o.d"
  "CMakeFiles/track_tests.dir/track/manifest_test.cpp.o"
  "CMakeFiles/track_tests.dir/track/manifest_test.cpp.o.d"
  "CMakeFiles/track_tests.dir/track/registry_test.cpp.o"
  "CMakeFiles/track_tests.dir/track/registry_test.cpp.o.d"
  "CMakeFiles/track_tests.dir/track/tracking_test.cpp.o"
  "CMakeFiles/track_tests.dir/track/tracking_test.cpp.o.d"
  "CMakeFiles/track_tests.dir/track/zone_filter_test.cpp.o"
  "CMakeFiles/track_tests.dir/track/zone_filter_test.cpp.o.d"
  "track_tests"
  "track_tests.pdb"
  "track_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
