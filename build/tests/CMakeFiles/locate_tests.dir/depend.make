# Empty dependencies file for locate_tests.
# This may be replaced when dependencies are built.
