file(REMOVE_RECURSE
  "CMakeFiles/locate_tests.dir/locate/landmarc_integration_test.cpp.o"
  "CMakeFiles/locate_tests.dir/locate/landmarc_integration_test.cpp.o.d"
  "CMakeFiles/locate_tests.dir/locate/landmarc_test.cpp.o"
  "CMakeFiles/locate_tests.dir/locate/landmarc_test.cpp.o.d"
  "locate_tests"
  "locate_tests.pdb"
  "locate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
