# Empty compiler generated dependencies file for reliability_tests.
# This may be replaced when dependencies are built.
