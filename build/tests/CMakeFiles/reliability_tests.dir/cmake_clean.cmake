file(REMOVE_RECURSE
  "CMakeFiles/reliability_tests.dir/reliability/analytical_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/analytical_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/calibration_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/calibration_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/estimator_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/estimator_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/facility_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/facility_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/parallel_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/parallel_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/planner_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/planner_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/scenarios_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/scenarios_test.cpp.o.d"
  "CMakeFiles/reliability_tests.dir/reliability/schemes_test.cpp.o"
  "CMakeFiles/reliability_tests.dir/reliability/schemes_test.cpp.o.d"
  "reliability_tests"
  "reliability_tests.pdb"
  "reliability_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
