file(REMOVE_RECURSE
  "CMakeFiles/rf_tests.dir/rf/antenna_test.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/antenna_test.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/coupling_test.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/coupling_test.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/link_budget_test.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/link_budget_test.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/material_test.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/material_test.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/propagation_test.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/propagation_test.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/tag_design_test.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/tag_design_test.cpp.o.d"
  "rf_tests"
  "rf_tests.pdb"
  "rf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
