file(REMOVE_RECURSE
  "CMakeFiles/system_tests.dir/system/event_io_test.cpp.o"
  "CMakeFiles/system_tests.dir/system/event_io_test.cpp.o.d"
  "CMakeFiles/system_tests.dir/system/portal_test.cpp.o"
  "CMakeFiles/system_tests.dir/system/portal_test.cpp.o.d"
  "CMakeFiles/system_tests.dir/system/reader_test.cpp.o"
  "CMakeFiles/system_tests.dir/system/reader_test.cpp.o.d"
  "system_tests"
  "system_tests.pdb"
  "system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
