file(REMOVE_RECURSE
  "CMakeFiles/scene_tests.dir/scene/entity_test.cpp.o"
  "CMakeFiles/scene_tests.dir/scene/entity_test.cpp.o.d"
  "CMakeFiles/scene_tests.dir/scene/geometry_test.cpp.o"
  "CMakeFiles/scene_tests.dir/scene/geometry_test.cpp.o.d"
  "CMakeFiles/scene_tests.dir/scene/path_evaluator_test.cpp.o"
  "CMakeFiles/scene_tests.dir/scene/path_evaluator_test.cpp.o.d"
  "CMakeFiles/scene_tests.dir/scene/scene_test.cpp.o"
  "CMakeFiles/scene_tests.dir/scene/scene_test.cpp.o.d"
  "CMakeFiles/scene_tests.dir/scene/trajectory_test.cpp.o"
  "CMakeFiles/scene_tests.dir/scene/trajectory_test.cpp.o.d"
  "scene_tests"
  "scene_tests.pdb"
  "scene_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
