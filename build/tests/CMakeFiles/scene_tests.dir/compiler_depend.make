# Empty compiler generated dependencies file for scene_tests.
# This may be replaced when dependencies are built.
