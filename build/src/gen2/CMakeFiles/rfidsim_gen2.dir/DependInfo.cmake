
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen2/estimation.cpp" "src/gen2/CMakeFiles/rfidsim_gen2.dir/estimation.cpp.o" "gcc" "src/gen2/CMakeFiles/rfidsim_gen2.dir/estimation.cpp.o.d"
  "/root/repo/src/gen2/interference.cpp" "src/gen2/CMakeFiles/rfidsim_gen2.dir/interference.cpp.o" "gcc" "src/gen2/CMakeFiles/rfidsim_gen2.dir/interference.cpp.o.d"
  "/root/repo/src/gen2/inventory.cpp" "src/gen2/CMakeFiles/rfidsim_gen2.dir/inventory.cpp.o" "gcc" "src/gen2/CMakeFiles/rfidsim_gen2.dir/inventory.cpp.o.d"
  "/root/repo/src/gen2/tag_state.cpp" "src/gen2/CMakeFiles/rfidsim_gen2.dir/tag_state.cpp.o" "gcc" "src/gen2/CMakeFiles/rfidsim_gen2.dir/tag_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
