# Empty compiler generated dependencies file for rfidsim_gen2.
# This may be replaced when dependencies are built.
