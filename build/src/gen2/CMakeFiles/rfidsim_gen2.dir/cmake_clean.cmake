file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_gen2.dir/estimation.cpp.o"
  "CMakeFiles/rfidsim_gen2.dir/estimation.cpp.o.d"
  "CMakeFiles/rfidsim_gen2.dir/interference.cpp.o"
  "CMakeFiles/rfidsim_gen2.dir/interference.cpp.o.d"
  "CMakeFiles/rfidsim_gen2.dir/inventory.cpp.o"
  "CMakeFiles/rfidsim_gen2.dir/inventory.cpp.o.d"
  "CMakeFiles/rfidsim_gen2.dir/tag_state.cpp.o"
  "CMakeFiles/rfidsim_gen2.dir/tag_state.cpp.o.d"
  "librfidsim_gen2.a"
  "librfidsim_gen2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_gen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
