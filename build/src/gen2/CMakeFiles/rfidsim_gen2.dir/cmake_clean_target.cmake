file(REMOVE_RECURSE
  "librfidsim_gen2.a"
)
