
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/antenna.cpp" "src/rf/CMakeFiles/rfidsim_rf.dir/antenna.cpp.o" "gcc" "src/rf/CMakeFiles/rfidsim_rf.dir/antenna.cpp.o.d"
  "/root/repo/src/rf/coupling.cpp" "src/rf/CMakeFiles/rfidsim_rf.dir/coupling.cpp.o" "gcc" "src/rf/CMakeFiles/rfidsim_rf.dir/coupling.cpp.o.d"
  "/root/repo/src/rf/link_budget.cpp" "src/rf/CMakeFiles/rfidsim_rf.dir/link_budget.cpp.o" "gcc" "src/rf/CMakeFiles/rfidsim_rf.dir/link_budget.cpp.o.d"
  "/root/repo/src/rf/material.cpp" "src/rf/CMakeFiles/rfidsim_rf.dir/material.cpp.o" "gcc" "src/rf/CMakeFiles/rfidsim_rf.dir/material.cpp.o.d"
  "/root/repo/src/rf/propagation.cpp" "src/rf/CMakeFiles/rfidsim_rf.dir/propagation.cpp.o" "gcc" "src/rf/CMakeFiles/rfidsim_rf.dir/propagation.cpp.o.d"
  "/root/repo/src/rf/tag_design.cpp" "src/rf/CMakeFiles/rfidsim_rf.dir/tag_design.cpp.o" "gcc" "src/rf/CMakeFiles/rfidsim_rf.dir/tag_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
