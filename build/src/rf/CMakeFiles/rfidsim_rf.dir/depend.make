# Empty dependencies file for rfidsim_rf.
# This may be replaced when dependencies are built.
