file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_rf.dir/antenna.cpp.o"
  "CMakeFiles/rfidsim_rf.dir/antenna.cpp.o.d"
  "CMakeFiles/rfidsim_rf.dir/coupling.cpp.o"
  "CMakeFiles/rfidsim_rf.dir/coupling.cpp.o.d"
  "CMakeFiles/rfidsim_rf.dir/link_budget.cpp.o"
  "CMakeFiles/rfidsim_rf.dir/link_budget.cpp.o.d"
  "CMakeFiles/rfidsim_rf.dir/material.cpp.o"
  "CMakeFiles/rfidsim_rf.dir/material.cpp.o.d"
  "CMakeFiles/rfidsim_rf.dir/propagation.cpp.o"
  "CMakeFiles/rfidsim_rf.dir/propagation.cpp.o.d"
  "CMakeFiles/rfidsim_rf.dir/tag_design.cpp.o"
  "CMakeFiles/rfidsim_rf.dir/tag_design.cpp.o.d"
  "librfidsim_rf.a"
  "librfidsim_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
