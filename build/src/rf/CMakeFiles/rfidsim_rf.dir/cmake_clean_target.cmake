file(REMOVE_RECURSE
  "librfidsim_rf.a"
)
