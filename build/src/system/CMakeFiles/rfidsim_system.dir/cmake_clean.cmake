file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_system.dir/event_io.cpp.o"
  "CMakeFiles/rfidsim_system.dir/event_io.cpp.o.d"
  "CMakeFiles/rfidsim_system.dir/portal.cpp.o"
  "CMakeFiles/rfidsim_system.dir/portal.cpp.o.d"
  "librfidsim_system.a"
  "librfidsim_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
