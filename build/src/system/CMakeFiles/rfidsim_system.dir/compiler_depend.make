# Empty compiler generated dependencies file for rfidsim_system.
# This may be replaced when dependencies are built.
