file(REMOVE_RECURSE
  "librfidsim_system.a"
)
