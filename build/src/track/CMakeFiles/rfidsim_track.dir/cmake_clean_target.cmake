file(REMOVE_RECURSE
  "librfidsim_track.a"
)
