# Empty dependencies file for rfidsim_track.
# This may be replaced when dependencies are built.
