
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/adaptive_smoother.cpp" "src/track/CMakeFiles/rfidsim_track.dir/adaptive_smoother.cpp.o" "gcc" "src/track/CMakeFiles/rfidsim_track.dir/adaptive_smoother.cpp.o.d"
  "/root/repo/src/track/cleaning.cpp" "src/track/CMakeFiles/rfidsim_track.dir/cleaning.cpp.o" "gcc" "src/track/CMakeFiles/rfidsim_track.dir/cleaning.cpp.o.d"
  "/root/repo/src/track/manifest.cpp" "src/track/CMakeFiles/rfidsim_track.dir/manifest.cpp.o" "gcc" "src/track/CMakeFiles/rfidsim_track.dir/manifest.cpp.o.d"
  "/root/repo/src/track/registry.cpp" "src/track/CMakeFiles/rfidsim_track.dir/registry.cpp.o" "gcc" "src/track/CMakeFiles/rfidsim_track.dir/registry.cpp.o.d"
  "/root/repo/src/track/tracking.cpp" "src/track/CMakeFiles/rfidsim_track.dir/tracking.cpp.o" "gcc" "src/track/CMakeFiles/rfidsim_track.dir/tracking.cpp.o.d"
  "/root/repo/src/track/zone_filter.cpp" "src/track/CMakeFiles/rfidsim_track.dir/zone_filter.cpp.o" "gcc" "src/track/CMakeFiles/rfidsim_track.dir/zone_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/rfidsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/rfidsim_system.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfidsim_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
