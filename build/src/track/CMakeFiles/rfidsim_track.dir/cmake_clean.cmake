file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_track.dir/adaptive_smoother.cpp.o"
  "CMakeFiles/rfidsim_track.dir/adaptive_smoother.cpp.o.d"
  "CMakeFiles/rfidsim_track.dir/cleaning.cpp.o"
  "CMakeFiles/rfidsim_track.dir/cleaning.cpp.o.d"
  "CMakeFiles/rfidsim_track.dir/manifest.cpp.o"
  "CMakeFiles/rfidsim_track.dir/manifest.cpp.o.d"
  "CMakeFiles/rfidsim_track.dir/registry.cpp.o"
  "CMakeFiles/rfidsim_track.dir/registry.cpp.o.d"
  "CMakeFiles/rfidsim_track.dir/tracking.cpp.o"
  "CMakeFiles/rfidsim_track.dir/tracking.cpp.o.d"
  "CMakeFiles/rfidsim_track.dir/zone_filter.cpp.o"
  "CMakeFiles/rfidsim_track.dir/zone_filter.cpp.o.d"
  "librfidsim_track.a"
  "librfidsim_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
