file(REMOVE_RECURSE
  "librfidsim_locate.a"
)
