file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_locate.dir/landmarc.cpp.o"
  "CMakeFiles/rfidsim_locate.dir/landmarc.cpp.o.d"
  "librfidsim_locate.a"
  "librfidsim_locate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_locate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
