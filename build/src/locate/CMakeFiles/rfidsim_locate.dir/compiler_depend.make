# Empty compiler generated dependencies file for rfidsim_locate.
# This may be replaced when dependencies are built.
