file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_reliability.dir/analytical.cpp.o"
  "CMakeFiles/rfidsim_reliability.dir/analytical.cpp.o.d"
  "CMakeFiles/rfidsim_reliability.dir/estimator.cpp.o"
  "CMakeFiles/rfidsim_reliability.dir/estimator.cpp.o.d"
  "CMakeFiles/rfidsim_reliability.dir/facility.cpp.o"
  "CMakeFiles/rfidsim_reliability.dir/facility.cpp.o.d"
  "CMakeFiles/rfidsim_reliability.dir/planner.cpp.o"
  "CMakeFiles/rfidsim_reliability.dir/planner.cpp.o.d"
  "CMakeFiles/rfidsim_reliability.dir/scenarios.cpp.o"
  "CMakeFiles/rfidsim_reliability.dir/scenarios.cpp.o.d"
  "CMakeFiles/rfidsim_reliability.dir/schemes.cpp.o"
  "CMakeFiles/rfidsim_reliability.dir/schemes.cpp.o.d"
  "librfidsim_reliability.a"
  "librfidsim_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
