file(REMOVE_RECURSE
  "librfidsim_reliability.a"
)
