# Empty dependencies file for rfidsim_reliability.
# This may be replaced when dependencies are built.
