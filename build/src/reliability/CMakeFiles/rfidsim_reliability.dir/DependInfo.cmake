
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/analytical.cpp" "src/reliability/CMakeFiles/rfidsim_reliability.dir/analytical.cpp.o" "gcc" "src/reliability/CMakeFiles/rfidsim_reliability.dir/analytical.cpp.o.d"
  "/root/repo/src/reliability/estimator.cpp" "src/reliability/CMakeFiles/rfidsim_reliability.dir/estimator.cpp.o" "gcc" "src/reliability/CMakeFiles/rfidsim_reliability.dir/estimator.cpp.o.d"
  "/root/repo/src/reliability/facility.cpp" "src/reliability/CMakeFiles/rfidsim_reliability.dir/facility.cpp.o" "gcc" "src/reliability/CMakeFiles/rfidsim_reliability.dir/facility.cpp.o.d"
  "/root/repo/src/reliability/planner.cpp" "src/reliability/CMakeFiles/rfidsim_reliability.dir/planner.cpp.o" "gcc" "src/reliability/CMakeFiles/rfidsim_reliability.dir/planner.cpp.o.d"
  "/root/repo/src/reliability/scenarios.cpp" "src/reliability/CMakeFiles/rfidsim_reliability.dir/scenarios.cpp.o" "gcc" "src/reliability/CMakeFiles/rfidsim_reliability.dir/scenarios.cpp.o.d"
  "/root/repo/src/reliability/schemes.cpp" "src/reliability/CMakeFiles/rfidsim_reliability.dir/schemes.cpp.o" "gcc" "src/reliability/CMakeFiles/rfidsim_reliability.dir/schemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/rfidsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfidsim_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/rfidsim_system.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/rfidsim_track.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
