file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_common.dir/stats.cpp.o"
  "CMakeFiles/rfidsim_common.dir/stats.cpp.o.d"
  "CMakeFiles/rfidsim_common.dir/table.cpp.o"
  "CMakeFiles/rfidsim_common.dir/table.cpp.o.d"
  "CMakeFiles/rfidsim_common.dir/units.cpp.o"
  "CMakeFiles/rfidsim_common.dir/units.cpp.o.d"
  "librfidsim_common.a"
  "librfidsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
