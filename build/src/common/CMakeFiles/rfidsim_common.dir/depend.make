# Empty dependencies file for rfidsim_common.
# This may be replaced when dependencies are built.
