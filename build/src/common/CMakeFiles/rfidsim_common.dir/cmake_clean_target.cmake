file(REMOVE_RECURSE
  "librfidsim_common.a"
)
