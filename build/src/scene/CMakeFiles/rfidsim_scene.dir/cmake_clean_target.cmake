file(REMOVE_RECURSE
  "librfidsim_scene.a"
)
