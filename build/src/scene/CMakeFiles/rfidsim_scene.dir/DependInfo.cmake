
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/entity.cpp" "src/scene/CMakeFiles/rfidsim_scene.dir/entity.cpp.o" "gcc" "src/scene/CMakeFiles/rfidsim_scene.dir/entity.cpp.o.d"
  "/root/repo/src/scene/geometry.cpp" "src/scene/CMakeFiles/rfidsim_scene.dir/geometry.cpp.o" "gcc" "src/scene/CMakeFiles/rfidsim_scene.dir/geometry.cpp.o.d"
  "/root/repo/src/scene/path_evaluator.cpp" "src/scene/CMakeFiles/rfidsim_scene.dir/path_evaluator.cpp.o" "gcc" "src/scene/CMakeFiles/rfidsim_scene.dir/path_evaluator.cpp.o.d"
  "/root/repo/src/scene/trajectory.cpp" "src/scene/CMakeFiles/rfidsim_scene.dir/trajectory.cpp.o" "gcc" "src/scene/CMakeFiles/rfidsim_scene.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfidsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfidsim_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
