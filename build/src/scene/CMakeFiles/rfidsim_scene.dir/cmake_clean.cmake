file(REMOVE_RECURSE
  "CMakeFiles/rfidsim_scene.dir/entity.cpp.o"
  "CMakeFiles/rfidsim_scene.dir/entity.cpp.o.d"
  "CMakeFiles/rfidsim_scene.dir/geometry.cpp.o"
  "CMakeFiles/rfidsim_scene.dir/geometry.cpp.o.d"
  "CMakeFiles/rfidsim_scene.dir/path_evaluator.cpp.o"
  "CMakeFiles/rfidsim_scene.dir/path_evaluator.cpp.o.d"
  "CMakeFiles/rfidsim_scene.dir/trajectory.cpp.o"
  "CMakeFiles/rfidsim_scene.dir/trajectory.cpp.o.d"
  "librfidsim_scene.a"
  "librfidsim_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfidsim_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
