# Empty dependencies file for rfidsim_scene.
# This may be replaced when dependencies are built.
