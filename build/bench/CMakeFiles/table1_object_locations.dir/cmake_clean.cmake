file(REMOVE_RECURSE
  "CMakeFiles/table1_object_locations.dir/table1_object_locations.cpp.o"
  "CMakeFiles/table1_object_locations.dir/table1_object_locations.cpp.o.d"
  "table1_object_locations"
  "table1_object_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_object_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
