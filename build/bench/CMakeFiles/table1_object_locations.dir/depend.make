# Empty dependencies file for table1_object_locations.
# This may be replaced when dependencies are built.
