file(REMOVE_RECURSE
  "CMakeFiles/table2_human_tracking.dir/table2_human_tracking.cpp.o"
  "CMakeFiles/table2_human_tracking.dir/table2_human_tracking.cpp.o.d"
  "table2_human_tracking"
  "table2_human_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_human_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
