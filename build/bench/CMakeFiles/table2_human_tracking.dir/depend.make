# Empty dependencies file for table2_human_tracking.
# This may be replaced when dependencies are built.
