file(REMOVE_RECURSE
  "CMakeFiles/fig6_one_subject.dir/fig6_one_subject.cpp.o"
  "CMakeFiles/fig6_one_subject.dir/fig6_one_subject.cpp.o.d"
  "fig6_one_subject"
  "fig6_one_subject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_one_subject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
