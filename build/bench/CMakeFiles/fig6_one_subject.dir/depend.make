# Empty dependencies file for fig6_one_subject.
# This may be replaced when dependencies are built.
