file(REMOVE_RECURSE
  "CMakeFiles/extension_population_estimation.dir/extension_population_estimation.cpp.o"
  "CMakeFiles/extension_population_estimation.dir/extension_population_estimation.cpp.o.d"
  "extension_population_estimation"
  "extension_population_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_population_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
