# Empty compiler generated dependencies file for extension_population_estimation.
# This may be replaced when dependencies are built.
