# Empty dependencies file for ablation_physics.
# This may be replaced when dependencies are built.
