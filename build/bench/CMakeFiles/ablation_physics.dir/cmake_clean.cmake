file(REMOVE_RECURSE
  "CMakeFiles/ablation_physics.dir/ablation_physics.cpp.o"
  "CMakeFiles/ablation_physics.dir/ablation_physics.cpp.o.d"
  "ablation_physics"
  "ablation_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
