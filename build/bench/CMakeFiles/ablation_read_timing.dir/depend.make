# Empty dependencies file for ablation_read_timing.
# This may be replaced when dependencies are built.
