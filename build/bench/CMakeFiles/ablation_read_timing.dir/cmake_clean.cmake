file(REMOVE_RECURSE
  "CMakeFiles/ablation_read_timing.dir/ablation_read_timing.cpp.o"
  "CMakeFiles/ablation_read_timing.dir/ablation_read_timing.cpp.o.d"
  "ablation_read_timing"
  "ablation_read_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_read_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
