# Empty dependencies file for fig7_two_subjects.
# This may be replaced when dependencies are built.
