file(REMOVE_RECURSE
  "CMakeFiles/fig7_two_subjects.dir/fig7_two_subjects.cpp.o"
  "CMakeFiles/fig7_two_subjects.dir/fig7_two_subjects.cpp.o.d"
  "fig7_two_subjects"
  "fig7_two_subjects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_two_subjects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
