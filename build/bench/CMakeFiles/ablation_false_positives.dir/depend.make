# Empty dependencies file for ablation_false_positives.
# This may be replaced when dependencies are built.
