file(REMOVE_RECURSE
  "CMakeFiles/ablation_false_positives.dir/ablation_false_positives.cpp.o"
  "CMakeFiles/ablation_false_positives.dir/ablation_false_positives.cpp.o.d"
  "ablation_false_positives"
  "ablation_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
