# Empty dependencies file for extension_facility.
# This may be replaced when dependencies are built.
