file(REMOVE_RECURSE
  "CMakeFiles/extension_facility.dir/extension_facility.cpp.o"
  "CMakeFiles/extension_facility.dir/extension_facility.cpp.o.d"
  "extension_facility"
  "extension_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
