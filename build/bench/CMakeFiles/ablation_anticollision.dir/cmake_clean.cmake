file(REMOVE_RECURSE
  "CMakeFiles/ablation_anticollision.dir/ablation_anticollision.cpp.o"
  "CMakeFiles/ablation_anticollision.dir/ablation_anticollision.cpp.o.d"
  "ablation_anticollision"
  "ablation_anticollision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anticollision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
