# Empty compiler generated dependencies file for ablation_anticollision.
# This may be replaced when dependencies are built.
