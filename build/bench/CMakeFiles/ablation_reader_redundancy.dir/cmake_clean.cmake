file(REMOVE_RECURSE
  "CMakeFiles/ablation_reader_redundancy.dir/ablation_reader_redundancy.cpp.o"
  "CMakeFiles/ablation_reader_redundancy.dir/ablation_reader_redundancy.cpp.o.d"
  "ablation_reader_redundancy"
  "ablation_reader_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reader_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
