file(REMOVE_RECURSE
  "CMakeFiles/fig4_intertag_orientation.dir/fig4_intertag_orientation.cpp.o"
  "CMakeFiles/fig4_intertag_orientation.dir/fig4_intertag_orientation.cpp.o.d"
  "fig4_intertag_orientation"
  "fig4_intertag_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_intertag_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
