# Empty compiler generated dependencies file for fig4_intertag_orientation.
# This may be replaced when dependencies are built.
