file(REMOVE_RECURSE
  "CMakeFiles/table3_fig5_object_redundancy.dir/table3_fig5_object_redundancy.cpp.o"
  "CMakeFiles/table3_fig5_object_redundancy.dir/table3_fig5_object_redundancy.cpp.o.d"
  "table3_fig5_object_redundancy"
  "table3_fig5_object_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fig5_object_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
