# Empty compiler generated dependencies file for table3_fig5_object_redundancy.
# This may be replaced when dependencies are built.
