# Empty compiler generated dependencies file for extension_landmarc.
# This may be replaced when dependencies are built.
