file(REMOVE_RECURSE
  "CMakeFiles/extension_landmarc.dir/extension_landmarc.cpp.o"
  "CMakeFiles/extension_landmarc.dir/extension_landmarc.cpp.o.d"
  "extension_landmarc"
  "extension_landmarc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_landmarc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
