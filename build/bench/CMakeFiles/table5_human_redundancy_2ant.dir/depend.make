# Empty dependencies file for table5_human_redundancy_2ant.
# This may be replaced when dependencies are built.
