file(REMOVE_RECURSE
  "CMakeFiles/table5_human_redundancy_2ant.dir/table5_human_redundancy_2ant.cpp.o"
  "CMakeFiles/table5_human_redundancy_2ant.dir/table5_human_redundancy_2ant.cpp.o.d"
  "table5_human_redundancy_2ant"
  "table5_human_redundancy_2ant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_human_redundancy_2ant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
