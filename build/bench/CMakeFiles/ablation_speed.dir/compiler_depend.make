# Empty compiler generated dependencies file for ablation_speed.
# This may be replaced when dependencies are built.
