file(REMOVE_RECURSE
  "CMakeFiles/ablation_speed.dir/ablation_speed.cpp.o"
  "CMakeFiles/ablation_speed.dir/ablation_speed.cpp.o.d"
  "ablation_speed"
  "ablation_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
