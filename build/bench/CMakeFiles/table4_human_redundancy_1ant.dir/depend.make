# Empty dependencies file for table4_human_redundancy_1ant.
# This may be replaced when dependencies are built.
