file(REMOVE_RECURSE
  "CMakeFiles/table4_human_redundancy_1ant.dir/table4_human_redundancy_1ant.cpp.o"
  "CMakeFiles/table4_human_redundancy_1ant.dir/table4_human_redundancy_1ant.cpp.o.d"
  "table4_human_redundancy_1ant"
  "table4_human_redundancy_1ant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_human_redundancy_1ant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
