# Empty dependencies file for extension_tag_designs.
# This may be replaced when dependencies are built.
