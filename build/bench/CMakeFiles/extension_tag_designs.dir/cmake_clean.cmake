file(REMOVE_RECURSE
  "CMakeFiles/extension_tag_designs.dir/extension_tag_designs.cpp.o"
  "CMakeFiles/extension_tag_designs.dir/extension_tag_designs.cpp.o.d"
  "extension_tag_designs"
  "extension_tag_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tag_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
