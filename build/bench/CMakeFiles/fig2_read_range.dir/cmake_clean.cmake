file(REMOVE_RECURSE
  "CMakeFiles/fig2_read_range.dir/fig2_read_range.cpp.o"
  "CMakeFiles/fig2_read_range.dir/fig2_read_range.cpp.o.d"
  "fig2_read_range"
  "fig2_read_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_read_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
