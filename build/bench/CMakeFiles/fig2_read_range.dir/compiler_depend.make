# Empty compiler generated dependencies file for fig2_read_range.
# This may be replaced when dependencies are built.
