// rfidsim::fleet — crash-safe checkpoint/restore for TrackingStore.
//
// A backend that absorbs millions of sightings cannot afford to lose them
// to a crash, and a checkpoint it cannot *trust* is worse than none. This
// module snapshots a TrackingStore into the same checksummed wire framing
// the uplink uses (wire::append_frame; opcodes kCheckpointHeader /
// kCheckpointShard / kCheckpointEnd), so every corruption defence built
// for the wire — CRC-16 envelopes, strict payload decoding, a typed error
// taxonomy — protects the durability path for free.
//
// Snapshot shape (a byte stream of frames):
//
//   kCheckpointHeader   kind (full|incremental), sequence number,
//                       shard count, StoreStats.
//   kCheckpointShard*   one frame per written shard: index, counters,
//                       timelines (EPC-delta dictionary, per-sighting
//                       time-bit deltas — the batch codec's tricks).
//   kCheckpointEnd      shards-written count and the store's digest() at
//                       snapshot time, little-endian.
//
// Incremental checkpoints write only shards whose version counter moved
// since this Checkpointer's previous snapshot; the end digest still covers
// the *whole* store, so a restore chain proves itself end-to-end.
//
// Restore contract (the crash-safety half):
//
//   ALL-OR-NOTHING: restore_checkpoint() returns a store whose digest()
//   is bit-identical to the digest recorded at snapshot time, or throws
//   CheckpointError. It never returns partial state — decoding happens
//   into a scratch store that is discarded on any failure — and never
//   crashes on hostile bytes: every read is bounds-checked, every frame
//   CRC-verified, every structural surprise a typed error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "fleet/store.hpp"
#include "wire/wire.hpp"

namespace rfidsim::fleet {

/// Why a restore refused a checkpoint. Wire-level failures (bad CRC,
/// truncation...) surface as kBadFrame with the underlying
/// wire::DecodeErrorKind attached.
enum class CheckpointErrorKind : std::uint8_t {
  kBadFrame = 0,        ///< Frame envelope failed (see wire_error()).
  kBadPayload = 1,      ///< Frame decoded but its payload is malformed.
  kBadSequence = 2,     ///< Chain order violated (gap, or first not full).
  kMissingHeader = 3,   ///< Stream does not start with a header frame.
  kMissingEnd = 4,      ///< Stream ended without a kCheckpointEnd frame.
  kShardMismatch = 5,   ///< Shard index/count disagrees with the header.
  kDigestMismatch = 6,  ///< Restored store digest != recorded digest.
};

/// Stable lower-snake name ("bad_frame", "digest_mismatch", ...) for
/// counters, logs, and test assertions.
const char* checkpoint_error_name(CheckpointErrorKind kind);

/// Thrown by restore_checkpoint(). Permanent: retrying the same bytes
/// cannot help; the caller falls back to an older checkpoint or a rebuild.
class CheckpointError : public PermanentError {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& message)
      : PermanentError(message), kind_(kind) {}
  CheckpointError(wire::DecodeErrorKind wire_kind, const std::string& message)
      : PermanentError(message),
        kind_(CheckpointErrorKind::kBadFrame),
        wire_error_(wire_kind) {}

  CheckpointErrorKind kind() const { return kind_; }
  /// Underlying wire failure; meaningful only when kind() == kBadFrame.
  wire::DecodeErrorKind wire_error() const { return wire_error_; }

 private:
  CheckpointErrorKind kind_;
  wire::DecodeErrorKind wire_error_{};
};

/// What one snapshot wrote (for gauges and bench records).
struct CheckpointStats {
  bool incremental = false;
  std::uint64_t sequence = 0;       ///< Sequence number of this snapshot.
  std::size_t shards_written = 0;   ///< Shard frames emitted.
  std::size_t shards_skipped = 0;   ///< Unchanged shards elided.
  std::size_t timelines_written = 0;
  std::size_t sightings_written = 0;
  std::size_t bytes = 0;            ///< Total framed bytes.
};

/// Writes snapshots of one TrackingStore. Stateful: it remembers the
/// per-shard versions of its last snapshot so incremental() can skip
/// unchanged shards. One Checkpointer per store; sequence numbers tie the
/// chain together for the restorer.
class Checkpointer {
 public:
  /// Full snapshot of every shard. Resets the incremental baseline.
  std::vector<std::uint8_t> full(const TrackingStore& store);

  /// Snapshot of only the shards mutated since this Checkpointer's last
  /// snapshot. The first call (no baseline yet) degrades to full().
  std::vector<std::uint8_t> incremental(const TrackingStore& store);

  /// What the most recent full()/incremental() call wrote.
  const CheckpointStats& last_stats() const { return last_stats_; }

 private:
  std::vector<std::uint8_t> write(const TrackingStore& store, bool incremental);

  std::vector<std::uint64_t> baseline_versions_;
  std::uint64_t next_sequence_ = 0;
  CheckpointStats last_stats_;
};

/// Rebuilds a store from one snapshot, or from a chain of snapshots
/// concatenated in write order (one full, then its incrementals). `threads`
/// configures the returned store's ingest parallelism; shard count comes
/// from the checkpoint header. Throws CheckpointError on any defect —
/// never returns partial state.
TrackingStore restore_checkpoint(const std::uint8_t* data, std::size_t size,
                                 std::size_t threads = 1);
TrackingStore restore_checkpoint(const std::vector<std::uint8_t>& bytes,
                                 std::size_t threads = 1);

}  // namespace rfidsim::fleet
