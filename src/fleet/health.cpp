#include "fleet/health.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace rfidsim::fleet {

namespace {

/// Fixed 6-decimal formatting so snapshots diff cleanly; JSON has no
/// encoding for inf/nan, so non-finite collapses to the "unknown" sentinel.
void put_json_double(std::ostream& out, double x) {
  if (!std::isfinite(x)) {
    out << "-1";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", x);
  out << buf;
}

/// Prometheus understands +Inf/-Inf; keep them (an infinite watermark age
/// is a scrapeable fact: nothing merged yet).
void put_prom_double(std::ostream& out, double x) {
  if (std::isinf(x)) {
    out << (x > 0 ? "+Inf" : "-Inf");
    return;
  }
  if (std::isnan(x)) {
    out << "NaN";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", x);
  out << buf;
}

void put_totals_json(std::ostream& out, const FeedTotals& t) {
  out << "{\"delivered_batches\":" << t.delivered_batches
      << ",\"stored_events\":" << t.stored_events
      << ",\"quarantined_records\":" << t.quarantined_records
      << ",\"late_batches\":" << t.late_batches
      << ",\"lost_batches\":" << t.lost_batches
      << ",\"stale_batches\":" << t.stale_batches
      << ",\"frames_sent\":" << t.frames_sent
      << ",\"corrupt_frames\":" << t.corrupt_frames
      << ",\"recovered_batches\":" << t.recovered_batches
      << ",\"quarantined_batches\":" << t.quarantined_batches << "}";
}

/// One per-facility gauge line: name{facility="N"} value.
void prom_facility_line(std::ostream& out, const char* name,
                        FacilityId facility, double value) {
  out << name << "{facility=\"" << facility << "\"} ";
  put_prom_double(out, value);
  out << "\n";
}

}  // namespace

void write_health_json(std::ostream& out, const FleetHealth& health) {
  out << "{\"facilities\":" << health.facilities << ",\"tags\":" << health.tags
      << ",\"sightings\":" << health.sightings
      << ",\"alerts_total\":" << health.alerts_total
      << ",\"stalled_facilities\":" << health.stalled_facilities
      << ",\"min_watermark_s\":";
  put_json_double(out, health.min_watermark_s);
  out << ",\"store\":{\"batches\":" << health.store.batches
      << ",\"events\":" << health.store.events
      << ",\"accepted\":" << health.store.accepted
      << ",\"duplicates\":" << health.store.duplicates
      << ",\"repairs\":" << health.store.repairs
      << ",\"late_batches\":" << health.store.late_batches << "}"
      << ",\"obs\":{\"provenance_dropped\":" << health.provenance_dropped
      << ",\"flight_dump_attempts\":" << health.flight_dump_attempts
      << ",\"flight_dump_failures\":" << health.flight_dump_failures
      << ",\"crash_handler_installed\":"
      << (health.crash_handler_installed ? "true" : "false") << "}"
      << ",\"per_facility\":[";
  bool first = true;
  for (const FacilityHealth& f : health.per_facility) {
    if (!first) out << ",";
    first = false;
    out << "{\"facility\":" << f.facility << ",\"passes\":" << f.passes
        << ",\"watermark_s\":";
    put_json_double(out, f.watermark_s);
    out << ",\"watermark_age_s\":";
    put_json_double(out, f.watermark_age_s);
    out << ",\"watermark_stalled\":" << (f.watermark_stalled ? "true" : "false")
        << ",\"watermark_stall_streak\":" << f.watermark_stall_streak
        << ",\"observed_rc\":";
    put_json_double(out, f.observed_rc);
    out << ",\"predicted_rc\":";
    put_json_double(out, f.predicted_rc);
    out << ",\"alerts_total\":" << f.alerts_total << ",\"alerts\":{";
    for (std::size_t i = 0; i < obs::kAlertTypeCount; ++i) {
      if (i != 0) out << ",";
      out << "\"" << obs::alert_type_name(static_cast<obs::AlertType>(i))
          << "\":" << f.alerts_by_type[i];
    }
    out << "},\"totals\":";
    put_totals_json(out, f.totals);
    out << "}";
  }
  out << "]}\n";
}

void write_health_prometheus(std::ostream& out, const FleetHealth& health) {
  out << "# HELP rfidsim_fleet_health_facilities Facilities feeding the store.\n"
      << "# TYPE rfidsim_fleet_health_facilities gauge\n"
      << "rfidsim_fleet_health_facilities " << health.facilities << "\n";
  out << "# HELP rfidsim_fleet_health_tags Distinct EPCs stored.\n"
      << "# TYPE rfidsim_fleet_health_tags gauge\n"
      << "rfidsim_fleet_health_tags " << health.tags << "\n";
  out << "# HELP rfidsim_fleet_health_sightings Stored sightings.\n"
      << "# TYPE rfidsim_fleet_health_sightings gauge\n"
      << "rfidsim_fleet_health_sightings " << health.sightings << "\n";
  out << "# HELP rfidsim_fleet_health_alerts_total Monitor alerts fleet-wide.\n"
      << "# TYPE rfidsim_fleet_health_alerts_total gauge\n"
      << "rfidsim_fleet_health_alerts_total " << health.alerts_total << "\n";
  out << "# HELP rfidsim_fleet_health_stalled_facilities Facilities whose "
         "freshness watermark is currently stalled.\n"
      << "# TYPE rfidsim_fleet_health_stalled_facilities gauge\n"
      << "rfidsim_fleet_health_stalled_facilities " << health.stalled_facilities
      << "\n";
  out << "# HELP rfidsim_fleet_health_min_watermark_seconds Fleet-wide "
         "freshness floor (-1 = a facility has merged nothing).\n"
      << "# TYPE rfidsim_fleet_health_min_watermark_seconds gauge\n"
      << "rfidsim_fleet_health_min_watermark_seconds ";
  put_prom_double(out, health.min_watermark_s);
  out << "\n";

  out << "# HELP rfidsim_fleet_health_provenance_dropped_records Provenance "
         "ring-wrap losses (telemetry self-health).\n"
      << "# TYPE rfidsim_fleet_health_provenance_dropped_records gauge\n"
      << "rfidsim_fleet_health_provenance_dropped_records "
      << health.provenance_dropped << "\n";
  out << "# HELP rfidsim_fleet_health_flight_dump_attempts Explicit flight-"
         "recorder dumps attempted.\n"
      << "# TYPE rfidsim_fleet_health_flight_dump_attempts gauge\n"
      << "rfidsim_fleet_health_flight_dump_attempts "
      << health.flight_dump_attempts << "\n";
  out << "# HELP rfidsim_fleet_health_flight_dump_failures Flight-recorder "
         "dumps that could not be written.\n"
      << "# TYPE rfidsim_fleet_health_flight_dump_failures gauge\n"
      << "rfidsim_fleet_health_flight_dump_failures "
      << health.flight_dump_failures << "\n";
  out << "# HELP rfidsim_fleet_health_crash_handler_installed 1 when a fatal-"
         "signal flight dump path is armed.\n"
      << "# TYPE rfidsim_fleet_health_crash_handler_installed gauge\n"
      << "rfidsim_fleet_health_crash_handler_installed "
      << (health.crash_handler_installed ? 1 : 0) << "\n";

  out << "# HELP rfidsim_fleet_health_watermark_seconds Per-facility "
         "event-time low-watermark.\n"
      << "# TYPE rfidsim_fleet_health_watermark_seconds gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    prom_facility_line(out, "rfidsim_fleet_health_watermark_seconds",
                       f.facility, f.watermark_s);
  }
  out << "# HELP rfidsim_fleet_health_watermark_age_seconds Window end minus "
         "watermark (+Inf = nothing merged).\n"
      << "# TYPE rfidsim_fleet_health_watermark_age_seconds gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    prom_facility_line(out, "rfidsim_fleet_health_watermark_age_seconds",
                       f.facility, f.watermark_age_s);
  }
  out << "# HELP rfidsim_fleet_health_watermark_stalled 1 while the stall "
         "detector is latched.\n"
      << "# TYPE rfidsim_fleet_health_watermark_stalled gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    out << "rfidsim_fleet_health_watermark_stalled{facility=\"" << f.facility
        << "\"} " << (f.watermark_stalled ? 1 : 0) << "\n";
  }
  out << "# HELP rfidsim_fleet_health_observed_rc Monitor's windowed portal "
         "read rate.\n"
      << "# TYPE rfidsim_fleet_health_observed_rc gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    prom_facility_line(out, "rfidsim_fleet_health_observed_rc", f.facility,
                       f.observed_rc);
  }
  out << "# HELP rfidsim_fleet_health_predicted_rc Composed per-reader "
         "prediction.\n"
      << "# TYPE rfidsim_fleet_health_predicted_rc gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    prom_facility_line(out, "rfidsim_fleet_health_predicted_rc", f.facility,
                       f.predicted_rc);
  }
  out << "# HELP rfidsim_fleet_health_alerts Monitor alerts by facility and "
         "type.\n"
      << "# TYPE rfidsim_fleet_health_alerts gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    for (std::size_t i = 0; i < obs::kAlertTypeCount; ++i) {
      out << "rfidsim_fleet_health_alerts{facility=\"" << f.facility
          << "\",type=\""
          << obs::alert_type_name(static_cast<obs::AlertType>(i)) << "\"} "
          << f.alerts_by_type[i] << "\n";
    }
  }
  out << "# HELP rfidsim_fleet_health_lost_batches Batches the upload hop "
         "dropped for good.\n"
      << "# TYPE rfidsim_fleet_health_lost_batches gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    out << "rfidsim_fleet_health_lost_batches{facility=\"" << f.facility
        << "\"} " << f.totals.lost_batches << "\n";
  }
  out << "# HELP rfidsim_fleet_health_corrupt_frames Receiver-detected bad "
         "frames.\n"
      << "# TYPE rfidsim_fleet_health_corrupt_frames gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    out << "rfidsim_fleet_health_corrupt_frames{facility=\"" << f.facility
        << "\"} " << f.totals.corrupt_frames << "\n";
  }
  out << "# HELP rfidsim_fleet_health_quarantined_batches Batches dropped "
         "after exhausting the NAK budget.\n"
      << "# TYPE rfidsim_fleet_health_quarantined_batches gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    out << "rfidsim_fleet_health_quarantined_batches{facility=\"" << f.facility
        << "\"} " << f.totals.quarantined_batches << "\n";
  }
  out << "# HELP rfidsim_fleet_health_quarantined_records Records rejected by "
         "per-batch validation.\n"
      << "# TYPE rfidsim_fleet_health_quarantined_records gauge\n";
  for (const FacilityHealth& f : health.per_facility) {
    out << "rfidsim_fleet_health_quarantined_records{facility=\"" << f.facility
        << "\"} " << f.totals.quarantined_records << "\n";
  }
}

}  // namespace rfidsim::fleet
