// rfidsim::fleet — the assembled tracking backend.
//
// FleetService wires the pieces into the shape an application would
// deploy: one sharded TrackingStore, one FacilityFeed per facility, and
// one QueryService answering locate/inventory/missing over the store.
// After every ingested pass the service refreshes that facility's
// reliability model from its feed's monitor, so query confidence always
// reflects the latest windowed per-reader read rates and silence state —
// the online loop the paper's static model lacks.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "fleet/feed.hpp"
#include "fleet/health.hpp"
#include "fleet/query.hpp"
#include "fleet/store.hpp"
#include "track/registry.hpp"

namespace rfidsim::fleet {

/// Owns the store, the feeds, and the query layer. The registry must
/// outlive the service. Not movable: QueryService holds references.
class FleetService {
 public:
  FleetService(const track::ObjectRegistry& registry, StoreConfig store_config = {},
               QueryConfig query_config = {});
  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Registers one facility; returns its id. The id is assigned by the
  /// service (config.facility is overwritten) so store rows and feed
  /// always agree.
  FacilityId add_facility(FeedConfig config);

  std::size_t facility_count() const { return feeds_.size(); }
  FacilityFeed& feed(FacilityId facility);
  const FacilityFeed& feed(FacilityId facility) const;

  /// Runs one pass of `facility`'s raw log through its feed into the
  /// store, then refreshes the facility's query-side reliability model.
  FeedPassResult ingest_pass(FacilityId facility, const sys::EventLog& raw,
                             double window_begin_s, double window_end_s, Rng& rng);

  const TrackingStore& store() const { return store_; }
  QueryService& query() { return query_; }
  const QueryService& query() const { return query_; }

  /// The fleet health document at this instant: per-facility watermarks,
  /// stall state, monitor alert tallies, wire/quarantine depths, and the
  /// store's aggregate stats. Built from always-on state, so the snapshot
  /// is identical whether obs hooks are on, off, or compiled out.
  FleetHealth health_snapshot() const;

 private:
  const track::ObjectRegistry& registry_;
  TrackingStore store_;
  QueryService query_;
  std::vector<std::unique_ptr<FacilityFeed>> feeds_;
};

}  // namespace rfidsim::fleet
