#include "fleet/checkpoint.hpp"

#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace rfidsim::fleet {

namespace {

/// Shard counts above this in a header are treated as corruption, not
/// configuration — a defence against a forged length driving a giant
/// allocation before the digest check can catch it.
constexpr std::uint64_t kMaxShardCount = 1u << 16;

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

double double_of(std::uint64_t u) {
  double x = 0.0;
  std::memcpy(&x, &u, sizeof x);
  return x;
}

void put_stats(std::vector<std::uint8_t>& out, const StoreStats& s) {
  wire::put_varint(out, s.batches);
  wire::put_varint(out, s.events);
  wire::put_varint(out, s.accepted);
  wire::put_varint(out, s.duplicates);
  wire::put_varint(out, s.repairs);
  wire::put_varint(out, s.late_batches);
}

bool get_stats(wire::Reader& r, StoreStats& s) {
  return r.get_varint(s.batches) && r.get_varint(s.events) &&
         r.get_varint(s.accepted) && r.get_varint(s.duplicates) &&
         r.get_varint(s.repairs) && r.get_varint(s.late_batches);
}

[[noreturn]] void fail(CheckpointErrorKind kind, const std::string& message) {
  throw CheckpointError(kind, message);
}

}  // namespace

const char* checkpoint_error_name(CheckpointErrorKind kind) {
  switch (kind) {
    case CheckpointErrorKind::kBadFrame: return "bad_frame";
    case CheckpointErrorKind::kBadPayload: return "bad_payload";
    case CheckpointErrorKind::kBadSequence: return "bad_sequence";
    case CheckpointErrorKind::kMissingHeader: return "missing_header";
    case CheckpointErrorKind::kMissingEnd: return "missing_end";
    case CheckpointErrorKind::kShardMismatch: return "shard_mismatch";
    case CheckpointErrorKind::kDigestMismatch: return "digest_mismatch";
  }
  return "unknown";
}

std::vector<std::uint8_t> Checkpointer::full(const TrackingStore& store) {
  return write(store, false);
}

std::vector<std::uint8_t> Checkpointer::incremental(const TrackingStore& store) {
  // No baseline (first snapshot, or the store's shard count changed under
  // us) degrades to a full snapshot — always safe, never silently wrong.
  const bool can_diff =
      baseline_versions_.size() == store.config().shard_count;
  return write(store, can_diff);
}

std::vector<std::uint8_t> Checkpointer::write(const TrackingStore& store,
                                              bool incremental) {
  const obs::TraceSpan span("fleet.checkpoint.write");
  const std::size_t shard_count = store.config().shard_count;
  CheckpointStats st;
  st.incremental = incremental;
  st.sequence = next_sequence_++;

  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> payload;

  // Header: kind, sequence, shard roster size, ingest tallies.
  payload.push_back(incremental ? 1 : 0);
  wire::put_varint(payload, st.sequence);
  wire::put_varint(payload, shard_count);
  put_stats(payload, store.stats());
  wire::append_frame(out, wire::OpCode::kCheckpointHeader, payload);

  // One frame per written shard. A full snapshot writes every shard (even
  // empty ones — predictable framing beats a few saved bytes); an
  // incremental writes only shards whose version moved since the baseline.
  std::vector<std::uint8_t> body;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const TrackingStore::ShardCounters counters = store.shard_counters(s);
    if (incremental && counters.version == baseline_versions_[s]) {
      ++st.shards_skipped;
      continue;
    }
    payload.clear();
    wire::put_varint(payload, s);
    wire::put_varint(payload, counters.sightings);
    wire::put_varint(payload, counters.duplicates);
    wire::put_varint(payload, counters.repairs);
    wire::put_varint(payload, counters.version);

    body.clear();
    std::uint64_t timelines = 0;
    std::uint64_t prev_epc = 0;
    store.visit_shard(s, [&](std::uint64_t epc,
                             const std::vector<Sighting>& tl) {
      // EPCs stream in ascending order, so deltas stay small varints.
      wire::put_varint(body, timelines == 0 ? epc : epc - prev_epc);
      prev_epc = epc;
      wire::put_varint(body, tl.size());
      // Time travels as IEEE-754 bit-pattern deltas (the batch codec's
      // trick): lossless, and time-sorted timelines keep deltas compact.
      std::uint64_t prev_bits = 0;
      for (const Sighting& x : tl) {
        const std::uint64_t bits = bits_of(x.time_s);
        wire::put_varint_signed(body,
                                static_cast<std::int64_t>(bits - prev_bits));
        prev_bits = bits;
        wire::put_varint(body, x.facility);
        wire::put_varint(body, x.reader);
        wire::put_varint(body, x.antenna);
      }
      ++timelines;
      st.sightings_written += tl.size();
    });
    wire::put_varint(payload, timelines);
    payload.insert(payload.end(), body.begin(), body.end());
    wire::append_frame(out, wire::OpCode::kCheckpointShard, payload);
    ++st.shards_written;
    st.timelines_written += static_cast<std::size_t>(timelines);
  }

  // End: shard frames written and the whole-store digest at snapshot time.
  // The digest always covers the full store, so restoring a chain proves
  // every link end-to-end, not just the shards the link carried.
  payload.clear();
  wire::put_varint(payload, st.shards_written);
  wire::put_u64le(payload, store.digest());
  wire::append_frame(out, wire::OpCode::kCheckpointEnd, payload);

  baseline_versions_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    baseline_versions_[s] = store.shard_version(s);
  }
  st.bytes = out.size();
  last_stats_ = st;
  if (obs::hooks_enabled()) {
    // Checkpoint frames join the provenance stream under a synthetic id
    // keyed on the snapshot sequence (facility = kNoFacility marks it as a
    // store-level hop, not one facility's batch).
    obs::provenance_log().record(
        {obs::provenance_batch_id(obs::kNoFacility, st.sequence),
         obs::BatchHop::kCheckpointed, obs::kNoFacility, st.sequence, -1.0});
  }
  return out;
}

TrackingStore restore_checkpoint(const std::vector<std::uint8_t>& bytes,
                                 std::size_t threads) {
  return restore_checkpoint(bytes.data(), bytes.size(), threads);
}

TrackingStore restore_checkpoint(const std::uint8_t* data, std::size_t size,
                                 std::size_t threads) {
  const obs::TraceSpan span("fleet.checkpoint.restore");
  std::optional<TrackingStore> store;  // Scratch: discarded on any throw.
  std::size_t shard_count = 0;
  bool in_snapshot = false;
  std::uint64_t prev_sequence = 0;
  std::uint64_t shards_seen = 0;

  std::size_t offset = 0;
  while (offset < size) {
    const wire::DecodeResult res = wire::next_frame(data, size, offset);
    if (!res.ok) {
      throw CheckpointError(res.error,
                            std::string("checkpoint: frame failed to decode: ") +
                                wire::decode_error_name(res.error));
    }
    offset = res.next_offset;
    wire::Reader r{res.frame.payload, res.frame.payload_size, 0};

    switch (res.frame.opcode) {
      case wire::OpCode::kCheckpointHeader: {
        if (in_snapshot) {
          fail(CheckpointErrorKind::kMissingEnd,
               "checkpoint: header frame inside an open snapshot");
        }
        std::uint8_t kind = 0;
        std::uint64_t sequence = 0, count = 0;
        StoreStats stats;
        if (!r.get_u8(kind) || kind > 1 || !r.get_varint(sequence) ||
            !r.get_varint(count) || !get_stats(r, stats) || !r.done()) {
          fail(CheckpointErrorKind::kBadPayload,
               "checkpoint: malformed header payload");
        }
        if (count == 0 || count > kMaxShardCount) {
          fail(CheckpointErrorKind::kBadPayload,
               "checkpoint: implausible shard count " + std::to_string(count));
        }
        if (!store) {
          if (kind != 0) {
            fail(CheckpointErrorKind::kBadSequence,
                 "checkpoint: chain must start with a full snapshot");
          }
          shard_count = static_cast<std::size_t>(count);
          store.emplace(StoreConfig{shard_count, threads});
        } else {
          if (count != shard_count) {
            fail(CheckpointErrorKind::kShardMismatch,
                 "checkpoint: shard count changed mid-chain");
          }
          if (sequence != prev_sequence + 1) {
            fail(CheckpointErrorKind::kBadSequence,
                 "checkpoint: sequence gap (" + std::to_string(prev_sequence) +
                     " -> " + std::to_string(sequence) + ")");
          }
          // A full snapshot mid-chain supersedes everything before it.
          if (kind == 0) store.emplace(StoreConfig{shard_count, threads});
        }
        prev_sequence = sequence;
        store->restore_stats(stats);
        in_snapshot = true;
        shards_seen = 0;
        break;
      }

      case wire::OpCode::kCheckpointShard: {
        if (!in_snapshot) {
          fail(store ? CheckpointErrorKind::kBadSequence
                     : CheckpointErrorKind::kMissingHeader,
               "checkpoint: shard frame outside a snapshot");
        }
        std::uint64_t index = 0;
        TrackingStore::ShardCounters counters;
        if (!r.get_varint(index) || !r.get_varint(counters.sightings) ||
            !r.get_varint(counters.duplicates) ||
            !r.get_varint(counters.repairs) ||
            !r.get_varint(counters.version)) {
          fail(CheckpointErrorKind::kBadPayload,
               "checkpoint: malformed shard counters");
        }
        if (index >= shard_count) {
          fail(CheckpointErrorKind::kShardMismatch,
               "checkpoint: shard index " + std::to_string(index) +
                   " out of range");
        }
        std::uint64_t timeline_count = 0;
        if (!r.get_varint(timeline_count) ||
            timeline_count > r.size - r.pos) {
          // Each timeline costs >= 1 byte, so a count beyond the remaining
          // payload cannot be honest — reject before reserving anything.
          fail(CheckpointErrorKind::kBadPayload,
               "checkpoint: implausible timeline count");
        }
        std::vector<std::pair<std::uint64_t, std::vector<Sighting>>> timelines;
        timelines.reserve(static_cast<std::size_t>(timeline_count));
        std::uint64_t prev_epc = 0;
        for (std::uint64_t i = 0; i < timeline_count; ++i) {
          std::uint64_t delta = 0;
          if (!r.get_varint(delta)) {
            fail(CheckpointErrorKind::kBadPayload,
                 "checkpoint: truncated timeline key");
          }
          const std::uint64_t epc = i == 0 ? delta : prev_epc + delta;
          if (i > 0 && (delta == 0 || epc < prev_epc)) {
            fail(CheckpointErrorKind::kBadPayload,
                 "checkpoint: timeline keys not strictly ascending");
          }
          prev_epc = epc;
          std::uint64_t n = 0;
          if (!r.get_varint(n) || n == 0 || n > r.size - r.pos) {
            fail(CheckpointErrorKind::kBadPayload,
                 "checkpoint: implausible sighting count");
          }
          std::vector<Sighting> tl;
          tl.reserve(static_cast<std::size_t>(n));
          std::uint64_t prev_bits = 0;
          for (std::uint64_t j = 0; j < n; ++j) {
            std::int64_t dbits = 0;
            std::uint64_t facility = 0, reader = 0, antenna = 0;
            if (!r.get_varint_signed(dbits) || !r.get_varint(facility) ||
                !r.get_varint(reader) || !r.get_varint(antenna) ||
                facility > std::numeric_limits<std::uint32_t>::max() ||
                reader > std::numeric_limits<std::uint32_t>::max() ||
                antenna > std::numeric_limits<std::uint32_t>::max()) {
              fail(CheckpointErrorKind::kBadPayload,
                   "checkpoint: malformed sighting");
            }
            const std::uint64_t bits =
                prev_bits + static_cast<std::uint64_t>(dbits);
            prev_bits = bits;
            tl.push_back(Sighting{double_of(bits),
                                  static_cast<FacilityId>(facility),
                                  static_cast<std::uint32_t>(reader),
                                  static_cast<std::uint32_t>(antenna)});
          }
          timelines.emplace_back(epc, std::move(tl));
        }
        if (!r.done()) {
          fail(CheckpointErrorKind::kBadPayload,
               "checkpoint: trailing bytes after shard payload");
        }
        store->restore_shard(static_cast<std::size_t>(index),
                             std::move(timelines), counters);
        ++shards_seen;
        break;
      }

      case wire::OpCode::kCheckpointEnd: {
        if (!in_snapshot) {
          fail(store ? CheckpointErrorKind::kBadSequence
                     : CheckpointErrorKind::kMissingHeader,
               "checkpoint: end frame outside a snapshot");
        }
        std::uint64_t written = 0, digest = 0;
        if (!r.get_varint(written) || !r.get_u64le(digest) || !r.done()) {
          fail(CheckpointErrorKind::kBadPayload,
               "checkpoint: malformed end payload");
        }
        if (written != shards_seen) {
          fail(CheckpointErrorKind::kShardMismatch,
               "checkpoint: end frame expected " + std::to_string(written) +
                   " shard frames, saw " + std::to_string(shards_seen));
        }
        if (store->digest() != digest) {
          fail(CheckpointErrorKind::kDigestMismatch,
               "checkpoint: restored digest does not match recorded digest");
        }
        in_snapshot = false;
        break;
      }

      default:
        fail(store ? CheckpointErrorKind::kBadPayload
                   : CheckpointErrorKind::kMissingHeader,
             "checkpoint: unexpected frame opcode in checkpoint stream");
    }
  }

  if (!store) {
    fail(CheckpointErrorKind::kMissingHeader, "checkpoint: empty stream");
  }
  if (in_snapshot) {
    fail(CheckpointErrorKind::kMissingEnd,
         "checkpoint: stream ended inside a snapshot");
  }
  if (obs::hooks_enabled()) {
    obs::provenance_log().record(
        {obs::provenance_batch_id(obs::kNoFacility, prev_sequence),
         obs::BatchHop::kRestored, obs::kNoFacility, prev_sequence, -1.0});
  }
  return std::move(*store);
}

}  // namespace rfidsim::fleet
