// rfidsim::fleet — tracking queries over the custody store.
//
// The three questions a tracking application actually asks, answered from
// TrackingStore timelines plus each facility's reliability model:
//
//   locate(object, t)      Where was this object at time t? The latest
//                          sighting at or before t wins, with a confidence
//                          from the facility's R_C = 1 - prod(1 - P_r)
//                          over its live readers (paper §4, composed from
//                          the monitor's windowed per-reader read rates).
//   inventory(facility, t) Which objects' last known location at t is
//                          this facility?
//   missing(manifest, ...) Manifest reconciliation: each expected object
//                          not sighted in the pass window is classified
//                          "probably missed read" vs "probably absent" by
//                          a likelihood-ratio test built on the §4 model:
//                          P(no reads | present) = 1 - R_C, against
//                          P(no reads | absent) = 1, weighted by a custody
//                          prior (an object seen upstream minutes ago is
//                          far more likely to be a missed read than one no
//                          facility has ever sighted). This is the
//                          Jacobsen-style merge of evidence across
//                          independent reader sessions: the analytical
//                          model supplies the likelihood, the cross-
//                          facility timeline supplies the prior.
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/store.hpp"
#include "track/manifest.hpp"
#include "track/registry.hpp"

namespace rfidsim::fleet {

/// Per-facility reliability inputs, refreshed from that facility feed's
/// online monitor after every pass. Rates are object-level per-reader read
/// probabilities (the monitor's windowed objects_seen / objects_total).
struct FacilityModel {
  std::vector<double> reader_read_rates;
  /// Readers currently declared alive; a reader the ingest stage declared
  /// down contributes no read opportunity (degraded-mode masking, exactly
  /// as reliability::expected_reliability_grid_degraded masks columns).
  std::vector<bool> reader_live;

  /// R_C = 1 - prod over live readers of (1 - P_r); 0 with no live
  /// readers (no opportunities, no tracking).
  double identification_rc() const;
};

struct QueryConfig {
  /// How far back a sighting anywhere in the fleet counts as custody
  /// evidence for the missed-read prior.
  double custody_horizon_s = 600.0;
  /// Prior P(present) for an expected object with custody evidence inside
  /// the horizon, and for one no facility has ever sighted.
  double prior_present_seen = 0.9;
  double prior_present_unseen = 0.2;
  /// Posterior P(present | no reads) at or above which the verdict is
  /// "probably missed read" rather than "probably absent".
  double decision_threshold = 0.5;
};

/// Answer to locate(): the last known position at the query time.
struct LocateResult {
  bool found = false;
  FacilityId facility = 0;
  double time_s = 0.0;      ///< Time of the winning sighting.
  double confidence = 0.0;  ///< Identification R_C of that facility.
};

/// Verdict for one manifest-expected object.
enum class MissingVerdict {
  kPresent,            ///< Sighted at the facility in the window.
  kProbablyMissedRead, ///< Not sighted, but the model says the portal
                       ///< plausibly missed it (low R_C / degraded).
  kProbablyAbsent,     ///< Not sighted, and a healthy portal would almost
                       ///< surely have seen it.
};

const char* missing_verdict_name(MissingVerdict verdict);

/// One reconciled manifest entry.
struct Reconciliation {
  track::ObjectId object;
  MissingVerdict verdict = MissingVerdict::kPresent;
  double miss_probability = 0.0;    ///< P(no reads | present) = 1 - R_C.
  double posterior_present = 0.0;   ///< P(present | no reads) under the prior.
  bool custody_evidence = false;    ///< Sighted somewhere inside the horizon.
};

/// Full reconciliation of one manifest against one pass window.
struct MissingReport {
  std::vector<Reconciliation> items;          ///< Expected objects, id-ascending.
  std::vector<track::ObjectId> present;
  std::vector<track::ObjectId> missed_reads;
  std::vector<track::ObjectId> absent;
  std::vector<track::ObjectId> unexpected;    ///< Sighted, not on the manifest.
};

/// Read-only query layer. References the store and registry; both must
/// outlive the service. Facility models are supplied by the caller
/// (FleetService refreshes them from each feed's monitor).
class QueryService {
 public:
  QueryService(const TrackingStore& store, const track::ObjectRegistry& registry,
               QueryConfig config = {});

  /// Installs/replaces the reliability model of one facility.
  void set_facility_model(FacilityId facility, FacilityModel model);
  const FacilityModel* facility_model(FacilityId facility) const;

  /// Latest sighting of the tag (or of any of the object's tags) at or
  /// before t. Object-level: the newest sighting across tags wins.
  LocateResult locate(scene::TagId tag, double t) const;
  LocateResult locate(track::ObjectId object, double t) const;

  /// Objects whose last known location at t is `facility`, id-ascending.
  std::vector<track::ObjectId> inventory(FacilityId facility, double t) const;

  /// Reconciles `manifest` against the sightings of one pass window at
  /// one facility (see file header for the decision rule).
  MissingReport missing(const track::Manifest& manifest, FacilityId facility,
                        double window_begin_s, double window_end_s) const;

  const QueryConfig& config() const { return config_; }

 private:
  /// Any sighting of the object's tags at `facility` within [begin, end]?
  bool sighted_at(track::ObjectId object, FacilityId facility, double begin_s,
                  double end_s) const;

  const TrackingStore& store_;
  const track::ObjectRegistry& registry_;
  QueryConfig config_;
  std::vector<FacilityModel> models_;  ///< Indexed by FacilityId; may be sparse.
};

}  // namespace rfidsim::fleet
