// rfidsim::fleet — one facility's feed into the fleet store.
//
// Each simulated facility pushes its pass logs through the same production
// path the single-portal stack models: the *wire-framed* uploader hop
// (sys::EventUploader::upload_wire — checksummed binary frames, link loss
// with bounded backoff, bit-level channel corruption detected by CRC and
// recovered by NAK retransmission) followed by resilient ingest validation
// (track::validate_event / track::ResilientIngest). FacilityFeed bundles
// that path per facility and splits its output two ways:
//
//   Batches -> store   Every delivered batch is validated record by record
//                      and forwarded with its flush and arrival times as a
//                      FacilityBatch. *All* delivered batches reach the
//                      store, however late: the store's sorted-idempotent
//                      insert repairs timelines retroactively, which is the
//                      whole point of keeping them. Batches older than the
//                      configurable staleness horizon still repair stored
//                      truth, but raise a typed stale_batch alert so the
//                      silent late-data path is observable.
//   Pass -> monitor    The pass-level quality signals (transport dedup,
//                      silence gaps, degraded readers) come from one union
//                      ResilientIngest::ingest over the batches that
//                      arrived *inside* the pass window. Batches whose
//                      arrival slid past the window end — the uploader's
//                      retry backoff made visible — are excluded: the
//                      online monitor can only score what the backend had
//                      when the pass closed. That is exactly how transport
//                      latency degrades the live per-reader read rates
//                      (and thus query confidence) without ever touching
//                      the stored truth.
//
// model() snapshots the feed's current reliability view for the query
// layer: the monitor's windowed per-reader read rates, with readers the
// last pass declared silent masked out (degraded-mode masking as in
// reliability::expected_reliability_grid_degraded).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "fault/wire_corruptor.hpp"
#include "fleet/query.hpp"
#include "fleet/store.hpp"
#include "obs/monitor.hpp"
#include "system/uploader.hpp"
#include "track/resilient_ingest.hpp"

namespace rfidsim::fleet {

struct FeedConfig {
  FacilityId facility = 0;
  /// Expected distinct objects per pass window (manifest or registry
  /// size); the monitor's read-rate denominator.
  std::size_t objects_total = 0;
  sys::UploaderConfig uploader;
  track::IngestConfig ingest;
  obs::MonitorConfig monitor;
  /// What this facility's physical uplink does to framed bytes. The
  /// default is a strict identity (draws nothing from the Rng), so feeds
  /// without configured corruption behave bit-identically to a clean
  /// channel.
  fault::WireCorruptorConfig wire_corruption;
  /// A delivered batch whose arrival is more than this many seconds past
  /// the pass window end is counted stale and raises the monitor's
  /// stale_batch alert. It is still forwarded to the store — staleness is
  /// an observability signal, never data loss. Infinity disables it.
  double stale_horizon_s = std::numeric_limits<double>::infinity();
};

/// Everything one pass produced on its way to the store.
struct FeedPassResult {
  /// Validated delivered batches, in delivery order — ready for
  /// TrackingStore::ingest. Includes late arrivals.
  std::vector<FacilityBatch> batches;
  /// Pass-level union ingest over the on-time batches (dedup, silence
  /// gaps, degraded readers — the monitor's view of the pass).
  track::IngestReport report;
  std::size_t quarantined = 0;   ///< Records rejected by per-batch validation.
  std::size_t late_batches = 0;  ///< Delivered after the window closed.
  std::size_t lost_batches = 0;  ///< Dropped by the upload hop entirely.
  // Wire-transport tallies for this pass (deltas of the uploader's
  // cumulative WireUploadStats, plus the feed's own staleness screen).
  std::size_t frames_sent = 0;          ///< Frame transmissions incl. retransmits.
  std::size_t corrupt_frames = 0;       ///< Receiver-detected bad frames (NAKs).
  std::size_t recovered_batches = 0;    ///< Delivered after >= 1 NAK.
  std::size_t quarantined_batches = 0;  ///< Dropped: NAK budget exhausted.
  std::size_t stale_batches = 0;        ///< Arrived past the staleness horizon.
  /// Max event time across this pass's validated batches (-1 when none
  /// survived) — the candidate the feed's watermark advances to once the
  /// batches are merged.
  double max_event_time_s = -1.0;
  /// The feed's event-time low-watermark after this pass. Only ingest_pass
  /// advances it (the watermark means *fully merged*, and only ingest_pass
  /// merges); process_pass reports the current value unchanged.
  double watermark_s = -1.0;
};

/// Cumulative per-feed tallies across every processed pass — the health
/// snapshot's per-facility row. Pure functions of the pass sequence.
struct FeedTotals {
  std::uint64_t passes = 0;
  std::uint64_t delivered_batches = 0;    ///< Validated batches forwarded.
  std::uint64_t stored_events = 0;        ///< Events inside those batches.
  std::uint64_t quarantined_records = 0;  ///< Records validation rejected.
  std::uint64_t late_batches = 0;
  std::uint64_t lost_batches = 0;
  std::uint64_t stale_batches = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t recovered_batches = 0;
  std::uint64_t quarantined_batches = 0;  ///< NAK budget exhausted.
};

/// One facility's upload + validation + monitoring pipeline. Stateful:
/// the uploader's stats, the ingest pipeline, and the reliability monitor
/// persist across passes. Feed passes in time order from one thread.
class FacilityFeed {
 public:
  explicit FacilityFeed(FeedConfig config);

  /// Pushes one pass's raw reader log through the upload hop and
  /// validation, folds the on-time result into the monitor, and returns
  /// the store-ready batches. Deterministic given `rng`'s state.
  FeedPassResult process_pass(const sys::EventLog& raw, double window_begin_s,
                              double window_end_s, Rng& rng);

  /// process_pass() plus TrackingStore::ingest of the batches.
  FeedPassResult ingest_pass(TrackingStore& store, const sys::EventLog& raw,
                             double window_begin_s, double window_end_s, Rng& rng);

  /// Current reliability view for the query layer: monitor read rates with
  /// last pass's silent readers masked dead.
  FacilityModel model() const;

  const obs::ReliabilityMonitor& monitor() const { return monitor_; }
  obs::ReliabilityMonitor& monitor() { return monitor_; }
  /// Cumulative tallies across every pass this feed processed.
  const FeedTotals& totals() const { return totals_; }
  /// Event-time low-watermark: max event time fully merged via ingest_pass
  /// (-1 until anything merges). Age is measured against the last pass
  /// window's end (infinite until anything merges).
  double watermark_s() const { return watermark_s_; }
  double watermark_age_s() const;
  double last_window_end_s() const { return last_window_end_s_; }
  const sys::UploadStats& upload_stats() const { return uploader_.stats(); }
  const sys::WireUploadStats& wire_stats() const { return uploader_.wire_stats(); }
  /// Ground truth of what the channel actually did (the decoder's
  /// detection counters are calibrated against this in tests).
  const fault::WireCorruptionStats& corruption_stats() const {
    return corruptor_.stats();
  }
  const FeedConfig& config() const { return config_; }

 private:
  FeedConfig config_;
  sys::EventUploader uploader_;
  fault::WireCorruptor corruptor_;
  track::ResilientIngest ingest_;
  obs::ReliabilityMonitor monitor_;
  std::vector<std::size_t> last_degraded_;  ///< Readers silent in last pass.
  FeedTotals totals_;
  double watermark_s_ = -1.0;
  double last_window_end_s_ = 0.0;
};

}  // namespace rfidsim::fleet
