#include "fleet/store.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "sweep/sweep.hpp"

namespace rfidsim::fleet {

namespace {

/// SplitMix64 finalizer: spreads EPCs across shards independently of how
/// the simulation allocated them (sequential ids would otherwise pile
/// consecutive tags into the same shard).
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

/// Sightings travel through the routing phase paired with their EPC (the
/// timeline key carries the EPC once stored, so Sighting itself omits it).
struct RoutedSighting {
  std::uint64_t epc = 0;
  Sighting sighting;
};

}  // namespace

bool sighting_less(const Sighting& a, const Sighting& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.facility != b.facility) return a.facility < b.facility;
  if (a.reader != b.reader) return a.reader < b.reader;
  return a.antenna < b.antenna;
}

TrackingStore::TrackingStore(StoreConfig config) : config_(config) {
  require(config_.shard_count > 0, "TrackingStore: shard count must be positive");
  shards_.resize(config_.shard_count);
}

std::size_t TrackingStore::shard_of(scene::TagId tag) const {
  return static_cast<std::size_t>(mix(tag.value) % config_.shard_count);
}

namespace {
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

void TrackingStore::rehash(Shard& shard, std::size_t capacity) const {
  shard.index.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t slot = 0; slot < shard.epcs.size(); ++slot) {
    std::size_t h = static_cast<std::size_t>(mix(shard.epcs[slot])) & mask;
    while (shard.index[h] != 0) h = (h + 1) & mask;
    shard.index[h] = static_cast<std::uint32_t>(slot + 1);
  }
}

std::size_t TrackingStore::find_slot(const Shard& shard, std::uint64_t epc) const {
  if (shard.index.empty()) return kNoSlot;
  const std::size_t mask = shard.index.size() - 1;
  std::size_t h = static_cast<std::size_t>(mix(epc)) & mask;
  while (true) {
    const std::uint32_t entry = shard.index[h];
    if (entry == 0) return kNoSlot;
    if (shard.epcs[entry - 1] == epc) return entry - 1;
    h = (h + 1) & mask;
  }
}

std::size_t TrackingStore::find_or_create(Shard& shard, std::uint64_t epc) const {
  // Grow at 0.7 load (including the slot about to be claimed).
  if ((shard.epcs.size() + 1) * 10 >= shard.index.size() * 7) {
    rehash(shard, std::max<std::size_t>(16, shard.index.size() * 2));
  }
  const std::size_t mask = shard.index.size() - 1;
  std::size_t h = static_cast<std::size_t>(mix(epc)) & mask;
  while (true) {
    const std::uint32_t entry = shard.index[h];
    if (entry == 0) break;
    if (shard.epcs[entry - 1] == epc) return entry - 1;
    h = (h + 1) & mask;
  }
  const std::size_t slot = shard.epcs.size();
  shard.index[h] = static_cast<std::uint32_t>(slot + 1);
  shard.epcs.push_back(epc);
  shard.timelines.emplace_back();
  shard.sorted = false;
  return slot;
}

void TrackingStore::ensure_sorted(const Shard& shard) const {
  if (shard.sorted) return;
  shard.by_epc.resize(shard.epcs.size());
  for (std::size_t i = 0; i < shard.by_epc.size(); ++i) {
    shard.by_epc[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(shard.by_epc.begin(), shard.by_epc.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return shard.epcs[a] < shard.epcs[b];
            });
  shard.sorted = true;
}

void TrackingStore::merge_into_shard(Shard& shard, std::uint64_t epc,
                                     const Sighting& s) {
  std::vector<Sighting>& timeline = shard.timelines[find_or_create(shard, epc)];
  const auto pos = std::lower_bound(timeline.begin(), timeline.end(), s, sighting_less);
  if (pos != timeline.end() && *pos == s) {
    ++shard.duplicates;
    return;
  }
  if (pos != timeline.end()) ++shard.repairs;
  timeline.insert(pos, s);
  ++shard.sightings;
}

void TrackingStore::ingest(const FacilityBatch& batch) {
  ingest(std::vector<FacilityBatch>{batch});
}

void TrackingStore::ingest(const std::vector<FacilityBatch>& batches) {
  const obs::TraceSpan span("fleet.store.ingest");
  const std::size_t shard_count = config_.shard_count;
  const sweep::SweepOptions options{config_.threads};
  const StoreStats before = stats_;

  // Phase 1 — route: batch b groups its events by shard with a stable
  // counting sort into ONE flat array plus a shard-offset table, instead of
  // shard_count separate bucket vectors per batch (the per-batch allocation
  // churn that made 2-thread ingest slower than serial). Stability keeps
  // the within-batch event order per shard, so the merge phase sees the
  // exact event sequence the bucket version produced. Cell b writes only
  // routed[b]; determinism per the sweep contract.
  struct RoutedBatch {
    std::vector<RoutedSighting> events;     ///< Grouped by shard, stable.
    std::vector<std::uint32_t> offsets;     ///< [shard, shard+1) event range.
  };
  std::vector<RoutedBatch> routed(batches.size());
  // Phase markers sit on this orchestrating thread: parallel_for blocks
  // until its cells drain, so the route/merge self-times are the phases'
  // wall-clock spans and the call counts stay thread-count-independent.
  // Phase markers sit on this orchestrating thread: parallel_for blocks
  // until its cells drain, so the route/merge self-times are the phases'
  // wall-clock spans and the call counts stay thread-count-independent.
  std::optional<obs::prof::ScopedPhase> phase;
  phase.emplace(obs::prof::Phase::kStoreRoute);
  sweep::parallel_for(batches.size(), options, [&](std::size_t b) {
    const FacilityBatch& batch = batches[b];
    RoutedBatch& rb = routed[b];
    const std::size_t n = batch.events.size();
    std::vector<std::uint32_t> shard_of_event(n);
    rb.offsets.assign(shard_count + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto shard =
          static_cast<std::uint32_t>(mix(batch.events[i].tag.value) % shard_count);
      shard_of_event[i] = shard;
      ++rb.offsets[shard + 1];
    }
    for (std::size_t s = 0; s < shard_count; ++s) rb.offsets[s + 1] += rb.offsets[s];
    rb.events.resize(n);
    std::vector<std::uint32_t> cursor(rb.offsets.begin(), rb.offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const sys::ReadEvent& ev = batch.events[i];
      rb.events[cursor[shard_of_event[i]]++] =
          {ev.tag.value, Sighting{ev.time_s, batch.facility,
                                  static_cast<std::uint32_t>(ev.reader_index),
                                  static_cast<std::uint32_t>(ev.antenna_index)}};
    }
  });
  phase.reset();

  // Phase 2 — merge: shard s folds in its slice of every batch, in batch
  // order. Cell s touches only shards_[s]; no two cells share a timeline,
  // so the parallel merge is race-free and order-deterministic.
  phase.emplace(obs::prof::Phase::kStoreMerge);
  sweep::parallel_for(shard_count, options, [&](std::size_t s) {
    Shard& shard = shards_[s];
    bool touched = false;
    for (const RoutedBatch& rb : routed) {
      for (std::size_t k = rb.offsets[s]; k < rb.offsets[s + 1]; ++k) {
        merge_into_shard(shard, rb.events[k].epc, rb.events[k].sighting);
        touched = true;
      }
    }
    // One version bump per ingest that routed anything here (even if every
    // event deduplicated away — the checkpoint diff only needs "may have
    // changed", and counters did change).
    if (touched) ++shard.version;
  });
  phase.reset();

  stats_.batches += batches.size();
  const bool hooked = obs::hooks_enabled();
  for (const FacilityBatch& batch : batches) {
    stats_.events += batch.events.size();
    if (batch.arrival_time_s > batch.sent_time_s) ++stats_.late_batches;
    // Merge hop, recorded serially in batch order (the parallel phases
    // above own no deterministic order to record from). Batch granularity:
    // one record per batch, nothing in the per-event hot path.
    if (hooked && batch.batch_id != 0) {
      obs::provenance_log().record({batch.batch_id, obs::BatchHop::kMerged,
                                    batch.facility, batch.events.size(),
                                    batch.arrival_time_s});
    }
  }
  std::uint64_t accepted = 0, duplicates = 0, repairs = 0;
  for (const Shard& shard : shards_) {
    accepted += shard.sightings;
    duplicates += shard.duplicates;
    repairs += shard.repairs;
  }
  stats_.accepted = accepted;
  stats_.duplicates = duplicates;
  stats_.repairs = repairs;

  if (obs::hooks_enabled()) publish_metrics(before);
}

const std::vector<Sighting>* TrackingStore::timeline(scene::TagId tag) const {
  const Shard& shard = shards_[shard_of(tag)];
  const std::size_t slot = find_slot(shard, tag.value);
  return slot == kNoSlot ? nullptr : &shard.timelines[slot];
}

std::optional<Sighting> TrackingStore::last_sighting_at(scene::TagId tag,
                                                        double t) const {
  const std::vector<Sighting>* tl = timeline(tag);
  if (tl == nullptr) return std::nullopt;
  const Sighting probe{t, 0, 0, 0};
  // upper_bound over time only: first sighting strictly after t.
  const auto pos = std::upper_bound(tl->begin(), tl->end(), probe,
                                    [](const Sighting& a, const Sighting& b) {
                                      return a.time_s < b.time_s;
                                    });
  if (pos == tl->begin()) return std::nullopt;
  return *(pos - 1);
}

std::vector<scene::TagId> TrackingStore::tags() const {
  std::vector<scene::TagId> out;
  out.reserve(tag_count());
  for (const Shard& shard : shards_) {
    for (const std::uint64_t epc : shard.epcs) out.push_back(scene::TagId{epc});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TrackingStore::tag_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.epcs.size();
  return n;
}

std::size_t TrackingStore::sighting_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.sightings;
  return n;
}

std::size_t TrackingStore::shard_depth(std::size_t shard) const {
  return shards_.at(shard).sightings;
}

TrackingStore::ShardCounters TrackingStore::shard_counters(std::size_t shard) const {
  const Shard& s = shards_.at(shard);
  return ShardCounters{s.sightings, s.duplicates, s.repairs, s.version};
}

std::uint64_t TrackingStore::shard_version(std::size_t shard) const {
  return shards_.at(shard).version;
}

void TrackingStore::visit_shard(
    std::size_t shard,
    const std::function<void(std::uint64_t, const std::vector<Sighting>&)>& fn) const {
  const Shard& s = shards_.at(shard);
  ensure_sorted(s);
  for (const std::uint32_t slot : s.by_epc) fn(s.epcs[slot], s.timelines[slot]);
}

void TrackingStore::restore_shard(
    std::size_t shard,
    std::vector<std::pair<std::uint64_t, std::vector<Sighting>>> timelines,
    const ShardCounters& counters) {
  Shard& s = shards_.at(shard);
  s.epcs.clear();
  s.timelines.clear();
  s.epcs.reserve(timelines.size());
  s.timelines.reserve(timelines.size());
  // Input is ascending by EPC, so slot order doubles as EPC order.
  for (auto& [epc, tl] : timelines) {
    s.epcs.push_back(epc);
    s.timelines.push_back(std::move(tl));
  }
  std::size_t capacity = 16;
  while (s.epcs.size() * 10 >= capacity * 7) capacity *= 2;
  rehash(s, capacity);
  s.by_epc.clear();
  s.sorted = false;
  s.sightings = counters.sightings;
  s.duplicates = counters.duplicates;
  s.repairs = counters.repairs;
  s.version = counters.version;
}

std::uint64_t TrackingStore::digest() const {
  // Gather (epc, timeline) across shards, walk in ascending-EPC order so
  // the digest is independent of shard count and assignment.
  std::vector<std::pair<std::uint64_t, const std::vector<Sighting>*>> all;
  all.reserve(tag_count());
  for (const Shard& shard : shards_) {
    for (std::size_t slot = 0; slot < shard.epcs.size(); ++slot) {
      all.emplace_back(shard.epcs[slot], &shard.timelines[slot]);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t hash = kFnvOffset;
  for (const auto& [epc, tl] : all) {
    hash = fnv1a(hash, epc);
    hash = fnv1a(hash, tl->size());
    for (const Sighting& s : *tl) {
      hash = fnv1a(hash, bits_of(s.time_s));
      hash = fnv1a(hash, (static_cast<std::uint64_t>(s.facility) << 32) |
                             (static_cast<std::uint64_t>(s.reader) << 16) | s.antenna);
    }
  }
  return hash;
}

void TrackingStore::publish_metrics(const StoreStats& before) const {
  static const struct Metrics {
    obs::Counter& batches = obs::counter("fleet.store.batches");
    obs::Counter& events = obs::counter("fleet.store.events");
    obs::Counter& accepted = obs::counter("fleet.store.accepted");
    obs::Counter& duplicates = obs::counter("fleet.store.duplicates");
    obs::Counter& repairs = obs::counter("fleet.store.repairs");
    obs::Counter& late_batches = obs::counter("fleet.store.late_batches");
    obs::Gauge& tags = obs::gauge("fleet.store.tags");
    obs::Gauge& sightings = obs::gauge("fleet.store.sightings");
    obs::Gauge& shard_depth_max = obs::gauge("fleet.store.shard_depth_max");
  } m;
  m.batches.add(stats_.batches - before.batches);
  m.events.add(stats_.events - before.events);
  m.accepted.add(stats_.accepted - before.accepted);
  m.duplicates.add(stats_.duplicates - before.duplicates);
  m.repairs.add(stats_.repairs - before.repairs);
  m.late_batches.add(stats_.late_batches - before.late_batches);
  m.tags.set(static_cast<double>(tag_count()));
  m.sightings.set(static_cast<double>(stats_.accepted));
  std::size_t depth_max = 0;
  for (const Shard& shard : shards_) {
    depth_max = std::max(depth_max, static_cast<std::size_t>(shard.sightings));
  }
  m.shard_depth_max.set(static_cast<double>(depth_max));
}

}  // namespace rfidsim::fleet
