#include "fleet/store.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sweep/sweep.hpp"

namespace rfidsim::fleet {

namespace {

/// SplitMix64 finalizer: spreads EPCs across shards independently of how
/// the simulation allocated them (sequential ids would otherwise pile
/// consecutive tags into the same shard).
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

/// Sightings travel through the routing phase paired with their EPC (the
/// timeline key carries the EPC once stored, so Sighting itself omits it).
struct RoutedSighting {
  std::uint64_t epc = 0;
  Sighting sighting;
};

}  // namespace

bool sighting_less(const Sighting& a, const Sighting& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.facility != b.facility) return a.facility < b.facility;
  if (a.reader != b.reader) return a.reader < b.reader;
  return a.antenna < b.antenna;
}

TrackingStore::TrackingStore(StoreConfig config) : config_(config) {
  require(config_.shard_count > 0, "TrackingStore: shard count must be positive");
  shards_.resize(config_.shard_count);
}

std::size_t TrackingStore::shard_of(scene::TagId tag) const {
  return static_cast<std::size_t>(mix(tag.value) % config_.shard_count);
}

void TrackingStore::merge_into_shard(Shard& shard, std::uint64_t epc,
                                     const Sighting& s) {
  std::vector<Sighting>& timeline = shard.timelines[epc];
  const auto pos = std::lower_bound(timeline.begin(), timeline.end(), s, sighting_less);
  if (pos != timeline.end() && *pos == s) {
    ++shard.duplicates;
    return;
  }
  if (pos != timeline.end()) ++shard.repairs;
  timeline.insert(pos, s);
  ++shard.sightings;
}

void TrackingStore::ingest(const FacilityBatch& batch) {
  ingest(std::vector<FacilityBatch>{batch});
}

void TrackingStore::ingest(const std::vector<FacilityBatch>& batches) {
  const obs::TraceSpan span("fleet.store.ingest");
  const std::size_t shard_count = config_.shard_count;
  const sweep::SweepOptions options{config_.threads};
  const StoreStats before = stats_;

  // Phase 1 — route: batch b fans its events out into per-shard buckets.
  // Cell b writes only routed[b]; determinism per the sweep contract.
  std::vector<std::vector<std::vector<RoutedSighting>>> routed(batches.size());
  sweep::parallel_for(batches.size(), options, [&](std::size_t b) {
    const FacilityBatch& batch = batches[b];
    auto& buckets = routed[b];
    buckets.resize(shard_count);
    for (const sys::ReadEvent& ev : batch.events) {
      const std::size_t shard = static_cast<std::size_t>(mix(ev.tag.value) % shard_count);
      buckets[shard].push_back(
          {ev.tag.value, Sighting{ev.time_s, batch.facility,
                                  static_cast<std::uint32_t>(ev.reader_index),
                                  static_cast<std::uint32_t>(ev.antenna_index)}});
    }
  });

  // Phase 2 — merge: shard s folds in its bucket of every batch, in batch
  // order. Cell s touches only shards_[s]; no two cells share a timeline,
  // so the parallel merge is race-free and order-deterministic.
  sweep::parallel_for(shard_count, options, [&](std::size_t s) {
    Shard& shard = shards_[s];
    bool touched = false;
    for (const auto& buckets : routed) {
      for (const RoutedSighting& rs : buckets[s]) {
        merge_into_shard(shard, rs.epc, rs.sighting);
        touched = true;
      }
    }
    // One version bump per ingest that routed anything here (even if every
    // event deduplicated away — the checkpoint diff only needs "may have
    // changed", and counters did change).
    if (touched) ++shard.version;
  });

  stats_.batches += batches.size();
  for (const FacilityBatch& batch : batches) {
    stats_.events += batch.events.size();
    if (batch.arrival_time_s > batch.sent_time_s) ++stats_.late_batches;
  }
  std::uint64_t accepted = 0, duplicates = 0, repairs = 0;
  for (const Shard& shard : shards_) {
    accepted += shard.sightings;
    duplicates += shard.duplicates;
    repairs += shard.repairs;
  }
  stats_.accepted = accepted;
  stats_.duplicates = duplicates;
  stats_.repairs = repairs;

  if (obs::hooks_enabled()) publish_metrics(before);
}

const std::vector<Sighting>* TrackingStore::timeline(scene::TagId tag) const {
  const Shard& shard = shards_[shard_of(tag)];
  const auto it = shard.timelines.find(tag.value);
  return it == shard.timelines.end() ? nullptr : &it->second;
}

std::optional<Sighting> TrackingStore::last_sighting_at(scene::TagId tag,
                                                        double t) const {
  const std::vector<Sighting>* tl = timeline(tag);
  if (tl == nullptr) return std::nullopt;
  const Sighting probe{t, 0, 0, 0};
  // upper_bound over time only: first sighting strictly after t.
  const auto pos = std::upper_bound(tl->begin(), tl->end(), probe,
                                    [](const Sighting& a, const Sighting& b) {
                                      return a.time_s < b.time_s;
                                    });
  if (pos == tl->begin()) return std::nullopt;
  return *(pos - 1);
}

std::vector<scene::TagId> TrackingStore::tags() const {
  std::vector<scene::TagId> out;
  out.reserve(tag_count());
  for (const Shard& shard : shards_) {
    for (const auto& [epc, tl] : shard.timelines) {
      (void)tl;
      out.push_back(scene::TagId{epc});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TrackingStore::tag_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.timelines.size();
  return n;
}

std::size_t TrackingStore::sighting_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.sightings;
  return n;
}

std::size_t TrackingStore::shard_depth(std::size_t shard) const {
  return shards_.at(shard).sightings;
}

TrackingStore::ShardCounters TrackingStore::shard_counters(std::size_t shard) const {
  const Shard& s = shards_.at(shard);
  return ShardCounters{s.sightings, s.duplicates, s.repairs, s.version};
}

std::uint64_t TrackingStore::shard_version(std::size_t shard) const {
  return shards_.at(shard).version;
}

void TrackingStore::visit_shard(
    std::size_t shard,
    const std::function<void(std::uint64_t, const std::vector<Sighting>&)>& fn) const {
  for (const auto& [epc, tl] : shards_.at(shard).timelines) fn(epc, tl);
}

void TrackingStore::restore_shard(
    std::size_t shard,
    std::vector<std::pair<std::uint64_t, std::vector<Sighting>>> timelines,
    const ShardCounters& counters) {
  Shard& s = shards_.at(shard);
  s.timelines.clear();
  // Input is ascending by EPC, so every insert lands at end() in O(1).
  for (auto& [epc, tl] : timelines) {
    s.timelines.emplace_hint(s.timelines.end(), epc, std::move(tl));
  }
  s.sightings = counters.sightings;
  s.duplicates = counters.duplicates;
  s.repairs = counters.repairs;
  s.version = counters.version;
}

std::uint64_t TrackingStore::digest() const {
  // Gather (epc, timeline) across shards, walk in ascending-EPC order so
  // the digest is independent of shard count and assignment.
  std::vector<std::pair<std::uint64_t, const std::vector<Sighting>*>> all;
  all.reserve(tag_count());
  for (const Shard& shard : shards_) {
    for (const auto& [epc, tl] : shard.timelines) all.emplace_back(epc, &tl);
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t hash = kFnvOffset;
  for (const auto& [epc, tl] : all) {
    hash = fnv1a(hash, epc);
    hash = fnv1a(hash, tl->size());
    for (const Sighting& s : *tl) {
      hash = fnv1a(hash, bits_of(s.time_s));
      hash = fnv1a(hash, (static_cast<std::uint64_t>(s.facility) << 32) |
                             (static_cast<std::uint64_t>(s.reader) << 16) | s.antenna);
    }
  }
  return hash;
}

void TrackingStore::publish_metrics(const StoreStats& before) const {
  static const struct Metrics {
    obs::Counter& batches = obs::counter("fleet.store.batches");
    obs::Counter& events = obs::counter("fleet.store.events");
    obs::Counter& accepted = obs::counter("fleet.store.accepted");
    obs::Counter& duplicates = obs::counter("fleet.store.duplicates");
    obs::Counter& repairs = obs::counter("fleet.store.repairs");
    obs::Counter& late_batches = obs::counter("fleet.store.late_batches");
    obs::Gauge& tags = obs::gauge("fleet.store.tags");
    obs::Gauge& sightings = obs::gauge("fleet.store.sightings");
    obs::Gauge& shard_depth_max = obs::gauge("fleet.store.shard_depth_max");
  } m;
  m.batches.add(stats_.batches - before.batches);
  m.events.add(stats_.events - before.events);
  m.accepted.add(stats_.accepted - before.accepted);
  m.duplicates.add(stats_.duplicates - before.duplicates);
  m.repairs.add(stats_.repairs - before.repairs);
  m.late_batches.add(stats_.late_batches - before.late_batches);
  m.tags.set(static_cast<double>(tag_count()));
  m.sightings.set(static_cast<double>(stats_.accepted));
  std::size_t depth_max = 0;
  for (const Shard& shard : shards_) {
    depth_max = std::max(depth_max, static_cast<std::size_t>(shard.sightings));
  }
  m.shard_depth_max.set(static_cast<double>(depth_max));
}

}  // namespace rfidsim::fleet
