// rfidsim::fleet — the fleet health surface.
//
// One structured document answering "is the backend healthy, and if not,
// which facility and why": per-facility freshness watermarks and stall
// state, reliability-monitor alert tallies, wire-corruption and quarantine
// depths, and the store's ingest stats, aggregated fleet-wide. Built by
// FleetService::health_snapshot() from state that is always maintained
// (feed totals, monitor alerts, store stats are all pure arithmetic), so
// the snapshot is available — and identical — whether obs hooks are on,
// off, or compiled out.
//
// Two serializations of the same snapshot:
//   write_health_json        one JSON object (dashboards, test assertions)
//   write_health_prometheus  Prometheus text exposition (scrape endpoints)
// Both are deterministic: facilities ascending, fixed key order, fixed
// float formatting.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "fleet/feed.hpp"
#include "fleet/store.hpp"
#include "obs/monitor.hpp"

namespace rfidsim::fleet {

/// One facility's row in the fleet health document.
struct FacilityHealth {
  FacilityId facility = 0;
  std::uint64_t passes = 0;
  /// Event-time low-watermark (max event time fully merged); -1 until the
  /// facility has merged anything.
  double watermark_s = -1.0;
  /// Last pass window end minus the watermark; infinity until anything
  /// merges (JSON writes -1 for non-finite, Prometheus writes +Inf).
  double watermark_age_s = 0.0;
  bool watermark_stalled = false;
  std::uint64_t watermark_stall_streak = 0;
  double observed_rc = 0.0;   ///< Monitor's windowed portal read rate.
  double predicted_rc = 0.0;  ///< Composed per-reader prediction.
  std::uint64_t alerts_total = 0;
  /// Alert counts indexed by obs::AlertType.
  std::array<std::uint64_t, obs::kAlertTypeCount> alerts_by_type{};
  FeedTotals totals;
};

/// The whole backend's health at one instant.
struct FleetHealth {
  std::size_t facilities = 0;
  std::size_t tags = 0;       ///< Distinct EPCs the store has sighted.
  std::size_t sightings = 0;  ///< Stored sightings across all timelines.
  StoreStats store;
  std::uint64_t alerts_total = 0;       ///< Sum over facilities.
  std::size_t stalled_facilities = 0;   ///< Currently watermark-stalled.
  /// Min per-facility watermark: the fleet-wide freshness floor. -1 when
  /// any facility (or the whole fleet) has merged nothing yet.
  double min_watermark_s = -1.0;
  /// Observability self-health: is the telemetry pipeline itself losing
  /// data, and can the crash black box reach the disk? Populated from the
  /// process-wide obs counters; all-zero under -DRFIDSIM_OBS=OFF. Only
  /// mode-invariant tallies appear here — the snapshot stays byte-identical
  /// whether hooks are on or off, like every other field.
  std::uint64_t provenance_dropped = 0;    ///< Provenance ring-wrap losses.
  std::uint64_t flight_dump_attempts = 0;  ///< Explicit flight dumps tried.
  std::uint64_t flight_dump_failures = 0;  ///< ...that failed to be written.
  bool crash_handler_installed = false;
  std::vector<FacilityHealth> per_facility;  ///< Ascending by facility id.
};

/// One JSON object, '\n'-terminated. Non-finite doubles are written as -1.
void write_health_json(std::ostream& out, const FleetHealth& health);

/// Prometheus text exposition (gauge metrics prefixed
/// rfidsim_fleet_health_*, per-facility series labelled
/// {facility="N"}, alert counts additionally labelled {type="..."}).
/// Non-finite doubles are written as +Inf/-Inf.
void write_health_prometheus(std::ostream& out, const FleetHealth& health);

}  // namespace rfidsim::fleet
