#include "fleet/query.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rfidsim::fleet {

namespace {

/// Query-layer registry hooks: counts per query kind plus a wall-clock
/// latency histogram (instrument-side only — never read back).
struct QueryMetrics {
  obs::Counter& locates = obs::counter("fleet.query.locate");
  obs::Counter& inventories = obs::counter("fleet.query.inventory");
  obs::Counter& reconciliations = obs::counter("fleet.query.missing");
  obs::Histogram& latency = obs::histogram(
      "fleet.query.latency_seconds", obs::HistogramSpec{1e-7, 4.0, 12});
};

QueryMetrics& query_metrics() {
  static QueryMetrics m;
  return m;
}

/// RAII wall-clock observation into the query latency histogram, active
/// only while hooks are enabled.
class LatencyTimer {
 public:
  explicit LatencyTimer(obs::Counter& kind) {
    if (obs::hooks_enabled()) {
      kind.add(1);
      begin_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }
  ~LatencyTimer() {
    if (armed_) {
      const auto end = std::chrono::steady_clock::now();
      query_metrics().latency.observe(
          std::chrono::duration<double>(end - begin_).count());
    }
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  std::chrono::steady_clock::time_point begin_{};
  bool armed_ = false;
};

}  // namespace

double FacilityModel::identification_rc() const {
  double product = 1.0;
  bool any = false;
  for (std::size_t r = 0; r < reader_read_rates.size(); ++r) {
    if (r < reader_live.size() && !reader_live[r]) continue;
    const double p = std::clamp(reader_read_rates[r], 0.0, 1.0);
    product *= 1.0 - p;
    any = true;
  }
  return any ? 1.0 - product : 0.0;
}

const char* missing_verdict_name(MissingVerdict verdict) {
  switch (verdict) {
    case MissingVerdict::kPresent: return "present";
    case MissingVerdict::kProbablyMissedRead: return "missed_read";
    case MissingVerdict::kProbablyAbsent: return "absent";
  }
  return "?";
}

QueryService::QueryService(const TrackingStore& store,
                           const track::ObjectRegistry& registry, QueryConfig config)
    : store_(store), registry_(registry), config_(config) {
  require(config_.custody_horizon_s >= 0.0,
          "QueryService: custody horizon must be non-negative");
  require(config_.prior_present_seen > 0.0 && config_.prior_present_seen < 1.0 &&
              config_.prior_present_unseen > 0.0 && config_.prior_present_unseen < 1.0,
          "QueryService: priors must lie strictly inside (0, 1)");
  require(config_.decision_threshold > 0.0 && config_.decision_threshold < 1.0,
          "QueryService: decision threshold must lie strictly inside (0, 1)");
}

void QueryService::set_facility_model(FacilityId facility, FacilityModel model) {
  if (models_.size() <= facility) models_.resize(facility + 1);
  models_[facility] = std::move(model);
}

const FacilityModel* QueryService::facility_model(FacilityId facility) const {
  if (facility >= models_.size()) return nullptr;
  return &models_[facility];
}

LocateResult QueryService::locate(scene::TagId tag, double t) const {
  const LatencyTimer timer(query_metrics().locates);
  LocateResult out;
  const auto sighting = store_.last_sighting_at(tag, t);
  if (!sighting.has_value()) return out;
  out.found = true;
  out.facility = sighting->facility;
  out.time_s = sighting->time_s;
  if (const FacilityModel* model = facility_model(sighting->facility)) {
    out.confidence = model->identification_rc();
  }
  return out;
}

LocateResult QueryService::locate(track::ObjectId object, double t) const {
  const LatencyTimer timer(query_metrics().locates);
  LocateResult best;
  for (const scene::TagId tag : registry_.tags_of(object)) {
    const auto sighting = store_.last_sighting_at(tag, t);
    if (!sighting.has_value()) continue;
    if (!best.found || sighting->time_s > best.time_s) {
      best.found = true;
      best.facility = sighting->facility;
      best.time_s = sighting->time_s;
    }
  }
  if (best.found) {
    if (const FacilityModel* model = facility_model(best.facility)) {
      best.confidence = model->identification_rc();
    }
  }
  return best;
}

std::vector<track::ObjectId> QueryService::inventory(FacilityId facility,
                                                     double t) const {
  const LatencyTimer timer(query_metrics().inventories);
  std::vector<track::ObjectId> out;
  for (const track::ObjectId object : registry_.objects()) {
    LocateResult at;  // locate(object, t) without double-counting metrics.
    for (const scene::TagId tag : registry_.tags_of(object)) {
      const auto sighting = store_.last_sighting_at(tag, t);
      if (!sighting.has_value()) continue;
      if (!at.found || sighting->time_s > at.time_s) {
        at.found = true;
        at.facility = sighting->facility;
        at.time_s = sighting->time_s;
      }
    }
    if (at.found && at.facility == facility) out.push_back(object);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool QueryService::sighted_at(track::ObjectId object, FacilityId facility,
                              double begin_s, double end_s) const {
  for (const scene::TagId tag : registry_.tags_of(object)) {
    const std::vector<Sighting>* tl = store_.timeline(tag);
    if (tl == nullptr) continue;
    const Sighting probe{begin_s, 0, 0, 0};
    for (auto it = std::lower_bound(tl->begin(), tl->end(), probe,
                                    [](const Sighting& a, const Sighting& b) {
                                      return a.time_s < b.time_s;
                                    });
         it != tl->end() && it->time_s <= end_s; ++it) {
      if (it->facility == facility) return true;
    }
  }
  return false;
}

MissingReport QueryService::missing(const track::Manifest& manifest,
                                    FacilityId facility, double window_begin_s,
                                    double window_end_s) const {
  const LatencyTimer timer(query_metrics().reconciliations);
  const obs::TraceSpan span("fleet.query.missing");
  require(window_end_s >= window_begin_s, "QueryService: inverted pass window");

  MissingReport report;
  // Expected objects, id-ascending for deterministic reporting.
  std::vector<track::ObjectId> expected(manifest.expected.begin(),
                                        manifest.expected.end());
  std::sort(expected.begin(), expected.end());

  const FacilityModel* model = facility_model(facility);
  const double rc = model != nullptr ? model->identification_rc() : 0.0;
  const double p_miss = 1.0 - rc;

  for (const track::ObjectId object : expected) {
    Reconciliation item;
    item.object = object;
    item.miss_probability = p_miss;
    if (sighted_at(object, facility, window_begin_s, window_end_s)) {
      item.verdict = MissingVerdict::kPresent;
      item.posterior_present = 1.0;
      item.custody_evidence = true;
      report.present.push_back(object);
    } else {
      // Custody prior: was the object sighted anywhere in the fleet inside
      // the horizon before the window closed?
      const LocateResult last = [&] {
        LocateResult res;
        for (const scene::TagId tag : registry_.tags_of(object)) {
          const auto sighting = store_.last_sighting_at(tag, window_end_s);
          if (!sighting.has_value()) continue;
          if (!res.found || sighting->time_s > res.time_s) {
            res.found = true;
            res.facility = sighting->facility;
            res.time_s = sighting->time_s;
          }
        }
        return res;
      }();
      item.custody_evidence =
          last.found && last.time_s >= window_end_s - config_.custody_horizon_s;
      const double prior = item.custody_evidence ? config_.prior_present_seen
                                                 : config_.prior_present_unseen;
      // Likelihood ratio P(no reads | present) / P(no reads | absent) is
      // p_miss / 1; fold into the prior odds.
      const double odds = prior / (1.0 - prior) * p_miss;
      item.posterior_present = odds / (1.0 + odds);
      item.verdict = item.posterior_present >= config_.decision_threshold
                         ? MissingVerdict::kProbablyMissedRead
                         : MissingVerdict::kProbablyAbsent;
      (item.verdict == MissingVerdict::kProbablyMissedRead ? report.missed_reads
                                                           : report.absent)
          .push_back(object);
    }
    report.items.push_back(item);
  }

  // Unexpected: inventoried in the window at this facility, not expected.
  for (const track::ObjectId object : registry_.objects()) {
    if (manifest.expected.count(object) != 0) continue;
    if (sighted_at(object, facility, window_begin_s, window_end_s)) {
      report.unexpected.push_back(object);
    }
  }
  std::sort(report.unexpected.begin(), report.unexpected.end());
  return report;
}

}  // namespace rfidsim::fleet
