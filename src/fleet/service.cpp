#include "fleet/service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/provenance.hpp"

namespace rfidsim::fleet {

FleetService::FleetService(const track::ObjectRegistry& registry,
                           StoreConfig store_config, QueryConfig query_config)
    : registry_(registry),
      store_(store_config),
      query_(store_, registry_, query_config) {}

FacilityId FleetService::add_facility(FeedConfig config) {
  const FacilityId id = static_cast<FacilityId>(feeds_.size());
  config.facility = id;
  feeds_.push_back(std::make_unique<FacilityFeed>(std::move(config)));
  return id;
}

FacilityFeed& FleetService::feed(FacilityId facility) {
  require(facility < feeds_.size(), "FleetService: unknown facility");
  return *feeds_[facility];
}

const FacilityFeed& FleetService::feed(FacilityId facility) const {
  require(facility < feeds_.size(), "FleetService: unknown facility");
  return *feeds_[facility];
}

FeedPassResult FleetService::ingest_pass(FacilityId facility, const sys::EventLog& raw,
                                         double window_begin_s, double window_end_s,
                                         Rng& rng) {
  FacilityFeed& f = feed(facility);
  FeedPassResult result = f.ingest_pass(store_, raw, window_begin_s, window_end_s, rng);
  query_.set_facility_model(facility, f.model());
  return result;
}

FleetHealth FleetService::health_snapshot() const {
  FleetHealth health;
  health.facilities = feeds_.size();
  health.tags = store_.tag_count();
  health.sightings = store_.sighting_count();
  health.store = store_.stats();
  // Telemetry self-health. Deliberately only the mode-invariant tallies:
  // drop/failure counters sit at zero unless something is actually wrong,
  // so the snapshot stays byte-identical with hooks on, off, or compiled
  // out (held by tests/fleet/health_test.cpp).
  health.provenance_dropped = obs::provenance_log().dropped();
  health.flight_dump_attempts = obs::flight_dump_attempts();
  health.flight_dump_failures = obs::flight_dump_failures();
  health.crash_handler_installed = obs::crash_dump_path()[0] != '\0';
  health.per_facility.reserve(feeds_.size());
  bool watermark_known = !feeds_.empty();
  double min_watermark = std::numeric_limits<double>::infinity();
  for (const auto& feed : feeds_) {
    const obs::ReliabilityMonitor& monitor = feed->monitor();
    FacilityHealth f;
    f.facility = feed->config().facility;
    f.passes = feed->totals().passes;
    f.watermark_s = feed->watermark_s();
    f.watermark_age_s = feed->watermark_age_s();
    f.watermark_stalled = monitor.watermark_stalled();
    f.watermark_stall_streak = monitor.watermark_stall_streak();
    f.observed_rc = monitor.observed_rc();
    f.predicted_rc = monitor.predicted_rc();
    f.alerts_total = monitor.alerts().size();
    for (const obs::Alert& alert : monitor.alerts()) {
      const auto index = static_cast<std::size_t>(alert.type);
      if (index < f.alerts_by_type.size()) ++f.alerts_by_type[index];
    }
    f.totals = feed->totals();
    health.alerts_total += f.alerts_total;
    if (f.watermark_stalled) ++health.stalled_facilities;
    if (f.watermark_s < 0.0) watermark_known = false;
    min_watermark = std::min(min_watermark, f.watermark_s);
    health.per_facility.push_back(std::move(f));
  }
  // One never-merged facility pins the fleet freshness floor at "unknown":
  // a floor computed while ignoring it would overstate freshness.
  health.min_watermark_s = watermark_known ? min_watermark : -1.0;
  return health;
}

}  // namespace rfidsim::fleet
