#include "fleet/service.hpp"

#include <utility>

#include "common/error.hpp"

namespace rfidsim::fleet {

FleetService::FleetService(const track::ObjectRegistry& registry,
                           StoreConfig store_config, QueryConfig query_config)
    : registry_(registry),
      store_(store_config),
      query_(store_, registry_, query_config) {}

FacilityId FleetService::add_facility(FeedConfig config) {
  const FacilityId id = static_cast<FacilityId>(feeds_.size());
  config.facility = id;
  feeds_.push_back(std::make_unique<FacilityFeed>(std::move(config)));
  return id;
}

FacilityFeed& FleetService::feed(FacilityId facility) {
  require(facility < feeds_.size(), "FleetService: unknown facility");
  return *feeds_[facility];
}

const FacilityFeed& FleetService::feed(FacilityId facility) const {
  require(facility < feeds_.size(), "FleetService: unknown facility");
  return *feeds_[facility];
}

FeedPassResult FleetService::ingest_pass(FacilityId facility, const sys::EventLog& raw,
                                         double window_begin_s, double window_end_s,
                                         Rng& rng) {
  FacilityFeed& f = feed(facility);
  FeedPassResult result = f.ingest_pass(store_, raw, window_begin_s, window_end_s, rng);
  query_.set_facility_model(facility, f.model());
  return result;
}

}  // namespace rfidsim::fleet
