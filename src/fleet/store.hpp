// rfidsim::fleet — sharded multi-facility tracking store.
//
// The paper's end goal is the *application*: knowing which object went
// where, built on unreliable portal reads hardened by redundancy
// (R_C = 1 - prod(1 - P_i)). TrackingStore is the backend of that
// application: it absorbs validated read-event batches from any number of
// facilities and maintains one custody timeline per EPC — the ordered
// sequence of sightings the locate/inventory/missing queries answer from.
//
// Sharding: timelines are partitioned by a pure hash of the EPC into a
// fixed number of shards. A bulk ingest first routes every event to its
// shard (cells = batches, each writing only its own routing slot), then
// merges each shard independently (cells = shards, each touching only its
// own timelines) — both phases ride rfidsim::sweep, so the engine's
// determinism contract applies end to end:
//
//   DETERMINISM CONTRACT: the store's final state is a pure function of
//   the multiset of ingested batches. Within a shard, batches apply in
//   caller order; across shards there is no shared state. Thread count,
//   scheduling, and obs on/off can never change a stored bit — and since
//   insertion is sorted and duplicate-idempotent, neither can the
//   *arrival order* of batches: late and re-delivered uploads converge to
//   the same timelines (digest() makes that checkable in one number).
//
// Late/duplicate handling: uploader retries deliver batches late and
// middleware re-delivers them whole. Sightings insert in time-sorted
// position (a late batch repairs the middle of a timeline, counted in
// stats().repairs) and an exactly-identical sighting is dropped as a
// duplicate, so re-ingesting a batch is a no-op.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "scene/tag.hpp"
#include "system/events.hpp"

namespace rfidsim::fleet {

/// Index of one facility (portal installation) in the fleet.
using FacilityId = std::uint32_t;

/// One accepted read of one tag, as the store keeps it: where and when the
/// tag was seen and through which infrastructure. RSSI is deliberately not
/// retained — custody queries never need it, and dropping it keeps a
/// million-sighting store lean.
struct Sighting {
  double time_s = 0.0;
  FacilityId facility = 0;
  std::uint32_t reader = 0;
  std::uint32_t antenna = 0;

  friend bool operator==(const Sighting&, const Sighting&) = default;
};

/// Total order used for timeline storage: chronological, with a stable
/// infrastructure tie-break so equal-time sightings from different paths
/// keep one canonical order regardless of arrival order.
bool sighting_less(const Sighting& a, const Sighting& b);

/// One validated batch from one facility feed, as delivered by the upload
/// hop. `sent_time_s` is the reader's flush time; `arrival_time_s` is when
/// the backend actually received it (flush plus retry backoff) — a batch
/// with arrival_time_s > sent_time_s was delayed in transit.
struct FacilityBatch {
  FacilityId facility = 0;
  double sent_time_s = 0.0;
  double arrival_time_s = 0.0;
  sys::EventLog events;
  /// Provenance id carried from sys::DeliveredBatch (0 = none). Plumbing
  /// only: ids never enter timelines or digest() — stored truth stays a
  /// pure function of the sighting multiset.
  std::uint64_t batch_id = 0;
};

struct StoreConfig {
  /// Timeline shards. More shards = finer ingest parallelism; the stored
  /// state and digest are independent of the count.
  std::size_t shard_count = 64;
  /// Worker threads for bulk ingest: 0 borrows the shared sweep engine,
  /// 1 forces the serial path. Results are identical either way.
  std::size_t threads = 1;
};

/// Deterministic ingest tallies (pure functions of the batch sequence).
struct StoreStats {
  std::uint64_t batches = 0;
  std::uint64_t events = 0;        ///< Events offered across all batches.
  std::uint64_t accepted = 0;      ///< Distinct sightings stored.
  std::uint64_t duplicates = 0;    ///< Exact re-deliveries dropped.
  std::uint64_t repairs = 0;       ///< Insertions not at a timeline's tail.
  std::uint64_t late_batches = 0;  ///< Batches with arrival > sent time.
};

/// The sharded custody store. Construct once per backend; feed batches via
/// ingest(); query timelines at any point between ingests.
class TrackingStore {
 public:
  explicit TrackingStore(StoreConfig config = {});

  /// Routes and merges a sequence of batches (applied in the given order
  /// within each shard). Safe to call repeatedly; not concurrently.
  void ingest(const std::vector<FacilityBatch>& batches);
  void ingest(const FacilityBatch& batch);

  /// The stored timeline of one tag, time-sorted; nullptr when the tag has
  /// never been sighted. The pointer is valid until the next ingest().
  const std::vector<Sighting>* timeline(scene::TagId tag) const;

  /// Latest sighting of `tag` at or before `t`, if any.
  std::optional<Sighting> last_sighting_at(scene::TagId tag, double t) const;

  /// All sighted tags, ascending by EPC (gathers across shards).
  std::vector<scene::TagId> tags() const;

  std::size_t tag_count() const;
  std::size_t sighting_count() const;

  /// FNV-1a digest over every timeline in ascending-EPC order: one number
  /// that must be bit-identical across thread counts, shard counts, batch
  /// arrival orders, and obs on/off/compiled-out.
  std::uint64_t digest() const;

  const StoreStats& stats() const { return stats_; }
  const StoreConfig& config() const { return config_; }

  /// Sightings held by one shard (shard-depth gauges and balance tests).
  std::size_t shard_depth(std::size_t shard) const;
  std::size_t shard_of(scene::TagId tag) const;

  // --- Checkpoint/restore surface (fleet/checkpoint.*) -----------------
  //
  // The snapshot layer reads shards through these accessors and rebuilds
  // them through restore_shard/restore_stats. Restore replaces state
  // wholesale; it is not an ingest path and performs no validation beyond
  // structure — the checkpoint reader owns integrity (CRC + digest).

  /// Per-shard bookkeeping the checkpoint must carry so a restored store's
  /// stats() stay faithful. `version` is a monotonic mutation counter
  /// (bumped once per ingest() that touched the shard) — the incremental
  /// checkpoint writer diffs it to skip unchanged shards.
  struct ShardCounters {
    std::uint64_t sightings = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t repairs = 0;
    std::uint64_t version = 0;
  };
  ShardCounters shard_counters(std::size_t shard) const;
  std::uint64_t shard_version(std::size_t shard) const;

  /// Visits one shard's timelines in ascending-EPC order.
  void visit_shard(std::size_t shard,
                   const std::function<void(std::uint64_t epc,
                                            const std::vector<Sighting>&)>& fn) const;

  /// Replaces one shard's contents wholesale. `timelines` must be sorted
  /// ascending by EPC with each timeline in sighting_less order (the
  /// checkpoint wrote them that way; restore trusts the digest check to
  /// catch anything else).
  void restore_shard(
      std::size_t shard,
      std::vector<std::pair<std::uint64_t, std::vector<Sighting>>> timelines,
      const ShardCounters& counters);

  /// Restores the shard-independent ingest tallies.
  void restore_stats(const StoreStats& stats) { stats_ = stats; }

 private:
  /// Arena-style shard: timelines live in one dense vector (slot order =
  /// first-sighting order) reached through an open-addressing EPC index —
  /// no per-EPC tree nodes to allocate, rebalance, or pointer-chase during
  /// ingest. Ascending-EPC iteration (visit_shard) sorts a slot permutation
  /// lazily; digest()/tags() gather raw slots and sort globally, exactly as
  /// the per-EPC-node implementation did, so every externally visible order
  /// — and therefore every digest — is unchanged.
  struct Shard {
    /// Open addressing, power-of-two capacity, linear probing; entries are
    /// slot + 1 (0 = empty). Keyed by the same SplitMix64 mix() that picks
    /// the shard.
    std::vector<std::uint32_t> index;
    std::vector<std::uint64_t> epcs;               ///< Per slot, insertion order.
    std::vector<std::vector<Sighting>> timelines;  ///< Parallel to epcs.
    /// Ascending-EPC slot permutation for visit_shard, rebuilt lazily.
    mutable std::vector<std::uint32_t> by_epc;
    mutable bool sorted = true;
    std::uint64_t sightings = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t repairs = 0;
    /// Mutation epoch for incremental checkpoints.
    std::uint64_t version = 0;
  };

  /// Timeline slot for `epc`, creating an empty timeline on first sight.
  std::size_t find_or_create(Shard& shard, std::uint64_t epc) const;
  /// Existing slot for `epc`, or npos.
  std::size_t find_slot(const Shard& shard, std::uint64_t epc) const;
  void rehash(Shard& shard, std::size_t capacity) const;
  void ensure_sorted(const Shard& shard) const;

  void merge_into_shard(Shard& shard, std::uint64_t epc, const Sighting& s);
  void publish_metrics(const StoreStats& before) const;

  StoreConfig config_;
  std::vector<Shard> shards_;
  StoreStats stats_;
};

}  // namespace rfidsim::fleet
