#include "fleet/feed.hpp"

#include <string>
#include <utility>

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace rfidsim::fleet {

namespace {

/// Feed registry hooks: per-pass aggregates across all feeds, plus
/// per-facility wire-transport counters (the facility label is what lets
/// an operator see *which* uplink is rotting).
void record_feed_metrics(const FeedPassResult& result, FacilityId facility) {
  static const struct Metrics {
    obs::Counter& passes = obs::counter("fleet.feed.passes");
    obs::Counter& batches = obs::counter("fleet.feed.batches");
    obs::Counter& quarantined = obs::counter("fleet.feed.quarantined");
    obs::Counter& late = obs::counter("fleet.feed.late_batches");
    obs::Counter& lost = obs::counter("fleet.feed.lost_batches");
  } m;
  m.passes.add(1);
  m.batches.add(result.batches.size());
  m.quarantined.add(result.quarantined);
  m.late.add(result.late_batches);
  m.lost.add(result.lost_batches);

  const std::string label = std::to_string(facility);
  obs::counter("fleet.feed.wire_frames", {{"facility", label}})
      .add(result.frames_sent);
  obs::counter("fleet.feed.wire_corrupt_frames", {{"facility", label}})
      .add(result.corrupt_frames);
  obs::counter("fleet.feed.wire_recovered_batches", {{"facility", label}})
      .add(result.recovered_batches);
  obs::counter("fleet.feed.wire_quarantined_batches", {{"facility", label}})
      .add(result.quarantined_batches);
  obs::counter("fleet.feed.stale_batches", {{"facility", label}})
      .add(result.stale_batches);
}

/// Watermark/staleness gauges plus the event-time -> store-visible lag
/// histogram, published after a merge. Labelled per facility so one rotting
/// uplink's lag does not hide inside a fleet-wide aggregate.
void record_watermark_metrics(const FeedPassResult& result, FacilityId facility,
                              double watermark_s, double age_s) {
  const std::string label = std::to_string(facility);
  obs::registry().gauge("fleet.watermark.seconds", {{"facility", label}})
      .set(watermark_s);
  if (age_s < std::numeric_limits<double>::infinity()) {
    obs::registry().gauge("fleet.watermark.age_seconds", {{"facility", label}})
        .set(age_s);
  }
  // Lag = backend arrival minus event time: how long a sighting was in
  // flight before a query could see it. Buckets start at 1ms (clean serial
  // hop) and span out past retry-backoff territory.
  obs::Histogram& lag = obs::registry().histogram(
      "fleet.feed.visibility_lag_seconds", {{"facility", label}},
      obs::HistogramSpec{1e-3, 4.0, 16});
  for (const FacilityBatch& batch : result.batches) {
    for (const sys::ReadEvent& ev : batch.events) {
      lag.observe(batch.arrival_time_s - ev.time_s);
    }
  }
}

/// End-to-end batch latency: uploader send -> watermark-visible. A batch
/// becomes queryable when its pass's merge completes, which in simulated
/// time is the later of its backend arrival and the pass window close (the
/// watermark only advances at pass granularity). Observed per batch — the
/// p50/p95/p99 the exposition derives are what BENCH_FLEET regresses on.
void record_visibility_metrics(const FeedPassResult& result, FacilityId facility,
                               double window_end_s) {
  const std::string label = std::to_string(facility);
  obs::Histogram& latency = obs::registry().histogram(
      "fleet.batch.visibility_latency_seconds", {{"facility", label}},
      obs::HistogramSpec{1e-3, 4.0, 16});
  for (const FacilityBatch& batch : result.batches) {
    const double visible_s = std::max(window_end_s, batch.arrival_time_s);
    latency.observe(visible_s - batch.sent_time_s);
    if (batch.batch_id != 0) {
      obs::provenance_log().record({batch.batch_id, obs::BatchHop::kVisible,
                                    batch.facility, batch.events.size(),
                                    visible_s});
    }
  }
}

}  // namespace

FacilityFeed::FacilityFeed(FeedConfig config)
    : config_(std::move(config)),
      uploader_(config_.uploader),
      corruptor_(config_.wire_corruption),
      ingest_(config_.ingest),
      monitor_(config_.monitor) {
  require(config_.ingest.reader_count > 0,
          "FacilityFeed: ingest.reader_count must be set (the monitor needs "
          "the reader roster)");
}

FeedPassResult FacilityFeed::process_pass(const sys::EventLog& raw,
                                          double window_begin_s,
                                          double window_end_s, Rng& rng) {
  const obs::TraceSpan span("fleet.feed.pass");
  require(window_end_s >= window_begin_s, "FacilityFeed: inverted pass window");

  FeedPassResult result;
  const std::size_t batches_before = uploader_.stats().batches_lost;
  const sys::WireUploadStats wire_before = uploader_.wire_stats();
  std::vector<sys::DeliveredBatch> delivered =
      uploader_.upload_wire(raw, config_.facility, rng, &corruptor_);
  result.lost_batches = uploader_.stats().batches_lost - batches_before;
  const sys::WireUploadStats& wire_after = uploader_.wire_stats();
  result.frames_sent =
      static_cast<std::size_t>(wire_after.frames_sent - wire_before.frames_sent);
  result.corrupt_frames = static_cast<std::size_t>(wire_after.corrupt_frames -
                                                   wire_before.corrupt_frames);
  result.recovered_batches = static_cast<std::size_t>(
      wire_after.batches_recovered - wire_before.batches_recovered);
  result.quarantined_batches = static_cast<std::size_t>(
      wire_after.batches_quarantined - wire_before.batches_quarantined);

  // Per-batch validation: the same record rules ingest() applies, so the
  // store only ever sees plausible sightings. On-time batches additionally
  // feed the pass-level union below.
  sys::EventLog on_time;
  const bool hooked = obs::hooks_enabled();
  for (sys::DeliveredBatch& db : delivered) {
    FacilityBatch batch;
    batch.facility = config_.facility;
    batch.sent_time_s = db.sent_time_s;
    batch.arrival_time_s = db.arrival_time_s;
    batch.batch_id = db.batch_id;
    batch.events.reserve(db.events.size());
    for (const sys::ReadEvent& ev : db.events) {
      if (!track::validate_event(ev, config_.ingest, window_begin_s, window_end_s)) {
        ++result.quarantined;
        continue;
      }
      batch.events.push_back(ev);
      result.max_event_time_s = std::max(result.max_event_time_s, ev.time_s);
    }
    if (batch.events.empty()) continue;
    if (hooked && batch.batch_id != 0) {
      obs::provenance_log().record({batch.batch_id, obs::BatchHop::kValidated,
                                    batch.facility, batch.events.size(),
                                    batch.arrival_time_s});
    }
    if (batch.arrival_time_s > window_end_s + config_.stale_horizon_s) {
      // Past the staleness horizon: alerted below, still stored — the
      // sorted-idempotent store repairs truth however late the data is.
      ++result.stale_batches;
      if (hooked && batch.batch_id != 0) {
        obs::provenance_log().record({batch.batch_id, obs::BatchHop::kStale,
                                      batch.facility, batch.events.size(),
                                      batch.arrival_time_s});
      }
    }
    if (batch.arrival_time_s > window_end_s) {
      ++result.late_batches;
      if (hooked && batch.batch_id != 0) {
        obs::provenance_log().record({batch.batch_id, obs::BatchHop::kLate,
                                      batch.facility, batch.events.size(),
                                      batch.arrival_time_s});
      }
    } else {
      on_time.insert(on_time.end(), batch.events.begin(), batch.events.end());
    }
    result.batches.push_back(std::move(batch));
  }

  // Pass-level union over what arrived in time: dedup and silence signals,
  // then one monitor observation. A reader whose batches all slid past the
  // window end looks silent here — deliberately: that is the latency
  // degradation the confidence model must reflect.
  result.report = ingest_.ingest(on_time, window_begin_s, window_end_s);
  last_degraded_ = result.report.degraded_readers;
  monitor_.observe_pass(track::monitor_observation(
      result.report, config_.ingest.reader_count, config_.objects_total,
      window_begin_s, window_end_s));
  monitor_.observe_transport(obs::TransportObservation{
      result.frames_sent, result.corrupt_frames, result.recovered_batches,
      result.quarantined_batches, result.stale_batches, window_end_s});

  // Cumulative tallies for the health surface — always on (pure counting).
  last_window_end_s_ = window_end_s;
  totals_.passes += 1;
  totals_.delivered_batches += result.batches.size();
  for (const FacilityBatch& batch : result.batches) {
    totals_.stored_events += batch.events.size();
  }
  totals_.quarantined_records += result.quarantined;
  totals_.late_batches += result.late_batches;
  totals_.lost_batches += result.lost_batches;
  totals_.stale_batches += result.stale_batches;
  totals_.frames_sent += result.frames_sent;
  totals_.corrupt_frames += result.corrupt_frames;
  totals_.recovered_batches += result.recovered_batches;
  totals_.quarantined_batches += result.quarantined_batches;

  result.watermark_s = watermark_s_;
  if (hooked) record_feed_metrics(result, config_.facility);
  return result;
}

FeedPassResult FacilityFeed::ingest_pass(TrackingStore& store,
                                         const sys::EventLog& raw,
                                         double window_begin_s, double window_end_s,
                                         Rng& rng) {
  FeedPassResult result = process_pass(raw, window_begin_s, window_end_s, rng);
  store.ingest(result.batches);
  // Everything this pass delivered is now merged, so the watermark may
  // advance to the pass's max event time. The stall detector is always-on
  // arithmetic (feedback-free contract: detection never gates on obs).
  watermark_s_ = std::max(watermark_s_, result.max_event_time_s);
  result.watermark_s = watermark_s_;
  monitor_.observe_watermark(
      obs::WatermarkObservation{watermark_s_, window_end_s});
  if (obs::hooks_enabled()) {
    record_watermark_metrics(result, config_.facility, watermark_s_,
                             watermark_age_s());
    record_visibility_metrics(result, config_.facility, window_end_s);
  }
  return result;
}

double FacilityFeed::watermark_age_s() const {
  if (watermark_s_ < 0.0) return std::numeric_limits<double>::infinity();
  return last_window_end_s_ - watermark_s_;
}

FacilityModel FacilityFeed::model() const {
  FacilityModel model;
  const std::size_t readers = config_.ingest.reader_count;
  model.reader_read_rates.resize(readers, 0.0);
  model.reader_live.assign(readers, true);
  for (std::size_t r = 0; r < readers && r < monitor_.reader_count(); ++r) {
    model.reader_read_rates[r] = monitor_.reader_read_rate(r);
  }
  for (const std::size_t r : last_degraded_) {
    if (r < readers) model.reader_live[r] = false;
  }
  return model;
}

}  // namespace rfidsim::fleet
