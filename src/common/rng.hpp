// Deterministic random number generation.
//
// Every experiment in rfidsim is seeded so that identical seeds regenerate
// identical tables (see DESIGN.md §4.5). Rng wraps a 64-bit Mersenne Twister
// with the handful of distributions the simulator needs, and supports
// deterministic fork() so parallel sub-experiments stay reproducible
// regardless of evaluation order.
#pragma once

#include <cstdint>
#include <random>

namespace rfidsim {

/// Seeded pseudo-random source. Not thread-safe; fork() one per worker.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. The default seed is arbitrary
  /// but fixed, so default-constructed simulations are still deterministic.
  explicit Rng(std::uint64_t seed = 0x5eed'0'f1dULL) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to the given mean and standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw: true with probability p (clamped to [0, 1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed draw with the given rate (> 0).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Raw 64-bit draw.
  std::uint64_t next_u64() { return engine_(); }

  /// Derives an independent child generator. The child's stream is a pure
  /// function of (parent seed, label), so forking is order-independent.
  Rng fork(std::uint64_t label) const {
    // SplitMix64 finalizer mixes seed and label into a well-spread child seed.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (label + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace rfidsim
