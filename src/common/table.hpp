// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figure data
// series; TextTable gives them a uniform, aligned, pipe-delimited output
// format that is easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace rfidsim {

/// A simple column-aligned text table builder.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are an error (throws std::invalid_argument).
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule, e.g.
  ///   Tag location | Reliability
  ///   -------------+------------
  ///   Front        | 87%
  std::string render() const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a probability as a percentage string, e.g. 0.873 -> "87%".
/// `decimals` adds fractional digits ("87.3%").
std::string percent(double probability, int decimals = 0);

/// Formats a double with fixed decimals, e.g. fixed_str(3.14159, 2) -> "3.14".
std::string fixed_str(double value, int decimals);

}  // namespace rfidsim
