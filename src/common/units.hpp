// Power and gain units for RF link-budget arithmetic.
//
// Mixing up dB (a ratio) and dBm (an absolute power) is the classic RF
// modelling bug, so the two are distinct strong types: Decibel + Decibel is
// a gain composition; DbmPower + Decibel is an amplified signal;
// DbmPower + DbmPower does not compile.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace rfidsim {

/// A dimensionless ratio expressed in decibels (antenna gain, loss, margin).
class Decibel {
 public:
  constexpr Decibel() = default;
  constexpr explicit Decibel(double db) : db_(db) {}

  /// The raw decibel value.
  constexpr double value() const { return db_; }
  /// The linear ratio this gain represents (10^(dB/10)).
  double linear() const { return std::pow(10.0, db_ / 10.0); }
  /// Builds a Decibel from a linear power ratio (must be > 0).
  static Decibel from_linear(double ratio) { return Decibel(10.0 * std::log10(ratio)); }

  constexpr Decibel operator+(Decibel o) const { return Decibel(db_ + o.db_); }
  constexpr Decibel operator-(Decibel o) const { return Decibel(db_ - o.db_); }
  constexpr Decibel operator-() const { return Decibel(-db_); }
  constexpr Decibel& operator+=(Decibel o) { db_ += o.db_; return *this; }
  constexpr Decibel& operator-=(Decibel o) { db_ -= o.db_; return *this; }
  constexpr Decibel operator*(double s) const { return Decibel(db_ * s); }
  constexpr auto operator<=>(const Decibel&) const = default;

 private:
  double db_ = 0.0;
};

/// An absolute power level in dBm (decibels relative to one milliwatt).
class DbmPower {
 public:
  constexpr DbmPower() = default;
  constexpr explicit DbmPower(double dbm) : dbm_(dbm) {}

  /// The raw dBm value.
  constexpr double value() const { return dbm_; }
  /// Power in milliwatts.
  double milliwatts() const { return std::pow(10.0, dbm_ / 10.0); }
  /// Power in watts.
  double watts() const { return milliwatts() * 1e-3; }
  /// Builds a power level from milliwatts (must be > 0).
  static DbmPower from_milliwatts(double mw) { return DbmPower(10.0 * std::log10(mw)); }

  /// Applying a gain/loss to a power yields a power.
  constexpr DbmPower operator+(Decibel g) const { return DbmPower(dbm_ + g.value()); }
  constexpr DbmPower operator-(Decibel g) const { return DbmPower(dbm_ - g.value()); }
  constexpr DbmPower& operator+=(Decibel g) { dbm_ += g.value(); return *this; }
  constexpr DbmPower& operator-=(Decibel g) { dbm_ -= g.value(); return *this; }
  /// The ratio between two absolute powers is a gain.
  constexpr Decibel operator-(DbmPower o) const { return Decibel(dbm_ - o.dbm_); }
  constexpr auto operator<=>(const DbmPower&) const = default;

 private:
  double dbm_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, Decibel d) { return os << d.value() << " dB"; }
inline std::ostream& operator<<(std::ostream& os, DbmPower p) { return os << p.value() << " dBm"; }

namespace literals {
constexpr Decibel operator""_dB(long double v) { return Decibel(static_cast<double>(v)); }
constexpr Decibel operator""_dB(unsigned long long v) { return Decibel(static_cast<double>(v)); }
constexpr DbmPower operator""_dBm(long double v) { return DbmPower(static_cast<double>(v)); }
constexpr DbmPower operator""_dBm(unsigned long long v) { return DbmPower(static_cast<double>(v)); }
}  // namespace literals

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Wavelength [m] for a carrier frequency [Hz].
constexpr double wavelength_m(double frequency_hz) { return kSpeedOfLight / frequency_hz; }

/// Sums incoherent powers expressed in dBm (e.g. interference floors).
DbmPower sum_incoherent(DbmPower a, DbmPower b);

}  // namespace rfidsim
