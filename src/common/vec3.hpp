// 3-D vector math used throughout the geometry and RF models.
//
// Deliberately minimal: rfidsim needs dot/cross products, norms, and a few
// constructors, not a full linear-algebra package. All operations are
// constexpr-friendly and allocation-free.
#pragma once

#include <cmath>
#include <ostream>

namespace rfidsim {

/// A 3-D vector (or point) in metres. The simulator's world frame is
/// right-handed: +x along the direction of travel of moving objects,
/// +y from the scene toward the reader antenna, +z up.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3& o) const = default;

  /// Dot product.
  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  /// Cross product (right-handed).
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  /// Squared Euclidean norm. Cheaper than norm() when comparing distances.
  constexpr double norm2() const { return dot(*this); }
  /// Euclidean norm (length).
  double norm() const { return std::sqrt(norm2()); }
  /// Unit vector in this direction. Returns the zero vector unchanged
  /// (callers that care must check norm() first).
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : *this;
  }
  /// Distance to another point.
  double distance_to(const Vec3& o) const { return (*this - o).norm(); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/// Angle in radians between two (not necessarily unit) vectors.
/// Returns 0 when either vector is zero.
inline double angle_between(const Vec3& a, const Vec3& b) {
  const double na = a.norm();
  const double nb = b.norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
  return std::acos(c);
}

}  // namespace rfidsim
