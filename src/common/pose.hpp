// Rigid poses: a position plus an orthonormal orientation frame.
//
// Tags and antennas both need a full orientation, not just a facing
// direction: a dipole tag's response depends on the direction of its dipole
// *axis* and on which way its patch *faces*, independently.
#pragma once

#include <cmath>

#include "common/vec3.hpp"

namespace rfidsim {

/// An orthonormal right-handed frame. `forward` is the boresight / facing
/// direction, `up` completes the frame, `right = forward x up`.
struct Frame {
  Vec3 forward{0.0, 1.0, 0.0};
  Vec3 up{0.0, 0.0, 1.0};

  /// The third basis vector.
  Vec3 right() const { return forward.cross(up); }

  /// Re-orthonormalises the frame (Gram-Schmidt on `up` against `forward`).
  /// Useful after composing rotations numerically.
  void orthonormalize() {
    forward = forward.normalized();
    up = (up - forward * up.dot(forward)).normalized();
  }

  /// Frame rotated by `angle_rad` about the world axis `axis` (unit vector),
  /// using Rodrigues' rotation formula.
  Frame rotated(const Vec3& axis, double angle_rad) const {
    const Vec3 k = axis.normalized();
    const double c = std::cos(angle_rad);
    const double s = std::sin(angle_rad);
    auto rot = [&](const Vec3& v) {
      return v * c + k.cross(v) * s + k * (k.dot(v) * (1.0 - c));
    };
    Frame f;
    f.forward = rot(forward);
    f.up = rot(up);
    return f;
  }
};

/// Position + orientation of a scene entity.
struct Pose {
  Vec3 position;
  Frame frame;

  /// Unit vector from this pose toward a point; zero vector if coincident.
  Vec3 direction_to(const Vec3& point) const {
    return (point - position).normalized();
  }
};

}  // namespace rfidsim
