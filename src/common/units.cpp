#include "common/units.hpp"

namespace rfidsim {

DbmPower sum_incoherent(DbmPower a, DbmPower b) {
  return DbmPower::from_milliwatts(a.milliwatts() + b.milliwatts());
}

}  // namespace rfidsim
