// Descriptive statistics used when reporting experiment results.
//
// The paper reports averages with upper/lower quartiles (Figs. 2 and 4) and
// success proportions over small repetition counts (Tables 1-5), so the two
// workhorses here are quartile summaries over samples and Wilson score
// intervals over Bernoulli counts.
#pragma once

#include <cstddef>
#include <vector>

namespace rfidsim {

/// Five-number-ish summary of a sample: mean, median, quartiles, extremes.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double lower_quartile = 0.0;  ///< 25th percentile.
  double median = 0.0;
  double upper_quartile = 0.0;  ///< 75th percentile.
  double max = 0.0;
};

/// Computes a SampleSummary. Quartiles use linear interpolation between
/// order statistics (the same convention as numpy's default). An empty
/// sample yields an all-zero summary.
SampleSummary summarize(std::vector<double> samples);

/// A two-sided confidence interval for a proportion.
struct ProportionInterval {
  double estimate = 0.0;  ///< successes / trials (0 when trials == 0).
  double lower = 0.0;
  double upper = 0.0;
};

/// Wilson score interval for a binomial proportion. Behaves sensibly for
/// the small n (10-40 repetitions) used throughout the paper, unlike the
/// normal approximation. `z` is the standard-normal quantile
/// (1.96 ~ 95% confidence).
ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z = 1.959963984540054);

/// Incremental mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);
  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Mean of observations (0 when empty).
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator; 0 when fewer than two observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace rfidsim
