#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rfidsim {

namespace {

// Percentile of an already-sorted sample, linearly interpolated.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

SampleSummary summarize(std::vector<double> samples) {
  SampleSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.lower_quartile = percentile_sorted(samples, 0.25);
  s.median = percentile_sorted(samples, 0.50);
  s.upper_quartile = percentile_sorted(samples, 0.75);

  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  return s;
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  ProportionInterval ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  ci.estimate = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  ci.lower = std::min(std::max(0.0, (centre - margin) / denom), p);
  ci.upper = std::max(std::min(1.0, (centre + margin) / denom), p);
  return ci;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace rfidsim
