#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rfidsim {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TextTable: row has more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << " | ";
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string percent(double probability, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << probability * 100.0 << '%';
  return out.str();
}

std::string fixed_str(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

}  // namespace rfidsim
