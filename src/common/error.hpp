// Library-wide error types.
//
// rfidsim throws on programmer errors (invalid configuration, violated
// preconditions) and never on expected simulation outcomes (a missed read
// is a result, not an error).
#pragma once

#include <stdexcept>
#include <string>

namespace rfidsim {

/// Base class for all rfidsim exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a scenario, scheme, or model is configured inconsistently
/// (e.g. a portal with zero antennas, a negative distance, an unknown
/// tag id in a registry).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Throws ConfigError when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw ConfigError(message);
}

}  // namespace rfidsim
