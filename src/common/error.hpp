// Library-wide error types.
//
// rfidsim throws on programmer errors (invalid configuration, violated
// preconditions) and never on expected simulation outcomes (a missed read
// is a result, not an error). Infrastructure faults sit in between: a
// flaky upload link or a corrupt middleware record is neither a bug nor a
// clean result, so those errors carry a severity that tells the caller
// whether retrying can help.
#pragma once

#include <stdexcept>
#include <string>

namespace rfidsim {

/// How an operational failure should be handled by the caller.
enum class ErrorSeverity {
  /// Retrying (possibly after a backoff) may succeed: a lost upload
  /// batch, a jammed command, a reader mid-restart.
  Transient,
  /// No amount of retrying helps: a truncated record, an exhausted retry
  /// budget, a dead cable until someone replaces it.
  Permanent,
};

/// Base class for all rfidsim exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a scenario, scheme, or model is configured inconsistently
/// (e.g. a portal with zero antennas, a negative distance, an unknown
/// tag id in a registry).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Operational failure in the read infrastructure (upload channel,
/// middleware feed, reader hardware) — as opposed to a misconfiguration.
/// Carries a severity so resilient consumers can decide between retrying
/// and quarantining.
class FaultError : public Error {
 public:
  FaultError(ErrorSeverity severity, const std::string& message)
      : Error(message), severity_(severity) {}
  ErrorSeverity severity() const { return severity_; }
  bool transient() const { return severity_ == ErrorSeverity::Transient; }

 private:
  ErrorSeverity severity_;
};

/// A FaultError worth retrying.
class TransientError : public FaultError {
 public:
  explicit TransientError(const std::string& message)
      : FaultError(ErrorSeverity::Transient, message) {}
};

/// A FaultError retrying cannot fix.
class PermanentError : public FaultError {
 public:
  explicit PermanentError(const std::string& message)
      : FaultError(ErrorSeverity::Permanent, message) {}
};

/// Throws ConfigError when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw ConfigError(message);
}

}  // namespace rfidsim
