#include "scene/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace rfidsim::scene {

bool Aabb::contains(const Vec3& p) const {
  const Vec3 lo = min();
  const Vec3 hi = max();
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
         p.z <= hi.z;
}

std::optional<double> chord_length(const Segment& seg, const Aabb& box) {
  const Vec3 d = seg.to - seg.from;
  const Vec3 lo = box.min();
  const Vec3 hi = box.max();

  double t_enter = 0.0;
  double t_exit = 1.0;

  const double dir[3] = {d.x, d.y, d.z};
  const double org[3] = {seg.from.x, seg.from.y, seg.from.z};
  const double bmin[3] = {lo.x, lo.y, lo.z};
  const double bmax[3] = {hi.x, hi.y, hi.z};

  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(dir[axis]) < 1e-12) {
      // A segment lying exactly on a face plane grazes the box without
      // traversing material: treat the boundary as outside.
      if (org[axis] <= bmin[axis] || org[axis] >= bmax[axis]) return std::nullopt;
      continue;
    }
    double t0 = (bmin[axis] - org[axis]) / dir[axis];
    double t1 = (bmax[axis] - org[axis]) / dir[axis];
    if (t0 > t1) std::swap(t0, t1);
    t_enter = std::max(t_enter, t0);
    t_exit = std::min(t_exit, t1);
    if (t_enter > t_exit) return std::nullopt;
  }
  const double len = (t_exit - t_enter) * d.norm();
  if (len <= 1e-9) return std::nullopt;
  return len;
}

std::optional<double> chord_length(const Segment& seg, const VerticalCylinder& cyl) {
  const Vec3 d = seg.to - seg.from;

  // Intersect the 2-D projection (x, y) with the circle, then clip by the
  // z slab of the cylinder.
  const double ox = seg.from.x - cyl.centre.x;
  const double oy = seg.from.y - cyl.centre.y;
  const double dx = d.x;
  const double dy = d.y;

  double t_enter = 0.0;
  double t_exit = 1.0;

  const double a = dx * dx + dy * dy;
  if (a < 1e-12) {
    // Vertical segment: inside iff the projected point is within the circle.
    if (ox * ox + oy * oy > cyl.radius * cyl.radius) return std::nullopt;
  } else {
    const double b = 2.0 * (ox * dx + oy * dy);
    const double c = ox * ox + oy * oy - cyl.radius * cyl.radius;
    const double disc = b * b - 4.0 * a * c;
    if (disc < 0.0) return std::nullopt;
    const double sq = std::sqrt(disc);
    double t0 = (-b - sq) / (2.0 * a);
    double t1 = (-b + sq) / (2.0 * a);
    if (t0 > t1) std::swap(t0, t1);
    t_enter = std::max(t_enter, t0);
    t_exit = std::min(t_exit, t1);
    if (t_enter > t_exit) return std::nullopt;
  }

  // Clip by the z extent.
  const double z_lo = cyl.centre.z - cyl.height * 0.5;
  const double z_hi = cyl.centre.z + cyl.height * 0.5;
  if (std::abs(d.z) < 1e-12) {
    if (seg.from.z < z_lo || seg.from.z > z_hi) return std::nullopt;
  } else {
    double t0 = (z_lo - seg.from.z) / d.z;
    double t1 = (z_hi - seg.from.z) / d.z;
    if (t0 > t1) std::swap(t0, t1);
    t_enter = std::max(t_enter, t0);
    t_exit = std::min(t_exit, t1);
    if (t_enter > t_exit) return std::nullopt;
  }

  const double len = (t_exit - t_enter) * d.norm();
  if (len <= 1e-9) return std::nullopt;
  return len;
}

PointToSegment closest_point(const Segment& seg, const Vec3& p) {
  const Vec3 d = seg.to - seg.from;
  const double len2 = d.norm2();
  PointToSegment result;
  if (len2 < 1e-12) {
    result.t = 0.0;
    result.distance = p.distance_to(seg.from);
    return result;
  }
  double t = (p - seg.from).dot(d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  result.t = t;
  result.distance = p.distance_to(seg.from + d * t);
  return result;
}

}  // namespace rfidsim::scene
