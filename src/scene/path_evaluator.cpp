#include "scene/path_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "rf/material.hpp"

namespace rfidsim::scene {

PathEvaluator::PathEvaluator(const Scene& scene, EvaluatorParams params)
    : scene_(scene), params_(params) {
  require(!scene.antennas.empty(), "PathEvaluator: scene has no antennas");

  entity_static_.reserve(scene.entities.size());
  tag_offset_.reserve(scene.entities.size());
  scene_static_ = true;
  for (const Entity& entity : scene.entities) {
    const bool is_static = entity.is_static();
    entity_static_.push_back(is_static);
    scene_static_ = scene_static_ && is_static;
    tag_offset_.push_back(tag_count_);
    tag_count_ += entity.tags().size();
  }
  if (params_.static_geometry_cache) {
    cache_.resize(scene.antennas.size() * tag_count_);
  }
}

PathEvaluator::~PathEvaluator() { flush_metrics(); }

void PathEvaluator::flush_metrics() const {
  if (obs::hooks_enabled()) {
    static const struct Counters {
      obs::Counter& full_hits = obs::counter("scene.path_cache.full_hits");
      obs::Counter& full_misses = obs::counter("scene.path_cache.full_misses");
      obs::Counter& pair_hits = obs::counter("scene.path_cache.pair_hits");
      obs::Counter& pair_misses = obs::counter("scene.path_cache.pair_misses");
      obs::Counter& bypassed = obs::counter("scene.path_cache.bypassed");
    } c;
    c.full_hits.add(cache_stats_.full_hits);
    c.full_misses.add(cache_stats_.full_misses);
    c.pair_hits.add(cache_stats_.pair_hits);
    c.pair_misses.add(cache_stats_.pair_misses);
    c.bypassed.add(cache_stats_.bypassed);
  }
  cache_stats_ = PathCacheStats{};
}

rf::PathTerms PathEvaluator::evaluate(std::size_t antenna_index, const TagAddress& tag,
                                      double t_s) const {
  require(antenna_index < scene_.antennas.size(),
          "PathEvaluator: antenna index out of range");
  require(tag.entity < scene_.entities.size(), "PathEvaluator: entity index out of range");
  const Entity& entity = scene_.entities[tag.entity];
  require(tag.tag < entity.tags().size(), "PathEvaluator: tag index out of range");

  if (!params_.static_geometry_cache || !entity_static_[tag.entity]) {
    ++cache_stats_.bypassed;
    return assemble(compute_pair_terms(antenna_index, tag, t_s), antenna_index, tag,
                    t_s);
  }

  CacheSlot& slot = cache_[antenna_index * tag_count_ + tag_offset_[tag.entity] + tag.tag];
  if (scene_static_) {
    // Nothing on this path can change with time: cache the whole result.
    if (!slot.full_ready) {
      ++cache_stats_.full_misses;
      slot.full = assemble(compute_pair_terms(antenna_index, tag, t_s), antenna_index,
                           tag, t_s);
      slot.full_ready = true;
    } else {
      ++cache_stats_.full_hits;
    }
    return slot.full;
  }
  // The tag holds still but other bodies move: reuse the pair-local terms,
  // re-evaluate the cross-entity ones.
  if (!slot.pair_ready) {
    ++cache_stats_.pair_misses;
    slot.pair = compute_pair_terms(antenna_index, tag, t_s);
    slot.pair_ready = true;
  } else {
    ++cache_stats_.pair_hits;
  }
  return assemble(slot.pair, antenna_index, tag, t_s);
}

PathEvaluator::PairTerms PathEvaluator::compute_pair_terms(std::size_t antenna_index,
                                                           const TagAddress& tag,
                                                           double t_s) const {
  const Entity& entity = scene_.entities[tag.entity];
  const AntennaSite& antenna = scene_.antennas[antenna_index];
  const Vec3 tag_pos = entity.tag_position(tag.tag, t_s);
  const Vec3 to_antenna = antenna.pose.position - tag_pos;

  PairTerms pair;
  pair.tag_position = tag_pos;
  pair.distance_m = std::max(to_antenna.norm(), 0.01);

  // Antenna pattern gains (the tag side honours the tag's design: a dual
  // dipole responds on its better element).
  pair.reader_gain = antenna.pattern.gain_toward(antenna.pose, tag_pos);
  const Vec3 axis = entity.tag_dipole_axis(tag.tag, t_s);
  const Vec3 design_normal = entity.tag_patch_normal(tag.tag, t_s);
  pair.tag_gain =
      rf::tag_design_gain(entity.tags()[tag.tag].mount.design, params_.tag_antenna,
                          axis, design_normal, to_antenna);

  // Circularly-polarized portal antenna: 3 dB to any linear tag on
  // boresight, worse off-axis as the circularity (axial ratio) degrades.
  pair.polarization_loss = rf::polarization_mismatch(
      antenna.pattern.params().circular_polarization, antenna.pose.frame.up, axis,
      -to_antenna);
  if (antenna.pattern.params().circular_polarization) {
    const double off = angle_between(antenna.pose.frame.forward, tag_pos - antenna.pose.position);
    const double frac = std::min(off / (std::numbers::pi / 2.0), 1.0);
    pair.polarization_loss +=
        Decibel(antenna.pattern.params().axial_ratio_loss_db_at_90deg * frac * frac);
  }

  pair.coupling_loss = coupling_loss(tag, t_s);

  // Direct path: angle-resolved image factor (cancellation toward grazing
  // directions, possible constructive gain broadside). sin(alpha) is the
  // elevation of the departure direction above the tag plane; reading from
  // behind the face (dot < 0) is grazing-at-best, and the occlusion term
  // (assemble) covers the body in the way.
  const TagMount& mount = entity.tags()[tag.tag].mount;
  const Vec3 dir = to_antenna.normalized();
  const double sin_alpha = std::max(design_normal.dot(dir), 0.02);
  pair.direct_image_loss = -rf::image_factor_gain(
      mount.backing_material, mount.backing_gap_m, sin_alpha, params_.frequency_hz);
  pair.direct_multipath = params_.two_ray.gain(
      antenna.pose.position.z, tag_pos.z,
      std::hypot(to_antenna.x, to_antenna.y), params_.frequency_hz);

  // Scatter path: the diffuse indoor field. Pays a fixed excess over free
  // space but bypasses occlusion and pattern nulls (angle-averaged terms).
  pair.scatter_material =
      -rf::image_factor_gain(mount.backing_material, mount.backing_gap_m,
                             params_.scatter_sin_alpha, params_.frequency_hz) +
      Decibel(params_.scatter_excess_db);

  return pair;
}

rf::PathTerms PathEvaluator::assemble(const PairTerms& pair, std::size_t antenna_index,
                                      const TagAddress& tag, double t_s) const {
  const AntennaSite& antenna = scene_.antennas[antenna_index];
  const Vec3& tag_pos = pair.tag_position;
  const Segment path{tag_pos, antenna.pose.position};

  rf::PathTerms terms;
  terms.distance_m = pair.distance_m;
  terms.reader_gain = pair.reader_gain;
  terms.tag_gain = pair.tag_gain;
  terms.polarization_loss = pair.polarization_loss;
  terms.coupling_loss = pair.coupling_loss;
  terms.reflection_gain = reflection_gain(path, tag, t_s);

  // Proximity absorption by adjacent water-rich bodies (both propagation
  // paths suffer it, so it lands in blockage_loss).
  double proximity_db = 0.0;
  if (params_.proximity_loss_db > 0.0) {
    for (std::size_t e = 0; e < scene_.entities.size(); ++e) {
      if (e == tag.entity) continue;
      const Entity& other = scene_.entities[e];
      const rf::Material m = other.body_material();
      if (m != rf::Material::HumanBody && m != rf::Material::Liquid) continue;
      const double gap = std::max(
          tag_pos.distance_to(other.body_centre(t_s)) - other.body_radius(), 0.0);
      if (gap >= params_.proximity_range_m) continue;
      proximity_db += params_.proximity_loss_db * (1.0 - gap / params_.proximity_range_m);
    }
  }
  terms.blockage_loss = Decibel(proximity_db);

  const Decibel direct_material = pair.direct_image_loss +
                                  occlusion_loss(path, tag, t_s) +
                                  fresnel_blockage(path, tag, t_s);
  const Decibel scatter_tag_gain{params_.scatter_tag_gain_dbi};

  // Pick whichever path delivers more power (they differ only in the
  // tag-gain, material, and multipath terms).
  const double direct_score =
      terms.tag_gain.value() - direct_material.value() + pair.direct_multipath.value();
  const double scatter_score = scatter_tag_gain.value() - pair.scatter_material.value();
  if (scatter_score > direct_score) {
    terms.tag_gain = scatter_tag_gain;
    terms.material_loss = pair.scatter_material;
    terms.multipath_gain = Decibel(0.0);
  } else {
    terms.material_loss = direct_material;
    terms.multipath_gain = pair.direct_multipath;
  }

  return terms;
}

Decibel PathEvaluator::occlusion_loss(const Segment& path, const TagAddress& tag,
                                      double t_s) const {
  Decibel loss{0.0};
  for (std::size_t e = 0; e < scene_.entities.size(); ++e) {
    const Entity& entity = scene_.entities[e];
    // A tag's own body is tested with a margin so that the mounting face
    // itself does not occlude; anything deeper (the contents) does.
    const double margin = (e == tag.entity) ? params_.self_occlusion_margin_m : 0.0;
    if (const auto chord = entity.body_chord(path, t_s, margin)) {
      loss += rf::penetration_loss(entity.body_material(), *chord);
    }
  }
  return loss;
}

Decibel PathEvaluator::fresnel_blockage(const Segment& path, const TagAddress& tag,
                                        double t_s) const {
  if (params_.fresnel_max_db <= 0.0) return Decibel(0.0);
  double loss = 0.0;
  for (std::size_t e = 0; e < scene_.entities.size(); ++e) {
    if (e == tag.entity) continue;
    const Entity& entity = scene_.entities[e];
    if (entity.body_radius() <= 0.0) continue;
    // Bodies actually intersecting the path are charged by occlusion_loss;
    // this term covers near misses only.
    if (entity.body_chord(path, t_s).has_value()) continue;
    const PointToSegment cp = closest_point(path, entity.body_centre(t_s));
    // Only mid-path obstructions matter: bodies hugging the tag end of the
    // path are near-field neighbours (handled by coupling/occlusion), and
    // the antenna end is clear by construction.
    if (cp.t < 0.2 || cp.t > 0.95) continue;
    const double clearance = std::max(cp.distance - entity.body_radius(), 0.0);
    if (clearance >= params_.fresnel_radius_m) continue;
    const double frac = 1.0 - clearance / params_.fresnel_radius_m;
    loss += params_.fresnel_max_db * frac * frac;
  }
  return Decibel(std::min(loss, params_.fresnel_max_db * 1.5));
}

Decibel PathEvaluator::coupling_loss(const TagAddress& tag, double t_s) const {
  const Entity& entity = scene_.entities[tag.entity];
  const Vec3 pos = entity.tag_position(tag.tag, t_s);
  const Vec3 axis = entity.tag_dipole_axis(tag.tag, t_s);

  // The nearest neighbour on each side dominates: it both couples hardest
  // and shields the tags beyond it. Summing the two largest pairwise
  // losses approximates "nearest on each side" without tracking geometry.
  double worst = 0.0;
  double second = 0.0;
  for (std::size_t other = 0; other < entity.tags().size(); ++other) {
    if (other == tag.tag) continue;
    const double spacing = pos.distance_to(entity.tag_position(other, t_s));
    if (spacing > params_.coupling_neighbourhood_m) continue;
    const Vec3 other_axis = entity.tag_dipole_axis(other, t_s);
    const double alignment = std::abs(axis.dot(other_axis));
    const double loss =
        rf::pairwise_coupling_loss(spacing, params_.coupling, alignment).value();
    if (loss > worst) {
      second = worst;
      worst = loss;
    } else if (loss > second) {
      second = loss;
    }
  }
  return Decibel(std::min(worst + second, params_.coupling.contact_loss_db * 1.5));
}

Decibel PathEvaluator::reflection_gain(const Segment& path, const TagAddress& tag,
                                       double t_s) const {
  // A reflective body near the tag that is NOT between the tag and the
  // antenna scatters extra energy toward the tag — the mechanism behind
  // the paper's observation that the closer of two subjects reads better
  // than a lone subject ("signal reflections off the farther subject").
  // A reflector in the forward cone toward the antenna is a (potential)
  // blocker, not a mirror, and contributes nothing here.
  const Vec3 to_antenna_dir = (path.to - path.from).normalized();
  double best_db = 0.0;
  for (std::size_t e = 0; e < scene_.entities.size(); ++e) {
    if (e == tag.entity) continue;
    const Entity& entity = scene_.entities[e];
    if (!rf::is_reflective(entity.body_material())) continue;
    if (entity.body_chord(path, t_s).has_value()) continue;
    const Vec3 centre = entity.body_centre(t_s);
    const double range = centre.distance_to(path.from);
    if (range > params_.reflector_range_m) continue;
    const Vec3 to_reflector = (centre - path.from).normalized();
    const double cosine = to_reflector.dot(to_antenna_dir);
    if (cosine > 0.5) continue;  // In the forward cone.
    // Closer reflectors bounce more energy (linear taper with distance),
    // and a reflector squarely BEHIND the tag retro-reflects the reader's
    // illumination most effectively (angle weight: 1 at dead-behind,
    // 1/3 at broadside).
    const double strength = 1.0 - range / params_.reflector_range_m;
    const double angle_weight = (0.5 - cosine) / 1.5;
    best_db = std::max(best_db, params_.reflection_bonus_db * strength * angle_weight);
  }
  return Decibel(best_db);
}

}  // namespace rfidsim::scene
