#include "scene/trajectory.hpp"

#include <cmath>
#include <numbers>

namespace rfidsim::scene {

Pose WalkingTrajectory::pose_at(double t_s) const {
  Pose p = start_;
  p.position += velocity_ * t_s;
  const double phase = 2.0 * std::numbers::pi * gait_.cadence_hz * t_s;
  p.position.y += gait_.sway_amplitude_m * std::sin(phase);
  // The body bobs at twice the sway frequency (once per step, sway once per
  // stride).
  p.position.z += gait_.bob_amplitude_m * std::abs(std::sin(phase));
  return p;
}

}  // namespace rfidsim::scene
