// Tracked entities: tagged objects and people.
//
// An Entity bundles everything the simulator needs about one physical thing
// passing the portal: a body volume (for occlusion), a body material (how
// badly it blocks), a motion model, and the tags mounted on it. Factory
// helpers build the two entity kinds the paper studies — cartons with metal
// contents (the "network router boxes" of Table 1) and walking humans
// (Table 2).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/pose.hpp"
#include "rf/material.hpp"
#include "scene/geometry.hpp"
#include "scene/tag.hpp"
#include "scene/trajectory.hpp"

namespace rfidsim::scene {

/// Body volume of an entity, in the entity's local frame (origin at the
/// geometric centre). `monostate` means "no body" — bare tags on a fixture,
/// as in the paper's read-range and inter-tag-distance experiments.
struct BoxBody {
  Vec3 extents{0.4, 0.4, 0.4};  ///< Full side lengths, metres.
};
struct CylinderBody {
  double radius = 0.22;  ///< Torso-scale radius, metres.
  double height = 1.75;  ///< Standing height, metres.
};
using Body = std::variant<std::monostate, BoxBody, CylinderBody>;

/// One tagged object or person in the scene.
class Entity {
 public:
  /// Constructs an entity. `body_material` is what rays traversing the body
  /// are attenuated by (the paper's boxes: metal routers inside cardboard).
  /// `content_fill` scales the attenuating core relative to the body
  /// envelope: a router does not fill its carton, so rays crossing the
  /// outer shell at oblique angles miss the metal — which is how far-side
  /// tags still read sometimes (paper Table 1: side-farther 63%).
  Entity(std::string name, Body body, rf::Material body_material,
         std::unique_ptr<Trajectory> trajectory, double content_fill = 1.0);

  Entity(const Entity& other);
  Entity& operator=(const Entity& other);
  Entity(Entity&&) noexcept = default;
  Entity& operator=(Entity&&) noexcept = default;

  /// Adds a tag; returns its index within this entity.
  std::size_t add_tag(Tag tag);

  const std::string& name() const { return name_; }
  const Body& body() const { return body_; }
  rf::Material body_material() const { return body_material_; }
  double content_fill() const { return content_fill_; }
  const std::vector<Tag>& tags() const { return tags_; }

  /// Entity origin pose at time t.
  Pose pose_at(double t_s) const { return trajectory_->pose_at(t_s); }

  /// True iff this entity's pose (and hence every tag on it) is
  /// time-invariant — the gate for the PathEvaluator static-geometry cache.
  bool is_static() const { return trajectory_->is_static(); }

  /// World position of a tag centre at time t.
  Vec3 tag_position(std::size_t tag_index, double t_s) const;
  /// World direction of a tag's dipole axis at time t (unit vector).
  Vec3 tag_dipole_axis(std::size_t tag_index, double t_s) const;
  /// World direction of a tag's patch normal at time t (unit vector).
  Vec3 tag_patch_normal(std::size_t tag_index, double t_s) const;

  /// Pose-taking overloads of the tag-geometry queries, for callers that
  /// have already evaluated pose_at(t) once for the whole entity (the batch
  /// path kernel). The time-taking forms above delegate here, so both paths
  /// run the identical arithmetic and stay bit-identical by construction.
  Vec3 tag_position(std::size_t tag_index, const Pose& pose) const;
  Vec3 tag_dipole_axis(std::size_t tag_index, const Pose& pose) const;
  Vec3 tag_patch_normal(std::size_t tag_index, const Pose& pose) const;

  /// Length of `seg` passing through this entity's attenuating core at
  /// time t, if any. The core is the body envelope scaled by content_fill.
  /// `skip_margin_m` additionally shrinks the core, so a ray *leaving* a
  /// tag mounted on the surface does not self-intersect the face it sits
  /// on.
  std::optional<double> body_chord(const Segment& seg, double t_s,
                                   double skip_margin_m = 0.0) const;

  /// Chord against the body positioned at a precomputed `pose` — the form
  /// the batch kernel calls after hoisting pose_at(t) out of its per-tag
  /// loops. The time-taking overload delegates here.
  std::optional<double> body_chord(const Segment& seg, const Pose& pose,
                                   double skip_margin_m) const;

  /// World-space body centre at time t (equals the origin for our shapes).
  Vec3 body_centre(double t_s) const { return pose_at(t_s).position; }

  /// A characteristic lateral radius of the body (for reflection tests).
  double body_radius() const;

  /// Radius of a sphere centred on the pose position that contains the
  /// whole attenuating core (the fill-scaled, margin-0 envelope that
  /// body_chord intersects). Zero when there is no body. A segment whose
  /// closest approach to the centre exceeds this cannot produce a chord,
  /// so callers may skip body_chord entirely — a reject that changes no
  /// floating-point output, only whether the intersection runs.
  double bounding_radius() const;

 private:
  /// Maps a local-frame vector into the world frame at time t.
  Vec3 to_world_direction(const Vec3& local, const Pose& pose) const;

  std::string name_;
  Body body_;
  rf::Material body_material_;
  double content_fill_ = 1.0;
  std::unique_ptr<Trajectory> trajectory_;
  std::vector<Tag> tags_;
};

/// Standard placements on a carton, named from the perspective of the
/// pass: the reader antenna is on the +y side, travel is along +x.
enum class BoxFace { Front, Back, Top, Bottom, SideNear, SideFar };

/// Human-readable face name, matching the paper's Table 1 terminology.
std::string_view box_face_name(BoxFace face);

/// Builds the TagMount for a tag centred on the given face of a box with
/// the given extents. `content_material` and `content_gap_m` describe what
/// sits behind that face inside the box (Table 1's routers: metal close
/// beneath the top, foam spacing behind front/sides).
TagMount mount_on_box_face(BoxFace face, const Vec3& box_extents,
                           rf::Material content_material, double content_gap_m);

/// Standard tag placements on a person, named as in Table 2. The antenna
/// is on the +y side of the walking direction.
enum class BodySpot { Front, Back, SideNear, SideFar };

/// Human-readable spot name, matching the paper's Table 2 terminology.
std::string_view body_spot_name(BodySpot spot);

/// Builds the TagMount for a badge hanging at waist level at the given
/// body spot ("hanging from the belt or pocket", per the paper §3), with a
/// small air gap to the body.
TagMount mount_on_person(BodySpot spot, const CylinderBody& body);

}  // namespace rfidsim::scene
