// PathEvaluator: geometry in, link-budget terms out.
//
// For one (antenna, tag, time) triple this computes every term of
// rf::PathTerms from first principles of the scene:
//   distance            from world positions,
//   reader gain         from the antenna pattern and off-boresight angle,
//   tag gain            from the dipole pattern and the tag's world axis,
//   patch shadowing     tags read from behind their mounting face lose the
//                       face + contents in the path (handled as occlusion),
//   polarization        circular reader -> constant 3 dB,
//   material loss       backing/detuning + occlusion chords through every
//                       body in the scene (including the tag's own parent),
//   coupling loss       from neighbouring tags on the same entity,
//   reflection gain     bounce bonus from reflective bodies near (but not
//                       on) the path — the paper's "signal reflections off
//                       the farther subject",
//   multipath           two-ray ground ripple.
#pragma once

#include "rf/antenna.hpp"
#include "rf/coupling.hpp"
#include "rf/link_budget.hpp"
#include "rf/propagation.hpp"
#include "scene/scene.hpp"

namespace rfidsim::scene {

/// Tunable physics constants of the evaluator (calibration knobs; see
/// DESIGN.md §4.4 and reliability::CalibrationProfile).
struct EvaluatorParams {
  rf::DipoleTagAntenna tag_antenna{};
  rf::CouplingParams coupling{};
  rf::TwoRayGround two_ray{};
  double frequency_hz = 915e6;
  /// Margin by which an occlusion ray is allowed to graze the tag's own
  /// mounting face without counting as self-occlusion (metres).
  double self_occlusion_margin_m = 0.01;
  /// Reflection bonus: gain added when a reflective body sits within
  /// `reflector_range_m` of the tag but clear of the direct path.
  double reflection_bonus_db = 2.5;
  double reflector_range_m = 1.5;
  /// Only count coupling from neighbours closer than this (metres).
  double coupling_neighbourhood_m = 0.10;

  /// Diffuse scatter path. Indoor UHF propagation is never purely
  /// line-of-sight: walls, floors and nearby metal sustain a diffuse field
  /// that illuminates tags whose direct path is blocked or in a pattern
  /// null — the reason the paper still reads far-side tags at useful rates
  /// (Table 1: 63%). The scatter path pays `scatter_excess_db` over free
  /// space, bypasses occlusion and the tag's directional null (arrivals
  /// average over angle), and benefits from nearby reflectors.
  double scatter_excess_db = 12.0;
  /// Effective angle-of-arrival diversity for the scatter path: the
  /// tag-pattern and image factors are evaluated at this effective
  /// sin(elevation) instead of the geometric one.
  double scatter_sin_alpha = 0.35;
  /// Average dipole gain over diffuse arrivals, dBi (peak is 2.15).
  double scatter_tag_gain_dbi = 0.95;

  /// Fresnel-zone grazing blockage: a body that does not intersect the
  /// direct ray but passes within `fresnel_radius_m` of it still eats part
  /// of the first Fresnel zone. Loss ramps quadratically from 0 at the
  /// radius to `fresnel_max_db` at zero clearance.
  double fresnel_radius_m = 0.28;
  double fresnel_max_db = 8.0;

  /// Proximity absorption: a water-rich body (another person) standing
  /// within `proximity_range_m` of a tag soaks up near-field energy and
  /// perturbs the tag's match, independent of whether it blocks the ray.
  /// Applied at full strength at contact, tapering linearly to zero at the
  /// range limit. This is part of why both subjects of the paper's
  /// two-person tests read worse than lone subjects at the same spots.
  double proximity_loss_db = 3.5;
  double proximity_range_m = 0.8;
};

/// Evaluates rf::PathTerms for antenna/tag pairs at given times.
class PathEvaluator {
 public:
  /// The evaluator holds a reference to the scene; the scene must outlive it.
  PathEvaluator(const Scene& scene, EvaluatorParams params = {});

  /// Full evaluation of one path at time `t_s`.
  rf::PathTerms evaluate(std::size_t antenna_index, const TagAddress& tag,
                         double t_s) const;

  const EvaluatorParams& params() const { return params_; }
  const Scene& scene() const { return scene_; }

 private:
  Decibel occlusion_loss(const Segment& path, const TagAddress& tag, double t_s) const;
  Decibel fresnel_blockage(const Segment& path, const TagAddress& tag, double t_s) const;
  Decibel coupling_loss(const TagAddress& tag, double t_s) const;
  Decibel reflection_gain(const Segment& path, const TagAddress& tag, double t_s) const;

  const Scene& scene_;
  EvaluatorParams params_;
};

}  // namespace rfidsim::scene
