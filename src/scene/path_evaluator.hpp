// PathEvaluator: geometry in, link-budget terms out.
//
// For one (antenna, tag, time) triple this computes every term of
// rf::PathTerms from first principles of the scene:
//   distance            from world positions,
//   reader gain         from the antenna pattern and off-boresight angle,
//   tag gain            from the dipole pattern and the tag's world axis,
//   patch shadowing     tags read from behind their mounting face lose the
//                       face + contents in the path (handled as occlusion),
//   polarization        circular reader -> constant 3 dB,
//   material loss       backing/detuning + occlusion chords through every
//                       body in the scene (including the tag's own parent),
//   coupling loss       from neighbouring tags on the same entity,
//   reflection gain     bounce bonus from reflective bodies near (but not
//                       on) the path — the paper's "signal reflections off
//                       the farther subject",
//   multipath           two-ray ground ripple.
#pragma once

#include <cstddef>
#include <vector>

#include "rf/antenna.hpp"
#include "rf/coupling.hpp"
#include "rf/link_budget.hpp"
#include "rf/propagation.hpp"
#include "scene/scene.hpp"

namespace rfidsim::scene {

/// Tunable physics constants of the evaluator (calibration knobs; see
/// DESIGN.md §4.4 and reliability::CalibrationProfile).
struct EvaluatorParams {
  rf::DipoleTagAntenna tag_antenna{};
  rf::CouplingParams coupling{};
  rf::TwoRayGround two_ray{};
  double frequency_hz = 915e6;
  /// Margin by which an occlusion ray is allowed to graze the tag's own
  /// mounting face without counting as self-occlusion (metres).
  double self_occlusion_margin_m = 0.01;
  /// Reflection bonus: gain added when a reflective body sits within
  /// `reflector_range_m` of the tag but clear of the direct path.
  double reflection_bonus_db = 2.5;
  double reflector_range_m = 1.5;
  /// Only count coupling from neighbours closer than this (metres).
  double coupling_neighbourhood_m = 0.10;

  /// Diffuse scatter path. Indoor UHF propagation is never purely
  /// line-of-sight: walls, floors and nearby metal sustain a diffuse field
  /// that illuminates tags whose direct path is blocked or in a pattern
  /// null — the reason the paper still reads far-side tags at useful rates
  /// (Table 1: 63%). The scatter path pays `scatter_excess_db` over free
  /// space, bypasses occlusion and the tag's directional null (arrivals
  /// average over angle), and benefits from nearby reflectors.
  double scatter_excess_db = 12.0;
  /// Effective angle-of-arrival diversity for the scatter path: the
  /// tag-pattern and image factors are evaluated at this effective
  /// sin(elevation) instead of the geometric one.
  double scatter_sin_alpha = 0.35;
  /// Average dipole gain over diffuse arrivals, dBi (peak is 2.15).
  double scatter_tag_gain_dbi = 0.95;

  /// Fresnel-zone grazing blockage: a body that does not intersect the
  /// direct ray but passes within `fresnel_radius_m` of it still eats part
  /// of the first Fresnel zone. Loss ramps quadratically from 0 at the
  /// radius to `fresnel_max_db` at zero clearance.
  double fresnel_radius_m = 0.28;
  double fresnel_max_db = 8.0;

  /// Proximity absorption: a water-rich body (another person) standing
  /// within `proximity_range_m` of a tag soaks up near-field energy and
  /// perturbs the tag's match, independent of whether it blocks the ray.
  /// Applied at full strength at contact, tapering linearly to zero at the
  /// range limit. This is part of why both subjects of the paper's
  /// two-person tests read worse than lone subjects at the same spots.
  double proximity_loss_db = 3.5;
  double proximity_range_m = 0.8;

  /// Static-geometry fast path (DESIGN.md, "sweep engine" section). Terms
  /// that are pure functions of time-invariant poses are computed once per
  /// (antenna, tag) pair and reused: the pair-local terms (distance, gains,
  /// polarization, coupling neighbourhood, image/multipath factors) when
  /// the tag's own entity is static, and the entire rf::PathTerms when
  /// every entity in the scene is static (occlusion chords, reflector sets
  /// and proximity then cannot change either). Cached values are the
  /// first-evaluation results verbatim, so enabling the cache is
  /// bit-identical to disabling it — tests/scene/path_cache_test.cpp holds
  /// it to that.
  bool static_geometry_cache = true;
};

/// Static-geometry cache effectiveness tallies for one evaluator. Plain
/// (non-atomic) counters — the evaluator is single-threaded by contract —
/// kept cheap enough to maintain unconditionally; flush_metrics() folds
/// them into the process-wide obs registry.
struct PathCacheStats {
  std::uint64_t full_hits = 0;    ///< Whole-result cache hits (static scene).
  std::uint64_t full_misses = 0;  ///< First evaluation of a (antenna, tag) slot.
  std::uint64_t pair_hits = 0;    ///< Pair-term reuse (static tag, moving scene).
  std::uint64_t pair_misses = 0;
  std::uint64_t bypassed = 0;  ///< Cache off or the tag's entity moves.
};

/// Evaluates rf::PathTerms for antenna/tag pairs at given times.
///
/// Not thread-safe: the static-geometry cache mutates on evaluate(). Give
/// each worker its own evaluator (PortalSimulator already owns one per
/// instance), exactly as the sweep engine's per-cell simulators do.
class PathEvaluator {
 public:
  /// The evaluator holds a reference to the scene; the scene must outlive
  /// it and must not be mutated while the evaluator exists (the cache has
  /// no way to observe entity or antenna edits).
  PathEvaluator(const Scene& scene, EvaluatorParams params = {});

  /// Flushes any unflushed cache tallies (see flush_metrics).
  ~PathEvaluator();
  PathEvaluator(const PathEvaluator&) = delete;
  PathEvaluator& operator=(const PathEvaluator&) = delete;

  /// Full evaluation of one path at time `t_s`.
  rf::PathTerms evaluate(std::size_t antenna_index, const TagAddress& tag,
                         double t_s) const;

  const EvaluatorParams& params() const { return params_; }
  const Scene& scene() const { return scene_; }

  /// True iff every entity in the scene is static (full-result caching).
  bool scene_static() const { return scene_static_; }

  /// This evaluator's cache tallies since construction or the last flush.
  const PathCacheStats& cache_stats() const { return cache_stats_; }

  /// Adds the local tallies to the obs registry's scene.path_cache.*
  /// counters (when observability is enabled) and zeroes them. Called by
  /// the destructor; callers wanting mid-life dumps may call it directly.
  void flush_metrics() const;

 private:
  /// Terms that depend only on the (static antenna, tag's own entity)
  /// pair — reusable across time steps whenever that entity is static.
  struct PairTerms {
    Vec3 tag_position;
    double distance_m = 0.0;
    Decibel reader_gain;
    Decibel tag_gain;
    Decibel polarization_loss;
    Decibel coupling_loss;
    Decibel direct_image_loss;  ///< Backing/detuning part of material_loss.
    Decibel direct_multipath;
    Decibel scatter_material;
  };

  /// One cache slot per (antenna, tag) pair.
  struct CacheSlot {
    bool pair_ready = false;
    bool full_ready = false;
    PairTerms pair;
    rf::PathTerms full;
  };

  /// Computes the pair-local terms from scratch at time `t_s`.
  PairTerms compute_pair_terms(std::size_t antenna_index, const TagAddress& tag,
                               double t_s) const;
  /// Adds the cross-entity, possibly time-varying terms (occlusion,
  /// Fresnel grazing, reflections, proximity) and picks the stronger of
  /// the direct and diffuse-scatter paths.
  rf::PathTerms assemble(const PairTerms& pair, std::size_t antenna_index,
                         const TagAddress& tag, double t_s) const;

  Decibel occlusion_loss(const Segment& path, const TagAddress& tag, double t_s) const;
  Decibel fresnel_blockage(const Segment& path, const TagAddress& tag, double t_s) const;
  Decibel coupling_loss(const TagAddress& tag, double t_s) const;
  Decibel reflection_gain(const Segment& path, const TagAddress& tag, double t_s) const;

  const Scene& scene_;
  EvaluatorParams params_;
  std::vector<bool> entity_static_;      ///< Per entity, from its trajectory.
  bool scene_static_ = false;            ///< All entities static.
  std::vector<std::size_t> tag_offset_;  ///< Flat tag index base per entity.
  std::size_t tag_count_ = 0;
  mutable std::vector<CacheSlot> cache_; ///< [antenna * tag_count_ + flat tag].
  mutable PathCacheStats cache_stats_;
};

}  // namespace rfidsim::scene
