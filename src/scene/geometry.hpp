// Intersection primitives for occlusion tests.
//
// The scene needs exactly two shape queries: "how much of this axis-aligned
// box does a ray traverse" (tagged cartons blocking their own far-side
// tags) and "how much of this vertical cylinder does a ray traverse"
// (human bodies blocking tags). Both return the chord length so the caller
// can convert to a material penetration loss.
#pragma once

#include <optional>

#include "common/vec3.hpp"

namespace rfidsim::scene {

/// An axis-aligned box given by its centre and full extents.
struct Aabb {
  Vec3 centre;
  Vec3 extents;  ///< Full side lengths along x, y, z.

  Vec3 min() const { return centre - extents * 0.5; }
  Vec3 max() const { return centre + extents * 0.5; }
  /// True if `p` lies inside or on the boundary.
  bool contains(const Vec3& p) const;
};

/// A vertical (z-aligned) cylinder: centre of its axis segment, radius, and
/// full height.
struct VerticalCylinder {
  Vec3 centre;
  double radius = 0.3;
  double height = 1.7;
};

/// A finite ray segment from `from` to `to`.
struct Segment {
  Vec3 from;
  Vec3 to;
};

/// Length of the part of `seg` inside the box, or nullopt if they do not
/// intersect. Uses the slab method; a segment starting inside the box
/// counts the inside portion only.
std::optional<double> chord_length(const Segment& seg, const Aabb& box);

/// Length of the part of `seg` inside the cylinder, or nullopt if disjoint.
std::optional<double> chord_length(const Segment& seg, const VerticalCylinder& cyl);

/// Distance from point `p` to the infinite line through `seg`, and the
/// normalized position of the closest point along the segment (clamped to
/// [0,1]). Used for "is this reflector near the propagation path" tests.
struct PointToSegment {
  double distance = 0.0;
  double t = 0.0;  ///< 0 at seg.from, 1 at seg.to.
};
PointToSegment closest_point(const Segment& seg, const Vec3& p);

}  // namespace rfidsim::scene
